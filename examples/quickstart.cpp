// Quickstart: the complete opvec workflow on a small mesh — the example
// that corresponds to the paper's Figure 2a.
//
//   1. build (or load) an unstructured mesh,
//   2. declare sets, maps and datasets,
//   3. write a width-generic kernel,
//   4. run it under different backends and compare.
//
// Build & run:  ./quickstart [--n=256] [--iters=100]

#include <cstdio>

#include "common/cli.hpp"
#include "core/context.hpp"
#include "mesh/generators.hpp"

namespace {

// A weighted-Laplacian-style edge kernel: reads the two endpoint values,
// increments both cells — the canonical indirect-increment pattern that
// needs coloring (compare the paper's Figure 1b).
struct Smooth {
  template <class T>
  void operator()(const T* ql, const T* qr, const T* w, T* rl, T* rr) const {
    OPV_SIMD_MATH_USING;
    const T f = w[0] * (qr[0] - ql[0]);
    rl[0] += f;
    rr[0] -= f;
  }
};

// Direct update with a branch written as select() — the paper's restriction
// for vectorizable kernels.
struct Apply {
  template <class T>
  void operator()(T* q, const T* r, T* maxchange) const {
    OPV_SIMD_MATH_USING;
    const T d = select(abs(r[0]) < T(1.0), r[0], T(0.0));
    q[0] = q[0] + T(0.2) * d;
    maxchange[0] = max(maxchange[0], abs(d));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const opv::Cli cli(argc, argv);
  const auto n = static_cast<opv::idx_t>(cli.get_int("n", 256));
  const int iters = static_cast<int>(cli.get_int("iters", 100));

  // 1. A synthetic unstructured mesh (quad box stored as sets + maps).
  auto m = opv::mesh::make_quad_box(n, n);
  m.validate();
  std::printf("mesh: %d cells, %d edges, %d nodes\n", m.ncells, m.nedges, m.nnodes);

  auto run = [&](opv::ExecConfig cfg, const char* label) {
    // 2. Declare the mesh through an execution context.
    opv::LocalCtx ctx(cfg);
    auto cells = ctx.decl_set("cells", m.ncells);
    auto edges = ctx.decl_set("edges", m.nedges);
    auto e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);

    opv::aligned_vector<double> init(m.ncells, 0.0);
    for (opv::idx_t c = 0; c < m.ncells; ++c) init[c] = (c % 17) * 0.1;
    auto q = ctx.decl_dat<double>("q", cells, 1, init);
    auto r = ctx.decl_dat<double>("r", cells, 1);
    auto w = ctx.decl_dat<double>("w", edges, 1,
                                  opv::aligned_vector<double>(m.nedges, 0.25));

    // 3./4. Run the loops; coloring and vectorization are the runtime's job.
    // Each loop is a reusable handle: conflict analysis happens once here,
    // the coloring plan and stats slot are pinned on the first run(), and
    // the steady-state iterations below do zero per-call setup. The access
    // mode AND the arity are template parameters (opv::READ, 1), so the
    // engine's gather/scatter code is specialized — and fully unrolled per
    // component — for each argument at compile time.
    double change = 0.0;
    opv::Loop smooth(Smooth{}, "smooth", *edges, opv::arg<opv::READ, 1>(*q, 0, *e2c),
                     opv::arg<opv::READ, 1>(*q, 1, *e2c), opv::arg<opv::READ, 1>(*w),
                     opv::arg<opv::INC, 1>(*r, 0, *e2c), opv::arg<opv::INC, 1>(*r, 1, *e2c));
    opv::Loop apply(Apply{}, "apply", *cells, opv::arg<opv::RW, 1>(*q),
                    opv::arg<opv::READ, 1>(*r), opv::arg_gbl<opv::MAX>(&change, 1));
    opv::Loop clear([](auto* rr) { rr[0] = std::decay_t<decltype(rr[0])>(0.0); }, "clear",
                    *cells, opv::arg<opv::WRITE, 1>(*r));
    opv::WallTimer t;
    for (int it = 0; it < iters; ++it) {
      smooth.run(cfg);
      change = 0.0;
      apply.run(cfg);
      clear.run(cfg);
    }
    std::printf("%-28s %8.3f ms   final max|change| = %.6e\n", label, t.seconds() * 1e3,
                change);
  };

  using opv::Backend;
  run({.backend = Backend::Seq}, "Seq (reference)");
  run({.backend = Backend::OpenMP}, "OpenMP (colored blocks)");
  run({.backend = Backend::AutoVec}, "AutoVec (pragma simd)");
  run({.backend = Backend::Simd}, "Simd (vector intrinsics)");
  run({.backend = Backend::Simd, .coloring = opv::ColoringStrategy::BlockPermute},
      "Simd + block permute");
  run({.backend = Backend::Simt}, "Simt (OpenCL model)");
  return 0;
}
