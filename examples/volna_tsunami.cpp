// Volna example: shallow-water tsunami propagation (single precision, as in
// the paper). A Gaussian free-surface hump collapses and radiates waves
// across a periodic triangulated ocean; the example prints wave-gauge
// readings and verifies volume conservation.
//
//   ./volna_tsunami [--n=400] [--steps=200] [--backend=simd] [--renumber]
//                   [--shuffle] [--chain]
//
// --renumber enables the context-level renumbering pass (RCM cells +
// lexicographically sorted edges, paper sections 6.2/6.4); --shuffle
// scrambles the edge ordering first, so the pass has locality to recover.
// --chain executes each timestep through opv::LoopChain (cross-loop sparse
// tiling, core/chain.hpp).

#include <cstdio>
#include <string>

#include "apps/volna/hazard.hpp"
#include "apps/volna/volna.hpp"
#include "common/cli.hpp"
#include "core/context.hpp"
#include "mesh/generators.hpp"

int main(int argc, char** argv) {
  const opv::Cli cli(argc, argv);
  const auto n = static_cast<opv::idx_t>(cli.get_int("n", 400));
  const int steps = static_cast<int>(cli.get_int("steps", 200));
  const std::string backend = cli.get("backend", "simd");

  auto m = opv::mesh::make_tri_periodic(n, n, 10.0, 10.0);
  if (cli.has("shuffle")) opv::mesh::shuffle_edges(m, 42);
  std::printf("mesh '%s': %d cells, %d edges (periodic ocean 10km x 10km)%s%s\n", m.name.c_str(),
              m.ncells, m.nedges, cli.has("shuffle") ? ", shuffled" : "",
              cli.has("renumber") ? ", renumbered" : "");

  opv::ExecConfig cfg;
  cfg.backend = opv::volna::parse_backend(backend);
  opv::LocalCtx ctx(cfg);
  ctx.set_renumber(cli.has("renumber"));
  opv::volna::Volna<float, opv::LocalCtx> app(ctx, m, /*depth=*/1.0, /*amp=*/0.25,
                                              /*width=*/0.05, cli.has("chain"));

  const auto cgeom = opv::volna::cell_geometry(m);
  const double vol0 = opv::volna::total_volume(app.fetch_state(), cgeom);
  std::printf("initial volume: %.6f\n", vol0);

  // "Wave gauges": cells at fixed offsets from the source.
  const opv::idx_t gauges[3] = {app.ncells() / 2, app.ncells() / 4, app.ncells() / 8};

  opv::WallTimer t;
  const int chunk = std::max(1, steps / 5);
  for (int done = 0; done < steps; done += chunk) {
    app.run(std::min(chunk, steps - done));
    const auto state = app.fetch_state();
    std::printf("step %4d  dt=%.4e  gauges h = %.4f %.4f %.4f\n", done + chunk, app.last_dt(),
                double(state[4 * gauges[0]]), double(state[4 * gauges[1]]),
                double(state[4 * gauges[2]]));
  }
  const double secs = t.seconds();

  const double vol1 = opv::volna::total_volume(app.fetch_state(), cgeom);
  std::printf("final volume:   %.6f  (relative drift %.3e)\n", vol1,
              std::abs(vol1 - vol0) / vol0);
  std::printf("%d steps over %d cells in %.3f s (%.1f Mcell-steps/s)\n", steps, app.ncells(),
              secs, static_cast<double>(steps) * app.ncells() / secs / 1e6);
  return 0;
}
