// Coloring explorer: inspect the execution plans OP2-style runtimes build
// for race-free parallelism (paper sections 3-4). Shows, for a chosen mesh
// and block size, the block-color and element-color structure of the three
// strategies the paper compares in Figure 8a.
//
//   ./coloring_explorer [--ni=120] [--nj=60] [--block=512] [--mesh=airfoil]

#include <cstdio>

#include "apps/airfoil/airfoil.hpp"
#include "common/cli.hpp"
#include "core/op2.hpp"
#include "mesh/generators.hpp"
#include "perf/table.hpp"

int main(int argc, char** argv) {
  const opv::Cli cli(argc, argv);
  const auto ni = static_cast<opv::idx_t>(cli.get_int("ni", 120));
  const auto nj = static_cast<opv::idx_t>(cli.get_int("nj", 60));
  const int block = static_cast<int>(cli.get_int("block", 512));
  const std::string which = cli.get("mesh", "airfoil");

  auto m = which == "tri" ? opv::mesh::make_tri_periodic(ni, nj)
                          : opv::mesh::make_airfoil_omesh(ni, nj);
  std::printf("mesh '%s': %d cells, %d edges; block size %d\n", m.name.c_str(), m.ncells,
              m.nedges, block);

  // The res_calc conflict pattern: edges incrementing both adjacent cells.
  opv::Set cells("cells", m.ncells), edges("edges", m.nedges);
  opv::Map e2c("e2c", edges, cells, 2, m.edge_cells);
  const std::vector<opv::IncRef> conflicts = {{&e2c, 0}, {&e2c, 1}};

  opv::perf::Table t({"strategy", "blocks", "block colors", "elem colors (max)",
                      "global colors", "serialization"});
  for (auto strat : {opv::ColoringStrategy::TwoLevel, opv::ColoringStrategy::FullPermute,
                     opv::ColoringStrategy::BlockPermute}) {
    const auto plan = opv::build_plan(m.nedges, conflicts, block, strat);
    std::string serial;
    switch (strat) {
      case opv::ColoringStrategy::TwoLevel:
        serial = "per-lane serialized scatter";
        break;
      case opv::ColoringStrategy::FullPermute:
        serial = "hw scatter, no data reuse";
        break;
      case opv::ColoringStrategy::BlockPermute:
        serial = "hw scatter, reuse in block";
        break;
    }
    t.add_row({opv::coloring_name(strat), std::to_string(plan->nblocks),
               std::to_string(plan->nblock_colors),
               strat == opv::ColoringStrategy::FullPermute
                   ? "-"
                   : std::to_string(plan->max_elem_colors),
               strat == opv::ColoringStrategy::FullPermute
                   ? std::to_string(plan->nglobal_colors)
                   : "-",
               serial});
  }
  t.print();

  // Distribution of elements per global color (FullPermute).
  const auto plan =
      opv::build_plan(m.nedges, conflicts, block, opv::ColoringStrategy::FullPermute);
  std::printf("\nFullPermute color class sizes (elements of one color are"
              " lane-independent):\n");
  for (int c = 0; c < plan->nglobal_colors; ++c)
    std::printf("  color %d: %d elements\n", c,
                plan->color_offsets[c + 1] - plan->color_offsets[c]);
  return 0;
}
