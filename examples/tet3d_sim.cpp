// Tet3D example: the 3D tetrahedral finite-volume mini-app run as a user
// would run it — generate (or import) a tet mesh, pick a backend and
// precision, iterate, and watch the residual decrease.
//
//   ./tet3d_sim [--n=16] [--iters=100] [--backend=simd] [--precision=double]
//               [--ranks=0] [--renumber] [--chain] [--mesh=path.msh]
//
// Without --mesh a Kuhn-split tet box (6*n^3 cells) is generated; with
// --mesh the Gmsh MSH file (ASCII v2.2 or v4.1) is imported through the
// ingest pipeline (mesh/io.hpp) — boundary physical groups named "wall" /
// "farfield" become the corresponding boundary conditions. --renumber and
// --chain behave as in airfoil_sim: context-level renumbering pass and
// LoopChain execution (local runs only).

#include <cstdio>
#include <string>

#include "apps/tet3d/tet3d.hpp"
#include "common/cli.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "perf/table.hpp"

namespace {

opv::Backend parse_backend(const std::string& s) {
  if (s == "seq") return opv::Backend::Seq;
  if (s == "openmp") return opv::Backend::OpenMP;
  if (s == "autovec") return opv::Backend::AutoVec;
  if (s == "simd") return opv::Backend::Simd;
  if (s == "simt") return opv::Backend::Simt;
  OPV_REQUIRE(false, "unknown backend '" << s << "' (seq/openmp/autovec/simd/simt)");
  return opv::Backend::Seq;
}

template <class Real, class Ctx>
void run(Ctx& ctx, const opv::mesh::TetMesh& m, int iters, bool chain) {
  opv::tet3d::Tet3D<Real, Ctx> app(ctx, m, chain);
  opv::WallTimer t;
  app.run(iters, std::max(1, iters / 10));
  const double secs = t.seconds();
  std::printf("ran %d steps over %d cells in %.3f s (%.1f Mcell-steps/s)\n", iters, app.ncells(),
              secs, 1.0 * iters * app.ncells() / secs / 1e6);
  int i = 1;
  for (double rms : app.rms_history())
    std::printf("  rms after %4d steps: %.6e\n", (iters / 10) * i++, rms);
}

}  // namespace

int main(int argc, char** argv) {
  const opv::Cli cli(argc, argv);
  const auto n = static_cast<opv::idx_t>(cli.get_int("n", 16));
  const int iters = static_cast<int>(cli.get_int("iters", 100));
  const int ranks = static_cast<int>(cli.get_int("ranks", 0));
  const std::string precision = cli.get("precision", "double");
  const std::string mesh_path = cli.get("mesh", "");
  const bool renumber = cli.has("renumber");
  const bool chain = cli.has("chain");

  opv::mesh::TetMesh m;
  if (!mesh_path.empty()) {
    std::vector<opv::mesh::BoundarySet> bsets;
    m = opv::mesh::to_tet(opv::mesh::read_msh(mesh_path), {}, &bsets);
    std::printf("imported '%s'", mesh_path.c_str());
    for (const auto& s : bsets)
      std::printf(" [%s: %zu faces]", s.name.c_str(), s.elems.size());
    std::printf("\n");
  } else {
    m = opv::mesh::make_tet_box(n, n, n);
  }
  std::printf("mesh '%s': %d cells, %d faces, %d nodes, %d boundary faces%s\n", m.name.c_str(),
              m.ncells, m.nfaces, m.nnodes, m.nbfaces, renumber ? ", renumbered" : "");

  opv::ExecConfig cfg;
  cfg.backend = parse_backend(cli.get("backend", "simd"));

  if (ranks > 0) {
    // Distributed-rank simulation ("MPI" model): each rank runs cfg.
    cfg.nthreads = 1;
    opv::dist::DistCtx ctx(ranks, cfg);
    ctx.set_renumber(renumber);
    if (precision == "float") run<float>(ctx, m, iters, /*chain=*/false);
    else run<double>(ctx, m, iters, /*chain=*/false);
    std::printf("\nper-loop stats:\n");
    opv::perf::loop_stats_table(opv::StatsRegistry::instance().all()).print();
  } else {
    opv::LocalCtx ctx(cfg);
    ctx.set_renumber(renumber);
    if (precision == "float") run<float>(ctx, m, iters, chain);
    else run<double>(ctx, m, iters, chain);
    if (chain) {
      std::printf("\nper-loop stats:\n");
      opv::perf::loop_stats_table(opv::StatsRegistry::instance().all(),
                                  opv::StatsRegistry::instance().all_chains())
          .print();
    }
  }
  return 0;
}
