// Airfoil example: the paper's primary benchmark application run as a user
// would run it — build the synthetic Joukowski O-mesh, pick a backend and
// precision, iterate, and watch the residual decrease.
//
//   ./airfoil_sim [--ni=600] [--nj=300] [--iters=200] [--backend=simd]
//                 [--precision=double] [--ranks=0] [--renumber] [--shuffle]
//                 [--chain]
//
// --renumber enables the context-level renumbering pass (RCM cells +
// lexicographically sorted edges, paper sections 6.2/6.4); --shuffle
// scrambles the edge ordering first, so the pass has locality to recover.
// --chain executes each iteration through opv::LoopChain (cross-loop sparse
// tiling, core/chain.hpp) — local runs only, ignored with --ranks.

#include <cstdio>
#include <string>

#include "apps/airfoil/airfoil.hpp"
#include "common/cli.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"
#include "perf/table.hpp"

namespace {

opv::Backend parse_backend(const std::string& s) {
  if (s == "seq") return opv::Backend::Seq;
  if (s == "openmp") return opv::Backend::OpenMP;
  if (s == "autovec") return opv::Backend::AutoVec;
  if (s == "simd") return opv::Backend::Simd;
  if (s == "simt") return opv::Backend::Simt;
  OPV_REQUIRE(false, "unknown backend '" << s << "' (seq/openmp/autovec/simd/simt)");
  return opv::Backend::Seq;
}

template <class Real, class Ctx>
void run(Ctx& ctx, const opv::mesh::UnstructuredMesh& m, int iters, bool chain) {
  opv::airfoil::Airfoil<Real, Ctx> app(ctx, m, chain);
  opv::WallTimer t;
  app.run(iters, std::max(1, iters / 10));
  const double secs = t.seconds();
  std::printf("ran %d iterations over %d cells in %.3f s (%.1f Mcell-iters/s)\n", iters,
              app.ncells(), secs, 2.0 * iters * app.ncells() / secs / 1e6);
  int i = 1;
  for (double rms : app.rms_history())
    std::printf("  rms after %4d iters: %.6e\n", (iters / 10) * i++, rms);
}

}  // namespace

int main(int argc, char** argv) {
  const opv::Cli cli(argc, argv);
  const auto ni = static_cast<opv::idx_t>(cli.get_int("ni", 600));
  const auto nj = static_cast<opv::idx_t>(cli.get_int("nj", 300));
  const int iters = static_cast<int>(cli.get_int("iters", 200));
  const int ranks = static_cast<int>(cli.get_int("ranks", 0));
  const std::string precision = cli.get("precision", "double");
  const bool renumber = cli.has("renumber");
  const bool chain = cli.has("chain");

  auto m = opv::mesh::make_airfoil_omesh(ni, nj);
  if (cli.has("shuffle")) opv::mesh::shuffle_edges(m, 42);
  std::printf("mesh '%s': %d cells, %d edges, %d nodes, %d boundary edges%s%s\n", m.name.c_str(),
              m.ncells, m.nedges, m.nnodes, m.nbedges, cli.has("shuffle") ? ", shuffled" : "",
              renumber ? ", renumbered" : "");

  opv::ExecConfig cfg;
  cfg.backend = parse_backend(cli.get("backend", "simd"));

  if (ranks > 0) {
    // Distributed-rank simulation ("MPI" model): each rank runs cfg.
    cfg.nthreads = 1;
    opv::dist::DistCtx ctx(ranks, cfg);
    ctx.set_renumber(renumber);
    if (precision == "float") run<float>(ctx, m, iters, /*chain=*/false);
    else run<double>(ctx, m, iters, /*chain=*/false);
    // Per-loop partition-imbalance breakdown (max/mean of per-rank seconds,
    // paper section 6): 1.0 = balanced, larger = the slowest rank dominates.
    std::printf("\nper-loop stats:\n");
    opv::perf::loop_stats_table(opv::StatsRegistry::instance().all()).print();
  } else {
    opv::LocalCtx ctx(cfg);
    ctx.set_renumber(renumber);
    if (precision == "float") run<float>(ctx, m, iters, chain);
    else run<double>(ctx, m, iters, chain);
    if (chain) {
      // Chain rows (tiles, fused/member counts, inspector seconds) above
      // their member loops.
      std::printf("\nper-loop stats:\n");
      opv::perf::loop_stats_table(opv::StatsRegistry::instance().all(),
                                  opv::StatsRegistry::instance().all_chains())
          .print();
    }
  }
  return 0;
}
