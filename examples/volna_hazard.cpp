// Volna hazard-sweep ensemble: many tsunami scenarios, one process, one
// worker pool (opv::serve::Ensemble). Each instance is a full Volna
// simulation — its own LocalCtx and pinned loop handles — built by
// opv::volna::hazard_factory from a shared mesh and a deterministic
// initial-condition parameter sweep; the scheduler interleaves their
// timesteps so small-mesh steps batch together and fill the machine.
//
//   ./volna_hazard [--n=96] [--instances=8] [--steps=40] [--workers=0]
//                  [--backend=seq] [--batch=4] [--mixed]
//                  [--cadence=N] [--retries=N] [--fault=STEP]
//                  [--checkpoint=FILE] [--target=N] [--resume]
//
// --workers=0 sizes the pool to the hardware; --batch is the interleave
// grain (steps per queue grab). --mixed gives every instance its OWN mesh
// size (n, n+8, n+16, ...) — the per-instance-plans regime — instead of
// one shared mesh where all instances reuse a single plan build.
//
// Resilience flags (serve/resilience.hpp): --cadence takes a checkpoint
// every N steps per instance and --retries allows N restore-and-retry
// recovery attempts; --fault=STEP plants a NaN in instance 0's state after
// its STEPth step (serve/fault.hpp) to demonstrate detection + recovery.
// --checkpoint=FILE persists the ensemble as an OPVK file after the run
// (with --target recording the sweep's eventual goal); a later invocation
// with --resume --checkpoint=FILE rebuilds the instances, restores them,
// and runs TO the saved target — the kill-and-resume workflow:
//
//   ./volna_hazard --steps=20 --target=40 --checkpoint=sweep.opvk
//   ./volna_hazard --resume --checkpoint=sweep.opvk   # finishes steps 21..40
//
// After the run the example prints the hazard summary (per-scenario peak
// gauge height and volume drift) and the stats table: the ensemble summary
// row (instances/sec, pool occupancy, plan-cache hit rate) over the
// per-instance scoped loop rows ("hazard/i000/..."), demonstrating stats
// isolation across instances sharing one registry.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/volna/hazard.hpp"
#include "common/cli.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "perf/table.hpp"
#include "serve/ensemble.hpp"
#include "serve/fault.hpp"

int main(int argc, char** argv) {
  const opv::Cli cli(argc, argv);
  const auto n = static_cast<opv::idx_t>(cli.get_int("n", 96));
  const int instances = static_cast<int>(cli.get_int("instances", 8));
  const int steps = static_cast<int>(cli.get_int("steps", 40));
  const int workers = static_cast<int>(cli.get_int("workers", 0));
  const int batch = static_cast<int>(cli.get_int("batch", 4));
  const bool mixed = cli.has("mixed");
  const int cadence = static_cast<int>(cli.get_int("cadence", 0));
  const int retries = static_cast<int>(cli.get_int("retries", 0));
  const auto fault = cli.get_int("fault", 0);
  const std::string chkfile = cli.get("checkpoint", "");
  const auto target = cli.get_int("target", 0);
  const bool resume = cli.has("resume");
  if (resume && chkfile.empty()) {
    std::fprintf(stderr, "volna_hazard: --resume needs --checkpoint=FILE\n");
    return 2;
  }

  opv::ExecConfig cfg;
  cfg.backend = opv::volna::parse_backend(cli.get("backend", "seq"));
  cfg.nthreads = 1;  // parallelism comes from instances, not from one loop

  opv::StatsRegistry::instance().clear();
  opv::serve::EnsembleOptions opts;
  opts.name = "hazard";
  opts.workers = workers;
  opts.batch_steps = batch;
  if (cadence > 0 || retries > 0) {
    opts.health.checkpoint_every = cadence > 0 ? cadence : 10;
    opts.health.check_every = 1;
    opts.health.retry.max_attempts = retries > 0 ? retries : 2;
  }

  // --fault plants a NaN in instance 0's state dat after its Nth step; with
  // a retry policy the scheduler detects it (healthy() scan), restores the
  // last checkpoint and replays — the hazard table still prints "ok".
  auto faulty = [&](opv::serve::InstanceFactory f) {
    if (fault <= 0) return f;
    opv::serve::InstanceFaultPlan plan;
    plan.kind = opv::serve::InstanceFaultKind::Corrupt;
    plan.at_step = fault;
    plan.dat = "values";
    return opv::serve::with_fault(std::move(f), plan, /*fault_id=*/0);
  };

  opv::serve::Ensemble ensemble(opts);
  const auto sweep = opv::volna::hazard_sweep(instances);
  if (mixed) {
    // Per-instance meshes: every instance gets a different resolution, so
    // every instance builds (and caches) its own plans.
    for (int i = 0; i < instances; ++i) {
      const auto ni = n + 8 * static_cast<opv::idx_t>(i);
      const auto mi = opv::mesh::make_tri_periodic(ni, ni, 10.0, 10.0);
      ensemble.add_instance(faulty(opv::volna::hazard_factory(mi, {sweep[i]}, cfg)));
    }
  } else {
    const auto m = opv::mesh::make_tri_periodic(n, n, 10.0, 10.0);
    ensemble.add_instances(instances, faulty(opv::volna::hazard_factory(m, sweep, cfg)));
  }
  std::printf("hazard ensemble: %d instances (%s mesh, n=%d), %d steps, %d workers, batch=%d\n\n",
              instances, mixed ? "per-instance" : "shared", n, steps, ensemble.workers(),
              batch);

  std::int64_t goal = steps;
  if (resume) {
    const auto chk = opv::mesh::read_checkpoint(chkfile);
    ensemble.restore(chk);
    goal = chk.target_steps > 0 ? chk.target_steps : steps;
    std::printf("resumed from %s: running to cumulative step %lld\n\n", chkfile.c_str(),
                static_cast<long long>(goal));
  }
  const auto rep = resume ? ensemble.run_to(goal) : ensemble.run(steps);

  if (!chkfile.empty()) {
    const auto saved_target = resume ? goal : (target > 0 ? target : 0);
    opv::mesh::write_checkpoint(ensemble.save(saved_target), chkfile);
    std::printf("checkpoint written to %s (target %lld)\n\n", chkfile.c_str(),
                static_cast<long long>(saved_target));
  }

  std::printf("scenario        amp    width   peak h    dt         volume drift%s\n",
              "   status");
  for (int i = 0; i < instances; ++i) {
    opv::serve::Instance* ip = &ensemble.instance(i);
    if (auto* f = dynamic_cast<opv::serve::FaultyInstance*>(ip)) ip = &f->inner();
    auto& inst = dynamic_cast<opv::volna::HazardInstance&>(*ip);
    const auto& ir = rep.instances[static_cast<std::size_t>(i)];
    if (ir.failed()) {
      std::printf("%-14s  failed: %s\n", ir.scope.c_str(), ir.error.c_str());
      continue;
    }
    const auto state = inst.state();
    float peak = 0.0f;
    for (std::size_t c = 0; c < state.size() / 4; ++c)
      peak = std::max(peak, state[4 * c]);
    const double drift =
        std::abs(inst.volume() - inst.initial_volume()) / inst.initial_volume();
    std::printf("%-14s  %.3f  %.4f  %.4f   %.3e  %.3e      ok\n", ir.scope.c_str(),
                inst.scenario().amp, inst.scenario().width, static_cast<double>(peak),
                inst.last_dt(), drift);
  }

  std::printf("\n%lld steps over %d instances in %.3f s: %.2f instances/s, "
              "occupancy %.1f%%, plan cache %lld hits / %lld builds\n\n",
              static_cast<long long>(rep.steps), instances, rep.seconds,
              rep.instances_per_sec(), 100.0 * rep.occupancy(),
              static_cast<long long>(rep.plan_hits), static_cast<long long>(rep.plan_misses));
  if (rep.checkpoints + rep.retries > 0)
    std::printf("resilience: %lld checkpoints (%.4f s), %lld recovery attempts, "
                "%lld restores, %lld degraded\n\n",
                static_cast<long long>(rep.checkpoints), rep.checkpoint_seconds,
                static_cast<long long>(rep.retries), static_cast<long long>(rep.restores),
                static_cast<long long>(rep.degraded));

  const auto& reg = opv::StatsRegistry::instance();
  opv::perf::loop_stats_table(reg.all(), reg.all_chains(), reg.all_ensembles()).print();
  return rep.failed > 0 ? 1 : 0;
}
