#!/usr/bin/env bash
# Local verification: the tier-1 sequence (configure + build + ctest) plus a
# smoke run of the dispatch-path microbench, so regressions in the par_loop
# dispatch path are caught before review.
#
# Usage: scripts/check.sh [--dist] [build-dir]
#   --dist   also smoke-run the distributed dispatch bench
#            (ablation_dist_dispatch: DistCtx::loop vs dist::Loop::run)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
DIST=0
for arg in "$@"; do
  case "$arg" in
    --dist) DIST=1 ;;
    -*) echo "unknown flag: $arg" >&2; exit 1 ;;
    *) BUILD="$arg" ;;
  esac
done

echo "== configure =="
cmake -B "$BUILD" -S "$ROOT"

echo "== build =="
cmake --build "$BUILD" -j

echo "== ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== dispatch-path smoke =="
if [ -x "$BUILD/ablation_dispatch" ]; then
  # One fast iteration per benchmark: catches dispatch-path breakage and
  # gross slowdowns without a full measurement run.
  "$BUILD/ablation_dispatch" --benchmark_min_time=0.05
else
  echo "ablation_dispatch not built (Google Benchmark missing) - skipped"
fi

if [ "$DIST" = 1 ]; then
  echo "== dist dispatch-path smoke =="
  if [ -x "$BUILD/ablation_dist_dispatch" ]; then
    "$BUILD/ablation_dist_dispatch" --benchmark_min_time=0.05
  else
    echo "ablation_dist_dispatch not built (Google Benchmark missing) - skipped"
  fi
fi

echo "== OK =="
