#!/usr/bin/env bash
# Local verification: the tier-1 sequence (configure + build + ctest) plus a
# smoke run of the dispatch-path microbench, so regressions in the par_loop
# dispatch path are caught before review.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

echo "== configure =="
cmake -B "$BUILD" -S "$ROOT"

echo "== build =="
cmake --build "$BUILD" -j

echo "== ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== dispatch-path smoke =="
if [ -x "$BUILD/ablation_dispatch" ]; then
  # One fast iteration per benchmark: catches dispatch-path breakage and
  # gross slowdowns without a full measurement run.
  "$BUILD/ablation_dispatch" --benchmark_min_time=0.05
else
  echo "ablation_dispatch not built (Google Benchmark missing) - skipped"
fi

echo "== OK =="
