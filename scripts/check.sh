#!/usr/bin/env bash
# Local verification: the tier-1 sequence (configure + build + ctest) plus a
# smoke run of the dispatch-path microbench, so regressions in the par_loop
# dispatch path are caught before review.
#
# Usage: scripts/check.sh [--dist] [--ingest] [--resilience] [--docs]
#                          [--docs-only] [build-dir]
#   --resilience also smoke-run the fault-tolerance path: ablation_resilience
#                on a small mesh (fails if checkpointing perturbs results,
#                if an injected fault is not recovered bitwise, or if
#                kill-and-resume through an OPVK file diverges) and the
#                volna_hazard --fault demo with recovery enabled
#   --ingest     also smoke-run the mesh ingest path: tet3d_sim on a small
#                generated box and ablation_ingest with the committed MSH
#                fixture corpus (fails on round-trip inexactness, on any
#                imported-vs-in-memory bitwise divergence, or on
#                cross-backend divergence beyond 1e-12 of the field norm)
#   --dist       also smoke-run the distributed benches: the dispatch-path
#                micro (ablation_dist_dispatch: DistCtx::loop vs
#                dist::Loop::run), the exchange-overlap ablation
#                (ablation_overlap on a small mesh; fails if overlapped
#                execution is not bitwise-identical to blocking phased) and
#                the renumbering ablation (ablation_renumber on a small
#                mesh; fails if renumbered execution diverges beyond
#                floating-point reassociation tolerance)
#   --docs       also validate the documentation map: every bench/ target
#                and every src/ subsystem must appear in docs/ARCHITECTURE.md
#   --docs-only  run only the documentation check (no configure/build/test)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
DIST=0
INGEST=0
RESIL=0
DOCS=0
DOCS_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --dist) DIST=1 ;;
    --ingest) INGEST=1 ;;
    --resilience) RESIL=1 ;;
    --docs) DOCS=1 ;;
    --docs-only) DOCS=1; DOCS_ONLY=1 ;;
    -*) echo "unknown flag: $arg" >&2; exit 1 ;;
    *) BUILD="$arg" ;;
  esac
done

check_docs() {
  echo "== docs map (docs/ARCHITECTURE.md) =="
  local map="$ROOT/docs/ARCHITECTURE.md"
  local failed=0
  for f in "$ROOT"/README.md "$map"; do
    if [ ! -f "$f" ]; then
      echo "MISSING: ${f#"$ROOT"/}" >&2
      failed=1
    fi
  done
  [ "$failed" = 0 ] || exit 1
  # Every bench binary must be mapped to a paper figure/table or ablation.
  for src in "$ROOT"/bench/*.cpp; do
    local name
    name="$(basename "$src" .cpp)"
    if ! grep -q "\`$name\`" "$map"; then
      echo "UNDOCUMENTED bench target: $name (add it to the map table in docs/ARCHITECTURE.md)" >&2
      failed=1
    fi
  done
  # Every src/ subsystem must appear in the paper-to-code map.
  for d in "$ROOT"/src/*/; do
    local sub
    sub="$(basename "$d")"
    if ! grep -q "src/$sub" "$map"; then
      echo "UNDOCUMENTED src subsystem: src/$sub (add it to docs/ARCHITECTURE.md)" >&2
      failed=1
    fi
  done
  # The loop-chain subsystem lives inside src/core, below the granularity
  # of the per-directory glob above — require its file-level entry too.
  if ! grep -q "src/core/chain" "$map"; then
    echo "UNDOCUMENTED src subsystem: src/core/chain (add it to docs/ARCHITECTURE.md)" >&2
    failed=1
  fi
  if [ "$failed" != 0 ]; then
    echo "docs check FAILED" >&2
    exit 1
  fi
  echo "docs map OK"
}

if [ "$DOCS_ONLY" = 1 ]; then
  check_docs
  echo "== OK =="
  exit 0
fi

echo "== configure =="
cmake -B "$BUILD" -S "$ROOT"

echo "== build =="
cmake --build "$BUILD" -j

echo "== ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== dispatch-path smoke =="
if [ -x "$BUILD/ablation_dispatch" ]; then
  # One fast iteration per benchmark: catches dispatch-path breakage and
  # gross slowdowns without a full measurement run.
  "$BUILD/ablation_dispatch" --benchmark_min_time=0.05
else
  echo "ablation_dispatch not built (Google Benchmark missing) - skipped"
fi

echo "== loop-chain tiling smoke =="
# Small mesh, few iterations, pinned tile size: exercises the cross-loop
# sparse-tiling inspector/executor (core/chain) end to end and exits
# non-zero if chained execution diverges from the loop-by-loop baseline.
# Timings at this size are noise; scripts/bench_report.sh does the
# measurement run.
if [ -x "$BUILD/ablation_tiling" ]; then
  "$BUILD/ablation_tiling" --small --iters=2 --tile=4096
else
  echo "ablation_tiling not built (OPV_BUILD_BENCH=OFF?) - skipped"
fi

echo "== ensemble-serving smoke =="
# Few tiny instances, few steps: exercises the ensemble scheduler (serve/)
# end to end — WorkQueue multiplexing, per-instance stats scoping, plan
# sharing — and exits non-zero if any interleaved instance diverges bitwise
# from its solo Seq execution. Speedups at this size are noise;
# scripts/bench_report.sh does the measurement run.
if [ -x "$BUILD/ablation_ensemble" ]; then
  "$BUILD/ablation_ensemble" --small --steps=2
else
  echo "ablation_ensemble not built (OPV_BUILD_BENCH=OFF?) - skipped"
fi

echo "== memory-layout smoke =="
# Small meshes, few iterations: exercises the per-dat layout policy (AoS /
# SoA / AoSoA, core/layout.hpp) end to end and exits non-zero if Seq is not
# bitwise-identical across layouts or any vector backend (incl. Simt
# shared-scratch staging) diverges beyond 1e-12 of the field norm. Speedups
# at this size are noise; scripts/bench_report.sh does the measurement run.
if [ -x "$BUILD/ablation_layout" ]; then
  "$BUILD/ablation_layout" --small --iters=2
else
  echo "ablation_layout not built (OPV_BUILD_BENCH=OFF?) - skipped"
fi

if [ "$INGEST" = 1 ]; then
  echo "== mesh ingest smoke =="
  # Small tet box through the 3D mini-app (all six loops, geometry
  # precompute, RMS reduction), then the ingest gates: MSH round-trip
  # exactness, imported-vs-in-memory bitwise identity through renumber +
  # chain + DistCtx, cross-backend field-norm agreement, and a parse of
  # the committed fixture corpus. Timings at this size are noise;
  # scripts/bench_report.sh does the measurement run.
  if [ -x "$BUILD/tet3d_sim" ]; then
    "$BUILD/tet3d_sim" --n=6 --iters=20
  else
    echo "tet3d_sim not built (OPV_BUILD_EXAMPLES=OFF?) - skipped"
  fi
  if [ -x "$BUILD/ablation_ingest" ]; then
    "$BUILD/ablation_ingest" --small --n=8 --steps=3 \
      --fixtures="$ROOT/tests/fixtures/msh"
  else
    echo "ablation_ingest not built (OPV_BUILD_BENCH=OFF?) - skipped"
  fi
fi

if [ "$RESIL" = 1 ]; then
  echo "== resilience smoke =="
  # Small mesh, few steps: exercises the whole fault-tolerance layer —
  # checkpoint cadence, finiteness guard, restore + replay, retirement,
  # OPVK kill-and-resume — and exits non-zero if the guarded, recovered or
  # resumed runs are not bitwise-identical to the uninterrupted baseline.
  # Overhead at this size is noise; scripts/bench_report.sh measures it.
  if [ -x "$BUILD/ablation_resilience" ]; then
    "$BUILD/ablation_resilience" --small
  else
    echo "ablation_resilience not built (OPV_BUILD_BENCH=OFF?) - skipped"
  fi

  echo "== hazard fault-recovery smoke =="
  # The user-facing workflow: a NaN planted mid-sweep in instance 0 is
  # detected by the health scan and recovered through the last checkpoint;
  # the example exits non-zero if any instance retires.
  if [ -x "$BUILD/volna_hazard" ]; then
    "$BUILD/volna_hazard" --n=24 --instances=4 --steps=12 \
      --cadence=4 --retries=2 --fault=6
  else
    echo "volna_hazard not built (OPV_BUILD_EXAMPLES=OFF?) - skipped"
  fi
fi

if [ "$DIST" = 1 ]; then
  echo "== dist dispatch-path smoke =="
  if [ -x "$BUILD/ablation_dist_dispatch" ]; then
    "$BUILD/ablation_dist_dispatch" --benchmark_min_time=0.05
  else
    echo "ablation_dist_dispatch not built (Google Benchmark missing) - skipped"
  fi

  echo "== exchange-overlap smoke =="
  # Small mesh, few iterations: exercises the phased begin/interior/wait/
  # boundary pipeline end to end and exits non-zero if overlapped results
  # diverge bitwise from the blocking phased schedule.
  if [ -x "$BUILD/ablation_overlap" ]; then
    "$BUILD/ablation_overlap" --n=64 --iters=3 --ranks=4
  else
    echo "ablation_overlap not built (OPV_BUILD_BENCH=OFF?) - skipped"
  fi

  echo "== renumbering smoke =="
  # Small mesh, few iterations: exercises the context-level renumbering
  # pass end to end (local + dist) and exits non-zero if the renumbered
  # execution diverges from the baseline beyond reassociation tolerance.
  # Timings at this size are noise; scripts/bench_report.sh does the
  # measurement run.
  if [ -x "$BUILD/ablation_renumber" ]; then
    "$BUILD/ablation_renumber" --small --iters=2 --ranks=2
  else
    echo "ablation_renumber not built (OPV_BUILD_BENCH=OFF?) - skipped"
  fi
fi

if [ "$DOCS" = 1 ]; then
  check_docs
fi

echo "== OK =="
