#!/usr/bin/env bash
# Emit BENCH_renumber.json: the renumbering ablation's recovered-fraction
# record (ablation_renumber), so the repo carries a perf trajectory for the
# locality pass instead of prose claims. Run after scripts/check.sh (needs a
# built tree).
#
# Usage: scripts/bench_report.sh [build-dir]
#   OUT=path        output file (default: BENCH_renumber.json at repo root)
#   BENCH_ARGS=...  extra flags for ablation_renumber (default: a quick
#                   small-mesh run; drop --small for a full measurement)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${OUT:-$ROOT/BENCH_renumber.json}"
ARGS=${BENCH_ARGS:---small --iters=4 --ranks=2}

if [ ! -x "$BUILD/ablation_renumber" ]; then
  echo "ablation_renumber not built in $BUILD (run scripts/check.sh first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
"$BUILD/ablation_renumber" $ARGS --json="$OUT"
echo "wrote $OUT"
