#!/usr/bin/env bash
# Emit the committed perf records, so the repo carries a perf trajectory
# instead of prose claims:
#   BENCH_renumber.json  recovered-fraction record of the renumbering pass
#                        (ablation_renumber)
#   BENCH_tiling.json    cross-loop sparse-tiling record: chained vs
#                        loop-by-loop speedup per backend (ablation_tiling)
#   BENCH_ensemble.json  ensemble-serving record: instances/sec at
#                        N in {1, 4, 16}, concurrent vs sequential, shared
#                        vs per-instance mesh (ablation_ensemble)
#   BENCH_ingest.json    mesh ingest record: write/parse/convert/ctx-build
#                        seconds per format (MSH v2.2, MSH v4.1, OPVM/OPVT
#                        binary), gated by the ingest equivalence checks
#                        (ablation_ingest)
#   BENCH_layout.json    memory-layout record: AoS vs SoA vs AoSoA seconds
#                        for Airfoil res_calc and Tet3D t3d_flux_calc per
#                        backend, gated by the layout equivalence checks
#                        (ablation_layout)
#   BENCH_resilience.json  fault-tolerance record: checkpoint overhead %,
#                        OPVK write/read seconds, restore counts — gated by
#                        the bitwise recovery/resume checks
#                        (ablation_resilience)
# Run after scripts/check.sh (needs a built tree).
#
# Usage: scripts/bench_report.sh [build-dir]
#   OUT=path          renumber output (default: BENCH_renumber.json at root)
#   BENCH_ARGS=...    flags for ablation_renumber (default: a quick
#                     small-mesh run; drop --small for a full measurement)
#   TILING_OUT=path   tiling output (default: BENCH_tiling.json at root)
#   TILING_ARGS=...   flags for ablation_tiling (default: a quick small-mesh
#                     run; use --large for the measurement run — the chained
#                     win only appears once the working set exceeds LLC)
#   ENSEMBLE_OUT=path  ensemble output (default: BENCH_ensemble.json at root)
#   ENSEMBLE_ARGS=...  flags for ablation_ensemble (the speedup column only
#                      shows on multi-core hosts; the JSON records cores)
#   INGEST_OUT=path    ingest output (default: BENCH_ingest.json at root)
#   INGEST_ARGS=...    flags for ablation_ingest (default: a quick
#                      small-mesh run; drop --small for a full measurement)
#   LAYOUT_OUT=path    layout output (default: BENCH_layout.json at root)
#   LAYOUT_ARGS=...    flags for ablation_layout (default: the full default
#                      mesh — the non-AoS win only appears once the working
#                      set is memory-bound; --small turns it into a smoke)
#   RESILIENCE_OUT=path   resilience output (default: BENCH_resilience.json)
#   RESILIENCE_ARGS=...   flags for ablation_resilience (default: the full
#                         default mesh at cadence 50, where the <5% overhead
#                         target is meaningful; --small turns it into a smoke)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${OUT:-$ROOT/BENCH_renumber.json}"
ARGS=${BENCH_ARGS:---small --iters=4 --ranks=2}
TILING_OUT="${TILING_OUT:-$ROOT/BENCH_tiling.json}"
TILING_ARGS=${TILING_ARGS:---small --iters=3 --tile=4096}
ENSEMBLE_OUT="${ENSEMBLE_OUT:-$ROOT/BENCH_ensemble.json}"
ENSEMBLE_ARGS=${ENSEMBLE_ARGS:---small --steps=6}
INGEST_OUT="${INGEST_OUT:-$ROOT/BENCH_ingest.json}"
INGEST_ARGS=${INGEST_ARGS:---small --n=12 --steps=3}
LAYOUT_OUT="${LAYOUT_OUT:-$ROOT/BENCH_layout.json}"
LAYOUT_ARGS=${LAYOUT_ARGS:---iters=8}
RESILIENCE_OUT="${RESILIENCE_OUT:-$ROOT/BENCH_resilience.json}"
RESILIENCE_ARGS=${RESILIENCE_ARGS:---max-overhead=5}

if [ ! -x "$BUILD/ablation_renumber" ]; then
  echo "ablation_renumber not built in $BUILD (run scripts/check.sh first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
"$BUILD/ablation_renumber" $ARGS --json="$OUT"
echo "wrote $OUT"

if [ ! -x "$BUILD/ablation_tiling" ]; then
  echo "ablation_tiling not built in $BUILD (run scripts/check.sh first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
"$BUILD/ablation_tiling" $TILING_ARGS --json="$TILING_OUT"
echo "wrote $TILING_OUT"

if [ ! -x "$BUILD/ablation_ensemble" ]; then
  echo "ablation_ensemble not built in $BUILD (run scripts/check.sh first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
"$BUILD/ablation_ensemble" $ENSEMBLE_ARGS --json="$ENSEMBLE_OUT"
echo "wrote $ENSEMBLE_OUT"

if [ ! -x "$BUILD/ablation_ingest" ]; then
  echo "ablation_ingest not built in $BUILD (run scripts/check.sh first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
"$BUILD/ablation_ingest" $INGEST_ARGS --fixtures="$ROOT/tests/fixtures/msh" \
  --json="$INGEST_OUT"
echo "wrote $INGEST_OUT"

if [ ! -x "$BUILD/ablation_layout" ]; then
  echo "ablation_layout not built in $BUILD (run scripts/check.sh first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
"$BUILD/ablation_layout" $LAYOUT_ARGS --json="$LAYOUT_OUT"
echo "wrote $LAYOUT_OUT"

if [ ! -x "$BUILD/ablation_resilience" ]; then
  echo "ablation_resilience not built in $BUILD (run scripts/check.sh first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
"$BUILD/ablation_resilience" $RESILIENCE_ARGS --json="$RESILIENCE_OUT"
echo "wrote $RESILIENCE_OUT"
