// Ablation: cross-loop sparse tiling (opv::LoopChain, core/chain.hpp) vs
// the loop-by-loop step.
//
// bench/ablation_renumber shows the runtime recovering WITHIN-loop locality
// (the ordering the indirect gathers see); this bench shows the runtime
// exploiting CROSS-loop locality: each Airfoil iteration executes as two
// fused chains whose tiles run every member loop back-to-back while the
// tile's data is cache-resident, instead of streaming the whole mesh
// through cache once per loop. The headline number is the chained/
// sequential speedup per backend and ordering — the win only appears once
// the working set exceeds the last-level cache (use --large), and it
// compounds with renumbering (tight orderings keep the inspector's
// projected tiles compact).
//
// A field-norm equivalence gate runs per row (chained q vs loop-by-loop q
// after the measured iterations) and the bench exits non-zero on
// divergence, making it usable as a functional smoke. On Seq the executor
// replays each loop's exact element order, so the divergence prints as
// 0.0e+00; parallel backends inherit the usual increment-reassociation
// tolerance.
//
//   ./ablation_tiling [--small|--large] [--iters=N] [--threads=N]
//                     [--tile=N] [--json=FILE]
//
// --tile pins the seed-tile size (elements of the chain's first loop);
// default kAuto sizes tiles to the cache budget and lets each chain's
// online tuner refine them (both arms then warm up until the tuners
// settle, so the measured window is steady-state and the equivalence
// gate compares equal timestep counts).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

struct RunResult {
  double seconds = 0.0;
  int tiles = 0;              ///< total tiles across the step's chains
  double plan_seconds = 0.0;  ///< chain inspector time inside the window
  aligned_vector<double> q;   ///< final state (equivalence gate)
};

RunResult run_one(const mesh::UnstructuredMesh& m, ExecConfig cfg, int iters, bool renumber,
                  int warmup, bool chain) {
  LocalCtx ctx(cfg);
  ctx.set_renumber(renumber);
  airfoil::Airfoil<double, LocalCtx> app(ctx, m, chain);
  // Warmup: plans, first-touch — and, under kAuto, enough runs for the
  // per-chain online tuners to settle and re-plan at the winner. BOTH arms
  // warm up the same iteration count: the equivalence gate compares final
  // fields, so the arms must simulate identical timestep counts.
  app.run(warmup, 0);
  clear_stats();
  WallTimer t;
  app.run(iters, 0);
  RunResult r;
  r.seconds = t.seconds();
  for (const auto& [name, rec] : StatsRegistry::instance().all_chains()) {
    r.tiles += rec.tiles;
    r.plan_seconds += rec.plan_seconds;
  }
  r.q = app.fetch_q();
  return r;
}

struct Row {
  std::string label;
  ExecConfig cfg;
  bool renumber = false;
  double sequential = 0.0, chained = 0.0;
  int tiles = 0;
  double divergence = 0.0;
  [[nodiscard]] double speedup() const { return chained > 0.0 ? sequential / chained : 0.0; }
};

/// Max |a-b| relative to the field norm (element-wise relative error is
/// meaningless on the near-zero cancellation residue in res-derived fields).
double field_divergence(const aligned_vector<double>& a, const aligned_vector<double>& b) {
  if (a.size() != b.size()) return 1.0;
  double norm = 0.0, max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    norm = std::max(norm, std::abs(a[i]));
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return norm > 0.0 ? max_diff / norm : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Sizes sz = Sizes::from_cli(cli);
  if (!cli.has("iters")) sz.airfoil_iters = 6;
  const int tile = static_cast<int>(cli.get_int("tile", ExecConfig::kAuto));
  print_header("Ablation: cross-loop sparse tiling (LoopChain) vs loop-by-loop execution",
               "Reguly et al., section 7 future directions (cache-blocking across loops)");

  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  auto base = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  mesh::shuffle_edges(base, 99);  // every ordering below starts shuffled
  std::printf("airfoil %d cells x %d iters, %d threads, tile=%s\n\n", base.ncells,
              sz.airfoil_iters, nthreads,
              tile == ExecConfig::kAuto ? "auto" : std::to_string(tile).c_str());

  auto make_cfg = [&](Backend b) {
    ExecConfig cfg;
    cfg.backend = b;
    cfg.nthreads = nthreads;
    cfg.chain_tile_elems = tile;
    return cfg;
  };
  std::vector<Row> rows = {
      {"Seq / shuffled", make_cfg(Backend::Seq), false},
      {"Seq / renumbered", make_cfg(Backend::Seq), true},
      {"OpenMP / renumbered", make_cfg(Backend::OpenMP), true},
      {"Simd / renumbered", make_cfg(Backend::Simd), true},
  };

  // kAuto: 10 chain runs settle the tuner (5 candidates x 2 reps), +2 so
  // the re-plan at the settled tile also lands inside the warmup.
  const int warmup = tile == ExecConfig::kAuto ? 12 : 1;
  bool diverged = false;
  for (Row& r : rows) {
    const RunResult seq = run_one(base, r.cfg, sz.airfoil_iters, r.renumber, warmup, false);
    const RunResult chn = run_one(base, r.cfg, sz.airfoil_iters, r.renumber, warmup, true);
    r.sequential = seq.seconds;
    r.chained = chn.seconds;
    r.tiles = chn.tiles;
    r.divergence = field_divergence(seq.q, chn.q);
    if (!(r.divergence < 1e-12)) diverged = true;
    std::printf("%-20s sequential %.3f s, chained %.3f s (%d tiles, plan %.4f s), "
                "divergence %.1e\n",
                r.label.c_str(), r.sequential, r.chained, r.tiles, chn.plan_seconds,
                r.divergence);
  }

  perf::Table t({"configuration", "sequential (s)", "chained (s)", "speedup", "tiles",
                 "divergence"});
  for (const Row& r : rows)
    t.add_row({r.label, perf::Table::num(r.sequential, 3), perf::Table::num(r.chained, 3),
               perf::Table::num(r.speedup(), 2) + "x", std::to_string(r.tiles),
               perf::Table::num(r.divergence, 18)});
  std::printf("\n");
  t.print();

  std::printf("\nShape check: once the working set exceeds the last-level cache (--large),\n"
              "the chained renumbered rows should beat loop-by-loop execution — each tile's\n"
              "data stays cache-resident across the whole fused chain.\n");

  const std::string json = cli.get("json", "");
  if (!json.empty()) {
    FILE* f = std::fopen(json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_tiling\",\n  \"mesh\": \"%s\",\n",
                 base.name.c_str());
    std::fprintf(f, "  \"cells\": %d,\n  \"iters\": %d,\n  \"threads\": %d,\n", base.ncells,
                 sz.airfoil_iters, nthreads);
    std::fprintf(f, "  \"tile\": %d,\n  \"rows\": [\n", tile);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"sequential_s\": %.6f, \"chained_s\": %.6f, "
                   "\"speedup\": %.4f, \"tiles\": %d, \"divergence\": %.3e}%s\n",
                   r.label.c_str(), r.sequential, r.chained, r.speedup(), r.tiles, r.divergence,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json.c_str());
  }

  if (diverged) {
    std::fprintf(stderr, "FAIL: chained execution diverged from the loop-by-loop baseline\n");
    return 1;
  }
  return 0;
}
