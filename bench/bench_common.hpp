// Shared infrastructure for the paper-reproduction bench binaries: standard
// mesh sizes, app runners that return per-kernel records, and formatting.
//
// Every bench accepts:
//   --large        paper-size meshes (Airfoil 2.8M cells, Volna 2.4M)
//   --small        reduced meshes for quick runs
//   --iters=N      Airfoil outer iterations / Volna timesteps
//   --threads=N    thread count (default: all hardware threads)
// Default sizes are the paper's *small* Airfoil mesh (720k cells) and a
// 720k-cell Volna ocean so that the full bench suite completes in minutes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/airfoil/airfoil.hpp"
#include "apps/volna/volna.hpp"
#include "common/cli.hpp"
#include "common/cpu.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"
#include "perf/table.hpp"

namespace opv::bench {

struct Sizes {
  idx_t airfoil_ni = 1200, airfoil_nj = 600;  // 720k cells (paper's small mesh)
  idx_t volna_n = 600;                        // 720k tri cells
  int airfoil_iters = 10;
  int volna_steps = 10;
  int threads = 0;

  static Sizes from_cli(const Cli& cli) {
    Sizes s;
    if (cli.has("large")) {
      s.airfoil_ni = 2400;
      s.airfoil_nj = 1200;  // 2.88M cells (paper's large mesh)
      s.volna_n = 1100;     // 2.42M cells (paper's Volna mesh)
    } else if (cli.has("small")) {
      s.airfoil_ni = 480;
      s.airfoil_nj = 240;  // 115k cells
      s.volna_n = 240;
    }
    s.airfoil_iters = static_cast<int>(cli.get_int("iters", s.airfoil_iters));
    s.volna_steps = static_cast<int>(cli.get_int("iters", s.volna_steps));
    s.threads = static_cast<int>(cli.get_int("threads", 0));
    return s;
  }
};

/// One per-kernel result row.
struct KernelRow {
  std::string name;
  double seconds = 0;
  double gbs = 0;
  double gflops = 0;
};

inline void clear_stats() { StatsRegistry::instance().clear(); }

/// Collect rows for the given kernels from the stats registry, converting
/// to useful GB/s and GFLOP/s at the given precision.
inline std::vector<KernelRow> collect_rows(const std::vector<std::string>& kernels,
                                           std::size_t value_bytes) {
  std::vector<KernelRow> rows;
  for (const auto& k : kernels) {
    const LoopRecord rec = StatsRegistry::instance().get(k);
    const KernelInfo& info = KernelRegistry::instance().get(k);
    rows.push_back(
        {k, rec.seconds, perf::useful_gbs(info, value_bytes, rec), perf::useful_gflops(info, rec)});
  }
  return rows;
}

inline double total_seconds(const std::vector<KernelRow>& rows) {
  double s = 0;
  for (const auto& r : rows) s += r.seconds;
  return s;
}

inline const std::vector<std::string>& airfoil_kernels() {
  static const std::vector<std::string> k = {"save_soln", "adt_calc", "res_calc", "bres_calc",
                                             "update"};
  return k;
}
inline const std::vector<std::string>& volna_kernels() {
  static const std::vector<std::string> k = {"sim_1",        "compute_flux", "numerical_flux",
                                             "space_disc",   "RK_1",         "RK_2"};
  return k;
}

/// Run Airfoil under a local-context config; returns per-kernel rows.
/// A one-iteration warmup (plan construction, first-touch, halo build)
/// precedes the measured window, as the paper's long runs amortize it.
/// `renumber` opts into the context-level renumbering pass (reorder.hpp).
template <class Real>
std::vector<KernelRow> run_airfoil(const mesh::UnstructuredMesh& m, ExecConfig cfg, int iters,
                                   bool renumber = false) {
  LocalCtx ctx(cfg);
  ctx.set_renumber(renumber);
  airfoil::Airfoil<Real, LocalCtx> app(ctx, m);
  app.run(1, 0);  // warmup
  clear_stats();
  app.run(iters, 0);
  return collect_rows(airfoil_kernels(), sizeof(Real));
}

/// Run Airfoil under the distributed-rank ("MPI") model.
template <class Real>
std::vector<KernelRow> run_airfoil_dist(const mesh::UnstructuredMesh& m, int nranks,
                                        ExecConfig rank_cfg, int iters, bool renumber = false) {
  dist::DistCtx ctx(nranks, rank_cfg);
  ctx.set_renumber(renumber);
  airfoil::Airfoil<Real, dist::DistCtx> app(ctx, m);
  app.run(1, 0);  // warmup
  clear_stats();
  app.run(iters, 0);
  return collect_rows(airfoil_kernels(), sizeof(Real));
}

template <class Real>
std::vector<KernelRow> run_volna(const mesh::UnstructuredMesh& m, ExecConfig cfg, int steps,
                                 bool renumber = false) {
  LocalCtx ctx(cfg);
  ctx.set_renumber(renumber);
  volna::Volna<Real, LocalCtx> app(ctx, m);
  app.run(1);  // warmup
  clear_stats();
  app.run(steps);
  return collect_rows(volna_kernels(), sizeof(Real));
}

template <class Real>
std::vector<KernelRow> run_volna_dist(const mesh::UnstructuredMesh& m, int nranks,
                                      ExecConfig rank_cfg, int steps, bool renumber = false) {
  dist::DistCtx ctx(nranks, rank_cfg);
  ctx.set_renumber(renumber);
  volna::Volna<Real, dist::DistCtx> app(ctx, m);
  app.run(1);  // warmup
  clear_stats();
  app.run(steps);
  return collect_rows(volna_kernels(), sizeof(Real));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("host: %s\n", cpu_summary().c_str());
  std::printf("==============================================================\n\n");
}

/// The "Phi model" configuration: widest vectors + thread oversubscription
/// (stands in for the Xeon Phi's 512-bit IMCI and 4-way SMT; see DESIGN.md).
inline ExecConfig phi_model(Backend b, int base_threads = 0) {
  ExecConfig cfg;
  cfg.backend = b;
  cfg.simd_width = 0;  // widest compiled (8 DP / 16 SP with AVX-512)
  cfg.nthreads = (base_threads > 0 ? base_threads : hardware_threads()) * 2;
  return cfg;
}

}  // namespace opv::bench
