// Figure 8b reproduction: tuning the MPI x OpenMP combination and the
// mini-partition (block) size.
//
// Paper: Airfoil DP on the Phi across {1x240, 6x40, 10x24, 12x20, 20x12,
// 30x8, 60x4} rank-x-thread combinations and block sizes 256..2048; larger
// rank counts prefer larger blocks until load imbalance dominates. We sweep
// rank x thread products equal to the host thread budget and block sizes
// 256..2048 on the vectorized backend.

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Sizes sz = Sizes::from_cli(cli);
  if (!cli.has("iters")) sz.airfoil_iters = 6;  // many configurations
  print_header("Figure 8b: MPI x OpenMP combination and block-size tuning",
               "Reguly et al., Fig. 8b");

  auto am = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  const int budget = sz.threads > 0 ? sz.threads : hardware_threads();
  std::printf("airfoil %d cells x %d iters, thread budget %d\n\n", am.ncells, sz.airfoil_iters,
              budget);

  // ranks x threads combinations with ranks*threads == budget.
  std::vector<std::pair<int, int>> combos;
  for (int ranks = 1; ranks <= budget; ++ranks)
    if (budget % ranks == 0) combos.emplace_back(ranks, budget / ranks);

  std::vector<int> blocks = {256, 512, 1024, 2048};

  std::vector<std::string> header = {"ranks x threads"};
  for (int b : blocks) header.push_back("B=" + std::to_string(b));
  perf::Table fig(header);

  double best = 1e300;
  std::string best_cfg;
  for (auto [ranks, threads] : combos) {
    std::vector<std::string> row = {std::to_string(ranks) + " x " + std::to_string(threads)};
    for (int b : blocks) {
      const ExecConfig rank_cfg{.backend = Backend::Simd,
                                .simd_width = 0,
                                .block_size = b,
                                .nthreads = threads};
      const double secs =
          total_seconds(run_airfoil_dist<double>(am, ranks, rank_cfg, sz.airfoil_iters));
      row.push_back(perf::Table::num(secs, 3));
      if (secs < best) {
        best = secs;
        best_cfg = row[0] + ", B=" + std::to_string(b);
      }
    }
    fig.add_row(row);
  }
  fig.print();
  std::printf("\nbest: %s (%.3f s)\n", best_cfg.c_str(), best);
  std::printf("\nShape check vs paper Fig. 8b: performance varies across the\n"
              "rank/thread grid; more ranks shrink per-rank working sets (favoring\n"
              "larger blocks) until halo redundancy and imbalance dominate.\n");
  return 0;
}
