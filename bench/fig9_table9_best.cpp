// Figure 9 + Table IX reproduction: best achieved performance per machine
// model and relative per-kernel speedups.
//
// Paper: best execution times of Airfoil (SP/DP, 2.8M) and Volna (SP) on
// CPU 1, CPU 2, the Phi and the K40; Table IX normalizes per-kernel
// performance to CPU 1. Our machine models on one host:
//   "CPU model"  best of {MPI, MPI+OpenMP} x Simd at AVX2 widths (4 DP/8 SP)
//   "scalar"     the same without vectorization (the CPU-1-like baseline)
//   "Phi model"  widest vectors + thread oversubscription
//   "SIMT wide"  the SIMT emulator at the widest lane count (GPU-style
//                execution model; NOT a GPU performance claim)

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Sizes sz = Sizes::from_cli(cli);
  print_header("Figure 9 + Table IX: best performance and per-kernel relatives",
               "Reguly et al., Fig. 9 and Table IX");

  auto am = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  auto vm = mesh::make_tri_periodic(sz.volna_n, sz.volna_n, 10.0, 10.0);
  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  std::printf("airfoil %d cells x %d iters, volna %d cells x %d steps\n\n", am.ncells,
              sz.airfoil_iters, vm.ncells, sz.volna_steps);

  const ExecConfig scalar_cfg{.backend = Backend::OpenMP, .nthreads = nthreads};
  const ExecConfig cpu_dp{.backend = Backend::Simd, .simd_width = 4, .nthreads = nthreads};
  const ExecConfig cpu_sp{.backend = Backend::Simd, .simd_width = 8, .nthreads = nthreads};
  const ExecConfig phi = phi_model(Backend::Simd);
  ExecConfig simt_wide{.backend = Backend::Simt, .simd_width = 0, .nthreads = nthreads};

  // ---- Figure 9: totals -------------------------------------------------------
  perf::Table fig({"application", "scalar baseline", "CPU model (AVX2 W)", "Phi model",
                   "SIMT wide"});
  auto t = [](const std::vector<KernelRow>& r) {
    return perf::Table::num(total_seconds(r), 3) + " s";
  };

  const auto a_sp_base = run_airfoil<float>(am, scalar_cfg, sz.airfoil_iters);
  const auto a_sp_cpu = run_airfoil<float>(am, cpu_sp, sz.airfoil_iters);
  const auto a_sp_phi = run_airfoil<float>(am, phi, sz.airfoil_iters);
  const auto a_sp_simt = run_airfoil<float>(am, simt_wide, sz.airfoil_iters);
  fig.add_row({"Airfoil SP", t(a_sp_base), t(a_sp_cpu), t(a_sp_phi), t(a_sp_simt)});

  const auto a_dp_base = run_airfoil<double>(am, scalar_cfg, sz.airfoil_iters);
  const auto a_dp_cpu = run_airfoil<double>(am, cpu_dp, sz.airfoil_iters);
  const auto a_dp_phi = run_airfoil<double>(am, phi, sz.airfoil_iters);
  const auto a_dp_simt = run_airfoil<double>(am, simt_wide, sz.airfoil_iters);
  fig.add_row({"Airfoil DP", t(a_dp_base), t(a_dp_cpu), t(a_dp_phi), t(a_dp_simt)});

  const auto v_base = run_volna<float>(vm, scalar_cfg, sz.volna_steps);
  const auto v_cpu = run_volna<float>(vm, cpu_sp, sz.volna_steps);
  const auto v_phi = run_volna<float>(vm, phi, sz.volna_steps);
  const auto v_simt = run_volna<float>(vm, simt_wide, sz.volna_steps);
  fig.add_row({"Volna SP", t(v_base), t(v_cpu), t(v_phi), t(v_simt)});
  fig.print();

  // ---- Table IX: per-kernel relative improvement over the scalar baseline ----
  std::printf("\nTable IX analog: per-kernel speedup relative to the scalar baseline\n"
              "(paper normalizes to CPU 1), Airfoil DP + Volna SP\n\n");
  perf::Table t9({"kernel", "scalar", "CPU model", "Phi model", "SIMT wide"});
  auto rel = [](const KernelRow& base, const KernelRow& other) {
    return perf::Table::num(other.seconds > 0 ? base.seconds / other.seconds : 0.0, 2);
  };
  for (std::size_t i = 0; i < a_dp_base.size(); ++i)
    t9.add_row({a_dp_base[i].name, "1.0", rel(a_dp_base[i], a_dp_cpu[i]),
                rel(a_dp_base[i], a_dp_phi[i]), rel(a_dp_base[i], a_dp_simt[i])});
  for (std::size_t i = 0; i < v_base.size(); ++i)
    t9.add_row({v_base[i].name, "1.0", rel(v_base[i], v_cpu[i]), rel(v_base[i], v_phi[i]),
                rel(v_base[i], v_simt[i])});
  t9.print();

  std::printf("\nShape checks vs paper Table IX:\n"
              " * direct kernels improve least (bandwidth-bound everywhere),\n"
              " * compute-bound kernels (adt_calc, compute_flux) improve most,\n"
              " * indirect-increment kernels improve least among vector gains\n"
              "   (serialized scatters), and the wider the lanes the larger the\n"
              "   penalty for irregular kernels.\n");
  return 0;
}
