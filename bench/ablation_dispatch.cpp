// Ablation: inlined template dispatch vs indirect (function-pointer) kernel
// calls. The paper (section 5) found that OP2's original generic
// op_par_loop, which called the user kernel through a function pointer,
// blocked compiler optimization; the generated specialized stubs (our
// template instantiation) fixed it. This bench measures that gap on the
// res_calc-like kernel.

#include <benchmark/benchmark.h>

#include <functional>

#include "core/context.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

struct EdgeKernel {
  template <class T>
  void operator()(const T* ql, const T* qr, const T* w, T* rl, T* rr) const {
    OPV_SIMD_MATH_USING;
    const T f = w[0] * sqrt(abs(qr[0] - ql[0])) + w[0] * (qr[0] * ql[0]);
    rl[0] += f;
    rr[0] -= f;
  }
};

/// Type-erased kernel: the "generic op_par_loop with a function pointer"
/// the paper's section 5 replaced with generated stubs.
struct ErasedKernel {
  std::function<void(const double*, const double*, const double*, double*, double*)> fn;
  void operator()(const double* a, const double* b, const double* c, double* d,
                  double* e) const {
    fn(a, b, c, d, e);
  }
};

struct Fixture {
  mesh::UnstructuredMesh m = mesh::make_quad_box(512, 512);
  Set cells{"cells", m.ncells};
  Set edges{"edges", m.nedges};
  Map e2c{"e2c", edges, cells, 2, m.edge_cells};
  Dat<double> q{"q", cells, 1};
  Dat<double> r{"r", cells, 1};
  Dat<double> w{"w", edges, 1};
  Fixture() {
    for (idx_t c = 0; c < m.ncells; ++c) q.at(c) = 1.0 + (c % 13) * 0.01;
    w.fill(0.3);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_dispatch_inlined(benchmark::State& state) {
  auto& f = fixture();
  const ExecConfig cfg{.backend = Backend::OpenMP, .collect_stats = false};
  for (auto _ : state) {
    par_loop(EdgeKernel{}, "inlined", f.edges, cfg, arg(f.q, 0, f.e2c, Access::READ),
             arg(f.q, 1, f.e2c, Access::READ), arg(f.w, Access::READ),
             arg(f.r, 0, f.e2c, Access::INC), arg(f.r, 1, f.e2c, Access::INC));
  }
  state.SetItemsProcessed(state.iterations() * f.m.nedges);
}

void BM_dispatch_fnptr(benchmark::State& state) {
  auto& f = fixture();
  const ExecConfig cfg{.backend = Backend::OpenMP, .collect_stats = false};
  ErasedKernel k{EdgeKernel{}};
  for (auto _ : state) {
    par_loop(k, "fnptr", f.edges, cfg, arg(f.q, 0, f.e2c, Access::READ),
             arg(f.q, 1, f.e2c, Access::READ), arg(f.w, Access::READ),
             arg(f.r, 0, f.e2c, Access::INC), arg(f.r, 1, f.e2c, Access::INC));
  }
  state.SetItemsProcessed(state.iterations() * f.m.nedges);
}

void BM_dispatch_inlined_simd(benchmark::State& state) {
  auto& f = fixture();
  const ExecConfig cfg{.backend = Backend::Simd, .collect_stats = false};
  for (auto _ : state) {
    par_loop(EdgeKernel{}, "inlined_simd", f.edges, cfg, arg(f.q, 0, f.e2c, Access::READ),
             arg(f.q, 1, f.e2c, Access::READ), arg(f.w, Access::READ),
             arg(f.r, 0, f.e2c, Access::INC), arg(f.r, 1, f.e2c, Access::INC));
  }
  state.SetItemsProcessed(state.iterations() * f.m.nedges);
}

/// The reusable Loop handle: conflict analysis, plan lookup and stats
/// binding amortized to zero per call — the steady-state dispatch path.
void BM_dispatch_loop_handle(benchmark::State& state) {
  auto& f = fixture();
  const ExecConfig cfg{.backend = Backend::Simd, .collect_stats = false};
  Loop loop(EdgeKernel{}, std::string("loop_handle_simd"), f.edges,
            arg<opv::READ>(f.q, 0, f.e2c), arg<opv::READ>(f.q, 1, f.e2c),
            arg<opv::READ>(f.w), arg<opv::INC>(f.r, 0, f.e2c), arg<opv::INC>(f.r, 1, f.e2c));
  for (auto _ : state) loop.run(cfg);
  state.SetItemsProcessed(state.iterations() * f.m.nedges);
}

BENCHMARK(BM_dispatch_inlined)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_dispatch_fnptr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_dispatch_inlined_simd)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_dispatch_loop_handle)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
