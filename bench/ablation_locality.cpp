// Ablation: iteration-order locality and the cost of irregular gathers.
//
// The paper attributes much of res_calc's behavior to caching efficiency
// of the indirect accesses (sections 6.2/6.4: "superfluous data movement",
// "limited by latency - from serialization as well as caching behavior").
// This bench quantifies it by running the same res_calc workload under
// three edge orderings on the same mesh:
//   generator order   (rings: near-perfect locality)
//   sorted-by-cell    (what a renumbering pass achieves)
//   random shuffle    (worst case: every gather is a cache miss)
// and under cell renumbering (reverse Cuthill-McKee).

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

double run_res_calc(const mesh::UnstructuredMesh& m, const ExecConfig& cfg, int iters) {
  const auto rows = run_airfoil<double>(m, cfg, iters);
  for (const auto& r : rows)
    if (r.name == "res_calc") return r.seconds;
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Sizes sz = Sizes::from_cli(cli);
  if (!cli.has("iters")) sz.airfoil_iters = 8;
  print_header("Ablation: edge ordering & renumbering vs gather locality (res_calc)",
               "Reguly et al., sections 6.2/6.4 (caching behavior of indirect loops)");

  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  const ExecConfig scalar{.backend = Backend::OpenMP, .nthreads = nthreads};
  const ExecConfig vec{.backend = Backend::Simd, .simd_width = 0, .nthreads = nthreads};

  perf::Table t({"edge ordering", "scalar res_calc (s)", "vectorized res_calc (s)",
                 "edge bandwidth"});

  auto add = [&](const char* name, mesh::UnstructuredMesh& m) {
    const auto stats = mesh::compute_stats(m);
    t.add_row({name, perf::Table::num(run_res_calc(m, scalar, sz.airfoil_iters), 3),
               perf::Table::num(run_res_calc(m, vec, sz.airfoil_iters), 3),
               format_count(static_cast<std::uint64_t>(stats.edge_bandwidth))});
  };

  auto base = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  std::printf("airfoil %d cells x %d iters, %d threads\n\n", base.ncells, sz.airfoil_iters,
              nthreads);
  add("generator order (ring-major)", base);

  auto shuffled = base;
  mesh::shuffle_edges(shuffled, 99);
  add("random shuffle (worst case)", shuffled);

  auto sorted = shuffled;
  mesh::sort_edges_by_cell(sorted);
  add("shuffled, then sorted by cell", sorted);

  auto rcm = shuffled;
  mesh::renumber_cells_rcm(rcm);
  mesh::sort_edges_by_cell(rcm);
  add("RCM cells + sorted edges", rcm);

  t.print();
  std::printf("\nShape check: shuffling the edge order destroys gather locality and\n"
              "inflates res_calc severalfold; sorting edges by cell (or renumbering\n"
              "with RCM) restores most of it. This is the locality the permute\n"
              "colorings of Fig. 8a give up.\n");
  return 0;
}
