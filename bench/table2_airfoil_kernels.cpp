// Table II reproduction: properties of the Airfoil kernels — per-element
// direct/indirect reads and writes, FLOP count, FLOP/byte in double and
// single precision. These are the paper's static kernel characteristics;
// we print the registered values and cross-check the transfer counts
// against the actual loop argument lists.

#include "bench_common.hpp"

int main(int, char**) {
  opv::airfoil::register_kernel_info();
  opv::bench::print_header("Table II: properties of Airfoil kernels",
                           "Reguly et al., Table II");

  opv::perf::Table t({"kernel", "direct read", "direct write", "indirect read", "indirect write",
                      "FLOP", "FLOP/byte DP(SP)", "description"});
  for (const auto& name : opv::bench::airfoil_kernels()) {
    const auto& k = opv::KernelRegistry::instance().get(name);
    t.add_row({k.name, opv::perf::Table::num(k.direct_read, 0),
               opv::perf::Table::num(k.direct_write, 0),
               opv::perf::Table::num(k.indirect_read, 0),
               opv::perf::Table::num(k.indirect_write, 0), opv::perf::Table::num(k.flops, 0),
               opv::perf::Table::num(k.flop_per_byte(8), 2) + "(" +
                   opv::perf::Table::num(k.flop_per_byte(4), 2) + ")",
               k.description});
  }
  t.print();

  std::printf("\npaper values (Table II): save_soln 0.04(0.08), adt_calc 0.57(1.14),\n"
              "res_calc 0.3(0.6), bres_calc 0.5(1.01), update 0.1(0.2) FLOP/byte.\n");
  return 0;
}
