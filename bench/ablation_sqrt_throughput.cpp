// Ablation: scalar vs vector sqrt/division throughput — the paper's
// explanation (section 6.2) for adt_calc and compute_flux being compute-
// bound without vectorization ("one DP sqrt per 44 cycles") and becoming
// bandwidth-bound once vectorized.

#include "bench_common.hpp"
#include "perf/probes.hpp"

int main(int, char**) {
  opv::bench::print_header("Ablation: sqrt throughput, scalar vs vector",
                           "Reguly et al., section 6.2 (sqrt cost argument)");

  const auto dp = opv::perf::sqrt_throughput_dp();
  const auto sp = opv::perf::sqrt_throughput_sp();

  opv::perf::Table t({"precision", "scalar ns/op", "vector ns/op (per lane)", "speedup"});
  t.add_row({"double", opv::perf::Table::num(dp.scalar_ns_per_op, 3),
             opv::perf::Table::num(dp.vector_ns_per_op, 3),
             opv::perf::Table::num(dp.scalar_ns_per_op / dp.vector_ns_per_op, 2) + "x"});
  t.add_row({"float", opv::perf::Table::num(sp.scalar_ns_per_op, 3),
             opv::perf::Table::num(sp.vector_ns_per_op, 3),
             opv::perf::Table::num(sp.scalar_ns_per_op / sp.vector_ns_per_op, 2) + "x"});
  t.print();

  std::printf("\nShape check: vector sqrt amortizes the long-latency unit across\n"
              "lanes; per-value cost drops by roughly the lane count, removing the\n"
              "compute bottleneck from adt_calc/compute_flux as the paper observes.\n");
  return 0;
}
