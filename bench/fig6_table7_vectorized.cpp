// Figure 6 + Table VII reproduction: explicit vector intrinsics on the CPU.
//
// Paper: Airfoil SP/DP and Volna SP under {MPI, MPI vectorized, OpenMP,
// OpenMP vectorized, OpenCL}; Table VII gives the vectorized pure-MPI
// per-kernel breakdown. Our configurations:
//   MPI            scalar rank simulator (1 rank per thread)
//   MPI vectorized ranks running the Simd backend (AVX2-width vectors)
//   OpenMP         scalar colored blocks
//   OpenMP vect.   Simd backend (AVX2-width vectors) over colored blocks
//   OpenCL         the SIMT emulator

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Sizes sz = Sizes::from_cli(cli);
  print_header("Figure 6 + Table VII: explicit SIMD vectorization on the CPU",
               "Reguly et al., Fig. 6 and Table VII");

  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  auto am = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  auto vm = mesh::make_tri_periodic(sz.volna_n, sz.volna_n, 10.0, 10.0);
  std::printf("airfoil %d cells x %d iters, volna %d cells x %d steps, %d threads\n\n",
              am.ncells, sz.airfoil_iters, vm.ncells, sz.volna_steps, nthreads);

  const ExecConfig mpi_scalar{.backend = Backend::Seq, .nthreads = 1};
  // AVX(2)-class widths: 4 double lanes / 8 float lanes (the paper's AVX).
  const ExecConfig mpi_vec_dp{.backend = Backend::Simd, .simd_width = 4, .nthreads = 1};
  const ExecConfig mpi_vec_sp{.backend = Backend::Simd, .simd_width = 8, .nthreads = 1};
  const ExecConfig omp_scalar{.backend = Backend::OpenMP, .nthreads = nthreads};
  const ExecConfig omp_vec_dp{.backend = Backend::Simd, .simd_width = 4, .nthreads = nthreads};
  const ExecConfig omp_vec_sp{.backend = Backend::Simd, .simd_width = 8, .nthreads = nthreads};
  const ExecConfig simt_dp{.backend = Backend::Simt, .simd_width = 4, .nthreads = nthreads};
  const ExecConfig simt_sp{.backend = Backend::Simt, .simd_width = 8, .nthreads = nthreads};

  auto t = [](const std::vector<KernelRow>& r) { return perf::Table::num(total_seconds(r), 3); };

  // ---- Figure 6 ------------------------------------------------------------
  perf::Table fig({"application", "MPI", "MPI vectorized", "OpenMP", "OpenMP vectorized",
                   "OpenCL (SIMT model)"});

  const auto a_sp = run_airfoil_dist<float>(am, nthreads, mpi_scalar, sz.airfoil_iters);
  const auto a_sp_v = run_airfoil_dist<float>(am, nthreads, mpi_vec_sp, sz.airfoil_iters);
  const auto a_sp_o = run_airfoil<float>(am, omp_scalar, sz.airfoil_iters);
  const auto a_sp_ov = run_airfoil<float>(am, omp_vec_sp, sz.airfoil_iters);
  const auto a_sp_cl = run_airfoil<float>(am, simt_sp, sz.airfoil_iters);
  fig.add_row({"Airfoil SP", t(a_sp), t(a_sp_v), t(a_sp_o), t(a_sp_ov), t(a_sp_cl)});

  const auto a_dp = run_airfoil_dist<double>(am, nthreads, mpi_scalar, sz.airfoil_iters);
  const auto a_dp_v = run_airfoil_dist<double>(am, nthreads, mpi_vec_dp, sz.airfoil_iters);
  const auto a_dp_o = run_airfoil<double>(am, omp_scalar, sz.airfoil_iters);
  const auto a_dp_ov = run_airfoil<double>(am, omp_vec_dp, sz.airfoil_iters);
  const auto a_dp_cl = run_airfoil<double>(am, simt_dp, sz.airfoil_iters);
  fig.add_row({"Airfoil DP", t(a_dp), t(a_dp_v), t(a_dp_o), t(a_dp_ov), t(a_dp_cl)});

  const auto v_sp = run_volna_dist<float>(vm, nthreads, mpi_scalar, sz.volna_steps);
  const auto v_sp_v = run_volna_dist<float>(vm, nthreads, mpi_vec_sp, sz.volna_steps);
  const auto v_sp_o = run_volna<float>(vm, omp_scalar, sz.volna_steps);
  const auto v_sp_ov = run_volna<float>(vm, omp_vec_sp, sz.volna_steps);
  const auto v_sp_cl = run_volna<float>(vm, simt_sp, sz.volna_steps);
  fig.add_row({"Volna SP", t(v_sp), t(v_sp_v), t(v_sp_o), t(v_sp_ov), t(v_sp_cl)});
  fig.print();

  const double sp_speedup = total_seconds(a_sp) / total_seconds(a_sp_v);
  const double dp_speedup = total_seconds(a_dp) / total_seconds(a_dp_v);
  std::printf("\nAirfoil vectorization speedup (MPI): SP %.2fx, DP %.2fx\n"
              "(paper: 1.6-2.0x SP, 1.1-1.4x DP)\n", sp_speedup, dp_speedup);

  // ---- Table VII ------------------------------------------------------------
  std::printf("\nTable VII analog: vectorized pure-MPI per-kernel breakdown,\n"
              "double(single) precision\n\n");
  perf::Table t7({"kernel", "time DP(SP) s", "BW DP(SP) GB/s"});
  for (std::size_t i = 0; i < a_dp_v.size(); ++i)
    t7.add_row({a_dp_v[i].name,
                perf::Table::num(a_dp_v[i].seconds, 3) + "(" +
                    perf::Table::num(a_sp_v[i].seconds, 3) + ")",
                perf::Table::num(a_dp_v[i].gbs, 1) + "(" +
                    perf::Table::num(a_sp_v[i].gbs, 1) + ")"});
  for (const auto& r : v_sp_v)
    t7.add_row({r.name, "(" + perf::Table::num(r.seconds, 3) + ")",
                "(" + perf::Table::num(r.gbs, 1) + ")"});
  t7.print();

  std::printf("\nShape checks vs paper:\n"
              " * SP gains more than DP from vectorization (same register width,\n"
              "   twice the lanes),\n"
              " * direct kernels (save_soln/update) see little gain (already\n"
              "   bandwidth-bound),\n"
              " * compute-heavy kernels (adt_calc/compute_flux) gain most,\n"
              " * indirect-increment kernels gain less (serialized scatters).\n");
  return 0;
}
