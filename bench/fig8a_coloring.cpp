// Figure 8a reproduction: choice of coloring approach.
//
// Paper: Airfoil (2.8M) runtime under the original two-level coloring vs
// "full permute" vs "block permute", on the K40 and the Xeon Phi (the two
// machines with hardware scatter). Our wide-vector Phi model (AVX-512 with
// native scatter) and the SIMT emulator at warp-like width stand in. The
// paper's finding to reproduce: the original scheme wins despite serialized
// scatters, because the permute schemes destroy data reuse and formerly-
// direct accesses become gathers.

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Sizes sz = Sizes::from_cli(cli);
  print_header("Figure 8a: coloring approaches (Original / FullPermute / BlockPermute)",
               "Reguly et al., Fig. 8a");

  auto am = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  std::printf("airfoil %d cells x %d iters, %d threads\n\n", am.ncells, sz.airfoil_iters,
              nthreads);

  perf::Table fig({"config", "Original (TwoLevel)", "Full Permute", "Block Permute"});

  auto run_with = [&](auto real_tag, ColoringStrategy strat) {
    using Real = decltype(real_tag);
    const ExecConfig cfg{.backend = Backend::Simd,
                         .coloring = strat,
                         .simd_width = 0,
                         .nthreads = nthreads};
    return total_seconds(run_airfoil<Real>(am, cfg, sz.airfoil_iters));
  };

  auto row = [&](const char* name, auto real_tag) {
    using Real = decltype(real_tag);
    const double orig = run_with(Real{}, ColoringStrategy::TwoLevel);
    const double full = run_with(Real{}, ColoringStrategy::FullPermute);
    const double block = run_with(Real{}, ColoringStrategy::BlockPermute);
    fig.add_row({name, perf::Table::num(orig, 3) + " s", perf::Table::num(full, 3) + " s",
                 perf::Table::num(block, 3) + " s"});
  };
  row("Phi-model Single (W=16)", float{});
  row("Phi-model Double (W=8)", double{});
  fig.print();

  // res_calc is the kernel the coloring choice actually affects.
  std::printf("\nres_calc only (the indirect-increment kernel, DP):\n");
  perf::Table t({"strategy", "res_calc time (s)", "useful BW (GB/s)"});
  for (auto strat : {ColoringStrategy::TwoLevel, ColoringStrategy::FullPermute,
                     ColoringStrategy::BlockPermute}) {
    const ExecConfig cfg{.backend = Backend::Simd,
                         .coloring = strat,
                         .simd_width = 0,
                         .nthreads = nthreads};
    const auto rows = run_airfoil<double>(am, cfg, sz.airfoil_iters);
    for (const auto& r : rows)
      if (r.name == "res_calc")
        t.add_row({coloring_name(strat), perf::Table::num(r.seconds, 3),
                   perf::Table::num(r.gbs, 1)});
  }
  t.print();

  std::printf("\nReading vs paper Fig. 8a: the paper's Phi/K40 kept the original\n"
              "two-level scheme ahead because the permutes' locality loss outweighed\n"
              "removing the serialized scatter. The balance is hardware-dependent:\n"
              "on a host with real AVX-512 scatters and a large last-level cache the\n"
              "permutes can win on res_calc — the same tradeoff, different constants\n"
              "(see EXPERIMENTS.md).\n");
  return 0;
}
