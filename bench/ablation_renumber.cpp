// Ablation: the context-level renumbering pass (core/reorder.hpp) vs the
// locality it is supposed to recover.
//
// bench/ablation_locality shows WHAT ordering is worth (mesh-level utilities
// applied by hand); this bench shows the RUNTIME DELIVERING it: the same
// res_calc workload on a shuffled-edge mesh, with and without
// ctx.set_renumber(true), against the generator-order ceiling. The headline
// number is the recovered fraction
//
//     (t_shuffled - t_renumbered) / (t_shuffled - t_generator)
//
// per backend and rank count (sections 6.2/6.4 attribute the gap to the
// caching behavior of the indirect gathers). Plan color counts are reported
// for the shuffled vs renumbered edge->cell conflicts, and a fast
// sequential equivalence check (renumber on vs off within floating-point
// reassociation tolerance) makes the bench usable as a functional smoke:
// it exits non-zero on divergence.
//
//   ./ablation_renumber [--small|--large] [--iters=N] [--threads=N]
//                       [--ranks=N] [--json=FILE] [--no-dist]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

double res_calc_secs(const std::vector<KernelRow>& rows) {
  for (const auto& r : rows)
    if (r.name == "res_calc") return r.seconds;
  return 0.0;
}

/// Coloring footprint of the res_calc conflicts (edge->cell, both slots) on
/// a mesh ordering: declare the edge/cell universe into a LocalCtx
/// (optionally renumbered through the context pass) and build the plans the
/// engine would use.
struct PlanColors {
  int block_colors = 0;
  int elem_colors = 0;
  int global_colors = 0;
};

PlanColors plan_colors(const mesh::UnstructuredMesh& m, bool renumber) {
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  auto pecell = ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  if (renumber) ctx.renumber(cells);
  const std::vector<IncRef> conflicts = {{pecell, 0}, {pecell, 1}};
  const auto two =
      build_plan(m.nedges, conflicts, ExecConfig::kDefaultBlockSize, ColoringStrategy::TwoLevel);
  const auto full = build_plan(m.nedges, conflicts, ExecConfig::kDefaultBlockSize,
                               ColoringStrategy::FullPermute);
  return {two->nblock_colors, two->max_elem_colors, full->nglobal_colors};
}

/// Functional smoke: renumber on vs off on a small shuffled mesh must agree
/// within floating-point reassociation tolerance (reordering an
/// indirect-increment loop reassociates the per-cell sums, so bitwise
/// equality is the wrong bar here — tests/test_reorder.cpp pins the bitwise
/// manual-relayout contract).
bool equivalence_ok() {
  auto m = mesh::make_airfoil_omesh(96, 32);
  mesh::shuffle_edges(m, 7);
  const ExecConfig cfg{.backend = Backend::Seq};

  LocalCtx off(cfg);
  airfoil::Airfoil<double, LocalCtx> a(off, m);
  a.run(2, 0);
  const auto qa = a.fetch_q();

  LocalCtx on(cfg);
  on.set_renumber(true);
  airfoil::Airfoil<double, LocalCtx> b(on, m);
  b.run(2, 0);
  const auto qb = b.fetch_q();

  if (qa.size() != qb.size()) return false;
  // Divergence relative to the field norm (near-zero components are pure
  // cancellation residue, so element-wise relative error is meaningless).
  double norm = 0.0, max_diff = 0.0;
  for (std::size_t i = 0; i < qa.size(); ++i) {
    norm = std::max(norm, std::abs(qa[i]));
    max_diff = std::max(max_diff, std::abs(qa[i] - qb[i]));
  }
  const double rel = norm > 0.0 ? max_diff / norm : 1.0;
  std::printf("equivalence check (Seq, 2 iters): divergence %.3e of the field norm\n\n", rel);
  return rel < 1e-12;
}

struct Row {
  std::string label;
  double generator = 0, shuffled = 0, renumbered = 0;
  [[nodiscard]] double recovered() const {
    const double gap = shuffled - generator;
    return gap > 0.0 ? (shuffled - renumbered) / gap : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Sizes sz = Sizes::from_cli(cli);
  if (!cli.has("iters")) sz.airfoil_iters = 8;
  print_header("Ablation: context-level renumbering vs shuffled-edge locality (res_calc)",
               "Reguly et al., sections 6.2/6.4 (caching behavior of indirect loops)");

  if (!equivalence_ok()) {
    std::fprintf(stderr,
                 "FAIL: renumbered execution diverged from the un-renumbered baseline\n");
    return 1;
  }

  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  const ExecConfig scalar{.backend = Backend::OpenMP, .nthreads = nthreads};
  const ExecConfig vec{.backend = Backend::Simd, .simd_width = 0, .nthreads = nthreads};

  auto base = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  auto shuffled = base;
  mesh::shuffle_edges(shuffled, 99);
  std::printf("airfoil %d cells x %d iters, %d threads\n\n", base.ncells, sz.airfoil_iters,
              nthreads);

  std::vector<Row> rows;
  {
    Row r{"local scalar (OpenMP)"};
    r.generator = res_calc_secs(run_airfoil<double>(base, scalar, sz.airfoil_iters));
    r.shuffled = res_calc_secs(run_airfoil<double>(shuffled, scalar, sz.airfoil_iters));
    r.renumbered = res_calc_secs(run_airfoil<double>(shuffled, scalar, sz.airfoil_iters, true));
    rows.push_back(r);
  }
  {
    Row r{"local vector (Simd)"};
    r.generator = res_calc_secs(run_airfoil<double>(base, vec, sz.airfoil_iters));
    r.shuffled = res_calc_secs(run_airfoil<double>(shuffled, vec, sz.airfoil_iters));
    r.renumbered = res_calc_secs(run_airfoil<double>(shuffled, vec, sz.airfoil_iters, true));
    rows.push_back(r);
  }
  if (!cli.has("no-dist")) {
    std::vector<int> rank_counts;
    if (cli.has("ranks")) rank_counts.push_back(static_cast<int>(cli.get_int("ranks", 4)));
    else rank_counts = {2, 4};
    const ExecConfig rank_cfg{.backend = Backend::OpenMP, .nthreads = 1};
    for (int nr : rank_counts) {
      Row r{"dist " + std::to_string(nr) + " ranks"};
      r.generator = res_calc_secs(run_airfoil_dist<double>(base, nr, rank_cfg, sz.airfoil_iters));
      r.shuffled =
          res_calc_secs(run_airfoil_dist<double>(shuffled, nr, rank_cfg, sz.airfoil_iters));
      r.renumbered = res_calc_secs(
          run_airfoil_dist<double>(shuffled, nr, rank_cfg, sz.airfoil_iters, true));
      rows.push_back(r);
    }
  }

  perf::Table t({"configuration", "generator (s)", "shuffled (s)", "renumbered (s)",
                 "recovered"});
  for (const Row& r : rows)
    t.add_row({r.label, perf::Table::num(r.generator, 3), perf::Table::num(r.shuffled, 3),
               perf::Table::num(r.renumbered, 3), perf::Table::pct(r.recovered(), 1)});
  t.print();

  const PlanColors pc_shuf = plan_colors(shuffled, false);
  const PlanColors pc_ren = plan_colors(shuffled, true);
  perf::Table ct({"edge ordering", "block colors", "max elem colors", "global colors"});
  ct.add_row({"shuffled", std::to_string(pc_shuf.block_colors),
              std::to_string(pc_shuf.elem_colors), std::to_string(pc_shuf.global_colors)});
  ct.add_row({"renumbered", std::to_string(pc_ren.block_colors),
              std::to_string(pc_ren.elem_colors), std::to_string(pc_ren.global_colors)});
  std::printf("\n");
  ct.print();

  std::printf("\nShape check: the context pass should recover most (>= 70%% on a quiet\n"
              "machine at default sizes) of the generator-vs-shuffled res_calc gap —\n"
              "the locality sections 6.2/6.4 assume, now a runtime guarantee.\n");

  const std::string json = cli.get("json", "");
  if (!json.empty()) {
    FILE* f = std::fopen(json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_renumber\",\n  \"mesh\": \"%s\",\n",
                 base.name.c_str());
    std::fprintf(f, "  \"cells\": %d,\n  \"iters\": %d,\n  \"threads\": %d,\n", base.ncells,
                 sz.airfoil_iters, nthreads);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"generator_s\": %.6f, \"shuffled_s\": %.6f, "
                   "\"renumbered_s\": %.6f, \"recovered\": %.4f}%s\n",
                   r.label.c_str(), r.generator, r.shuffled, r.renumbered, r.recovered(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"plan_colors\": {\"shuffled\": {\"block\": %d, \"elem\": %d, \"global\": "
                 "%d}, \"renumbered\": {\"block\": %d, \"elem\": %d, \"global\": %d}}\n}\n",
                 pc_shuf.block_colors, pc_shuf.elem_colors, pc_shuf.global_colors,
                 pc_ren.block_colors, pc_ren.elem_colors, pc_ren.global_colors);
    std::fclose(f);
    std::printf("\nwrote %s\n", json.c_str());
  }
  return 0;
}
