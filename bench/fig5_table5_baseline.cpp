// Figure 5 + Table V reproduction: baseline (non-vectorized) performance.
//
// Paper: Airfoil (SP+DP, 2.8M cells) and Volna (SP) under the pure-MPI and
// OpenMP backends; Table V reports per-kernel time / useful bandwidth /
// GFLOP-s for the MPI backend. Our "MPI" is the distributed-rank simulator
// (one scalar rank per hardware thread, RCB partitions, halo exchanges);
// "OpenMP" is scalar colored-block execution.

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Sizes sz = Sizes::from_cli(cli);
  print_header("Figure 5 + Table V: baseline (non-vectorized) performance",
               "Reguly et al., Fig. 5 and Table V");

  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  auto airfoil_mesh = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  auto volna_mesh = mesh::make_tri_periodic(sz.volna_n, sz.volna_n, 10.0, 10.0);
  std::printf("airfoil: %d cells, %d iters; volna: %d cells, %d steps; %d threads/ranks\n\n",
              airfoil_mesh.ncells, sz.airfoil_iters, volna_mesh.ncells, sz.volna_steps,
              nthreads);

  const ExecConfig mpi_rank{.backend = Backend::Seq, .nthreads = 1};
  const ExecConfig omp{.backend = Backend::OpenMP, .nthreads = nthreads};

  // ---- Figure 5: total runtimes -------------------------------------------
  perf::Table fig5({"application", "MPI (scalar ranks)", "OpenMP (scalar)"});
  auto total = [](const std::vector<KernelRow>& rows) {
    return perf::Table::num(total_seconds(rows), 3) + " s";
  };

  const auto a_sp_mpi = run_airfoil_dist<float>(airfoil_mesh, nthreads, mpi_rank, sz.airfoil_iters);
  const auto a_sp_omp = run_airfoil<float>(airfoil_mesh, omp, sz.airfoil_iters);
  fig5.add_row({"Airfoil single", total(a_sp_mpi), total(a_sp_omp)});

  const auto a_dp_mpi =
      run_airfoil_dist<double>(airfoil_mesh, nthreads, mpi_rank, sz.airfoil_iters);
  const auto a_dp_omp = run_airfoil<double>(airfoil_mesh, omp, sz.airfoil_iters);
  fig5.add_row({"Airfoil double", total(a_dp_mpi), total(a_dp_omp)});

  const auto v_sp_mpi = run_volna_dist<float>(volna_mesh, nthreads, mpi_rank, sz.volna_steps);
  const auto v_sp_omp = run_volna<float>(volna_mesh, omp, sz.volna_steps);
  fig5.add_row({"Volna single", total(v_sp_mpi), total(v_sp_omp)});
  fig5.print();

  // ---- Table V: per-kernel breakdown (MPI backend) --------------------------
  std::printf("\nTable V analog: per-kernel time / useful BW / GFLOP-s, MPI backend\n\n");
  perf::Table t5({"kernel", "time (s)", "BW (GB/s)", "GFLOP/s"});
  auto emit = [&](const char* app, const std::vector<KernelRow>& rows) {
    t5.add_row({std::string("-- ") + app, "", "", ""});
    for (const auto& r : rows)
      t5.add_row({r.name, perf::Table::num(r.seconds, 3), perf::Table::num(r.gbs, 1),
                  perf::Table::num(r.gflops, 1)});
  };
  emit("Airfoil double (MPI)", a_dp_mpi);
  emit("Volna single (MPI)", v_sp_mpi);
  t5.print();

  std::printf("\nShape checks vs paper:\n"
              " * direct kernels (save_soln/update/RK_1/RK_2) achieve the highest\n"
              "   useful bandwidth of all loops (bandwidth-bound),\n"
              " * adt_calc/compute_flux show low bandwidth but high GFLOP-s\n"
              "   (compute-bound on scalar sqrt), res_calc/space_disc sit lowest\n"
              "   (indirect increments).\n");
  return 0;
}
