// Figure 7 + Table VIII reproduction: the Xeon Phi model.
//
// Paper: on the Phi, scalar vs compiler-auto-vectorized vs intrinsics
// versions of Airfoil (2.8M) and Volna, pure MPI vs MPI+OpenMP. Our Phi
// model uses the widest compiled vectors (AVX-512: 8 DP / 16 SP lanes, with
// native gather/scatter like IMCI) and 2x thread oversubscription.
// Auto-vectorized = the AutoVec backend (scalar kernels on permuted
// lane-independent loops with #pragma omp simd — whether the compiler
// vectorizes them is exactly the experiment).

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Sizes sz = Sizes::from_cli(cli);
  print_header("Figure 7 + Table VIII: scalar vs auto-vectorized vs intrinsics (Phi model)",
               "Reguly et al., Fig. 7 and Table VIII");

  auto am = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  auto vm = mesh::make_tri_periodic(sz.volna_n, sz.volna_n, 10.0, 10.0);
  const int phi_threads = (sz.threads > 0 ? sz.threads : hardware_threads()) * 2;

  const ExecConfig scalar{.backend = Backend::OpenMP, .nthreads = phi_threads};
  const ExecConfig autovec{.backend = Backend::AutoVec, .nthreads = phi_threads};
  const ExecConfig intr{.backend = Backend::Simd, .simd_width = 0, .nthreads = phi_threads};

  std::printf("airfoil %d cells x %d iters, volna %d cells x %d steps, %d threads "
              "(oversubscribed)\n\n",
              am.ncells, sz.airfoil_iters, vm.ncells, sz.volna_steps, phi_threads);

  auto t = [](const std::vector<KernelRow>& r) { return perf::Table::num(total_seconds(r), 3); };

  // ---- Figure 7 --------------------------------------------------------------
  perf::Table fig({"application", "scalar", "auto-vectorized", "intrinsics"});
  const auto a_sp_s = run_airfoil<float>(am, scalar, sz.airfoil_iters);
  const auto a_sp_a = run_airfoil<float>(am, autovec, sz.airfoil_iters);
  const auto a_sp_i = run_airfoil<float>(am, intr, sz.airfoil_iters);
  fig.add_row({"Airfoil SP", t(a_sp_s), t(a_sp_a), t(a_sp_i)});

  const auto a_dp_s = run_airfoil<double>(am, scalar, sz.airfoil_iters);
  const auto a_dp_a = run_airfoil<double>(am, autovec, sz.airfoil_iters);
  const auto a_dp_i = run_airfoil<double>(am, intr, sz.airfoil_iters);
  fig.add_row({"Airfoil DP", t(a_dp_s), t(a_dp_a), t(a_dp_i)});

  const auto v_s = run_volna<float>(vm, scalar, sz.volna_steps);
  const auto v_a = run_volna<float>(vm, autovec, sz.volna_steps);
  const auto v_i = run_volna<float>(vm, intr, sz.volna_steps);
  fig.add_row({"Volna SP", t(v_s), t(v_a), t(v_i)});
  fig.print();

  std::printf("\nintrinsics speedup over scalar: Airfoil SP %.2fx, DP %.2fx, Volna %.2fx\n"
              "(paper Phi: 2.0-2.2x SP, 1.7-1.8x DP)\n\n",
              total_seconds(a_sp_s) / total_seconds(a_sp_i),
              total_seconds(a_dp_s) / total_seconds(a_dp_i),
              total_seconds(v_s) / total_seconds(v_i));

  // ---- Table VIII --------------------------------------------------------------
  std::printf("Table VIII analog: per-kernel breakdown, double(single)\n\n");
  perf::Table t8({"kernel", "scalar time/BW", "auto-vec time/BW", "intrinsics time/BW"});
  auto cell = [](const KernelRow& r) {
    return perf::Table::num(r.seconds, 3) + " / " + perf::Table::num(r.gbs, 1);
  };
  for (std::size_t i = 0; i < a_dp_s.size(); ++i)
    t8.add_row({a_dp_s[i].name, cell(a_dp_s[i]), cell(a_dp_a[i]), cell(a_dp_i[i])});
  for (std::size_t i = 0; i < v_s.size(); ++i)
    t8.add_row({v_s[i].name, cell(v_s[i]), cell(v_a[i]), cell(v_i[i])});
  t8.print();

  std::printf("\nShape checks vs paper Table VIII: auto-vectorization fails to beat\n"
              "scalar on gather/scatter loops even with lane independence, while\n"
              "intrinsics speed up every indirect kernel 2-4x; adt_calc loses its\n"
              "sqrt bottleneck and becomes bandwidth-bound.\n");
  return 0;
}
