// Ablation: mesh ingest cost and transparency.
//
// The paper's meshes arrive as files (OP2's new_grid.dat; Volna's coastal
// triangulation from a meshing tool). This bench measures what the ingest
// path costs relative to the solve it feeds, per stage and per format —
//
//   write / parse (MSH v2.2, MSH v4.1, OPVM/OPVT binary)
//   convert (GmshMesh -> FV containers, edge/face derivation + validation)
//   context build (decl + finalize + geometry, i.e. Airfoil/Tet3D ctor)
//
// — and doubles as the ingest correctness gate: before timing anything it
// verifies that v2.2 write->read round-trips are exact, that a mesh arriving
// through a .msh file is BITWISE identical to its in-memory twin after full
// runs (quad box + Airfoil, tet box + Tet3D; Seq, renumber + chain), and
// that Tet3D on an imported mesh agrees across backends within 1e-12 of the
// field norm. Exits non-zero on any divergence, so scripts/check.sh can use
// it as the ingest smoke.
//
//   ./ablation_ingest [--small|--large] [--n=N] [--steps=N] [--json=FILE]
//                     [--fixtures=DIR] [--no-dist]
//
// --n sets the tet box edge (cells = 6*n^3); the 2D mesh follows the usual
// --small/--large sizing. --fixtures additionally parses every .msh file in
// DIR (the committed golden corpus) as a format conformance pass.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/tet3d/tet3d.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "mesh/io.hpp"
#include "mesh/tetmesh.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

std::string tmp_file(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

double max_rel_divergence(const aligned_vector<double>& a, const aligned_vector<double>& b) {
  if (a.size() != b.size()) return 1.0;
  double norm = 0.0, diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    norm = std::max(norm, std::abs(a[i]));
    diff = std::max(diff, std::abs(a[i] - b[i]));
  }
  return norm > 0.0 ? diff / norm : 1.0;
}

aligned_vector<double> airfoil_field(const mesh::UnstructuredMesh& m, const ExecConfig& cfg,
                                     int steps, bool renumber, bool chain) {
  LocalCtx ctx(cfg);
  if (renumber) ctx.set_renumber(true);
  airfoil::Airfoil<double, LocalCtx> app(ctx, m, chain);
  app.run(steps, 0);
  return app.fetch_q();
}

aligned_vector<double> tet3d_field(const mesh::TetMesh& m, const ExecConfig& cfg, int steps,
                                   bool renumber, bool chain) {
  LocalCtx ctx(cfg);
  if (renumber) ctx.set_renumber(true);
  tet3d::Tet3D<double, LocalCtx> app(ctx, m, chain);
  app.run(steps, 0);
  return app.fetch_u();
}

/// Gate 1+2: the 2D path. v2.2 round-trip exactness, then imported-vs-
/// in-memory bitwise equality through renumber + chain (and DistCtx unless
/// disabled).
bool gate_2d(int steps, bool with_dist) {
  auto m0 = mesh::make_quad_box(48, 36);
  mesh::perturb_nodes(m0, 0.002, 17);
  const mesh::GmshMesh g = mesh::from_unstructured(m0);
  const std::string path = tmp_file("opv_ingest_2d.msh");
  mesh::write_msh(g, path, 2);
  if (!(mesh::read_msh(path) == g)) {
    std::fprintf(stderr, "FAIL: MSH v2.2 write->read round-trip is not exact (2D)\n");
    return false;
  }
  const mesh::UnstructuredMesh mem = mesh::to_unstructured(g);
  const mesh::UnstructuredMesh imp = mesh::to_unstructured(mesh::read_msh(path));
  const ExecConfig cfg{.backend = Backend::Seq};
  const auto qa = airfoil_field(mem, cfg, steps, true, true);
  const auto qb = airfoil_field(imp, cfg, steps, true, true);
  if (qa.size() != qb.size() ||
      std::memcmp(qa.data(), qb.data(), qa.size() * sizeof(double)) != 0) {
    std::fprintf(stderr, "FAIL: imported quad mesh diverged bitwise from the in-memory twin\n");
    return false;
  }
  if (with_dist) {
    dist::DistCtx ca(4, cfg), cb(4, cfg);
    airfoil::Airfoil<double, dist::DistCtx> aa(ca, mem), ab(cb, imp);
    aa.run(steps, 0);
    ab.run(steps, 0);
    const auto da = aa.fetch_q(), db = ab.fetch_q();
    if (da.size() != db.size() ||
        std::memcmp(da.data(), db.data(), da.size() * sizeof(double)) != 0) {
      std::fprintf(stderr, "FAIL: imported quad mesh diverged bitwise under DistCtx\n");
      return false;
    }
  }
  std::printf("gate: 2D round-trip exact, imported == in-memory bitwise (%d steps)\n", steps);
  return true;
}

/// Gate 3+4: the 3D path, plus cross-backend agreement on the imported mesh.
bool gate_3d(int steps, bool with_dist) {
  const mesh::TetMesh mem = mesh::make_tet_box(6, 6, 5);
  const mesh::GmshMesh g = mesh::from_tet(mem);
  const std::string path = tmp_file("opv_ingest_3d.msh");
  mesh::write_msh(g, path, 2);
  if (!(mesh::read_msh(path) == g)) {
    std::fprintf(stderr, "FAIL: MSH v2.2 write->read round-trip is not exact (3D)\n");
    return false;
  }
  const mesh::TetMesh imp = mesh::to_tet(mesh::read_msh(path));
  const ExecConfig cfg{.backend = Backend::Seq};
  const auto ua = tet3d_field(mem, cfg, steps, true, true);
  const auto ub = tet3d_field(imp, cfg, steps, true, true);
  if (ua.size() != ub.size() ||
      std::memcmp(ua.data(), ub.data(), ua.size() * sizeof(double)) != 0) {
    std::fprintf(stderr, "FAIL: imported tet mesh diverged bitwise from the in-memory twin\n");
    return false;
  }
  if (with_dist) {
    dist::DistCtx ca(4, cfg), cb(4, cfg);
    tet3d::Tet3D<double, dist::DistCtx> aa(ca, mem), ab(cb, imp);
    aa.run(steps, 0);
    ab.run(steps, 0);
    const auto da = aa.fetch_u(), db = ab.fetch_u();
    if (da.size() != db.size() ||
        std::memcmp(da.data(), db.data(), da.size() * sizeof(double)) != 0) {
      std::fprintf(stderr, "FAIL: imported tet mesh diverged bitwise under DistCtx\n");
      return false;
    }
  }
  // Backend equivalence on the IMPORTED mesh (field-norm relative).
  const auto ref = tet3d_field(imp, cfg, steps, false, false);
  for (const Backend b : {Backend::OpenMP, Backend::AutoVec, Backend::Simd, Backend::Simt}) {
    const auto got = tet3d_field(imp, ExecConfig{.backend = b}, steps, false, false);
    const double rel = max_rel_divergence(ref, got);
    if (rel > 1e-12) {
      std::fprintf(stderr, "FAIL: Tet3D on imported mesh: %s diverged %.3e from Seq\n",
                   backend_name(b), rel);
      return false;
    }
  }
  std::printf("gate: 3D round-trip exact, imported == in-memory bitwise, backends <= 1e-12\n");
  return true;
}

/// Gate 5: every committed fixture parses (format conformance corpus).
bool gate_fixtures(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".msh") continue;
    ++n;
    try {
      const mesh::GmshMesh g = mesh::read_msh(entry.path().string());
      g.validate();
    } catch (const Error& e) {
      std::fprintf(stderr, "FAIL: fixture %s did not parse: %s\n",
                   entry.path().filename().c_str(), e.what());
      return false;
    }
  }
  std::printf("gate: parsed %zu fixture files from %s\n", n, dir.c_str());
  return n > 0;
}

struct StageRow {
  std::string format;
  double write_s = 0, parse_s = 0, convert_s = 0, build_s = 0;
  [[nodiscard]] double total() const { return write_s + parse_s + convert_s + build_s; }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Sizes sz = Sizes::from_cli(cli);
  const int steps = static_cast<int>(cli.get_int("steps", 5));
  const idx_t tet_n =
      static_cast<idx_t>(cli.get_int("n", cli.has("large") ? 36 : (cli.has("small") ? 10 : 22)));
  const bool with_dist = !cli.has("no-dist");

  print_header("Ablation: mesh ingest — file formats vs the solve they feed",
               "Reguly et al., section 5 (mesh inputs: OP2 new_grid.dat, Volna bathymetry)");

  if (!gate_2d(steps, with_dist)) return 1;
  if (!gate_3d(steps, with_dist)) return 1;
  const std::string fixtures = cli.get("fixtures", "");
  if (!fixtures.empty() && !gate_fixtures(fixtures)) return 1;
  std::printf("\n");

  // ---- timing: 2D quad mesh ------------------------------------------------
  // Same cell count as the bench Airfoil mesh so "build" is comparable.
  const idx_t qn = static_cast<idx_t>(std::sqrt(double(sz.airfoil_ni) * sz.airfoil_nj));
  auto m2 = mesh::make_quad_box(qn, qn);
  mesh::perturb_nodes(m2, 0.001, 5);
  const mesh::GmshMesh g2 = mesh::from_unstructured(m2);
  std::printf("2D quad box: %d cells; 3D tet box: %d cells (n=%d)\n\n", m2.ncells,
              6 * int(tet_n) * int(tet_n) * int(tet_n), int(tet_n));

  std::vector<StageRow> rows;
  for (const int version : {2, 4}) {
    StageRow r{version == 2 ? "MSH v2.2 (2D quad)" : "MSH v4.1 (2D quad)"};
    const std::string path = tmp_file("opv_ingest_bench_2d.msh");
    WallTimer t;
    mesh::write_msh(g2, path, version);
    r.write_s = t.seconds();
    t.reset();
    const mesh::GmshMesh g = mesh::read_msh(path);
    r.parse_s = t.seconds();
    t.reset();
    const mesh::UnstructuredMesh m = mesh::to_unstructured(g);
    r.convert_s = t.seconds();
    t.reset();
    {
      LocalCtx ctx(ExecConfig{.backend = Backend::Seq});
      airfoil::Airfoil<double, LocalCtx> app(ctx, m);
      r.build_s = t.seconds();
    }
    rows.push_back(r);
  }
  {
    StageRow r{"OPVM binary (2D quad)"};
    const std::string path = tmp_file("opv_ingest_bench.opvm");
    WallTimer t;
    mesh::write_mesh(m2, path);
    r.write_s = t.seconds();
    t.reset();
    const mesh::UnstructuredMesh m = mesh::read_mesh(path);
    r.parse_s = t.seconds();  // parse+validate; no conversion stage
    t.reset();
    {
      LocalCtx ctx(ExecConfig{.backend = Backend::Seq});
      airfoil::Airfoil<double, LocalCtx> app(ctx, m);
      r.build_s = t.seconds();
    }
    rows.push_back(r);
  }

  // ---- timing: 3D tet mesh -------------------------------------------------
  const mesh::TetMesh m3 = mesh::make_tet_box(tet_n, tet_n, tet_n);
  const mesh::GmshMesh g3 = mesh::from_tet(m3);
  for (const int version : {2, 4}) {
    StageRow r{version == 2 ? "MSH v2.2 (3D tet)" : "MSH v4.1 (3D tet)"};
    const std::string path = tmp_file("opv_ingest_bench_3d.msh");
    WallTimer t;
    mesh::write_msh(g3, path, version);
    r.write_s = t.seconds();
    t.reset();
    const mesh::GmshMesh g = mesh::read_msh(path);
    r.parse_s = t.seconds();
    t.reset();
    const mesh::TetMesh m = mesh::to_tet(g);
    r.convert_s = t.seconds();
    t.reset();
    {
      LocalCtx ctx(ExecConfig{.backend = Backend::Seq});
      tet3d::Tet3D<double, LocalCtx> app(ctx, m);
      r.build_s = t.seconds();
    }
    rows.push_back(r);
  }
  {
    StageRow r{"OPVT binary (3D tet)"};
    const std::string path = tmp_file("opv_ingest_bench.opvt");
    WallTimer t;
    mesh::write_tet_mesh(m3, path);
    r.write_s = t.seconds();
    t.reset();
    const mesh::TetMesh m = mesh::read_tet_mesh(path);
    r.parse_s = t.seconds();
    t.reset();
    {
      LocalCtx ctx(ExecConfig{.backend = Backend::Seq});
      tet3d::Tet3D<double, LocalCtx> app(ctx, m);
      r.build_s = t.seconds();
    }
    rows.push_back(r);
  }

  perf::Table t({"format", "write (s)", "parse (s)", "convert (s)", "ctx build (s)",
                 "total (s)"});
  for (const StageRow& r : rows)
    t.add_row({r.format, perf::Table::num(r.write_s, 3), perf::Table::num(r.parse_s, 3),
               perf::Table::num(r.convert_s, 3), perf::Table::num(r.build_s, 3),
               perf::Table::num(r.total(), 3)});
  t.print();

  std::printf("\nShape check: the binary containers should parse an order of magnitude\n"
              "faster than ASCII MSH at equal cell count (that is what they exist for);\n"
              "conversion (edge/face derivation) should be comparable to context build.\n");

  const std::string json = cli.get("json", "");
  if (!json.empty()) {
    FILE* f = std::fopen(json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_ingest\",\n");
    std::fprintf(f, "  \"cells_2d\": %d,\n  \"cells_3d\": %d,\n  \"gate_steps\": %d,\n",
                 m2.ncells, m3.ncells, steps);
    std::fprintf(f, "  \"gates\": \"passed\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const StageRow& r = rows[i];
      std::fprintf(f,
                   "    {\"format\": \"%s\", \"write_s\": %.6f, \"parse_s\": %.6f, "
                   "\"convert_s\": %.6f, \"build_s\": %.6f}%s\n",
                   r.format.c_str(), r.write_s, r.parse_s, r.convert_s, r.build_s,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json.c_str());
  }
  return 0;
}
