// Ablation microbenchmarks for the SIMD layer's design choices (paper
// section 4.2): aligned vs unaligned loads, strided loads vs gathers,
// serial vs hardware scatter, masked vs unmasked increments, select-based
// branching. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "simd/simd.hpp"

namespace {

using opv::aligned_vector;
namespace simd = opv::simd;

constexpr std::size_t kN = 1 << 20;

aligned_vector<double> make_data(std::size_t n) {
  aligned_vector<double> v(n);
  opv::Rng rng(7);
  for (auto& x : v) x = rng.uniform(0.5, 2.0);
  return v;
}

aligned_vector<std::int32_t> make_indices(std::size_t n, std::size_t range, bool unique_w8) {
  aligned_vector<std::int32_t> idx(n);
  opv::Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::int32_t>(rng.next_below(range));
  if (unique_w8) {
    // Make every group of 8 lanes collision-free (permute-coloring promise).
    for (std::size_t i = 0; i + 8 <= n; i += 8)
      for (int l = 0; l < 8; ++l) idx[i + l] = static_cast<std::int32_t>((idx[i] + l) % range);
  }
  return idx;
}

template <class V>
void BM_load_aligned(benchmark::State& state) {
  auto data = make_data(kN);
  using S = typename simd::vec_traits<V>::scalar;
  constexpr int W = simd::vec_traits<V>::lanes;
  aligned_vector<S> d(kN);
  for (std::size_t i = 0; i < kN; ++i) d[i] = static_cast<S>(data[i]);
  for (auto _ : state) {
    V acc(S(0));
    for (std::size_t i = 0; i + W <= kN; i += W) acc += V::loada(d.data() + i);
    benchmark::DoNotOptimize(simd::hsum(acc));
  }
  state.SetBytesProcessed(state.iterations() * kN * sizeof(S));
}

template <class V>
void BM_load_unaligned(benchmark::State& state) {
  auto data = make_data(kN + 1);
  using S = typename simd::vec_traits<V>::scalar;
  constexpr int W = simd::vec_traits<V>::lanes;
  aligned_vector<S> d(kN + 1);
  for (std::size_t i = 0; i <= kN; ++i) d[i] = static_cast<S>(data[i]);
  for (auto _ : state) {
    V acc(S(0));
    for (std::size_t i = 1; i + W <= kN; i += W) acc += V::loadu(d.data() + i);
    benchmark::DoNotOptimize(simd::hsum(acc));
  }
  state.SetBytesProcessed(state.iterations() * kN * sizeof(S));
}

template <class V>
void BM_strided_load_dim4(benchmark::State& state) {
  auto d = make_data(kN * 4);
  using S = typename simd::vec_traits<V>::scalar;
  constexpr int W = simd::vec_traits<V>::lanes;
  aligned_vector<S> v(kN * 4);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<S>(d[i]);
  for (auto _ : state) {
    V acc(S(0));
    for (std::size_t i = 0; i + W <= kN; i += W)
      for (int c = 0; c < 4; ++c) acc += V::strided(v.data() + i * 4 + c, 4);
    benchmark::DoNotOptimize(simd::hsum(acc));
  }
  state.SetBytesProcessed(state.iterations() * kN * 4 * sizeof(S));
}

template <class V>
void BM_gather(benchmark::State& state) {
  auto d = make_data(kN);
  auto idx = make_indices(kN, kN, false);
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, simd::vec_traits<V>::lanes>;
  constexpr int W = simd::vec_traits<V>::lanes;
  aligned_vector<S> v(kN);
  for (std::size_t i = 0; i < kN; ++i) v[i] = static_cast<S>(d[i]);
  for (auto _ : state) {
    V acc(S(0));
    for (std::size_t i = 0; i + W <= kN; i += W)
      acc += V::gather(v.data(), IV::loadu(idx.data() + i));
    benchmark::DoNotOptimize(simd::hsum(acc));
  }
  state.SetBytesProcessed(state.iterations() * kN * sizeof(S));
}

template <class V>
void BM_scatter_add_serial(benchmark::State& state) {
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, simd::vec_traits<V>::lanes>;
  constexpr int W = simd::vec_traits<V>::lanes;
  auto idx = make_indices(kN, kN, false);
  aligned_vector<S> out(kN, S(0));
  const V one(S(1));
  for (auto _ : state) {
    for (std::size_t i = 0; i + W <= kN; i += W)
      simd::scatter_add_serial(out.data(), IV::loadu(idx.data() + i), one);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * sizeof(S));
}

template <class V>
void BM_scatter_add_hw(benchmark::State& state) {
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, simd::vec_traits<V>::lanes>;
  constexpr int W = simd::vec_traits<V>::lanes;
  auto idx = make_indices(kN, kN, true);  // unique within each vector
  aligned_vector<S> out(kN, S(0));
  const V one(S(1));
  for (auto _ : state) {
    for (std::size_t i = 0; i + W <= kN; i += W)
      simd::scatter_add_hw(out.data(), IV::loadu(idx.data() + i), one);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * sizeof(S));
}

template <class V>
void BM_select_branch(benchmark::State& state) {
  auto d = make_data(kN);
  using S = typename simd::vec_traits<V>::scalar;
  constexpr int W = simd::vec_traits<V>::lanes;
  aligned_vector<S> v(kN);
  for (std::size_t i = 0; i < kN; ++i) v[i] = static_cast<S>(d[i]);
  for (auto _ : state) {
    V acc(S(0));
    for (std::size_t i = 0; i + W <= kN; i += W) {
      const V x = V::loada(v.data() + i);
      acc += simd::select(x > V(S(1.0)), simd::sqrt(x), x * x);
    }
    benchmark::DoNotOptimize(simd::hsum(acc));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}

using F64x4v = simd::Vec<double, 4>;
using F64x8v = simd::Vec<double, 8>;
using F32x8v = simd::Vec<float, 8>;
using F32x16v = simd::Vec<float, 16>;

BENCHMARK(BM_load_aligned<F64x4v>);
BENCHMARK(BM_load_aligned<F64x8v>);
BENCHMARK(BM_load_unaligned<F64x4v>);
BENCHMARK(BM_load_unaligned<F64x8v>);
BENCHMARK(BM_strided_load_dim4<F64x4v>);
BENCHMARK(BM_strided_load_dim4<F64x8v>);
BENCHMARK(BM_gather<F64x4v>);
BENCHMARK(BM_gather<F64x8v>);
BENCHMARK(BM_gather<F32x16v>);
BENCHMARK(BM_scatter_add_serial<F64x4v>);
BENCHMARK(BM_scatter_add_serial<F64x8v>);
BENCHMARK(BM_scatter_add_hw<F64x4v>);   // emulated on AVX2 (no scatter ISA)
BENCHMARK(BM_scatter_add_hw<F64x8v>);   // real _mm512_i32scatter_pd
BENCHMARK(BM_scatter_add_hw<F32x16v>);
BENCHMARK(BM_select_branch<F64x4v>);
BENCHMARK(BM_select_branch<F64x8v>);
BENCHMARK(BM_select_branch<F32x8v>);

}  // namespace

BENCHMARK_MAIN();
