// Ablation: ensemble serving (opv::serve::Ensemble, serve/ensemble.hpp) —
// N concurrent simulation instances multiplexed over one worker pool vs
// the same N run to completion one after another.
//
// The serving regime the ROADMAP targets: probabilistic hazard sweeps run
// MANY small-mesh Volna scenarios, and no single instance can fill the
// machine — the ensemble interleaves instance timesteps over the pool, so
// throughput (instances/sec) scales with cores while each instance still
// executes its steps strictly in order. Two mesh regimes:
//
//   shared   every instance is built from ONE mesh: all instances produce
//            identical content keys in the PlanCache, so N instances pay
//            for one coloring-plan build (reported as plan builds/hits);
//   mixed    every instance gets its own mesh resolution: the per-instance
//            -plans regime (builds == N).
//
// Instances step on the Seq backend (one worker thread each; parallelism
// comes from instance-level concurrency), so a BITWISE equivalence gate
// runs per instance against its solo execution and the bench exits
// non-zero on any divergence. The headline is the concurrent/sequential
// speedup at each N — it needs multiple cores to show; on a single-core
// host both arms serialize and the ratio sits near 1.0 (the JSON records
// `workers` and `cores` so readers can tell). --min-speedup=X turns the
// N=16 shared-mesh speedup into a hard gate for multi-core CI.
//
//   ./ablation_ensemble [--small|--large] [--n=N] [--steps=N] [--threads=N]
//                       [--batch=N] [--json=FILE] [--min-speedup=X]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/volna/hazard.hpp"
#include "bench_common.hpp"
#include "core/plan.hpp"
#include "serve/ensemble.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

struct Row {
  std::string mode;  ///< "shared" or "mixed"
  int n = 0;         ///< ensemble size
  double sequential = 0.0, concurrent = 0.0;
  double occupancy = 0.0;
  long long plan_builds = 0, plan_hits = 0;
  bool bitwise_ok = true;
  [[nodiscard]] double speedup() const {
    return concurrent > 0.0 ? sequential / concurrent : 0.0;
  }
  [[nodiscard]] double instances_per_sec() const {
    return concurrent > 0.0 ? n / concurrent : 0.0;
  }
};

/// The meshes instance i of an N-instance ensemble uses: one shared mesh,
/// or per-instance resolutions (base, base+6, base+12, ...).
std::vector<mesh::UnstructuredMesh> make_meshes(bool mixed, int n, idx_t base) {
  std::vector<mesh::UnstructuredMesh> out;
  const int distinct = mixed ? n : 1;
  for (int i = 0; i < distinct; ++i) {
    const idx_t ni = base + 6 * static_cast<idx_t>(i);
    out.push_back(mesh::make_tri_periodic(ni, ni, 10.0, 10.0));
  }
  return out;
}

Row run_mode(bool mixed, int n, idx_t base, int steps, int workers, int batch) {
  Row r;
  r.mode = mixed ? "mixed" : "shared";
  r.n = n;

  const auto meshes = make_meshes(mixed, n, base);
  const auto sweep = volna::hazard_sweep(n);
  ExecConfig cfg;
  cfg.backend = Backend::Seq;
  cfg.nthreads = 1;

  // Sequential arm: N solo instances run to completion one after another.
  // Construction (context + handle building) happens outside the timed
  // window in BOTH arms; the measured work is stepping only.
  std::vector<std::unique_ptr<volna::HazardInstance>> solo;
  for (int i = 0; i < n; ++i)
    solo.push_back(std::make_unique<volna::HazardInstance>(
        meshes[static_cast<std::size_t>(mixed ? i : 0)], sweep[static_cast<std::size_t>(i)],
        cfg));
  {
    WallTimer t;
    for (auto& inst : solo)
      for (int s = 0; s < steps; ++s) inst->step();
    r.sequential = t.seconds();
  }

  // Concurrent arm: the same N scenarios as one ensemble over the pool.
  serve::EnsembleOptions opts;
  opts.name = "ablation/" + r.mode + std::to_string(n);
  opts.workers = workers;
  opts.batch_steps = batch;
  serve::Ensemble ens(opts);
  for (int i = 0; i < n; ++i)
    ens.add_instance(volna::hazard_factory(meshes[static_cast<std::size_t>(mixed ? i : 0)],
                                           {sweep[static_cast<std::size_t>(i)]}, cfg));
  const auto rep = ens.run(steps);
  r.concurrent = rep.seconds;
  r.occupancy = rep.occupancy();

  // Bitwise gate: every ensemble instance must match its solo run exactly,
  // regardless of how the scheduler interleaved the steps.
  for (int i = 0; i < n; ++i) {
    const auto a = dynamic_cast<volna::HazardInstance&>(ens.instance(i)).state();
    const auto b = solo[static_cast<std::size_t>(i)]->state();
    if (a.size() != b.size() ||
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0)
      r.bitwise_ok = false;
  }
  if (rep.failed > 0) r.bitwise_ok = false;

  // Plan-sharing accounting (untimed): the Seq arms build no coloring
  // plans, so probe the regime with a pinned-block OpenMP config — shared
  // mesh => one build for the whole ensemble, mixed => one per mesh.
  {
    ExecConfig pcfg;
    pcfg.backend = Backend::OpenMP;
    pcfg.nthreads = 1;
    pcfg.block_size = 256;
    PlanCache::instance().clear();
    PlanCache::instance().reset_counters();
    serve::EnsembleOptions popts;
    popts.name = "ablation/plan_" + r.mode + std::to_string(n);
    popts.workers = workers;
    serve::Ensemble pens(popts);
    for (int i = 0; i < n; ++i)
      pens.add_instance(volna::hazard_factory(meshes[static_cast<std::size_t>(mixed ? i : 0)],
                                              {sweep[static_cast<std::size_t>(i)]}, pcfg));
    pens.run(1);
    const auto c = PlanCache::instance().counters();
    r.plan_builds = static_cast<long long>(c.misses);
    r.plan_hits = static_cast<long long>(c.hits);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  idx_t base = 48;  // 4.6k tri cells: the "too small to fill a machine" regime
  if (cli.has("large")) base = 96;
  if (cli.has("small")) base = 24;
  base = static_cast<idx_t>(cli.get_int("n", base));
  const int steps = static_cast<int>(cli.get_int("steps", cli.has("small") ? 8 : 24));
  const int workers = static_cast<int>(cli.get_int("threads", 0));
  const int batch = static_cast<int>(cli.get_int("batch", 2));
  const double min_speedup = std::atof(cli.get("min-speedup", "0").c_str());

  print_header("Ablation: ensemble serving (N concurrent instances vs N sequential runs)",
               "ROADMAP ensemble serving; GALE-style task scheduling over shared meshes");
  const int pool = workers > 0 ? workers : hardware_threads();
  std::printf("volna %d x %d base mesh, %d steps/instance, %d workers (%d cores), batch=%d\n\n",
              static_cast<int>(base), static_cast<int>(base), steps, pool,
              hardware_threads(), batch);

  std::vector<Row> rows;
  for (const bool mixed : {false, true})
    for (const int n : {1, 4, 16})
      rows.push_back(run_mode(mixed, n, base, steps, workers, batch));

  perf::Table t({"mode", "N", "sequential (s)", "concurrent (s)", "speedup", "inst/s",
                 "occupancy", "plan builds", "plan hits", "bitwise"});
  bool diverged = false;
  for (const Row& r : rows) {
    if (!r.bitwise_ok) diverged = true;
    t.add_row({r.mode, std::to_string(r.n), perf::Table::num(r.sequential, 3),
               perf::Table::num(r.concurrent, 3), perf::Table::num(r.speedup(), 2) + "x",
               perf::Table::num(r.instances_per_sec(), 2), perf::Table::pct(r.occupancy, 1),
               std::to_string(r.plan_builds), std::to_string(r.plan_hits),
               r.bitwise_ok ? "ok" : "DIVERGED"});
  }
  t.print();

  std::printf("\nShape check: shared-mesh plan builds stay at 1 for every N (content-keyed\n"
              "PlanCache sharing); mixed-mesh builds equal N. The speedup column needs\n"
              "multiple cores — instance steps are serial, so concurrency across instances\n"
              "is the only parallelism in this bench.\n");

  const std::string json = cli.get("json", "");
  if (!json.empty()) {
    FILE* f = std::fopen(json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_ensemble\",\n");
    std::fprintf(f, "  \"base_mesh_n\": %d,\n  \"steps\": %d,\n", static_cast<int>(base),
                 steps);
    std::fprintf(f, "  \"workers\": %d,\n  \"cores\": %d,\n  \"batch\": %d,\n  \"rows\": [\n",
                 pool, hardware_threads(), batch);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"instances\": %d, \"sequential_s\": %.6f, "
                   "\"concurrent_s\": %.6f, \"speedup\": %.4f, \"instances_per_sec\": %.4f, "
                   "\"occupancy\": %.4f, \"plan_builds\": %lld, \"plan_hits\": %lld, "
                   "\"bitwise_equal\": %s}%s\n",
                   r.mode.c_str(), r.n, r.sequential, r.concurrent, r.speedup(),
                   r.instances_per_sec(), r.occupancy, r.plan_builds, r.plan_hits,
                   r.bitwise_ok ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json.c_str());
  }

  if (diverged) {
    std::fprintf(stderr, "FAIL: an ensemble instance diverged from its solo execution\n");
    return 1;
  }
  if (min_speedup > 0.0) {
    for (const Row& r : rows)
      if (r.mode == "shared" && r.n == 16 && r.speedup() < min_speedup) {
        std::fprintf(stderr, "FAIL: shared N=16 speedup %.2fx below the %.2fx gate\n",
                     r.speedup(), min_speedup);
        return 1;
      }
  }
  return 0;
}
