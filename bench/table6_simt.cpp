// Table VI reproduction: the OpenCL (SIMT-model) backend.
//
// Paper: per-kernel time and useful bandwidth of the OpenCL backend on a
// CPU socket and the Xeon Phi, plus which kernels the OpenCL compiler
// vectorized. Our SIMT emulator reproduces the execution scheme Intel's
// OpenCL lowers to on CPUs (whole-kernel vectorization, dynamic work-group
// scheduling, sequential work-groups, colored masked increments); the
// "Phi" column uses the wide-vector oversubscribed Phi model.

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Sizes sz = Sizes::from_cli(cli);
  print_header("Table VI: SIMT (OpenCL-model) backend per-kernel breakdown",
               "Reguly et al., Table VI");

  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  auto airfoil_mesh = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  auto volna_mesh = mesh::make_tri_periodic(sz.volna_n, sz.volna_n, 10.0, 10.0);

  // Host model: AVX2-class widths (4 DP / 8 SP); Phi model: widest + 2x threads.
  const ExecConfig host_dp{.backend = Backend::Simt, .simd_width = 4, .nthreads = nthreads};
  const ExecConfig host_sp{.backend = Backend::Simt, .simd_width = 8, .nthreads = nthreads};
  const ExecConfig phi = phi_model(Backend::Simt);

  std::printf("airfoil %d cells x %d iters, volna %d cells x %d steps\n\n", airfoil_mesh.ncells,
              sz.airfoil_iters, volna_mesh.ncells, sz.volna_steps);

  const auto a_dp_host = run_airfoil<double>(airfoil_mesh, host_dp, sz.airfoil_iters);
  const auto a_dp_phi = run_airfoil<double>(airfoil_mesh, phi, sz.airfoil_iters);
  const auto a_sp_host = run_airfoil<float>(airfoil_mesh, host_sp, sz.airfoil_iters);
  const auto v_host = run_volna<float>(volna_mesh, host_sp, sz.volna_steps);
  const auto v_phi = run_volna<float>(volna_mesh, phi, sz.volna_steps);

  perf::Table t({"kernel", "host time (s)", "host BW", "Phi-model time", "Phi-model BW"});
  for (std::size_t i = 0; i < a_dp_host.size(); ++i)
    t.add_row({a_dp_host[i].name, perf::Table::num(a_dp_host[i].seconds, 3),
               perf::Table::num(a_dp_host[i].gbs, 1), perf::Table::num(a_dp_phi[i].seconds, 3),
               perf::Table::num(a_dp_phi[i].gbs, 1)});
  for (std::size_t i = 0; i < v_host.size(); ++i)
    t.add_row({v_host[i].name, perf::Table::num(v_host[i].seconds, 3),
               perf::Table::num(v_host[i].gbs, 1), perf::Table::num(v_phi[i].seconds, 3),
               perf::Table::num(v_phi[i].gbs, 1)});
  std::printf("Airfoil DP (rows 1-5) and Volna SP (rows 6-11):\n\n");
  t.print();

  std::printf("\nAirfoil SP host total: %.3f s; DP host total: %.3f s\n",
              total_seconds(a_sp_host), total_seconds(a_dp_host));
  std::printf("\nShape check vs paper Table VI: the SIMT model executes whole\n"
              "kernels vectorized but pays dynamic work-group scheduling and\n"
              "colored-increment costs; indirect-increment kernels (res_calc,\n"
              "space_disc) benefit least; direct kernels stay bandwidth-bound.\n");
  return 0;
}
