// Ablation: per-call dispatch overhead of the distributed layer across rank
// counts. The one-shot DistCtx::loop re-derives the halo-exchange set,
// re-preps per-rank argument bindings and rebuilds one engine handle per
// rank on EVERY call; a persistent dist::Loop pins all of it at
// construction, so steady-state run() only refreshes dirty halos and wakes
// the rank pool. The paper's execution model (plans amortized over
// thousands of timesteps, section 3) is the handle path; this bench
// measures what the one-shot path pays on top. Mirrors
// bench/ablation_dispatch.cpp for the single-process engine.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "apps/airfoil/airfoil.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

struct EdgeKernel {
  template <class T>
  void operator()(const T* ql, const T* qr, const T* w, T* rl, T* rr) const {
    OPV_SIMD_MATH_USING;
    const T f = w[0] * sqrt(abs(qr[0] - ql[0])) + w[0] * (qr[0] * ql[0]);
    rl[0] += f;
    rr[0] -= f;
  }
};

/// A small mesh on purpose: per-call setup cost is amortized over few
/// elements, so the dispatch-path difference is visible.
struct Fixture {
  mesh::UnstructuredMesh m = mesh::make_quad_box(128, 128);
  dist::DistCtx ctx;
  dist::DistCtx::SetHandle cells, edges;
  dist::DistCtx::MapHandle e2c;
  dist::DistCtx::DatHandle<double> q, r, w;

  explicit Fixture(int nranks)
      : ctx(nranks, ExecConfig{.backend = Backend::OpenMP, .nthreads = 1,
                               .collect_stats = false}) {
    cells = ctx.decl_set("cells", m.ncells);
    edges = ctx.decl_set("edges", m.nedges);
    const auto cent = airfoil::cell_centroids(m);
    ctx.set_partition_coords(cells, cent.data());
    e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
    aligned_vector<double> qi(m.ncells);
    for (idx_t c = 0; c < m.ncells; ++c) qi[c] = 1.0 + (c % 13) * 0.01;
    q = ctx.decl_dat<double>("q", cells, 1, qi);
    r = ctx.decl_dat<double>("r", cells, 1);
    w = ctx.decl_dat<double>("w", edges, 1, aligned_vector<double>(m.nedges, 0.3));
    ctx.finalize();
  }
};

Fixture& fixture(int nranks) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  auto& f = cache[nranks];
  if (!f) f = std::make_unique<Fixture>(nranks);
  return *f;
}

/// One-shot path: exchange-set derivation + per-rank arg prep + per-rank
/// handle construction on every call.
void BM_dist_oneshot(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    f.ctx.loop(EdgeKernel{}, "dist_oneshot", f.edges, f.ctx.arg(f.q, 0, f.e2c, Access::READ),
               f.ctx.arg(f.q, 1, f.e2c, Access::READ), f.ctx.arg(f.w, Access::READ),
               f.ctx.arg(f.r, 0, f.e2c, Access::INC), f.ctx.arg(f.r, 1, f.e2c, Access::INC));
  }
  state.SetItemsProcessed(state.iterations() * f.m.nedges);
}

/// Handle path: everything pinned at construction; run() does zero setup.
void BM_dist_loop_handle(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  dist::Loop loop(f.ctx, EdgeKernel{}, "dist_handle", f.edges,
                  f.ctx.arg<opv::READ>(f.q, 0, f.e2c), f.ctx.arg<opv::READ>(f.q, 1, f.e2c),
                  f.ctx.arg<opv::READ>(f.w), f.ctx.arg<opv::INC>(f.r, 0, f.e2c),
                  f.ctx.arg<opv::INC>(f.r, 1, f.e2c));
  for (auto _ : state) loop.run();
  state.SetItemsProcessed(state.iterations() * f.m.nedges);
}

BENCHMARK(BM_dist_oneshot)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_dist_loop_handle)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
