// Table IV reproduction: test mesh sizes and memory footprint. Generates
// the three synthetic stand-ins (Airfoil small/large O-mesh, Volna ocean)
// and reports cells/nodes/edges plus the double(single) precision state
// footprint, comparing against the paper's meshes.

#include "bench_common.hpp"
#include "common/stats.hpp"

namespace {

/// State footprint of the Airfoil app: x(2/node) + q,qold,res(4/cell) +
/// adt(1/cell), in bytes at the given precision.
std::uint64_t airfoil_state_bytes(const opv::mesh::UnstructuredMesh& m, std::size_t vb) {
  return (static_cast<std::uint64_t>(m.nnodes) * 2 +
          static_cast<std::uint64_t>(m.ncells) * (4 + 4 + 4 + 1)) *
         vb;
}

/// Volna state: U,Uold,Utmp,res(4/cell) + cdt(1) + cgeom(2) + egeom(4/edge)
/// + flux(5/edge).
std::uint64_t volna_state_bytes(const opv::mesh::UnstructuredMesh& m, std::size_t vb) {
  return (static_cast<std::uint64_t>(m.ncells) * (4 * 4 + 1 + 2) +
          static_cast<std::uint64_t>(m.nedges) * (4 + 5)) *
         vb;
}

}  // namespace

int main(int, char**) {
  opv::bench::print_header("Table IV: test mesh sizes and memory footprint",
                           "Reguly et al., Table IV");

  opv::perf::Table t({"mesh", "cells", "nodes", "edges", "state DP(SP)", "paper"});

  auto small = opv::mesh::make_airfoil_omesh(1200, 600);
  t.add_row({"Airfoil small", opv::format_count(small.ncells), opv::format_count(small.nnodes),
             opv::format_count(small.nedges),
             opv::format_bytes(airfoil_state_bytes(small, 8)) + "(" +
                 opv::format_bytes(airfoil_state_bytes(small, 4)) + ")",
             "720,000 / 721,801 / 1,438,600; 94(47) MB"});

  auto large = opv::mesh::make_airfoil_omesh(2400, 1200);
  t.add_row({"Airfoil large", opv::format_count(large.ncells), opv::format_count(large.nnodes),
             opv::format_count(large.nedges),
             opv::format_bytes(airfoil_state_bytes(large, 8)) + "(" +
                 opv::format_bytes(airfoil_state_bytes(large, 4)) + ")",
             "2,880,000 / 2,883,601 / 5,757,200; 373(186) MB"});

  auto volna = opv::mesh::make_tri_periodic(1100, 1100, 10.0, 10.0);
  t.add_row({"Volna", opv::format_count(volna.ncells), opv::format_count(volna.nnodes),
             opv::format_count(volna.nedges),
             "n/a(" + opv::format_bytes(volna_state_bytes(volna, 4)) + ")",
             "2,392,352 / 1,197,384 / 3,589,735; n/a(355) MB"});
  t.print();

  for (auto* m : {&small, &large, &volna}) {
    m->validate();
    const auto s = opv::mesh::compute_stats(*m);
    std::printf("\n%s: max edges/cell %d, avg %.2f, raw mesh arrays %s", m->name.c_str(),
                s.max_edges_per_cell, s.avg_edges_per_cell,
                opv::format_bytes(m->footprint_bytes()).c_str());
  }
  std::printf("\n");
  return 0;
}
