// Ablation: blocking vs overlapped halo exchange (paper section 6.5).
//
// The paper's distributed results depend on hiding halo-exchange latency
// behind interior compute: each rank first executes the elements that touch
// no halo data while the exchange is in flight, then waits, then executes
// the boundary elements. This bench measures the three schedules a
// dist::Loop supports on an exchange-bound pipeline (the cell loop dirties
// q every iteration, so the edge loop exchanges every iteration):
//
//   Blocking  exchange, then one contiguous run (the classic path)
//   Phased    exchange, then interior slice, then boundary slice — the
//             overlapped schedule with a blocking exchange; results are
//             bitwise-identical to Overlap, so the time difference is
//             exactly what the overlap buys
//   Overlap   begin exchange -> interior -> wait -> boundary
//
// All modes run the StagedExchanger (per-neighbor pack/unpack, async): the
// transport a real MPI backend would mirror. Reported per configuration:
// the measured interior fraction (the work available to hide the exchange
// behind), the point-to-point message count one exchange needs, exchange
// seconds, and the bitwise Phased==Overlap check.
//
//   ./ablation_overlap [--n=192] [--iters=20] [--ranks=8]

#include <cstring>
#include <memory>

#include "bench_common.hpp"
#include "dist/loop.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

/// Edge kernel with enough arithmetic that interior compute can actually
/// hide an exchange (the paper's loops are sqrt/div heavy, Table II).
struct EdgeK {
  template <class T>
  void operator()(const T* ql, const T* qr, const T* w, T* a1, T* a2) const {
    OPV_SIMD_MATH_USING;
    const T d = sqrt(abs(ql[0] - qr[0]) + T(0.25)) * w[0] +
                sqrt(abs(ql[0]) + T(1.0)) / sqrt(abs(qr[0]) + T(2.0));
    a1[0] += d;
    a2[0] -= d * T(0.5);
  }
};
/// Cell update: writes q, so the next edge run must exchange q's halo.
struct CellK {
  template <class T>
  void operator()(T* q, T* a) const {
    q[0] = q[0] + a[0] * T(0.01);
    a[0] = T(0);
  }
};

struct Result {
  double secs = 0;
  double exch_secs = 0;
  double interior = 0;
  int messages = 0;  ///< point-to-point messages one q exchange needs
  aligned_vector<double> q;
};

Result run_mode(const mesh::UnstructuredMesh& m, const aligned_vector<double>& cent, int ranks,
                dist::ExchangeMode mode, int iters) {
  dist::DistCtx ctx(ranks, ExecConfig{.backend = Backend::Simd, .nthreads = 1});
  auto staged = std::make_unique<dist::StagedExchanger>(/*async=*/true);
  dist::StagedExchanger* transport = staged.get();
  ctx.set_exchanger(std::move(staged));
  ctx.set_exchange_mode(mode);

  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.set_partition_coords(cells, cent.data());
  auto e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
  aligned_vector<double> qi(m.ncells);
  for (idx_t c = 0; c < m.ncells; ++c) qi[c] = 1.0 + 0.01 * (c % 37);
  auto q = ctx.decl_dat<double>("q", cells, 1, qi);
  auto acc = ctx.decl_dat<double>("acc", cells, 1);
  auto w = ctx.decl_dat<double>("w", edges, 1, aligned_vector<double>(m.nedges, 0.3));

  dist::Loop edge(ctx, EdgeK{}, "ov_edge", edges, ctx.arg<opv::READ, 1>(q, 0, e2c),
                  ctx.arg<opv::READ, 1>(q, 1, e2c), ctx.arg<opv::READ, 1>(w),
                  ctx.arg<opv::INC, 1>(acc, 0, e2c), ctx.arg<opv::INC, 1>(acc, 1, e2c));
  dist::Loop cell(ctx, CellK{}, "ov_cell", cells, ctx.arg<opv::RW, 1>(q),
                  ctx.arg<opv::RW, 1>(acc));

  // Warmup: plan + staging construction, first-touch. Runs under the same
  // mode, so Phased and Overlap stay bitwise-comparable end to end.
  edge.run();
  cell.run();

  clear_stats();
  WallTimer t;
  for (int it = 0; it < iters; ++it) {
    edge.run();
    cell.run();
  }
  Result res;
  res.secs = t.seconds();
  res.exch_secs = StatsRegistry::instance().get("ov_edge").exchange_seconds;
  res.interior = edge.interior_fraction();
  res.messages = transport->message_count(ctx.partitioned(), cells);
  ctx.fetch(q, res.q);
  return res;
}

bool bitwise_equal(const aligned_vector<double>& a, const aligned_vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<idx_t>(cli.get_int("n", 0));
  const int iters = static_cast<int>(cli.get_int("iters", 20));
  const int one_ranks = static_cast<int>(cli.get_int("ranks", 0));
  print_header("Ablation: blocking vs overlapped halo exchange",
               "Reguly et al., section 6.5 (interior/boundary overlap)");

  std::vector<idx_t> sizes = n > 0 ? std::vector<idx_t>{n} : std::vector<idx_t>{96, 192};
  std::vector<int> rank_counts =
      one_ranks > 0 ? std::vector<int>{one_ranks} : std::vector<int>{2, 4, 8};

  perf::Table t({"mesh", "ranks", "interior", "msgs", "mode", "total (s)", "exch (s)",
                 "vs blocking", "bitwise==phased"});
  bool all_bitwise = true;
  for (idx_t s : sizes) {
    auto m = mesh::make_quad_box(s, s);
    const auto cent = airfoil::cell_centroids(m);
    const std::string label = std::to_string(m.ncells) + " cells";
    for (int ranks : rank_counts) {
      const Result blocking = run_mode(m, cent, ranks, dist::ExchangeMode::Blocking, iters);
      const Result phased = run_mode(m, cent, ranks, dist::ExchangeMode::Phased, iters);
      const Result overlap = run_mode(m, cent, ranks, dist::ExchangeMode::Overlap, iters);
      const bool bitwise = bitwise_equal(phased.q, overlap.q);
      all_bitwise &= bitwise;
      auto row = [&](dist::ExchangeMode mode, const Result& r, const char* bw) {
        t.add_row({label, std::to_string(ranks), perf::Table::pct(overlap.interior, 1),
                   std::to_string(r.messages), dist::exchange_mode_name(mode),
                   perf::Table::num(r.secs, 4), perf::Table::num(r.exch_secs, 4),
                   perf::Table::num(blocking.secs / r.secs, 2), bw});
      };
      row(dist::ExchangeMode::Blocking, blocking, "-");
      row(dist::ExchangeMode::Phased, phased, "-");
      row(dist::ExchangeMode::Overlap, overlap, bitwise ? "yes" : "NO");
    }
  }
  t.print();

  std::printf("\nShape check vs paper section 6.5: overlapped execution hides the\n"
              "exchange behind the interior elements (the vast majority of each\n"
              "rank's work), so Overlap beats Phased by roughly the exchange time;\n"
              "Phased and Overlap are bitwise-identical (%s) because they run the\n"
              "same pinned interior/boundary schedule.\n",
              all_bitwise ? "verified" : "VIOLATED");
  return all_bitwise ? 0 : 1;
}
