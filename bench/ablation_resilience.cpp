// Ablation: fault-tolerant ensemble serving (serve/resilience.hpp,
// serve/fault.hpp, mesh/io OPVK) — what recovery costs and that it is
// exact.
//
// Three questions, three arms over one Volna hazard ensemble (Seq backend,
// so per-instance results are scheduling-independent and bitwise gates are
// meaningful):
//
//   baseline   no HealthPolicy: the PR-8 serving fast path.
//   guarded    checkpoint every `cadence` steps + per-step finiteness scan
//              + retry budget, but NO faults: the pure overhead of being
//              recoverable. Headline: overhead% vs baseline (target <5% at
//              the default cadence 50); gated bitwise — taking checkpoints
//              must not perturb a single bit of any instance's state.
//   faulted    instance 0 gets a NaN planted in its state mid-run
//              (serve/fault.hpp Corrupt); the health scan catches it, the
//              scheduler restores the last checkpoint and replays. Gated
//              bitwise against baseline: recovery must reproduce the
//              fault-free run exactly, not approximately.
//
// Plus the kill-and-resume cycle: save mid-sweep -> OPVK file (timed write
// + CRC-validated read, mesh/io) -> fresh ensemble -> restore -> finish ->
// bitwise gate vs the uninterrupted run. Any divergence exits non-zero.
//
//   ./ablation_resilience [--small|--large] [--n=N] [--instances=N]
//                         [--steps=N] [--cadence=N] [--threads=N]
//                         [--json=FILE] [--max-overhead=PCT]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/volna/hazard.hpp"
#include "bench_common.hpp"
#include "mesh/io.hpp"
#include "serve/ensemble.hpp"
#include "serve/fault.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

std::vector<aligned_vector<float>> states_of(serve::Ensemble& ens, int n) {
  std::vector<aligned_vector<float>> out;
  for (int i = 0; i < n; ++i) {
    serve::Instance* ip = &ens.instance(i);
    if (auto* f = dynamic_cast<serve::FaultyInstance*>(ip)) ip = &f->inner();
    out.push_back(dynamic_cast<volna::HazardInstance&>(*ip).state());
  }
  return out;
}

bool bitwise_equal(const std::vector<aligned_vector<float>>& a,
                   const std::vector<aligned_vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].size() != b[i].size() ||
        std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)) != 0)
      return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  idx_t base = 48;
  int steps = 150, cadence = 50, instances = 8;
  if (cli.has("large")) {
    base = 96;
    steps = 200;
  } else if (cli.has("small")) {
    base = 24;
    steps = 40;
    cadence = 10;
  }
  base = static_cast<idx_t>(cli.get_int("n", base));
  steps = static_cast<int>(cli.get_int("steps", steps));
  cadence = static_cast<int>(cli.get_int("cadence", cadence));
  instances = static_cast<int>(cli.get_int("instances", instances));
  const int workers = static_cast<int>(cli.get_int("threads", 0));
  const double max_overhead = std::atof(cli.get("max-overhead", "0").c_str());
  const std::string chkfile = cli.get("chk", "/tmp/ablation_resilience.opvk");

  print_header("Ablation: resilient serving (checkpoint overhead + exact recovery)",
               "ROADMAP fault tolerance; checkpoint/restore over the PR-8 ensemble");
  std::printf("volna %d x %d mesh, %d instances, %d steps, cadence %d, Seq backend\n\n",
              static_cast<int>(base), static_cast<int>(base), instances, steps, cadence);

  const auto m = mesh::make_tri_periodic(base, base, 10.0, 10.0);
  const auto sweep = volna::hazard_sweep(instances);
  ExecConfig cfg;
  cfg.backend = Backend::Seq;
  cfg.nthreads = 1;

  serve::HealthPolicy guarded;
  guarded.checkpoint_every = cadence;
  guarded.check_every = 1;
  guarded.retry.max_attempts = 3;
  guarded.retry.backoff_base_seconds = 0.0;  // measure recovery, not sleep

  auto make_ensemble = [&](const std::string& name, const serve::HealthPolicy& hp,
                           bool faulted) {
    serve::EnsembleOptions opts;
    opts.name = name;
    opts.workers = workers;
    opts.batch_steps = 2;
    opts.health = hp;
    auto ens = std::make_unique<serve::Ensemble>(opts);
    auto factory = volna::hazard_factory(m, sweep, cfg);
    if (faulted) {
      serve::InstanceFaultPlan plan;
      plan.kind = serve::InstanceFaultKind::Corrupt;
      plan.at_step = steps / 2;
      plan.dat = "values";
      factory = serve::with_fault(std::move(factory), plan, /*fault_id=*/0);
    }
    ens->add_instances(instances, factory);
    return ens;
  };

  // baseline: no policy, no faults.
  auto base_ens = make_ensemble("resil/baseline", {}, false);
  const auto base_rep = base_ens->run(steps);
  const auto base_states = states_of(*base_ens, instances);

  // guarded: checkpoints + health scans, still no faults.
  auto grd_ens = make_ensemble("resil/guarded", guarded, false);
  const auto grd_rep = grd_ens->run(steps);
  const bool guarded_bitwise = bitwise_equal(states_of(*grd_ens, instances), base_states);
  const double overhead =
      base_rep.seconds > 0.0 ? (grd_rep.seconds - base_rep.seconds) / base_rep.seconds : 0.0;

  // faulted: NaN planted mid-run, recovered through the last checkpoint.
  auto flt_ens = make_ensemble("resil/faulted", guarded, true);
  const auto flt_rep = flt_ens->run(steps);
  const bool recovered_bitwise = bitwise_equal(states_of(*flt_ens, instances), base_states);
  const bool recovery_engaged = flt_rep.restores > 0 && flt_rep.failed == 0;

  // kill-and-resume through the OPVK file: first half, save, reload, finish.
  auto half_ens = make_ensemble("resil/killed", guarded, false);
  half_ens->run(steps / 2);
  double write_s = 0.0, read_s = 0.0;
  long long chk_bytes = 0;
  {
    const auto saved = half_ens->save(steps);
    WallTimer t;
    mesh::write_checkpoint(saved, chkfile);
    write_s = t.seconds();
  }
  EnsembleCheckpoint loaded;
  {
    WallTimer t;
    loaded = mesh::read_checkpoint(chkfile);
    read_s = t.seconds();
    for (const auto& st : loaded.instances) chk_bytes += static_cast<long long>(st.state.total_bytes());
  }
  auto res_ens = make_ensemble("resil/resumed", guarded, false);
  res_ens->restore(loaded);
  res_ens->run_to(steps);
  const bool resume_bitwise = bitwise_equal(states_of(*res_ens, instances), base_states);
  std::remove(chkfile.c_str());

  perf::Table t({"arm", "seconds", "overhead", "checkpoints", "chk (s)", "restores", "bitwise"});
  t.add_row({"baseline", perf::Table::num(base_rep.seconds, 3), "-", "0", "-", "0", "ref"});
  t.add_row({"guarded", perf::Table::num(grd_rep.seconds, 3), perf::Table::pct(overhead, 1),
             std::to_string(grd_rep.checkpoints), perf::Table::num(grd_rep.checkpoint_seconds, 4),
             std::to_string(grd_rep.restores), guarded_bitwise ? "ok" : "DIVERGED"});
  t.add_row({"faulted", perf::Table::num(flt_rep.seconds, 3), "-",
             std::to_string(flt_rep.checkpoints), perf::Table::num(flt_rep.checkpoint_seconds, 4),
             std::to_string(flt_rep.restores), recovered_bitwise ? "ok" : "DIVERGED"});
  t.add_row({"kill+resume", perf::Table::num(write_s + read_s, 3), "-", "-",
             perf::Table::num(write_s, 4) + "/" + perf::Table::num(read_s, 4), "-",
             resume_bitwise ? "ok" : "DIVERGED"});
  t.print();

  std::printf("\nOPVK round trip: %lld payload bytes, write %.4f s, read %.4f s (CRC-checked)\n",
              chk_bytes, write_s, read_s);
  std::printf("Shape check: guarded overhead stays small (<5%% at cadence 50 on the default\n"
              "mesh) and every arm is bitwise-identical to the baseline — checkpointing is\n"
              "free of numerical side effects, and recovery + kill/resume replay exactly.\n");

  const std::string json = cli.get("json", "");
  if (!json.empty()) {
    FILE* f = std::fopen(json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_resilience\",\n");
    std::fprintf(f, "  \"mesh_n\": %d,\n  \"instances\": %d,\n  \"steps\": %d,\n",
                 static_cast<int>(base), instances, steps);
    std::fprintf(f, "  \"cadence\": %d,\n  \"workers\": %d,\n  \"cores\": %d,\n",
                 cadence, workers > 0 ? workers : hardware_threads(), hardware_threads());
    std::fprintf(f, "  \"baseline_s\": %.6f,\n  \"guarded_s\": %.6f,\n", base_rep.seconds,
                 grd_rep.seconds);
    std::fprintf(f, "  \"checkpoint_overhead_pct\": %.4f,\n", 100.0 * overhead);
    std::fprintf(f, "  \"checkpoints\": %lld,\n  \"checkpoint_s\": %.6f,\n",
                 static_cast<long long>(grd_rep.checkpoints), grd_rep.checkpoint_seconds);
    std::fprintf(f, "  \"fault_restores\": %lld,\n  \"fault_retries\": %lld,\n",
                 static_cast<long long>(flt_rep.restores),
                 static_cast<long long>(flt_rep.retries));
    std::fprintf(f, "  \"opvk_payload_bytes\": %lld,\n  \"opvk_write_s\": %.6f,\n"
                 "  \"opvk_read_s\": %.6f,\n", chk_bytes, write_s, read_s);
    std::fprintf(f, "  \"guarded_bitwise\": %s,\n  \"recovered_bitwise\": %s,\n",
                 guarded_bitwise ? "true" : "false", recovered_bitwise ? "true" : "false");
    std::fprintf(f, "  \"resume_bitwise\": %s,\n  \"recovery_engaged\": %s\n}\n",
                 resume_bitwise ? "true" : "false", recovery_engaged ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json.c_str());
  }

  bool fail = false;
  if (!guarded_bitwise || !recovered_bitwise || !resume_bitwise) {
    std::fprintf(stderr, "FAIL: a resilience arm diverged bitwise from the baseline run\n");
    fail = true;
  }
  if (!recovery_engaged) {
    std::fprintf(stderr, "FAIL: the injected fault did not exercise the recovery path "
                         "(restores=%lld, failed=%lld)\n",
                 static_cast<long long>(flt_rep.restores),
                 static_cast<long long>(flt_rep.failed));
    fail = true;
  }
  if (max_overhead > 0.0 && 100.0 * overhead > max_overhead) {
    std::fprintf(stderr, "FAIL: checkpoint overhead %.2f%% above the %.2f%% gate\n",
                 100.0 * overhead, max_overhead);
    fail = true;
  }
  return fail ? 1 : 0;
}
