// Ablation: generated-stub-style code vs the runtime engine, on res_calc.
//
// OP2 is a *code generator*: every parallel loop gets a specialized stub
// with literal constants, fixed arities and no per-argument control flow
// (paper section 5). opvec's engine reaches the same specialization via
// templates; here the loops deliberately use RUNTIME-dim descriptors (the
// compatibility spelling), so arity decisions ride along at run time —
// the typed-Dim counterpart is measured by ablation_static_dim. This bench
// quantifies the remaining abstraction gap on the paper's hottest kernel
// by comparing, single-threaded:
//   1. a hand-written scalar loop   (what OP2's MPI stub compiles to)
//   2. a hand-written Fig-3b vector loop (what OP2's AVX stub compiles to)
//   3. the engine's Seq backend
//   4. the engine's Simd backend (W=4, serialized scatters)
// The (2)/(1) ratio is the machine's true vectorization headroom for
// res_calc; (3)/(1) and (4)/(2) are the abstraction cost of the engine.

#include <functional>

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;
namespace simd = opv::simd;

namespace {

double time_reps(int reps, const std::function<void()>& fn) {
  fn();  // warmup
  WallTimer t;
  for (int r = 0; r < reps; ++r) fn();
  return t.seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  print_header("Ablation: generated-stub-style code vs the runtime engine (res_calc)",
               "Reguly et al., section 5 (specialized stubs) + Table VII");

  auto m = mesh::make_airfoil_omesh(
      static_cast<idx_t>(cli.get_int("ni", 1200)), static_cast<idx_t>(cli.get_int("nj", 600)));
  const int reps = static_cast<int>(cli.get_int("iters", 8));
  const idx_t ne = m.nedges, nc = m.ncells, nn = m.nnodes;

  aligned_vector<double> x(static_cast<std::size_t>(nn) * 2);
  aligned_vector<double> q(static_cast<std::size_t>(nc) * 4), res(static_cast<std::size_t>(nc) * 4, 0.0);
  aligned_vector<double> adtv(static_cast<std::size_t>(nc), 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = m.node_xy[i];
  const auto consts = airfoil::Consts<double>::standard();
  for (idx_t c = 0; c < nc; ++c)
    for (int k = 0; k < 4; ++k) q[static_cast<std::size_t>(c) * 4 + k] = consts.qinf[k];
  const idx_t* en = m.edge_nodes.data();
  const idx_t* ec = m.edge_cells.data();
  airfoil::ResCalc<double> K{consts};

  // 1. hand-written scalar stub.
  const double t_scalar = time_reps(reps, [&] {
    for (idx_t e = 0; e < ne; ++e)
      K(&x[2 * static_cast<std::size_t>(en[2 * e])], &x[2 * static_cast<std::size_t>(en[2 * e + 1])],
        &q[4 * static_cast<std::size_t>(ec[2 * e])], &q[4 * static_cast<std::size_t>(ec[2 * e + 1])],
        &adtv[ec[2 * e]], &adtv[ec[2 * e + 1]], &res[4 * static_cast<std::size_t>(ec[2 * e])],
        &res[4 * static_cast<std::size_t>(ec[2 * e + 1])]);
  });

  // 2. hand-written Fig-3b vector stub (W=4, serialized scatter).
  constexpr int W = 4;
  using V = simd::Vec<double, W>;
  using IV = simd::Vec<std::int32_t, W>;
  const double t_vector = time_reps(reps, [&] {
    idx_t e = 0;
    for (; e + W <= ne; e += W) {
      const IV n0 = IV::strided(en + 2 * e, 2) * IV(2);
      const IV n1 = IV::strided(en + 2 * e + 1, 2) * IV(2);
      const IV c0 = IV::strided(ec + 2 * e, 2);
      const IV c1 = IV::strided(ec + 2 * e + 1, 2);
      const IV c0q = c0 * IV(4), c1q = c1 * IV(4);
      V x1[2] = {V::gather(x.data(), n0), V::gather(x.data() + 1, n0)};
      V x2[2] = {V::gather(x.data(), n1), V::gather(x.data() + 1, n1)};
      V q1[4], q2[4];
      for (int k = 0; k < 4; ++k) {
        q1[k] = V::gather(q.data() + k, c0q);
        q2[k] = V::gather(q.data() + k, c1q);
      }
      V a1 = V::gather(adtv.data(), c0), a2 = V::gather(adtv.data(), c1);
      V r1[4] = {}, r2[4] = {};
      K(x1, x2, q1, q2, &a1, &a2, r1, r2);
      for (int k = 0; k < 4; ++k) {
        simd::scatter_add_serial(res.data() + k, c0q, r1[k]);
        simd::scatter_add_serial(res.data() + k, c1q, r2[k]);
      }
    }
    for (; e < ne; ++e)
      K(&x[2 * static_cast<std::size_t>(en[2 * e])], &x[2 * static_cast<std::size_t>(en[2 * e + 1])],
        &q[4 * static_cast<std::size_t>(ec[2 * e])], &q[4 * static_cast<std::size_t>(ec[2 * e + 1])],
        &adtv[ec[2 * e]], &adtv[ec[2 * e + 1]], &res[4 * static_cast<std::size_t>(ec[2 * e])],
        &res[4 * static_cast<std::size_t>(ec[2 * e + 1])]);
  });

  // 3./4. the engine, single-threaded.
  Set nodes("nodes", nn), cells("cells", nc), edges("edges", ne);
  Map pedge("pedge", edges, nodes, 2, m.edge_nodes);
  Map pecell("pecell", edges, cells, 2, m.edge_cells);
  Dat<double> xd("x", nodes, 2, x), qd("q", cells, 4, q), ad("adt", cells, 1, adtv);
  Dat<double> rd("res", cells, 4);
  auto engine = [&](Backend b) {
    const ExecConfig cfg{.backend = b, .simd_width = 4, .nthreads = 1, .collect_stats = false};
    // Reusable Loop handle: the engine's steady-state path (plan pinned,
    // conflict analysis done once) — the fair comparison against the
    // hand-written stubs above, which also do no per-sweep setup.
    Loop loop(K, std::string("res_calc_ablation"), edges, arg<opv::READ>(xd, 0, pedge),
              arg<opv::READ>(xd, 1, pedge), arg<opv::READ>(qd, 0, pecell),
              arg<opv::READ>(qd, 1, pecell), arg<opv::READ>(ad, 0, pecell),
              arg<opv::READ>(ad, 1, pecell), arg<opv::INC>(rd, 0, pecell),
              arg<opv::INC>(rd, 1, pecell));
    return time_reps(reps, [&] { loop.run(cfg); });
  };
  const double t_eng_seq = engine(Backend::Seq);
  const double t_eng_simd = engine(Backend::Simd);

  perf::Table t({"variant", "time/sweep (s)", "ns/edge", "vs hand scalar"});
  auto row = [&](const char* name, double secs) {
    t.add_row({name, perf::Table::num(secs, 4), perf::Table::num(secs / ne * 1e9, 1),
               perf::Table::num(t_scalar / secs, 2) + "x"});
  };
  row("hand scalar stub (OP2 MPI codegen)", t_scalar);
  row("hand vector stub (OP2 AVX codegen, Fig. 3b)", t_vector);
  row("engine Seq backend", t_eng_seq);
  row("engine Simd backend (W=4)", t_eng_simd);
  t.print();

  std::printf("\nReadings:\n"
              " * hand-vector / hand-scalar = the machine's true vectorization\n"
              "   headroom for res_calc (the paper saw ~1.3x on Sandy Bridge;\n"
              "   modern cores with far more FLOP/byte see less),\n"
              " * engine / hand = the abstraction cost OP2 eliminates by\n"
              "   generating specialized stubs per loop (paper section 5).\n");
  return 0;
}
