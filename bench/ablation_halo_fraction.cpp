// Ablation: communication (halo exchange + synchronization) fraction vs
// problem size and rank count.
//
// Paper section 6.5: on the small Airfoil mesh up to 30% of Phi runtime is
// spent in MPI, dropping to 13% on the large mesh (7%/4% on the CPU) —
// smaller per-rank working sets make exchange and synchronization overhead
// relatively larger. The rank simulator records exchange time per loop
// ("<loop>/halo"), letting us reproduce the trend.

#include <algorithm>

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 8));
  print_header("Ablation: halo-exchange fraction vs mesh size and rank count",
               "Reguly et al., section 6.5 (MPI time fraction)");

  perf::Table t({"mesh", "ranks", "compute (s)", "halo (s)", "halo fraction", "max imb"});

  for (auto [ni, nj, label] : {std::tuple<idx_t, idx_t, const char*>{300, 150, "45k cells"},
                               {600, 300, "180k cells"},
                               {1200, 600, "720k cells"}}) {
    auto m = mesh::make_airfoil_omesh(ni, nj);
    for (int ranks : {4, 12, 24}) {
      clear_stats();
      dist::DistCtx ctx(ranks, ExecConfig{.backend = Backend::Simd, .nthreads = 1});
      airfoil::Airfoil<double, dist::DistCtx> app(ctx, m);
      app.run(1, 0);  // warmup (halo build, first exchange)
      clear_stats();
      app.run(iters, 0);
      double compute = 0, halo = 0, imb = 0;
      for (const auto& [name, rec] : StatsRegistry::instance().all()) {
        if (name.ends_with("/halo")) halo += rec.seconds;
        else compute += rec.seconds;
        imb = std::max(imb, perf::rank_imbalance(rec));
      }
      t.add_row({label, std::to_string(ranks), perf::Table::num(compute, 3),
                 perf::Table::num(halo, 3), perf::Table::pct(halo / (compute + halo), 1),
                 perf::Table::num(imb, 2)});
    }
  }
  t.print();

  std::printf("\nShape check vs paper section 6.5: the halo fraction grows with the\n"
              "rank count and shrinks with the mesh size — the smaller each rank's\n"
              "working set, the larger the relative cost of exchanges.\n");
  return 0;
}
