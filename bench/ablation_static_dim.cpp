// Ablation: compile-time Dim vs runtime-dim argument descriptors, on the
// paper's hottest kernel shape (res_calc: dim-2 coordinate gathers, dim-4
// state gathers, dim-4 colored scatters, dim-1 direct reads).
//
// OP2's generator substitutes literal arities into every stub (paper
// section 5); opvec gets the same effect from the descriptor's Dim template
// parameter (core/arg.hpp) — every per-component gather/scatter loop is an
// index-sequence expansion with literal strides. The runtime-dim spelling
// (`arg<opv::READ>` with no Dim) keeps looped per-component accesses whose
// trip counts and strides live in registers, not in the instruction stream.
// This bench runs the SAME kernel through both descriptor spellings and
// reports the gap per backend — the cost of leaving arities to runtime.

#include <cstdlib>

#include "bench_common.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

double time_reps(int reps, const std::function<void()>& fn) {
  fn();  // warmup (plan construction, first touch)
  WallTimer t;
  for (int r = 0; r < reps; ++r) fn();
  return t.seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  print_header("Ablation: compile-time Dim vs runtime-dim descriptors (res_calc)",
               "Reguly et al., section 5 (literal-constant substitution)");

  auto m = mesh::make_airfoil_omesh(
      static_cast<idx_t>(cli.get_int("ni", 1200)), static_cast<idx_t>(cli.get_int("nj", 600)));
  const int reps = static_cast<int>(cli.get_int("iters", 8));
  const int nthreads = static_cast<int>(cli.get_int("threads", 1));
  const idx_t ne = m.nedges;

  Set nodes("nodes", m.nnodes), cells("cells", m.ncells), edges("edges", ne);
  Map pedge("pedge", edges, nodes, 2, m.edge_nodes);
  Map pecell("pecell", edges, cells, 2, m.edge_cells);

  const auto consts = airfoil::Consts<double>::standard();
  aligned_vector<double> q0(static_cast<std::size_t>(m.ncells) * 4);
  for (idx_t c = 0; c < m.ncells; ++c)
    for (int k = 0; k < 4; ++k) q0[static_cast<std::size_t>(c) * 4 + k] = consts.qinf[k];
  Dat<double> xd("x", nodes, 2, m.node_xy);
  Dat<double> qd("q", cells, 4, q0);
  Dat<double> ad("adt", cells, 1, aligned_vector<double>(m.ncells, 1.0));
  Dat<double> rd_rt("res_rt", cells, 4);
  Dat<double> rd_st("res_st", cells, 4);
  airfoil::ResCalc<double> K{consts};

  // The SAME kernel and data through the two descriptor spellings. Dim is
  // part of the Loop type: these are two distinct instantiations of the
  // engine, which is exactly the point.
  Loop rt(K, std::string("res_calc_rtdim"), edges, arg<opv::READ>(xd, 0, pedge),
          arg<opv::READ>(xd, 1, pedge), arg<opv::READ>(qd, 0, pecell),
          arg<opv::READ>(qd, 1, pecell), arg<opv::READ>(ad, 0, pecell),
          arg<opv::READ>(ad, 1, pecell), arg<opv::INC>(rd_rt, 0, pecell),
          arg<opv::INC>(rd_rt, 1, pecell));
  Loop st(K, std::string("res_calc_staticdim"), edges, arg<opv::READ, 2>(xd, 0, pedge),
          arg<opv::READ, 2>(xd, 1, pedge), arg<opv::READ, 4>(qd, 0, pecell),
          arg<opv::READ, 4>(qd, 1, pecell), arg<opv::READ, 1>(ad, 0, pecell),
          arg<opv::READ, 1>(ad, 1, pecell), arg<opv::INC, 4>(rd_st, 0, pecell),
          arg<opv::INC, 4>(rd_st, 1, pecell));
  static_assert(!std::is_same_v<decltype(rt), decltype(st)>);
  static_assert(decltype(st)::all_static_dim && !decltype(rt)::all_static_dim,
                "the two loops must sit on opposite sides of the ablation");

  perf::Table t({"backend", "runtime-dim (s)", "static-dim (s)", "static speedup"});
  auto row = [&](const char* name, const ExecConfig& cfg) {
    rd_rt.fill(0.0);
    rd_st.fill(0.0);
    const double t_rt = time_reps(reps, [&] { rt.run(cfg); });
    const double t_st = time_reps(reps, [&] { st.run(cfg); });
    // Same arithmetic order: the two spellings must agree bitwise.
    for (idx_t c = 0; c < cells.size(); ++c)
      for (int k = 0; k < 4; ++k)
        if (rd_rt.at(c, k) != rd_st.at(c, k)) {
          std::fprintf(stderr, "MISMATCH at cell %ld comp %d: %g vs %g\n",
                       static_cast<long>(c), k, rd_rt.at(c, k), rd_st.at(c, k));
          std::exit(1);
        }
    t.add_row({name, perf::Table::num(t_rt, 4), perf::Table::num(t_st, 4),
               perf::Table::num(t_rt / t_st, 2) + "x"});
  };

  row("Seq", {.backend = Backend::Seq, .nthreads = 1, .collect_stats = false});
  row("OpenMP",
      {.backend = Backend::OpenMP, .nthreads = nthreads, .collect_stats = false});
  row("Simd/TwoLevel W=4",
      {.backend = Backend::Simd, .simd_width = 4, .nthreads = nthreads,
       .collect_stats = false});
  row("Simd/BlockPermute W=4",
      {.backend = Backend::Simd, .coloring = ColoringStrategy::BlockPermute, .simd_width = 4,
       .nthreads = nthreads, .collect_stats = false});
  row("Simt W=4",
      {.backend = Backend::Simt, .simd_width = 4, .nthreads = nthreads,
       .collect_stats = false});
  t.print();

  std::printf("\nReadings:\n"
              " * static-dim descriptors let every gather/scatter unroll with\n"
              "   literal component counts and strides (paper section 5's\n"
              "   \"substituting literal constants\"); runtime-dim keeps looped\n"
              "   per-component accesses — the compatibility spelling's cost,\n"
              " * results are checked bitwise identical: Dim changes code\n"
              "   shape, never arithmetic order.\n");
  return 0;
}
