// Ablation: the per-dat memory layout policy (core/layout.hpp) — AoS vs SoA
// vs AoSoA on the paper's hardest indirect loop (Airfoil res_calc) and the 3D
// sibling (Tet3D t3d_flux_calc).
//
// The vectorized paths of sections 6.1-6.4 pay a strided-access tax on every
// multi-component dat when storage is locked to AoS: a W-wide gather of
// component c touches W cache lines dim elements apart. SoA turns those into
// dense per-plane gathers (and direct accesses into unit-stride plane loads);
// AoSoA tiles the same idea at the lane-block size. This bench measures that
// axis per backend on renumbered meshes and doubles as a functional smoke:
//
//   * Seq must be BITWISE identical across all three layouts (the scalar
//     path stages rows through scratch, so the kernel sees the same values
//     in the same order regardless of physical layout);
//   * every vector backend x non-AoS layout must match the Seq/AoS reference
//     within 1e-12 of the field norm (coloring already reassociates sums,
//     so bitwise is the wrong bar there) — including Simt with shared-
//     scratch staging (ExecConfig::simt_staging).
//
// The bench exits non-zero on any divergence.
//
//   ./ablation_layout [--small|--large] [--iters=N] [--threads=N] [--json=FILE]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/tet3d/tet3d.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "mesh/tetmesh.hpp"

using namespace opv;
using namespace opv::bench;

namespace {

constexpr Layout kLayouts[3] = {Layout::AoS, Layout::SoA, Layout::AoSoA};

const std::vector<std::string>& tet3d_kernels() {
  static const std::vector<std::string> k = {"t3d_save_u",    "t3d_grad_calc",
                                             "t3d_bgrad_calc", "t3d_flux_calc",
                                             "t3d_bflux_calc", "t3d_update_u"};
  return k;
}

double kernel_secs(const std::vector<KernelRow>& rows, const char* name) {
  for (const auto& r : rows)
    if (r.name == name) return r.seconds;
  return 0.0;
}

/// Airfoil under a layout policy (renumbered, warmup excluded).
std::vector<KernelRow> run_airfoil_layout(const mesh::UnstructuredMesh& m, ExecConfig cfg,
                                          int iters, Layout l) {
  LocalCtx ctx(cfg);
  ctx.set_renumber(true);
  ctx.set_default_layout(l);
  airfoil::Airfoil<double, LocalCtx> app(ctx, m);
  app.run(1, 0);  // warmup
  clear_stats();
  app.run(iters, 0);
  return collect_rows(airfoil_kernels(), sizeof(double));
}

/// Tet3D under a layout policy (renumbered, warmup excluded).
std::vector<KernelRow> run_tet3d_layout(const mesh::TetMesh& m, ExecConfig cfg, int steps,
                                        Layout l) {
  LocalCtx ctx(cfg);
  ctx.set_renumber(true);
  ctx.set_default_layout(l);
  tet3d::Tet3D<double, LocalCtx> app(ctx, m);
  app.run(1, 0);  // warmup
  clear_stats();
  app.run(steps, 0);
  return collect_rows(tet3d_kernels(), sizeof(double));
}

aligned_vector<double> airfoil_field(const mesh::UnstructuredMesh& m, const ExecConfig& cfg,
                                     Layout l, int iters) {
  LocalCtx ctx(cfg);
  ctx.set_renumber(true);
  ctx.set_default_layout(l);
  airfoil::Airfoil<double, LocalCtx> app(ctx, m);
  app.run(iters, 0);
  return app.fetch_q();
}

aligned_vector<double> tet3d_field(const mesh::TetMesh& m, const ExecConfig& cfg, Layout l,
                                   int steps) {
  LocalCtx ctx(cfg);
  ctx.set_renumber(true);
  ctx.set_default_layout(l);
  tet3d::Tet3D<double, LocalCtx> app(ctx, m);
  app.run(steps, 0);
  return app.fetch_u();
}

bool bitwise_equal(const aligned_vector<double>& a, const aligned_vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double field_norm_divergence(const aligned_vector<double>& ref, const aligned_vector<double>& got) {
  if (ref.size() != got.size()) return 1.0;
  double norm = 0.0, max_diff = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    norm = std::max(norm, std::abs(ref[i]));
    max_diff = std::max(max_diff, std::abs(ref[i] - got[i]));
  }
  return norm > 0.0 ? max_diff / norm : 1.0;
}

/// Functional gate on small meshes: Seq bitwise across layouts; vector
/// backends (incl. staged Simt) within 1e-12 of the field norm of Seq/AoS.
bool equivalence_ok() {
  const auto m2 = mesh::make_airfoil_omesh(96, 32);
  const auto m3 = mesh::make_tet_box(6, 6, 5);
  const int iters = 2;
  const ExecConfig seq{.backend = Backend::Seq};
  bool ok = true;

  const auto q_ref = airfoil_field(m2, seq, Layout::AoS, iters);
  const auto u_ref = tet3d_field(m3, seq, Layout::AoS, iters);
  for (Layout l : {Layout::SoA, Layout::AoSoA}) {
    if (!bitwise_equal(q_ref, airfoil_field(m2, seq, l, iters))) {
      std::fprintf(stderr, "FAIL: Airfoil Seq/%s not bitwise equal to Seq/AoS\n",
                   layout_name(l));
      ok = false;
    }
    if (!bitwise_equal(u_ref, tet3d_field(m3, seq, l, iters))) {
      std::fprintf(stderr, "FAIL: Tet3D Seq/%s not bitwise equal to Seq/AoS\n", layout_name(l));
      ok = false;
    }
  }
  std::printf("gate: Seq bitwise identity across layouts (Airfoil q, Tet3D u): %s\n",
              ok ? "ok" : "FAILED");

  struct VecCfg {
    const char* label;
    ExecConfig cfg;
  };
  const std::vector<VecCfg> vec_cfgs = {
      {"OpenMP", {.backend = Backend::OpenMP, .nthreads = 2}},
      {"Simd", {.backend = Backend::Simd}},
      {"Simt", {.backend = Backend::Simt}},
      {"Simt+stage", {.backend = Backend::Simt, .simt_staging = true}},
  };
  for (const auto& vc : vec_cfgs) {
    for (Layout l : kLayouts) {
      const double dq = field_norm_divergence(q_ref, airfoil_field(m2, vc.cfg, l, iters));
      const double du = field_norm_divergence(u_ref, tet3d_field(m3, vc.cfg, l, iters));
      const double d = std::max(dq, du);
      if (d >= 1e-12) {
        std::fprintf(stderr, "FAIL: %s/%s diverged %.3e of the field norm from Seq/AoS\n",
                     vc.label, layout_name(l), d);
        ok = false;
      }
    }
  }
  std::printf("gate: vector backends x layouts within 1e-12 field norm of Seq/AoS: %s\n\n",
              ok ? "ok" : "FAILED");
  return ok;
}

/// One perf row: a backend's kernel seconds per layout.
struct Row {
  std::string label;
  bool vector_backend = false;
  double secs[3] = {0, 0, 0};  ///< indexed like kLayouts: AoS, SoA, AoSoA
  [[nodiscard]] double best_speedup() const {
    const double best = std::min(secs[1], secs[2]);
    return best > 0.0 ? secs[0] / best : 0.0;
  }
  [[nodiscard]] const char* best_layout() const {
    return secs[1] <= secs[2] ? layout_name(Layout::SoA) : layout_name(Layout::AoSoA);
  }
};

void print_rows(const char* what, const std::vector<Row>& rows) {
  perf::Table t({what, "AoS (s)", "SoA (s)", "AoSoA (s)", "best non-AoS"});
  for (const Row& r : rows)
    t.add_row({r.label, perf::Table::num(r.secs[0], 3), perf::Table::num(r.secs[1], 3),
               perf::Table::num(r.secs[2], 3),
               std::string(r.best_layout()) + " " + perf::Table::num(r.best_speedup(), 2) + "x"});
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Sizes sz = Sizes::from_cli(cli);
  if (!cli.has("iters")) sz.airfoil_iters = 8;
  const idx_t tet_n = cli.has("large") ? 56 : (cli.has("small") ? 24 : 40);
  print_header("Ablation: per-dat memory layout (AoS / SoA / AoSoA)",
               "Reguly et al., sections 6.1-6.4 (strided access of vectorized indirect loops)");

  if (!equivalence_ok()) {
    std::fprintf(stderr, "FAIL: layout equivalence gate\n");
    return 1;
  }

  const int nthreads = sz.threads > 0 ? sz.threads : hardware_threads();
  struct BackendCfg {
    const char* label;
    bool vector_backend;
    ExecConfig cfg;
  };
  const std::vector<BackendCfg> backends = {
      {"Seq", false, {.backend = Backend::Seq}},
      {"OpenMP", false, {.backend = Backend::OpenMP, .nthreads = nthreads}},
      {"Simd", true, {.backend = Backend::Simd, .simd_width = 0, .nthreads = nthreads}},
      {"Simt", true, {.backend = Backend::Simt, .simd_width = 0, .nthreads = nthreads}},
      {"Simt+stage", true,
       {.backend = Backend::Simt, .simd_width = 0, .nthreads = nthreads, .simt_staging = true}},
  };

  const auto m2 = mesh::make_airfoil_omesh(sz.airfoil_ni, sz.airfoil_nj);
  const mesh::TetMesh m3 = mesh::make_tet_box(tet_n, tet_n, tet_n);
  std::printf("airfoil %d cells x %d iters, tet box %d cells x %d steps, %d threads\n\n",
              m2.ncells, sz.airfoil_iters, m3.ncells, sz.volna_steps, nthreads);

  std::vector<Row> af_rows, tet_rows;
  for (const auto& bc : backends) {
    Row af{bc.label, bc.vector_backend};
    Row tet{bc.label, bc.vector_backend};
    for (int i = 0; i < 3; ++i) {
      af.secs[i] =
          kernel_secs(run_airfoil_layout(m2, bc.cfg, sz.airfoil_iters, kLayouts[i]), "res_calc");
      tet.secs[i] =
          kernel_secs(run_tet3d_layout(m3, bc.cfg, sz.volna_steps, kLayouts[i]), "t3d_flux_calc");
    }
    af_rows.push_back(af);
    tet_rows.push_back(tet);
  }

  std::printf("Airfoil res_calc (renumbered mesh):\n");
  print_rows("backend", af_rows);
  std::printf("\nTet3D t3d_flux_calc (renumbered mesh):\n");
  print_rows("backend", tet_rows);

  double headline = 0.0;
  const char* headline_backend = "-";
  for (const Row& r : af_rows)
    if (r.vector_backend && r.best_speedup() > headline) {
      headline = r.best_speedup();
      headline_backend = r.label.c_str();
    }
  std::printf("\nShape check: on the vector backends the best non-AoS layout should beat\n"
              "AoS on res_calc (>= 1.15x on a quiet machine at default sizes) — the\n"
              "strided-gather tax sections 6.1-6.4 describe, now a per-dat policy.\n");
  std::printf("headline: res_calc best non-AoS vs AoS = %.2fx (%s)\n", headline,
              headline_backend);

  const std::string json = cli.get("json", "");
  if (!json.empty()) {
    FILE* f = std::fopen(json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_layout\",\n");
    std::fprintf(f, "  \"airfoil_cells\": %d,\n  \"tet_cells\": %d,\n", m2.ncells, m3.ncells);
    std::fprintf(f, "  \"iters\": %d,\n  \"threads\": %d,\n  \"gate\": \"pass\",\n",
                 sz.airfoil_iters, nthreads);
    const auto dump = [&](const char* key, const std::vector<Row>& rows, bool last) {
      std::fprintf(f, "  \"%s\": [\n", key);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f,
                     "    {\"backend\": \"%s\", \"aos_s\": %.6f, \"soa_s\": %.6f, "
                     "\"aosoa_s\": %.6f, \"best_layout\": \"%s\", \"best_speedup\": %.4f}%s\n",
                     r.label.c_str(), r.secs[0], r.secs[1], r.secs[2], r.best_layout(),
                     r.best_speedup(), i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]%s\n", last ? "" : ",");
    };
    dump("airfoil_res_calc", af_rows, false);
    dump("tet3d_flux_calc", tet_rows, false);
    std::fprintf(f, "  \"headline_speedup\": %.4f,\n  \"headline_backend\": \"%s\"\n}\n",
                 headline, headline_backend);
    std::fclose(f);
    std::printf("\nwrote %s\n", json.c_str());
  }
  return 0;
}
