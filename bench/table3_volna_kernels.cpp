// Table III reproduction: properties of the Volna kernels (single
// precision), mirroring table2_airfoil_kernels.

#include "bench_common.hpp"

int main(int, char**) {
  opv::volna::register_kernel_info();
  opv::bench::print_header("Table III: properties of Volna kernels",
                           "Reguly et al., Table III");

  opv::perf::Table t({"kernel", "direct read", "direct write", "indirect read", "indirect write",
                      "FLOP", "FLOP/byte SP", "description"});
  for (const auto& name : opv::bench::volna_kernels()) {
    const auto& k = opv::KernelRegistry::instance().get(name);
    t.add_row({k.name, opv::perf::Table::num(k.direct_read, 0),
               opv::perf::Table::num(k.direct_write, 0),
               opv::perf::Table::num(k.indirect_read, 0),
               opv::perf::Table::num(k.indirect_write, 0), opv::perf::Table::num(k.flops, 0),
               opv::perf::Table::num(k.flop_per_byte(4), 2), k.description});
  }
  t.print();

  std::printf("\npaper values (Table III): RK_1 0.6, RK_2 0.8, sim_1 0, compute_flux 8.5,\n"
              "numerical_flux 0.81, space_disc 0.88 FLOP/byte.\n");
  return 0;
}
