// Table I reproduction: benchmark-system characterization.
// Paper columns: clock, cores, cache, peak bandwidth, peak GFLOPS,
// STREAM bandwidth, GEMM GFLOPS, FLOP/byte. We measure the achievable
// quantities on this host for the two "machine models" every other bench
// uses: the host CPU (AVX2-class, 4 DP lanes) and the Phi model
// (AVX-512, 8 DP lanes, 2x thread oversubscription).

#include "bench_common.hpp"
#include "perf/probes.hpp"

int main(int argc, char** argv) {
  const opv::Cli cli(argc, argv);
  opv::bench::print_header("Table I: benchmark systems (measured on this host)",
                           "Reguly et al., Table I");

  const int threads = static_cast<int>(cli.get_int("threads", opv::hardware_threads()));
  const std::size_t n = cli.has("small") ? (1u << 23) : (1u << 26);

  const auto stream = opv::perf::stream_bandwidth(n, 3, threads);
  std::printf("STREAM (n=%zu doubles, %d threads):\n", n, threads);
  std::printf("  copy  %7.1f GB/s\n  scale %7.1f GB/s\n  add   %7.1f GB/s\n  triad %7.1f GB/s\n\n",
              stream.copy_gbs, stream.scale_gbs, stream.add_gbs, stream.triad_gbs);

  const double dp_scalar = opv::perf::flops_peak_dp(1, threads);
  const double dp_v4 = opv::perf::flops_peak_dp(4, threads);
  const double dp_v8 = opv::perf::flops_peak_dp(8, threads);
  const double sp_scalar = opv::perf::flops_peak_sp(1, threads);
  const double sp_v8 = opv::perf::flops_peak_sp(8, threads);
  const double sp_v16 = opv::perf::flops_peak_sp(16, threads);

  opv::perf::Table t({"config", "DP GFLOP/s", "SP GFLOP/s", "FLOP/byte DP(SP)"});
  const double bw = stream.best();
  auto row = [&](const char* name, double dp, double sp) {
    t.add_row({name, opv::perf::Table::num(dp, 0), opv::perf::Table::num(sp, 0),
               opv::perf::Table::num(dp / bw, 2) + "(" + opv::perf::Table::num(sp / bw, 2) + ")"});
  };
  row("scalar (no vectorization)", dp_scalar, sp_scalar);
  row("host CPU model (256-bit AVX)", dp_v4, sp_v8);
  row("Phi model (512-bit, AVX-512)", dp_v8, sp_v16);
  t.print();

  std::printf("\nShape check vs paper Table I: vectorization multiplies achievable\n"
              "FLOP rates by ~the lane count while STREAM bandwidth is fixed, so\n"
              "the machine balance (FLOP/byte) rises and bandwidth-bound kernels\n"
              "stop benefiting from extra compute — the premise of the study.\n");
  return 0;
}
