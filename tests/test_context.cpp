// Context-layer tests: the LocalCtx/DistCtx API contract that the
// application drivers are written against (declaration ordering, zero-init
// dats, fetch semantics, handle stability, config plumbing).
#include <gtest/gtest.h>

#include "apps/airfoil/airfoil.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

TEST(LocalCtx, DeclZeroInitializedDat) {
  LocalCtx ctx;
  auto s = ctx.decl_set("s", 10);
  auto d = ctx.decl_dat<double>("d", s, 3);
  for (idx_t e = 0; e < 10; ++e)
    for (int c = 0; c < 3; ++c) EXPECT_EQ(d->at(e, c), 0.0);
}

TEST(LocalCtx, FetchReturnsOwnedValues) {
  LocalCtx ctx;
  auto s = ctx.decl_set("s", 5);
  aligned_vector<float> init = {1, 2, 3, 4, 5};
  auto d = ctx.decl_dat<float>("d", s, 1, init);
  aligned_vector<float> out;
  ctx.fetch(d, out);
  EXPECT_EQ(out, init);
}

TEST(LocalCtx, HandlesStayValidAcrossManyDecls) {
  // deque storage must not invalidate earlier handles on growth.
  LocalCtx ctx;
  auto s = ctx.decl_set("s", 4);
  auto first = ctx.decl_dat<double>("first", s, 1);
  std::vector<LocalCtx::DatHandle<double>> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(ctx.decl_dat<double>("d" + std::to_string(i), s, 1));
  first->fill(7.0);
  EXPECT_EQ(first->at(2), 7.0);
  handles[50]->fill(3.0);
  EXPECT_EQ(handles[50]->at(0), 3.0);
  EXPECT_EQ(handles[49]->at(0), 0.0);
}

TEST(LocalCtx, ConfigControlsLoops) {
  LocalCtx ctx(ExecConfig{.backend = Backend::Seq, .collect_stats = false});
  EXPECT_EQ(ctx.config().backend, Backend::Seq);
  ctx.config().backend = Backend::Simd;
  EXPECT_EQ(ctx.config().backend, Backend::Simd);
}

TEST(DistCtx, RequiresPartitionCoords) {
  dist::DistCtx ctx(2, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  ctx.decl_set("cells", 10);
  EXPECT_THROW(ctx.finalize(), Error);
}

TEST(DistCtx, DeclAfterFinalizeThrows) {
  auto m = mesh::make_quad_box(4, 4);
  const auto cent = airfoil::cell_centroids(m);
  dist::DistCtx ctx(2, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto cells = ctx.decl_set("cells", m.ncells);
  ctx.set_partition_coords(cells, cent.data());
  ctx.finalize();
  EXPECT_THROW(ctx.decl_set("more", 5), Error);
}

TEST(DistCtx, FinalizeIsIdempotentAndImplicit) {
  auto m = mesh::make_quad_box(6, 6);
  const auto cent = airfoil::cell_centroids(m);
  dist::DistCtx ctx(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto cells = ctx.decl_set("cells", m.ncells);
  ctx.set_partition_coords(cells, cent.data());
  auto q = ctx.decl_dat<double>("q", cells, 1);
  // First loop triggers finalize implicitly; a second explicit call is a
  // no-op.
  ctx.loop([](auto* x) { x[0] = std::decay_t<decltype(x[0])>(1.0); }, "init", cells,
           ctx.arg(q, Access::WRITE));
  ctx.finalize();
  aligned_vector<double> out;
  ctx.fetch(q, out);
  for (double v : out) EXPECT_EQ(v, 1.0);
}

TEST(DistCtx, PartitionedExposesLayouts) {
  auto m = mesh::make_quad_box(8, 8);
  const auto cent = airfoil::cell_centroids(m);
  dist::DistCtx ctx(4, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.set_partition_coords(cells, cent.data());
  ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
  ctx.finalize();
  const auto& part = ctx.partitioned();
  EXPECT_EQ(part.nranks(), 4);
  idx_t owned_total = 0;
  for (int r = 0; r < 4; ++r) owned_total += part.layout(r, 0).nowned;
  EXPECT_EQ(owned_total, m.ncells);
}

// The same app driver source must compile and agree across both contexts —
// the repository's "single application code, many backends" claim.
TEST(ContextConcept, AirfoilDriverIsContextGeneric) {
  auto m = mesh::make_airfoil_omesh(24, 8);
  LocalCtx lc(ExecConfig{.backend = Backend::Seq});
  airfoil::Airfoil<double, LocalCtx> a1(lc, m);
  a1.run(2, 0);
  dist::DistCtx dc(2, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  airfoil::Airfoil<double, dist::DistCtx> a2(dc, m);
  a2.run(2, 0);
  const auto q1 = a1.fetch_q();
  const auto q2 = a2.fetch_q();
  ASSERT_EQ(q1.size(), q2.size());
  for (std::size_t i = 0; i < q1.size(); ++i)
    ASSERT_NEAR(q1[i], q2[i], 1e-10 * (std::abs(q1[i]) + 1)) << i;
}

}  // namespace
