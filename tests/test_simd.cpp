// SIMD layer tests: every arithmetic/comparison/select/math/reduction
// operation on every vector type is checked lane-by-lane against scalar
// reference computations, on deterministic random inputs. Typed tests cover
// both the portable vectors and the AVX2/AVX-512 intrinsic specializations;
// a separate suite asserts portable == intrinsic agreement.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "simd/simd.hpp"

namespace {

using namespace opv;
namespace simd = opv::simd;

template <class V>
struct Input {
  using S = typename simd::vec_traits<V>::scalar;
  static constexpr int W = simd::vec_traits<V>::lanes;
  std::array<S, W> a, b, c;

  static Input random(std::uint64_t seed, double lo = -10.0, double hi = 10.0) {
    Input in;
    Rng rng(seed);
    for (int i = 0; i < W; ++i) {
      in.a[i] = static_cast<S>(rng.uniform(lo, hi));
      in.b[i] = static_cast<S>(rng.uniform(lo, hi));
      in.c[i] = static_cast<S>(rng.uniform(lo, hi));
    }
    return in;
  }
};

template <class V>
class SimdOps : public ::testing::Test {};

using VecTypes = ::testing::Types<
    simd::VecP<double, 4>, simd::VecP<double, 8>, simd::VecP<float, 8>, simd::VecP<float, 16>,
    simd::VecP<double, 16>
#if defined(__AVX2__)
    ,
    simd::F64x4, simd::F32x8
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
    ,
    simd::F64x8, simd::F32x16
#endif
    >;
TYPED_TEST_SUITE(SimdOps, VecTypes);

TYPED_TEST(SimdOps, BroadcastAndLaneAccess) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  const V v(S(3.5));
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(v[i], S(3.5));
  const V z;  // default = zero
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(z[i], S(0));
}

TYPED_TEST(SimdOps, LoadStoreRoundtrip) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  const auto in = Input<V>::random(1);
  alignas(64) S buf[V::width];
  for (int i = 0; i < V::width; ++i) buf[i] = in.a[i];
  const V v = V::loada(buf);
  alignas(64) S out[V::width];
  simd::storea(out, v);
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(out[i], in.a[i]);
  // Unaligned path.
  S ubuf[V::width + 1];
  for (int i = 0; i < V::width; ++i) ubuf[i + 1] = in.b[i];
  const V u = V::loadu(ubuf + 1);
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(u[i], in.b[i]);
}

TYPED_TEST(SimdOps, ArithmeticMatchesScalar) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto in = Input<V>::random(seed, 0.1, 10.0);
    const V a = V::loadu(in.a.data()), b = V::loadu(in.b.data());
    const V sum = a + b, dif = a - b, mul = a * b, quo = a / b, neg = -a;
    for (int i = 0; i < V::width; ++i) {
      EXPECT_EQ(sum[i], S(in.a[i] + in.b[i]));
      EXPECT_EQ(dif[i], S(in.a[i] - in.b[i]));
      EXPECT_EQ(mul[i], S(in.a[i] * in.b[i]));
      EXPECT_EQ(quo[i], S(in.a[i] / in.b[i]));
      EXPECT_EQ(neg[i], S(-in.a[i]));
    }
  }
}

TYPED_TEST(SimdOps, CompoundAssignment) {
  using V = TypeParam;
  const auto in = Input<V>::random(7, 0.5, 3.0);
  V a = V::loadu(in.a.data());
  const V b = V::loadu(in.b.data());
  V x = a;
  x += b;
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(x[i], a[i] + b[i]);
  x = a;
  x -= b;
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(x[i], a[i] - b[i]);
  x = a;
  x *= b;
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(x[i], a[i] * b[i]);
  x = a;
  x /= b;
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(x[i], a[i] / b[i]);
}

TYPED_TEST(SimdOps, ScalarOperandBroadcasts) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  const auto in = Input<V>::random(3, 1.0, 2.0);
  const V a = V::loadu(in.a.data());
  const V r1 = a * V(S(2));
  const V r2 = V(S(1)) + a;
  for (int i = 0; i < V::width; ++i) {
    EXPECT_EQ(r1[i], S(in.a[i] * S(2)));
    EXPECT_EQ(r2[i], S(S(1) + in.a[i]));
  }
}

TYPED_TEST(SimdOps, MathFunctions) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto in = Input<V>::random(seed, 0.01, 100.0);
    const auto in2 = Input<V>::random(seed + 100, -50.0, 50.0);
    const V a = V::loadu(in.a.data()), b = V::loadu(in.b.data());
    const V m = V::loadu(in2.a.data());
    const V sq = simd::sqrt(a);
    const V ab = simd::abs(m);
    const V mn = simd::min(a, b);
    const V mx = simd::max(a, b);
    const V fm = simd::fma(a, b, m);
    for (int i = 0; i < V::width; ++i) {
      EXPECT_NEAR(sq[i], std::sqrt(in.a[i]), 1e-6 * std::sqrt(double(in.a[i])));
      EXPECT_EQ(ab[i], S(std::abs(in2.a[i])));
      EXPECT_EQ(mn[i], std::min(in.a[i], in.b[i]));
      EXPECT_EQ(mx[i], std::max(in.a[i], in.b[i]));
      // fma may be fused (one rounding) — compare with loose tolerance.
      const double expect = double(in.a[i]) * double(in.b[i]) + double(in2.a[i]);
      EXPECT_NEAR(double(fm[i]), expect, 1e-4 * (std::abs(expect) + 1));
    }
  }
}

TYPED_TEST(SimdOps, ComparisonsAndSelect) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto in = Input<V>::random(seed);
    in.b[0] = in.a[0];  // force at least one equal lane
    const V a = V::loadu(in.a.data()), b = V::loadu(in.b.data());
    const auto lt = a < b, le = a <= b, gt = a > b, ge = a >= b, eq = a == b, ne = a != b;
    const V sel = simd::select(lt, a, b);
    for (int i = 0; i < V::width; ++i) {
      EXPECT_EQ(lt[i], in.a[i] < in.b[i]) << "lane " << i;
      EXPECT_EQ(le[i], in.a[i] <= in.b[i]);
      EXPECT_EQ(gt[i], in.a[i] > in.b[i]);
      EXPECT_EQ(ge[i], in.a[i] >= in.b[i]);
      EXPECT_EQ(eq[i], in.a[i] == in.b[i]);
      EXPECT_EQ(ne[i], in.a[i] != in.b[i]);
      EXPECT_EQ(sel[i], in.a[i] < in.b[i] ? in.a[i] : in.b[i]);
    }
    (void)S(0);
  }
}

TYPED_TEST(SimdOps, MaskLogicAndAnyAll) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  const auto in = Input<V>::random(5);
  const V a = V::loadu(in.a.data());
  const auto pos = a > V(S(0));
  const auto neg = a < V(S(0));
  const auto both = pos & neg;
  const auto either = pos | neg;
  EXPECT_FALSE(simd::any(both));
  for (int i = 0; i < V::width; ++i) {
    EXPECT_EQ((pos & either)[i], pos[i]);
    EXPECT_EQ((!pos)[i], !pos[i]);
  }
  const auto all_true = a == a;
  EXPECT_TRUE(simd::all(all_true));
  EXPECT_TRUE(simd::any(all_true));
  const unsigned bits = simd::to_bits(pos);
  for (int i = 0; i < V::width; ++i) EXPECT_EQ((bits >> i) & 1u, pos[i] ? 1u : 0u);
}

TYPED_TEST(SimdOps, HorizontalReductions) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto in = Input<V>::random(seed, -5.0, 5.0);
    const V a = V::loadu(in.a.data());
    S sum = S(0), mn = in.a[0], mx = in.a[0];
    for (int i = 0; i < V::width; ++i) {
      sum += in.a[i];
      mn = std::min(mn, in.a[i]);
      mx = std::max(mx, in.a[i]);
    }
    EXPECT_NEAR(double(simd::hsum(a)), double(sum), 1e-5);
    EXPECT_EQ(simd::hmin(a), mn);
    EXPECT_EQ(simd::hmax(a), mx);
  }
}

TYPED_TEST(SimdOps, IotaIsLaneIndex) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  const V v = V::iota(S(10));
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(v[i], S(10 + i));
}

// ---- portable vs intrinsic agreement ---------------------------------------

#if defined(__AVX2__)
template <class Pair>
class PortableVsIntrinsic : public ::testing::Test {};

template <class VI, class VP>
struct Pair {
  using Intrinsic = VI;
  using Portable = VP;
};

using PairTypes = ::testing::Types<
    Pair<simd::F64x4, simd::VecP<double, 4>>, Pair<simd::F32x8, simd::VecP<float, 8>>
#if defined(__AVX512F__)
    ,
    Pair<simd::F64x8, simd::VecP<double, 8>>, Pair<simd::F32x16, simd::VecP<float, 16>>
#endif
    >;
TYPED_TEST_SUITE(PortableVsIntrinsic, PairTypes);

TYPED_TEST(PortableVsIntrinsic, IdenticalResultsOnKernelExpression) {
  using VI = typename TypeParam::Intrinsic;
  using VP = typename TypeParam::Portable;
  using S = typename simd::vec_traits<VI>::scalar;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto in = Input<VI>::random(seed, 0.1, 4.0);
    auto eval = [&](auto a, auto b, auto c) {
      using V = decltype(a);
      // A res_calc-flavored expression: mul/add/div/sqrt/select/min.
      V ri = V(S(1)) / a;
      V p = V(S(0.4)) * (c - V(S(0.5)) * ri * (b * b));
      V r = simd::select(p > V(S(0)), simd::sqrt(simd::abs(p)), simd::min(a, b));
      return r + simd::fma(a, b, c);
    };
    const VI vi = eval(VI::loadu(in.a.data()), VI::loadu(in.b.data()), VI::loadu(in.c.data()));
    const VP vp = eval(VP::loadu(in.a.data()), VP::loadu(in.b.data()), VP::loadu(in.c.data()));
    for (int i = 0; i < VI::width; ++i)
      EXPECT_NEAR(double(vi[i]), double(vp[i]), 2e-5 * (std::abs(double(vp[i])) + 1))
          << "seed " << seed << " lane " << i;
  }
}
#endif  // __AVX2__

// ---- width-generic kernel instantiation (the core trick) -------------------

template <class T>
T sample_kernel(const T* x, const T* y) {
  OPV_SIMD_MATH_USING;
  T d = sqrt(abs(x[0] * y[1] - x[1] * y[0]));
  return select(d > T(1.0), d, fma(x[0], y[0], d));
}

TEST(WidthGeneric, ScalarAndVectorAgree) {
  Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    double x[2][8], y[2][8];
    for (int c = 0; c < 2; ++c)
      for (int l = 0; l < 8; ++l) {
        x[c][l] = rng.uniform(-3, 3);
        y[c][l] = rng.uniform(-3, 3);
      }
    using V = simd::Vec<double, 8>;
    V vx[2] = {V::loadu(x[0]), V::loadu(x[1])};
    V vy[2] = {V::loadu(y[0]), V::loadu(y[1])};
    const V vr = sample_kernel(vx, vy);
    for (int l = 0; l < 8; ++l) {
      const double sx[2] = {x[0][l], x[1][l]};
      const double sy[2] = {y[0][l], y[1][l]};
      const double sr = sample_kernel(sx, sy);
      EXPECT_NEAR(vr[l], sr, 1e-12 * (std::abs(sr) + 1)) << "lane " << l;
    }
  }
}

TEST(WidthGeneric, ToRealConvertsIntLanes) {
  std::int32_t vals[8] = {-3, -1, 0, 1, 2, 5, 100, -100};
  using V = simd::Vec<double, 8>;
  using IV = simd::Vec<std::int32_t, 8>;
  const V r = simd::to_real<V>(IV::loadu(vals));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r[i], double(vals[i]));
  EXPECT_EQ(simd::to_real<double>(std::int32_t(-7)), -7.0);
  using V4 = simd::Vec<double, 4>;
  using IV4 = simd::Vec<std::int32_t, 4>;
  const V4 r4 = simd::to_real<V4>(IV4::loadu(vals));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r4[i], double(vals[i]));
}

TEST(WidthGeneric, MaskConvertDrivesValueSelect) {
  using V = simd::Vec<double, 8>;
  using IV = simd::Vec<std::int32_t, 8>;
  std::int32_t colors[8] = {0, 1, 2, 0, 1, 2, 0, 1};
  const IV cv = IV::loadu(colors);
  for (int col = 0; col < 3; ++col) {
    const auto imask = (cv == IV(col));
    const auto vmask = simd::MaskConvert<V>::from(imask);
    const V sel = simd::select(vmask, V(1.0), V(0.0));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(sel[l], colors[l] == col ? 1.0 : 0.0);
  }
}

TEST(MaxLanes, MatchCompiledISA) {
#if defined(__AVX512F__) && defined(__AVX2__)
  EXPECT_EQ(simd::max_lanes<double>, 8);
  EXPECT_EQ(simd::max_lanes<float>, 16);
#elif defined(__AVX2__)
  EXPECT_EQ(simd::max_lanes<double>, 4);
  EXPECT_EQ(simd::max_lanes<float>, 8);
#endif
}

}  // namespace
