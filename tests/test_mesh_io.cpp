// Mesh ingest tests (mesh/io.hpp):
//  * golden-file parses of the committed MSH fixtures (ASCII v2.2 and v4.1,
//    2D tri/quad and 3D tet, physical groups) against exact expected
//    contents;
//  * write -> read round-trips through the OPVM/OPVT binary containers and
//    both MSH writer versions;
//  * the malformed-input corpus (every file throws opv::Error, never
//    crashes) plus a deterministic byte-mutation mini-fuzz;
//  * OPVM/OPVT robustness (truncation, corrupt headers, trailing bytes);
//  * converter semantics (bound-id mapping, named boundary sets, error on
//    interior/unmatched boundary elements);
//  * the imported-vs-in-memory bitwise pipeline guarantee: the same mesh
//    arriving through a .msh file and through from_*/to_* in memory is
//    identical down to the last bit, including after a renumbered LoopChain
//    run and a partitioned DistCtx run.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/chain.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "support/mesh_invariants.hpp"

namespace {

using namespace opv;
using namespace opv::mesh;

const std::string kFix = std::string(OPV_FIXTURE_DIR) + "/msh/";
const std::string kBad = std::string(OPV_FIXTURE_DIR) + "/msh_bad/";

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ===== golden parses ========================================================

TEST(MshGolden, Tri2dV22ExactContents) {
  const GmshMesh g = read_msh(kFix + "tri2d_v22.msh");
  EXPECT_EQ(g.name, "tri2d_v22");
  EXPECT_EQ(g.nnodes, 4);
  EXPECT_EQ(g.node_xyz, (aligned_vector<double>{0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0}));
  ASSERT_EQ(g.physicals.size(), 3u);
  EXPECT_EQ(g.physicals[0], (GmshPhysical{1, 10, "wall"}));
  EXPECT_EQ(g.physicals[1], (GmshPhysical{1, 11, "farfield"}));
  EXPECT_EQ(g.physicals[2], (GmshPhysical{2, 20, "domain"}));
  EXPECT_EQ(g.lines.count, 4);
  EXPECT_EQ(g.lines.nodes, (aligned_vector<idx_t>{0, 1, 1, 2, 2, 3, 3, 0}));
  EXPECT_EQ(g.lines.phys, (aligned_vector<idx_t>{10, 11, 11, 11}));
  EXPECT_EQ(g.tris.count, 2);
  EXPECT_EQ(g.tris.nodes, (aligned_vector<idx_t>{0, 1, 2, 0, 2, 3}));
  EXPECT_EQ(g.tris.phys, (aligned_vector<idx_t>{20, 20}));
  EXPECT_EQ(g.quads.count, 0);
  EXPECT_EQ(g.tets.count, 0);
  EXPECT_EQ(g.physical_name(1, 10), "wall");
  EXPECT_EQ(g.physical_name(2, 20), "domain");
  EXPECT_EQ(g.physical_name(1, 99), "");
}

TEST(MshGolden, Tri2dV41ParsesToSameMesh) {
  const GmshMesh v41 = read_msh(kFix + "tri2d_v41.msh");
  const GmshMesh v22 = read_msh(kFix + "tri2d_v22.msh");
  EXPECT_EQ(v41, v22);  // content equality; multi-block v4.1 nodes included
}

TEST(MshGolden, Quad2dV22ExactContents) {
  const GmshMesh g = read_msh(kFix + "quad2d_v22.msh");
  EXPECT_EQ(g.nnodes, 6);
  EXPECT_EQ(g.quads.count, 2);
  EXPECT_EQ(g.quads.nodes, (aligned_vector<idx_t>{0, 1, 4, 3, 1, 2, 5, 4}));
  EXPECT_EQ(g.lines.count, 6);
  EXPECT_EQ(g.lines.nodes, (aligned_vector<idx_t>{0, 1, 1, 2, 2, 5, 5, 4, 4, 3, 3, 0}));
  // Untagged line (ntags=0) parses with phys 0; unnamed physical 12 is kept.
  EXPECT_EQ(g.lines.phys, (aligned_vector<idx_t>{10, 10, 12, 11, 11, 0}));
  EXPECT_EQ(g.physical_name(1, 12), "");
}

TEST(MshGolden, Tet3dFixturesMatchTheKuhnBox) {
  const TetMesh box = make_tet_box(1, 1, 1);
  for (const char* f : {"tet3d_v22.msh", "tet3d_v41.msh"}) {
    std::vector<BoundarySet> bsets;
    const GmshMesh g = read_msh(kFix + f);
    EXPECT_EQ(g.nnodes, 8) << f;
    EXPECT_EQ(g.tets.count, 6) << f;
    EXPECT_EQ(g.tris.count, 12) << f;
    const TetMesh m = to_tet(g, {}, &bsets);
    EXPECT_EQ(m.cell_nodes, box.cell_nodes) << f;
    EXPECT_EQ(m.node_xyz, box.node_xyz) << f;
    EXPECT_EQ(m.face_nodes, box.face_nodes) << f;
    EXPECT_EQ(m.face_cells, box.face_cells) << f;
    EXPECT_EQ(m.bface_nodes, box.bface_nodes) << f;
    EXPECT_EQ(m.bface_bound, box.bface_bound) << f;
    // Physical groups: two tris on z=0 are the wall, ten are far field.
    ASSERT_EQ(bsets.size(), 2u) << f;
    EXPECT_EQ(bsets[0].name, "farfield");
    EXPECT_EQ(bsets[0].elems.size(), 10u);
    EXPECT_EQ(bsets[1].name, "wall");
    EXPECT_EQ(bsets[1].elems.size(), 2u);
  }
}

// ===== conversion semantics =================================================

TEST(MshConvert, TriBoundsAndNamedSets) {
  std::vector<BoundarySet> bsets;
  const UnstructuredMesh m = to_unstructured(read_msh(kFix + "tri2d_v22.msh"), {}, &bsets);
  EXPECT_EQ(m.nodes_per_cell, 3);
  EXPECT_EQ(m.ncells, 2);
  EXPECT_EQ(m.nedges, 1);
  EXPECT_EQ(m.nbedges, 4);
  EXPECT_EQ(m.edge_cells, (aligned_vector<idx_t>{0, 1}));
  EXPECT_EQ(m.bedge_cell, (aligned_vector<idx_t>{0, 0, 1, 1}));
  // Physical "wall" (tag 10) covers the bottom edge; the rest is far field.
  EXPECT_EQ(m.bedge_bound, (aligned_vector<idx_t>{kBoundWall, kBoundFarfield, kBoundFarfield,
                                                  kBoundFarfield}));
  ASSERT_EQ(bsets.size(), 2u);
  EXPECT_EQ(bsets[0].name, "wall");
  EXPECT_EQ(bsets[0].elems, (aligned_vector<idx_t>{0}));
  EXPECT_EQ(bsets[1].name, "farfield");
  EXPECT_EQ(bsets[1].elems, (aligned_vector<idx_t>{1, 2, 3}));
}

TEST(MshConvert, QuadDefaultAndUnnamedBounds) {
  std::vector<BoundarySet> bsets;
  const UnstructuredMesh m = to_unstructured(read_msh(kFix + "quad2d_v22.msh"), {}, &bsets);
  EXPECT_EQ(m.nodes_per_cell, 4);
  EXPECT_EQ(m.ncells, 2);
  EXPECT_EQ(m.nedges, 1);
  EXPECT_EQ(m.nbedges, 6);
  // Unnamed physical 12 and the untagged line both fall back to the default
  // bound; named groups map through MshOptions::bound_ids.
  EXPECT_EQ(m.bedge_bound,
            (aligned_vector<idx_t>{kBoundWall, kBoundFarfield, kBoundFarfield, kBoundWall,
                                   kBoundFarfield, kBoundFarfield}));
  ASSERT_EQ(bsets.size(), 3u);
  EXPECT_EQ(bsets[0].name, "wall");
  EXPECT_EQ(bsets[1].name, "farfield");
  EXPECT_EQ(bsets[2].name, "physical_12");
  EXPECT_EQ(bsets[2].elems.size(), 1u);
}

TEST(MshConvert, RejectsBadTopologies) {
  GmshMesh g;
  g.nnodes = 4;
  g.node_xyz = {0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0};
  g.tris = {2, {0, 1, 2, 0, 2, 3}, {0, 0}};

  GmshMesh interior = g;
  interior.lines = {1, {0, 2}, {5}};  // the shared diagonal
  EXPECT_THROW(to_unstructured(interior), Error);

  GmshMesh unmatched = g;
  unmatched.lines = {1, {1, 3}, {5}};  // not an edge of any cell
  EXPECT_THROW(to_unstructured(unmatched), Error);

  GmshMesh mixed = g;
  mixed.quads = {1, {0, 1, 2, 3}, {0}};
  EXPECT_THROW(to_unstructured(mixed), Error);

  GmshMesh empty;
  EXPECT_THROW(to_unstructured(empty), Error);

  // 2D content through the 3D converter and vice versa.
  EXPECT_THROW(to_tet(g), Error);
  const GmshMesh tet = read_msh(kFix + "tet3d_v22.msh");
  EXPECT_THROW(to_unstructured(tet), Error);
}

// ===== round-trips ==========================================================

TEST(MshRoundTrip, V22IsExactForAllFixtures) {
  for (const char* f : {"tri2d_v22.msh", "tri2d_v41.msh", "quad2d_v22.msh", "tet3d_v22.msh",
                        "tet3d_v41.msh"}) {
    const GmshMesh g = read_msh(kFix + f);
    const std::string out = tmp_path("opv_rt_v22.msh");
    write_msh(g, out, 2);
    EXPECT_EQ(read_msh(out), g) << f;
  }
}

TEST(MshRoundTrip, V41PreservesConvertedMeshes) {
  // The v4.1 writer regroups elements into per-(type, physical) blocks, so
  // GmshMesh equality holds only when runs are already grouped (the 2D
  // fixtures); the tet fixture round-trips at converted-container level.
  for (const char* f : {"tri2d_v22.msh", "quad2d_v22.msh"}) {
    const GmshMesh g = read_msh(kFix + f);
    const std::string out = tmp_path("opv_rt_v41.msh");
    write_msh(g, out, 4);
    EXPECT_EQ(read_msh(out), g) << f;
  }
  const GmshMesh g = read_msh(kFix + "tet3d_v22.msh");
  const std::string out = tmp_path("opv_rt_v41t.msh");
  write_msh(g, out, 4);
  const TetMesh a = to_tet(g), b = to_tet(read_msh(out));
  EXPECT_EQ(a.cell_nodes, b.cell_nodes);
  EXPECT_EQ(a.node_xyz, b.node_xyz);
  EXPECT_EQ(a.face_cells, b.face_cells);
  EXPECT_EQ(a.bface_bound, b.bface_bound);
}

TEST(MshRoundTrip, FromUnstructuredThroughBothWriters) {
  UnstructuredMesh m0 = make_tri_box(5, 4);
  perturb_nodes(m0, 0.01, 7);  // irregular coordinates must survive %.17g
  const GmshMesh g = from_unstructured(m0);
  for (int version : {2, 4}) {
    const std::string out = tmp_path("opv_rt_tri.msh");
    write_msh(g, out, version);
    const UnstructuredMesh m1 = to_unstructured(read_msh(out));
    const UnstructuredMesh m2 = to_unstructured(g);
    EXPECT_EQ(m1.node_xy, m2.node_xy) << "version " << version;
    EXPECT_EQ(m1.cell_nodes, m2.cell_nodes);
    EXPECT_EQ(m1.edge_nodes, m2.edge_nodes);
    EXPECT_EQ(m1.edge_cells, m2.edge_cells);
    EXPECT_EQ(m1.bedge_nodes, m2.bedge_nodes);
    EXPECT_EQ(m1.bedge_cell, m2.bedge_cell);
    EXPECT_EQ(m1.bedge_bound, m2.bedge_bound);
  }
  // Periodic meshes have no MSH representation.
  EXPECT_THROW(from_unstructured(make_tri_periodic(4, 4)), Error);
}

TEST(OpvmRoundTrip, ExactForGeneratedMeshes) {
  UnstructuredMesh m = make_airfoil_omesh(12, 5);
  perturb_nodes(m, 0.001, 3);
  const std::string out = tmp_path("opv_rt.opvm");
  write_mesh(m, out);
  const UnstructuredMesh r = read_mesh(out);
  EXPECT_EQ(r.name, m.name);
  EXPECT_EQ(r.node_xy, m.node_xy);
  EXPECT_EQ(r.cell_nodes, m.cell_nodes);
  EXPECT_EQ(r.edge_nodes, m.edge_nodes);
  EXPECT_EQ(r.edge_cells, m.edge_cells);
  EXPECT_EQ(r.bedge_nodes, m.bedge_nodes);
  EXPECT_EQ(r.bedge_cell, m.bedge_cell);
  EXPECT_EQ(r.bedge_bound, m.bedge_bound);
  EXPECT_EQ(r.periodic, m.periodic);
}

TEST(OpvtRoundTrip, ExactForTetBox) {
  const TetMesh m = make_tet_box(2, 3, 2);
  const std::string out = tmp_path("opv_rt.opvt");
  write_tet_mesh(m, out);
  const TetMesh r = read_tet_mesh(out);
  EXPECT_EQ(r.name, m.name);
  EXPECT_EQ(r.node_xyz, m.node_xyz);
  EXPECT_EQ(r.cell_nodes, m.cell_nodes);
  EXPECT_EQ(r.face_nodes, m.face_nodes);
  EXPECT_EQ(r.face_cells, m.face_cells);
  EXPECT_EQ(r.bface_nodes, m.bface_nodes);
  EXPECT_EQ(r.bface_cell, m.bface_cell);
  EXPECT_EQ(r.bface_bound, m.bface_bound);
}

// ===== binary-container robustness ==========================================

TEST(OpvmRobust, TruncationCorruptionAndTrailingBytes) {
  const UnstructuredMesh m = make_quad_box(4, 3);
  const std::string good = tmp_path("opv_rob.opvm");
  write_mesh(m, good);
  const std::string bytes = slurp(good);

  const auto write_variant = [&](const std::string& data) {
    const std::string p = tmp_path("opv_rob_bad.opvm");
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    os.close();
    return p;
  };

  // Truncation at several depths: inside the header, inside a section
  // length prefix, inside payload.
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{40}, bytes.size() / 2,
                          bytes.size() - 1}) {
    EXPECT_THROW(read_mesh(write_variant(bytes.substr(0, cut))), Error) << "cut at " << cut;
  }
  // Bad magic.
  {
    std::string b = bytes;
    b[0] ^= 0x5a;
    EXPECT_THROW(read_mesh(write_variant(b)), Error);
  }
  // Negative node count (nnodes is the int64 after the 8-byte magic).
  {
    std::string b = bytes;
    b[15] = char(0xff);
    EXPECT_THROW(read_mesh(write_variant(b)), Error);
  }
  // Implausibly huge edge count must be rejected before any allocation.
  {
    std::string b = bytes;
    for (int i = 0; i < 8; ++i) b[24 + i] = char(0x7f);
    EXPECT_THROW(read_mesh(write_variant(b)), Error);
  }
  // Trailing garbage after the last section.
  EXPECT_THROW(read_mesh(write_variant(bytes + "x")), Error);
  // Nonexistent path.
  EXPECT_THROW(read_mesh(tmp_path("opv_does_not_exist.opvm")), Error);
  // The pristine file still reads.
  EXPECT_NO_THROW(read_mesh(good));
}

TEST(OpvtRobust, TruncationAndBadMagic) {
  const TetMesh m = make_tet_box(1, 1, 2);
  const std::string good = tmp_path("opv_rob.opvt");
  write_tet_mesh(m, good);
  const std::string bytes = slurp(good);
  const auto write_variant = [&](const std::string& data) {
    const std::string p = tmp_path("opv_rob_bad.opvt");
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    os.close();
    return p;
  };
  EXPECT_THROW(read_tet_mesh(write_variant(bytes.substr(0, bytes.size() / 3))), Error);
  {
    std::string b = bytes;
    b[3] ^= 0x11;
    EXPECT_THROW(read_tet_mesh(write_variant(b)), Error);
  }
  EXPECT_THROW(read_tet_mesh(write_variant(bytes + "zz")), Error);
  // OPVM and OPVT magics are distinct: cross-reading fails cleanly.
  EXPECT_THROW(read_mesh(good), Error);
  EXPECT_NO_THROW(read_tet_mesh(good));
}

// ===== malformed corpus + mini-fuzz =========================================

TEST(MshMalformed, EveryCorpusFileThrowsOpvError) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kBad)) {
    ++n;
    EXPECT_THROW(read_msh(entry.path().string()), Error) << entry.path();
  }
  EXPECT_GE(n, 7u) << "malformed corpus went missing";
}

TEST(MshMalformed, LineNumbersInErrors) {
  try {
    read_msh(kBad + "duplicate_node_tag.msh");
    FAIL() << "expected opv::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate_node_tag.msh:8"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate node tag 2"), std::string::npos) << e.what();
  }
  try {
    read_msh(kBad + "dangling_element.msh");
    FAIL() << "expected opv::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("undeclared node tag 99"), std::string::npos)
        << e.what();
  }
}

TEST(MshFuzz, SingleByteMutationsThrowOrParseValid) {
  const std::string seed_bytes = slurp(kFix + "tri2d_v22.msh");
  Rng rng(20260808);
  int parsed = 0, threw = 0;
  for (int i = 0; i < 400; ++i) {
    std::string b = seed_bytes;
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(b.size()));
    b[pos] = static_cast<char>(rng.next_below(256));
    std::istringstream is(b);
    try {
      const GmshMesh g = read_msh(is, "fuzz");  // validates internally
      ++parsed;
      try {
        (void)to_unstructured(g);  // conversion may legitimately reject
      } catch (const Error&) {
      }
    } catch (const Error&) {
      ++threw;  // the only acceptable failure mode
    }
  }
  EXPECT_EQ(parsed + threw, 400);
  EXPECT_GT(parsed, 0) << "mutations that hit whitespace/comments must still parse";
  EXPECT_GT(threw, 0) << "the fuzzer never hit a structural byte?";
}

// ===== pipeline properties & the bitwise import guarantee ===================

TEST(MshPipeline, ImportedMeshesSatisfyAllInvariants) {
  opv::test::check_mesh_invariants(to_unstructured(read_msh(kFix + "tri2d_v22.msh")));
  opv::test::check_mesh_invariants(to_unstructured(read_msh(kFix + "quad2d_v22.msh")));
  opv::test::check_tet_invariants(to_tet(read_msh(kFix + "tet3d_v41.msh")));
}

struct EdgeDiff {
  template <class T>
  void operator()(const T* u0, const T* u1, T* r0, T* r1) const {
    const T d = u1[0] - u0[0];
    r0[0] += d;
    r1[0] -= d;
  }
};
struct CellUpd {
  template <class T>
  void operator()(T* u, T* r, T* s) const {
    u[0] += T(0.1) * r[0];
    s[0] += r[0] * r[0];
    r[0] = T(0.0);
  }
};

/// A small edge-diffusion chain over the mesh; returns the state fetched in
/// declaration order plus the final reduction value.
template <class Ctx>
std::pair<aligned_vector<double>, double> run_diffusion(Ctx& ctx, const UnstructuredMesh& m,
                                                        bool chain) {
  const auto cells = ctx.decl_set("cells", m.ncells);
  const auto edges = ctx.decl_set("edges", m.nedges);
  aligned_vector<double> cent(static_cast<std::size_t>(m.ncells) * 2);
  aligned_vector<double> u0(static_cast<std::size_t>(m.ncells));
  for (idx_t c = 0; c < m.ncells; ++c) {
    const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * m.nodes_per_cell];
    cent[2 * static_cast<std::size_t>(c)] = m.node_xy[2 * static_cast<std::size_t>(n)];
    cent[2 * static_cast<std::size_t>(c) + 1] = m.node_xy[2 * static_cast<std::size_t>(n) + 1];
    u0[static_cast<std::size_t>(c)] = 0.125 * (c % 17) + 0.001 * c;
  }
  ctx.set_partition_coords(cells, cent.data());
  const auto e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
  const auto u = ctx.template decl_dat<double>("u", cells, 1, u0);
  const auto r = ctx.template decl_dat<double>("r", cells, 1);
  ctx.finalize();

  double s = 0.0;
  auto ed = ctx.make_loop(EdgeDiff{}, "mio_edge_diff", edges,
                          ctx.template arg<opv::READ, 1>(u, 0, e2c),
                          ctx.template arg<opv::READ, 1>(u, 1, e2c),
                          ctx.template arg<opv::INC, 1>(r, 0, e2c),
                          ctx.template arg<opv::INC, 1>(r, 1, e2c));
  auto up = ctx.make_loop(CellUpd{}, "mio_cell_upd", cells, ctx.template arg<opv::RW, 1>(u),
                          ctx.template arg<opv::RW, 1>(r),
                          ctx.template arg_gbl<opv::INC>(&s, 1));
  if constexpr (requires { ed.inner(); ctx.config(); ctx.note_loops_ran(); }) {
    if (chain) {
      ctx.note_loops_ran();
      LoopChain step("mio_step", ed.inner(), up.inner());
      for (int it = 0; it < 6; ++it) {
        s = 0.0;
        step.run(ctx.config());
      }
      aligned_vector<double> out;
      ctx.fetch(u, out);
      return {out, s};
    }
  }
  for (int it = 0; it < 6; ++it) {
    ed.run();
    s = 0.0;
    up.run();
  }
  aligned_vector<double> out;
  ctx.fetch(u, out);
  return {out, s};
}

TEST(MshPipeline, ImportIsBitwiseTransparentThroughRenumberPartitionChain) {
  UnstructuredMesh m0 = make_tri_box(9, 7);
  perturb_nodes(m0, 0.004, 11);
  const GmshMesh g = from_unstructured(m0);
  const std::string out = tmp_path("opv_bitwise.msh");
  write_msh(g, out, 2);

  const UnstructuredMesh mem = to_unstructured(g);            // in-memory path
  const UnstructuredMesh imp = to_unstructured(read_msh(out));  // file path

  // The arrays themselves are identical down to the last bit...
  ASSERT_EQ(imp.node_xy, mem.node_xy);
  ASSERT_EQ(imp.cell_nodes, mem.cell_nodes);
  ASSERT_EQ(imp.edge_nodes, mem.edge_nodes);
  ASSERT_EQ(imp.edge_cells, mem.edge_cells);
  ASSERT_EQ(imp.bedge_bound, mem.bedge_bound);

  // ...and so are full runs: renumbered LoopChain on LocalCtx, partitioned
  // DistCtx, each imported-vs-in-memory.
  ExecConfig cfg;
  cfg.backend = Backend::Seq;
  for (const bool chain : {false, true}) {
    LocalCtx ca(cfg), cb(cfg);
    ca.set_renumber(true);
    cb.set_renumber(true);
    const auto [ua, sa] = run_diffusion(ca, mem, chain);
    const auto [ub, sb] = run_diffusion(cb, imp, chain);
    ASSERT_EQ(ua.size(), ub.size());
    EXPECT_EQ(std::memcmp(ua.data(), ub.data(), ua.size() * sizeof(double)), 0)
        << "chain=" << chain;
    EXPECT_EQ(sa, sb);
  }
  {
    dist::DistCtx ca(4, cfg), cb(4, cfg);
    const auto [ua, sa] = run_diffusion(ca, mem, false);
    const auto [ub, sb] = run_diffusion(cb, imp, false);
    ASSERT_EQ(ua.size(), ub.size());
    EXPECT_EQ(std::memcmp(ua.data(), ub.data(), ua.size() * sizeof(double)), 0);
    EXPECT_EQ(sa, sb);
  }
}

TEST(MshPipeline, GeneratedMeshesSatisfyAllInvariants) {
  // The invariants helper is generator-agnostic; pin it on the synthetic
  // meshes too so ingest and generators share one property bar.
  auto m = make_quad_box(6, 5);
  shuffle_edges(m, 5);
  opv::test::check_mesh_invariants(m);
  opv::test::check_tet_invariants(make_tet_box(2, 2, 2));
}

}  // namespace
