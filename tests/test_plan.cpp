// Execution-plan tests: the coloring validity properties the whole
// race-freedom argument rests on, checked on regular and randomized meshes
// for every strategy and several block sizes.
//
// Properties:
//  P1 block coloring: two blocks of the same color share no increment target
//  P2 element coloring (TwoLevel/BlockPermute): same-color elements within a
//     block share no target
//  P3 full permute: same-color elements globally share no target
//  P4 permutations are bijections; CSR structures are consistent
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/op2.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

struct PlanFixture {
  mesh::UnstructuredMesh m;
  Set cells, edges;
  Map e2c;
  std::vector<IncRef> conflicts;

  explicit PlanFixture(mesh::UnstructuredMesh mesh)
      : m(std::move(mesh)),
        cells("cells", m.ncells),
        edges("edges", m.nedges),
        e2c("e2c", edges, cells, 2, m.edge_cells),
        conflicts{{&e2c, 0}, {&e2c, 1}} {}

  std::pair<idx_t, idx_t> targets(idx_t e) const { return {e2c(e, 0), e2c(e, 1)}; }
};

class PlanP : public ::testing::TestWithParam<std::tuple<int, int>> {
  // (mesh kind, block size)
 public:
  static PlanFixture make_fixture(int kind) {
    switch (kind) {
      case 0: return PlanFixture(mesh::make_quad_box(23, 17));
      case 1: return PlanFixture(mesh::make_tri_periodic(12, 9));
      case 2: {
        auto m = mesh::make_airfoil_omesh(24, 11);
        return PlanFixture(std::move(m));
      }
      default: {
        auto m = mesh::make_quad_box(31, 13);
        mesh::shuffle_edges(m, 77);  // adversarial edge ordering
        return PlanFixture(std::move(m));
      }
    }
  }
};

TEST_P(PlanP, BlockColoringIsValid) {
  auto [kind, bs] = GetParam();
  auto f = PlanP::make_fixture(kind);
  const auto plan = build_plan(f.m.nedges, f.conflicts, bs, ColoringStrategy::TwoLevel);

  ASSERT_EQ(plan->nblocks, (f.m.nedges + bs - 1) / bs);
  // P1: per color, no two blocks touch the same cell.
  for (int col = 0; col < plan->nblock_colors; ++col) {
    std::set<idx_t> touched;
    for (idx_t b : plan->color_blocks[col]) {
      std::set<idx_t> block_touched;
      for (idx_t e = plan->block_begin(b); e < plan->block_end(b); ++e) {
        auto [c0, c1] = f.targets(e);
        block_touched.insert(c0);
        block_touched.insert(c1);
      }
      for (idx_t c : block_touched)
        EXPECT_TRUE(touched.insert(c).second)
            << "cell " << c << " touched by two blocks of color " << col;
    }
  }
}

TEST_P(PlanP, ElementColoringWithinBlocksIsValid) {
  auto [kind, bs] = GetParam();
  auto f = PlanP::make_fixture(kind);
  const auto plan = build_plan(f.m.nedges, f.conflicts, bs, ColoringStrategy::TwoLevel);

  // P2: within a block, same-color elements have disjoint targets.
  for (idx_t b = 0; b < plan->nblocks; ++b) {
    std::map<int, std::set<idx_t>> per_color;
    for (idx_t e = plan->block_begin(b); e < plan->block_end(b); ++e) {
      const int col = plan->elem_color[e];
      ASSERT_GE(col, 0);
      ASSERT_LT(col, plan->block_nelem_colors[b]);
      auto [c0, c1] = f.targets(e);
      EXPECT_TRUE(per_color[col].insert(c0).second)
          << "block " << b << " color " << col << " shares cell " << c0;
      EXPECT_TRUE(per_color[col].insert(c1).second);
    }
  }
}

TEST_P(PlanP, FullPermuteColoringIsValid) {
  auto [kind, bs] = GetParam();
  auto f = PlanP::make_fixture(kind);
  const auto plan = build_plan(f.m.nedges, f.conflicts, bs, ColoringStrategy::FullPermute);

  // P4: permute is a bijection.
  std::set<idx_t> seen(plan->permute.begin(), plan->permute.end());
  ASSERT_EQ(seen.size(), std::size_t(f.m.nedges));
  ASSERT_EQ(plan->color_offsets.front(), 0);
  ASSERT_EQ(plan->color_offsets.back(), f.m.nedges);

  // P3: same-color elements globally disjoint.
  for (int col = 0; col < plan->nglobal_colors; ++col) {
    std::set<idx_t> touched;
    for (idx_t k = plan->color_offsets[col]; k < plan->color_offsets[col + 1]; ++k) {
      auto [c0, c1] = f.targets(plan->permute[k]);
      EXPECT_TRUE(touched.insert(c0).second) << "global color " << col;
      EXPECT_TRUE(touched.insert(c1).second);
    }
  }
}

TEST_P(PlanP, BlockPermuteStructureIsValid) {
  auto [kind, bs] = GetParam();
  auto f = PlanP::make_fixture(kind);
  const auto plan = build_plan(f.m.nedges, f.conflicts, bs, ColoringStrategy::BlockPermute);

  std::set<idx_t> seen;
  for (idx_t b = 0; b < plan->nblocks; ++b) {
    const idx_t* off = plan->bcol_off.data() + plan->bcol_base[b];
    const int nc = plan->block_nelem_colors[b];
    ASSERT_EQ(off[0], plan->block_begin(b));
    ASSERT_EQ(off[nc], plan->block_end(b));
    for (int c = 0; c < nc; ++c) {
      std::set<idx_t> touched;
      for (idx_t k = off[c]; k < off[c + 1]; ++k) {
        const idx_t e = plan->block_permute[k];
        // Elements belong to their block's range.
        ASSERT_GE(e, plan->block_begin(b));
        ASSERT_LT(e, plan->block_end(b));
        EXPECT_TRUE(seen.insert(e).second) << "element " << e << " appears twice";
        auto [c0, c1] = f.targets(e);
        EXPECT_TRUE(touched.insert(c0).second)
            << "block " << b << " color run " << c << " shares cell " << c0;
        EXPECT_TRUE(touched.insert(c1).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), std::size_t(f.m.nedges));
}

INSTANTIATE_TEST_SUITE_P(MeshesAndBlocks, PlanP,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(16, 64, 256, 1024)));

TEST(Plan, NoConflictsMeansOneColor) {
  const auto plan = build_plan(1000, {}, 64, ColoringStrategy::TwoLevel);
  EXPECT_EQ(plan->nblock_colors, 1);
  EXPECT_EQ(plan->max_elem_colors, 1);
  EXPECT_EQ(plan->color_blocks[0].size(), std::size_t(plan->nblocks));
}

TEST(Plan, EmptySet) {
  const auto plan = build_plan(0, {}, 64, ColoringStrategy::FullPermute);
  EXPECT_EQ(plan->nblocks, 0);
  EXPECT_EQ(plan->nglobal_colors, 0);
}

TEST(Plan, RaggedLastBlock) {
  const auto plan = build_plan(100, {}, 64, ColoringStrategy::TwoLevel);
  EXPECT_EQ(plan->nblocks, 2);
  EXPECT_EQ(plan->block_begin(1), 64);
  EXPECT_EQ(plan->block_end(1), 100);
}

TEST(Plan, RejectsBadBlockSize) {
  EXPECT_THROW(build_plan(100, {}, 0, ColoringStrategy::TwoLevel), Error);
  EXPECT_THROW(build_plan(100, {}, 20, ColoringStrategy::TwoLevel), Error);  // not mult of 16
}

TEST(Plan, ColorCountsAreReasonable) {
  // A quad mesh edge loop needs few colors (bounded by local degree).
  auto f = PlanP::make_fixture(0);
  const auto p1 = build_plan(f.m.nedges, f.conflicts, 256, ColoringStrategy::TwoLevel);
  EXPECT_LE(p1->nblock_colors, 16);
  EXPECT_LE(p1->max_elem_colors, 8);
  const auto p2 = build_plan(f.m.nedges, f.conflicts, 256, ColoringStrategy::FullPermute);
  EXPECT_LE(p2->nglobal_colors, 8);
  EXPECT_GE(p2->nglobal_colors, 2);
}

TEST(PlanCache, ReturnsSamePlanForSameKey) {
  auto m = mesh::make_quad_box(10, 10);
  Set cells("cells", m.ncells), edges("edges", m.nedges);
  Map e2c("e2c", edges, cells, 2, m.edge_cells);
  PlanCache::instance().clear();
  const std::vector<IncRef> conflicts = {{&e2c, 0}, {&e2c, 1}};
  auto a = PlanCache::instance().get(edges, conflicts, 64, ColoringStrategy::TwoLevel);
  auto b = PlanCache::instance().get(edges, conflicts, 64, ColoringStrategy::TwoLevel);
  EXPECT_EQ(a.get(), b.get()) << "same key must hit the cache";
  auto c = PlanCache::instance().get(edges, conflicts, 128, ColoringStrategy::TwoLevel);
  EXPECT_NE(a.get(), c.get()) << "different block size is a different plan";
  auto d = PlanCache::instance().get(edges, conflicts, 64, ColoringStrategy::FullPermute);
  EXPECT_NE(a.get(), d.get()) << "different strategy is a different plan";
  // Duplicate/unordered conflicts normalize to the same key.
  const std::vector<IncRef> shuffled = {{&e2c, 1}, {&e2c, 0}, {&e2c, 1}};
  auto e = PlanCache::instance().get(edges, shuffled, 64, ColoringStrategy::TwoLevel);
  EXPECT_EQ(a.get(), e.get());
  EXPECT_GE(PlanCache::instance().size(), 3u);
}

TEST(PlanCache, ConcurrentGetSharesOneBuild) {
  // Single-flight: a burst of threads asking for the same (and a handful of
  // distinct) keys must all resolve to one shared plan per key, without
  // duplicate-insert races. The permuted arrays are immutable, so pointer
  // identity across threads is the whole contract.
  auto m = mesh::make_quad_box(40, 40);
  Set cells("cells", m.ncells), edges("edges", m.nedges);
  Map e2c("e2c", edges, cells, 2, m.edge_cells);
  PlanCache::instance().clear();
  const std::vector<IncRef> conflicts = {{&e2c, 0}, {&e2c, 1}};
  constexpr int kThreads = 8;
  const int block_sizes[kThreads] = {64, 64, 64, 64, 128, 128, 256, 256};
  std::vector<std::shared_ptr<const Plan>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[t] =
          PlanCache::instance().get(edges, conflicts, block_sizes[t], ColoringStrategy::TwoLevel);
    });
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr);
    if (block_sizes[t] == block_sizes[t - 1])
      EXPECT_EQ(got[t].get(), got[t - 1].get()) << "same key must share one build";
  }
  EXPECT_EQ(PlanCache::instance().size(), 3u);
}

TEST(PlanCache, MultiMapConflicts) {
  // Two different maps incrementing two different sets at once (an edge loop
  // writing both cells and nodes): colors must respect both.
  auto m = mesh::make_quad_box(13, 11);
  Set cells("cells", m.ncells), nodes("nodes", m.nnodes), edges("edges", m.nedges);
  Map e2c("e2c", edges, cells, 2, m.edge_cells);
  Map e2n("e2n", edges, nodes, 2, m.edge_nodes);
  const std::vector<IncRef> conflicts = {{&e2c, 0}, {&e2c, 1}, {&e2n, 0}, {&e2n, 1}};
  const auto plan = build_plan(m.nedges, conflicts, 64, ColoringStrategy::FullPermute);
  for (int col = 0; col < plan->nglobal_colors; ++col) {
    std::set<idx_t> cells_touched, nodes_touched;
    for (idx_t k = plan->color_offsets[col]; k < plan->color_offsets[col + 1]; ++k) {
      const idx_t e = plan->permute[k];
      EXPECT_TRUE(cells_touched.insert(e2c(e, 0)).second);
      EXPECT_TRUE(cells_touched.insert(e2c(e, 1)).second);
      EXPECT_TRUE(nodes_touched.insert(e2n(e, 0)).second);
      EXPECT_TRUE(nodes_touched.insert(e2n(e, 1)).second);
    }
  }
}

}  // namespace
