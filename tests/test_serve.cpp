// serve/ensemble.hpp: the ensemble scheduler's correctness bar — bitwise
// Seq equivalence to solo execution regardless of interleaving, per-
// instance stats isolation, fault isolation, and cross-instance plan
// sharing through the content-keyed PlanCache.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/volna/hazard.hpp"
#include "common/worker_pool.hpp"
#include "core/plan.hpp"
#include "mesh/generators.hpp"
#include "serve/ensemble.hpp"

using namespace opv;
using namespace opv::serve;

namespace {

ExecConfig seq_cfg() {
  ExecConfig cfg;
  cfg.backend = Backend::Seq;
  return cfg;
}

/// Bitwise comparison of two float state vectors.
bool bitwise_equal(const aligned_vector<float>& a, const aligned_vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// A trivial instance for scheduler-behavior tests: counts its steps and
/// optionally throws at a given step.
class CountingInstance final : public Instance {
 public:
  explicit CountingInstance(int throw_at = -1) : throw_at_(throw_at) {}
  void step() override {
    const int n = ++steps_;
    if (throw_at_ >= 0 && n >= throw_at_) throw std::runtime_error("instance blew up");
  }
  [[nodiscard]] int steps() const { return steps_; }

 private:
  int steps_ = 0;
  int throw_at_ = -1;
};

}  // namespace

// ---- WorkQueue --------------------------------------------------------------

TEST(WorkQueue, DrainsEachIdOnceWithoutRequeue) {
  WorkQueue q;
  for (int i = 0; i < 8; ++i) q.push(i);
  std::vector<std::atomic<int>> seen(8);
  WorkerPool pool(3);
  pool.run([&](int) {
    while (const auto id = q.acquire()) {
      ++seen[static_cast<std::size_t>(*id)];
      q.release(*id, false);
    }
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(WorkQueue, RequeueKeepsItemLiveUntilOwnerStops) {
  WorkQueue q;
  q.push(0);
  int grabs = 0;
  WorkerPool pool(2);
  std::mutex mu;
  pool.run([&](int) {
    while (const auto id = q.acquire()) {
      bool more = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        more = ++grabs < 5;  // requeue 4 times, then retire
      }
      q.release(*id, more);
    }
  });
  EXPECT_EQ(grabs, 5);
}

TEST(WorkQueue, AcquireReturnsNulloptWhenEmptyAndIdle) {
  WorkQueue q;
  EXPECT_FALSE(q.acquire().has_value());
  q.push(1);
  q.close();
  EXPECT_FALSE(q.acquire().has_value());
}

// ---- StatsScope -------------------------------------------------------------

TEST(StatsScope, PrefixesSlotNamesPerThread) {
  auto& reg = StatsRegistry::instance();
  LoopRecord* plain = &reg.slot("scope_probe");
  LoopRecord* scoped = nullptr;
  {
    StatsScope scope("tenant");
    EXPECT_EQ(StatsScope::current(), "tenant");
    scoped = &reg.slot("scope_probe");
    EXPECT_NE(plain, scoped);
  }
  EXPECT_EQ(StatsScope::current(), "");
  EXPECT_EQ(plain, &reg.slot("scope_probe"));
  EXPECT_EQ(scoped, &reg.slot("tenant/scope_probe"));  // the name it resolved to

  // Scopes are thread-local: another thread sees no scope.
  StatsScope scope("outer");
  std::string other;
  std::thread t([&] { other = StatsScope::current(); });
  t.join();
  EXPECT_EQ(other, "");
}

// ---- scheduling behavior ----------------------------------------------------

TEST(Ensemble, RunsEveryInstanceExactlyStepsTimes) {
  EnsembleOptions opts;
  opts.name = "count_ens";
  opts.workers = 3;
  opts.batch_steps = 2;
  Ensemble ens(opts);
  ens.add_instances(7, [](int) { return std::make_unique<CountingInstance>(); });
  const auto rep = ens.run(11);
  EXPECT_EQ(rep.completed, 7);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_EQ(rep.steps, 7 * 11);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(dynamic_cast<const CountingInstance&>(ens.instance(i)).steps(), 11);
    EXPECT_EQ(rep.instances[static_cast<std::size_t>(i)].steps_done, 11);
  }
}

TEST(Ensemble, ExceptionInOneInstanceDoesNotPoisonSiblings) {
  EnsembleOptions opts;
  opts.name = "faulty_ens";
  opts.workers = 2;
  Ensemble ens(opts);
  for (int i = 0; i < 4; ++i)
    ens.add_instance([i](int) {
      return std::make_unique<CountingInstance>(i == 1 ? 3 : -1);  // #1 throws at step 3
    });
  const auto rep = ens.run(10);
  EXPECT_EQ(rep.failed, 1);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_EQ(rep.instances[1].error, "instance blew up");
  EXPECT_EQ(rep.instances[1].steps_done, 2);  // the throwing step doesn't count
  EXPECT_EQ(ens.error_of(1), "instance blew up");
  for (int i : {0, 2, 3})
    EXPECT_EQ(rep.instances[static_cast<std::size_t>(i)].steps_done, 10);

  // A failed instance stays retired on the next run; siblings advance.
  const auto rep2 = ens.run(5);
  EXPECT_EQ(rep2.failed, 1);
  EXPECT_EQ(rep2.instances[1].steps_done, 0);
  EXPECT_EQ(dynamic_cast<const CountingInstance&>(ens.instance(0)).steps(), 15);
}

// ---- bitwise equivalence (the correctness bar) ------------------------------

TEST(Ensemble, InterleavedSeqExecutionMatchesSoloBitwise) {
  const auto m = mesh::make_tri_periodic(16, 16, 10.0, 10.0);
  const auto sweep = volna::hazard_sweep(4);
  const int steps = 8;

  // Solo references: each scenario alone, plain sequential stepping.
  std::vector<aligned_vector<float>> solo;
  for (const auto& sc : sweep) {
    volna::HazardInstance inst(m, sc, seq_cfg());
    for (int s = 0; s < steps; ++s) inst.step();
    solo.push_back(inst.state());
  }

  // Ensemble: 4 instances over 4 workers, batch 1 = maximal interleaving.
  EnsembleOptions opts;
  opts.name = "bitwise_ens";
  opts.workers = 4;
  opts.batch_steps = 1;
  Ensemble ens(opts);
  ens.add_instances(4, volna::hazard_factory(m, sweep, seq_cfg()));
  const auto rep = ens.run(steps);
  ASSERT_EQ(rep.completed, 4);

  for (int i = 0; i < 4; ++i) {
    auto& inst = dynamic_cast<volna::HazardInstance&>(ens.instance(i));
    EXPECT_TRUE(bitwise_equal(inst.state(), solo[static_cast<std::size_t>(i)]))
        << "instance " << i << " diverged from its solo run";
  }
}

TEST(Ensemble, DegenerateSingleInstanceMatchesPlainDriver) {
  const auto m = mesh::make_tri_periodic(12, 12, 10.0, 10.0);
  const volna::Scenario sc{1.0, 0.3, 0.06};
  const int steps = 6;

  LocalCtx ctx(seq_cfg());
  volna::Volna<float, LocalCtx> plain(ctx, m, sc.depth, sc.amp, sc.width);
  plain.run(steps);

  EnsembleOptions opts;
  opts.name = "solo_ens";
  opts.workers = 2;
  Ensemble ens(opts);
  ens.add_instances(1, volna::hazard_factory(m, {sc}, seq_cfg()));
  const auto rep = ens.run(steps);
  EXPECT_EQ(rep.completed, 1);

  auto& inst = dynamic_cast<volna::HazardInstance&>(ens.instance(0));
  EXPECT_TRUE(bitwise_equal(inst.state(), plain.fetch_state()));
}

// ---- stats isolation --------------------------------------------------------

TEST(Ensemble, PerInstanceStatsRowsAreIsolated) {
  const auto m = mesh::make_tri_periodic(8, 8, 10.0, 10.0);
  const auto sweep = volna::hazard_sweep(2);
  const int steps = 3;

  auto& reg = StatsRegistry::instance();
  EnsembleOptions opts;
  opts.name = "stats_ens";
  opts.workers = 2;
  Ensemble ens(opts);
  ens.add_instances(2, volna::hazard_factory(m, sweep, seq_cfg()));
  ens.run(steps);

  // Each instance records its own scoped rows; sim_1 runs once per step.
  const LoopRecord r0 = reg.get("stats_ens/i000/sim_1");
  const LoopRecord r1 = reg.get("stats_ens/i001/sim_1");
  EXPECT_EQ(r0.calls, steps);
  EXPECT_EQ(r1.calls, steps);

  // The ensemble summary record aggregates the run.
  const EnsembleRecord er = reg.get_ensemble("stats_ens");
  EXPECT_EQ(er.runs, 1);
  EXPECT_EQ(er.steps, 2 * steps);
  EXPECT_EQ(er.instances, 2);
  EXPECT_EQ(er.workers, 2);
  EXPECT_GE(er.busy_seconds, 0.0);
}

// ---- cross-instance plan sharing --------------------------------------------

TEST(Ensemble, SameMeshInstancesShareOnePlanBuild) {
  const auto m = mesh::make_tri_periodic(10, 10, 10.0, 10.0);
  const auto sweep = volna::hazard_sweep(2);

  // OpenMP needs coloring plans for the two space_disc call sites (the
  // loops with indirect increments); both share one conflict signature, so
  // TWO instances x two handles = exactly ONE build and three cache hits.
  ExecConfig cfg;
  cfg.backend = Backend::OpenMP;
  cfg.nthreads = 1;
  cfg.block_size = 256;  // pin: kAuto tuning would vary the key

  PlanCache::instance().clear();
  PlanCache::instance().reset_counters();

  EnsembleOptions opts;
  opts.name = "plan_ens";
  opts.workers = 2;
  Ensemble ens(opts);
  ens.add_instances(2, volna::hazard_factory(m, sweep, cfg));
  const auto rep = ens.run(2);
  ASSERT_EQ(rep.completed, 2);

  const auto c = PlanCache::instance().counters();
  EXPECT_EQ(c.misses, 1u) << "same-mesh instances must share one plan build";
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(PlanCache::instance().size(), 1u);
  EXPECT_EQ(rep.plan_misses, 1);
  EXPECT_EQ(rep.plan_hits, 3);
}

TEST(Ensemble, DistinctMeshInstancesBuildDistinctPlans) {
  const auto sweep = volna::hazard_sweep(1);
  ExecConfig cfg;
  cfg.backend = Backend::OpenMP;
  cfg.nthreads = 1;
  cfg.block_size = 256;

  PlanCache::instance().clear();
  PlanCache::instance().reset_counters();

  EnsembleOptions opts;
  opts.name = "mixed_ens";
  opts.workers = 2;
  Ensemble ens(opts);
  for (int i = 0; i < 2; ++i) {
    const auto mi = mesh::make_tri_periodic(8 + 4 * static_cast<idx_t>(i),
                                            8 + 4 * static_cast<idx_t>(i), 10.0, 10.0);
    ens.add_instance(volna::hazard_factory(mi, sweep, cfg));
  }
  const auto rep = ens.run(2);
  ASSERT_EQ(rep.completed, 2);

  const auto c = PlanCache::instance().counters();
  EXPECT_EQ(c.misses, 2u) << "different meshes cannot share a plan";
  EXPECT_EQ(PlanCache::instance().size(), 2u);
}
