// Tests for the persistent distributed-loop API (dist/loop.hpp): bitwise
// equivalence of dist::Loop::run() with the one-shot DistCtx::loop on
// airfoil-style loops, dirty-bit laziness across repeated runs (verified
// through a counting Exchanger — the pluggable-transport seam), exchange-
// plan pinning, per-rank imbalance stats, construction-time argument
// validation, and negative-compile asserts for invalid dist arg/access
// combinations.
#include <gtest/gtest.h>

#include <type_traits>

#include "apps/airfoil/airfoil.hpp"
#include "dist/context.hpp"
#include "dist/loop.hpp"
#include "mesh/generators.hpp"
#include "perf/table.hpp"

namespace {

using namespace opv;
using namespace opv::dist;

// ---- compile-time access validation ----------------------------------------
// Invalid dist arg/access combinations must fail to COMPILE, exactly like
// the opv::arg builders they mirror.

template <AccessMode A>
concept DistDatDirectOk =
    requires(DistCtx& c, DistCtx::DatHandle<double> d) { c.arg<A>(d); };
template <AccessMode A>
concept DistDatIndirectOk =
    requires(DistCtx& c, DistCtx::DatHandle<double> d, DistCtx::MapHandle m) {
      c.arg<A>(d, 0, m);
    };
template <AccessMode A>
concept DistGblOk = requires(DistCtx& c, double* p) { c.arg_gbl<A>(p, 1); };

static_assert(DistDatDirectOk<opv::READ> && DistDatDirectOk<opv::WRITE> &&
              DistDatDirectOk<opv::RW> && DistDatDirectOk<opv::INC>);
static_assert(!DistDatDirectOk<opv::MIN>, "MIN reductions are global-only");
static_assert(!DistDatDirectOk<opv::MAX>, "MAX reductions are global-only");
static_assert(!DistDatIndirectOk<opv::MIN> && !DistDatIndirectOk<opv::MAX>);
static_assert(DistGblOk<opv::READ> && DistGblOk<opv::INC> && DistGblOk<opv::MIN> &&
              DistGblOk<opv::MAX>);
static_assert(!DistGblOk<opv::WRITE>, "globals cannot be element-wise written");
static_assert(!DistGblOk<opv::RW>, "globals cannot be read-modify-written");

// Compile-time conflict classification carries over to dist descriptors.
static_assert(dist::Loop<int, DistArgDat<double, opv::INC, kDynDim, true>>::has_inc);
static_assert(!dist::Loop<int, DistArgDat<double, opv::READ, kDynDim, true>,
                          DistArgGbl<double, opv::INC>>::has_inc);

// Compile-time Dim carries through the dist descriptors into the per-rank
// opv::Arg bindings, and an out-of-range Dim fails to compile.
static_assert(std::is_same_v<dist::detail::rank_arg_t<DistArgDat<double, opv::INC, 4, true>>,
                             opv::Arg<double, opv::INC, 4, true>>);
template <int Dim>
concept DistDimOk =
    requires(DistCtx& c, DistCtx::DatHandle<double> d) { c.arg<opv::READ, Dim>(d); };
static_assert(DistDimOk<kDynDim> && DistDimOk<1> && DistDimOk<kMaxDim>);
static_assert(!DistDimOk<-2> && !DistDimOk<kMaxDim + 1>, "Dim bounded by [1,kMaxDim]");

// ---- fixture: airfoil-style edge/cell pipeline ------------------------------

struct EdgeK {
  template <class T>
  void operator()(const T* x1, const T* x2, const T* w, T* c1, T* c2) const {
    OPV_SIMD_MATH_USING;
    const T d = sqrt(abs(x1[0] - x2[0]) + T(0.5)) * w[0];
    c1[0] += d;
    c2[0] -= d * T(0.5);
  }
};
struct CellK {
  template <class T>
  void operator()(T* q, const T* a, T* gsum, T* gmin) const {
    OPV_SIMD_MATH_USING;
    q[0] = q[0] + a[0] * T(0.1);
    gsum[0] += q[0];
    gmin[0] = min(gmin[0], q[0]);
  }
};

/// One DistCtx universe with the quad-box mesh: nodes/cells/edges, e2n/e2c
/// maps, x (node coords), w (edge weight), q and acc (cell state).
struct Universe {
  mesh::UnstructuredMesh m;
  DistCtx ctx;
  DistCtx::SetHandle nodes, cells, edges;
  DistCtx::MapHandle e2n, e2c;
  DistCtx::DatHandle<double> x, w, acc, q;

  Universe(int nranks, ExecConfig cfg, idx_t ni = 21, idx_t nj = 17)
      : m(mesh::make_quad_box(ni, nj)), ctx(nranks, cfg) {
    nodes = ctx.decl_set("nodes", m.nnodes);
    cells = ctx.decl_set("cells", m.ncells);
    edges = ctx.decl_set("edges", m.nedges);
    const auto cent = airfoil::cell_centroids(m);
    ctx.set_partition_coords(cells, cent.data());
    e2n = ctx.decl_map("e2n", edges, nodes, 2, m.edge_nodes);
    e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
    x = ctx.decl_dat<double>("x", nodes, 2, m.node_xy);
    w = ctx.decl_dat<double>("w", edges, 1, aligned_vector<double>(m.nedges, 0.7));
    acc = ctx.decl_dat<double>("acc", cells, 1);
    aligned_vector<double> qi(m.ncells);
    for (idx_t c = 0; c < m.ncells; ++c) qi[c] = 0.01 * (c % 29);
    q = ctx.decl_dat<double>("q", cells, 1, qi);
    ctx.finalize();
  }
};

// ---- equivalence with the one-shot path -------------------------------------

class DistLoopEquivP : public ::testing::TestWithParam<std::tuple<int, Backend>> {};

TEST_P(DistLoopEquivP, BitwiseMatchesOneShot) {
  const auto [nranks, backend] = GetParam();
  const ExecConfig cfg{.backend = backend, .nthreads = backend == Backend::Seq ? 1 : 2};

  // Reference: the one-shot DistCtx::loop call shape, every iteration.
  Universe a(nranks, cfg);
  double gsum_a = 0, gmin_a = 0;
  for (int it = 0; it < 4; ++it) {
    a.ctx.loop(EdgeK{}, "dl_edge", a.edges, a.ctx.arg(a.x, 0, a.e2n, Access::READ),
               a.ctx.arg(a.x, 1, a.e2n, Access::READ), a.ctx.arg(a.w, Access::READ),
               a.ctx.arg(a.acc, 0, a.e2c, Access::INC), a.ctx.arg(a.acc, 1, a.e2c, Access::INC));
    gsum_a = 0;
    gmin_a = 1e300;
    a.ctx.loop(CellK{}, "dl_cell", a.cells, a.ctx.arg(a.q, Access::RW),
               a.ctx.arg(a.acc, Access::READ), a.ctx.arg_gbl(&gsum_a, 1, Access::INC),
               a.ctx.arg_gbl(&gmin_a, 1, Access::MIN));
  }

  // Handles: constructed once, run every iteration.
  Universe b(nranks, cfg);
  double gsum_b = 0, gmin_b = 0;
  dist::Loop edge(b.ctx, EdgeK{}, "dl_edge_h", b.edges, b.ctx.arg<opv::READ>(b.x, 0, b.e2n),
                  b.ctx.arg<opv::READ>(b.x, 1, b.e2n), b.ctx.arg<opv::READ>(b.w),
                  b.ctx.arg<opv::INC>(b.acc, 0, b.e2c), b.ctx.arg<opv::INC>(b.acc, 1, b.e2c));
  dist::Loop cell(b.ctx, CellK{}, "dl_cell_h", b.cells, b.ctx.arg<opv::RW>(b.q),
                  b.ctx.arg<opv::READ>(b.acc), b.ctx.arg_gbl<opv::INC>(&gsum_b, 1),
                  b.ctx.arg_gbl<opv::MIN>(&gmin_b, 1));
  static_assert(decltype(edge)::has_inc);
  static_assert(!decltype(cell)::has_inc);
  for (int it = 0; it < 4; ++it) {
    edge.run();
    gsum_b = 0;
    gmin_b = 1e300;
    cell.run();
  }

  // Same arithmetic in the same order: results must be bitwise identical.
  aligned_vector<double> qa, qb, acca, accb;
  a.ctx.fetch(a.q, qa);
  b.ctx.fetch(b.q, qb);
  a.ctx.fetch(a.acc, acca);
  b.ctx.fetch(b.acc, accb);
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) ASSERT_EQ(qa[i], qb[i]) << "cell " << i;
  for (std::size_t i = 0; i < acca.size(); ++i) ASSERT_EQ(acca[i], accb[i]) << "cell " << i;
  EXPECT_EQ(gsum_a, gsum_b);
  EXPECT_EQ(gmin_a, gmin_b);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBackends, DistLoopEquivP,
    ::testing::Combine(::testing::Values(1, 3, 6),
                       ::testing::Values(Backend::Seq, Backend::OpenMP, Backend::Simd)));

// ---- Exchanger seam: counting transport -------------------------------------

/// Wraps the default transport and counts calls — the test double a real
/// MPI transport would replace.
struct CountingExchanger final : Exchanger {
  MemcpyExchanger inner;
  int calls = 0;
  std::int64_t values = 0;
  std::int64_t exchange(const Partitioned& part, const DatHaloView& view) override {
    ++calls;
    const std::int64_t n = inner.exchange(part, view);
    values += n;
    return n;
  }
  [[nodiscard]] const char* name() const override { return "counting"; }
};

struct GatherQ {
  template <class T>
  void operator()(const T* ql, const T* qr, T* a1, T* a2) const {
    const T f = ql[0] - qr[0];
    a1[0] += f;
    a2[0] -= f;
  }
};
struct BumpQ {
  template <class T>
  void operator()(T* q, const T* a) const {
    q[0] = q[0] + a[0] * T(0.01);
  }
};

TEST(DistLoop, DirtyBitsStayLazyAcrossRuns) {
  Universe u(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto counter = std::make_unique<CountingExchanger>();
  CountingExchanger* c = counter.get();
  u.ctx.set_exchanger(std::move(counter));

  dist::Loop edge(u.ctx, GatherQ{}, "lazy_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  dist::Loop cell(u.ctx, BumpQ{}, "lazy_cell", u.cells, u.ctx.arg<opv::RW>(u.q),
                  u.ctx.arg<opv::READ>(u.acc));

  // Initial halos are fresh from materialize(): reads trigger no exchange.
  edge.run();
  EXPECT_EQ(c->calls, 0) << "clean dats must not be exchanged";
  edge.run();
  EXPECT_EQ(c->calls, 0) << "nothing written between runs: still no exchange";

  // cell writes q -> the next edge run must refresh exactly one dat (q).
  cell.run();
  edge.run();
  EXPECT_EQ(c->calls, 1);
  EXPECT_GT(c->values, 0) << "halo traffic must flow through the Exchanger";
  edge.run();
  EXPECT_EQ(c->calls, 1) << "q not re-dirtied: no further exchange";
}

// ---- exchange-plan pinning --------------------------------------------------

TEST(DistLoop, ExchangePlanAndRankPlansPinned) {
  Universe u(2, ExecConfig{.backend = Backend::Simd, .simd_width = 4, .nthreads = 1});
  dist::Loop edge(u.ctx, GatherQ{}, "pin_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));

  // The plan is derived at construction, before any run.
  const ExchangePlan* plan = &edge.exchange_plan();
  ASSERT_EQ(plan->read_dats, std::vector<int>{u.q.id});
  ASSERT_EQ(plan->write_dats, std::vector<int>{u.acc.id});

  edge.run();
  const Plan* rank_plan = edge.rank_loop(0).plan(u.ctx.config());
  ASSERT_NE(rank_plan, nullptr);
  edge.run();
  edge.run();
  EXPECT_EQ(&edge.exchange_plan(), plan) << "exchange plan must be pinned, not re-derived";
  EXPECT_EQ(edge.exchange_plan().read_dats, std::vector<int>{u.q.id});
  EXPECT_EQ(edge.rank_loop(0).plan(u.ctx.config()), rank_plan)
      << "per-rank coloring plan must be pinned across runs";
}

// ---- per-rank imbalance stats -----------------------------------------------

TEST(DistLoop, RecordsRankImbalance) {
  StatsRegistry::instance().clear();
  Universe u(4, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  dist::Loop edge(u.ctx, GatherQ{}, "imb_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  for (int it = 0; it < 3; ++it) edge.run();

  ASSERT_EQ(edge.rank_seconds().size(), 4u);
  for (double s : edge.rank_seconds()) EXPECT_GE(s, 0.0);

  const LoopRecord rec = StatsRegistry::instance().get("imb_edge");
  EXPECT_EQ(rec.calls, 3);
  EXPECT_EQ(rec.nranks, 4);
  EXPECT_GT(rec.rank_max_seconds, 0.0);
  EXPECT_GE(rec.rank_max_seconds, rec.rank_mean_seconds);
  EXPECT_GE(rec.rank_mean_seconds, rec.rank_min_seconds);
  EXPECT_GE(perf::rank_imbalance(rec), 1.0);

  // The stats table grows the imbalance column when rank data is present.
  const std::string table =
      perf::loop_stats_table(StatsRegistry::instance().all()).to_string();
  EXPECT_NE(table.find("max/mean imb"), std::string::npos);
  EXPECT_NE(table.find("imb_edge"), std::string::npos);
}

// ---- compile-time Dim through the dist layer --------------------------------

/// A dist loop mixing typed-Dim and runtime-dim descriptors must match the
/// all-runtime baseline bitwise: Dim only changes the generated code shape
/// (unrolled vs looped per-component accesses), never arithmetic order.
TEST(DistLoop, MixedDimSpellingsBitwiseMatchRuntimeBaseline) {
  const ExecConfig cfg{.backend = Backend::Simd, .simd_width = 4, .nthreads = 2};

  Universe a(3, cfg);
  dist::Loop rt(a.ctx, EdgeK{}, "mixdim_rt", a.edges, a.ctx.arg<opv::READ>(a.x, 0, a.e2n),
                a.ctx.arg<opv::READ>(a.x, 1, a.e2n), a.ctx.arg<opv::READ>(a.w),
                a.ctx.arg<opv::INC>(a.acc, 0, a.e2c), a.ctx.arg<opv::INC>(a.acc, 1, a.e2c));

  Universe b(3, cfg);
  dist::Loop mix(b.ctx, EdgeK{}, "mixdim_mixed", b.edges,
                 b.ctx.arg<opv::READ, 2>(b.x, 0, b.e2n), b.ctx.arg<opv::READ>(b.x, 1, b.e2n),
                 b.ctx.arg<opv::READ, 1>(b.w), b.ctx.arg<opv::INC>(b.acc, 0, b.e2c),
                 b.ctx.arg<opv::INC, 1>(b.acc, 1, b.e2c));
  static_assert(!std::is_same_v<decltype(rt), decltype(mix)>,
                "Dim is part of the dist::Loop type");

  for (int it = 0; it < 3; ++it) {
    rt.run();
    mix.run();
  }
  aligned_vector<double> ra, rb;
  a.ctx.fetch(a.acc, ra);
  b.ctx.fetch(b.acc, rb);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) ASSERT_EQ(ra[i], rb[i]) << "cell " << i;
}

/// A compile-time descriptor Dim contradicting the declared dat throws at
/// descriptor construction (the dist analog of opv::arg's runtime check).
TEST(DistLoop, DimMismatchThrowsAtConstruction) {
  Universe u(2, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  EXPECT_THROW((u.ctx.arg<opv::READ, 3>(u.x, 0, u.e2n)), Error);  // x has dim 2
  EXPECT_THROW((u.ctx.arg<opv::RW, 4>(u.q)), Error);              // q has dim 1
  EXPECT_NO_THROW((u.ctx.arg<opv::READ, 2>(u.x, 0, u.e2n)));
  EXPECT_NO_THROW((u.ctx.arg<opv::RW, 1>(u.q)));
}

// ---- construction-time validation -------------------------------------------

TEST(DistLoop, ValidatesArgsAgainstIterationSet) {
  Universe u(2, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  // Direct dat on the wrong set: q lives on cells, loop iterates edges.
  EXPECT_THROW(dist::Loop(u.ctx, BumpQ{}, "bad_direct", u.edges, u.ctx.arg<opv::RW>(u.q),
                          u.ctx.arg<opv::READ>(u.acc)),
               Error);
  // Indirect arg through a map that is not FROM the iteration set.
  EXPECT_THROW(dist::Loop(u.ctx, GatherQ{}, "bad_map", u.cells,
                          u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                          u.ctx.arg<opv::READ>(u.q, 1, u.e2c),
                          u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                          u.ctx.arg<opv::INC>(u.acc, 1, u.e2c)),
               Error);
}

}  // namespace
