// Tests for the persistent distributed-loop API (dist/loop.hpp): bitwise
// equivalence of dist::Loop::run() with the one-shot DistCtx::loop on
// airfoil-style loops, dirty-bit laziness across repeated runs (verified
// through a counting Exchanger — the pluggable-transport seam), exchange-
// plan pinning, per-rank imbalance stats, construction-time argument
// validation, and negative-compile asserts for invalid dist arg/access
// combinations. Phased execution (paper §6.5): interior/boundary
// classification invariants, begin/wait pairing through the non-blocking
// Exchanger interface, bitwise Overlap==Phased equivalence across rank
// counts/backends/transports, the automatic blocking fallback for loops
// that write what they read stale, and per-loop exchange accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <type_traits>

#include "apps/airfoil/airfoil.hpp"
#include "dist/context.hpp"
#include "dist/loop.hpp"
#include "mesh/generators.hpp"
#include "perf/table.hpp"

namespace {

using namespace opv;
using namespace opv::dist;

// ---- compile-time access validation ----------------------------------------
// Invalid dist arg/access combinations must fail to COMPILE, exactly like
// the opv::arg builders they mirror.

template <AccessMode A>
concept DistDatDirectOk =
    requires(DistCtx& c, DistCtx::DatHandle<double> d) { c.arg<A>(d); };
template <AccessMode A>
concept DistDatIndirectOk =
    requires(DistCtx& c, DistCtx::DatHandle<double> d, DistCtx::MapHandle m) {
      c.arg<A>(d, 0, m);
    };
template <AccessMode A>
concept DistGblOk = requires(DistCtx& c, double* p) { c.arg_gbl<A>(p, 1); };

static_assert(DistDatDirectOk<opv::READ> && DistDatDirectOk<opv::WRITE> &&
              DistDatDirectOk<opv::RW> && DistDatDirectOk<opv::INC>);
static_assert(!DistDatDirectOk<opv::MIN>, "MIN reductions are global-only");
static_assert(!DistDatDirectOk<opv::MAX>, "MAX reductions are global-only");
static_assert(!DistDatIndirectOk<opv::MIN> && !DistDatIndirectOk<opv::MAX>);
static_assert(DistGblOk<opv::READ> && DistGblOk<opv::INC> && DistGblOk<opv::MIN> &&
              DistGblOk<opv::MAX>);
static_assert(!DistGblOk<opv::WRITE>, "globals cannot be element-wise written");
static_assert(!DistGblOk<opv::RW>, "globals cannot be read-modify-written");

// Compile-time conflict classification carries over to dist descriptors.
static_assert(dist::Loop<int, DistArgDat<double, opv::INC, kDynDim, true>>::has_inc);
static_assert(!dist::Loop<int, DistArgDat<double, opv::READ, kDynDim, true>,
                          DistArgGbl<double, opv::INC>>::has_inc);

// Compile-time Dim carries through the dist descriptors into the per-rank
// opv::Arg bindings, and an out-of-range Dim fails to compile.
static_assert(std::is_same_v<dist::detail::rank_arg_t<DistArgDat<double, opv::INC, 4, true>>,
                             opv::Arg<double, opv::INC, 4, true>>);
template <int Dim>
concept DistDimOk =
    requires(DistCtx& c, DistCtx::DatHandle<double> d) { c.arg<opv::READ, Dim>(d); };
static_assert(DistDimOk<kDynDim> && DistDimOk<1> && DistDimOk<kMaxDim>);
static_assert(!DistDimOk<-2> && !DistDimOk<kMaxDim + 1>, "Dim bounded by [1,kMaxDim]");

// ---- fixture: airfoil-style edge/cell pipeline ------------------------------

struct EdgeK {
  template <class T>
  void operator()(const T* x1, const T* x2, const T* w, T* c1, T* c2) const {
    OPV_SIMD_MATH_USING;
    const T d = sqrt(abs(x1[0] - x2[0]) + T(0.5)) * w[0];
    c1[0] += d;
    c2[0] -= d * T(0.5);
  }
};
struct CellK {
  template <class T>
  void operator()(T* q, const T* a, T* gsum, T* gmin) const {
    OPV_SIMD_MATH_USING;
    q[0] = q[0] + a[0] * T(0.1);
    gsum[0] += q[0];
    gmin[0] = min(gmin[0], q[0]);
  }
};

/// One DistCtx universe with the quad-box mesh: nodes/cells/edges, e2n/e2c
/// maps, x (node coords), w (edge weight), q and acc (cell state).
struct Universe {
  mesh::UnstructuredMesh m;
  DistCtx ctx;
  DistCtx::SetHandle nodes, cells, edges;
  DistCtx::MapHandle e2n, e2c;
  DistCtx::DatHandle<double> x, w, acc, q;

  Universe(int nranks, ExecConfig cfg, idx_t ni = 21, idx_t nj = 17)
      : m(mesh::make_quad_box(ni, nj)), ctx(nranks, cfg) {
    nodes = ctx.decl_set("nodes", m.nnodes);
    cells = ctx.decl_set("cells", m.ncells);
    edges = ctx.decl_set("edges", m.nedges);
    const auto cent = airfoil::cell_centroids(m);
    ctx.set_partition_coords(cells, cent.data());
    e2n = ctx.decl_map("e2n", edges, nodes, 2, m.edge_nodes);
    e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
    x = ctx.decl_dat<double>("x", nodes, 2, m.node_xy);
    w = ctx.decl_dat<double>("w", edges, 1, aligned_vector<double>(m.nedges, 0.7));
    acc = ctx.decl_dat<double>("acc", cells, 1);
    aligned_vector<double> qi(m.ncells);
    for (idx_t c = 0; c < m.ncells; ++c) qi[c] = 0.01 * (c % 29);
    q = ctx.decl_dat<double>("q", cells, 1, qi);
    ctx.finalize();
  }
};

// ---- equivalence with the one-shot path -------------------------------------

class DistLoopEquivP : public ::testing::TestWithParam<std::tuple<int, Backend>> {};

TEST_P(DistLoopEquivP, BitwiseMatchesOneShot) {
  const auto [nranks, backend] = GetParam();
  const ExecConfig cfg{.backend = backend, .nthreads = backend == Backend::Seq ? 1 : 2};

  // Reference: the one-shot DistCtx::loop call shape, every iteration.
  Universe a(nranks, cfg);
  double gsum_a = 0, gmin_a = 0;
  for (int it = 0; it < 4; ++it) {
    a.ctx.loop(EdgeK{}, "dl_edge", a.edges, a.ctx.arg(a.x, 0, a.e2n, Access::READ),
               a.ctx.arg(a.x, 1, a.e2n, Access::READ), a.ctx.arg(a.w, Access::READ),
               a.ctx.arg(a.acc, 0, a.e2c, Access::INC), a.ctx.arg(a.acc, 1, a.e2c, Access::INC));
    gsum_a = 0;
    gmin_a = 1e300;
    a.ctx.loop(CellK{}, "dl_cell", a.cells, a.ctx.arg(a.q, Access::RW),
               a.ctx.arg(a.acc, Access::READ), a.ctx.arg_gbl(&gsum_a, 1, Access::INC),
               a.ctx.arg_gbl(&gmin_a, 1, Access::MIN));
  }

  // Handles: constructed once, run every iteration.
  Universe b(nranks, cfg);
  double gsum_b = 0, gmin_b = 0;
  dist::Loop edge(b.ctx, EdgeK{}, "dl_edge_h", b.edges, b.ctx.arg<opv::READ>(b.x, 0, b.e2n),
                  b.ctx.arg<opv::READ>(b.x, 1, b.e2n), b.ctx.arg<opv::READ>(b.w),
                  b.ctx.arg<opv::INC>(b.acc, 0, b.e2c), b.ctx.arg<opv::INC>(b.acc, 1, b.e2c));
  dist::Loop cell(b.ctx, CellK{}, "dl_cell_h", b.cells, b.ctx.arg<opv::RW>(b.q),
                  b.ctx.arg<opv::READ>(b.acc), b.ctx.arg_gbl<opv::INC>(&gsum_b, 1),
                  b.ctx.arg_gbl<opv::MIN>(&gmin_b, 1));
  static_assert(decltype(edge)::has_inc);
  static_assert(!decltype(cell)::has_inc);
  for (int it = 0; it < 4; ++it) {
    edge.run();
    gsum_b = 0;
    gmin_b = 1e300;
    cell.run();
  }

  // Same arithmetic in the same order: results must be bitwise identical.
  aligned_vector<double> qa, qb, acca, accb;
  a.ctx.fetch(a.q, qa);
  b.ctx.fetch(b.q, qb);
  a.ctx.fetch(a.acc, acca);
  b.ctx.fetch(b.acc, accb);
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) ASSERT_EQ(qa[i], qb[i]) << "cell " << i;
  for (std::size_t i = 0; i < acca.size(); ++i) ASSERT_EQ(acca[i], accb[i]) << "cell " << i;
  EXPECT_EQ(gsum_a, gsum_b);
  EXPECT_EQ(gmin_a, gmin_b);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBackends, DistLoopEquivP,
    ::testing::Combine(::testing::Values(1, 3, 6),
                       ::testing::Values(Backend::Seq, Backend::OpenMP, Backend::Simd)));

// ---- Exchanger seam: counting transport -------------------------------------

/// Wraps the default transport and counts calls — the test double a real
/// MPI transport would replace.
struct CountingExchanger final : Exchanger {
  MemcpyExchanger inner;
  int calls = 0;
  std::int64_t values = 0;
  std::int64_t exchange(const Partitioned& part, const DatHaloView& view) override {
    ++calls;
    const std::int64_t n = inner.exchange(part, view);
    values += n;
    return n;
  }
  [[nodiscard]] const char* name() const override { return "counting"; }
};

struct GatherQ {
  template <class T>
  void operator()(const T* ql, const T* qr, T* a1, T* a2) const {
    const T f = ql[0] - qr[0];
    a1[0] += f;
    a2[0] -= f;
  }
};
struct BumpQ {
  template <class T>
  void operator()(T* q, const T* a) const {
    q[0] = q[0] + a[0] * T(0.01);
  }
};

TEST(DistLoop, DirtyBitsStayLazyAcrossRuns) {
  Universe u(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto counter = std::make_unique<CountingExchanger>();
  CountingExchanger* c = counter.get();
  u.ctx.set_exchanger(std::move(counter));

  dist::Loop edge(u.ctx, GatherQ{}, "lazy_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  dist::Loop cell(u.ctx, BumpQ{}, "lazy_cell", u.cells, u.ctx.arg<opv::RW>(u.q),
                  u.ctx.arg<opv::READ>(u.acc));

  // Initial halos are fresh from materialize(): reads trigger no exchange.
  edge.run();
  EXPECT_EQ(c->calls, 0) << "clean dats must not be exchanged";
  edge.run();
  EXPECT_EQ(c->calls, 0) << "nothing written between runs: still no exchange";

  // cell writes q -> the next edge run must refresh exactly one dat (q).
  cell.run();
  edge.run();
  EXPECT_EQ(c->calls, 1);
  EXPECT_GT(c->values, 0) << "halo traffic must flow through the Exchanger";
  edge.run();
  EXPECT_EQ(c->calls, 1) << "q not re-dirtied: no further exchange";
}

// ---- exchange-plan pinning --------------------------------------------------

TEST(DistLoop, ExchangePlanAndRankPlansPinned) {
  Universe u(2, ExecConfig{.backend = Backend::Simd, .simd_width = 4, .nthreads = 1});
  dist::Loop edge(u.ctx, GatherQ{}, "pin_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));

  // The plan is derived at construction, before any run.
  const ExchangePlan* plan = &edge.exchange_plan();
  ASSERT_EQ(plan->read_dats, std::vector<int>{u.q.id});
  ASSERT_EQ(plan->write_dats, std::vector<int>{u.acc.id});

  edge.run();
  const Plan* rank_plan = edge.rank_loop(0).plan(u.ctx.config());
  ASSERT_NE(rank_plan, nullptr);
  edge.run();
  edge.run();
  EXPECT_EQ(&edge.exchange_plan(), plan) << "exchange plan must be pinned, not re-derived";
  EXPECT_EQ(edge.exchange_plan().read_dats, std::vector<int>{u.q.id});
  EXPECT_EQ(edge.rank_loop(0).plan(u.ctx.config()), rank_plan)
      << "per-rank coloring plan must be pinned across runs";
}

// ---- per-rank imbalance stats -----------------------------------------------

TEST(DistLoop, RecordsRankImbalance) {
  StatsRegistry::instance().clear();
  Universe u(4, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  dist::Loop edge(u.ctx, GatherQ{}, "imb_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  for (int it = 0; it < 3; ++it) edge.run();

  ASSERT_EQ(edge.rank_seconds().size(), 4u);
  for (double s : edge.rank_seconds()) EXPECT_GE(s, 0.0);

  const LoopRecord rec = StatsRegistry::instance().get("imb_edge");
  EXPECT_EQ(rec.calls, 3);
  EXPECT_EQ(rec.nranks, 4);
  EXPECT_GT(rec.rank_max_seconds, 0.0);
  EXPECT_GE(rec.rank_max_seconds, rec.rank_mean_seconds);
  EXPECT_GE(rec.rank_mean_seconds, rec.rank_min_seconds);
  EXPECT_GE(perf::rank_imbalance(rec), 1.0);

  // The stats table grows the imbalance column when rank data is present.
  const std::string table =
      perf::loop_stats_table(StatsRegistry::instance().all()).to_string();
  EXPECT_NE(table.find("max/mean imb"), std::string::npos);
  EXPECT_NE(table.find("imb_edge"), std::string::npos);
}

// ---- compile-time Dim through the dist layer --------------------------------

/// A dist loop mixing typed-Dim and runtime-dim descriptors must match the
/// all-runtime baseline bitwise: Dim only changes the generated code shape
/// (unrolled vs looped per-component accesses), never arithmetic order.
TEST(DistLoop, MixedDimSpellingsBitwiseMatchRuntimeBaseline) {
  const ExecConfig cfg{.backend = Backend::Simd, .simd_width = 4, .nthreads = 2};

  Universe a(3, cfg);
  dist::Loop rt(a.ctx, EdgeK{}, "mixdim_rt", a.edges, a.ctx.arg<opv::READ>(a.x, 0, a.e2n),
                a.ctx.arg<opv::READ>(a.x, 1, a.e2n), a.ctx.arg<opv::READ>(a.w),
                a.ctx.arg<opv::INC>(a.acc, 0, a.e2c), a.ctx.arg<opv::INC>(a.acc, 1, a.e2c));

  Universe b(3, cfg);
  dist::Loop mix(b.ctx, EdgeK{}, "mixdim_mixed", b.edges,
                 b.ctx.arg<opv::READ, 2>(b.x, 0, b.e2n), b.ctx.arg<opv::READ>(b.x, 1, b.e2n),
                 b.ctx.arg<opv::READ, 1>(b.w), b.ctx.arg<opv::INC>(b.acc, 0, b.e2c),
                 b.ctx.arg<opv::INC, 1>(b.acc, 1, b.e2c));
  static_assert(!std::is_same_v<decltype(rt), decltype(mix)>,
                "Dim is part of the dist::Loop type");

  for (int it = 0; it < 3; ++it) {
    rt.run();
    mix.run();
  }
  aligned_vector<double> ra, rb;
  a.ctx.fetch(a.acc, ra);
  b.ctx.fetch(b.acc, rb);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) ASSERT_EQ(ra[i], rb[i]) << "cell " << i;
}

/// A compile-time descriptor Dim contradicting the declared dat throws at
/// descriptor construction (the dist analog of opv::arg's runtime check).
TEST(DistLoop, DimMismatchThrowsAtConstruction) {
  Universe u(2, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  EXPECT_THROW((u.ctx.arg<opv::READ, 3>(u.x, 0, u.e2n)), Error);  // x has dim 2
  EXPECT_THROW((u.ctx.arg<opv::RW, 4>(u.q)), Error);              // q has dim 1
  EXPECT_NO_THROW((u.ctx.arg<opv::READ, 2>(u.x, 0, u.e2n)));
  EXPECT_NO_THROW((u.ctx.arg<opv::RW, 1>(u.q)));
}

// ---- phased execution: interior/boundary classification ---------------------

/// Per rank: interior ∪ boundary covers every executed element exactly once
/// (owned ∪ execute halo for INC loops), the two are disjoint, interior
/// elements reach only owned slots through every indirect map, and every
/// owned element that maps into a halo slot is boundary.
TEST(DistLoopPhases, ClassificationPartitionsExecutedElements) {
  Universe u(4, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  dist::Loop edge(u.ctx, GatherQ{}, "cls_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  const ExchangePlan& plan = edge.exchange_plan();
  ASSERT_TRUE(plan.can_overlap);
  ASSERT_EQ(plan.phases.size(), 4u);
  EXPECT_GT(edge.interior_fraction(), 0.0);
  EXPECT_LT(edge.interior_fraction(), 1.0);

  const Partitioned& part = u.ctx.partitioned();
  for (int r = 0; r < 4; ++r) {
    const Set& edges = part.set(r, u.edges);
    const Map& e2c = part.map(r, u.e2c);
    const idx_t cells_owned = part.set(r, u.cells).size();
    const RankPhases& ph = plan.phases[r];

    // Union = [0, exec_size), disjoint (each element seen exactly once).
    std::vector<int> seen(static_cast<std::size_t>(edges.exec_size()), 0);
    for (idx_t e : ph.interior) {
      ASSERT_LT(e, edges.size()) << "interior must be owned";
      ++seen[e];
    }
    for (idx_t e : ph.boundary) {
      ASSERT_LT(e, edges.exec_size());
      ++seen[e];
    }
    for (idx_t e = 0; e < edges.exec_size(); ++e)
      ASSERT_EQ(seen[e], 1) << "rank " << r << " element " << e;

    // Interior never reaches a halo slot; hence boundary ⊇ halo-mappers.
    for (idx_t e : ph.interior)
      for (int k = 0; k < 2; ++k)
        ASSERT_LT(e2c(e, k), cells_owned)
            << "rank " << r << " interior edge " << e << " maps into the halo";
  }
}

/// A loop with no indirect arguments has nothing to exchange: no phases,
/// always the blocking path.
TEST(DistLoopPhases, DirectLoopIsNotPhased) {
  Universe u(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  dist::Loop cell(u.ctx, BumpQ{}, "cls_cell", u.cells, u.ctx.arg<opv::RW>(u.q),
                  u.ctx.arg<opv::READ>(u.acc));
  EXPECT_FALSE(cell.exchange_plan().can_overlap);
  EXPECT_TRUE(cell.exchange_plan().phases.empty());
  EXPECT_EQ(cell.effective_mode(), ExchangeMode::Blocking);
}

// ---- phased execution: begin/wait pairing -----------------------------------

/// Counts the non-blocking calls and asserts the pairing contract: every
/// begin() is matched by exactly one wait() (and wait never fires without a
/// begin). That the wait lands BEFORE boundary execution is covered by the
/// bitwise Overlap==Phased tests below — a boundary element reading halo
/// values mid-flight would diverge.
struct PairingExchanger final : Exchanger {
  MemcpyExchanger inner;
  int begins = 0, waits = 0, blocking_calls = 0;
  std::vector<int> pending;
  void begin(const Partitioned&, const DatHaloView& view) override {
    ++begins;
    EXPECT_EQ(std::count(pending.begin(), pending.end(), view.dat), 0)
        << "double begin for dat " << view.dat;
    pending.push_back(view.dat);
  }
  std::int64_t wait(const Partitioned& part, const DatHaloView& view) override {
    ++waits;
    EXPECT_EQ(std::count(pending.begin(), pending.end(), view.dat), 1)
        << "wait without begin for dat " << view.dat;
    pending.erase(std::find(pending.begin(), pending.end(), view.dat));
    return inner.exchange(part, view);
  }
  std::int64_t exchange(const Partitioned& part, const DatHaloView& view) override {
    ++blocking_calls;
    return inner.exchange(part, view);
  }
  [[nodiscard]] const char* name() const override { return "pairing"; }
};

TEST(DistLoopPhases, EveryBeginPairedWithExactlyOneWait) {
  Universe u(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto pairing = std::make_unique<PairingExchanger>();
  PairingExchanger* p = pairing.get();
  u.ctx.set_exchanger(std::move(pairing));
  ASSERT_EQ(u.ctx.exchange_mode(), ExchangeMode::Overlap) << "Overlap must be the default";

  dist::Loop edge(u.ctx, GatherQ{}, "pair_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  dist::Loop cell(u.ctx, BumpQ{}, "pair_cell", u.cells, u.ctx.arg<opv::RW>(u.q),
                  u.ctx.arg<opv::READ>(u.acc));
  EXPECT_EQ(edge.effective_mode(), ExchangeMode::Overlap);

  edge.run();  // initial halos fresh: nothing begun
  EXPECT_EQ(p->begins, 0);
  for (int it = 0; it < 3; ++it) {
    cell.run();  // dirties q
    edge.run();  // must begin+wait exactly one dat (q)
  }
  EXPECT_EQ(p->begins, 3);
  EXPECT_EQ(p->waits, 3);
  EXPECT_EQ(p->blocking_calls, 0) << "Overlap mode must use the non-blocking pair";
  EXPECT_TRUE(p->pending.empty()) << "a begin was left unwaited";

  // Phased mode keeps the two-phase schedule but exchanges blockingly.
  u.ctx.set_exchange_mode(ExchangeMode::Phased);
  cell.run();
  edge.run();
  EXPECT_EQ(p->begins, 3) << "Phased mode must not use begin()";
  EXPECT_EQ(p->blocking_calls, 1);
}

// ---- phased execution: bitwise overlapped == blocking -----------------------

/// Overlap and Phased run the same pinned interior/boundary schedule; only
/// the exchange timing differs, so the results must be bitwise identical
/// across rank counts, backends and transports (the §6.5 correctness
/// criterion: overlap must not change what the loops compute).
class DistOverlapEquivP
    : public ::testing::TestWithParam<std::tuple<int, Backend, bool /*staged*/>> {};

TEST_P(DistOverlapEquivP, OverlapBitwiseMatchesBlockingPhased) {
  const auto [nranks, backend, staged] = GetParam();
  const ExecConfig cfg{.backend = backend, .nthreads = backend == Backend::Seq ? 1 : 2};

  auto run_pipeline = [&](ExchangeMode mode, Universe& u) {
    if (staged) u.ctx.set_exchanger(std::make_unique<StagedExchanger>(/*async=*/true));
    u.ctx.set_exchange_mode(mode);
    dist::Loop edge(u.ctx, GatherQ{}, "ovq_edge", u.edges,
                    u.ctx.arg<opv::READ>(u.q, 0, u.e2c), u.ctx.arg<opv::READ>(u.q, 1, u.e2c),
                    u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                    u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
    dist::Loop cell(u.ctx, BumpQ{}, "ovq_cell", u.cells, u.ctx.arg<opv::RW>(u.q),
                    u.ctx.arg<opv::READ>(u.acc));
    for (int it = 0; it < 4; ++it) {
      edge.run();
      cell.run();
    }
  };

  Universe a(nranks, cfg), b(nranks, cfg);
  run_pipeline(ExchangeMode::Phased, a);
  run_pipeline(ExchangeMode::Overlap, b);

  aligned_vector<double> qa, qb, acca, accb;
  a.ctx.fetch(a.q, qa);
  b.ctx.fetch(b.q, qb);
  a.ctx.fetch(a.acc, acca);
  b.ctx.fetch(b.acc, accb);
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) ASSERT_EQ(qa[i], qb[i]) << "cell " << i;
  for (std::size_t i = 0; i < acca.size(); ++i) ASSERT_EQ(acca[i], accb[i]) << "cell " << i;
}

INSTANTIATE_TEST_SUITE_P(
    RanksBackendsTransports, DistOverlapEquivP,
    ::testing::Combine(::testing::Values(1, 3, 6),
                       ::testing::Values(Backend::Seq, Backend::OpenMP, Backend::Simd),
                       ::testing::Bool()));

// ---- phased execution: automatic blocking fallback --------------------------

/// Averages the two cells of an edge in place: an indirect RW, so q is both
/// read stale and written — the transport could observe owner slots
/// mid-write, and the loop must fall back to the blocking path.
struct AvgK {
  template <class T>
  void operator()(T* ql, T* qr) const {
    const T m = (ql[0] + qr[0]) * T(0.5);
    ql[0] = m;
    qr[0] = m;
  }
};

TEST(DistLoopPhases, ReadWriteOverlapFallsBackToBlocking) {
  Universe u(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto pairing = std::make_unique<PairingExchanger>();
  PairingExchanger* p = pairing.get();
  u.ctx.set_exchanger(std::move(pairing));

  dist::Loop avg(u.ctx, AvgK{}, "rw_edge", u.edges, u.ctx.arg<opv::RW>(u.q, 0, u.e2c),
                 u.ctx.arg<opv::RW>(u.q, 1, u.e2c));
  EXPECT_FALSE(avg.exchange_plan().can_overlap)
      << "a dat both read stale and written cannot overlap";
  EXPECT_TRUE(avg.exchange_plan().phases.empty());
  EXPECT_EQ(avg.effective_mode(), ExchangeMode::Blocking);

  avg.run();  // writes q -> dirty
  avg.run();  // must blocking-exchange before the run
  EXPECT_EQ(p->begins, 0) << "fallback loops must never use the non-blocking pair";
  EXPECT_GE(p->blocking_calls, 1);
}

// ---- phased execution: exchange accounting ----------------------------------

TEST(DistLoopPhases, RecordsExchangeTimeAndValues) {
  StatsRegistry::instance().clear();
  Universe u(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  dist::Loop edge(u.ctx, GatherQ{}, "xch_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                  u.ctx.arg<opv::READ>(u.q, 1, u.e2c), u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                  u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  dist::Loop cell(u.ctx, BumpQ{}, "xch_cell", u.cells, u.ctx.arg<opv::RW>(u.q),
                  u.ctx.arg<opv::READ>(u.acc));
  for (int it = 0; it < 3; ++it) {
    cell.run();
    edge.run();
  }
  const LoopRecord rec = StatsRegistry::instance().get("xch_edge");
  EXPECT_GT(rec.exchanged_values, 0) << "halo traffic must accumulate in the loop's record";
  EXPECT_GT(rec.exchange_seconds, 0.0);
  EXPECT_EQ(rec.exchanged_values, StatsRegistry::instance().get("xch_edge/halo").elements)
      << "the legacy /halo slot and the in-record accounting must agree";

  const std::string table =
      perf::loop_stats_table(StatsRegistry::instance().all()).to_string();
  EXPECT_NE(table.find("exch (s)"), std::string::npos)
      << "the stats table must grow an exchange column when exchange data exists";
  EXPECT_NE(table.find("xch_edge"), std::string::npos);
}

// ---- make_loop: the context-concept handle factory --------------------------

TEST(DistLoop, MakeLoopReturnsRunnableHandle) {
  Universe u(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto edge = u.ctx.make_loop(GatherQ{}, "mk_edge", u.edges, u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                              u.ctx.arg<opv::READ>(u.q, 1, u.e2c),
                              u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                              u.ctx.arg<opv::INC>(u.acc, 1, u.e2c));
  edge.run();
  edge.run();
  EXPECT_EQ(edge.nranks(), 3);
  EXPECT_TRUE(edge.exchange_plan().can_overlap);
}

// ---- construction-time validation -------------------------------------------

TEST(DistLoop, ValidatesArgsAgainstIterationSet) {
  Universe u(2, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  // Direct dat on the wrong set: q lives on cells, loop iterates edges.
  EXPECT_THROW(dist::Loop(u.ctx, BumpQ{}, "bad_direct", u.edges, u.ctx.arg<opv::RW>(u.q),
                          u.ctx.arg<opv::READ>(u.acc)),
               Error);
  // Indirect arg through a map that is not FROM the iteration set.
  EXPECT_THROW(dist::Loop(u.ctx, GatherQ{}, "bad_map", u.cells,
                          u.ctx.arg<opv::READ>(u.q, 0, u.e2c),
                          u.ctx.arg<opv::READ>(u.q, 1, u.e2c),
                          u.ctx.arg<opv::INC>(u.acc, 0, u.e2c),
                          u.ctx.arg<opv::INC>(u.acc, 1, u.e2c)),
               Error);
}

}  // namespace
