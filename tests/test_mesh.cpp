// Mesh substrate tests: generator invariants (set counts, Euler
// characteristic, map validity), validation, statistics, inverse maps,
// renumbering, perturbation/shuffling, and I/O roundtrips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "mesh/mesh.hpp"

namespace {

using namespace opv;
using namespace opv::mesh;

// Euler characteristic V - E + F for a planar mesh with one outer face = 2;
// for a torus (periodic) = 0. E counts interior + boundary edges; F counts
// cells + (1 outer face for planar meshes).
long euler(const UnstructuredMesh& m, bool planar) {
  return long(m.nnodes) - long(m.nedges + m.nbedges) + long(m.ncells) + (planar ? 1 : 0);
}

class QuadBoxP : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(QuadBoxP, CountsAndInvariants) {
  const auto [ni, nj] = GetParam();
  auto m = make_quad_box(ni, nj);
  EXPECT_EQ(m.ncells, ni * nj);
  EXPECT_EQ(m.nnodes, (ni + 1) * (nj + 1));
  EXPECT_EQ(m.nedges, (ni - 1) * nj + ni * (nj - 1));
  EXPECT_EQ(m.nbedges, 2 * ni + 2 * nj);
  EXPECT_EQ(euler(m, true), 2) << "Euler characteristic";
  ASSERT_NO_THROW(m.validate());
}
INSTANTIATE_TEST_SUITE_P(Sizes, QuadBoxP,
                         ::testing::Values(std::pair<idx_t, idx_t>{1, 1},
                                           std::pair<idx_t, idx_t>{2, 3},
                                           std::pair<idx_t, idx_t>{7, 5},
                                           std::pair<idx_t, idx_t>{16, 16},
                                           std::pair<idx_t, idx_t>{33, 9}));

class TriBoxP : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(TriBoxP, CountsAndInvariants) {
  const auto [ni, nj] = GetParam();
  auto m = make_tri_box(ni, nj);
  EXPECT_EQ(m.ncells, 2 * ni * nj);
  EXPECT_EQ(m.nnodes, (ni + 1) * (nj + 1));
  EXPECT_EQ(m.nedges, ni * nj + ni * (nj - 1) + (ni - 1) * nj);
  EXPECT_EQ(m.nbedges, 2 * ni + 2 * nj);
  EXPECT_EQ(euler(m, true), 2);
  ASSERT_NO_THROW(m.validate());
}
INSTANTIATE_TEST_SUITE_P(Sizes, TriBoxP,
                         ::testing::Values(std::pair<idx_t, idx_t>{1, 1},
                                           std::pair<idx_t, idx_t>{4, 4},
                                           std::pair<idx_t, idx_t>{9, 13},
                                           std::pair<idx_t, idx_t>{25, 10}));

class TriPeriodicP : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(TriPeriodicP, CountsAndTorusTopology) {
  const auto [ni, nj] = GetParam();
  auto m = make_tri_periodic(ni, nj, 2.0, 3.0);
  EXPECT_EQ(m.ncells, 2 * ni * nj);
  EXPECT_EQ(m.nnodes, ni * nj);
  EXPECT_EQ(m.nedges, 3 * ni * nj);
  EXPECT_EQ(m.nbedges, 0);
  EXPECT_EQ(euler(m, false), 0) << "torus Euler characteristic";
  ASSERT_NO_THROW(m.validate());
  // Every cell has exactly 3 incident edges.
  EXPECT_NO_THROW(build_cell_edges_flat3(m));
}
INSTANTIATE_TEST_SUITE_P(Sizes, TriPeriodicP,
                         ::testing::Values(std::pair<idx_t, idx_t>{3, 3},
                                           std::pair<idx_t, idx_t>{4, 7},
                                           std::pair<idx_t, idx_t>{16, 16},
                                           std::pair<idx_t, idx_t>{31, 8}));

class OMeshP : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(OMeshP, CountsAndAnnulusTopology) {
  const auto [ni, nj] = GetParam();
  auto m = make_airfoil_omesh(ni, nj);
  EXPECT_EQ(m.ncells, ni * nj);
  EXPECT_EQ(m.nnodes, ni * (nj + 1));
  EXPECT_EQ(m.nedges, ni * nj + ni * (nj - 1));
  EXPECT_EQ(m.nbedges, 2 * ni);
  // Annulus: V - E + F = 0 (one hole).
  EXPECT_EQ(euler(m, true), 1);
  ASSERT_NO_THROW(m.validate());
}
INSTANTIATE_TEST_SUITE_P(Sizes, OMeshP,
                         ::testing::Values(std::pair<idx_t, idx_t>{3, 2},
                                           std::pair<idx_t, idx_t>{12, 6},
                                           std::pair<idx_t, idx_t>{60, 30},
                                           std::pair<idx_t, idx_t>{120, 60}));

TEST(OMesh, PaperSizedMeshMatchesPaperScale) {
  // The 1200x600 O-mesh stands in for the paper's 720k-cell Airfoil mesh.
  auto m = make_airfoil_omesh(1200, 600);
  EXPECT_EQ(m.ncells, 720000);
  EXPECT_NEAR(double(m.nnodes), 721801.0, 1000.0);
  EXPECT_NEAR(double(m.nedges), 1438600.0, 1000.0);
}

TEST(OMesh, BoundaryRingsHaveCorrectConditions) {
  auto m = make_airfoil_omesh(16, 4);
  int walls = 0, far = 0;
  for (idx_t b = 0; b < m.nbedges; ++b) {
    if (m.bedge_bound[b] == kBoundWall) ++walls;
    else if (m.bedge_bound[b] == kBoundFarfield) ++far;
  }
  EXPECT_EQ(walls, 16);
  EXPECT_EQ(far, 16);
}

TEST(OMesh, GeometryIsFiniteAndDistinct) {
  auto m = make_airfoil_omesh(64, 16);
  for (double v : m.node_xy) EXPECT_TRUE(std::isfinite(v));
  // Wall ring should be much smaller than far field ring.
  double rmax_wall = 0, rmin_far = 1e300;
  for (idx_t i = 0; i < 64; ++i) {
    rmax_wall = std::max(rmax_wall, std::hypot(m.node_xy[2 * i], m.node_xy[2 * i + 1]));
    const std::size_t n = std::size_t(16) * 64 + i;
    rmin_far = std::min(rmin_far, std::hypot(m.node_xy[2 * n], m.node_xy[2 * n + 1]));
  }
  EXPECT_GT(rmin_far, 5 * rmax_wall);
}

TEST(MeshValidate, CatchesBrokenMaps) {
  auto m = make_quad_box(4, 4);
  auto bad = m;
  bad.edge_cells[3] = m.ncells + 5;  // out of range
  EXPECT_THROW(bad.validate(), Error);
  bad = m;
  bad.edge_nodes[1] = bad.edge_nodes[0];  // repeated node
  EXPECT_THROW(bad.validate(), Error);
  bad = m;
  bad.edge_cells[1] = bad.edge_cells[0];  // repeated cell
  EXPECT_THROW(bad.validate(), Error);
  bad = m;
  bad.bedge_bound[0] = 99;  // unknown bc
  EXPECT_THROW(bad.validate(), Error);
}

TEST(MeshStats, QuadBoxInteriorDegree) {
  auto m = make_quad_box(10, 10);
  const auto s = compute_stats(m);
  EXPECT_EQ(s.max_edges_per_cell, 4);
  EXPECT_EQ(s.isolated_cells, 0);
  EXPECT_GT(s.avg_edges_per_cell, 3.0);
  EXPECT_LE(s.avg_edges_per_cell, 4.0);
}

TEST(CellEdges, InverseOfEdgeCells) {
  auto m = make_tri_periodic(5, 6);
  const auto ce = build_cell_edges(m);
  // Every edge appears exactly twice (once per adjacent cell).
  EXPECT_EQ(ce.edges.size(), std::size_t(2 * m.nedges));
  for (idx_t c = 0; c < m.ncells; ++c) {
    for (idx_t k = ce.offset[c]; k < ce.offset[c + 1]; ++k) {
      const idx_t e = ce.edges[k];
      EXPECT_TRUE(m.edge_cells[2 * e] == c || m.edge_cells[2 * e + 1] == c)
          << "cell " << c << " lists edge " << e << " that does not touch it";
    }
  }
}

TEST(CellEdges, Flat3RequiresClosedMesh) {
  auto box = make_tri_box(4, 4);
  EXPECT_THROW(build_cell_edges_flat3(box), Error);  // boundary cells have <3
  auto quad = make_quad_box(4, 4);
  EXPECT_THROW(build_cell_edges_flat3(quad), Error);  // not a tri mesh
}

TEST(Perturb, PreservesTopologyChangesGeometry) {
  auto m = make_quad_box(8, 8);
  const auto before = m.node_xy;
  perturb_nodes(m, 0.01, 7);
  EXPECT_NO_THROW(m.validate());
  double maxd = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    maxd = std::max(maxd, std::abs(before[i] - m.node_xy[i]));
  EXPECT_GT(maxd, 0.0);
  EXPECT_LE(maxd, 0.01 + 1e-12);
}

TEST(ShuffleEdges, IsAPermutationAndStaysValid) {
  auto m = make_quad_box(9, 7);
  const auto before_edges = m.edge_cells;
  const auto p = shuffle_edges(m, 3);
  EXPECT_NO_THROW(m.validate());
  // p is a permutation.
  std::set<idx_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), std::size_t(m.nedges));
  // Each new edge matches the old edge it came from.
  for (idx_t e = 0; e < m.nedges; ++e) {
    EXPECT_EQ(m.edge_cells[2 * e], before_edges[2 * p[e]]);
    EXPECT_EQ(m.edge_cells[2 * e + 1], before_edges[2 * p[e] + 1]);
  }
}

TEST(SortEdges, ImprovesOrGivesMonotoneMinCell) {
  auto m = make_quad_box(9, 7);
  shuffle_edges(m, 5);
  sort_edges_by_cell(m);
  EXPECT_NO_THROW(m.validate());
  for (idx_t e = 1; e < m.nedges; ++e) {
    const idx_t prev = std::min(m.edge_cells[2 * (e - 1)], m.edge_cells[2 * (e - 1) + 1]);
    const idx_t cur = std::min(m.edge_cells[2 * e], m.edge_cells[2 * e + 1]);
    EXPECT_LE(prev, cur);
  }
}

TEST(Rcm, PermutationValidAndReducesBandwidth) {
  auto m = make_quad_box(20, 20);
  shuffle_edges(m, 11);
  // Scramble cell numbering badly first via RCM on a shuffled mesh baseline.
  const auto before = compute_stats(m);
  auto perm = renumber_cells_rcm(m);
  EXPECT_NO_THROW(m.validate());
  std::set<idx_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), std::size_t(m.ncells));
  const auto after = compute_stats(m);
  EXPECT_LE(after.edge_bandwidth, before.edge_bandwidth * 2)
      << "RCM should not blow up bandwidth";
}

// Regression for the FV orientation convention (a violation makes the
// Airfoil central flux anti-dissipative and the solver blow up): for every
// interior edge, the normal (dy,-dx) built from x(n0)-x(n1) must point from
// the edge's first cell toward its second; boundary normals point outward.
class EdgeOrientationP : public ::testing::TestWithParam<int> {
 public:
  static UnstructuredMesh make(int kind) {
    switch (kind) {
      case 0: return make_quad_box(9, 7);
      case 1: return make_tri_box(8, 5);
      case 2: return make_tri_periodic(6, 6, 2.0, 3.0);
      default: return make_airfoil_omesh(48, 12);
    }
  }
};

TEST_P(EdgeOrientationP, NormalsPointFromFirstToSecondCell) {
  const auto m = EdgeOrientationP::make(GetParam());
  auto centroid = [&](idx_t c, double& cx, double& cy) {
    const int k = m.nodes_per_cell;
    const idx_t n0 = m.cell_nodes[std::size_t(c) * k];
    const double x0 = m.node_xy[2 * std::size_t(n0)], y0 = m.node_xy[2 * std::size_t(n0) + 1];
    double sx = 0, sy = 0;
    for (int j = 0; j < k; ++j) {
      const idx_t n = m.cell_nodes[std::size_t(c) * k + j];
      sx += m.wrap_dx(m.node_xy[2 * std::size_t(n)] - x0);
      sy += m.wrap_dy(m.node_xy[2 * std::size_t(n) + 1] - y0);
    }
    cx = x0 + sx / k;
    cy = y0 + sy / k;
  };
  for (idx_t e = 0; e < m.nedges; ++e) {
    const idx_t n0 = m.edge_nodes[2 * e], n1 = m.edge_nodes[2 * e + 1];
    const double dx = m.wrap_dx(m.node_xy[2 * std::size_t(n0)] - m.node_xy[2 * std::size_t(n1)]);
    const double dy = m.wrap_dy(m.node_xy[2 * std::size_t(n0) + 1] -
                                m.node_xy[2 * std::size_t(n1) + 1]);
    double c0x, c0y, c1x, c1y;
    centroid(m.edge_cells[2 * e], c0x, c0y);
    centroid(m.edge_cells[2 * e + 1], c1x, c1y);
    const double dot = dy * m.wrap_dx(c1x - c0x) - dx * m.wrap_dy(c1y - c0y);
    ASSERT_GT(dot, 0.0) << m.name << " edge " << e << " normal points the wrong way";
  }
  for (idx_t b = 0; b < m.nbedges; ++b) {
    const idx_t n0 = m.bedge_nodes[2 * b], n1 = m.bedge_nodes[2 * b + 1];
    const double dx = m.wrap_dx(m.node_xy[2 * std::size_t(n0)] - m.node_xy[2 * std::size_t(n1)]);
    const double dy = m.wrap_dy(m.node_xy[2 * std::size_t(n0) + 1] -
                                m.node_xy[2 * std::size_t(n1) + 1]);
    const double mx = m.node_xy[2 * std::size_t(n0)] - 0.5 * dx;
    const double my = m.node_xy[2 * std::size_t(n0) + 1] - 0.5 * dy;
    double cx, cy;
    centroid(m.bedge_cell[b], cx, cy);
    const double dot = dy * m.wrap_dx(mx - cx) - dx * m.wrap_dy(my - cy);
    ASSERT_GT(dot, 0.0) << m.name << " bedge " << b << " normal points inward";
  }
}
INSTANTIATE_TEST_SUITE_P(AllGenerators, EdgeOrientationP, ::testing::Values(0, 1, 2, 3));

TEST(MinImage, WrapsAcrossPeriod) {
  auto m = make_tri_periodic(4, 4, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(m.wrap_dx(6.0), -4.0);
  EXPECT_DOUBLE_EQ(m.wrap_dx(-6.0), 4.0);
  EXPECT_DOUBLE_EQ(m.wrap_dx(4.0), 4.0);
  EXPECT_DOUBLE_EQ(m.wrap_dy(11.0), -9.0);
  EXPECT_DOUBLE_EQ(m.wrap_dy(9.0), 9.0);
  auto box = make_quad_box(2, 2);
  EXPECT_DOUBLE_EQ(box.wrap_dx(100.0), 100.0);  // non-periodic: identity
}

TEST(MeshIO, BinaryRoundtrip) {
  auto m = make_airfoil_omesh(24, 8);
  perturb_nodes(m, 0.001, 9);
  const std::string path = std::filesystem::temp_directory_path() / "opv_mesh_test.opvm";
  write_mesh(m, path);
  const auto r = read_mesh(path);
  EXPECT_EQ(r.name, m.name);
  EXPECT_EQ(r.ncells, m.ncells);
  EXPECT_EQ(r.nnodes, m.nnodes);
  EXPECT_EQ(r.nedges, m.nedges);
  EXPECT_EQ(r.nbedges, m.nbedges);
  EXPECT_EQ(r.node_xy, m.node_xy);
  EXPECT_EQ(r.cell_nodes, m.cell_nodes);
  EXPECT_EQ(r.edge_nodes, m.edge_nodes);
  EXPECT_EQ(r.edge_cells, m.edge_cells);
  EXPECT_EQ(r.bedge_bound, m.bedge_bound);
  std::filesystem::remove(path);
}

TEST(MeshIO, RejectsGarbageFiles) {
  const std::string path = std::filesystem::temp_directory_path() / "opv_mesh_garbage.opvm";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a mesh", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_mesh(path), Error);
  EXPECT_THROW(read_mesh("/nonexistent/path/x.opvm"), Error);
  std::filesystem::remove(path);
}

TEST(Footprint, GrowsWithMesh) {
  auto s = make_quad_box(10, 10);
  auto l = make_quad_box(40, 40);
  EXPECT_GT(l.footprint_bytes(), 10 * s.footprint_bytes());
}

}  // namespace
