// par_loop engine tests: cross-backend equivalence for every access-pattern
// combination (direct/indirect x READ/WRITE/RW/INC, global INC/MIN/MAX,
// integer datasets), all vector widths, all coloring strategies, ragged
// sizes, and the engine's argument-validation behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/context.hpp"
#include "core/op2.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

// ---- kernels covering distinct access patterns ------------------------------

struct IndirectIncKernel {  // res_calc shaped
  template <class T>
  void operator()(const T* x1, const T* x2, const T* w, T* c1, T* c2, T* gsum) const {
    OPV_SIMD_MATH_USING;
    const T d = sqrt(abs((x1[0] - x2[0]) * (x1[0] - x2[0]) + T(0.01))) * w[0];
    c1[0] += d;
    c1[1] -= d * T(0.25);
    c2[0] -= d;
    c2[1] += d * T(0.25);
    gsum[0] += d;
  }
};

struct DirectKernel {  // update shaped: READ, WRITE, RW, gbl MIN/MAX
  template <class T>
  void operator()(const T* a, T* b, T* c, T* gmin, T* gmax) const {
    OPV_SIMD_MATH_USING;
    b[0] = select(a[0] > T(0.5), a[0] * a[0], -a[0]);
    b[1] = min(a[0], a[1]);
    c[0] = c[0] + T(1.0);  // RW
    gmin[0] = min(gmin[0], a[0]);
    gmax[0] = max(gmax[0], a[1]);
  }
};

struct GatherOnlyKernel {  // adt_calc shaped: indirect READ, direct WRITE
  template <class T>
  void operator()(const T* n1, const T* n2, const T* n3, T* out) const {
    OPV_SIMD_MATH_USING;
    out[0] = sqrt(abs(n1[0] * n2[1] - n3[0]) + T(1.0));
  }
};

struct IntReadKernel {  // bres_calc shaped: int dataset drives a select
  template <class T, class TI>
  void operator()(const T* q, T* r, const TI* flag) const {
    OPV_SIMD_MATH_USING;
    const T f = to_real<T>(flag[0]);
    r[0] += select(f == T(2.0), q[0] * T(2.0), -q[0]);
  }
};

struct GblReadKernel {  // uses a broadcast global (qinf-shaped)
  template <class T>
  void operator()(const T* a, T* b, const T* coef) const {
    b[0] = a[0] * coef[0] + coef[1];
  }
};

// ---- fixture -----------------------------------------------------------------

struct Fixture {
  mesh::UnstructuredMesh m;
  Set nodes, cells, edges;
  Map e2n, e2c, c2n;
  Dat<double> x, w, acc, direct_a, direct_b, direct_c, adt;
  Dat<std::int32_t> flag;

  explicit Fixture(idx_t ni = 19, idx_t nj = 13)
      : m(mesh::make_quad_box(ni, nj)),
        nodes("nodes", m.nnodes),
        cells("cells", m.ncells),
        edges("edges", m.nedges),
        e2n("e2n", edges, nodes, 2, m.edge_nodes),
        e2c("e2c", edges, cells, 2, m.edge_cells),
        c2n("c2n", cells, nodes, 4, m.cell_nodes),
        x("x", nodes, 2, [this] {
          aligned_vector<double> v(std::size_t(m.nnodes) * 2);
          for (std::size_t i = 0; i < v.size(); ++i) v[i] = m.node_xy[i];
          return v;
        }()),
        w("w", edges, 1),
        acc("acc", cells, 2),
        direct_a("da", cells, 2),
        direct_b("db", cells, 2),
        direct_c("dc", cells, 1),
        adt("adt", cells, 1),
        flag("flag", cells, 1) {
    Rng rng(5);
    for (idx_t e = 0; e < edges.size(); ++e) w.at(e) = rng.uniform(0.1, 1.0);
    for (idx_t c = 0; c < cells.size(); ++c) {
      direct_a.at(c, 0) = rng.uniform(0.0, 1.0);
      direct_a.at(c, 1) = rng.uniform(-1.0, 1.0);
      flag.at(c) = rng.next_below(2) ? 2 : 1;
    }
  }
};

struct Result {
  aligned_vector<double> acc, b, c, adtv;
  double gsum = 0, gmin = 0, gmax = 0;
};

Result run_all(Fixture& f, const ExecConfig& cfg) {
  f.acc.fill(0.0);
  f.direct_b.fill(0.0);
  f.direct_c.fill(1.0);
  f.adt.fill(0.0);
  Result r;
  r.gsum = 0.0;
  r.gmin = 1e300;
  r.gmax = -1e300;

  par_loop(IndirectIncKernel{}, "t_inc", f.edges, cfg, arg(f.x, 0, f.e2n, Access::READ),
           arg(f.x, 1, f.e2n, Access::READ), arg(f.w, Access::READ),
           arg(f.acc, 0, f.e2c, Access::INC), arg(f.acc, 1, f.e2c, Access::INC),
           arg_gbl(&r.gsum, 1, Access::INC));

  par_loop(DirectKernel{}, "t_direct", f.cells, cfg, arg(f.direct_a, Access::READ),
           arg(f.direct_b, Access::WRITE), arg(f.direct_c, Access::RW),
           arg_gbl(&r.gmin, 1, Access::MIN), arg_gbl(&r.gmax, 1, Access::MAX));

  par_loop(GatherOnlyKernel{}, "t_gather", f.cells, cfg, arg(f.x, 0, f.c2n, Access::READ),
           arg(f.x, 1, f.c2n, Access::READ), arg(f.x, 2, f.c2n, Access::READ),
           arg(f.adt, Access::WRITE));

  par_loop(IntReadKernel{}, "t_int", f.cells, cfg, arg(f.direct_a, Access::READ),
           arg(f.acc, Access::INC), arg(f.flag, Access::READ));

  double coef[2] = {2.0, 0.5};
  par_loop(GblReadKernel{}, "t_gblread", f.cells, cfg, arg(f.direct_a, Access::READ),
           arg(f.direct_b, Access::RW), arg_gbl(coef, 2, Access::READ));

  r.acc.assign(f.acc.data(), f.acc.data() + f.acc.size());
  r.b.assign(f.direct_b.data(), f.direct_b.data() + f.direct_b.size());
  r.c.assign(f.direct_c.data(), f.direct_c.data() + f.direct_c.size());
  r.adtv.assign(f.adt.data(), f.adt.data() + f.adt.size());
  return r;
}

void expect_close(const Result& a, const Result& b, double tol) {
  ASSERT_EQ(a.acc.size(), b.acc.size());
  for (std::size_t i = 0; i < a.acc.size(); ++i)
    ASSERT_NEAR(a.acc[i], b.acc[i], tol * (std::abs(a.acc[i]) + 1)) << "acc[" << i << "]";
  for (std::size_t i = 0; i < a.b.size(); ++i)
    ASSERT_NEAR(a.b[i], b.b[i], tol * (std::abs(a.b[i]) + 1)) << "b[" << i << "]";
  for (std::size_t i = 0; i < a.c.size(); ++i) ASSERT_NEAR(a.c[i], b.c[i], tol);
  for (std::size_t i = 0; i < a.adtv.size(); ++i)
    ASSERT_NEAR(a.adtv[i], b.adtv[i], tol * (std::abs(a.adtv[i]) + 1));
  EXPECT_NEAR(a.gsum, b.gsum, tol * (std::abs(a.gsum) + 1));
  EXPECT_NEAR(a.gmin, b.gmin, tol);
  EXPECT_NEAR(a.gmax, b.gmax, tol);
}

// ---- the big cross-backend sweep ---------------------------------------------

struct NamedConfig {
  std::string name;
  ExecConfig cfg;
};

std::vector<NamedConfig> sweep_configs() {
  std::vector<NamedConfig> out;
  out.push_back({"openmp", {.backend = Backend::OpenMP}});
  out.push_back({"openmp_t3", {.backend = Backend::OpenMP, .nthreads = 3}});
  out.push_back({"autovec", {.backend = Backend::AutoVec}});
  out.push_back(
      {"autovec_fp", {.backend = Backend::AutoVec, .coloring = ColoringStrategy::FullPermute}});
  for (int w : {4, 8, 16}) {
    out.push_back({"simd_w" + std::to_string(w),
                   {.backend = Backend::Simd, .simd_width = w}});
    out.push_back({"simd_fp_w" + std::to_string(w),
                   {.backend = Backend::Simd,
                    .coloring = ColoringStrategy::FullPermute,
                    .simd_width = w}});
    out.push_back({"simd_bp_w" + std::to_string(w),
                   {.backend = Backend::Simd,
                    .coloring = ColoringStrategy::BlockPermute,
                    .simd_width = w}});
    out.push_back({"simt_w" + std::to_string(w),
                   {.backend = Backend::Simt, .simd_width = w}});
  }
  out.push_back({"simd_block64",
                 {.backend = Backend::Simd, .simd_width = 8, .block_size = 64}});
  out.push_back({"simt_block48x", {.backend = Backend::Simt, .simd_width = 8, .block_size = 48}});
  return out;
}

class BackendSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackendSweep, MatchesSequentialReference) {
  Fixture f;
  const Result ref = run_all(f, {.backend = Backend::Seq});
  const auto cfgs = sweep_configs();
  const auto& nc = cfgs[GetParam()];
  SCOPED_TRACE(nc.name);
  const Result got = run_all(f, nc.cfg);
  expect_close(ref, got, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, BackendSweep,
                         ::testing::Range(0, static_cast<int>(sweep_configs().size())),
                         [](const auto& info) { return sweep_configs()[info.param].name; });

// ---- ragged / edge-case sizes ------------------------------------------------

class RaggedSizes : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(RaggedSizes, VectorTailsAreCorrect) {
  const auto [ni, nj] = GetParam();
  Fixture f(ni, nj);
  const Result ref = run_all(f, {.backend = Backend::Seq});
  for (int w : {4, 8}) {
    const Result got = run_all(f, {.backend = Backend::Simd, .simd_width = w});
    SCOPED_TRACE("w=" + std::to_string(w));
    expect_close(ref, got, 1e-9);
    const Result simt = run_all(f, {.backend = Backend::Simt, .simd_width = w});
    expect_close(ref, simt, 1e-9);
  }
}

// Sizes chosen so edge/cell counts are NOT multiples of any vector width.
INSTANTIATE_TEST_SUITE_P(Sizes, RaggedSizes,
                         ::testing::Values(std::pair<idx_t, idx_t>{1, 1},
                                           std::pair<idx_t, idx_t>{3, 1},
                                           std::pair<idx_t, idx_t>{5, 3},
                                           std::pair<idx_t, idx_t>{7, 7},
                                           std::pair<idx_t, idx_t>{13, 3},
                                           std::pair<idx_t, idx_t>{17, 11}));

// ---- float precision ----------------------------------------------------------

TEST(FloatLoops, VectorizedMatchesSeq) {
  auto m = mesh::make_quad_box(17, 9);
  Set cells("cells", m.ncells), edges("edges", m.nedges);
  Map e2c("e2c", edges, cells, 2, m.edge_cells);
  Dat<float> q("q", cells, 1), r("r", cells, 1), w("w", edges, 1);
  Rng rng(8);
  for (idx_t c = 0; c < cells.size(); ++c) q.at(c) = float(rng.uniform(0.5, 2.0));
  w.fill(0.5f);

  auto edge_k = [](const auto* ql, const auto* qr, const auto* ww, auto* rl, auto* rr) {
    OPV_SIMD_MATH_USING;
    const auto d = sqrt(ql[0] * qr[0]) * ww[0];
    rl[0] += d;
    rr[0] -= d;
  };
  auto run = [&](ExecConfig cfg) {
    r.fill(0.0f);
    par_loop(edge_k, "f_edge", edges, cfg, arg(q, 0, e2c, Access::READ),
             arg(q, 1, e2c, Access::READ), arg(w, Access::READ), arg(r, 0, e2c, Access::INC),
             arg(r, 1, e2c, Access::INC));
    return aligned_vector<float>(r.data(), r.data() + r.size());
  };
  const auto ref = run({.backend = Backend::Seq});
  for (int w16 : {8, 16}) {
    const auto got = run({.backend = Backend::Simd, .simd_width = w16});
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(ref[i], got[i], 1e-4f * (std::abs(ref[i]) + 1)) << "w=" << w16;
  }
}

// ---- stats & validation --------------------------------------------------------

TEST(LoopStats, RecordsTimeAndElements) {
  Fixture f;
  StatsRegistry::instance().clear();
  run_all(f, {.backend = Backend::OpenMP});
  const auto rec = StatsRegistry::instance().get("t_inc");
  EXPECT_EQ(rec.calls, 1);
  EXPECT_EQ(rec.elements, f.edges.size());
  EXPECT_GT(rec.seconds, 0.0);
  const auto none = StatsRegistry::instance().get("no_such_loop");
  EXPECT_EQ(none.calls, 0);
}

TEST(LoopStats, DisabledWhenRequested) {
  Fixture f;
  StatsRegistry::instance().clear();
  ExecConfig cfg{.backend = Backend::Seq, .collect_stats = false};
  run_all(f, cfg);
  EXPECT_EQ(StatsRegistry::instance().all().size(), 0u);
}

TEST(ArgValidation, RejectsBadArguments) {
  // Data-dependent errors stay runtime throws. Invalid ACCESS/argument
  // combinations (MIN/MAX on a dataset, WRITE/RW on a global) are now
  // compile errors — see the static_asserts in test_loop_handle.cpp.
  Fixture f;
  EXPECT_THROW(arg(f.x, 2, f.e2n, Access::READ), Error);   // idx out of range
  EXPECT_THROW(arg(f.w, 0, f.e2n, Access::READ), Error);   // dat not on target set
  double g = 0;
  EXPECT_THROW(arg_gbl(&g, 0, Access::INC), Error);        // dim < 1
}

TEST(ArgValidation, MapRejectsOutOfRangeEntries) {
  Set a("a", 10), b("b", 5);
  aligned_vector<idx_t> data(10, 0);
  data[3] = 5;  // == b.size, out of range
  EXPECT_THROW(Map("bad", a, b, 1, std::move(data)), Error);
}

TEST(EmptySet, LoopIsNoop) {
  Set empty("empty", 0);
  Dat<double> d("d", empty, 1);
  double g = 0;
  EXPECT_NO_THROW(par_loop([](const auto* x, auto* gg) { gg[0] += x[0]; }, "empty_loop", empty,
                           ExecConfig{.backend = Backend::Simd}, arg(d, Access::READ),
                           arg_gbl(&g, 1, Access::INC)));
  EXPECT_EQ(g, 0.0);
}

TEST(DefaultConfig, TwoArgOverloadUsesIt) {
  Fixture f;
  default_config() = ExecConfig{.backend = Backend::Seq};
  f.adt.fill(0.0);
  par_loop(GatherOnlyKernel{}, "t_gather_default", f.cells, arg(f.x, 0, f.c2n, Access::READ),
           arg(f.x, 1, f.c2n, Access::READ), arg(f.x, 2, f.c2n, Access::READ),
           arg(f.adt, Access::WRITE));
  EXPECT_GT(f.adt.at(0), 0.0);
  default_config() = ExecConfig{};
}

}  // namespace
