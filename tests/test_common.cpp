// Unit tests for the common utilities: aligned storage, RNG determinism,
// running statistics, CLI parsing, formatting, error macros, timers.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/aligned.hpp"
#include "common/cli.hpp"
#include "common/cpu.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

namespace {

using namespace opv;

TEST(Aligned, VectorDataIs64ByteAligned) {
  for (std::size_t n : {1u, 3u, 17u, 1000u, 65536u}) {
    aligned_vector<double> v(n);
    EXPECT_TRUE(is_aligned(v.data())) << "n=" << n;
    aligned_vector<float> f(n);
    EXPECT_TRUE(is_aligned(f.data())) << "n=" << n;
    aligned_vector<std::int32_t> i(n);
    EXPECT_TRUE(is_aligned(i.data())) << "n=" << n;
  }
}

TEST(Aligned, RebindWorksForNestedContainers) {
  // The allocator's explicit rebind must allow vector<vector<...>> style use.
  std::vector<aligned_vector<int>> vv(3, aligned_vector<int>(5, 7));
  EXPECT_EQ(vv[2][4], 7);
}

TEST(Aligned, VectorGrowsAndKeepsAlignment) {
  aligned_vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_TRUE(is_aligned(v.data()));
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_DOUBLE_EQ(v[999], 999.0);
}

TEST(Aligned, IsAlignedChecksModulus) {
  alignas(64) char buf[128];
  EXPECT_TRUE(is_aligned(buf));
  EXPECT_FALSE(is_aligned(buf + 8));
  EXPECT_TRUE(is_aligned(buf + 8, 8));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-2.5, 7.25);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.25);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, RoughlyUniformBuckets) {
  Rng r(1234);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 - kDraws / 50);
    EXPECT_LT(c, kDraws / 10 + kDraws / 50);
  }
}

TEST(Stats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Var of 1..100 (sample): n(n+1)/12 with n=101 -> 841.666...
  EXPECT_NEAR(s.variance(), 841.66666, 1e-3);
}

TEST(Stats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(94u * 1024 * 1024), "94.0 MB");
}

TEST(Stats, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.0025), "2.50 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
}

TEST(Stats, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(2880000), "2,880,000");
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--large", "--iters=42", "--name=abc", "--x=1.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("large"));
  EXPECT_FALSE(cli.has("small"));
  EXPECT_EQ(cli.get_int("iters", 0), 42);
  EXPECT_EQ(cli.get("name", ""), "abc");
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 1.5);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, RejectsBarewords) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), Error);
}

TEST(Cli, UnknownDetection) {
  const char* argv[] = {"prog", "--iters=1", "--typo=2"};
  Cli cli(3, const_cast<char**>(argv));
  const auto unknown = cli.unknown({"iters", "large"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    OPV_REQUIRE(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::strstr(e.what(), "custom message 42"), nullptr);
    EXPECT_NE(std::strstr(e.what(), "1 == 2"), nullptr);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, AccumMergesAndClears) {
  TimeAccum a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds, 3.5);
  EXPECT_EQ(a.calls, 3);
  a.clear();
  EXPECT_EQ(a.calls, 0);
}

TEST(Cpu, DetectsSomethingSane) {
  const CpuFeatures f = detect_cpu_features();
  EXPECT_GE(f.max_double_lanes(), 2);
  EXPECT_GE(f.max_float_lanes(), 4);
  EXPECT_GE(hardware_threads(), 1);
  EXPECT_FALSE(cpu_summary().empty());
}

}  // namespace
