// The resilience layer end to end: CRC32 + checkpoint containers
// (core/snapshot.hpp), layout/renumber-independent context snapshots
// (LocalCtx::snapshot/restore), finiteness guards (core/guard.hpp), the
// recovery scheduler (HealthPolicy retry/backoff/degrade in
// serve/ensemble.cpp), deterministic fault injection at both seams
// (serve/fault.hpp instances, dist/fault.hpp halo transport), the OPVK
// checkpoint file with its corruption corpus, and the kill-and-resume
// workflow gated bitwise for two apps (Volna hazard, Tet3D).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "apps/tet3d/tet3d_instance.hpp"
#include "apps/volna/hazard.hpp"
#include "common/crc32.hpp"
#include "common/worker_pool.hpp"
#include "core/guard.hpp"
#include "core/snapshot.hpp"
#include "dist/context.hpp"
#include "dist/fault.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "serve/ensemble.hpp"
#include "serve/fault.hpp"

using namespace opv;
using namespace opv::serve;

namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

ExecConfig seq_cfg() {
  ExecConfig cfg;
  cfg.backend = Backend::Seq;
  cfg.nthreads = 1;
  return cfg;
}

template <class T>
void expect_bitwise(const aligned_vector<T>& a, const aligned_vector<T>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0) << what;
}

/// A tiny Checkpointable whose whole state is one counter — the scheduler-
/// behavior probe (recovery bookkeeping without app noise). Optionally
/// throws on every step until degrade() is called.
class ToyCounter final : public Checkpointable {
 public:
  explicit ToyCounter(bool throw_until_degraded = false)
      : throw_until_degraded_(throw_until_degraded) {}

  void step() override {
    if (throw_until_degraded_ && !degraded_) throw opv::Error("toy: refusing until degraded");
    ++value_;
  }
  [[nodiscard]] Checkpoint checkpoint() override {
    Checkpoint c;
    ByteWriter w;
    w.put<std::int64_t>(value_);
    c.add("toy/value", w.take());
    return c;
  }
  void restore(const Checkpoint& c) override {
    const auto* s = c.find("toy/value");
    OPV_REQUIRE(s != nullptr, "ToyCounter: missing toy/value section");
    ByteReader r(s->bytes, "toy/value");
    value_ = r.get<std::int64_t>();
  }
  void degrade(int) override { degraded_ = true; }

  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] bool degraded() const { return degraded_; }

 private:
  std::int64_t value_ = 0;
  bool throw_until_degraded_ = false;
  bool degraded_ = false;
};

InstanceFactory toy_factory(bool throw_until_degraded = false) {
  return [throw_until_degraded](int) -> std::unique_ptr<Instance> {
    return std::make_unique<ToyCounter>(throw_until_degraded);
  };
}

// with_fault(..., fault_id) only wraps the targeted instance; the rest come
// straight from the inner factory. Reach the app either way.
template <class T>
T& unwrap(Instance& inst) {
  if (auto* f = dynamic_cast<FaultyInstance*>(&inst)) return dynamic_cast<T&>(f->inner());
  return dynamic_cast<T&>(inst);
}

}  // namespace

// ===== CRC32 + byte plumbing ================================================

TEST(Crc32, MatchesKnownVector) {
  const char* msg = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);  // the canonical CRC-32 check value
  EXPECT_EQ(crc32(msg, 0), 0u);
}

TEST(Crc32, ChainsIncrementally) {
  const char* msg = "123456789";
  const std::uint32_t whole = crc32(msg, 9);
  const std::uint32_t part = crc32(msg + 4, 5, crc32(msg, 4));
  EXPECT_EQ(whole, part);
}

TEST(ByteReader, ThrowsNamedTruncation) {
  std::vector<unsigned char> bytes(4, 0);
  ByteReader r(bytes, "probe");
  (void)r.get<std::uint32_t>();
  try {
    (void)r.get<std::uint32_t>();
    FAIL() << "expected opv::Error";
  } catch (const opv::Error& e) {
    EXPECT_NE(std::string(e.what()).find("probe"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("offset 4"), std::string::npos);
  }
}

// ===== context snapshot/restore =============================================

namespace {

/// Declares the same tiny mesh-shaped context under a given config: cells +
/// edges, a 2-ary map (renumbering seed), and three dats with distinct
/// shapes and value types.
struct SnapCtx {
  LocalCtx ctx;
  LocalCtx::FixedDatHandle<float, 4> cdat{};
  LocalCtx::FixedDatHandle<double, 1> edat{};
  LocalCtx::FixedDatHandle<std::int32_t, 1> idat{};
  aligned_vector<float> cv;
  aligned_vector<double> ev;
  aligned_vector<std::int32_t> iv;

  explicit SnapCtx(const ExecConfig& cfg, bool renumber, Layout layout) : ctx(cfg) {
    const auto m = mesh::make_quad_box(6, 5);
    ctx.set_renumber(renumber);
    ctx.set_default_layout(layout);
    auto cells = ctx.decl_set("cells", m.ncells);
    auto edges = ctx.decl_set("edges", m.nedges);
    aligned_vector<double> coords(static_cast<std::size_t>(m.ncells) * 2);
    for (std::size_t i = 0; i < coords.size(); ++i) coords[i] = static_cast<double>(i % 13);
    ctx.set_partition_coords(cells, coords.data());
    ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
    cv.resize(static_cast<std::size_t>(m.ncells) * 4);
    for (std::size_t i = 0; i < cv.size(); ++i) cv[i] = 0.5f + static_cast<float>(i);
    ev.resize(static_cast<std::size_t>(m.nedges));
    for (std::size_t i = 0; i < ev.size(); ++i) ev[i] = 1.25 * static_cast<double>(i) - 7.0;
    iv.resize(static_cast<std::size_t>(m.nedges));
    for (std::size_t i = 0; i < iv.size(); ++i) iv[i] = static_cast<std::int32_t>(3 * i + 1);
    cdat = ctx.decl_dat<float, 4>("cdat", cells, cv);
    edat = ctx.decl_dat<double, 1>("edat", edges, ev);
    idat = ctx.decl_dat<std::int32_t, 1>("idat", edges, iv);
    ctx.finalize();
  }
};

}  // namespace

TEST(Snapshot, RoundTripsAndPoisonIsUndone) {
  SnapCtx s(seq_cfg(), /*renumber=*/false, Layout::AoS);
  Checkpoint good;
  s.ctx.snapshot(good);
  ASSERT_EQ(good.sections.size(), 3u);
  EXPECT_EQ(good.sections[0].name, "dat/000/cdat");

  // Poison one value through the section-level hook, restore, observe the
  // NaN land in the right dat — then restore the good checkpoint and get
  // the original bytes back bitwise.
  Checkpoint bad = good;
  ASSERT_TRUE(poison_dat_section(bad, "cdat", 7));
  s.ctx.restore(bad);
  aligned_vector<float> cout;
  s.ctx.fetch(s.cdat, cout);
  EXPECT_TRUE(std::isnan(cout[7]));
  EXPECT_FALSE(guard::check_finite(*s.cdat));

  s.ctx.restore(good);
  s.ctx.fetch(s.cdat, cout);
  expect_bitwise(s.cv, cout, "cdat after restore");
  EXPECT_TRUE(guard::check_finite(*s.cdat));

  // The hook refuses out-of-range indices and unknown names.
  EXPECT_THROW(poison_dat_section(bad, "cdat", s.cv.size()), opv::Error);
  EXPECT_FALSE(poison_dat_section(bad, "no_such_dat", 0));
}

TEST(Snapshot, IsLayoutAndRenumberIndependent) {
  // Snapshot a renumbered SoA context, restore into an untouched AoS one
  // (and the reverse): fetch() must return identical declaration-order
  // values either way — the canonical-bytes contract that makes OPVK files
  // portable across execution configs.
  SnapCtx plain(seq_cfg(), /*renumber=*/false, Layout::AoS);
  ExecConfig vec = seq_cfg();
  vec.backend = Backend::AutoVec;
  SnapCtx fancy(vec, /*renumber=*/true, Layout::SoA);

  Checkpoint from_fancy;
  fancy.ctx.snapshot(from_fancy);
  plain.ctx.restore(from_fancy);
  aligned_vector<float> cout;
  aligned_vector<double> eout;
  aligned_vector<std::int32_t> iout;
  plain.ctx.fetch(plain.cdat, cout);
  plain.ctx.fetch(plain.edat, eout);
  plain.ctx.fetch(plain.idat, iout);
  expect_bitwise(plain.cv, cout, "cdat via SoA+renumber snapshot");
  expect_bitwise(plain.ev, eout, "edat via SoA+renumber snapshot");
  expect_bitwise(plain.iv, iout, "idat via SoA+renumber snapshot");

  Checkpoint from_plain;
  plain.ctx.snapshot(from_plain);
  fancy.ctx.restore(from_plain);
  fancy.ctx.fetch(fancy.cdat, cout);
  expect_bitwise(fancy.cv, cout, "cdat restored into SoA+renumber ctx");
}

TEST(Snapshot, RestoreRejectsShapeMismatch) {
  SnapCtx s(seq_cfg(), false, Layout::AoS);
  Checkpoint c;
  s.ctx.snapshot(c);
  // Truncate one section's payload: restore must throw, not misread.
  c.sections[1].bytes.resize(c.sections[1].bytes.size() - 8);
  EXPECT_THROW(s.ctx.restore(c), opv::Error);
  Checkpoint empty;
  EXPECT_THROW(s.ctx.restore(empty), opv::Error);
}

// ===== finiteness guard ======================================================

TEST(Guard, ScansFloatAndDoubleIncludingChunkTails) {
  // 4096-value chunks: plant the bad value past the first chunk boundary to
  // cover the tail path, and at position 0 to cover the head.
  for (const std::size_t at : {std::size_t{0}, std::size_t{4100}}) {
    std::vector<float> f(5000, 1.5f);
    EXPECT_TRUE(guard::all_finite(f.data(), f.size()));
    f[at] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(guard::all_finite(f.data(), f.size()));
    EXPECT_EQ(guard::first_nonfinite(f.data(), f.size()), static_cast<std::ptrdiff_t>(at));
    f[at] = -std::numeric_limits<float>::infinity();
    EXPECT_FALSE(guard::all_finite(f.data(), f.size()));

    std::vector<double> d(5000, -2.25);
    d[at] = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(guard::all_finite(d.data(), d.size()));
  }
  // Denormals and large-but-finite values are healthy.
  std::vector<double> ok = {std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::max(), -0.0, 1e308};
  EXPECT_TRUE(guard::all_finite(ok.data(), ok.size()));
  EXPECT_EQ(guard::first_nonfinite(ok.data(), ok.size()), -1);
}

// ===== WorkQueue priority lane ==============================================

TEST(WorkQueue, UrgentLaneRunsAheadOfFreshWork) {
  WorkQueue q;
  q.push(1);
  q.push(2);
  q.requeue_front(9);
  auto got = q.acquire();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 9);
  q.release(*got, false);
  got = q.acquire();
  EXPECT_EQ(*got, 1);
  q.release(*got, false);
  q.close();
}

TEST(WorkQueue, BurstLimitPreventsNormalLaneStarvation) {
  // burst=2: after two consecutive urgent grabs a normal id must be served
  // even though urgent work is still pending.
  WorkQueue q(/*priority_burst=*/2);
  q.push(7);
  q.requeue_front(1);
  q.requeue_front(2);
  q.requeue_front(3);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    auto got = q.acquire();
    ASSERT_TRUE(got.has_value());
    order.push_back(*got);
    q.release(*got, false);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 7, 3}));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(WorkQueue, ReleaseFrontReentersUrgent) {
  WorkQueue q;
  q.push(1);
  q.push(2);
  auto got = q.acquire();  // 1
  ASSERT_TRUE(got.has_value());
  q.release(*got, /*requeue=*/true, /*front=*/true);
  got = q.acquire();
  EXPECT_EQ(*got, 1);  // retried work beats the still-queued 2
  q.release(*got, false);
  got = q.acquire();
  EXPECT_EQ(*got, 2);
  q.release(*got, false);
}

// ===== recovery scheduling ===================================================

TEST(Resilience, RecoversToyFromInjectedThrow) {
  EnsembleOptions opts;
  opts.name = "resil_toy";
  opts.workers = 2;
  opts.health.checkpoint_every = 3;
  opts.health.retry.max_attempts = 2;
  Ensemble ens(opts);
  InstanceFaultPlan plan;
  plan.kind = InstanceFaultKind::Throw;
  plan.at_step = 5;
  ens.add_instances(3, with_fault(toy_factory(), plan, /*fault_id=*/1));
  const auto rep = ens.run(10);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_GE(rep.retries, 1);
  EXPECT_GE(rep.restores, 1);
  EXPECT_GE(rep.checkpoints, 3);
  // Net progress is exact despite the replay.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(unwrap<ToyCounter>(ens.instance(i)).value(), 10);
    EXPECT_EQ(ens.steps_done(i), 10);
  }
  // Only the targeted instance carries the fault decorator.
  EXPECT_EQ(dynamic_cast<FaultyInstance*>(&ens.instance(0)), nullptr);
  ASSERT_NE(dynamic_cast<FaultyInstance*>(&ens.instance(1)), nullptr);
  const auto& ir = rep.instances[1];
  EXPECT_GE(ir.attempts, 1);
  EXPECT_GE(ir.restores, 1);
  EXPECT_EQ(ir.steps_done, 10);
}

TEST(Resilience, StallTriggersDeadlineRetry) {
  EnsembleOptions opts;
  opts.name = "resil_deadline";
  opts.workers = 1;
  opts.health.checkpoint_every = 2;
  opts.health.step_deadline_seconds = 0.01;
  opts.health.retry.max_attempts = 2;
  Ensemble ens(opts);
  InstanceFaultPlan plan;
  plan.kind = InstanceFaultKind::Stall;
  plan.at_step = 3;
  plan.stall_seconds = 0.05;
  ens.add_instance(with_fault(toy_factory(), plan));
  const auto rep = ens.run(6);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_EQ(rep.completed, 1);
  EXPECT_GE(rep.retries, 1);
  EXPECT_NE(rep.instances[0].error, "FAIL");  // error stays empty on recovery
  EXPECT_TRUE(rep.instances[0].error.empty());
  auto* f = dynamic_cast<FaultyInstance*>(&ens.instance(0));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(dynamic_cast<ToyCounter&>(f->inner()).value(), 6);
}

TEST(Resilience, DegradeHookFiresAfterConfiguredAttempts) {
  EnsembleOptions opts;
  opts.name = "resil_degrade";
  opts.workers = 1;
  opts.health.checkpoint_every = 1;
  opts.health.retry.max_attempts = 3;
  opts.health.degrade_after = 1;
  Ensemble ens(opts);
  ens.add_instance(toy_factory(/*throw_until_degraded=*/true));
  const auto rep = ens.run(4);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_EQ(rep.completed, 1);
  EXPECT_GE(rep.degraded, 1);
  EXPECT_TRUE(dynamic_cast<ToyCounter&>(ens.instance(0)).degraded());
  EXPECT_EQ(dynamic_cast<ToyCounter&>(ens.instance(0)).value(), 4);
}

TEST(Resilience, RetiresAfterMaxAttempts) {
  EnsembleOptions opts;
  opts.name = "resil_retire";
  opts.workers = 1;
  opts.health.checkpoint_every = 1;
  opts.health.retry.max_attempts = 2;
  Ensemble ens(opts);
  InstanceFaultPlan plan;
  plan.kind = InstanceFaultKind::Throw;
  plan.at_step = 1;
  plan.period = 1;  // every invocation fails: unrecoverable
  ens.add_instances(2, with_fault(toy_factory(), plan, /*fault_id=*/0));
  const auto rep = ens.run(5);
  EXPECT_EQ(rep.failed, 1);
  EXPECT_EQ(rep.completed, 1);  // the sibling is untouched
  EXPECT_NE(rep.instances[0].error.find("retired after 2 recovery attempts"),
            std::string::npos);
  EXPECT_TRUE(rep.instances[1].error.empty());
  EXPECT_EQ(rep.retries, 2);
}

TEST(Resilience, AddInstancesRollsBackOnThrowingFactory) {
  Ensemble ens;
  int built = 0;
  EXPECT_THROW(ens.add_instances(4,
                                 [&](int id) -> std::unique_ptr<Instance> {
                                   if (id == 2) throw opv::Error("factory blew up");
                                   ++built;
                                   return std::make_unique<ToyCounter>();
                                 }),
               opv::Error);
  EXPECT_EQ(built, 2);
  EXPECT_EQ(ens.size(), 0);  // no partially-added tail
  ens.add_instances(2, toy_factory());
  EXPECT_EQ(ens.size(), 2);
  EXPECT_EQ(ens.run(3).completed, 2);
}

// ===== app-level recovery: bitwise gates =====================================

TEST(Resilience, VolnaRecoveryIsBitwiseExact) {
  const auto m = mesh::make_tri_periodic(16, 16, 10.0, 10.0);
  const auto sweep = volna::hazard_sweep(2);
  const int steps = 12;

  serve::EnsembleOptions clean_opts;
  clean_opts.name = "volna_clean";
  clean_opts.workers = 2;
  Ensemble clean(clean_opts);
  clean.add_instances(2, volna::hazard_factory(m, sweep, seq_cfg()));
  ASSERT_EQ(clean.run(steps).failed, 0);

  serve::EnsembleOptions opts;
  opts.name = "volna_faulted";
  opts.workers = 2;
  opts.health.checkpoint_every = 4;
  opts.health.check_every = 1;
  opts.health.retry.max_attempts = 2;
  Ensemble faulted(opts);
  InstanceFaultPlan plan;
  plan.kind = InstanceFaultKind::Corrupt;
  plan.at_step = 6;
  plan.dat = "values";
  faulted.add_instances(2, with_fault(volna::hazard_factory(m, sweep, seq_cfg()), plan,
                                      /*fault_id=*/0));
  const auto rep = faulted.run(steps);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_GE(rep.restores, 1);  // the NaN was detected and recovered from

  for (int i = 0; i < 2; ++i) {
    auto& rec = unwrap<volna::HazardInstance>(faulted.instance(i));
    auto& ref = dynamic_cast<volna::HazardInstance&>(clean.instance(i));
    expect_bitwise(ref.state(), rec.state(), "recovered vs clean state");
  }
}

// ===== OPVK file =============================================================

namespace {

EnsembleCheckpoint sample_checkpoint() {
  EnsembleCheckpoint c;
  c.target_steps = 40;
  EnsembleCheckpoint::InstanceState a;
  a.id = 0;
  a.steps_done = 17;
  ByteWriter w;
  for (int i = 0; i < 50; ++i) w.put<double>(0.125 * i);
  a.state.add("dat/000/u", w.take());
  a.state.add("globals/x", {1, 2, 3, 4, 5});
  EnsembleCheckpoint::InstanceState b;
  b.id = 1;
  b.steps_done = 9;
  b.error = "instance blew up";
  c.instances.push_back(std::move(a));
  c.instances.push_back(std::move(b));
  return c;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_read_error(const std::string& path, const char* needle) {
  try {
    (void)mesh::read_checkpoint(path);
    FAIL() << "expected opv::Error mentioning '" << needle << "'";
  } catch (const opv::Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << "error must name a byte offset: " << e.what();
  }
}

}  // namespace

TEST(Opvk, FileRoundTripsExactly) {
  const std::string path = tmp_path("opv_chk_roundtrip.opvk");
  const auto c = sample_checkpoint();
  mesh::write_checkpoint(c, path);
  const auto r = mesh::read_checkpoint(path);
  EXPECT_EQ(r.version, EnsembleCheckpoint::kVersion);
  EXPECT_EQ(r.target_steps, 40);
  ASSERT_EQ(r.instances.size(), 2u);
  EXPECT_EQ(r.instances[0].id, 0);
  EXPECT_EQ(r.instances[0].steps_done, 17);
  EXPECT_TRUE(r.instances[0].error.empty());
  ASSERT_EQ(r.instances[0].state.sections.size(), 2u);
  EXPECT_EQ(r.instances[0].state.sections[0].name, "dat/000/u");
  EXPECT_EQ(r.instances[0].state.sections[0].bytes, c.instances[0].state.sections[0].bytes);
  EXPECT_EQ(r.instances[0].state.sections[1].bytes, c.instances[0].state.sections[1].bytes);
  EXPECT_EQ(r.instances[1].error, "instance blew up");
  EXPECT_TRUE(r.instances[1].state.sections.empty());
  std::remove(path.c_str());
}

TEST(Opvk, CorruptionCorpusFailsLoudly) {
  const std::string good_path = tmp_path("opv_chk_good.opvk");
  mesh::write_checkpoint(sample_checkpoint(), good_path);
  const std::string good = slurp(good_path);
  const std::string path = tmp_path("opv_chk_bad.opvk");

  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  spit(path, bad);
  expect_read_error(path, "bad magic");

  // Unsupported version (the field after the 8-byte magic).
  bad = good;
  bad[8] = char(0x7f);
  spit(path, bad);
  try {
    (void)mesh::read_checkpoint(path);
    FAIL() << "expected version error";
  } catch (const opv::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported OPVK version"), std::string::npos);
  }

  // Truncation at several depths: header, mid-payload, missing CRC.
  for (const std::size_t keep : {std::size_t{10}, good.size() / 2, good.size() - 2}) {
    spit(path, good.substr(0, keep));
    expect_read_error(path, "");
  }

  // A flipped payload bit: CRC catches it and names the section.
  bad = good;
  bad[good.size() / 2] = static_cast<char>(bad[good.size() / 2] ^ 0x10);
  spit(path, bad);
  expect_read_error(path, "CRC mismatch");

  // Trailing garbage after the last section.
  bad = good + "extra";
  spit(path, bad);
  expect_read_error(path, "trailing bytes");

  std::remove(good_path.c_str());
  std::remove(path.c_str());
}

// ===== kill-and-resume ======================================================

TEST(KillResume, VolnaSweepResumesBitwise) {
  const auto m = mesh::make_tri_periodic(16, 16, 10.0, 10.0);
  const auto sweep = volna::hazard_sweep(2);
  const int total = 14, killed_at = 6;
  const std::string path = tmp_path("opv_volna_resume.opvk");

  // Uninterrupted reference (no policy at all).
  serve::EnsembleOptions ref_opts;
  ref_opts.name = "volna_ref";
  ref_opts.workers = 2;
  Ensemble ref(ref_opts);
  ref.add_instances(2, volna::hazard_factory(m, sweep, seq_cfg()));
  ASSERT_EQ(ref.run(total).failed, 0);

  // First process: run part of the sweep, persist, "die".
  {
    serve::EnsembleOptions opts;
    opts.name = "volna_killed";
    opts.workers = 2;
    opts.health.checkpoint_every = 4;
    opts.health.retry.max_attempts = 1;
    Ensemble killed(opts);
    killed.add_instances(2, volna::hazard_factory(m, sweep, seq_cfg()));
    ASSERT_EQ(killed.run(killed_at).failed, 0);
    mesh::write_checkpoint(killed.save(total), path);
  }

  // Second process: fresh instances, restore, finish to the saved target.
  serve::EnsembleOptions opts;
  opts.name = "volna_resumed";
  opts.workers = 2;
  opts.health.checkpoint_every = 4;
  opts.health.retry.max_attempts = 1;
  Ensemble resumed(opts);
  resumed.add_instances(2, volna::hazard_factory(m, sweep, seq_cfg()));
  const auto chk = mesh::read_checkpoint(path);
  EXPECT_EQ(chk.target_steps, total);
  resumed.restore(chk);
  EXPECT_EQ(resumed.steps_done(0), killed_at);
  const auto rep = resumed.run_to(total);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_EQ(rep.steps, 2 * (total - killed_at));

  for (int i = 0; i < 2; ++i)
    expect_bitwise(dynamic_cast<volna::HazardInstance&>(ref.instance(i)).state(),
                   dynamic_cast<volna::HazardInstance&>(resumed.instance(i)).state(),
                   "resumed vs uninterrupted volna state");
  std::remove(path.c_str());
}

TEST(KillResume, Tet3DSweepResumesBitwise) {
  const auto m = mesh::make_tet_box(4, 4, 4);
  const int total = 8, killed_at = 3;
  const std::string path = tmp_path("opv_tet3d_resume.opvk");

  serve::EnsembleOptions ref_opts;
  ref_opts.name = "tet3d_ref";
  ref_opts.workers = 2;
  Ensemble ref(ref_opts);
  ref.add_instances(2, tet3d::tet3d_instance_factory(m, seq_cfg()));
  ASSERT_EQ(ref.run(total).failed, 0);

  {
    serve::EnsembleOptions opts;
    opts.name = "tet3d_killed";
    opts.workers = 2;
    opts.health.checkpoint_every = 2;
    opts.health.retry.max_attempts = 1;
    Ensemble killed(opts);
    killed.add_instances(2, tet3d::tet3d_instance_factory(m, seq_cfg()));
    ASSERT_EQ(killed.run(killed_at).failed, 0);
    mesh::write_checkpoint(killed.save(total), path);
  }

  serve::EnsembleOptions opts;
  opts.name = "tet3d_resumed";
  opts.workers = 2;
  Ensemble resumed(opts);
  resumed.add_instances(2, tet3d::tet3d_instance_factory(m, seq_cfg()));
  resumed.restore(mesh::read_checkpoint(path));
  EXPECT_EQ(resumed.run_to(total).failed, 0);

  for (int i = 0; i < 2; ++i) {
    auto& a = dynamic_cast<tet3d::Tet3DInstance&>(ref.instance(i));
    auto& b = dynamic_cast<tet3d::Tet3DInstance&>(resumed.instance(i));
    expect_bitwise(a.state(), b.state(), "resumed vs uninterrupted tet3d state");
    EXPECT_EQ(a.last_rms(), b.last_rms());
  }
  std::remove(path.c_str());
}

// ===== halo-transport fault injection =======================================

namespace {

/// A 2-rank Tet3D under the rank simulator with a FaultyExchanger spliced
/// over the memcpy transport AFTER construction, so the counted begins are
/// the stepping-time halo refreshes of the evolving dats only.
struct DistUnderTest {
  dist::DistCtx ctx;
  tet3d::Tet3D<double, dist::DistCtx> app;
  dist::FaultyExchanger* faulty = nullptr;

  DistUnderTest(const mesh::TetMesh& m, const dist::ExchangeFaultPlan* plan)
      : ctx(2, seq_cfg()), app(ctx, m) {
    if (plan) {
      auto fx = std::make_unique<dist::FaultyExchanger>(
          std::make_unique<dist::MemcpyExchanger>(), *plan);
      faulty = fx.get();
      ctx.set_exchanger(std::move(fx));
    }
  }
};

}  // namespace

TEST(FaultyExchanger, ThrowSurfacesWithDatAndTransportContext) {
  const auto m = mesh::make_tet_box(3, 3, 3);
  dist::ExchangeFaultPlan plan;
  plan.kind = dist::ExchangeFaultKind::Throw;
  plan.at_begin = 1;
  DistUnderTest u(m, &plan);
  try {
    u.app.run(1);
    FAIL() << "expected the injected transport failure to surface";
  } catch (const opv::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("via transport 'faulty'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("halo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dat '"), std::string::npos) << msg;
  }
}

TEST(FaultyExchanger, DelayIsBitwiseHarmless) {
  const auto m = mesh::make_tet_box(3, 3, 3);
  DistUnderTest clean(m, nullptr);
  clean.app.run(3, 0);
  dist::ExchangeFaultPlan plan;
  plan.kind = dist::ExchangeFaultKind::Delay;
  plan.at_begin = 2;
  plan.delay_seconds = 0.002;
  DistUnderTest delayed(m, &plan);
  delayed.app.run(3, 0);
  EXPECT_GE(delayed.faulty->faults_fired(), 1);
  expect_bitwise(clean.app.fetch_u(), delayed.app.fetch_u(), "delayed vs clean");
}

TEST(FaultyExchanger, DropDivergesFromCleanRun) {
  const auto m = mesh::make_tet_box(3, 3, 3);
  DistUnderTest clean(m, nullptr);
  clean.app.run(4, 0);
  dist::ExchangeFaultPlan plan;
  plan.kind = dist::ExchangeFaultKind::Drop;
  plan.at_begin = 4;  // past the first step: the dropped halo is stale for sure
  DistUnderTest dropped(m, &plan);
  dropped.app.run(4, 0);
  EXPECT_GE(dropped.faulty->faults_fired(), 1);
  const auto a = clean.app.fetch_u();
  const auto b = dropped.app.fetch_u();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << "a lost halo exchange must change the result";
}

TEST(FaultyExchanger, CorruptIsCaughtByTheFinitenessGuard) {
  const auto m = mesh::make_tet_box(3, 3, 3);
  dist::ExchangeFaultPlan plan;
  plan.kind = dist::ExchangeFaultKind::Corrupt;
  plan.at_begin = 1;
  plan.seed = 0x5eed;
  DistUnderTest u(m, &plan);
  u.app.run(3, 0);
  EXPECT_GE(u.faulty->faults_fired(), 1);
  const auto ustate = u.app.fetch_u();
  EXPECT_FALSE(guard::all_finite(ustate.data(), ustate.size()))
      << "the wire NaN must propagate into the state the guard scans";
}
