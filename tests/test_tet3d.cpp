// Tet3D mini-app tests: kernel hand computations, tet-box generator
// structure, cross-backend equivalence of full iterations, LoopChain
// bitwise identity, distributed execution, and the imported-mesh guarantee
// (a tet mesh arriving through a .msh file behaves bit-identically to its
// in-memory twin through renumbering, partitioning and chaining).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>

#include "apps/tet3d/tet3d.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "support/mesh_invariants.hpp"

namespace {

using namespace opv;
using tet3d::Consts;

// ---- kernels ----------------------------------------------------------------

TEST(Tet3dKernels, CellGeomVolumeAndCentroidOfUnitCornerTet) {
  const double x1[3] = {0, 0, 0}, x2[3] = {1, 0, 0}, x3[3] = {0, 1, 0}, x4[3] = {0, 0, 1};
  double cg[4] = {};
  tet3d::CellGeom<double>{}(x1, x2, x3, x4, cg);
  EXPECT_NEAR(cg[0], 1.0 / 6.0, 1e-15);
  EXPECT_NEAR(cg[1], 0.25, 1e-15);
  EXPECT_NEAR(cg[2], 0.25, 1e-15);
  EXPECT_NEAR(cg[3], 0.25, 1e-15);
  // Volume is orientation-independent (abs of the determinant).
  tet3d::CellGeom<double>{}(x1, x3, x2, x4, cg);
  EXPECT_NEAR(cg[0], 1.0 / 6.0, 1e-15);
}

TEST(Tet3dKernels, FaceGeomNormalFollowsWinding) {
  // Right triangle in the z=0 plane, CCW seen from +z: S = (0, 0, area).
  const double x1[3] = {0, 0, 0}, x2[3] = {2, 0, 0}, x3[3] = {0, 2, 0};
  double fg[6] = {};
  tet3d::FaceGeom<double>{}(x1, x2, x3, fg);
  EXPECT_NEAR(fg[0], 0.0, 1e-15);
  EXPECT_NEAR(fg[1], 0.0, 1e-15);
  EXPECT_NEAR(fg[2], 2.0, 1e-15);  // area = 0.5*|2x2 legs|
  EXPECT_NEAR(fg[3], 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(fg[4], 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(fg[5], 0.0, 1e-15);
  // Swapping two nodes flips the normal, not the centroid.
  tet3d::FaceGeom<double>{}(x1, x3, x2, fg);
  EXPECT_NEAR(fg[2], -2.0, 1e-15);
  EXPECT_NEAR(fg[3], 2.0 / 3.0, 1e-15);
}

TEST(Tet3dKernels, GradCalcIsConservativeAcrossTheFace) {
  const double u1 = 3.0, u2 = 5.0;
  const double cg1[4] = {2.0, 0, 0, 0}, cg2[4] = {4.0, 1, 0, 0};
  const double fg[6] = {0.5, -0.25, 1.0, 0.5, 0.5, 0.0};
  double g1[3] = {}, g2[3] = {};
  tet3d::GradCalc<double>{}(&u1, &u2, cg1, cg2, fg, g1, g2);
  const double uf = 4.0;
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(g1[k], uf * fg[k] / cg1[0], 1e-14);
    EXPECT_NEAR(g2[k], -uf * fg[k] / cg2[0], 1e-14);
    // Volume-weighted contributions cancel: what leaves cell 1 enters cell 2.
    EXPECT_NEAR(g1[k] * cg1[0] + g2[k] * cg2[0], 0.0, 1e-14);
  }
}

TEST(Tet3dKernels, FluxCalcAntisymmetricAndUpwind) {
  const auto c = Consts<double>::standard();
  const double u1 = 1.0, u2 = 2.0;
  const double g1[3] = {0.1, -0.2, 0.05}, g2[3] = {-0.05, 0.1, 0.2};
  const double cg1[4] = {0.5, 0, 0, 0}, cg2[4] = {0.5, 1, 0, 0};
  const double fg[6] = {1.0, 0.0, 0.0, 0.5, 0.0, 0.0};  // normal +x
  double r1 = 0, r2 = 0;
  tet3d::FluxCalc<double>{c}(&u1, &u2, g1, g2, cg1, cg2, fg, &r1, &r2);
  EXPECT_NE(r1, 0.0);
  EXPECT_EQ(r1, -r2);  // exact conservation, same arithmetic both sides
  // vn = vel.S = 1 > 0: the upwind value extrapolates from cell 1.
  const double uL = u1 + g1[0] * 0.5 + g1[1] * 0.0 + g1[2] * 0.0;
  const double dif = c.kappa * (u2 - u1) * 1.0 / 1.0;  // s2=1, sd=1
  EXPECT_NEAR(r1, 1.0 * uL - dif, 1e-14);
}

TEST(Tet3dKernels, BFluxWallIsZeroAndFarfieldIsNot) {
  const auto c = Consts<double>::standard();
  const double u1 = 1.5;
  const double g1[3] = {0.1, 0.0, 0.0};
  const double cg1[4] = {0.5, 0, 0, 0};
  const double fg[6] = {1.0, 0.0, 0.0, 0.5, 0.0, 0.0};
  const std::int32_t wall = mesh::kBoundWall, far = mesh::kBoundFarfield;
  double rw = 0, rf = 0;
  tet3d::BFluxCalc<double>{c}(&u1, g1, cg1, fg, &wall, &rw);
  tet3d::BFluxCalc<double>{c}(&u1, g1, cg1, fg, &far, &rf);
  EXPECT_EQ(rw, 0.0);
  EXPECT_NE(rf, 0.0);
}

TEST(Tet3dKernels, UpdateUEulerStepAndReset) {
  const double uold = 2.0;
  const double cg[4] = {0.5, 0, 0, 0};
  double u = 0, res = 0.25, grad[3] = {1, 2, 3}, rms = 0;
  tet3d::UpdateU<double>{0.1}(&uold, cg, &u, &res, grad, &rms);
  const double del = (0.1 / 0.5) * 0.25;
  EXPECT_NEAR(u, uold - del, 1e-15);
  EXPECT_EQ(res, 0.0);
  for (double g : grad) EXPECT_EQ(g, 0.0);
  EXPECT_NEAR(rms, del * del, 1e-15);
}

// ---- generator + invariants -------------------------------------------------

TEST(TetBox, KuhnSplitCountsAndInvariants) {
  for (const auto [ni, nj, nk] : {std::array<idx_t, 3>{1, 1, 1}, {2, 3, 2}, {3, 2, 4}}) {
    const mesh::TetMesh m = mesh::make_tet_box(ni, nj, nk);
    const idx_t nhex = ni * nj * nk;
    EXPECT_EQ(m.ncells, 6 * nhex);
    EXPECT_EQ(m.nnodes, (ni + 1) * (nj + 1) * (nk + 1));
    // Every boundary quad of the box splits into two boundary triangles.
    const idx_t nbquads = 2 * (ni * nj + nj * nk + ni * nk);
    EXPECT_EQ(m.nbfaces, 2 * nbquads);
    // Face handshake: 4 faces per tet, interior ones shared by exactly two.
    EXPECT_EQ(2 * m.nfaces + m.nbfaces, 4 * m.ncells);
    // The split fills the box exactly (cell_volume is signed; orientation
    // alternates across the Kuhn permutations, so sum magnitudes).
    double vol = 0;
    for (idx_t c = 0; c < m.ncells; ++c) vol += std::abs(m.cell_volume(c));
    EXPECT_NEAR(vol, 1.0, 1e-12);
    // Bottom faces are walls, everything else far field.
    idx_t nwall = 0;
    for (idx_t b = 0; b < m.nbfaces; ++b)
      if (m.bface_bound[b] == mesh::kBoundWall) ++nwall;
    EXPECT_EQ(nwall, 2 * ni * nj);
  }
  opv::test::check_tet_invariants(mesh::make_tet_box(3, 3, 3));
}

TEST(TetBox, StableDtIsPositiveAndScalesDown) {
  const auto c = Consts<double>::standard();
  const double coarse = tet3d::stable_dt(c, mesh::make_tet_box(2, 2, 2));
  const double fine = tet3d::stable_dt(c, mesh::make_tet_box(4, 4, 4));
  EXPECT_GT(coarse, 0.0);
  EXPECT_GT(fine, 0.0);
  EXPECT_LT(fine, coarse);  // refinement tightens the explicit bound
}

// ---- full-application equivalence -------------------------------------------

template <class Real>
aligned_vector<Real> run_app(const mesh::TetMesh& m, ExecConfig cfg, int iters,
                             bool chain = false, double* rms_out = nullptr) {
  LocalCtx ctx(cfg);
  tet3d::Tet3D<Real, LocalCtx> app(ctx, m, chain);
  app.run(iters, 1);
  if (rms_out) *rms_out = app.last_rms();
  return app.fetch_u();
}

TEST(Tet3dApp, BackendsMatchSequential) {
  const auto m = mesh::make_tet_box(4, 4, 3);
  const auto ref = run_app<double>(m, {.backend = Backend::Seq}, 10);
  const std::vector<std::pair<std::string, ExecConfig>> cfgs = {
      {"openmp", {.backend = Backend::OpenMP}},
      {"autovec", {.backend = Backend::AutoVec}},
      {"simd4", {.backend = Backend::Simd, .simd_width = 4}},
      {"simd_fp", {.backend = Backend::Simd, .coloring = ColoringStrategy::FullPermute}},
      {"simt", {.backend = Backend::Simt}},
  };
  for (const auto& [name, cfg] : cfgs) {
    SCOPED_TRACE(name);
    const auto got = run_app<double>(m, cfg, 10);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(ref[i], got[i], 1e-12 * (std::abs(ref[i]) + 1)) << "u[" << i << "]";
  }
}

TEST(Tet3dApp, ChainIsBitwiseIdenticalToLoopByLoop) {
  const auto m = mesh::make_tet_box(3, 3, 3);
  const auto plain = run_app<double>(m, {.backend = Backend::Seq}, 8, false);
  const auto chained = run_app<double>(m, {.backend = Backend::Seq}, 8, true);
  ASSERT_EQ(plain.size(), chained.size());
  EXPECT_EQ(std::memcmp(plain.data(), chained.data(), plain.size() * sizeof(double)), 0);
}

TEST(Tet3dApp, RenumberIsTransparentThroughFetch) {
  // Renumbering permutes the face iteration order, which reassociates the
  // per-cell INC sums — so the bar is field-norm tolerance, not bitwise
  // (the bitwise manual-relayout contract is pinned in tests/test_reorder).
  const auto m = mesh::make_tet_box(3, 3, 2);
  const auto plain = run_app<double>(m, {.backend = Backend::Seq}, 6);
  ExecConfig cfg{.backend = Backend::Seq};
  LocalCtx ctx(cfg);
  ctx.set_renumber(true);
  tet3d::Tet3D<double, LocalCtx> app(ctx, m, /*chain=*/true);
  app.run(6, 1);
  const auto ren = app.fetch_u();
  ASSERT_EQ(plain.size(), ren.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_NEAR(plain[i], ren[i], 1e-12 * (std::abs(plain[i]) + 1)) << "u[" << i << "]";
}

TEST(Tet3dApp, DistMatchesLocal) {
  const auto m = mesh::make_tet_box(4, 3, 3);
  const auto ref = run_app<double>(m, {.backend = Backend::Seq}, 6);
  for (int ranks : {2, 4}) {
    dist::DistCtx ctx(ranks, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
    tet3d::Tet3D<double, dist::DistCtx> app(ctx, m);
    app.run(6, 1);
    const auto got = app.fetch_u();
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(ref[i], got[i], 1e-11 * (std::abs(ref[i]) + 1))
          << "ranks=" << ranks << " u[" << i << "]";
  }
}

TEST(Tet3dApp, RmsDecaysAndStaysFinite) {
  const auto m = mesh::make_tet_box(4, 4, 4);
  LocalCtx ctx(ExecConfig{.backend = Backend::Simd});
  tet3d::Tet3D<double, LocalCtx> app(ctx, m);
  app.run(120, 20);
  const auto& hist = app.rms_history();
  ASSERT_EQ(hist.size(), 6u);
  for (double r : hist) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
  EXPECT_LT(hist.back(), hist.front());
}

TEST(Tet3dApp, SinglePrecisionTracksDouble) {
  const auto m = mesh::make_tet_box(3, 3, 3);
  const auto ud = run_app<double>(m, {.backend = Backend::Simd}, 5);
  const auto uf = run_app<float>(m, {.backend = Backend::Simd}, 5);
  ASSERT_EQ(ud.size(), uf.size());
  for (std::size_t i = 0; i < ud.size(); ++i)
    EXPECT_NEAR(static_cast<float>(ud[i]), uf[i], 2e-4f * (std::abs(uf[i]) + 1));
}

// ---- imported meshes --------------------------------------------------------

TEST(Tet3dApp, ImportedMshIsBitwiseIdenticalToInMemoryMesh) {
  const mesh::TetMesh mem = mesh::make_tet_box(3, 3, 2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "opv_tet3d_app.msh").string();
  mesh::write_msh(mesh::from_tet(mem), path, 2);
  const mesh::TetMesh imp = mesh::to_tet(mesh::read_msh(path));
  ASSERT_EQ(imp.cell_nodes, mem.cell_nodes);
  ASSERT_EQ(imp.node_xyz, mem.node_xyz);
  opv::test::check_tet_invariants(imp);

  // Renumbered + chained local run, then a partitioned run — both bitwise.
  ExecConfig cfg{.backend = Backend::Seq};
  for (const bool chain : {false, true}) {
    LocalCtx ca(cfg), cb(cfg);
    ca.set_renumber(true);
    cb.set_renumber(true);
    tet3d::Tet3D<double, LocalCtx> aa(ca, mem, chain), ab(cb, imp, chain);
    aa.run(7, 1);
    ab.run(7, 1);
    const auto ua = aa.fetch_u(), ub = ab.fetch_u();
    ASSERT_EQ(ua.size(), ub.size());
    EXPECT_EQ(std::memcmp(ua.data(), ub.data(), ua.size() * sizeof(double)), 0)
        << "chain=" << chain;
    EXPECT_EQ(aa.last_rms(), ab.last_rms());
  }
  {
    dist::DistCtx ca(3, cfg), cb(3, cfg);
    tet3d::Tet3D<double, dist::DistCtx> aa(ca, mem), ab(cb, imp);
    aa.run(7, 1);
    ab.run(7, 1);
    const auto ua = aa.fetch_u(), ub = ab.fetch_u();
    ASSERT_EQ(ua.size(), ub.size());
    EXPECT_EQ(std::memcmp(ua.data(), ub.data(), ua.size() * sizeof(double)), 0);
    EXPECT_EQ(aa.last_rms(), ab.last_rms());
  }
}

TEST(Tet3dApp, RunsOnTheCommittedFixture) {
  std::vector<mesh::BoundarySet> bsets;
  const mesh::TetMesh m =
      mesh::to_tet(mesh::read_msh(std::string(OPV_FIXTURE_DIR) + "/msh/tet3d_v41.msh"), {}, &bsets);
  ASSERT_EQ(bsets.size(), 2u);
  LocalCtx ctx(ExecConfig{.backend = Backend::Seq});
  tet3d::Tet3D<double, LocalCtx> app(ctx, m);
  app.run(20, 5);
  for (double r : app.rms_history()) EXPECT_TRUE(std::isfinite(r));
}

}  // namespace
