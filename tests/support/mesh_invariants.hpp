// Reusable pipeline property checks shared by the mesh/ingest/app test
// suites: any mesh — generated, imported or mutated — can be pushed through
// check_mesh_invariants / check_tet_invariants to assert the properties the
// whole execution stack rests on:
//   * structural validity (container validate(): sizes, ranges, topology);
//   * fetch() transparency — a context with renumbering enabled returns
//     declaration-order data exactly (identity round-trip);
//   * plan validity for every coloring strategy — each element covered
//     exactly once, and same-color elements never share an increment target;
//   * partition_rcb sanity — ranks in range, no empty rank, bounded skew;
//   * DistCtx fetch round-trip across the partitioned layout.
#pragma once

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/context.hpp"
#include "core/op2.hpp"
#include "dist/context.hpp"
#include "dist/partition.hpp"
#include "mesh/mesh.hpp"
#include "mesh/tetmesh.hpp"

namespace opv::test {

/// Exactly-once coverage + per-color conflict-freedom of build_plan output
/// for all three strategies on the given conflict set.
inline void check_plan_invariants(idx_t nelems, const std::vector<IncRef>& conflicts) {
  const auto targets = [&](idx_t e) {
    std::vector<idx_t> t;
    for (const auto& cr : conflicts) t.push_back((*cr.map)(e, cr.idx));
    return t;
  };

  {  // TwoLevel: block ranges tile the set; per-color-per-block disjoint.
    const auto plan = build_plan(nelems, conflicts, 64, ColoringStrategy::TwoLevel);
    std::set<idx_t> seen;
    for (idx_t b = 0; b < plan->nblocks; ++b) {
      std::vector<std::set<idx_t>> per_color(static_cast<std::size_t>(plan->block_nelem_colors[b]));
      for (idx_t e = plan->block_begin(b); e < plan->block_end(b); ++e) {
        EXPECT_TRUE(seen.insert(e).second) << "element " << e << " in two blocks";
        const int col = plan->elem_color[e];
        ASSERT_GE(col, 0);
        ASSERT_LT(col, plan->block_nelem_colors[b]);
        for (idx_t t : targets(e))
          EXPECT_TRUE(per_color[static_cast<std::size_t>(col)].insert(t).second)
              << "TwoLevel: block " << b << " color " << col << " shares target " << t;
      }
    }
    EXPECT_EQ(seen.size(), std::size_t(nelems)) << "TwoLevel plan does not cover the set";
  }
  {  // FullPermute: permute is a bijection; per global color disjoint.
    const auto plan = build_plan(nelems, conflicts, 64, ColoringStrategy::FullPermute);
    std::set<idx_t> seen(plan->permute.begin(), plan->permute.end());
    EXPECT_EQ(seen.size(), std::size_t(nelems)) << "FullPermute permute is not a bijection";
    for (int col = 0; col < plan->nglobal_colors; ++col) {
      std::set<idx_t> touched;
      for (idx_t k = plan->color_offsets[col]; k < plan->color_offsets[col + 1]; ++k)
        for (idx_t t : targets(plan->permute[k]))
          EXPECT_TRUE(touched.insert(t).second)
              << "FullPermute: global color " << col << " shares target " << t;
    }
  }
  {  // BlockPermute: color runs tile each block; per run disjoint.
    const auto plan = build_plan(nelems, conflicts, 64, ColoringStrategy::BlockPermute);
    std::set<idx_t> seen;
    for (idx_t b = 0; b < plan->nblocks; ++b) {
      const idx_t* off = plan->bcol_off.data() + plan->bcol_base[b];
      const int nc = plan->block_nelem_colors[b];
      ASSERT_EQ(off[0], plan->block_begin(b));
      ASSERT_EQ(off[nc], plan->block_end(b));
      for (int c = 0; c < nc; ++c) {
        std::set<idx_t> touched;
        for (idx_t k = off[c]; k < off[c + 1]; ++k) {
          const idx_t e = plan->block_permute[k];
          EXPECT_TRUE(seen.insert(e).second) << "element " << e << " appears twice";
          for (idx_t t : targets(e))
            EXPECT_TRUE(touched.insert(t).second)
                << "BlockPermute: block " << b << " run " << c << " shares target " << t;
        }
      }
    }
    EXPECT_EQ(seen.size(), std::size_t(nelems)) << "BlockPermute plan does not cover the set";
  }
}

/// partition_rcb sanity on interleaved 2D coordinates: every rank in range,
/// no empty rank (when n >= nparts), bounded skew.
inline void check_partition_invariants(const aligned_vector<double>& xy, idx_t n, int nparts) {
  const aligned_vector<int> part = opv::dist::partition_rcb(xy.data(), n, nparts);
  ASSERT_EQ(part.size(), std::size_t(n));
  std::vector<idx_t> count(static_cast<std::size_t>(nparts), 0);
  for (int p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, nparts);
    ++count[static_cast<std::size_t>(p)];
  }
  const idx_t ceil_share = (n + nparts - 1) / nparts;
  for (int p = 0; p < nparts; ++p) {
    if (n >= nparts) EXPECT_GT(count[static_cast<std::size_t>(p)], 0) << "rank " << p << " empty";
    EXPECT_LE(count[static_cast<std::size_t>(p)], 2 * ceil_share)
        << "rank " << p << " holds more than twice the fair share";
  }
}

namespace detail {

inline aligned_vector<idx_t> iota_ids(idx_t n) {
  aligned_vector<idx_t> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), idx_t{0});
  return v;
}

template <class Ctx, class Dat>
void expect_identity_fetch(Ctx& ctx, Dat d, idx_t n, const char* what) {
  aligned_vector<idx_t> out;
  ctx.fetch(d, out);
  ASSERT_EQ(out.size(), std::size_t(n)) << what;
  for (idx_t i = 0; i < n; ++i)
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i)
        << what << ": fetch does not round-trip declaration order at row " << i;
}

/// Declare the 2D mesh through `ctx` with one original-id dat per set,
/// finalize, and assert every fetch returns declaration order exactly.
template <class Ctx>
void check_fetch_roundtrip(Ctx& ctx, const mesh::UnstructuredMesh& m) {
  const auto nodes = ctx.decl_set("nodes", m.nnodes);
  const auto cells = ctx.decl_set("cells", m.ncells);
  const auto edges = ctx.decl_set("edges", m.nedges);
  const auto bedges = ctx.decl_set("bedges", m.nbedges);
  aligned_vector<double> cent(static_cast<std::size_t>(m.ncells) * 2);
  for (idx_t c = 0; c < m.ncells; ++c) {
    double sx = 0, sy = 0;
    for (int j = 0; j < m.nodes_per_cell; ++j) {
      const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * m.nodes_per_cell + j];
      sx += m.node_xy[2 * static_cast<std::size_t>(n)];
      sy += m.node_xy[2 * static_cast<std::size_t>(n) + 1];
    }
    cent[2 * static_cast<std::size_t>(c)] = sx / m.nodes_per_cell;
    cent[2 * static_cast<std::size_t>(c) + 1] = sy / m.nodes_per_cell;
  }
  ctx.set_partition_coords(cells, cent.data());
  ctx.decl_map("pcell", cells, nodes, m.nodes_per_cell, m.cell_nodes);
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  ctx.decl_map("pbecell", bedges, cells, 1, m.bedge_cell);
  const auto oc = ctx.template decl_dat<idx_t>("orig_cell", cells, 1, iota_ids(m.ncells));
  const auto oe = ctx.template decl_dat<idx_t>("orig_edge", edges, 1, iota_ids(m.nedges));
  const auto on = ctx.template decl_dat<idx_t>("orig_node", nodes, 1, iota_ids(m.nnodes));
  const auto ob = ctx.template decl_dat<idx_t>("orig_bedge", bedges, 1, iota_ids(m.nbedges));
  ctx.finalize();
  expect_identity_fetch(ctx, oc, m.ncells, "cells");
  expect_identity_fetch(ctx, oe, m.nedges, "edges");
  expect_identity_fetch(ctx, on, m.nnodes, "nodes");
  expect_identity_fetch(ctx, ob, m.nbedges, "bedges");
}

/// TetMesh sibling (cells/faces/nodes/bfaces, xy-projected centroids).
template <class Ctx>
void check_fetch_roundtrip_tet(Ctx& ctx, const mesh::TetMesh& m) {
  const auto nodes = ctx.decl_set("nodes", m.nnodes);
  const auto cells = ctx.decl_set("cells", m.ncells);
  const auto faces = ctx.decl_set("faces", m.nfaces);
  const auto bfaces = ctx.decl_set("bfaces", m.nbfaces);
  const aligned_vector<double> c3 = mesh::tet_cell_centroids(m);
  aligned_vector<double> xy(static_cast<std::size_t>(m.ncells) * 2);
  for (idx_t c = 0; c < m.ncells; ++c) {
    xy[2 * static_cast<std::size_t>(c)] = c3[3 * static_cast<std::size_t>(c)];
    xy[2 * static_cast<std::size_t>(c) + 1] = c3[3 * static_cast<std::size_t>(c) + 1];
  }
  ctx.set_partition_coords(cells, xy.data());
  ctx.decl_map("pcell", cells, nodes, 4, m.cell_nodes);
  ctx.decl_map("pfcell", faces, cells, 2, m.face_cells);
  ctx.decl_map("pbfcell", bfaces, cells, 1, m.bface_cell);
  const auto oc = ctx.template decl_dat<idx_t>("orig_cell", cells, 1, iota_ids(m.ncells));
  const auto of = ctx.template decl_dat<idx_t>("orig_face", faces, 1, iota_ids(m.nfaces));
  const auto on = ctx.template decl_dat<idx_t>("orig_node", nodes, 1, iota_ids(m.nnodes));
  const auto ob = ctx.template decl_dat<idx_t>("orig_bface", bfaces, 1, iota_ids(m.nbfaces));
  ctx.finalize();
  expect_identity_fetch(ctx, oc, m.ncells, "cells");
  expect_identity_fetch(ctx, of, m.nfaces, "faces");
  expect_identity_fetch(ctx, on, m.nnodes, "nodes");
  expect_identity_fetch(ctx, ob, m.nbfaces, "bfaces");
}

}  // namespace detail

/// The full 2D property bundle: container validity, renumbered-LocalCtx and
/// DistCtx fetch round-trips, plan invariants on the edge->cell conflicts,
/// partitioner sanity.
inline void check_mesh_invariants(const mesh::UnstructuredMesh& m) {
  ASSERT_NO_THROW(m.validate());

  ExecConfig cfg;
  cfg.backend = Backend::Seq;
  {
    LocalCtx ctx(cfg);
    ctx.set_renumber(true);
    detail::check_fetch_roundtrip(ctx, m);
  }
  if (m.ncells >= 4) {
    dist::DistCtx ctx(4, cfg);
    detail::check_fetch_roundtrip(ctx, m);
  }

  if (m.nedges > 0) {
    Set cells("cells", m.ncells), edges("edges", m.nedges);
    Map e2c("e2c", edges, cells, 2, m.edge_cells);
    check_plan_invariants(m.nedges, {{&e2c, 0}, {&e2c, 1}});
  }
  if (m.ncells >= 4) {
    aligned_vector<double> cent(static_cast<std::size_t>(m.ncells) * 2);
    for (idx_t c = 0; c < m.ncells; ++c) {
      const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * m.nodes_per_cell];
      cent[2 * static_cast<std::size_t>(c)] = m.node_xy[2 * static_cast<std::size_t>(n)];
      cent[2 * static_cast<std::size_t>(c) + 1] = m.node_xy[2 * static_cast<std::size_t>(n) + 1];
    }
    check_partition_invariants(cent, m.ncells, 4);
  }
}

/// The 3D property bundle, over cells/faces/nodes/bfaces.
inline void check_tet_invariants(const mesh::TetMesh& m) {
  ASSERT_NO_THROW(m.validate());

  ExecConfig cfg;
  cfg.backend = Backend::Seq;
  {
    LocalCtx ctx(cfg);
    ctx.set_renumber(true);
    detail::check_fetch_roundtrip_tet(ctx, m);
  }
  if (m.ncells >= 4) {
    dist::DistCtx ctx(4, cfg);
    detail::check_fetch_roundtrip_tet(ctx, m);
  }

  if (m.nfaces > 0) {
    Set cells("cells", m.ncells), faces("faces", m.nfaces);
    Map f2c("f2c", faces, cells, 2, m.face_cells);
    check_plan_invariants(m.nfaces, {{&f2c, 0}, {&f2c, 1}});
  }
  if (m.ncells >= 4) {
    const aligned_vector<double> c3 = mesh::tet_cell_centroids(m);
    aligned_vector<double> xy(static_cast<std::size_t>(m.ncells) * 2);
    for (idx_t c = 0; c < m.ncells; ++c) {
      xy[2 * static_cast<std::size_t>(c)] = c3[3 * static_cast<std::size_t>(c)];
      xy[2 * static_cast<std::size_t>(c) + 1] = c3[3 * static_cast<std::size_t>(c) + 1];
    }
    check_partition_invariants(xy, m.ncells, 4);
  }
}

}  // namespace opv::test
