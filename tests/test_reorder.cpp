// Context-level renumbering tests (core/reorder.hpp).
//
// The pass's contract has three legs, each pinned here:
//  1. validity — every computed permutation is a bijection, and fetch()
//     round-trips declared values in the original order exactly;
//  2. relayout transparency — a context with renumbering enabled is
//     BITWISE-identical to the caller applying the same permutations by
//     hand before declaration and un-permuting fetched results (the
//     ManualRelayoutCtx shim below does exactly that), for Airfoil and
//     Volna on Seq/OpenMP/Simd/Simt and on DistCtx across exchange modes.
//     A renumbered run is deliberately NOT bitwise-identical to an
//     un-renumbered one — reordering an indirect-increment loop
//     reassociates the per-target floating-point sums — so the on-vs-off
//     comparison is pinned at reassociation tolerance instead;
//  3. structure preservation — within-row map order is untouched (the
//     orient_edges_fv finite-volume convention survives renumbering).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "apps/airfoil/airfoil.hpp"
#include "apps/volna/volna.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

// ===== the manual-relayout shim =============================================

/// A Context-concept wrapper that performs the renumbering pass BY HAND at
/// the declaration boundary: map rows/targets and dat rows are permuted with
/// the given per-set-name permutations before reaching the inner context,
/// partition coordinates are row-permuted, and fetch() results are mapped
/// back to the original order. Running an application through this shim is
/// the caller-side relayout the context pass must be bitwise-equivalent to.
template <class Inner>
class ManualRelayoutCtx {
 public:
  using SetHandle = typename Inner::SetHandle;
  using MapHandle = typename Inner::MapHandle;
  template <class T>
  struct DatHandle {
    typename Inner::template DatHandle<T> inner{};
    const aligned_vector<idx_t>* perm = nullptr;  ///< old->new of the dat's set
    idx_t set_size = 0;
  };
  template <class T, int N>
  struct FixedDatHandle {
    typename Inner::template FixedDatHandle<T, N> inner{};
    const aligned_vector<idx_t>* perm = nullptr;
    idx_t set_size = 0;
  };

  ManualRelayoutCtx(Inner& inner, std::map<std::string, aligned_vector<idx_t>> perms)
      : inner_(&inner), perms_(std::move(perms)) {}

  SetHandle decl_set(const std::string& name, idx_t size) {
    const SetHandle h = inner_->decl_set(name, size);
    const auto it = perms_.find(name);
    set_perm_[h] = it == perms_.end() ? nullptr : &it->second;
    set_size_[h] = size;
    return h;
  }

  void set_partition_coords(SetHandle s, const double* xy, int ndims = 2) {
    if (const auto* p = set_perm_.at(s)) {
      coords_.assign(xy, xy + static_cast<std::size_t>(set_size_.at(s)) * ndims);
      reorder::permute_rows(*p, coords_.data(), ndims);
      inner_->set_partition_coords(s, coords_.data(), ndims);
    } else {
      inner_->set_partition_coords(s, xy, ndims);
    }
  }

  MapHandle decl_map(const std::string& name, SetHandle from, SetHandle to, int dim,
                     aligned_vector<idx_t> data) {
    if (const auto* tp = set_perm_.at(to))
      for (auto& v : data) v = (*tp)[static_cast<std::size_t>(v)];
    if (const auto* fp = set_perm_.at(from)) reorder::permute_rows(*fp, data.data(), dim);
    return inner_->decl_map(name, from, to, dim, std::move(data));
  }

  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim,
                        aligned_vector<T> init) {
    if (const auto* p = set_perm_.at(set)) reorder::permute_rows(*p, init.data(), dim);
    return {inner_->template decl_dat<T>(name, set, dim, init), set_perm_.at(set),
            set_size_.at(set)};
  }
  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim) {
    return {inner_->template decl_dat<T>(name, set, dim), set_perm_.at(set), set_size_.at(set)};
  }

  template <class T, int N>
  FixedDatHandle<T, N> decl_dat(const std::string& name, SetHandle set, aligned_vector<T> init) {
    if (const auto* p = set_perm_.at(set)) reorder::permute_rows(*p, init.data(), N);
    return {inner_->template decl_dat<T, N>(name, set, init), set_perm_.at(set),
            set_size_.at(set)};
  }
  template <class T, int N>
  FixedDatHandle<T, N> decl_dat(const std::string& name, SetHandle set) {
    return {inner_->template decl_dat<T, N>(name, set), set_perm_.at(set), set_size_.at(set)};
  }

  void finalize() { inner_->finalize(); }

  template <AccessMode A, int Dim = kDynDim, class T>
  auto arg(DatHandle<T> d, int idx, MapHandle m) {
    return inner_->template arg<A, Dim>(d.inner, idx, m);
  }
  template <AccessMode A, int Dim = kDynDim, class T>
  auto arg(DatHandle<T> d) {
    return inner_->template arg<A, Dim>(d.inner);
  }
  template <AccessMode A, int Dim = kDynDim, class T, int N>
  auto arg(FixedDatHandle<T, N> d, int idx, MapHandle m) {
    return inner_->template arg<A, Dim>(d.inner, idx, m);
  }
  template <AccessMode A, int Dim = kDynDim, class T, int N>
  auto arg(FixedDatHandle<T, N> d) {
    return inner_->template arg<A, Dim>(d.inner);
  }
  template <AccessMode A, class T>
  auto arg_gbl(T* p, int dim) {
    return inner_->template arg_gbl<A>(p, dim);
  }

  template <class Kernel, class... Args>
  auto make_loop(Kernel k, const char* name, SetHandle set, Args... args) {
    return inner_->make_loop(std::move(k), name, set, args...);
  }

  template <class T>
  void fetch(DatHandle<T> d, aligned_vector<T>& out) {
    aligned_vector<T> raw;
    inner_->fetch(d.inner, raw);
    unpermute(std::move(raw), d.perm, d.set_size, out);
  }
  template <class T, int N>
  void fetch(FixedDatHandle<T, N> d, aligned_vector<T>& out) {
    aligned_vector<T> raw;
    inner_->fetch(d.inner, raw);
    unpermute(std::move(raw), d.perm, d.set_size, out);
  }

 private:
  template <class T>
  static void unpermute(aligned_vector<T> raw, const aligned_vector<idx_t>* perm,
                        idx_t set_size, aligned_vector<T>& out) {
    if (!perm) {
      out = std::move(raw);
      return;
    }
    const int dim = static_cast<int>(raw.size() / static_cast<std::size_t>(set_size));
    out.resize(raw.size());
    for (idx_t e = 0; e < set_size; ++e)
      for (int c = 0; c < dim; ++c)
        out[static_cast<std::size_t>(e) * dim + c] =
            raw[static_cast<std::size_t>((*perm)[static_cast<std::size_t>(e)]) * dim + c];
  }

  Inner* inner_;
  std::map<std::string, aligned_vector<idx_t>> perms_;
  std::map<SetHandle, const aligned_vector<idx_t>*> set_perm_;
  std::map<SetHandle, idx_t> set_size_;
  aligned_vector<double> coords_;
};

template <class Real>
void expect_bitwise(const aligned_vector<Real>& a, const aligned_vector<Real>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Real)), 0)
      << what << ": renumbered context diverged bitwise from the manual relayout";
}

mesh::UnstructuredMesh airfoil_mesh() {
  auto m = mesh::make_airfoil_omesh(48, 16);
  mesh::shuffle_edges(m, 13);  // give the pass real work
  return m;
}

mesh::UnstructuredMesh volna_mesh() {
  auto m = mesh::make_tri_periodic(20, 20, 4.0, 4.0);
  mesh::shuffle_edges(m, 29);
  return m;
}

// ===== validity: bijections and fetch round-trips ===========================

TEST(ReorderCompute, PermutationsAreBijections) {
  auto m = airfoil_mesh();
  LocalCtx ctx;
  auto nodes = ctx.decl_set("nodes", m.nnodes);
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  auto bedges = ctx.decl_set("bedges", m.nbedges);
  ctx.decl_map("pedge", edges, nodes, 2, m.edge_nodes);
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  ctx.decl_map("pcell", cells, nodes, 4, m.cell_nodes);
  ctx.decl_map("pbecell", bedges, cells, 1, m.bedge_cell);
  ctx.renumber(cells);

  ASSERT_NE(ctx.permutation(cells), nullptr);
  ASSERT_NE(ctx.permutation(edges), nullptr);
  ASSERT_NE(ctx.permutation(bedges), nullptr);
  EXPECT_EQ(ctx.permutation(nodes), nullptr) << "target-only sets keep their numbering";
  EXPECT_TRUE(reorder::is_permutation(*ctx.permutation(cells), m.ncells));
  EXPECT_TRUE(reorder::is_permutation(*ctx.permutation(edges), m.nedges));
  EXPECT_TRUE(reorder::is_permutation(*ctx.permutation(bedges), m.nbedges));
}

TEST(ReorderCompute, EdgesSortLexicographicallyByRenumberedCells) {
  auto m = airfoil_mesh();
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  auto pecell = ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  ctx.renumber(cells);
  // After the pass, consecutive edges touch non-decreasing (min, max) cell
  // pairs — the generalization of sort_edges_by_cell the locality bench
  // showed matters.
  for (idx_t e = 1; e < m.nedges; ++e) {
    const idx_t pmin = std::min((*pecell)(e - 1, 0), (*pecell)(e - 1, 1));
    const idx_t pmax = std::max((*pecell)(e - 1, 0), (*pecell)(e - 1, 1));
    const idx_t cmin = std::min((*pecell)(e, 0), (*pecell)(e, 1));
    const idx_t cmax = std::max((*pecell)(e, 0), (*pecell)(e, 1));
    ASSERT_TRUE(pmin < cmin || (pmin == cmin && pmax <= cmax))
        << "edge " << e << " out of lexicographic order";
  }
}

TEST(LocalRenumber, FetchRoundTripsDeclarationOrder) {
  auto m = mesh::make_quad_box(8, 6);
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  aligned_vector<double> cv(static_cast<std::size_t>(m.ncells) * 3);
  for (std::size_t i = 0; i < cv.size(); ++i) cv[i] = 0.5 + static_cast<double>(i);
  aligned_vector<float> ev(static_cast<std::size_t>(m.nedges) * 2);
  for (std::size_t i = 0; i < ev.size(); ++i) ev[i] = 0.25f + static_cast<float>(i);
  auto cdat = ctx.decl_dat<double>("cdat", cells, 3, cv);
  auto edat = ctx.decl_dat<float>("edat", edges, 2, ev);

  ctx.renumber(cells);

  aligned_vector<double> cout;
  ctx.fetch(cdat, cout);
  aligned_vector<float> eout;
  ctx.fetch(edat, eout);
  expect_bitwise(cv, cout, "cell dat round-trip");
  expect_bitwise(ev, eout, "edge dat round-trip");

  // The internal layout really moved (the round-trip is not vacuous).
  EXPECT_NE(std::memcmp(cdat->data(), cv.data(), cv.size() * sizeof(double)), 0);
}

TEST(LocalRenumber, DeclarationsCloseAfterRenumber) {
  auto m = mesh::make_quad_box(4, 3);
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  ctx.renumber(cells);
  EXPECT_THROW(ctx.decl_set("late", 4), Error);
  EXPECT_THROW(ctx.decl_dat<double>("late", cells, 1), Error);
  EXPECT_THROW(ctx.renumber(cells), Error) << "renumber is single-shot";
}

struct SetOneKernel {
  template <class T>
  void operator()(T* x) const {
    x[0] = T(1);
  }
};

TEST(LocalRenumber, RejectedOnceALoopRan) {
  // A loop handle pins its coloring plan against the map contents it first
  // ran with; renumbering underneath it would leave a stale, racy schedule.
  auto m = mesh::make_quad_box(4, 3);
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  auto d = ctx.decl_dat<double>("d", cells, 1);
  ctx.loop(SetOneKernel{}, "set_one", cells, ctx.arg<opv::WRITE, 1>(d));
  EXPECT_THROW(ctx.renumber(cells), Error);
}

TEST(LocalRenumber, OptInRequiresPrimarySet) {
  LocalCtx ctx;
  ctx.decl_set("cells", 8);
  ctx.set_renumber(true);
  EXPECT_THROW(ctx.finalize(), Error);
}

TEST(DistRenumber, FetchRoundTripsDeclarationOrder) {
  auto m = mesh::make_quad_box(9, 7);
  const auto centroids = airfoil::cell_centroids(m);
  dist::DistCtx ctx(3, ExecConfig{});
  ctx.set_renumber(true);
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.set_partition_coords(cells, centroids.data());
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  aligned_vector<double> cv(static_cast<std::size_t>(m.ncells) * 2);
  for (std::size_t i = 0; i < cv.size(); ++i) cv[i] = 1.5 + static_cast<double>(i);
  aligned_vector<std::int32_t> ev(static_cast<std::size_t>(m.nedges));
  for (std::size_t i = 0; i < ev.size(); ++i) ev[i] = static_cast<std::int32_t>(7 * i + 1);
  auto cdat = ctx.decl_dat<double>("cdat", cells, 2, cv);
  auto edat = ctx.decl_dat<std::int32_t>("edat", edges, 1, ev);
  ctx.finalize();

  ASSERT_NE(ctx.permutation(cells), nullptr);
  EXPECT_TRUE(reorder::is_permutation(*ctx.permutation(cells), m.ncells));
  aligned_vector<double> cout;
  ctx.fetch(cdat, cout);
  aligned_vector<std::int32_t> eout;
  ctx.fetch(edat, eout);
  expect_bitwise(cv, cout, "dist cell dat round-trip");
  expect_bitwise(ev, eout, "dist edge dat round-trip");
}

// ===== relayout transparency: bitwise vs the manual shim ====================

class AirfoilLocalBitwiseP : public ::testing::TestWithParam<Backend> {};

TEST_P(AirfoilLocalBitwiseP, RenumberMatchesManualRelayout) {
  const auto m = airfoil_mesh();
  ExecConfig cfg;
  cfg.backend = GetParam();

  LocalCtx on(cfg);
  on.set_renumber(true);
  airfoil::Airfoil<double, LocalCtx> app_on(on, m);
  app_on.run(3, 0);
  const auto perms = on.applied_permutations();
  ASSERT_FALSE(perms.empty());

  LocalCtx off(cfg);
  ManualRelayoutCtx<LocalCtx> shim(off, perms);
  airfoil::Airfoil<double, ManualRelayoutCtx<LocalCtx>> app_man(shim, m);
  app_man.run(3, 0);

  expect_bitwise(app_on.fetch_q(), app_man.fetch_q(), "airfoil q");
  expect_bitwise(app_on.fetch_res(), app_man.fetch_res(), "airfoil res");
}

INSTANTIATE_TEST_SUITE_P(Backends, AirfoilLocalBitwiseP,
                         ::testing::Values(Backend::Seq, Backend::OpenMP, Backend::Simd,
                                           Backend::Simt),
                         [](const auto& info) { return backend_name(info.param); });

class VolnaLocalBitwiseP : public ::testing::TestWithParam<Backend> {};

TEST_P(VolnaLocalBitwiseP, RenumberMatchesManualRelayout) {
  const auto m = volna_mesh();
  ExecConfig cfg;
  cfg.backend = GetParam();

  LocalCtx on(cfg);
  on.set_renumber(true);
  volna::Volna<float, LocalCtx> app_on(on, m);
  app_on.run(3);
  const auto perms = on.applied_permutations();
  ASSERT_FALSE(perms.empty());

  LocalCtx off(cfg);
  ManualRelayoutCtx<LocalCtx> shim(off, perms);
  volna::Volna<float, ManualRelayoutCtx<LocalCtx>> app_man(shim, m);
  app_man.run(3);

  expect_bitwise(app_on.fetch_state(), app_man.fetch_state(), "volna state");
}

INSTANTIATE_TEST_SUITE_P(Backends, VolnaLocalBitwiseP,
                         ::testing::Values(Backend::Seq, Backend::OpenMP, Backend::Simd,
                                           Backend::Simt),
                         [](const auto& info) { return backend_name(info.param); });

class DistBitwiseP : public ::testing::TestWithParam<dist::ExchangeMode> {};

TEST_P(DistBitwiseP, AirfoilRenumberMatchesManualRelayout) {
  const auto m = airfoil_mesh();
  ExecConfig cfg;
  cfg.backend = Backend::OpenMP;
  cfg.nthreads = 1;

  dist::DistCtx on(3, cfg);
  on.set_renumber(true);
  on.set_exchange_mode(GetParam());
  airfoil::Airfoil<double, dist::DistCtx> app_on(on, m);
  app_on.run(3, 0);
  const auto perms = on.applied_permutations();
  ASSERT_FALSE(perms.empty());

  dist::DistCtx off(3, cfg);
  off.set_exchange_mode(GetParam());
  ManualRelayoutCtx<dist::DistCtx> shim(off, perms);
  airfoil::Airfoil<double, ManualRelayoutCtx<dist::DistCtx>> app_man(shim, m);
  app_man.run(3, 0);

  expect_bitwise(app_on.fetch_q(), app_man.fetch_q(), "dist airfoil q");
}

TEST_P(DistBitwiseP, VolnaRenumberMatchesManualRelayout) {
  const auto m = volna_mesh();
  ExecConfig cfg;
  cfg.backend = Backend::OpenMP;
  cfg.nthreads = 1;

  dist::DistCtx on(3, cfg);
  on.set_renumber(true);
  on.set_exchange_mode(GetParam());
  volna::Volna<float, dist::DistCtx> app_on(on, m);
  app_on.run(3);
  const auto perms = on.applied_permutations();
  ASSERT_FALSE(perms.empty());

  dist::DistCtx off(3, cfg);
  off.set_exchange_mode(GetParam());
  ManualRelayoutCtx<dist::DistCtx> shim(off, perms);
  volna::Volna<float, ManualRelayoutCtx<dist::DistCtx>> app_man(shim, m);
  app_man.run(3);

  expect_bitwise(app_on.fetch_state(), app_man.fetch_state(), "dist volna state");
}

INSTANTIATE_TEST_SUITE_P(ExchangeModes, DistBitwiseP,
                         ::testing::Values(dist::ExchangeMode::Blocking,
                                           dist::ExchangeMode::Phased,
                                           dist::ExchangeMode::Overlap),
                         [](const auto& info) { return dist::exchange_mode_name(info.param); });

// ===== on vs off: reassociation tolerance ===================================

/// Renumbering on vs off runs the SAME per-edge arithmetic but accumulates
/// each cell's increments in a different order, so results agree to
/// floating-point reassociation — not bitwise. This pins the tolerance (and
/// documents why the bitwise contract above is stated against the manual
/// relayout instead).
TEST(Renumber, OnVsOffAgreesWithinReassociationTolerance) {
  const auto m = airfoil_mesh();
  const ExecConfig cfg{.backend = Backend::Seq};

  LocalCtx off(cfg);
  airfoil::Airfoil<double, LocalCtx> a(off, m);
  a.run(3, 0);
  const auto qa = a.fetch_q();

  LocalCtx on(cfg);
  on.set_renumber(true);
  airfoil::Airfoil<double, LocalCtx> b(on, m);
  b.run(3, 0);
  const auto qb = b.fetch_q();

  ASSERT_EQ(qa.size(), qb.size());
  // Divergence relative to the field norm: near-zero components (the
  // y-momentum on a free-stream state is pure cancellation residue ~1e-17)
  // would make element-wise relative error meaningless.
  double norm = 0.0, max_diff = 0.0;
  for (std::size_t i = 0; i < qa.size(); ++i) {
    norm = std::max(norm, std::abs(qa[i]));
    max_diff = std::max(max_diff, std::abs(qa[i] - qb[i]));
  }
  ASSERT_GT(norm, 0.0);
  EXPECT_LT(max_diff / norm, 1e-12);
  EXPECT_GT(max_diff, 0.0) << "orders really differ (the comparison is not vacuous)";
}

// ===== structure preservation ===============================================

/// Renumbering moves rows and relabels targets but never reorders a row's
/// slots or an edge's node pair, so the finite-volume orientation convention
/// established by orient_edges_fv must survive: re-running it after RCM +
/// edge sorting is a no-op.
TEST(MeshRenumber, OrientEdgesFvConventionPreserved) {
  for (int kind = 0; kind < 3; ++kind) {
    auto m = kind == 0   ? mesh::make_quad_box(9, 7)
             : kind == 1 ? mesh::make_tri_periodic(8, 8, 2.0, 2.0)
                         : mesh::make_airfoil_omesh(32, 9);
    mesh::shuffle_edges(m, 5);
    mesh::renumber_cells_rcm(m);
    mesh::sort_edges_by_cell(m);
    const auto edge_nodes = m.edge_nodes;
    const auto bedge_nodes = m.bedge_nodes;
    mesh::orient_edges_fv(m);
    EXPECT_EQ(edge_nodes, m.edge_nodes) << "mesh kind " << kind;
    EXPECT_EQ(bedge_nodes, m.bedge_nodes) << "mesh kind " << kind;
    EXPECT_NO_THROW(m.validate());
  }
}

}  // namespace
