// Per-dat memory layout policy tests (core/layout.hpp).
//
// The policy's contract, pinned here:
//  1. addressing — layout_offset is a bijection into the padded storage for
//     every layout, and the per-backend default heuristic is stable;
//  2. value transparency — a Seq run is BITWISE identical across AoS, SoA
//     and AoSoA for all three applications (the scalar path stages element
//     rows through scratch, so the kernel sees identical values in
//     identical order regardless of physical layout), and fetch() keeps
//     returning declaration-order AoS values after renumber + relayout;
//  3. distributed transport — rank replicas inherit the layout policy and
//     the halo exchange honors non-AoS strides: a DistCtx run under SoA or
//     AoSoA is bitwise identical to the AoS run across every exchange mode
//     and both exchanger implementations;
//  4. lifecycle — layout requests after finalize (or the first tracked loop
//     execution) throw instead of silently never applying;
//  5. 3D partitioning — partition_rcb with ndims == 3 bisects the true 3D
//     bounding box (a z-elongated mesh splits into z bands, which an xy
//     projection could never produce);
//  6. Simt staging — ExecConfig::simt_staging stays within field-norm
//     tolerance of the Seq reference (block-granular INC reassociation
//     makes bitwise the wrong bar there).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "apps/airfoil/airfoil.hpp"
#include "apps/tet3d/tet3d.hpp"
#include "apps/volna/volna.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "dist/exchange.hpp"
#include "dist/partition.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

constexpr Layout kAll[3] = {Layout::AoS, Layout::SoA, Layout::AoSoA};

template <class Real>
void expect_bitwise(const aligned_vector<Real>& a, const aligned_vector<Real>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Real)), 0)
      << what << ": diverged bitwise across layouts";
}

template <class Real>
double field_norm_divergence(const aligned_vector<Real>& ref, const aligned_vector<Real>& got) {
  if (ref.size() != got.size()) return 1.0;
  double norm = 0.0, max_diff = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    norm = std::max(norm, std::abs(static_cast<double>(ref[i])));
    max_diff = std::max(max_diff, std::abs(static_cast<double>(ref[i]) - got[i]));
  }
  return norm > 0.0 ? max_diff / norm : 1.0;
}

mesh::UnstructuredMesh airfoil_mesh() {
  auto m = mesh::make_airfoil_omesh(48, 16);
  mesh::shuffle_edges(m, 13);
  return m;
}

mesh::UnstructuredMesh volna_mesh() {
  auto m = mesh::make_tri_periodic(20, 20, 4.0, 4.0);
  mesh::shuffle_edges(m, 29);
  return m;
}

mesh::TetMesh tet_mesh() { return mesh::make_tet_box(6, 6, 5); }

// ===== addressing ===========================================================

TEST(LayoutOffset, BijectionIntoPaddedStorage) {
  const idx_t n = 37;  // deliberately not a multiple of kAoSoALanes
  const int dim = 3;
  const idx_t plane = padded_rows(n);
  for (Layout l : kAll) {
    const std::size_t cap = static_cast<std::size_t>(l == Layout::AoS ? n * dim : plane * dim);
    std::set<std::size_t> seen;
    for (idx_t e = 0; e < n; ++e)
      for (int c = 0; c < dim; ++c) {
        const std::size_t off = layout_offset(l, e, c, dim, plane);
        EXPECT_LT(off, cap) << layout_name(l);
        EXPECT_TRUE(seen.insert(off).second)
            << layout_name(l) << ": (e=" << e << ", c=" << c << ") collides";
      }
  }
}

TEST(LayoutOffset, AgreesWithDocumentedFormulas) {
  const idx_t plane = padded_rows(40);
  EXPECT_EQ(layout_offset(Layout::AoS, 7, 2, 4, plane), 7u * 4 + 2);
  EXPECT_EQ(layout_offset(Layout::SoA, 7, 2, 4, plane),
            2u * static_cast<std::size_t>(plane) + 7);
  EXPECT_EQ(layout_offset(Layout::AoSoA, 18, 2, 4, plane),
            1u * (kAoSoALanes * 4) + 2u * kAoSoALanes + 2);
}

TEST(LayoutDefault, PerBackendHeuristic) {
  EXPECT_EQ(default_layout(Backend::Seq), Layout::AoS);
  EXPECT_EQ(default_layout(Backend::OpenMP), Layout::AoS);
  EXPECT_EQ(default_layout(Backend::AutoVec), Layout::SoA);
  EXPECT_EQ(default_layout(Backend::Simd), Layout::SoA);
  EXPECT_EQ(default_layout(Backend::Simt), Layout::SoA);
}

// ===== value transparency: Seq bitwise across layouts =======================

class SeqBitwiseP : public ::testing::TestWithParam<Layout> {};

TEST_P(SeqBitwiseP, AirfoilMatchesAoS) {
  const auto m = airfoil_mesh();
  const ExecConfig cfg{.backend = Backend::Seq};
  const auto run = [&](Layout l) {
    LocalCtx ctx(cfg);
    ctx.set_renumber(true);
    ctx.set_default_layout(l);
    airfoil::Airfoil<double, LocalCtx> app(ctx, m);
    app.run(3, 0);
    return std::make_pair(app.fetch_q(), app.fetch_res());
  };
  const auto ref = run(Layout::AoS);
  const auto got = run(GetParam());
  expect_bitwise(ref.first, got.first, "airfoil q");
  expect_bitwise(ref.second, got.second, "airfoil res");
}

TEST_P(SeqBitwiseP, VolnaMatchesAoS) {
  const auto m = volna_mesh();
  const ExecConfig cfg{.backend = Backend::Seq};
  const auto run = [&](Layout l) {
    LocalCtx ctx(cfg);
    ctx.set_default_layout(l);
    volna::Volna<float, LocalCtx> app(ctx, m);
    app.run(3);
    return app.fetch_state();
  };
  expect_bitwise(run(Layout::AoS), run(GetParam()), "volna state");
}

TEST_P(SeqBitwiseP, Tet3DMatchesAoS) {
  const auto m = tet_mesh();
  const ExecConfig cfg{.backend = Backend::Seq};
  const auto run = [&](Layout l) {
    LocalCtx ctx(cfg);
    ctx.set_renumber(true);
    ctx.set_default_layout(l);
    tet3d::Tet3D<double, LocalCtx> app(ctx, m);
    app.run(3, 0);
    return std::make_pair(app.fetch_u(), app.fetch_grad());
  };
  const auto ref = run(Layout::AoS);
  const auto got = run(GetParam());
  expect_bitwise(ref.first, got.first, "tet3d u");
  expect_bitwise(ref.second, got.second, "tet3d grad");
}

INSTANTIATE_TEST_SUITE_P(Layouts, SeqBitwiseP,
                         ::testing::Values(Layout::SoA, Layout::AoSoA),
                         [](const auto& info) { return layout_name(info.param); });

// ===== fetch round-trip under renumber + relayout ===========================

TEST(LocalLayout, FetchRoundTripsDeclarationOrder) {
  auto m = mesh::make_quad_box(8, 6);
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  aligned_vector<double> cv(static_cast<std::size_t>(m.ncells) * 3);
  for (std::size_t i = 0; i < cv.size(); ++i) cv[i] = 0.5 + static_cast<double>(i);
  aligned_vector<float> ev(static_cast<std::size_t>(m.nedges) * 2);
  for (std::size_t i = 0; i < ev.size(); ++i) ev[i] = 0.25f + static_cast<float>(i);
  auto cdat = ctx.decl_dat<double>("cdat", cells, 3, cv);
  auto edat = ctx.decl_dat<float>("edat", edges, 2, ev);
  ctx.set_layout(cdat, Layout::SoA);
  ctx.set_layout(edat, Layout::AoSoA);

  ctx.renumber(cells);  // permutes AoS rows first...
  ctx.finalize();       // ...then materializes the physical relayout

  EXPECT_EQ(cdat->layout(), Layout::SoA);
  EXPECT_EQ(edat->layout(), Layout::AoSoA);
  EXPECT_EQ(cdat->plane(), padded_rows(m.ncells));

  aligned_vector<double> cout;
  ctx.fetch(cdat, cout);
  aligned_vector<float> eout;
  ctx.fetch(edat, eout);
  expect_bitwise(cv, cout, "cell dat round-trip");
  expect_bitwise(ev, eout, "edge dat round-trip");

  // The physical storage really changed (the round-trip is not vacuous):
  // at() must still address every declared value through the new layout.
  const auto* perm = ctx.permutation(cells);
  ASSERT_NE(perm, nullptr);
  for (idx_t e = 0; e < m.ncells; ++e)
    for (int c = 0; c < 3; ++c)
      EXPECT_EQ(cdat->at((*perm)[static_cast<std::size_t>(e)], c),
                cv[static_cast<std::size_t>(e) * 3 + c]);
}

TEST(LocalLayout, DefaultSkipsScalarAndExplicitDats) {
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", 24);
  auto scalar = ctx.decl_dat<double>("scalar", cells, 1);
  auto vec = ctx.decl_dat<double>("vec", cells, 4);
  auto pinned = ctx.decl_dat<double>("pinned", cells, 4);
  ctx.set_layout(pinned, Layout::AoSoA);
  ctx.set_default_layout(Layout::SoA);
  ctx.finalize();
  EXPECT_EQ(scalar->layout(), Layout::AoS) << "dim-1 dats gain nothing from SoA";
  EXPECT_EQ(vec->layout(), Layout::SoA);
  EXPECT_EQ(pinned->layout(), Layout::AoSoA) << "explicit request beats the default";
}

// ===== lifecycle: layout requests freeze at finalize / first run ============

struct SetOneKernel {
  template <class T>
  void operator()(T* x) const {
    x[0] = T(1);
  }
};

TEST(LocalLayout, RequestsThrowAfterFinalize) {
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", 8);
  auto d = ctx.decl_dat<double>("d", cells, 2);
  ctx.finalize();
  EXPECT_THROW(ctx.set_layout(d, Layout::SoA), Error);
  EXPECT_THROW(ctx.set_default_layout(Layout::SoA), Error);
}

TEST(LocalLayout, RequestsThrowAfterFirstLoopRan) {
  // A loop handle's bound access paths read the physical layout; changing it
  // underneath a pinned plan would corrupt every subsequent gather.
  LocalCtx ctx;
  auto cells = ctx.decl_set("cells", 8);
  auto d = ctx.decl_dat<double>("d", cells, 2);
  ctx.loop(SetOneKernel{}, "set_one", cells, ctx.arg<opv::WRITE, 2>(d));
  EXPECT_THROW(ctx.set_layout(d, Layout::SoA), Error);
  EXPECT_THROW(ctx.set_default_layout(Layout::AoSoA), Error);
}

TEST(DistLayout, RequestsThrowAfterFinalize) {
  auto m = mesh::make_quad_box(6, 5);
  const auto centroids = airfoil::cell_centroids(m);
  dist::DistCtx ctx(2, ExecConfig{});
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.set_partition_coords(cells, centroids.data());
  ctx.decl_map("pecell", edges, cells, 2, m.edge_cells);
  auto d = ctx.decl_dat<double>("d", cells, 2);
  ctx.finalize();
  EXPECT_THROW(ctx.set_layout(d, Layout::SoA), Error);
  EXPECT_THROW(ctx.set_default_layout(Layout::SoA), Error);
}

// ===== distributed transport: non-AoS halos across modes and exchangers ====

class DistLayoutP
    : public ::testing::TestWithParam<std::tuple<dist::ExchangeMode, Layout, bool>> {};

TEST_P(DistLayoutP, AirfoilMatchesAoSBitwise) {
  const auto [mode, layout, staged] = GetParam();
  const auto m = airfoil_mesh();
  ExecConfig cfg;
  cfg.backend = Backend::OpenMP;
  cfg.nthreads = 1;

  const auto run = [&](Layout l) {
    dist::DistCtx ctx(3, cfg);
    ctx.set_renumber(true);
    ctx.set_exchange_mode(mode);
    if (staged) ctx.set_exchanger(std::make_unique<dist::StagedExchanger>(/*async=*/true));
    ctx.set_default_layout(l);
    airfoil::Airfoil<double, dist::DistCtx> app(ctx, m);
    app.run(3, 0);
    return app.fetch_q();
  };
  // The scalar path stages rows through scratch and the halo transport is
  // layout-transparent, so the layout policy must not change a single bit.
  expect_bitwise(run(Layout::AoS), run(layout), "dist airfoil q");
}

TEST_P(DistLayoutP, Tet3DMatchesAoSBitwise) {
  const auto [mode, layout, staged] = GetParam();
  const auto m = tet_mesh();
  ExecConfig cfg;
  cfg.backend = Backend::OpenMP;
  cfg.nthreads = 1;

  const auto run = [&](Layout l) {
    dist::DistCtx ctx(3, cfg);
    ctx.set_exchange_mode(mode);
    if (staged) ctx.set_exchanger(std::make_unique<dist::StagedExchanger>(/*async=*/true));
    ctx.set_default_layout(l);
    tet3d::Tet3D<double, dist::DistCtx> app(ctx, m);
    app.run(3, 0);
    return app.fetch_u();
  };
  expect_bitwise(run(Layout::AoS), run(layout), "dist tet3d u");
}

INSTANTIATE_TEST_SUITE_P(
    ModesLayoutsExchangers, DistLayoutP,
    ::testing::Combine(::testing::Values(dist::ExchangeMode::Blocking,
                                         dist::ExchangeMode::Phased,
                                         dist::ExchangeMode::Overlap),
                       ::testing::Values(Layout::SoA, Layout::AoSoA),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(dist::exchange_mode_name(std::get<0>(info.param))) +
             layout_name(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "Staged" : "Memcpy");
    });

// ===== vector backends: layout changes values only within tolerance =========

class VectorLayoutP : public ::testing::TestWithParam<std::tuple<Backend, Layout>> {};

TEST_P(VectorLayoutP, AirfoilWithinFieldNormOfSeqAoS) {
  const auto [backend, layout] = GetParam();
  const auto m = airfoil_mesh();

  LocalCtx ref_ctx(ExecConfig{.backend = Backend::Seq});
  ref_ctx.set_renumber(true);
  airfoil::Airfoil<double, LocalCtx> ref(ref_ctx, m);
  ref.run(3, 0);

  LocalCtx ctx(ExecConfig{.backend = backend});
  ctx.set_renumber(true);
  ctx.set_default_layout(layout);
  airfoil::Airfoil<double, LocalCtx> app(ctx, m);
  app.run(3, 0);

  EXPECT_LT(field_norm_divergence(ref.fetch_q(), app.fetch_q()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsLayouts, VectorLayoutP,
    ::testing::Combine(::testing::Values(Backend::OpenMP, Backend::AutoVec, Backend::Simd,
                                         Backend::Simt),
                       ::testing::Values(Layout::SoA, Layout::AoSoA)),
    [](const auto& info) {
      return std::string(backend_name(std::get<0>(info.param))) +
             layout_name(std::get<1>(info.param));
    });

// ===== Simt shared-scratch staging ==========================================

class SimtStagingP : public ::testing::TestWithParam<Layout> {};

TEST_P(SimtStagingP, AirfoilWithinFieldNormOfSeq) {
  const auto m = airfoil_mesh();
  LocalCtx ref_ctx(ExecConfig{.backend = Backend::Seq});
  airfoil::Airfoil<double, LocalCtx> ref(ref_ctx, m);
  ref.run(3, 0);

  ExecConfig cfg{.backend = Backend::Simt};
  cfg.simt_staging = true;
  LocalCtx ctx(cfg);
  ctx.set_default_layout(GetParam());
  airfoil::Airfoil<double, LocalCtx> app(ctx, m);
  app.run(3, 0);
  // Staging reassociates indirect-increment sums at block granularity, so
  // the contract is field-norm tolerance, not bitwise (config.hpp).
  EXPECT_LT(field_norm_divergence(ref.fetch_q(), app.fetch_q()), 1e-12);
}

TEST_P(SimtStagingP, Tet3DWithinFieldNormOfSeq) {
  const auto m = tet_mesh();
  LocalCtx ref_ctx(ExecConfig{.backend = Backend::Seq});
  tet3d::Tet3D<double, LocalCtx> ref(ref_ctx, m);
  ref.run(3, 0);

  ExecConfig cfg{.backend = Backend::Simt};
  cfg.simt_staging = true;
  LocalCtx ctx(cfg);
  ctx.set_default_layout(GetParam());
  tet3d::Tet3D<double, LocalCtx> app(ctx, m);
  app.run(3, 0);
  EXPECT_LT(field_norm_divergence(ref.fetch_u(), app.fetch_u()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Layouts, SimtStagingP,
                         ::testing::Values(Layout::AoS, Layout::SoA, Layout::AoSoA),
                         [](const auto& info) { return layout_name(info.param); });

// ===== 3D recursive coordinate bisection ====================================

/// Points on a 4 x 4 x 32 grid, z spacing 1, x/y spacing 0.1: the true
/// bounding box is z-elongated, so every RCB split must cut z. An xy
/// projection would see a 0.3 x 0.3 square and produce parts that mix all
/// z strata.
aligned_vector<double> z_elongated_points(idx_t nx, idx_t ny, idx_t nz) {
  aligned_vector<double> xyz;
  xyz.reserve(static_cast<std::size_t>(nx * ny * nz) * 3);
  for (idx_t z = 0; z < nz; ++z)
    for (idx_t y = 0; y < ny; ++y)
      for (idx_t x = 0; x < nx; ++x) {
        xyz.push_back(0.1 * static_cast<double>(x));
        xyz.push_back(0.1 * static_cast<double>(y));
        xyz.push_back(static_cast<double>(z));
      }
  return xyz;
}

TEST(Partition3D, RcbSplitsZElongatedBoxIntoZBands) {
  const idx_t nx = 4, ny = 4, nz = 32;
  const idx_t n = nx * ny * nz;
  const auto xyz = z_elongated_points(nx, ny, nz);
  for (int nparts : {2, 4}) {
    const auto owner = dist::partition_rcb(xyz.data(), n, nparts, 3);
    const auto sizes = dist::part_sizes(owner, nparts);
    for (int p = 0; p < nparts; ++p)
      EXPECT_EQ(sizes[static_cast<std::size_t>(p)], n / nparts) << "nparts=" << nparts;
    // Every part must own a contiguous, pairwise-disjoint z band.
    std::vector<double> zlo(static_cast<std::size_t>(nparts), 1e300);
    std::vector<double> zhi(static_cast<std::size_t>(nparts), -1e300);
    for (idx_t i = 0; i < n; ++i) {
      const double z = xyz[static_cast<std::size_t>(i) * 3 + 2];
      auto& lo = zlo[static_cast<std::size_t>(owner[static_cast<std::size_t>(i)])];
      auto& hi = zhi[static_cast<std::size_t>(owner[static_cast<std::size_t>(i)])];
      lo = std::min(lo, z);
      hi = std::max(hi, z);
    }
    for (int a = 0; a < nparts; ++a)
      for (int b = 0; b < nparts; ++b)
        if (a != b)
          EXPECT_TRUE(zhi[static_cast<std::size_t>(a)] < zlo[static_cast<std::size_t>(b)] ||
                      zhi[static_cast<std::size_t>(b)] < zlo[static_cast<std::size_t>(a)])
              << "parts " << a << " and " << b << " overlap in z (nparts=" << nparts << ")";
  }
}

TEST(Partition3D, RcbRejectsUnsupportedDimensionality) {
  const auto xyz = z_elongated_points(2, 2, 2);
  EXPECT_THROW(dist::partition_rcb(xyz.data(), 8, 2, 4), Error);
  EXPECT_THROW(dist::partition_rcb(xyz.data(), 8, 2, 1), Error);
}

}  // namespace
