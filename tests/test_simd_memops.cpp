// SIMD memory-operation tests: gathers (plain & masked), strided loads and
// stores, scatters (serial, hardware, masked), tail masks — including the
// duplicate-index semantics that the coloring correctness argument rests on:
// serial scatter-add must accumulate duplicates, hardware scatter loses them
// (which is why it is only legal under permute colorings).
#include <gtest/gtest.h>

#include <numeric>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "simd/simd.hpp"

namespace {

using namespace opv;
namespace simd = opv::simd;

template <class V>
class MemOps : public ::testing::Test {};

using VecTypes = ::testing::Types<
    simd::VecP<double, 4>, simd::VecP<double, 8>, simd::VecP<float, 8>
#if defined(__AVX2__)
    ,
    simd::F64x4, simd::F32x8
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
    ,
    simd::F64x8, simd::F32x16
#endif
    >;
TYPED_TEST_SUITE(MemOps, VecTypes);

TYPED_TEST(MemOps, GatherArbitraryIndices) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, V::width>;
  constexpr int N = 100;
  aligned_vector<S> data(N);
  for (int i = 0; i < N; ++i) data[i] = S(i) * S(0.5);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::int32_t idx[V::width];
    for (int l = 0; l < V::width; ++l) idx[l] = static_cast<std::int32_t>(rng.next_below(N));
    const V g = V::gather(data.data(), IV::loadu(idx));
    for (int l = 0; l < V::width; ++l) EXPECT_EQ(g[l], data[idx[l]]);
  }
}

TYPED_TEST(MemOps, StridedLoadMatchesAoSComponent) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  constexpr int dim = 4;
  aligned_vector<S> aos(V::width * dim);
  for (std::size_t i = 0; i < aos.size(); ++i) aos[i] = S(i);
  for (int c = 0; c < dim; ++c) {
    const V v = V::strided(aos.data() + c, dim);
    for (int l = 0; l < V::width; ++l) EXPECT_EQ(v[l], S(l * dim + c));
  }
}

TYPED_TEST(MemOps, StoreStridedRoundtrip) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  constexpr int dim = 3;
  const V v = V::iota(S(1));
  aligned_vector<S> out(V::width * dim, S(-1));
  simd::store_strided(out.data() + 1, dim, v);
  for (int l = 0; l < V::width; ++l) EXPECT_EQ(out[1 + l * dim], S(1 + l));
  // Untouched slots stay -1.
  EXPECT_EQ(out[0], S(-1));
  EXPECT_EQ(out[2], S(-1));
}

TYPED_TEST(MemOps, ScatterSerialLastLaneWinsOnDuplicates) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, V::width>;
  aligned_vector<S> out(8, S(0));
  // All lanes write slot 5: sequential semantics -> last lane's value.
  const IV idx(5);
  const V vals = V::iota(S(1));
  simd::scatter_serial(out.data(), idx, vals);
  EXPECT_EQ(out[5], S(V::width));
}

TYPED_TEST(MemOps, ScatterAddSerialAccumulatesDuplicates) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, V::width>;
  aligned_vector<S> out(8, S(0));
  const IV idx(3);
  simd::scatter_add_serial(out.data(), idx, V(S(1)));
  // Serial scatter-add with W duplicate lanes adds W times.
  EXPECT_EQ(out[3], S(V::width));
}

TYPED_TEST(MemOps, ScatterAddHwCorrectForUniqueIndices) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, V::width>;
  aligned_vector<S> out(2 * V::width, S(10));
  std::int32_t idx[V::width];
  for (int l = 0; l < V::width; ++l) idx[l] = 2 * l;  // unique
  simd::scatter_add_hw(out.data(), IV::loadu(idx), V::iota(S(1)));
  for (int l = 0; l < V::width; ++l) {
    EXPECT_EQ(out[2 * l], S(10 + 1 + l));
    EXPECT_EQ(out[2 * l + 1], S(10));
  }
}

TYPED_TEST(MemOps, ScatterAddHwLosesDuplicates) {
  // The exact failure mode that makes hardware scatter illegal without
  // permute coloring: duplicate lanes collapse to a single update.
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, V::width>;
  aligned_vector<S> out(4, S(0));
  simd::scatter_add_hw(out.data(), IV(1), V(S(1)));
  EXPECT_EQ(out[1], S(1)) << "hardware scatter must NOT accumulate duplicates";
}

TYPED_TEST(MemOps, MaskedScatterAddOnlyTouchesActiveLanes) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, V::width>;
  aligned_vector<S> out(V::width, S(0));
  std::int32_t idx[V::width];
  std::iota(idx, idx + V::width, 0);
  // Mask: even lanes active (mask built from a value comparison).
  alignas(64) S sel[V::width];
  for (int l = 0; l < V::width; ++l) sel[l] = S(l % 2 == 0 ? 1 : 0);
  const auto mask = (V::loada(sel) > V(S(0.5)));
  simd::scatter_add_serial_masked(out.data(), IV::loadu(idx), V(S(7)), mask);
  for (int l = 0; l < V::width; ++l) EXPECT_EQ(out[l], S(l % 2 == 0 ? 7 : 0)) << "lane " << l;
}

TYPED_TEST(MemOps, GatherMaskedUsesFallbackOnInactiveLanes) {
  using V = TypeParam;
  using S = typename simd::vec_traits<V>::scalar;
  using IV = simd::Vec<std::int32_t, V::width>;
  aligned_vector<S> data(V::width);
  for (int i = 0; i < V::width; ++i) data[i] = S(100 + i);
  std::int32_t idx[V::width];
  std::iota(idx, idx + V::width, 0);
  alignas(64) S sel[V::width];
  for (int l = 0; l < V::width; ++l) sel[l] = S(l < V::width / 2 ? 1 : 0);
  const auto mask = (V::loada(sel) > V(S(0.5)));
  const V g = V::gather_masked(data.data(), IV::loadu(idx), mask, V(S(-1)));
  for (int l = 0; l < V::width; ++l)
    EXPECT_EQ(g[l], l < V::width / 2 ? data[l] : S(-1)) << "lane " << l;
}

// ---- tail masks (ISA-specific helpers) -------------------------------------

#if defined(__AVX2__)
TEST(TailMask, F64x4) {
  for (int n = 0; n <= 4; ++n) {
    const auto m = simd::tail_mask_f64x4(n);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(m[l], l < n) << "n=" << n << " lane " << l;
  }
}
TEST(TailMask, F32x8) {
  for (int n = 0; n <= 8; ++n) {
    const auto m = simd::tail_mask_f32x8(n);
    for (int l = 0; l < 8; ++l) EXPECT_EQ(m[l], l < n);
  }
}
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
TEST(TailMask, K8AndK16) {
  for (int n = 0; n <= 8; ++n) {
    const auto m = simd::tail_mask_k8(n);
    for (int l = 0; l < 8; ++l) EXPECT_EQ(m[l], l < n);
  }
  for (int n = 0; n <= 16; ++n) {
    const auto m = simd::tail_mask_k16(n);
    for (int l = 0; l < 16; ++l) EXPECT_EQ(m[l], l < n);
  }
}
#endif

// ---- int vectors -------------------------------------------------------------

template <class IV>
class IntOps : public ::testing::Test {};

using IntTypes = ::testing::Types<
    simd::VecP<std::int32_t, 4>, simd::VecP<std::int32_t, 8>
#if defined(__AVX2__)
    ,
    simd::I32x4, simd::I32x8
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
    ,
    simd::I32x16
#endif
    >;
TYPED_TEST_SUITE(IntOps, IntTypes);

TYPED_TEST(IntOps, ArithmeticAndCompare) {
  using IV = TypeParam;
  const IV a = IV::iota(1);
  const IV b(3);
  const IV sum = a + b, dif = a - b, mul = a * b;
  for (int l = 0; l < IV::width; ++l) {
    EXPECT_EQ(sum[l], 1 + l + 3);
    EXPECT_EQ(dif[l], 1 + l - 3);
    EXPECT_EQ(mul[l], (1 + l) * 3);
  }
  const auto eq = (a == b);
  const auto gt = (a > b);
  for (int l = 0; l < IV::width; ++l) {
    EXPECT_EQ(eq[l], 1 + l == 3);
    EXPECT_EQ(gt[l], 1 + l > 3);
  }
}

TYPED_TEST(IntOps, GatherAndSelect) {
  using IV = TypeParam;
  aligned_vector<std::int32_t> data(64);
  for (int i = 0; i < 64; ++i) data[i] = i * 10;
  std::int32_t idx[IV::width];
  for (int l = 0; l < IV::width; ++l) idx[l] = (l * 7) % 64;
  const IV g = IV::gather(data.data(), IV::loadu(idx));
  for (int l = 0; l < IV::width; ++l) EXPECT_EQ(g[l], ((l * 7) % 64) * 10);
  const IV sel = simd::select(g > IV(200), IV(1), IV(0));
  for (int l = 0; l < IV::width; ++l) EXPECT_EQ(sel[l], g[l] > 200 ? 1 : 0);
}

// ---- map-shaped access pattern (what the engine actually does) --------------

TEST(EnginePattern, GatherScaledIndicesMatchesScalar) {
  // Reproduce the engine's indirect load: idx = map[e*mdim+k]; addr =
  // idx*dim + c — for every (W, dim) combination used by the apps.
  Rng rng(99);
  constexpr int N = 64, M = 256;
  aligned_vector<std::int32_t> map(N * 2);
  for (auto& x : map) x = static_cast<std::int32_t>(rng.next_below(M));
  aligned_vector<double> data(M * 4);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 0.25 * double(i);

  auto check = [&]<int W>(std::integral_constant<int, W>) {
    using V = simd::Vec<double, W>;
    using IV = simd::Vec<std::int32_t, W>;
    for (int dim : {1, 2, 4}) {
      for (int n = 0; n + W <= N; n += W) {
        const IV tgt = IV::strided(map.data() + n * 2 + 1, 2);
        const IV sidx = tgt * IV(dim);
        for (int c = 0; c < dim; ++c) {
          const V g = V::gather(data.data() + c, sidx);
          for (int l = 0; l < W; ++l)
            ASSERT_EQ(g[l], data[std::size_t(map[(n + l) * 2 + 1]) * dim + c]);
        }
      }
    }
  };
  check(std::integral_constant<int, 4>{});
  check(std::integral_constant<int, 8>{});
  check(std::integral_constant<int, 16>{});
}

}  // namespace
