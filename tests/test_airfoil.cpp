// Airfoil application tests: kernel unit values against hand computations,
// cross-backend equivalence of full iterations, residual regression, SP/DP
// behavior, distributed execution, and physical sanity (free stream is a
// steady state).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/airfoil/airfoil.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;
using airfoil::Consts;

TEST(AirfoilConsts, MatchOP2Reference) {
  const auto c = Consts<double>::standard();
  EXPECT_DOUBLE_EQ(c.gam, 1.4);
  EXPECT_DOUBLE_EQ(c.gm1, 0.4);
  EXPECT_DOUBLE_EQ(c.cfl, 0.9);
  EXPECT_DOUBLE_EQ(c.eps, 0.05);
  // qinf: r=1, u = sqrt(gam)*mach = sqrt(1.4)*0.4, e = p/(r*gm1)+0.5u^2.
  const double u = std::sqrt(1.4) * 0.4;
  EXPECT_DOUBLE_EQ(c.qinf[0], 1.0);
  EXPECT_NEAR(c.qinf[1], u, 1e-15);
  EXPECT_DOUBLE_EQ(c.qinf[2], 0.0);
  EXPECT_NEAR(c.qinf[3], 1.0 / 0.4 + 0.5 * u * u, 1e-15);
}

TEST(AirfoilKernels, SaveSolnCopies) {
  const double q[4] = {1, 2, 3, 4};
  double qold[4] = {};
  airfoil::SaveSoln<double>{}(q, qold);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(qold[i], q[i]);
}

TEST(AirfoilKernels, AdtCalcHandComputed) {
  // Unit square cell, free-stream state.
  const auto c = Consts<double>::standard();
  const double x1[2] = {0, 0}, x2[2] = {1, 0}, x3[2] = {1, 1}, x4[2] = {0, 1};
  const double* q = c.qinf;
  double adt = -1;
  airfoil::AdtCalc<double>{c}(x1, x2, x3, x4, q, &adt);

  // By hand: ri=1, u=qinf[1], v=0; cs = sqrt(gam*gm1*(e - 0.5u^2)).
  const double u = c.qinf[1];
  const double cs = std::sqrt(c.gam * c.gm1 * (c.qinf[3] - 0.5 * u * u));
  // Four unit edges: |u*dy - v*dx| summed = |u|*2 (two vertical hops) +
  // 0 * 2 horizontal; each edge adds cs*1.
  const double expect = (std::abs(u) * 2 + 4 * cs) / c.cfl;
  EXPECT_NEAR(adt, expect, 1e-12);
}

TEST(AirfoilKernels, ResCalcAntisymmetric) {
  // Contributions to the two cells are equal and opposite by construction.
  const auto c = Consts<double>::standard();
  const double x1[2] = {0, 0}, x2[2] = {0, 1};
  double q1[4] = {1.0, 0.2, 0.1, 2.0}, q2[4] = {1.1, 0.1, -0.1, 2.2};
  const double adt1 = 1.7, adt2 = 2.1;
  double res1[4] = {}, res2[4] = {};
  airfoil::ResCalc<double>{c}(x1, x2, q1, q2, &adt1, &adt2, res1, res2);
  for (int n = 0; n < 4; ++n) {
    EXPECT_NE(res1[n], 0.0);
    EXPECT_NEAR(res1[n], -res2[n], 1e-14);
  }
}

TEST(AirfoilKernels, ResCalcZeroForUniformFlowOnMirroredEdge) {
  // With identical states left/right the dissipation term vanishes and the
  // flux is the plain central flux — check the mass component by hand.
  const auto c = Consts<double>::standard();
  const double x1[2] = {0, 0}, x2[2] = {0, 1};  // dx=0, dy=-1
  double q[4] = {1.0, 0.3, 0.0, 2.0};
  const double adt = 1.0;
  double res1[4] = {}, res2[4] = {};
  airfoil::ResCalc<double>{c}(x1, x2, q, q, &adt, &adt, res1, res2);
  // vol = (q1*dy - q2*dx)/q0 = 0.3*(-1) = -0.3; f0 = 0.5*(2 * vol*q0) = -0.3.
  EXPECT_NEAR(res1[0], -0.3, 1e-14);
}

TEST(AirfoilKernels, BresCalcWallIsPressureOnly) {
  const auto c = Consts<double>::standard();
  const double x1[2] = {0, 0}, x2[2] = {1, 0};  // dx=-1, dy=0
  double q1[4] = {1.0, 0.2, 0.1, 2.0};
  const double adt1 = 1.5;
  const std::int32_t wall = mesh::kBoundWall;
  double res[4] = {};
  airfoil::BresCalc<double>{c}(x1, x2, q1, &adt1, res, &wall);
  const double ri = 1.0 / q1[0];
  const double p1 = c.gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
  EXPECT_EQ(res[0], 0.0);
  EXPECT_NEAR(res[1], p1 * 0.0, 1e-14);       // p*dy, dy=0
  EXPECT_NEAR(res[2], -p1 * (0.0 - 1.0), 1e-14);  // -p*dx, dx=-1
  EXPECT_EQ(res[3], 0.0);
}

TEST(AirfoilKernels, BresCalcFarfieldSeesFreeStream) {
  // A far-field edge with the free-stream state on the inside produces zero
  // dissipation (q == qinf), only the central flux.
  const auto c = Consts<double>::standard();
  const double x1[2] = {0, 0}, x2[2] = {1, 0};
  const std::int32_t far = mesh::kBoundFarfield;
  const double adt1 = 1.5;
  double q1[4], res[4] = {};
  for (int i = 0; i < 4; ++i) q1[i] = c.qinf[i];
  airfoil::BresCalc<double>{c}(x1, x2, q1, &adt1, res, &far);
  // mu*(q-qinf)=0; mass flux f0 = 0.5*(vol1*q0 + vol2*qinf0) with
  // vol = (qinf1*dy - qinf2*dx)/q0 = qinf1*0 - 0*(-1) = 0 => f0 = 0.
  EXPECT_NEAR(res[0], 0.0, 1e-14);
}

TEST(AirfoilKernels, UpdateComputesDeltaAndClearsRes) {
  const double qold[4] = {1, 2, 3, 4};
  double q[4] = {}, res[4] = {0.4, -0.8, 1.2, 0.0};
  const double adt = 2.0;
  double rms = 0;
  airfoil::Update<double>{}(qold, q, res, &adt, &rms);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(res[n], 0.0);
  }
  EXPECT_NEAR(q[0], 1 - 0.2, 1e-15);
  EXPECT_NEAR(q[1], 2 + 0.4, 1e-15);
  EXPECT_NEAR(rms, 0.04 + 0.16 + 0.36, 1e-12);
}

// ---- full-application equivalence across backends ---------------------------

template <class Real>
aligned_vector<Real> run_app(const mesh::UnstructuredMesh& m, ExecConfig cfg, int iters,
                             double* rms_out = nullptr) {
  LocalCtx ctx(cfg);
  airfoil::Airfoil<Real, LocalCtx> app(ctx, m);
  app.run(iters, 1);
  if (rms_out) *rms_out = app.last_rms();
  return app.fetch_q();
}

class AirfoilBackends : public ::testing::TestWithParam<int> {
 public:
  static std::vector<std::pair<std::string, ExecConfig>> configs() {
    return {
        {"openmp", {.backend = Backend::OpenMP}},
        {"autovec", {.backend = Backend::AutoVec}},
        {"simd4", {.backend = Backend::Simd, .simd_width = 4}},
        {"simd8", {.backend = Backend::Simd, .simd_width = 8}},
        {"simd_fp", {.backend = Backend::Simd, .coloring = ColoringStrategy::FullPermute}},
        {"simd_bp", {.backend = Backend::Simd, .coloring = ColoringStrategy::BlockPermute}},
        {"simt", {.backend = Backend::Simt}},
    };
  }
};

TEST_P(AirfoilBackends, MatchSequentialAfterIterations) {
  auto m = mesh::make_airfoil_omesh(48, 16);
  const auto ref = run_app<double>(m, {.backend = Backend::Seq}, 5);
  const auto cfgs = configs();
  const auto& [name, cfg] = cfgs[GetParam()];
  SCOPED_TRACE(name);
  const auto got = run_app<double>(m, cfg, 5);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], got[i], 1e-9 * (std::abs(ref[i]) + 1)) << "q[" << i << "]";
}

INSTANTIATE_TEST_SUITE_P(Configs, AirfoilBackends,
                         ::testing::Range(0, static_cast<int>(AirfoilBackends::configs().size())),
                         [](const auto& info) {
                           return AirfoilBackends::configs()[info.param].first;
                         });

TEST(AirfoilApp, DistMatchesLocal) {
  auto m = mesh::make_airfoil_omesh(36, 12);
  const auto ref = run_app<double>(m, {.backend = Backend::Seq}, 4);
  for (int ranks : {2, 5}) {
    dist::DistCtx ctx(ranks, ExecConfig{.backend = Backend::Simd, .nthreads = 1});
    airfoil::Airfoil<double, dist::DistCtx> app(ctx, m);
    app.run(4, 1);
    const auto got = app.fetch_q();
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(ref[i], got[i], 1e-8 * (std::abs(ref[i]) + 1))
          << "ranks=" << ranks << " q[" << i << "]";
  }
}

TEST(AirfoilApp, FreeStreamResidualComesOnlyFromTheWall) {
  // On a uniform free-stream state the interior fluxes cancel exactly; the
  // impulsive-start residual is generated only by the wall pressure rows.
  // It must be finite, nonzero, and well below the state magnitude (O(1)).
  auto m = mesh::make_airfoil_omesh(64, 24);
  double rms = 0;
  run_app<double>(m, {.backend = Backend::Seq}, 1, &rms);
  EXPECT_TRUE(std::isfinite(rms));
  EXPECT_GT(rms, 0.0);
  EXPECT_LT(rms, 0.5);
}

TEST(AirfoilApp, RmsStaysFiniteAndDecays) {
  auto m = mesh::make_airfoil_omesh(48, 16);
  LocalCtx ctx(ExecConfig{.backend = Backend::Simd});
  airfoil::Airfoil<double, LocalCtx> app(ctx, m);
  app.run(300, 50);
  const auto& hist = app.rms_history();
  ASSERT_EQ(hist.size(), 6u);
  for (double r : hist) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
  // Past the impulsive transient the residual decays.
  EXPECT_LT(hist.back(), hist.front());
}

TEST(AirfoilApp, SinglePrecisionTracksDouble) {
  auto m = mesh::make_airfoil_omesh(32, 12);
  const auto qd = run_app<double>(m, {.backend = Backend::Simd}, 3);
  const auto qf = run_app<float>(m, {.backend = Backend::Simd}, 3);
  ASSERT_EQ(qd.size(), qf.size());
  for (std::size_t i = 0; i < qd.size(); ++i)
    ASSERT_NEAR(qd[i], double(qf[i]), 1e-3 * (std::abs(qd[i]) + 1)) << i;
}

TEST(AirfoilApp, KernelInfoRegistered) {
  airfoil::register_kernel_info();
  auto& reg = KernelRegistry::instance();
  for (const char* k : {"save_soln", "adt_calc", "res_calc", "bres_calc", "update"})
    EXPECT_TRUE(reg.has(k)) << k;
  // Table II FLOP/byte spot checks (double precision).
  EXPECT_NEAR(reg.get("save_soln").flop_per_byte(8), 0.0625, 1e-4);
  EXPECT_NEAR(reg.get("res_calc").flop_per_byte(8), 73.0 / 240.0, 1e-4);
}

}  // namespace
