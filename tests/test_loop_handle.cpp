// Tests for the typed-argument API and the reusable Loop handle:
// compile-time rejection of invalid access/argument combinations and of
// Dim/dat mismatches, Loop::run() equivalence with one-shot par_loop across
// backends (including loops mixing compile-time-Dim and runtime-dim
// descriptors), plan pinning (pointer stability across runs), stats
// accumulation through the pre-bound slot, and kAuto tuner lifetime across
// re-templated handles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <utility>

#include "common/rng.hpp"
#include "core/context.hpp"
#include "core/op2.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;

// ---- compile-time access validation ----------------------------------------
// Invalid combinations must fail to COMPILE (constraint violation), not
// throw: the requires-expressions below are the negative-compile assertions.

template <AccessMode A>
concept DatDirectArgOk = requires(Dat<double>& d) { opv::arg<A>(d); };
template <AccessMode A>
concept DatIndirectArgOk = requires(Dat<double>& d, const Map& m) { opv::arg<A>(d, 0, m); };
template <AccessMode A>
concept GblArgOk = requires(double* p) { opv::arg_gbl<A>(p, 1); };

static_assert(DatDirectArgOk<opv::READ> && DatDirectArgOk<opv::WRITE> &&
              DatDirectArgOk<opv::RW> && DatDirectArgOk<opv::INC>);
static_assert(!DatDirectArgOk<opv::MIN>, "MIN reductions are global-only");
static_assert(!DatDirectArgOk<opv::MAX>, "MAX reductions are global-only");
static_assert(!DatIndirectArgOk<opv::MIN> && !DatIndirectArgOk<opv::MAX>);
static_assert(GblArgOk<opv::READ> && GblArgOk<opv::INC> && GblArgOk<opv::MIN> &&
              GblArgOk<opv::MAX>);
static_assert(!GblArgOk<opv::WRITE>, "globals cannot be element-wise written");
static_assert(!GblArgOk<opv::RW>, "globals cannot be read-modify-written");

// The tag spelling is the same typed API: it must be rejected identically.
template <class Tag>
concept DatTagArgOk = requires(Dat<double>& d, Tag t) { opv::arg(d, t); };
template <class Tag>
concept GblTagArgOk = requires(double* p, Tag t) { opv::arg_gbl(p, 1, t); };
static_assert(DatTagArgOk<decltype(Access::INC)>);
static_assert(!DatTagArgOk<decltype(Access::MIN)>);
static_assert(GblTagArgOk<decltype(Access::MAX)>);
static_assert(!GblTagArgOk<decltype(Access::WRITE)>);

// ---- compile-time Dim validation -------------------------------------------
// A descriptor Dim outside [1,kMaxDim] (other than the kDynDim sentinel) or
// contradicting a statically-dimensioned dat must fail to COMPILE.

template <int Dim, class D = Dat<double>>
concept DimArgOk = requires(D& d) { opv::arg<opv::READ, Dim>(d); };
static_assert(DimArgOk<kDynDim> && DimArgOk<1> && DimArgOk<4> && DimArgOk<kMaxDim>);
static_assert(!DimArgOk<-1> && !DimArgOk<kMaxDim + 1>, "Dim bounded by [1,kMaxDim]");
static_assert(DimArgOk<4, FixedDat<double, 4>>, "matching explicit Dim is fine");
static_assert(!DimArgOk<3, FixedDat<double, 4>>,
              "Dim mismatching the dat's static arity must not compile");
static_assert(!DimArgOk<1, FixedDat<double, 4>>);

// A FixedDat deduces its Dim with no explicit spelling; a plain Dat stays
// runtime-dimensioned under the same spelling.
static_assert(std::is_same_v<decltype(opv::arg<opv::READ>(std::declval<FixedDat<double, 4>&>())),
                             Arg<double, opv::READ, 4, false>>);
static_assert(std::is_same_v<decltype(opv::arg<opv::READ>(std::declval<Dat<double>&>())),
                             Arg<double, opv::READ, kDynDim, false>>);
// ...including through the tag spelling.
static_assert(
    std::is_same_v<decltype(opv::arg(std::declval<FixedDat<double, 2>&>(), Access::WRITE)),
                   Arg<double, opv::WRITE, 2, false>>);

// ---- compile-time conflict classification ----------------------------------

using DirectRead = Arg<double, opv::READ, kDynDim, false>;
using IndirectInc = Arg<double, opv::INC, kDynDim, true>;
using IndirectRead = Arg<double, opv::READ, kDynDim, true>;
using StaticInc = Arg<double, opv::INC, 4, true>;
using GblSum = ArgGbl<double, opv::INC>;
using GblCoef = ArgGbl<double, opv::READ>;

static_assert(arg_traits<StaticInc>::dim == 4 && arg_traits<IndirectInc>::dim == kDynDim);
static_assert(arg_traits<StaticInc>::conflicting, "Dim does not change conflict class");
static_assert(all_static_dim_v<StaticInc, GblSum>);
static_assert(!all_static_dim_v<StaticInc, IndirectRead>);

static_assert(!arg_traits<DirectRead>::conflicting);
static_assert(arg_traits<IndirectInc>::conflicting);
static_assert(!arg_traits<IndirectRead>::conflicting, "indirect reads are race-free");
static_assert(!arg_traits<GblSum>::conflicting && arg_traits<GblSum>::gbl_reduction);
static_assert(!arg_traits<GblCoef>::gbl_reduction);
static_assert(has_conflicts_v<DirectRead, IndirectInc>);
static_assert(!has_conflicts_v<DirectRead, IndirectRead, GblSum>);
static_assert(has_gbl_reduction_v<GblCoef, GblSum>);

// ---- fixture ----------------------------------------------------------------

struct EdgeKernel {
  template <class T>
  void operator()(const T* ql, const T* qr, const T* w, T* rl, T* rr, T* gsum) const {
    OPV_SIMD_MATH_USING;
    const T f = w[0] * sqrt(abs(qr[0] - ql[0]) + T(0.25));
    rl[0] += f;
    rr[0] -= f * T(0.5);
    gsum[0] += f;
  }
};

struct Fixture {
  mesh::UnstructuredMesh m = mesh::make_quad_box(23, 17);
  Set cells{"cells", m.ncells};
  Set edges{"edges", m.nedges};
  Map e2c{"e2c", edges, cells, 2, m.edge_cells};
  Dat<double> q{"q", cells, 1};
  Dat<double> r{"r", cells, 1};
  Dat<double> w{"w", edges, 1};
  double gsum = 0.0;

  Fixture() {
    Rng rng(11);
    for (idx_t c = 0; c < cells.size(); ++c) q.at(c) = rng.uniform(0.0, 2.0);
    for (idx_t e = 0; e < edges.size(); ++e) w.at(e) = rng.uniform(0.1, 1.0);
  }
};

// ---- Loop handle equivalence with one-shot par_loop -------------------------

TEST(LoopHandle, RepeatedRunsMatchOneShotParLoop) {
  const std::vector<ExecConfig> cfgs = {
      {.backend = Backend::Seq},
      {.backend = Backend::OpenMP, .nthreads = 3},
      {.backend = Backend::AutoVec},
      {.backend = Backend::Simd, .simd_width = 4},
      {.backend = Backend::Simd, .coloring = ColoringStrategy::FullPermute, .simd_width = 8},
      {.backend = Backend::Simd, .coloring = ColoringStrategy::BlockPermute, .simd_width = 8},
      {.backend = Backend::Simt, .simd_width = 8},
  };
  for (const auto& cfg : cfgs) {
    SCOPED_TRACE(cfg.to_string());
    Fixture a, b;

    // One-shot reference: call par_loop three times.
    for (int it = 0; it < 3; ++it)
      par_loop(EdgeKernel{}, "lh_free", a.edges, cfg, arg<opv::READ>(a.q, 0, a.e2c),
               arg<opv::READ>(a.q, 1, a.e2c), arg<opv::READ>(a.w),
               arg<opv::INC>(a.r, 0, a.e2c), arg<opv::INC>(a.r, 1, a.e2c),
               arg_gbl<opv::INC>(&a.gsum, 1));

    // Handle: construct once, run three times.
    Loop loop(EdgeKernel{}, std::string("lh_handle"), b.edges, arg<opv::READ>(b.q, 0, b.e2c),
              arg<opv::READ>(b.q, 1, b.e2c), arg<opv::READ>(b.w), arg<opv::INC>(b.r, 0, b.e2c),
              arg<opv::INC>(b.r, 1, b.e2c), arg_gbl<opv::INC>(&b.gsum, 1));
    static_assert(decltype(loop)::has_inc);
    static_assert(decltype(loop)::has_gbl_reduction);
    for (int it = 0; it < 3; ++it) loop.run(cfg);

    for (idx_t c = 0; c < a.cells.size(); ++c)
      ASSERT_NEAR(a.r.at(c), b.r.at(c), 1e-12 * (std::abs(a.r.at(c)) + 1)) << "cell " << c;
    EXPECT_NEAR(a.gsum, b.gsum, 1e-12 * (std::abs(a.gsum) + 1));
  }
}

// ---- plan pinning -----------------------------------------------------------

TEST(LoopHandle, PlanPointerStableAcrossRuns) {
  Fixture f;
  Loop loop(EdgeKernel{}, std::string("lh_plan"), f.edges, arg<opv::READ>(f.q, 0, f.e2c),
            arg<opv::READ>(f.q, 1, f.e2c), arg<opv::READ>(f.w), arg<opv::INC>(f.r, 0, f.e2c),
            arg<opv::INC>(f.r, 1, f.e2c), arg_gbl<opv::INC>(&f.gsum, 1));
  const ExecConfig cfg{.backend = Backend::Simd, .simd_width = 4};
  loop.run(cfg);
  const Plan* p1 = loop.plan(cfg);
  ASSERT_NE(p1, nullptr);
  loop.run(cfg);
  loop.run(cfg);
  EXPECT_EQ(loop.plan(cfg), p1) << "plan must be pinned, not re-fetched";

  // A different strategy pins a different plan without evicting the first.
  const ExecConfig bp{.backend = Backend::Simd, .coloring = ColoringStrategy::BlockPermute,
                      .simd_width = 4};
  loop.run(bp);
  const Plan* p2 = loop.plan(bp);
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p2, p1);
  EXPECT_EQ(loop.plan(cfg), p1);

  // The pinned plan is the same object the global cache would serve.
  EXPECT_EQ(p1, PlanCache::instance()
                    .get(f.edges, loop.conflicts(), cfg.block_size, ColoringStrategy::TwoLevel)
                    .get());
}

TEST(LoopHandle, DirectLoopNeedsNoPlan) {
  Fixture f;
  Loop loop([](const auto* a, auto* b) { b[0] = a[0]; }, std::string("lh_direct"), f.cells,
            arg<opv::READ>(f.q), arg<opv::WRITE>(f.r));
  static_assert(!decltype(loop)::has_inc);
  const ExecConfig cfg{.backend = Backend::Simd};
  loop.run(cfg);
  EXPECT_EQ(loop.plan(cfg), nullptr);
  for (idx_t c = 0; c < f.cells.size(); ++c) ASSERT_EQ(f.r.at(c), f.q.at(c));
}

// ---- stats through the pre-bound slot ---------------------------------------

TEST(LoopHandle, StatsAccumulateAcrossRuns) {
  Fixture f;
  StatsRegistry::instance().clear();
  Loop loop(EdgeKernel{}, std::string("lh_stats"), f.edges, arg<opv::READ>(f.q, 0, f.e2c),
            arg<opv::READ>(f.q, 1, f.e2c), arg<opv::READ>(f.w), arg<opv::INC>(f.r, 0, f.e2c),
            arg<opv::INC>(f.r, 1, f.e2c), arg_gbl<opv::INC>(&f.gsum, 1));
  const ExecConfig cfg{.backend = Backend::Seq};
  loop.run(cfg);
  loop.run(cfg);
  auto rec = StatsRegistry::instance().get("lh_stats");
  EXPECT_EQ(rec.calls, 2);
  EXPECT_EQ(rec.elements, 2 * f.edges.size());

  // clear() zeroes but keeps the slot valid: the handle keeps recording.
  StatsRegistry::instance().clear();
  EXPECT_EQ(StatsRegistry::instance().get("lh_stats").calls, 0);
  loop.run(cfg);
  rec = StatsRegistry::instance().get("lh_stats");
  EXPECT_EQ(rec.calls, 1);
  EXPECT_EQ(rec.elements, f.edges.size());
}

// ---- online block-size autotuning (ExecConfig::kAuto) ----------------------

TEST(LoopHandle, AutoBlockSizeSettlesAndStaysCorrect) {
  Fixture a, b;
  const ExecConfig fixed{.backend = Backend::OpenMP, .nthreads = 2};
  const ExecConfig autob{.backend = Backend::OpenMP, .block_size = ExecConfig::kAuto,
                         .nthreads = 2};

  Loop ref(EdgeKernel{}, std::string("lh_fixed"), a.edges, arg<opv::READ>(a.q, 0, a.e2c),
           arg<opv::READ>(a.q, 1, a.e2c), arg<opv::READ>(a.w), arg<opv::INC>(a.r, 0, a.e2c),
           arg<opv::INC>(a.r, 1, a.e2c), arg_gbl<opv::INC>(&a.gsum, 1));
  Loop tuned(EdgeKernel{}, std::string("lh_auto"), b.edges, arg<opv::READ>(b.q, 0, b.e2c),
             arg<opv::READ>(b.q, 1, b.e2c), arg<opv::READ>(b.w), arg<opv::INC>(b.r, 0, b.e2c),
             arg<opv::INC>(b.r, 1, b.e2c), arg_gbl<opv::INC>(&b.gsum, 1));

  // Every tuning run is a real execution: after N runs both loops must have
  // done identical work (same increments, different summation order only).
  const int runs = 6 * 2 + 3;  // default candidates x reps, then settled
  for (int it = 0; it < runs; ++it) {
    ref.run(fixed);
    tuned.run(autob);
  }
  for (idx_t c = 0; c < a.cells.size(); ++c)
    ASSERT_NEAR(a.r.at(c), b.r.at(c), 1e-11 * (std::abs(a.r.at(c)) + 1)) << "cell " << c;
  EXPECT_NEAR(a.gsum, b.gsum, 1e-11 * (std::abs(a.gsum) + 1));

  // The tuner has swept all candidates and pinned a winner.
  const int bs = tuned.tuned_block_size();
  const std::vector<int> candidates = {128, 256, 512, 1024, 2048, 4096};
  EXPECT_NE(bs, 0) << "tuner should have settled after " << runs << " runs";
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), bs), candidates.end());

  // Once settled the pinned plan matches the winning block size and stays
  // stable across further runs.
  const Plan* p = tuned.plan(autob);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->block_size, bs);
  tuned.run(autob);
  EXPECT_EQ(tuned.plan(autob), p);

  // A fixed block size never engages the tuner.
  EXPECT_EQ(ref.tuned_block_size(), 0);
}

TEST(LoopHandle, AutoBlockSizeWithoutPlanFallsBack) {
  Fixture f;
  Loop loop([](const auto* a, auto* b) { b[0] = a[0]; }, std::string("lh_auto_direct"),
            f.cells, arg<opv::READ>(f.q), arg<opv::WRITE>(f.r));
  const ExecConfig cfg{.backend = Backend::OpenMP, .block_size = ExecConfig::kAuto};
  loop.run(cfg);
  loop.run(cfg);
  // Direct loops need no plan, so block size is meaningless: no tuning.
  EXPECT_EQ(loop.tuned_block_size(), 0);
  EXPECT_EQ(loop.plan(cfg), nullptr);
  for (idx_t c = 0; c < f.cells.size(); ++c) ASSERT_EQ(f.r.at(c), f.q.at(c));
}

// ---- legacy call-shape compatibility ---------------------------------------

TEST(LoopHandle, TagSpellingBuildsSameDescriptorType) {
  Fixture f;
  auto typed = arg<opv::INC>(f.r, 0, f.e2c);
  auto tagged = arg(f.r, 0, f.e2c, Access::INC);
  static_assert(std::is_same_v<decltype(typed), decltype(tagged)>,
                "tag spelling must produce the identical typed descriptor");
  auto g_typed = arg_gbl<opv::MIN>(&f.gsum, 1);
  auto g_tagged = arg_gbl(&f.gsum, 1, Access::MIN);
  static_assert(std::is_same_v<decltype(g_typed), decltype(g_tagged)>);
}

// Runtime (data-dependent) validation still throws.
TEST(LoopHandle, RuntimeValidationStillThrows) {
  Fixture f;
  EXPECT_THROW(arg<opv::READ>(f.q, 2, f.e2c), Error);   // idx out of range
  EXPECT_THROW(arg<opv::READ>(f.w, 0, f.e2c), Error);   // dat not on target set
  EXPECT_THROW(arg_gbl<opv::INC>(&f.gsum, 0), Error);   // dim < 1
  EXPECT_THROW(arg_gbl<opv::INC>(&f.gsum, 9), Error);   // dim > 8
  // Descriptor Dim vs a runtime-dimensioned dat is checked at construction.
  EXPECT_THROW((arg<opv::READ, 2>(f.q)), Error);           // q has dim 1
  EXPECT_THROW((arg<opv::READ, 3>(f.q, 0, f.e2c)), Error);
  EXPECT_NO_THROW((arg<opv::READ, 1>(f.q)));
}

// ---- compile-time Dim: mixed spellings ---------------------------------------

/// Multi-component kernel (dim-2 endpoint coords, dim-1 weight/result) so
/// the per-component unrolling actually has components to unroll.
struct MixKernel {
  template <class T>
  void operator()(const T* xl, const T* xr, const T* w, T* rl, T* rr) const {
    OPV_SIMD_MATH_USING;
    const T f = w[0] * ((xr[0] - xl[0]) + T(0.5) * (xr[1] - xl[1]));
    rl[0] += f;
    rr[0] -= f;
  }
};

struct MixFixture {
  mesh::UnstructuredMesh m = mesh::make_quad_box(19, 13);
  Set nodes{"nodes", m.nnodes};
  Set cells{"cells", m.ncells};
  Set edges{"edges", m.nedges};
  Map e2n{"e2n", edges, nodes, 2, m.edge_nodes};
  Map e2c{"e2c", edges, cells, 2, m.edge_cells};
  Dat<double> x{"x", nodes, 2, m.node_xy};
  Dat<double> r{"r", cells, 1};
  Dat<double> w{"w", edges, 1};

  MixFixture() {
    Rng rng(7);
    for (idx_t e = 0; e < edges.size(); ++e) w.at(e) = rng.uniform(0.1, 1.0);
  }
};

/// One loop mixing typed-Dim and runtime-dim descriptors must produce
/// results bitwise identical to the all-runtime baseline: Dim changes code
/// shape (unrolled vs looped), never arithmetic order.
TEST(LoopHandle, MixedDimSpellingsBitwiseMatchRuntimeBaseline) {
  const std::vector<ExecConfig> cfgs = {
      {.backend = Backend::Seq},
      {.backend = Backend::OpenMP, .nthreads = 2},
      {.backend = Backend::Simd, .simd_width = 4},
      {.backend = Backend::Simd, .coloring = ColoringStrategy::BlockPermute, .simd_width = 4},
      {.backend = Backend::Simt, .simd_width = 4},
  };
  for (const auto& cfg : cfgs) {
    SCOPED_TRACE(cfg.to_string());
    MixFixture a, b, c;

    // Baseline: every descriptor runtime-dim.
    Loop rt(MixKernel{}, std::string("mix_rt"), a.edges, arg<opv::READ>(a.x, 0, a.e2n),
            arg<opv::READ>(a.x, 1, a.e2n), arg<opv::READ>(a.w), arg<opv::INC>(a.r, 0, a.e2c),
            arg<opv::INC>(a.r, 1, a.e2c));

    // Mixed: typed Dim on some args, runtime on the rest.
    Loop mix(MixKernel{}, std::string("mix_mixed"), b.edges, arg<opv::READ, 2>(b.x, 0, b.e2n),
             arg<opv::READ>(b.x, 1, b.e2n), arg<opv::READ, 1>(b.w),
             arg<opv::INC>(b.r, 0, b.e2c), arg<opv::INC, 1>(b.r, 1, b.e2c));

    // Fully typed: every descriptor compile-time-Dim.
    Loop st(MixKernel{}, std::string("mix_static"), c.edges, arg<opv::READ, 2>(c.x, 0, c.e2n),
            arg<opv::READ, 2>(c.x, 1, c.e2n), arg<opv::READ, 1>(c.w),
            arg<opv::INC, 1>(c.r, 0, c.e2c), arg<opv::INC, 1>(c.r, 1, c.e2c));

    static_assert(!std::is_same_v<decltype(rt), decltype(mix)> &&
                      !std::is_same_v<decltype(mix), decltype(st)>,
                  "Dim is part of the Loop type");

    for (int it = 0; it < 3; ++it) {
      rt.run(cfg);
      mix.run(cfg);
      st.run(cfg);
    }
    for (idx_t i = 0; i < a.cells.size(); ++i) {
      ASSERT_EQ(a.r.at(i), b.r.at(i)) << "mixed vs runtime, cell " << i;
      ASSERT_EQ(a.r.at(i), c.r.at(i)) << "static vs runtime, cell " << i;
    }
  }
}

// ---- kAuto tuning is pinned per handle, not per kernel/set -------------------

/// Re-templating a loop (here: migrating its args to typed Dim, which
/// changes the Loop type and the generated code) must yield a handle that
/// re-tunes from scratch — a stale block-size pin measured on the old
/// instantiation must not be inherited.
TEST(LoopHandle, RetypedHandleReTunes) {
  MixFixture a, b;
  const ExecConfig autob{.backend = Backend::OpenMP, .block_size = ExecConfig::kAuto,
                         .nthreads = 2};

  Loop rt(MixKernel{}, std::string("retune_rt"), a.edges, arg<opv::READ>(a.x, 0, a.e2n),
          arg<opv::READ>(a.x, 1, a.e2n), arg<opv::READ>(a.w), arg<opv::INC>(a.r, 0, a.e2c),
          arg<opv::INC>(a.r, 1, a.e2c));
  const int settle_runs = 6 * 2 + 1;  // candidates x reps, then settled
  for (int it = 0; it < settle_runs; ++it) rt.run(autob);
  ASSERT_NE(rt.tuned_block_size(), 0) << "baseline handle should have settled";

  // The retyped handle starts untuned: no pin carries over.
  Loop st(MixKernel{}, std::string("retune_st"), b.edges, arg<opv::READ, 2>(b.x, 0, b.e2n),
          arg<opv::READ, 2>(b.x, 1, b.e2n), arg<opv::READ, 1>(b.w),
          arg<opv::INC, 1>(b.r, 0, b.e2c), arg<opv::INC, 1>(b.r, 1, b.e2c));
  static_assert(!std::is_same_v<decltype(rt), decltype(st)>);
  EXPECT_EQ(st.tuned_block_size(), 0) << "fresh (retyped) handle must not inherit a pin";
  st.run(autob);
  EXPECT_EQ(st.tuned_block_size(), 0) << "one run cannot have settled the tuner";
  for (int it = 1; it < settle_runs; ++it) st.run(autob);
  EXPECT_NE(st.tuned_block_size(), 0) << "retyped handle re-tunes independently";
}

// ---- subset (Slice) execution ----------------------------------------------
// The phased distributed runner executes a loop as interior + boundary
// Slices; these tests pin the core contract: a slice runs exactly its
// elements with the loop's kernel instantiations, race-free, with globals
// accumulating across slices.

/// Direct per-element transform: any slice cover computes bitwise the same
/// values as one full run, whatever the execution order. A single multiply
/// on purpose — one rounding, so contiguous and permuted codegen cannot
/// diverge through FMA contraction.
struct ScaleKernel {
  template <class T>
  void operator()(const T* q, T* r) const {
    r[0] = q[0] * T(3);
  }
};

TEST(LoopSlice, DirectSliceCoverBitwiseMatchesFullRun) {
  for (Backend b : {Backend::Seq, Backend::OpenMP, Backend::AutoVec, Backend::Simd}) {
    SCOPED_TRACE(backend_name(b));
    const ExecConfig cfg{.backend = b, .nthreads = 2};
    Fixture full, sliced;
    Loop ref(ScaleKernel{}, "slice_direct_full", full.cells, opv::arg<opv::READ>(full.q),
             opv::arg<opv::WRITE>(full.r));
    ref.run(cfg);

    Loop loop(ScaleKernel{}, "slice_direct", sliced.cells, opv::arg<opv::READ>(sliced.q),
              opv::arg<opv::WRITE>(sliced.r));
    aligned_vector<idx_t> evens, odds;
    for (idx_t c = 0; c < sliced.cells.size(); ++c) (c % 2 ? odds : evens).push_back(c);
    auto s_even = loop.make_slice(std::move(evens));
    auto s_odd = loop.make_slice(std::move(odds));
    loop.run_slice(cfg, s_even);
    loop.run_slice(cfg, s_odd);

    for (idx_t c = 0; c < full.cells.size(); ++c)
      ASSERT_EQ(full.r.at(c), sliced.r.at(c)) << "cell " << c;
  }
}

/// Indirect increments of exactly 1.0 (exact in floating point): after any
/// disjoint slice cover, every cell holds its edge degree — each element
/// executed exactly once, increments race-free under the subset coloring.
struct DegreeKernel {
  template <class T>
  void operator()(T* c1, T* c2) const {
    c1[0] += T(1);
    c2[0] += T(1);
  }
};

TEST(LoopSlice, ConflictedSlicesExecuteEachElementExactlyOnce) {
  struct Case {
    Backend backend;
    ColoringStrategy coloring;
  };
  for (const Case c : {Case{Backend::Seq, ColoringStrategy::TwoLevel},
                       Case{Backend::OpenMP, ColoringStrategy::TwoLevel},
                       Case{Backend::AutoVec, ColoringStrategy::BlockPermute},
                       Case{Backend::Simd, ColoringStrategy::TwoLevel},
                       Case{Backend::Simd, ColoringStrategy::FullPermute},
                       Case{Backend::Simd, ColoringStrategy::BlockPermute},
                       Case{Backend::Simt, ColoringStrategy::TwoLevel}}) {
    SCOPED_TRACE(std::string(backend_name(c.backend)) + "/" + coloring_name(c.coloring));
    const ExecConfig cfg{
        .backend = c.backend, .coloring = c.coloring, .block_size = 64, .nthreads = 4};
    Fixture f;
    for (idx_t i = 0; i < f.cells.size(); ++i) f.r.at(i) = 0.0;
    Loop loop(DegreeKernel{}, "slice_degree", f.edges, opv::arg<opv::INC>(f.r, 0, f.e2c),
              opv::arg<opv::INC>(f.r, 1, f.e2c));
    static_assert(decltype(loop)::has_inc);

    aligned_vector<idx_t> evens, odds;
    for (idx_t e = 0; e < f.edges.size(); ++e) (e % 2 ? odds : evens).push_back(e);
    auto s_even = loop.make_slice(std::move(evens));
    auto s_odd = loop.make_slice(std::move(odds));
    loop.run_slice(cfg, s_even);
    loop.run_slice(cfg, s_odd);

    // The subset plan is pinned after the first conflicted run (Seq needs
    // no plan: it executes the slice serially in element order).
    const Plan* plan = s_even.plan();
    if (c.backend == Backend::Seq) {
      EXPECT_EQ(plan, nullptr);
    } else {
      ASSERT_NE(plan, nullptr);
      EXPECT_EQ(plan->nelems, s_even.size());
    }
    loop.run_slice(cfg, s_even);
    EXPECT_EQ(s_even.plan(), plan) << "slice plan must be pinned across runs";

    std::vector<double> degree(static_cast<std::size_t>(f.cells.size()), 0.0);
    for (idx_t e = 0; e < f.edges.size(); ++e) {
      degree[f.m.edge_cells[2 * e]] += 1.0;
      degree[f.m.edge_cells[2 * e + 1]] += 1.0;
    }
    // s_even ran twice (plan-pinning check), so evens count double.
    for (idx_t e = 0; e < f.edges.size(); e += 2) {
      degree[f.m.edge_cells[2 * e]] += 1.0;
      degree[f.m.edge_cells[2 * e + 1]] += 1.0;
    }
    for (idx_t i = 0; i < f.cells.size(); ++i)
      ASSERT_EQ(f.r.at(i), degree[i]) << "cell " << i;
  }
}

/// Global reductions init/merge per run_slice call, so INC sums and MIN
/// mins accumulate across a slice cover exactly like one full run.
struct CountMinKernel {
  template <class T>
  void operator()(const T* q, T* gcount, T* gmin) const {
    OPV_SIMD_MATH_USING;
    gcount[0] += T(1);
    gmin[0] = min(gmin[0], q[0]);
  }
};

TEST(LoopSlice, GlobalReductionsAccumulateAcrossSlices) {
  for (Backend b : {Backend::Seq, Backend::OpenMP, Backend::Simd}) {
    SCOPED_TRACE(backend_name(b));
    Fixture f;
    double count = 0.0, gmin = 1e300;
    Loop loop(CountMinKernel{}, "slice_gbl", f.cells, opv::arg<opv::READ>(f.q),
              opv::arg_gbl<opv::INC>(&count, 1), opv::arg_gbl<opv::MIN>(&gmin, 1));
    aligned_vector<idx_t> lo, hi;
    for (idx_t c = 0; c < f.cells.size(); ++c) (c < f.cells.size() / 3 ? lo : hi).push_back(c);
    auto s_lo = loop.make_slice(std::move(lo));
    auto s_hi = loop.make_slice(std::move(hi));
    const ExecConfig cfg{.backend = b, .nthreads = 2};
    loop.run_slice(cfg, s_lo);
    loop.run_slice(cfg, s_hi);

    double qmin = 1e300;
    for (idx_t c = 0; c < f.cells.size(); ++c) qmin = std::min(qmin, f.q.at(c));
    EXPECT_EQ(count, static_cast<double>(f.cells.size()));
    EXPECT_EQ(gmin, qmin);
  }
}

/// Indirect increments + a global reduction: run() refuses halo execution
/// wholesale (exec_size must equal size); make_slice enforces the same rule
/// per element — owned slices stay legal, halo elements are rejected (they
/// would contribute to the reduction on every executing rank).
struct DegreeCountKernel {
  template <class T>
  void operator()(T* c1, T* c2, T* g) const {
    c1[0] += T(1);
    c2[0] += T(1);
    g[0] += T(1);
  }
};

TEST(LoopSlice, HaloElementsRejectedForGlobalReductionLoops) {
  Set cells{"cells", 6, 6, 6};
  Set edges{"edges", 4, 6, 6};  // 4 owned + 2 execute-halo elements
  aligned_vector<idx_t> md(12);
  for (std::size_t i = 0; i < md.size(); ++i) md[i] = static_cast<idx_t>(i % 6);
  Map e2c{"e2c", edges, cells, 2, std::move(md)};
  Dat<double> r{"r", cells, 1};
  double g = 0.0;

  Loop with_gbl(DegreeCountKernel{}, "slice_gblhalo", edges, opv::arg<opv::INC>(r, 0, e2c),
                opv::arg<opv::INC>(r, 1, e2c), opv::arg_gbl<opv::INC>(&g, 1));
  EXPECT_NO_THROW(with_gbl.make_slice({0, 3}));
  EXPECT_THROW(with_gbl.make_slice({4}), Error) << "halo element must be rejected";

  Loop no_gbl(DegreeKernel{}, "slice_halo", edges, opv::arg<opv::INC>(r, 0, e2c),
              opv::arg<opv::INC>(r, 1, e2c));
  EXPECT_NO_THROW(no_gbl.make_slice({4, 5})) << "without a reduction the exec halo is legal";
}

TEST(LoopSlice, OutOfRangeSliceElementThrows) {
  Fixture f;
  Loop loop(ScaleKernel{}, "slice_range", f.cells, opv::arg<opv::READ>(f.q),
            opv::arg<opv::WRITE>(f.r));
  EXPECT_THROW(loop.make_slice({f.cells.size()}), Error);
  EXPECT_THROW(loop.make_slice({idx_t(-1)}), Error);
  EXPECT_NO_THROW(loop.make_slice({}));
  EXPECT_NO_THROW(loop.make_slice({idx_t(0), f.cells.size() - 1}));
}

// ---- LocalCtx::make_loop ----------------------------------------------------

TEST(LoopHandle, LocalCtxMakeLoopFollowsContextConfig) {
  mesh::UnstructuredMesh m = mesh::make_quad_box(9, 9);
  LocalCtx ctx(ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto cells = ctx.decl_set("cells", m.ncells);
  aligned_vector<double> qi(m.ncells, 2.0);
  auto q = ctx.decl_dat<double>("q", cells, 1, qi);
  auto r = ctx.decl_dat<double>("r", cells, 1);
  auto loop = ctx.make_loop(ScaleKernel{}, "mk_local", cells, ctx.arg<opv::READ>(q),
                            ctx.arg<opv::WRITE>(r));
  loop.run();
  aligned_vector<double> out;
  ctx.fetch(r, out);
  for (double v : out) ASSERT_EQ(v, 6.0);
  // run() follows the context's CURRENT config (mutate, then rerun).
  ctx.config().backend = Backend::OpenMP;
  loop.run();
  ctx.fetch(r, out);
  for (double v : out) ASSERT_EQ(v, 6.0);
}

}  // namespace
