// Distributed-rank simulator tests: partitioner balance, ownership
// derivation, halo completeness/layout invariants, exchange correctness,
// dirty-bit behavior across iterations, cross-rank reductions, and full
// equivalence between DistCtx and LocalCtx.
#include <gtest/gtest.h>

#include <set>

#include "apps/airfoil/airfoil.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "dist/halo.hpp"
#include "dist/partition.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;
using namespace opv::dist;

// ---- partitioner ---------------------------------------------------------------

class RcbP : public ::testing::TestWithParam<int> {};

TEST_P(RcbP, BalancedAndContiguousCounts) {
  const int nparts = GetParam();
  auto m = mesh::make_quad_box(32, 24);
  aligned_vector<double> cent = airfoil::cell_centroids(m);
  const auto owner = partition_rcb(cent.data(), m.ncells, nparts);
  const auto sizes = part_sizes(owner, nparts);
  idx_t mn = m.ncells, mx = 0;
  for (idx_t s : sizes) {
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_LE(mx - mn, std::max<idx_t>(2, m.ncells / nparts / 10))
      << "RCB parts must be balanced";
  for (int r : owner) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, nparts);
  }
}
INSTANTIATE_TEST_SUITE_P(Parts, RcbP, ::testing::Values(1, 2, 3, 4, 7, 8, 13, 24));

TEST(Rcb, PartsAreGeometricallyCompact) {
  // Each part's bounding box should be much smaller than the domain for a
  // modest part count (sanity check that RCB actually splits space).
  auto m = mesh::make_quad_box(40, 40);
  auto cent = airfoil::cell_centroids(m);
  const int nparts = 4;
  const auto owner = partition_rcb(cent.data(), m.ncells, nparts);
  for (int p = 0; p < nparts; ++p) {
    double minx = 1e300, maxx = -1e300, miny = 1e300, maxy = -1e300;
    for (idx_t c = 0; c < m.ncells; ++c) {
      if (owner[c] != p) continue;
      minx = std::min(minx, cent[2 * c]);
      maxx = std::max(maxx, cent[2 * c]);
      miny = std::min(miny, cent[2 * c + 1]);
      maxy = std::max(maxy, cent[2 * c + 1]);
    }
    EXPECT_LE((maxx - minx) * (maxy - miny), 0.30) << "part " << p << " too spread out";
  }
}

TEST(BlockPartition, ChunksAreContiguous) {
  const auto owner = partition_block(10, 3);
  const std::vector<int> expect = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(owner[i], expect[i]);
}

// ---- ownership derivation ---------------------------------------------------------

TEST(Ownership, DerivedForAllSetsThroughMaps) {
  auto m = mesh::make_quad_box(12, 8);
  GlobalSpec spec;
  const int s_nodes = spec.add_set("nodes", m.nnodes);
  const int s_cells = spec.add_set("cells", m.ncells);
  const int s_edges = spec.add_set("edges", m.nedges);
  spec.add_map("e2n", s_edges, s_nodes, 2, m.edge_nodes.data());
  spec.add_map("e2c", s_edges, s_cells, 2, m.edge_cells.data());
  spec.add_map("c2n", s_cells, s_nodes, 4, m.cell_nodes.data());

  auto cent = airfoil::cell_centroids(m);
  const auto cell_owner = partition_rcb(cent.data(), m.ncells, 4);
  const auto owner = derive_ownership(spec, s_cells, cell_owner, 4);

  ASSERT_EQ(owner.size(), 3u);
  EXPECT_EQ(owner[s_cells], cell_owner);
  // Edge ownership inherits from the edge's first cell (map index 0).
  for (idx_t e = 0; e < m.nedges; ++e)
    EXPECT_EQ(owner[s_edges][e], cell_owner[m.edge_cells[2 * e]]);
  // Node ownership: the owner of SOME cell containing it.
  for (idx_t c = 0; c < m.ncells; ++c)
    for (int k = 0; k < 4; ++k) {
      const idx_t n = m.cell_nodes[4 * c + k];
      EXPECT_GE(owner[s_nodes][n], 0);
      EXPECT_LT(owner[s_nodes][n], 4);
    }
}

TEST(Ownership, UnreachableSetThrows) {
  GlobalSpec spec;
  const int a = spec.add_set("a", 10);
  spec.add_set("island", 5);  // no maps touch it
  aligned_vector<int> owner_a(10, 0);
  EXPECT_THROW(derive_ownership(spec, a, owner_a, 2), Error);
}

// ---- halo construction --------------------------------------------------------------

struct HaloFixture {
  mesh::UnstructuredMesh m = mesh::make_quad_box(14, 10);
  GlobalSpec spec;
  int s_nodes, s_cells, s_edges;
  int m_e2n, m_e2c;
  std::vector<aligned_vector<int>> owner;
  int nranks;

  explicit HaloFixture(int ranks) : nranks(ranks) {
    s_nodes = spec.add_set("nodes", m.nnodes);
    s_cells = spec.add_set("cells", m.ncells);
    s_edges = spec.add_set("edges", m.nedges);
    m_e2n = spec.add_map("e2n", s_edges, s_nodes, 2, m.edge_nodes.data());
    m_e2c = spec.add_map("e2c", s_edges, s_cells, 2, m.edge_cells.data());
    auto cent = airfoil::cell_centroids(m);
    owner = derive_ownership(spec, s_cells, partition_rcb(cent.data(), m.ncells, ranks), ranks);
  }
};

class HaloP : public ::testing::TestWithParam<int> {};

TEST_P(HaloP, LayoutInvariants) {
  HaloFixture f(GetParam());
  Partitioned part(f.spec, f.owner, f.nranks);

  for (int s = 0; s < 3; ++s) {
    // Every global element appears exactly once as owned across ranks.
    std::vector<int> owned_count(f.spec.sets[s].size, 0);
    for (int r = 0; r < f.nranks; ++r) {
      const LocalLayout& L = part.layout(r, s);
      ASSERT_EQ(L.local_to_global.size(), std::size_t(L.ntotal));
      for (idx_t l = 0; l < L.nowned; ++l) {
        const idx_t g = L.local_to_global[l];
        EXPECT_EQ(f.owner[s][g], r);
        ++owned_count[g];
      }
      // Halo slots reference real owners and valid owner-local positions.
      for (idx_t i = 0; i < L.ntotal - L.nowned; ++i) {
        const idx_t g = L.local_to_global[L.nowned + i];
        EXPECT_EQ(L.src_rank[i], f.owner[s][g]);
        EXPECT_NE(L.src_rank[i], r) << "halo slot owned locally?";
        const LocalLayout& Lo = part.layout(L.src_rank[i], s);
        ASSERT_LT(L.src_local[i], Lo.nowned);
        EXPECT_EQ(Lo.local_to_global[L.src_local[i]], g)
            << "exchange source must dereference to the same global element";
      }
    }
    for (idx_t g = 0; g < f.spec.sets[s].size; ++g)
      EXPECT_EQ(owned_count[g], 1) << "set " << s << " element " << g;
  }
}

TEST_P(HaloP, ExecHaloCompletesOwnedIncrements) {
  // The owner-compute guarantee: for every rank r and every cell c owned by
  // r, EVERY edge incident to c (through e2c) must be executed by r, i.e.
  // appear in r's owned+exec range of the edge set.
  HaloFixture f(GetParam());
  Partitioned part(f.spec, f.owner, f.nranks);
  for (int r = 0; r < f.nranks; ++r) {
    const LocalLayout& Le = part.layout(r, f.s_edges);
    std::set<idx_t> executed(Le.local_to_global.begin(),
                             Le.local_to_global.begin() + Le.nowned + Le.nexec);
    for (idx_t e = 0; e < f.m.nedges; ++e) {
      const bool touches_owned = f.owner[f.s_cells][f.m.edge_cells[2 * e]] == r ||
                                 f.owner[f.s_cells][f.m.edge_cells[2 * e + 1]] == r;
      if (touches_owned)
        EXPECT_TRUE(executed.count(e))
            << "rank " << r << " misses edge " << e << " touching its cells";
    }
  }
}

TEST_P(HaloP, LocalMapsResolveForExecutedElements) {
  HaloFixture f(GetParam());
  Partitioned part(f.spec, f.owner, f.nranks);
  for (int r = 0; r < f.nranks; ++r) {
    const Map& e2n = part.map(r, f.m_e2n);
    const Map& e2c = part.map(r, f.m_e2c);
    const LocalLayout& Le = part.layout(r, f.s_edges);
    const LocalLayout& Ln = part.layout(r, f.s_nodes);
    const LocalLayout& Lc = part.layout(r, f.s_cells);
    for (idx_t l = 0; l < Le.nowned + Le.nexec; ++l) {
      const idx_t g = Le.local_to_global[l];
      for (int k = 0; k < 2; ++k) {
        // Local map entries dereference to the same global elements.
        EXPECT_EQ(Ln.local_to_global[e2n(l, k)], f.m.edge_nodes[2 * g + k]);
        EXPECT_EQ(Lc.local_to_global[e2c(l, k)], f.m.edge_cells[2 * g + k]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HaloP, ::testing::Values(1, 2, 3, 5, 8));

// ---- end-to-end DistCtx vs LocalCtx ---------------------------------------------------

struct EdgeK {
  template <class T>
  void operator()(const T* x1, const T* x2, const T* w, T* c1, T* c2) const {
    OPV_SIMD_MATH_USING;
    const T d = sqrt(abs(x1[0] - x2[0]) + T(0.5)) * w[0];
    c1[0] += d;
    c2[0] -= d * T(0.5);
  }
};
struct CellK {
  template <class T>
  void operator()(T* q, const T* a, T* gsum, T* gmin) const {
    OPV_SIMD_MATH_USING;
    q[0] = q[0] + a[0] * T(0.1);
    gsum[0] += q[0];
    gmin[0] = min(gmin[0], q[0]);
  }
};

template <class Ctx>
std::tuple<aligned_vector<double>, double, double> pipeline(Ctx& ctx,
                                                            const mesh::UnstructuredMesh& m,
                                                            const aligned_vector<double>& cent,
                                                            int iters) {
  auto nodes = ctx.decl_set("nodes", m.nnodes);
  auto cells = ctx.decl_set("cells", m.ncells);
  auto edges = ctx.decl_set("edges", m.nedges);
  ctx.set_partition_coords(cells, cent.data());
  auto e2n = ctx.decl_map("e2n", edges, nodes, 2, m.edge_nodes);
  auto e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
  auto x = ctx.template decl_dat<double>("x", nodes, 2, m.node_xy);
  auto w = ctx.template decl_dat<double>("w", edges, 1,
                                         aligned_vector<double>(m.nedges, 0.7));
  auto acc = ctx.template decl_dat<double>("acc", cells, 1);
  aligned_vector<double> qi(m.ncells);
  for (idx_t c = 0; c < m.ncells; ++c) qi[c] = 0.01 * (c % 29);
  auto q = ctx.template decl_dat<double>("q", cells, 1, qi);
  ctx.finalize();

  double gsum = 0, gmin = 0;
  for (int it = 0; it < iters; ++it) {
    ctx.loop(EdgeK{}, "d_edge", edges, ctx.arg(x, 0, e2n, Access::READ),
             ctx.arg(x, 1, e2n, Access::READ), ctx.arg(w, Access::READ),
             ctx.arg(acc, 0, e2c, Access::INC), ctx.arg(acc, 1, e2c, Access::INC));
    gsum = 0;
    gmin = 1e300;
    ctx.loop(CellK{}, "d_cell", cells, ctx.arg(q, Access::RW), ctx.arg(acc, Access::READ),
             ctx.arg_gbl(&gsum, 1, Access::INC), ctx.arg_gbl(&gmin, 1, Access::MIN));
  }
  aligned_vector<double> out;
  ctx.fetch(q, out);
  return {out, gsum, gmin};
}

class DistVsLocal : public ::testing::TestWithParam<std::tuple<int, Backend>> {};

TEST_P(DistVsLocal, IdenticalResults) {
  const auto [nranks, backend] = GetParam();
  auto m = mesh::make_quad_box(21, 17);
  const auto cent = airfoil::cell_centroids(m);

  LocalCtx lc{ExecConfig{.backend = Backend::Seq}};
  const auto [ref, gsum_ref, gmin_ref] = pipeline(lc, m, cent, 4);

  DistCtx dc(nranks, ExecConfig{.backend = backend, .nthreads = backend == Backend::Seq ? 1 : 2});
  const auto [got, gsum, gmin] = pipeline(dc, m, cent, 4);

  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], got[i], 1e-10 * (std::abs(ref[i]) + 1)) << "cell " << i;
  EXPECT_NEAR(gsum, gsum_ref, 1e-9 * (std::abs(gsum_ref) + 1));
  EXPECT_NEAR(gmin, gmin_ref, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBackends, DistVsLocal,
    ::testing::Combine(::testing::Values(1, 2, 3, 6, 11),
                       ::testing::Values(Backend::Seq, Backend::OpenMP, Backend::Simd)));

// A pipeline that genuinely requires a halo exchange each iteration: the
// cell loop writes q, the edge loop gathers q from both cells.
struct GatherQ {
  template <class T>
  void operator()(const T* ql, const T* qr, T* acc1, T* acc2) const {
    const T f = ql[0] - qr[0];
    acc1[0] += f;
    acc2[0] -= f;
  }
};
struct BumpQ {
  template <class T>
  void operator()(T* q, const T* acc) const {
    q[0] = q[0] + acc[0] * T(0.01);
  }
};

TEST(DistCtx, DirtyBitsTriggerExchangesAndMatchLocal) {
  auto m = mesh::make_quad_box(15, 15);
  const auto cent = airfoil::cell_centroids(m);

  auto run = [&](auto& ctx) {
    auto cells = ctx.decl_set("cells", m.ncells);
    auto edges = ctx.decl_set("edges", m.nedges);
    ctx.set_partition_coords(cells, cent.data());
    auto e2c = ctx.decl_map("e2c", edges, cells, 2, m.edge_cells);
    aligned_vector<double> qi(m.ncells);
    for (idx_t c = 0; c < m.ncells; ++c) qi[c] = 0.1 * (c % 7);
    auto q = ctx.template decl_dat<double>("q", cells, 1, qi);
    auto acc = ctx.template decl_dat<double>("acc", cells, 1);
    ctx.finalize();
    for (int it = 0; it < 4; ++it) {
      ctx.loop(GatherQ{}, "h_edge", edges, ctx.arg(q, 0, e2c, Access::READ),
               ctx.arg(q, 1, e2c, Access::READ), ctx.arg(acc, 0, e2c, Access::INC),
               ctx.arg(acc, 1, e2c, Access::INC));
      ctx.loop(BumpQ{}, "h_cell", cells, ctx.arg(q, Access::RW), ctx.arg(acc, Access::READ));
    }
    aligned_vector<double> out;
    ctx.fetch(q, out);
    return out;
  };

  LocalCtx lc{ExecConfig{.backend = Backend::Seq}};
  const auto ref = run(lc);

  StatsRegistry::instance().clear();
  DistCtx dc(3, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  const auto got = run(dc);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], got[i], 1e-12 * (std::abs(ref[i]) + 1)) << i;

  // q is dirtied by h_cell each iteration and read indirectly by h_edge:
  // every h_edge call after the first must exchange (the first reads the
  // still-valid scattered initial halos).
  const auto rec = StatsRegistry::instance().get("h_edge/halo");
  EXPECT_EQ(rec.calls, 3) << "dirty-bit tracking should trigger exactly 3 exchanges";
}

TEST(DistCtx, FetchReturnsGlobalOrder) {
  auto m = mesh::make_quad_box(9, 9);
  const auto cent = airfoil::cell_centroids(m);
  DistCtx dc(4, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  auto cells = dc.decl_set("cells", m.ncells);
  dc.set_partition_coords(cells, cent.data());
  // A map is needed so ownership derivation has something to chew on for
  // secondary sets; cells is primary so a self-contained universe is fine.
  aligned_vector<double> init(m.ncells);
  for (idx_t c = 0; c < m.ncells; ++c) init[c] = 1000.0 + c;
  auto q = dc.decl_dat<double>("q", cells, 1, init);
  dc.finalize();
  aligned_vector<double> out;
  dc.fetch(q, out);
  ASSERT_EQ(out.size(), std::size_t(m.ncells));
  for (idx_t c = 0; c < m.ncells; ++c) EXPECT_EQ(out[c], 1000.0 + c);
}

TEST(WorkerPool, RunsAllRanksAndBlocks) {
  WorkerPool pool(7);
  std::vector<int> hits(7, 0);
  for (int round = 0; round < 10; ++round)
    pool.run([&](int r) { ++hits[r]; });
  for (int r = 0; r < 7; ++r) EXPECT_EQ(hits[r], 10);
}

}  // namespace
