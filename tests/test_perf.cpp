// Perf module tests: table formatting, useful-bandwidth accounting math,
// and (cheap, loose) sanity checks on the machine probes.
#include <gtest/gtest.h>

#include "perf/probes.hpp"
#include "perf/table.hpp"

namespace {

using namespace opv;

TEST(Table, AlignsColumnsAndKeepsContent) {
  perf::Table t({"kernel", "time", "BW"});
  t.add_row({"save_soln", "4.08", "45"});
  t.add_row({"adt_calc", "12.7", "25"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("kernel"), std::string::npos);
  EXPECT_NE(s.find("save_soln"), std::string::npos);
  EXPECT_NE(s.find("adt_calc"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
  // Three header columns -> four pipes per row.
  const auto first_line = s.substr(0, s.find('\n'));
  EXPECT_EQ(std::count(first_line.begin(), first_line.end(), '|'), 4);
}

TEST(Table, ShortRowsArePadded) {
  perf::Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(perf::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(perf::Table::num(3.0, 0), "3");
  EXPECT_EQ(perf::Table::pct(0.5, 1), "50.0%");
}

TEST(Accounting, UsefulBandwidthMatchesHand) {
  KernelInfo info;
  info.name = "k";
  info.direct_read = 4;
  info.direct_write = 4;
  info.flops = 10;
  LoopRecord rec;
  rec.seconds = 2.0;
  rec.elements = 1'000'000;
  // 8 values * 8 bytes * 1e6 elements / 2 s = 32e6 B/s = 0.032 GB/s.
  EXPECT_NEAR(perf::useful_gbs(info, 8, rec), 0.032, 1e-9);
  EXPECT_NEAR(perf::useful_gbs(info, 4, rec), 0.016, 1e-9);
  // 10 flops * 1e6 / 2 s = 5e6 = 0.005 GFLOP/s.
  EXPECT_NEAR(perf::useful_gflops(info, rec), 0.005, 1e-12);
}

TEST(Accounting, ZeroTimeIsSafe) {
  KernelInfo info;
  info.direct_read = 1;
  LoopRecord rec;  // seconds == 0
  EXPECT_EQ(perf::useful_gbs(info, 8, rec), 0.0);
  EXPECT_EQ(perf::useful_gflops(info, rec), 0.0);
}

TEST(KernelInfoMath, FlopPerByte) {
  KernelInfo k;
  k.direct_read = 4;
  k.direct_write = 1;
  k.indirect_read = 8;
  k.flops = 64;
  // 13 values -> 104 bytes DP, 52 bytes SP.
  EXPECT_NEAR(k.flop_per_byte(8), 64.0 / 104.0, 1e-12);
  EXPECT_NEAR(k.flop_per_byte(4), 64.0 / 52.0, 1e-12);
  KernelInfo empty;
  EXPECT_EQ(empty.flop_per_byte(8), 0.0);
}

TEST(Probes, StreamReportsPlausibleNumbers) {
  // Tiny arrays: we only check the plumbing, not peak numbers.
  const auto r = perf::stream_bandwidth(1 << 20, 2, 2);
  EXPECT_GT(r.copy_gbs, 0.1);
  EXPECT_GT(r.triad_gbs, 0.1);
  EXPECT_LT(r.best(), 10000.0);
  EXPECT_GE(r.best(), r.copy_gbs);
}

TEST(Probes, VectorFlopsBeatScalarFlops) {
  // Few threads & the relation that justifies the whole paper: wider
  // vectors -> more FLOPs. Allow generous slack for a noisy CI box.
  const double scalar = perf::flops_peak_dp(1, 2);
  const double vec = perf::flops_peak_dp(8, 2);
  EXPECT_GT(scalar, 0.0);
  EXPECT_GT(vec, scalar * 1.5);
}

TEST(Probes, SqrtVectorFasterPerOp) {
  const auto r = perf::sqrt_throughput_dp();
  EXPECT_GT(r.scalar_ns_per_op, 0.0);
  EXPECT_GT(r.vector_ns_per_op, 0.0);
  EXPECT_LT(r.vector_ns_per_op, r.scalar_ns_per_op);
}

}  // namespace
