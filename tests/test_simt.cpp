// SIMT (OpenCL-model) backend tests: determinism under dynamic work-group
// scheduling, colored-increment correctness with adversarial conflict
// patterns, work-group (block) size behavior including non-multiples of the
// bundle width, and reduction handling — plus the block-size auto-tuner.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/context.hpp"
#include "core/op2.hpp"
#include "mesh/generators.hpp"
#include "perf/tuner.hpp"

namespace {

using namespace opv;

struct StarKernel {
  // Every element increments a SMALL set of shared hubs: adversarial for
  // coloring (many elements conflict on the same targets -> many element
  // colors per block, stressing the masked colored increment).
  template <class T>
  void operator()(const T* w, T* hub, T* gsum) const {
    hub[0] += w[0];
    gsum[0] += w[0] * T(2.0);
  }
};

TEST(SimtBackend, ColoredIncrementWithHeavyConflicts) {
  // n elements all mapping to `nhubs` shared targets in a skewed pattern.
  constexpr idx_t n = 1000, nhubs = 7;
  Set elems("elems", n), hubs("hubs", nhubs);
  aligned_vector<idx_t> mdata(n);
  Rng rng(3);
  for (idx_t e = 0; e < n; ++e)
    mdata[e] = static_cast<idx_t>(rng.next_below(2) ? e % nhubs : 0);  // hub 0 is hot
  Map m("m", elems, hubs, 1, std::move(mdata));
  Dat<double> w("w", elems, 1), hub("hub", hubs, 1);
  for (idx_t e = 0; e < n; ++e) w.at(e) = 0.5 + (e % 9) * 0.125;

  auto run = [&](ExecConfig cfg) {
    hub.fill(0.0);
    double gsum = 0.0;
    par_loop(StarKernel{}, "star", elems, cfg, arg<opv::READ>(w),
             arg<opv::INC>(hub, 0, m), arg_gbl<opv::INC>(&gsum, 1));
    aligned_vector<double> out(hub.data(), hub.data() + nhubs);
    out.push_back(gsum);
    return out;
  };

  const auto ref = run({.backend = Backend::Seq});
  for (int w8 : {4, 8, 16}) {
    for (int bs : {16, 64, 256}) {
      const auto got = run({.backend = Backend::Simt, .simd_width = w8, .block_size = bs});
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(ref[i], got[i], 1e-9 * (std::abs(ref[i]) + 1))
            << "w=" << w8 << " bs=" << bs << " slot " << i;
    }
  }
}

TEST(SimtBackend, DeterministicAcrossRepeatedRuns) {
  // Dynamic work-group scheduling must not change results (colors serialize
  // conflicting updates; FP order within a hub is fixed by element order
  // within blocks and color order across them... per repetition).
  auto msh = mesh::make_quad_box(31, 17);
  Set cells("cells", msh.ncells), edges("edges", msh.nedges);
  Map e2c("e2c", edges, cells, 2, msh.edge_cells);
  Dat<double> q("q", cells, 1), r("r", cells, 1);
  for (idx_t c = 0; c < cells.size(); ++c) q.at(c) = std::sin(0.1 * c);

  auto edge_k = [](const auto* ql, const auto* qr, auto* rl, auto* rr) {
    const auto f = ql[0] * qr[0];
    rl[0] += f;
    rr[0] -= f;
  };
  const ExecConfig cfg{.backend = Backend::Simt, .simd_width = 8, .nthreads = 8};
  aligned_vector<double> first;
  // Explicit-template spelling of the typed arg API (equivalent to tags).
  for (int rep = 0; rep < 5; ++rep) {
    r.fill(0.0);
    par_loop(edge_k, "det", edges, cfg, arg<opv::READ>(q, 0, e2c),
             arg<opv::READ>(q, 1, e2c), arg<opv::INC>(r, 0, e2c),
             arg<opv::INC>(r, 1, e2c));
    if (rep == 0) {
      first.assign(r.data(), r.data() + r.size());
    } else {
      for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], r.data()[i]) << "rep " << rep << " cell " << i
                                         << ": scheduling changed the result";
    }
  }
}

TEST(SimtBackend, BlockSizeNotMultipleOfWidth) {
  // Work-groups of 48 with 16-wide bundles leave scalar tails every block.
  auto msh = mesh::make_quad_box(13, 11);
  Set cells("cells", msh.ncells), edges("edges", msh.nedges);
  Map e2c("e2c", edges, cells, 2, msh.edge_cells);
  Dat<double> q("q", cells, 1), r("r", cells, 1);
  q.fill(1.5);

  auto edge_k = [](const auto* ql, const auto* qr, auto* rl, auto* rr) {
    rl[0] += qr[0];
    rr[0] += ql[0];
  };
  auto run = [&](ExecConfig cfg) {
    r.fill(0.0);
    par_loop(edge_k, "tails", edges, cfg, arg(q, 0, e2c, Access::READ),
             arg(q, 1, e2c, Access::READ), arg(r, 0, e2c, Access::INC),
             arg(r, 1, e2c, Access::INC));
    return aligned_vector<double>(r.data(), r.data() + r.size());
  };
  const auto ref = run({.backend = Backend::Seq});
  const auto got = run({.backend = Backend::Simt, .simd_width = 16, .block_size = 48});
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(ref[i], got[i]) << i;
}

TEST(SimtBackend, DirectLoopUsesWorkQueue) {
  // No conflicts: every block has one color; results must match and all
  // elements must be processed exactly once.
  Set s("s", 10007);  // prime: ragged blocks
  Dat<double> a("a", s, 1), b("b", s, 1);
  for (idx_t i = 0; i < s.size(); ++i) a.at(i) = i * 0.25;
  par_loop([](const auto* x, auto* y) { y[0] = x[0] + std::decay_t<decltype(y[0])>(1.0); }, "dq",
           s,
           ExecConfig{.backend = Backend::Simt, .simd_width = 8, .nthreads = 6},
           arg(a, Access::READ), arg(b, Access::WRITE));
  for (idx_t i = 0; i < s.size(); ++i) ASSERT_EQ(b.at(i), a.at(i) + 1.0) << i;
}

TEST(Tuner, FindsAPlausibleBlockSize) {
  // Synthetic workload whose cost curve has a clear minimum at 512.
  auto cost = [](int bs) {
    const double x = std::log2(bs) - 9.0;  // min at 2^9 = 512
    return 1.0 + x * x;
  };
  const auto r = perf::tune_block_size(cost, {128, 256, 512, 1024, 2048}, 1);
  EXPECT_EQ(r.best_block_size, 512);
  EXPECT_EQ(r.samples.size(), 5u);
  EXPECT_DOUBLE_EQ(r.best_seconds, 1.0);
}

TEST(Tuner, RejectsBadInput) {
  auto cost = [](int) { return 1.0; };
  EXPECT_THROW(perf::tune_block_size(cost, {}), Error);
  EXPECT_THROW(perf::tune_block_size(cost, {100}), Error);  // not mult of 16
  EXPECT_THROW(perf::tune_block_size(cost, {256}, 0), Error);
}

TEST(Tuner, TunesARealLoop) {
  // End-to-end: tune the block size of a real colored loop (just checks
  // the plumbing returns a candidate; no performance assertion).
  auto msh = mesh::make_quad_box(64, 64);
  Set cells("cells", msh.ncells), edges("edges", msh.nedges);
  Map e2c("e2c", edges, cells, 2, msh.edge_cells);
  Dat<double> q("q", cells, 1), r("r", cells, 1);
  q.fill(2.0);
  auto edge_k = [](const auto* ql, const auto* qr, auto* rl, auto* rr) {
    rl[0] += qr[0] - ql[0];
    rr[0] += ql[0] - qr[0];
  };
  const auto result = perf::tune_block_size(
      [&](int bs) {
        const ExecConfig cfg{.backend = Backend::Simd, .block_size = bs,
                             .collect_stats = false};
        WallTimer t;
        par_loop(edge_k, "tune", edges, cfg, arg(q, 0, e2c, Access::READ),
                 arg(q, 1, e2c, Access::READ), arg(r, 0, e2c, Access::INC),
                 arg(r, 1, e2c, Access::INC));
        return t.seconds();
      },
      {128, 256, 512}, 2);
  EXPECT_TRUE(result.best_block_size == 128 || result.best_block_size == 256 ||
              result.best_block_size == 512);
  EXPECT_GT(result.best_seconds, 0.0);
}

}  // namespace
