// Volna application tests: edge/cell geometry invariants on periodic
// meshes, HLL flux properties (consistency, symmetry, upwinding), exact
// volume conservation, still-water steadiness, wave propagation sanity,
// and cross-backend equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/volna/volna.hpp"
#include "core/context.hpp"
#include "dist/context.hpp"
#include "mesh/generators.hpp"

namespace {

using namespace opv;
using volna::Params;

TEST(VolnaGeometry, CellAreasTileTheDomain) {
  auto m = mesh::make_tri_periodic(8, 6, 4.0, 3.0);
  const auto cg = volna::cell_geometry(m);
  double total = 0;
  for (idx_t c = 0; c < m.ncells; ++c) {
    EXPECT_GT(cg[2 * c], 0.0);
    EXPECT_NEAR(cg[2 * c + 1], 1.0 / cg[2 * c], 1e-12);
    total += cg[2 * c];
  }
  EXPECT_NEAR(total, 4.0 * 3.0, 1e-9) << "areas must tile the periodic box";
}

TEST(VolnaGeometry, EdgeNormalsAreUnitAndOriented) {
  auto m = mesh::make_tri_periodic(7, 9, 2.0, 2.0);
  const auto eg = volna::edge_geometry(m);
  for (idx_t e = 0; e < m.nedges; ++e) {
    const double nx = eg[4 * e], ny = eg[4 * e + 1], len = eg[4 * e + 2];
    EXPECT_NEAR(nx * nx + ny * ny, 1.0, 1e-12);
    EXPECT_GT(len, 0.0);
  }
}

TEST(VolnaGeometry, DivergenceTheoremPerCell) {
  // Outward-oriented edge normals weighted by length must sum to zero
  // around every closed cell: sum_e s_e * n_e * len_e = 0, where s_e is +1
  // if the cell is the edge's left cell and -1 otherwise.
  auto m = mesh::make_tri_periodic(6, 5, 3.0, 3.0);
  const auto eg = volna::edge_geometry(m);
  const auto ce = mesh::build_cell_edges_flat3(m);
  for (idx_t c = 0; c < m.ncells; ++c) {
    double sx = 0, sy = 0;
    for (int k = 0; k < 3; ++k) {
      const idx_t e = ce[3 * c + k];
      const double s = m.edge_cells[2 * e] == c ? 1.0 : -1.0;
      sx += s * eg[4 * e] * eg[4 * e + 2];
      sy += s * eg[4 * e + 1] * eg[4 * e + 2];
    }
    ASSERT_NEAR(sx, 0.0, 1e-9) << "cell " << c;
    ASSERT_NEAR(sy, 0.0, 1e-9) << "cell " << c;
  }
}

// ---- flux kernel properties ---------------------------------------------------

TEST(VolnaFlux, ConsistencyOnUniformState) {
  // F(U, U) equals the physical flux of U: for still water (hu=hv=0) the
  // mass flux is 0 and the momentum flux is the hydrostatic pressure.
  Params<double> p;
  const double h = 2.0;
  const double ul[4] = {h, 0, 0, 0}, ur[4] = {h, 0, 0, 0};
  const double geom[4] = {1, 0, 0.5, 0};  // normal +x
  double flux[5];
  volna::ComputeFlux<double>{p}(ul, ur, geom, flux);
  EXPECT_NEAR(flux[0], 0.0, 1e-12);
  EXPECT_NEAR(flux[1], 0.5 * p.g * h * h, 1e-9);
  EXPECT_NEAR(flux[2], 0.0, 1e-12);
  EXPECT_NEAR(flux[3], std::sqrt(p.g * h), 1e-9);  // smax = c
}

TEST(VolnaFlux, MirrorSymmetry) {
  // Swapping the states and flipping the normal negates mass/momentum flux.
  Params<double> p;
  const double ul[4] = {1.5, 0.3, -0.1, 0}, ur[4] = {1.0, -0.2, 0.2, 0};
  const double geom_f[4] = {0.6, 0.8, 1.0, 0};
  const double geom_b[4] = {-0.6, -0.8, 1.0, 0};
  double ff[5], fb[5];
  volna::ComputeFlux<double>{p}(ul, ur, geom_f, ff);
  volna::ComputeFlux<double>{p}(ur, ul, geom_b, fb);
  for (int n = 0; n < 3; ++n) EXPECT_NEAR(ff[n], -fb[n], 1e-10) << "component " << n;
  EXPECT_NEAR(ff[3], fb[3], 1e-12);
}

TEST(VolnaFlux, SupercriticalUpwinding) {
  // Both states in fast rightward flow (un - c > 0 on both sides): the HLL
  // flux must reduce to the left state's physical flux.
  Params<double> p;
  const double h = 1.0, u = 10.0;  // c = sqrt(9.81) ~ 3.1, Fr >> 1
  const double ul[4] = {h, h * u, 0, 0}, ur[4] = {0.5, 0.5 * u, 0, 0};
  const double geom[4] = {1, 0, 1, 0};
  double flux[5];
  volna::ComputeFlux<double>{p}(ul, ur, geom, flux);
  EXPECT_NEAR(flux[0], h * u, 1e-5);
  EXPECT_NEAR(flux[1], h * u * u + 0.5 * p.g * h * h, 1e-4);
}

TEST(VolnaFlux, DryStateProducesFiniteFlux) {
  Params<double> p;
  const double ul[4] = {0.0, 0.0, 0.0, 0}, ur[4] = {1.0, 0.0, 0.0, 0};
  const double geom[4] = {1, 0, 1, 0};
  double flux[5];
  volna::ComputeFlux<double>{p}(ul, ur, geom, flux);
  for (int n = 0; n < 4; ++n) EXPECT_TRUE(std::isfinite(flux[n])) << n;
}

TEST(VolnaKernels, RKStagesHandComputed) {
  double u[4] = {2, 4, 6, 1}, res[4] = {0.5, -0.5, 1.0, 9.0}, utmp[4] = {};
  const double dt = 0.1;
  volna::RK1<double>{}(u, res, utmp, &dt);
  EXPECT_NEAR(utmp[0], 2.05, 1e-14);
  EXPECT_NEAR(utmp[1], 3.95, 1e-14);
  EXPECT_NEAR(utmp[2], 6.10, 1e-14);
  EXPECT_EQ(utmp[3], 1.0);  // bathymetry copied, not integrated
  for (int n = 0; n < 4; ++n) EXPECT_EQ(res[n], 0.0);

  double uold[4] = {2, 4, 6, 1}, res2[4] = {1.0, 0.0, -1.0, 3.0}, unew[4] = {};
  volna::RK2<double>{}(uold, utmp, res2, unew, &dt);
  EXPECT_NEAR(unew[0], 0.5 * (2 + 2.05 + 0.1), 1e-14);
  EXPECT_NEAR(unew[2], 0.5 * (6 + 6.10 - 0.1), 1e-14);
  EXPECT_EQ(unew[3], 1.0);
  for (int n = 0; n < 4; ++n) EXPECT_EQ(res2[n], 0.0);
}

// ---- full application ------------------------------------------------------------

template <class Real>
aligned_vector<Real> run_app(const mesh::UnstructuredMesh& m, ExecConfig cfg, int steps,
                             double amp = 0.25) {
  LocalCtx ctx(cfg);
  volna::Volna<Real, LocalCtx> app(ctx, m, 1.0, amp, 0.1);
  app.run(steps);
  return app.fetch_state();
}

TEST(VolnaApp, StillWaterIsSteady) {
  auto m = mesh::make_tri_periodic(12, 12, 5.0, 5.0);
  const auto s = run_app<double>(m, {.backend = Backend::Seq}, 5, /*amp=*/0.0);
  for (idx_t c = 0; c < m.ncells; ++c) {
    ASSERT_NEAR(s[4 * c + 0], 1.0, 1e-12) << "h drifted on cell " << c;
    ASSERT_NEAR(s[4 * c + 1], 0.0, 1e-12);
    ASSERT_NEAR(s[4 * c + 2], 0.0, 1e-12);
  }
}

TEST(VolnaApp, VolumeConservedExactly) {
  auto m = mesh::make_tri_periodic(16, 16, 5.0, 5.0);
  const auto cg = volna::cell_geometry(m);
  LocalCtx ctx(ExecConfig{.backend = Backend::Simd});
  volna::Volna<double, LocalCtx> app(ctx, m, 1.0, 0.3, 0.1);
  const double v0 = volna::total_volume(app.fetch_state(), cg);
  app.run(20);
  const double v1 = volna::total_volume(app.fetch_state(), cg);
  EXPECT_NEAR(v1, v0, 1e-9 * v0) << "periodic FV scheme must conserve volume";
}

TEST(VolnaApp, WavePropagatesOutward) {
  auto m = mesh::make_tri_periodic(24, 24, 10.0, 10.0);
  LocalCtx ctx(ExecConfig{.backend = Backend::Simd});
  volna::Volna<double, LocalCtx> app(ctx, m, 1.0, 0.4, 0.05);
  const auto s0 = app.fetch_state();
  double hmax0 = 0;
  for (idx_t c = 0; c < m.ncells; ++c) hmax0 = std::max(hmax0, s0[4 * c]);
  app.run(30);
  const auto s1 = app.fetch_state();
  double hmax1 = 0, hu_energy = 0;
  for (idx_t c = 0; c < m.ncells; ++c) {
    hmax1 = std::max(hmax1, s1[4 * c]);
    hu_energy += s1[4 * c + 1] * s1[4 * c + 1] + s1[4 * c + 2] * s1[4 * c + 2];
  }
  EXPECT_LT(hmax1, hmax0) << "hump must collapse";
  EXPECT_GT(hu_energy, 0.0) << "momentum must appear as the wave radiates";
  EXPECT_GT(app.last_dt(), 0.0);
}

class VolnaBackends : public ::testing::TestWithParam<int> {
 public:
  static std::vector<std::pair<std::string, ExecConfig>> configs() {
    return {
        {"openmp", {.backend = Backend::OpenMP}},
        {"autovec", {.backend = Backend::AutoVec}},
        {"simd", {.backend = Backend::Simd}},
        {"simd_bp", {.backend = Backend::Simd, .coloring = ColoringStrategy::BlockPermute}},
        {"simt", {.backend = Backend::Simt}},
    };
  }
};

TEST_P(VolnaBackends, MatchSequential) {
  auto m = mesh::make_tri_periodic(9, 11, 4.0, 4.0);
  const auto ref = run_app<double>(m, {.backend = Backend::Seq}, 4);
  const auto cfgs = configs();
  const auto& [name, cfg] = cfgs[GetParam()];
  SCOPED_TRACE(name);
  const auto got = run_app<double>(m, cfg, 4);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], got[i], 1e-9 * (std::abs(ref[i]) + 1)) << "state[" << i << "]";
}

INSTANTIATE_TEST_SUITE_P(Configs, VolnaBackends,
                         ::testing::Range(0, static_cast<int>(VolnaBackends::configs().size())),
                         [](const auto& info) {
                           return VolnaBackends::configs()[info.param].first;
                         });

TEST(VolnaApp, DistMatchesLocal) {
  auto m = mesh::make_tri_periodic(10, 10, 4.0, 4.0);
  const auto ref = run_app<double>(m, {.backend = Backend::Seq}, 3);
  dist::DistCtx ctx(4, ExecConfig{.backend = Backend::Seq, .nthreads = 1});
  volna::Volna<double, dist::DistCtx> app(ctx, m, 1.0, 0.25, 0.1);
  app.run(3);
  const auto got = app.fetch_state();
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], got[i], 1e-9 * (std::abs(ref[i]) + 1)) << i;
}

TEST(VolnaApp, SinglePrecisionRuns) {
  // The paper runs Volna in SP only; verify SP stays stable & conservative.
  auto m = mesh::make_tri_periodic(16, 16, 5.0, 5.0);
  const auto cg = volna::cell_geometry(m);
  LocalCtx ctx(ExecConfig{.backend = Backend::Simd});
  volna::Volna<float, LocalCtx> app(ctx, m, 1.0, 0.25, 0.1);
  const double v0 = volna::total_volume(app.fetch_state(), cg);
  app.run(10);
  const double v1 = volna::total_volume(app.fetch_state(), cg);
  EXPECT_NEAR(v1, v0, 1e-4 * v0);
  for (float x : app.fetch_state()) EXPECT_TRUE(std::isfinite(x));
}

TEST(VolnaApp, KernelInfoRegistered) {
  volna::register_kernel_info();
  auto& reg = KernelRegistry::instance();
  for (const char* k :
       {"sim_1", "compute_flux", "numerical_flux", "space_disc", "RK_1", "RK_2"})
    EXPECT_TRUE(reg.has(k)) << k;
  EXPECT_NEAR(reg.get("compute_flux").flop_per_byte(4), 154.0 / 72.0, 1e-3);
}

}  // namespace
