// LoopChain (cross-loop sparse tiling, core/chain.hpp) tests:
//  - chained Airfoil / Volna on Seq are BITWISE identical to the
//    loop-by-loop step (the monotone contiguous tiling replays each loop's
//    exact sequential element order);
//  - parallel backends match within the usual increment-reassociation
//    tolerance;
//  - the inspector's offsets cover every element of every fused loop
//    exactly once;
//  - untileable dependences (indirect RW, reading a global reduced earlier
//    in the same segment) fall back to plain per-loop execution;
//  - degenerate shapes (single-loop chain, one tile, tiny tiles) stay
//    correct;
//  - the plan is pinned: steady-state runs do zero planning;
//  - chain-level stats land in the registry, grouped above member loops.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "apps/airfoil/airfoil.hpp"
#include "apps/volna/volna.hpp"
#include "core/chain.hpp"
#include "core/context.hpp"
#include "core/op2.hpp"
#include "mesh/generators.hpp"
#include "perf/table.hpp"

namespace {

using namespace opv;

// ---- app-level equivalence --------------------------------------------------

template <class T>
double field_divergence(const aligned_vector<T>& a, const aligned_vector<T>& b) {
  if (a.size() != b.size()) return 1.0;
  double norm = 0.0, max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    norm = std::max(norm, std::abs(double(a[i])));
    max_diff = std::max(max_diff, std::abs(double(a[i]) - double(b[i])));
  }
  return norm > 0.0 ? max_diff / norm : 1.0;
}

aligned_vector<double> airfoil_q(const mesh::UnstructuredMesh& m, const ExecConfig& cfg,
                                 bool chain, int iters) {
  LocalCtx ctx(cfg);
  airfoil::Airfoil<double, LocalCtx> app(ctx, m, chain);
  app.run(iters, 0);
  return app.fetch_q();
}

TEST(Chain, AirfoilSeqBitwise) {
  auto m = mesh::make_airfoil_omesh(96, 32);
  mesh::shuffle_edges(m, 7);  // scrambled ordering: tiles project broadly
  const ExecConfig cfg{.backend = Backend::Seq};
  const auto plain = airfoil_q(m, cfg, false, 3);
  const auto chained = airfoil_q(m, cfg, true, 3);
  ASSERT_EQ(plain.size(), chained.size());
  EXPECT_EQ(0, std::memcmp(plain.data(), chained.data(), plain.size() * sizeof(double)));
}

TEST(Chain, AirfoilSeqBitwiseAutoTile) {
  // kAuto tile sizing (cache-budget candidates + online tuner) must not
  // change results either — run long enough for the tuner to retile.
  auto m = mesh::make_airfoil_omesh(64, 24);
  const ExecConfig cfg{.backend = Backend::Seq};  // chain_tile_elems = kAuto
  const auto plain = airfoil_q(m, cfg, false, 12);
  const auto chained = airfoil_q(m, cfg, true, 12);
  ASSERT_EQ(plain.size(), chained.size());
  EXPECT_EQ(0, std::memcmp(plain.data(), chained.data(), plain.size() * sizeof(double)));
}

TEST(Chain, VolnaSeqBitwise) {
  auto m = mesh::make_tri_periodic(40, 40, 10.0, 10.0);
  const ExecConfig cfg{.backend = Backend::Seq};
  LocalCtx a(cfg), b(cfg);
  volna::Volna<float, LocalCtx> plain(a, m, 1.0, 0.25, 0.08, /*chain=*/false);
  volna::Volna<float, LocalCtx> chained(b, m, 1.0, 0.25, 0.08, /*chain=*/true);
  plain.run(3);
  chained.run(3);
  EXPECT_EQ(plain.last_dt(), chained.last_dt());
  const auto sa = plain.fetch_state(), sb = chained.fetch_state();
  ASSERT_EQ(sa.size(), sb.size());
  EXPECT_EQ(0, std::memcmp(sa.data(), sb.data(), sa.size() * sizeof(float)));
}

TEST(Chain, AirfoilParallelBackendsTolerance) {
  // OpenMP/Simd route conflicted subsets through subset coloring, which
  // reassociates indirect increments exactly like unchained execution does
  // — equivalence within the field-norm reassociation bar, not bitwise.
  auto m = mesh::make_airfoil_omesh(96, 32);
  mesh::shuffle_edges(m, 11);
  for (const Backend b : {Backend::OpenMP, Backend::Simd}) {
    const ExecConfig cfg{.backend = b};
    const auto plain = airfoil_q(m, cfg, false, 3);
    const auto chained = airfoil_q(m, cfg, true, 3);
    EXPECT_LT(field_divergence(plain, chained), 1e-12) << backend_name(b);
  }
}

// ---- micro fixtures ---------------------------------------------------------

struct BumpDirect {  // a[i] += 1
  template <class T>
  void operator()(T* a) const {
    a[0] += T(1);
  }
};

struct BumpBothCells {  // count[c] += 1 through both edge endpoints
  template <class T>
  void operator()(T* c1, T* c2) const {
    c1[0] += T(1);
    c2[0] += T(1);
  }
};

struct ScaleRwIndirect {  // indirect RW: untileable
  template <class T>
  void operator()(T* c1) const {
    c1[0] = c1[0] * T(0.5) + T(1);
  }
};

struct GblAccum {  // g += a[i]
  template <class T>
  void operator()(const T* a, T* g) const {
    g[0] += a[0];
  }
};

struct GblApply {  // b[i] = a[i] + g
  template <class T>
  void operator()(const T* a, T* b, const T* g) const {
    b[0] = a[0] + g[0];
  }
};

struct Micro {
  mesh::UnstructuredMesh m;
  Set cells, edges;
  Map e2c;
  Dat<double> count_c, count_e, a, b;

  Micro()
      : m(mesh::make_quad_box(40, 25)),
        cells("cells", m.ncells),
        edges("edges", m.nedges),
        e2c("e2c", edges, cells, 2, m.edge_cells),
        count_c("count_c", cells, 1),
        count_e("count_e", cells, 1),
        a("a", cells, 1),
        b("b", cells, 1) {
    for (idx_t c = 0; c < cells.size(); ++c) a.at(c) = 0.25 * c;
  }
};

TEST(Chain, ExactlyOnceCoverAndContiguousOffsets) {
  Micro f;
  Loop direct(BumpDirect{}, "ch_cover_direct", f.cells, arg(f.count_c, Access::INC));
  Loop both(BumpBothCells{}, "ch_cover_edges", f.edges, arg(f.count_e, 0, f.e2c, Access::INC),
            arg(f.count_e, 1, f.e2c, Access::INC));
  LoopChain chain("ch_cover", direct, both);

  ExecConfig cfg{.backend = Backend::Seq};
  cfg.chain_tile_elems = 64;
  chain.run(cfg);

  EXPECT_EQ(chain.effective_fused(), 2);
  ASSERT_NE(chain.plan(), nullptr);
  ASSERT_EQ(chain.plan()->segments.size(), 1u);
  const auto& seg = chain.plan()->segments[0];
  EXPECT_TRUE(seg.fused);
  EXPECT_EQ(seg.ntiles, chain.ntiles());
  // Offsets partition [0, n) per loop: start 0, end n, non-decreasing.
  const idx_t n_per_loop[2] = {f.cells.size(), f.edges.size()};
  for (int l = 0; l < 2; ++l) {
    const auto& off = seg.offsets[static_cast<std::size_t>(l)];
    ASSERT_EQ(off.size(), static_cast<std::size_t>(seg.ntiles) + 1);
    EXPECT_EQ(off.front(), 0);
    EXPECT_EQ(off.back(), n_per_loop[l]);
    for (std::size_t t = 1; t < off.size(); ++t) EXPECT_LE(off[t - 1], off[t]);
  }
  // Every element of every fused loop ran exactly once.
  for (idx_t c = 0; c < f.cells.size(); ++c) EXPECT_EQ(f.count_c.at(c), 1.0) << c;
  std::vector<double> degree(static_cast<std::size_t>(f.cells.size()), 0.0);
  for (idx_t e = 0; e < f.edges.size(); ++e) {
    degree[static_cast<std::size_t>(f.e2c(e, 0))] += 1.0;
    degree[static_cast<std::size_t>(f.e2c(e, 1))] += 1.0;
  }
  for (idx_t c = 0; c < f.cells.size(); ++c)
    EXPECT_EQ(f.count_e.at(c), degree[static_cast<std::size_t>(c)]) << c;
}

TEST(Chain, IndirectRwFallsBackUnfused) {
  Micro f;
  Loop d1(BumpDirect{}, "ch_rw_d1", f.cells, arg(f.count_c, Access::INC));
  Loop d2(BumpDirect{}, "ch_rw_d2", f.cells, arg(f.count_c, Access::INC));
  Loop rw(ScaleRwIndirect{}, "ch_rw_ind", f.edges, arg(f.a, 0, f.e2c, Access::RW));
  EXPECT_TRUE(rw.footprint().has_indirect_rw());

  LoopChain chain("ch_rw", d1, d2, rw);
  ExecConfig cfg{.backend = Backend::Seq};
  cfg.chain_tile_elems = 64;
  chain.run(cfg);

  // [d1 d2] fuse; the indirect-RW loop runs unfused (plain run()).
  EXPECT_EQ(chain.effective_fused(), 2);
  ASSERT_EQ(chain.plan()->segments.size(), 2u);
  EXPECT_TRUE(chain.plan()->segments[0].fused);
  EXPECT_FALSE(chain.plan()->segments[1].fused);

  // Equivalent unchained reference for the RW loop (its input is unchanged
  // by d1/d2, so one plain run from the same start state matches).
  Micro g;
  Loop ref(ScaleRwIndirect{}, "ch_rw_ref", g.edges, arg(g.a, 0, g.e2c, Access::RW));
  ref.run(cfg);
  for (idx_t c = 0; c < f.cells.size(); ++c) EXPECT_EQ(f.a.at(c), g.a.at(c)) << c;
  for (idx_t c = 0; c < f.cells.size(); ++c) EXPECT_EQ(f.count_c.at(c), 2.0) << c;
}

TEST(Chain, GblReadAfterReductionSplits) {
  Micro f;
  double g = 0.0;
  Loop accum(GblAccum{}, "ch_gbl_acc", f.cells, arg(f.a, Access::READ),
             arg_gbl(&g, 1, Access::INC));
  Loop apply(GblApply{}, "ch_gbl_apply", f.cells, arg(f.a, Access::READ),
             arg(f.b, Access::WRITE), arg_gbl<opv::READ>(&g, 1));
  EXPECT_TRUE(apply.footprint().reads_gbl(&g));

  LoopChain chain("ch_gbl", accum, apply);
  ExecConfig cfg{.backend = Backend::Seq};
  cfg.chain_tile_elems = 64;
  chain.run(cfg);

  // The reader must not interleave tile-wise with the reducer: two
  // single-loop segments, nothing fused — and the values prove the full
  // reduction completed before the reader started.
  EXPECT_EQ(chain.effective_fused(), 0);
  ASSERT_EQ(chain.plan()->segments.size(), 2u);
  EXPECT_FALSE(chain.plan()->segments[0].fused);
  EXPECT_FALSE(chain.plan()->segments[1].fused);
  double expected_g = 0.0;
  for (idx_t c = 0; c < f.cells.size(); ++c) expected_g += f.a.at(c);
  EXPECT_EQ(g, expected_g);
  for (idx_t c = 0; c < f.cells.size(); ++c) EXPECT_EQ(f.b.at(c), f.a.at(c) + expected_g) << c;
}

TEST(Chain, DegenerateShapes) {
  Micro f;
  ExecConfig cfg{.backend = Backend::Seq};

  {  // empty chain: run is a no-op
    LoopChain empty("ch_empty");
    EXPECT_NO_THROW(empty.run(cfg));
    EXPECT_EQ(empty.plans_built(), 0);
  }
  {  // single-loop chain: below the fusion threshold, plain run()
    Loop solo(BumpDirect{}, "ch_solo", f.cells, arg(f.count_c, Access::INC));
    LoopChain chain("ch_single", solo);
    cfg.chain_tile_elems = 64;
    chain.run(cfg);
    EXPECT_EQ(chain.effective_fused(), 0);
    for (idx_t c = 0; c < f.cells.size(); ++c) ASSERT_EQ(f.count_c.at(c), 1.0);
  }
  {  // one giant tile and tiny 16-element tiles both cover exactly once
    for (const int tile : {1 << 20, 16}) {
      Micro m2;
      Loop d(BumpDirect{}, "ch_deg_d", m2.cells, arg(m2.count_c, Access::INC));
      Loop e(BumpBothCells{}, "ch_deg_e", m2.edges, arg(m2.count_e, 0, m2.e2c, Access::INC),
             arg(m2.count_e, 1, m2.e2c, Access::INC));
      LoopChain chain("ch_degenerate", d, e);
      cfg.chain_tile_elems = tile;
      chain.run(cfg);
      EXPECT_EQ(chain.ntiles(), tile > m2.cells.size() ? 1 : chain.ntiles());
      for (idx_t c = 0; c < m2.cells.size(); ++c) ASSERT_EQ(m2.count_c.at(c), 1.0);
    }
  }
}

TEST(Chain, PlanPinnedAcrossRuns) {
  Micro f;
  Loop d(BumpDirect{}, "ch_pin_d", f.cells, arg(f.count_c, Access::INC));
  Loop e(BumpBothCells{}, "ch_pin_e", f.edges, arg(f.count_e, 0, f.e2c, Access::INC),
         arg(f.count_e, 1, f.e2c, Access::INC));
  LoopChain chain("ch_pin", d, e);
  ExecConfig cfg{.backend = Backend::Seq};
  cfg.chain_tile_elems = 128;

  chain.run(cfg);
  ASSERT_EQ(chain.plans_built(), 1);
  const auto* pinned = chain.plan();
  chain.run(cfg);
  chain.run(cfg);
  // Steady state: zero planning — same count, same pinned plan object.
  EXPECT_EQ(chain.plans_built(), 1);
  EXPECT_EQ(chain.plan(), pinned);
  EXPECT_EQ(chain.tile_elems(), 128);

  // An explicit retile re-plans once, then pins again.
  cfg.chain_tile_elems = 256;
  chain.run(cfg);
  EXPECT_EQ(chain.plans_built(), 2);
  EXPECT_EQ(chain.tile_elems(), 256);
}

TEST(Chain, StatsGroupedUnderChainRow) {
  StatsRegistry::instance().clear();
  Micro f;
  Loop d(BumpDirect{}, "ch_stat_d", f.cells, arg(f.count_c, Access::INC));
  Loop e(BumpBothCells{}, "ch_stat_e", f.edges, arg(f.count_e, 0, f.e2c, Access::INC),
         arg(f.count_e, 1, f.e2c, Access::INC));
  LoopChain chain("ch_stat", d, e);
  ExecConfig cfg{.backend = Backend::Seq};
  cfg.chain_tile_elems = 64;
  chain.run(cfg);
  chain.run(cfg);

  const ChainRecord rec = StatsRegistry::instance().get_chain("ch_stat");
  EXPECT_EQ(rec.calls, 2);
  EXPECT_EQ(rec.tiles, chain.ntiles());
  EXPECT_EQ(rec.fused_loops, 2);
  EXPECT_EQ(rec.member_loops, 2);
  EXPECT_GT(rec.seconds, 0.0);
  EXPECT_GT(rec.plan_seconds, 0.0);
  ASSERT_EQ(rec.members.size(), 2u);
  EXPECT_EQ(rec.members[0], "ch_stat_d");
  EXPECT_EQ(rec.members[1], "ch_stat_e");
  // Member loops recorded under their own names (fused members are timed by
  // the chain), and the grouped table renders chain + indented members.
  EXPECT_EQ(StatsRegistry::instance().get("ch_stat_d").calls, 2);
  EXPECT_EQ(StatsRegistry::instance().get("ch_stat_e").calls, 2);
  const std::string table =
      perf::loop_stats_table(StatsRegistry::instance().all(),
                             StatsRegistry::instance().all_chains())
          .to_string();
  EXPECT_NE(table.find("ch_stat"), std::string::npos);
  EXPECT_NE(table.find("  ch_stat_d"), std::string::npos);
  EXPECT_NE(table.find("tiles"), std::string::npos);
}

// ---- footprint API ----------------------------------------------------------

TEST(Chain, FootprintExposesPinnedAccessSummary) {
  Micro f;
  Loop both(BumpBothCells{}, "ch_fp_edges", f.edges, arg(f.count_e, 0, f.e2c, Access::INC),
            arg(f.count_e, 1, f.e2c, Access::INC));
  const LoopFootprint& fp = both.footprint();
  EXPECT_EQ(fp.iter_set, &f.edges);
  ASSERT_EQ(fp.args.size(), 2u);
  EXPECT_EQ(fp.args[0].dat, &f.count_e);
  EXPECT_EQ(fp.args[0].map, &f.e2c);
  EXPECT_EQ(fp.args[0].map_idx, 0);
  EXPECT_EQ(fp.args[1].map_idx, 1);
  EXPECT_TRUE(fp.args[0].indirect);
  EXPECT_FALSE(fp.has_indirect_rw());
  const auto conflicts = fp.conflicts();
  ASSERT_EQ(conflicts.size(), 2u);
  EXPECT_EQ(conflicts[0].map, &f.e2c);
  // The footprint's conflict list IS the loop's plan key.
  EXPECT_EQ(conflicts, both.conflicts());

  double g = 0.0;
  Loop accum(GblAccum{}, "ch_fp_gbl", f.cells, arg(f.a, Access::READ),
             arg_gbl(&g, 1, Access::INC));
  const LoopFootprint& gfp = accum.footprint();
  ASSERT_EQ(gfp.args.size(), 2u);
  EXPECT_TRUE(gfp.args[1].is_gbl);
  EXPECT_TRUE(gfp.args[1].gbl_reduction);
  EXPECT_EQ(gfp.gbl_reductions().size(), 1u);
  EXPECT_EQ(gfp.gbl_reductions()[0], &g);
  EXPECT_FALSE(gfp.reads_gbl(&g));
}

}  // namespace
