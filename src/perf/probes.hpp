// Machine characterization probes: the data the paper reports in Table I
// (STREAM bandwidth, achievable FLOP rates, FLOP/byte balance) measured on
// the host so every bench can report achieved-vs-machine-peak fractions.
#pragma once

#include <cstddef>

namespace opv::perf {

/// STREAM-style bandwidth (GB/s), best of `reps` repetitions.
struct StreamResult {
  double copy_gbs = 0;
  double scale_gbs = 0;
  double add_gbs = 0;
  double triad_gbs = 0;

  [[nodiscard]] double best() const;
};

/// Run the four STREAM kernels over arrays of `n` doubles with OpenMP.
StreamResult stream_bandwidth(std::size_t n = 1 << 26, int reps = 5, int nthreads = 0);

/// Peak sustained FLOP rate (GFLOP/s) using FMA chains on vector registers.
/// vector_width: lanes per operation (1 = scalar — the paper's
/// "non-vectorized compute throughput").
double flops_peak_dp(int vector_width, int nthreads = 0);
double flops_peak_sp(int vector_width, int nthreads = 0);

/// Scalar vs vector sqrt/div throughput (ns per operation) — the paper's
/// explanation for adt_calc/compute_flux being compute-bound when scalar.
struct SqrtThroughput {
  double scalar_ns_per_op = 0;
  double vector_ns_per_op = 0;  ///< per lane-operation at full width
};
SqrtThroughput sqrt_throughput_dp();
SqrtThroughput sqrt_throughput_sp();

}  // namespace opv::perf
