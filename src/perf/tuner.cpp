#include "perf/tuner.hpp"

#include <limits>

#include "common/error.hpp"

namespace opv::perf {

TuneResult tune_block_size(const std::function<double(int)>& workload,
                           std::vector<int> candidates, int reps) {
  OPV_REQUIRE(!candidates.empty(), "tune_block_size: no candidates");
  OPV_REQUIRE(reps >= 1, "tune_block_size: reps must be >= 1");
  TuneResult r;
  r.best_seconds = std::numeric_limits<double>::infinity();
  for (int bs : candidates) {
    OPV_REQUIRE(bs >= 16 && bs % 16 == 0,
                "tune_block_size: candidate " << bs << " must be a positive multiple of 16");
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) {
      const double s = workload(bs);
      best = s < best ? s : best;
    }
    r.samples.emplace_back(bs, best);
    if (best < r.best_seconds) {
      r.best_seconds = best;
      r.best_block_size = bs;
    }
  }
  return r;
}

OnlineTuner::OnlineTuner(std::vector<int> candidates, int reps)
    : candidates_(std::move(candidates)), reps_(reps) {
  OPV_REQUIRE(!candidates_.empty(), "OnlineTuner: no candidates");
  OPV_REQUIRE(reps_ >= 1, "OnlineTuner: reps must be >= 1");
  for (int bs : candidates_)
    OPV_REQUIRE(bs >= 16 && bs % 16 == 0,
                "OnlineTuner: candidate " << bs << " must be a positive multiple of 16");
  best_seconds_.assign(candidates_.size(), std::numeric_limits<double>::infinity());
}

int OnlineTuner::propose() const {
  return settled_ ? best_ : candidates_[cursor_];
}

void OnlineTuner::observe(int block_size, double seconds) {
  if (settled_ || block_size != candidates_[cursor_]) return;
  if (seconds < best_seconds_[cursor_]) best_seconds_[cursor_] = seconds;
  samples_.emplace_back(block_size, seconds);
  std::size_t arg = 0;
  for (std::size_t i = 1; i < candidates_.size(); ++i)
    if (best_seconds_[i] < best_seconds_[arg]) arg = i;
  best_ = candidates_[arg];
  if (++cursor_ == candidates_.size()) {
    cursor_ = 0;
    if (++pass_ >= reps_) settled_ = true;
  }
}

}  // namespace opv::perf
