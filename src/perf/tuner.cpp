#include "perf/tuner.hpp"

#include <limits>

#include "common/error.hpp"

namespace opv::perf {

TuneResult tune_block_size(const std::function<double(int)>& workload,
                           std::vector<int> candidates, int reps) {
  OPV_REQUIRE(!candidates.empty(), "tune_block_size: no candidates");
  OPV_REQUIRE(reps >= 1, "tune_block_size: reps must be >= 1");
  TuneResult r;
  r.best_seconds = std::numeric_limits<double>::infinity();
  for (int bs : candidates) {
    OPV_REQUIRE(bs >= 16 && bs % 16 == 0,
                "tune_block_size: candidate " << bs << " must be a positive multiple of 16");
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) {
      const double s = workload(bs);
      best = s < best ? s : best;
    }
    r.samples.emplace_back(bs, best);
    if (best < r.best_seconds) {
      r.best_seconds = best;
      r.best_block_size = bs;
    }
  }
  return r;
}

}  // namespace opv::perf
