// Block-size auto-tuner: the paper tunes the mini-partition size by hand
// (Fig. 8b); this utility automates the search for a given loop workload.
// An extension feature beyond the paper (its "plan construction" future
// work), exposed through the public API and used by the tuning bench.
#pragma once

#include <functional>
#include <vector>

namespace opv::perf {

struct TuneResult {
  int best_block_size = 0;
  double best_seconds = 0.0;
  std::vector<std::pair<int, double>> samples;  ///< (block size, seconds)
};

/// Time `workload(block_size)` for each candidate (repeating `reps` times,
/// keeping the minimum) and return the fastest block size. Candidates must
/// be positive multiples of 16; default sweep 128..4096.
TuneResult tune_block_size(const std::function<double(int)>& workload,
                           std::vector<int> candidates = {128, 256, 512, 1024, 2048, 4096},
                           int reps = 3);

}  // namespace opv::perf
