// Block-size auto-tuner: the paper tunes the mini-partition size by hand
// (Fig. 8b); this utility automates the search for a given loop workload.
// An extension feature beyond the paper (its "plan construction" future
// work), exposed through the public API and used by the tuning bench.
#pragma once

#include <functional>
#include <vector>

namespace opv::perf {

struct TuneResult {
  int best_block_size = 0;
  double best_seconds = 0.0;
  std::vector<std::pair<int, double>> samples;  ///< (block size, seconds)
};

/// Time `workload(block_size)` for each candidate (repeating `reps` times,
/// keeping the minimum) and return the fastest block size. Candidates must
/// be positive multiples of 16; default sweep 128..4096.
TuneResult tune_block_size(const std::function<double(int)>& workload,
                           std::vector<int> candidates = {128, 256, 512, 1024, 2048, 4096},
                           int reps = 3);

/// Online variant backing ExecConfig::kAuto. A Loop handle asks propose()
/// for the block size of its next run and reports the measured wall time
/// through observe(); after `reps` timed passes over the candidate list the
/// tuner settles on the fastest and propose() returns it forever after.
/// Unlike tune_block_size, no extra kernel executions happen: every tuning
/// sample is a real, correct run of the loop — only the block size varies
/// across the first candidates*reps calls.
///
/// Lifetime: each opv::Loop INSTANCE owns its tuner; the pinned winner is
/// never shared across handles or stored under a kernel/set key. That is
/// deliberate: the optimal block size depends on the generated code, and
/// re-templating a loop — e.g. migrating its arguments from runtime-dim to
/// compile-time-Dim descriptors (core/arg.hpp) — changes the instantiation.
/// A retyped handle therefore starts untuned and re-tunes from scratch
/// instead of inheriting a pin measured on different code
/// (test_loop_handle: RetypedHandleReTunes).
class OnlineTuner {
 public:
  explicit OnlineTuner(std::vector<int> candidates = {128, 256, 512, 1024, 2048, 4096},
                       int reps = 2);

  /// Block size the next run should use (stable until observe()).
  [[nodiscard]] int propose() const;

  /// Record one run's wall time; ignored unless block_size is the current
  /// candidate (a caller may interleave explicitly-sized runs).
  void observe(int block_size, double seconds);

  [[nodiscard]] bool settled() const { return settled_; }

  /// Fastest candidate observed so far (0 before any observation).
  [[nodiscard]] int best() const { return best_; }

  /// (block size, best seconds) per candidate observed so far.
  [[nodiscard]] const std::vector<std::pair<int, double>>& samples() const { return samples_; }

 private:
  std::vector<int> candidates_;
  std::vector<double> best_seconds_;  ///< per candidate; +inf = unobserved
  std::vector<std::pair<int, double>> samples_;
  int reps_;
  int pass_ = 0;
  std::size_t cursor_ = 0;
  int best_ = 0;
  bool settled_ = false;
};

}  // namespace opv::perf
