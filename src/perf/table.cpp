#include "perf/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace opv::perf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::pct(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, 100.0 * v);
  return buf;
}

double useful_gbs(const KernelInfo& info, std::size_t value_bytes, const LoopRecord& rec) {
  if (rec.seconds <= 0.0) return 0.0;
  return info.bytes_per_elem(value_bytes) * static_cast<double>(rec.elements) / rec.seconds / 1e9;
}

double useful_gflops(const KernelInfo& info, const LoopRecord& rec) {
  if (rec.seconds <= 0.0) return 0.0;
  return info.flops * static_cast<double>(rec.elements) / rec.seconds / 1e9;
}

double rank_imbalance(const LoopRecord& rec) {
  if (rec.nranks <= 0 || rec.rank_mean_seconds <= 0.0) return 0.0;
  return rec.rank_max_seconds / rec.rank_mean_seconds;
}

Table loop_stats_table(const std::vector<std::pair<std::string, LoopRecord>>& records,
                       const std::vector<std::pair<std::string, ChainRecord>>& chains,
                       const std::vector<std::pair<std::string, EnsembleRecord>>& ensembles) {
  bool any_ranks = false, any_exchange = false, any_plan = false, any_layout = false;
  for (const auto& [name, rec] : records) {
    any_ranks |= rec.nranks > 0;
    any_exchange |= rec.exchange_seconds > 0.0 || rec.exchanged_values > 0;
    any_plan |= rec.plan_seconds > 0.0;
    // The layout column only appears once some loop ran against a non-AoS
    // dat — all-AoS runs keep the historical table shape.
    any_layout |= !rec.layout.empty() && rec.layout != "AoS";
  }
  const bool any_chain = !chains.empty();
  for (const auto& [name, rec] : chains) any_plan |= rec.plan_seconds > 0.0;
  const bool any_ensemble = !ensembles.empty();
  // Resilience columns appear only when some ensemble actually engaged the
  // checkpoint/retry machinery — policy-free runs keep the historical shape.
  bool any_resil = false;
  for (const auto& [name, rec] : ensembles) any_resil |= rec.any_resilience();

  std::vector<std::string> headers = {"loop", "calls", "seconds"};
  if (any_layout) headers.push_back("layout");
  if (any_ranks) {
    headers.push_back("ranks");
    headers.push_back("max/mean imb");
  }
  if (any_exchange) {
    headers.push_back("exch (s)");
    headers.push_back("exch vals");
  }
  if (any_chain) {
    headers.push_back("tiles");
    headers.push_back("fused");
  }
  if (any_ensemble) {
    headers.push_back("inst/s");
    headers.push_back("occupancy");
    headers.push_back("plan hit");
  }
  if (any_resil) {
    headers.push_back("retry/restore");
    headers.push_back("chk (s)");
  }
  if (any_plan) headers.push_back("plan (s)");
  Table t(std::move(headers));

  auto loop_row = [&](const std::string& name, const LoopRecord& rec) {
    std::vector<std::string> row = {name, std::to_string(rec.calls),
                                    Table::num(rec.seconds, 4)};
    if (any_layout) row.push_back(rec.layout.empty() ? "-" : rec.layout);
    if (any_ranks) {
      row.push_back(rec.nranks > 0 ? std::to_string(rec.nranks) : "-");
      row.push_back(rec.nranks > 0 ? Table::num(rank_imbalance(rec), 3) : "-");
    }
    if (any_exchange) {
      const bool has = rec.exchange_seconds > 0.0 || rec.exchanged_values > 0;
      row.push_back(has ? Table::num(rec.exchange_seconds, 4) : "-");
      row.push_back(has ? std::to_string(rec.exchanged_values) : "-");
    }
    if (any_chain) {
      row.push_back("-");
      row.push_back("-");
    }
    if (any_ensemble) {
      row.push_back("-");
      row.push_back("-");
      row.push_back("-");
    }
    if (any_resil) {
      row.push_back("-");
      row.push_back("-");
    }
    if (any_plan) row.push_back(rec.plan_seconds > 0.0 ? Table::num(rec.plan_seconds, 4) : "-");
    t.add_row(std::move(row));
  };

  // Ensemble summary rows lead: the serving-level aggregates over all the
  // per-instance loop rows below them.
  for (const auto& [ename, erec] : ensembles) {
    std::vector<std::string> row = {ename, std::to_string(erec.runs),
                                    Table::num(erec.seconds, 4)};
    if (any_layout) row.push_back("-");
    if (any_ranks) {
      row.push_back("-");
      row.push_back("-");
    }
    if (any_exchange) {
      row.push_back("-");
      row.push_back("-");
    }
    if (any_chain) {
      row.push_back("-");
      row.push_back("-");
    }
    const double inst_per_sec =
        erec.seconds > 0.0 ? static_cast<double>(erec.completed) / erec.seconds : 0.0;
    const double occupancy = erec.seconds > 0.0 && erec.workers > 0
                                 ? erec.busy_seconds / (erec.seconds * erec.workers)
                                 : 0.0;
    const std::int64_t plan_total = erec.plan_hits + erec.plan_misses;
    row.push_back(Table::num(inst_per_sec, 2));
    row.push_back(Table::pct(occupancy, 1));
    row.push_back(plan_total > 0
                      ? Table::pct(static_cast<double>(erec.plan_hits) /
                                       static_cast<double>(plan_total),
                                   1)
                      : "-");
    if (any_resil) {
      row.push_back(erec.any_resilience()
                        ? std::to_string(erec.retries) + "/" + std::to_string(erec.restores)
                        : "-");
      row.push_back(erec.checkpoints > 0 ? Table::num(erec.checkpoint_seconds, 4) : "-");
    }
    if (any_plan) row.push_back("-");
    t.add_row(std::move(row));
  }

  // Chain rows first, each followed by its member loops indented; a loop
  // can belong to several chains (its row repeats under each), so "used"
  // only governs the trailing unchained section.
  std::vector<bool> used(records.size(), false);
  for (const auto& [cname, crec] : chains) {
    std::vector<std::string> row = {cname, std::to_string(crec.calls),
                                    Table::num(crec.seconds, 4)};
    if (any_layout) row.push_back("-");
    if (any_ranks) {
      row.push_back("-");
      row.push_back("-");
    }
    if (any_exchange) {
      row.push_back("-");
      row.push_back("-");
    }
    row.push_back(std::to_string(crec.tiles));
    row.push_back(std::to_string(crec.fused_loops) + "/" + std::to_string(crec.member_loops));
    if (any_ensemble) {
      row.push_back("-");
      row.push_back("-");
      row.push_back("-");
    }
    if (any_resil) {
      row.push_back("-");
      row.push_back("-");
    }
    if (any_plan)
      row.push_back(crec.plan_seconds > 0.0 ? Table::num(crec.plan_seconds, 4) : "-");
    t.add_row(std::move(row));
    for (const std::string& member : crec.members)
      for (std::size_t i = 0; i < records.size(); ++i)
        if (records[i].first == member) {
          loop_row("  " + member, records[i].second);
          used[i] = true;
          break;
        }
  }
  for (std::size_t i = 0; i < records.size(); ++i)
    if (!used[i]) loop_row(records[i].first, records[i].second);
  return t;
}

}  // namespace opv::perf
