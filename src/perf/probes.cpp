#include "perf/probes.hpp"

#include <omp.h>

#include <algorithm>

#include "common/aligned.hpp"
#include "common/timer.hpp"
#include "simd/simd.hpp"

namespace opv::perf {

double StreamResult::best() const {
  return std::max(std::max(copy_gbs, scale_gbs), std::max(add_gbs, triad_gbs));
}

StreamResult stream_bandwidth(std::size_t n, int reps, int nthreads) {
  const int nth = nthreads > 0 ? nthreads : omp_get_max_threads();
  aligned_vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
  StreamResult r;
  const double gb = static_cast<double>(n) * sizeof(double) / 1e9;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
#pragma omp parallel for num_threads(nth) schedule(static)
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i];
    r.copy_gbs = std::max(r.copy_gbs, 2 * gb / t.seconds());

    t.reset();
#pragma omp parallel for num_threads(nth) schedule(static)
    for (std::size_t i = 0; i < n; ++i) b[i] = 3.0 * c[i];
    r.scale_gbs = std::max(r.scale_gbs, 2 * gb / t.seconds());

    t.reset();
#pragma omp parallel for num_threads(nth) schedule(static)
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
    r.add_gbs = std::max(r.add_gbs, 3 * gb / t.seconds());

    t.reset();
#pragma omp parallel for num_threads(nth) schedule(static)
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + 0.42 * c[i];
    r.triad_gbs = std::max(r.triad_gbs, 3 * gb / t.seconds());
  }
  return r;
}

namespace {

/// FMA-chain throughput with V-typed accumulators; 8 independent chains
/// hide the FMA latency. Returns GFLOP/s (2 flops per lane per FMA).
template <class V>
double fma_chains(int nthreads, long iters) {
  const int nth = nthreads > 0 ? nthreads : omp_get_max_threads();
  using S = typename opv::simd::vec_traits<V>::scalar;
  const int lanes = opv::simd::vec_traits<V>::lanes;
  double sink = 0.0;
  WallTimer t;
#pragma omp parallel num_threads(nth) reduction(+ : sink)
  {
    V a0(S(1.0001)), a1(S(1.0002)), a2(S(1.0003)), a3(S(1.0004));
    V a4(S(1.0005)), a5(S(1.0006)), a6(S(1.0007)), a7(S(1.0008));
    const V m(S(0.999999)), c(S(1e-7));
    for (long i = 0; i < iters; ++i) {
      a0 = opv::simd::fma(a0, m, c);
      a1 = opv::simd::fma(a1, m, c);
      a2 = opv::simd::fma(a2, m, c);
      a3 = opv::simd::fma(a3, m, c);
      a4 = opv::simd::fma(a4, m, c);
      a5 = opv::simd::fma(a5, m, c);
      a6 = opv::simd::fma(a6, m, c);
      a7 = opv::simd::fma(a7, m, c);
    }
    sink += static_cast<double>(opv::simd::hsum(a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7));
  }
  const double secs = t.seconds();
  // Keep the computation observable.
  volatile double guard = sink;
  (void)guard;
  return static_cast<double>(nth) * static_cast<double>(iters) * 8.0 * lanes * 2.0 / secs / 1e9;
}

template <class V>
double sqrt_chain_ns(long iters) {
  using S = typename opv::simd::vec_traits<V>::scalar;
  const int lanes = opv::simd::vec_traits<V>::lanes;
  V a(S(1.7));
  const V c(S(1.0000001));
  WallTimer t;
  for (long i = 0; i < iters; ++i) a = opv::simd::sqrt(a) * c;
  const double secs = t.seconds();
  volatile double guard = static_cast<double>(opv::simd::hsum(a));
  (void)guard;
  return secs * 1e9 / (static_cast<double>(iters) * lanes);
}

}  // namespace

double flops_peak_dp(int vector_width, int nthreads) {
  constexpr long kIters = 20'000'000;
  switch (vector_width) {
    case 1: return fma_chains<double>(nthreads, kIters);
    case 4: return fma_chains<opv::simd::Vec<double, 4>>(nthreads, kIters);
    case 8: return fma_chains<opv::simd::Vec<double, 8>>(nthreads, kIters);
    default: return fma_chains<double>(nthreads, kIters);
  }
}

double flops_peak_sp(int vector_width, int nthreads) {
  constexpr long kIters = 20'000'000;
  switch (vector_width) {
    case 1: return fma_chains<float>(nthreads, kIters);
    case 8: return fma_chains<opv::simd::Vec<float, 8>>(nthreads, kIters);
    case 16: return fma_chains<opv::simd::Vec<float, 16>>(nthreads, kIters);
    default: return fma_chains<float>(nthreads, kIters);
  }
}

SqrtThroughput sqrt_throughput_dp() {
  constexpr long kIters = 5'000'000;
  SqrtThroughput r;
  r.scalar_ns_per_op = sqrt_chain_ns<double>(kIters);
  r.vector_ns_per_op =
      sqrt_chain_ns<opv::simd::Vec<double, opv::simd::max_lanes<double>>>(kIters);
  return r;
}

SqrtThroughput sqrt_throughput_sp() {
  constexpr long kIters = 5'000'000;
  SqrtThroughput r;
  r.scalar_ns_per_op = sqrt_chain_ns<float>(kIters);
  r.vector_ns_per_op = sqrt_chain_ns<opv::simd::Vec<float, opv::simd::max_lanes<float>>>(kIters);
  return r;
}

}  // namespace opv::perf
