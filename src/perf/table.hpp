// ASCII table printer used by every bench binary to emit the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "core/kernel_info.hpp"
#include "core/loop_stats.hpp"

namespace opv::perf {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;
  void print() const;

  /// Format helpers.
  static std::string num(double v, int prec = 2);
  static std::string pct(double v, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Useful bandwidth in GB/s for a recorded loop: the paper's convention
/// (KernelInfo payload values x element count / time).
double useful_gbs(const KernelInfo& info, std::size_t value_bytes, const LoopRecord& rec);

/// Compute throughput in GFLOP/s for a recorded loop.
double useful_gflops(const KernelInfo& info, const LoopRecord& rec);

/// Aggregate max/mean per-rank time ratio for a distributed loop record:
/// 1.0 = perfectly balanced partitions, larger = the slowest rank dominates
/// (paper section 6). 0 when the record carries no per-rank data.
double rank_imbalance(const LoopRecord& rec);

/// Per-loop stats table over registry records (StatsRegistry::all()):
/// loop / calls / seconds, plus ranks and a max/mean imbalance column when
/// any record carries per-rank times (distributed runs), plus exchange
/// seconds / exchanged value counts when any record carries halo-exchange
/// accounting (paper section 6.5's communication share).
///
/// When chain records (StatsRegistry::all_chains()) are passed, each chain
/// prints one aggregated row first — total chained seconds, tile count,
/// fused/member loop counts, chain (inspector) plan seconds — with its
/// member loops' rows indented beneath it; loops in no chain follow.
///
/// When ensemble records (StatsRegistry::all_ensembles()) are passed, each
/// ensemble prints one summary row at the top with the serving columns:
/// instances/sec (completed instances per wall second), pool occupancy
/// (busy worker-seconds over wall x workers) and the plan-cache hit rate
/// across instances — the measurable form of cross-instance plan sharing.
Table loop_stats_table(const std::vector<std::pair<std::string, LoopRecord>>& records,
                       const std::vector<std::pair<std::string, ChainRecord>>& chains = {},
                       const std::vector<std::pair<std::string, EnsembleRecord>>& ensembles = {});

}  // namespace opv::perf
