// ASCII table printer used by every bench binary to emit the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "core/kernel_info.hpp"
#include "core/loop_stats.hpp"

namespace opv::perf {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;
  void print() const;

  /// Format helpers.
  static std::string num(double v, int prec = 2);
  static std::string pct(double v, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Useful bandwidth in GB/s for a recorded loop: the paper's convention
/// (KernelInfo payload values x element count / time).
double useful_gbs(const KernelInfo& info, std::size_t value_bytes, const LoopRecord& rec);

/// Compute throughput in GFLOP/s for a recorded loop.
double useful_gflops(const KernelInfo& info, const LoopRecord& rec);

}  // namespace opv::perf
