// Unstructured 2D finite-volume mesh container.
//
// The layout mirrors the OP2 Airfoil dataset (new_grid.dat): a node set with
// coordinates, a cell set with a cell->node map, an interior-edge set with
// edge->node and edge->cell maps, and a boundary-edge set with its own maps
// plus a boundary-condition id. Triangular meshes (Volna) use the same
// container with nodes_per_cell == 3; periodic meshes have no boundary set.
#pragma once

#include <cstdint>
#include <string>

#include "common/aligned.hpp"

namespace opv::mesh {

using idx_t = std::int32_t;

/// Boundary condition ids carried by bedge_bound (Airfoil convention).
inline constexpr idx_t kBoundFarfield = 1;
inline constexpr idx_t kBoundWall = 2;

/// A fully unstructured 2D mesh: sets (nodes, cells, edges, bedges) plus the
/// mappings between them. All maps are stored element-major (AoS):
/// cell_nodes[c*nodes_per_cell + k] is the k-th node of cell c.
struct UnstructuredMesh {
  std::string name;

  idx_t nnodes = 0;
  idx_t ncells = 0;
  idx_t nedges = 0;   ///< interior edges (two adjacent cells)
  idx_t nbedges = 0;  ///< boundary edges (one adjacent cell)

  int nodes_per_cell = 4;  ///< 4 = quad mesh, 3 = triangle mesh

  /// Periodicity: when true, coordinates wrap with period (period_x,
  /// period_y) and geometric quantities must use the minimum-image rule.
  bool periodic = false;
  double period_x = 0.0;
  double period_y = 0.0;

  aligned_vector<double> node_xy;    ///< nnodes*2 node coordinates
  aligned_vector<idx_t> cell_nodes;  ///< ncells*nodes_per_cell
  aligned_vector<idx_t> edge_nodes;  ///< nedges*2
  aligned_vector<idx_t> edge_cells;  ///< nedges*2 (left, right)
  aligned_vector<idx_t> bedge_nodes; ///< nbedges*2
  aligned_vector<idx_t> bedge_cell;  ///< nbedges*1
  aligned_vector<idx_t> bedge_bound; ///< nbedges*1 boundary-condition id

  /// Estimated resident size of all arrays in bytes.
  [[nodiscard]] std::uint64_t footprint_bytes() const;

  /// Throws opv::Error if any structural invariant is violated (index
  /// ranges, distinct edge endpoints, edge nodes shared with both cells...).
  void validate() const;

  /// Apply the x/y minimum-image rule to a coordinate delta.
  [[nodiscard]] double wrap_dx(double dx) const;
  [[nodiscard]] double wrap_dy(double dy) const;
};

/// Topology statistics used by coloring diagnostics and tests.
struct MeshStats {
  int max_edges_per_cell = 0;    ///< max conflict degree for edge loops
  double avg_edges_per_cell = 0; ///< 2*nedges/ncells for interior edges
  idx_t isolated_cells = 0;      ///< cells touched by no interior edge
  std::int64_t edge_bandwidth = 0;  ///< max |cell0-cell1| over edges
};

MeshStats compute_stats(const UnstructuredMesh& m);

/// Inverse of edge->cell: for each cell, the (up to max_deg) incident
/// interior edges in CSR form. Used by Volna's per-cell gather loop and by
/// the coloring validity tests.
struct CellEdges {
  aligned_vector<idx_t> offset;  ///< ncells+1
  aligned_vector<idx_t> edges;   ///< offset[ncells] entries
};

CellEdges build_cell_edges(const UnstructuredMesh& m);

/// For triangle meshes where every cell has exactly three incident edges
/// (e.g. periodic meshes), a flat ncells*3 cell->edge map. Throws if any
/// cell does not have exactly three incident interior edges.
aligned_vector<idx_t> build_cell_edges_flat3(const UnstructuredMesh& m);

}  // namespace opv::mesh
