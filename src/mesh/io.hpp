// Mesh ingest and serialization.
//
// Two format families:
//   * OPVM/OPVT — binary containers caching expensive generator output
//     (multi-million-cell meshes) between bench runs, playing the role of
//     OP2's new_grid.dat input files. OPVM holds a 2D UnstructuredMesh,
//     OPVT a 3D TetMesh. Reads are fully validated: short files, corrupt
//     counts and overflowing sizes all raise descriptive opv::Error.
//   * Gmsh MSH (ASCII v2.2 and v4.1) — the interchange format real meshing
//     tools emit. read_msh parses $MeshFormat/$PhysicalNames/$Entities/
//     $Nodes/$Elements into a GmshMesh intermediate (line/tri/quad/tet
//     elements with physical tags), with strict validation and
//     line-numbered errors; write_msh emits either version. Converters
//     turn a GmshMesh into the finite-volume containers (deriving the
//     interior/boundary edge or face sets) and back, mapping physical
//     groups to named boundary sets and boundary-condition ids.
//
// Plus one non-mesh container riding on the same hardened binary plumbing:
//   * OPVK — the ensemble checkpoint file (core/snapshot.hpp types), the
//     kill-and-resume persistence of the resilience layer. Every section
//     payload carries a CRC32, so on-disk corruption is detected before a
//     single corrupt byte reaches a restored instance; all validation
//     errors name the byte offset.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "mesh/mesh.hpp"
#include "mesh/tetmesh.hpp"

namespace opv::mesh {

// ---- binary cache (OPVM / OPVT) -------------------------------------------

/// Write a mesh to a binary file. Throws opv::Error on I/O failure.
void write_mesh(const UnstructuredMesh& m, const std::string& path);

/// Read a mesh previously written by write_mesh. Throws opv::Error on any
/// format violation: bad magic, truncation, negative or implausible counts,
/// section size mismatches — never crashes or silently misparses.
UnstructuredMesh read_mesh(const std::string& path);

/// TetMesh siblings (OPVT container, same hardening contract).
void write_tet_mesh(const TetMesh& m, const std::string& path);
TetMesh read_tet_mesh(const std::string& path);

// ---- ensemble checkpoints (OPVK) ------------------------------------------

/// Write an ensemble checkpoint (serve::Ensemble::save) as an OPVK file:
/// magic + version header, per-instance progress, and one CRC32-protected
/// record per checkpoint section. Throws opv::Error on I/O failure.
void write_checkpoint(const EnsembleCheckpoint& c, const std::string& path);

/// Read an OPVK file previously written by write_checkpoint. Throws
/// opv::Error naming the byte offset on any violation: bad magic, unknown
/// version, truncation, implausible counts, CRC mismatch, trailing bytes.
EnsembleCheckpoint read_checkpoint(const std::string& path);

// ---- Gmsh MSH -------------------------------------------------------------

/// A physical group: (dim, tag) with an optional name from $PhysicalNames.
struct GmshPhysical {
  int dim = 0;
  idx_t tag = 0;
  std::string name;
  friend bool operator==(const GmshPhysical&, const GmshPhysical&) = default;
};

/// Parsed MSH content: nodes (always 3D coordinates) plus the supported
/// element types, each carrying a per-element physical tag (0 = untagged).
/// Node references are already resolved to dense 0-based indices; the
/// original file tags do not survive the parse.
struct GmshMesh {
  std::string name;

  idx_t nnodes = 0;
  aligned_vector<double> node_xyz;  ///< nnodes*3

  std::vector<GmshPhysical> physicals;

  /// One element class (fixed nodes-per-element).
  struct Elems {
    idx_t count = 0;
    aligned_vector<idx_t> nodes;  ///< count * nodes-per-element
    aligned_vector<idx_t> phys;   ///< count physical tags (0 = untagged)
    friend bool operator==(const Elems&, const Elems&) = default;
  };
  Elems lines;  ///< 2-node lines (gmsh type 1) — 2D boundary markers
  Elems tris;   ///< 3-node triangles (type 2) — 2D cells / 3D boundary
  Elems quads;  ///< 4-node quadrangles (type 3) — 2D cells
  Elems tets;   ///< 4-node tetrahedra (type 4) — 3D cells

  /// The registered name of physical group (dim, tag), or "" if unnamed.
  [[nodiscard]] std::string physical_name(int dim, idx_t tag) const;

  /// Structural validation (index ranges, array-size consistency).
  void validate() const;

  /// Content equality: nodes, physicals and all element classes. The name
  /// is a provenance label (file stem / generator tag) and is excluded.
  friend bool operator==(const GmshMesh& a, const GmshMesh& b);
};

/// Parse an ASCII Gmsh MSH file (format 2.2 or 4.1). Throws opv::Error with
/// "path:line" context on any violation: unknown version, binary file-type,
/// truncated sections, count mismatches, duplicate node tags, element
/// references to undeclared nodes.
GmshMesh read_msh(const std::string& path);

/// Stream variant (fixture and fuzz testing); `label` replaces the path in
/// error messages.
GmshMesh read_msh(std::istream& in, const std::string& label);

/// Write `g` as ASCII MSH. `version` is 2 (v2.2) or 4 (v4.1). v2.2 output
/// round-trips bit-exactly through read_msh (element order preserved);
/// v4.1 groups elements into per-(type, physical) entity blocks, so order
/// within a type follows physical-tag first appearance.
void write_msh(const GmshMesh& g, const std::string& path, int version = 2);

// ---- conversions ----------------------------------------------------------

/// How physical groups map onto boundary-condition ids during conversion.
struct MshOptions {
  /// Boundary physical-group name (lowercased) -> bound id.
  std::map<std::string, idx_t> bound_ids = {{"wall", kBoundWall}, {"farfield", kBoundFarfield}};
  /// Bound id for boundary elements whose physical group is absent/unknown.
  idx_t default_bound = kBoundFarfield;
};

/// A named boundary set recovered from a physical group: the boundary
/// element ids (bedge/bface indices of the converted mesh) in that group.
struct BoundarySet {
  std::string name;
  aligned_vector<idx_t> elems;
};

/// Build a 2D finite-volume mesh from parsed MSH content. Cells are the tri
/// OR quad elements (exactly one kind must be present; tets must be absent).
/// Interior and boundary edges are derived from the cell->node map in
/// deterministic discovery order; line elements assign bound ids (and fill
/// `bsets` when given) by matching boundary edges — a line element matching
/// an interior edge, or no edge at all, is an error. Edges are FV-oriented
/// (orient_edges_fv) and the result is validated.
UnstructuredMesh to_unstructured(const GmshMesh& g, const MshOptions& opt = {},
                                 std::vector<BoundarySet>* bsets = nullptr);

/// Build a 3D tetrahedral mesh from parsed MSH content (tet elements
/// required). Faces derive via build_tet_faces; boundary tri elements
/// assign bound ids / named sets exactly as lines do in 2D.
TetMesh to_tet(const GmshMesh& g, const MshOptions& opt = {},
               std::vector<BoundarySet>* bsets = nullptr);

/// Inverse converters (the MSH export path): cells become tri/quad/tet
/// elements with physical tag 1 ("domain"/"interior"), boundary edges/faces
/// become line/tri elements whose physical tag IS the bound id, named
/// "wall"/"farfield".
GmshMesh from_unstructured(const UnstructuredMesh& m);
GmshMesh from_tet(const TetMesh& m);

}  // namespace opv::mesh
