// Binary mesh serialization (an "OPVM" container). Lets expensive generator
// output (multi-million-cell meshes) be cached on disk between bench runs,
// playing the role of OP2's new_grid.dat input files.
#pragma once

#include <string>

#include "mesh/mesh.hpp"

namespace opv::mesh {

/// Write a mesh to a binary file. Throws opv::Error on I/O failure.
void write_mesh(const UnstructuredMesh& m, const std::string& path);

/// Read a mesh previously written by write_mesh. Throws on format mismatch.
UnstructuredMesh read_mesh(const std::string& path);

}  // namespace opv::mesh
