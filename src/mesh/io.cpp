#include "mesh/io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace opv::mesh {

namespace {

constexpr std::uint64_t kMagic = 0x4d56504f31303030ULL;  // "OPVM1000" (LE)

struct Header {
  std::uint64_t magic;
  std::int64_t nnodes, ncells, nedges, nbedges;
  std::int32_t nodes_per_cell;
  std::int32_t periodic;
  double period_x, period_y;
  std::int64_t name_len;
};

template <class T>
void write_vec(std::ofstream& os, const aligned_vector<T>& v) {
  const std::uint64_t n = v.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof n);
  os.write(reinterpret_cast<const char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
}

template <class T>
void read_vec(std::ifstream& is, aligned_vector<T>& v) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof n);
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
}

}  // namespace

void write_mesh(const UnstructuredMesh& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  OPV_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  Header h{};
  h.magic = kMagic;
  h.nnodes = m.nnodes;
  h.ncells = m.ncells;
  h.nedges = m.nedges;
  h.nbedges = m.nbedges;
  h.nodes_per_cell = m.nodes_per_cell;
  h.periodic = m.periodic ? 1 : 0;
  h.period_x = m.period_x;
  h.period_y = m.period_y;
  h.name_len = static_cast<std::int64_t>(m.name.size());
  os.write(reinterpret_cast<const char*>(&h), sizeof h);
  os.write(m.name.data(), static_cast<std::streamsize>(m.name.size()));
  write_vec(os, m.node_xy);
  write_vec(os, m.cell_nodes);
  write_vec(os, m.edge_nodes);
  write_vec(os, m.edge_cells);
  write_vec(os, m.bedge_nodes);
  write_vec(os, m.bedge_cell);
  write_vec(os, m.bedge_bound);
  OPV_REQUIRE(os.good(), "write failed for '" << path << "'");
}

UnstructuredMesh read_mesh(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  OPV_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  Header h{};
  is.read(reinterpret_cast<char*>(&h), sizeof h);
  OPV_REQUIRE(is.good() && h.magic == kMagic, "'" << path << "' is not an OPVM mesh file");
  UnstructuredMesh m;
  m.nnodes = static_cast<idx_t>(h.nnodes);
  m.ncells = static_cast<idx_t>(h.ncells);
  m.nedges = static_cast<idx_t>(h.nedges);
  m.nbedges = static_cast<idx_t>(h.nbedges);
  m.nodes_per_cell = h.nodes_per_cell;
  m.periodic = h.periodic != 0;
  m.period_x = h.period_x;
  m.period_y = h.period_y;
  m.name.resize(static_cast<std::size_t>(h.name_len));
  is.read(m.name.data(), h.name_len);
  read_vec(is, m.node_xy);
  read_vec(is, m.cell_nodes);
  read_vec(is, m.edge_nodes);
  read_vec(is, m.edge_cells);
  read_vec(is, m.bedge_nodes);
  read_vec(is, m.bedge_cell);
  read_vec(is, m.bedge_bound);
  OPV_REQUIRE(is.good(), "truncated OPVM file '" << path << "'");
  m.validate();
  return m;
}

}  // namespace opv::mesh
