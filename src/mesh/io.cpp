#include "mesh/io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "mesh/generators.hpp"

namespace opv::mesh {

namespace {

/// Sanity cap on every element/node count read from a file: large enough
/// for any real mesh, small enough that count*arity*sizeof(T) can never
/// overflow, and that a corrupt count fails fast instead of attempting a
/// multi-terabyte allocation.
constexpr long long kMaxCount = 1LL << 30;
constexpr long long kMaxNameLen = 1LL << 20;

// ===========================================================================
// Binary containers (OPVM / OPVT)
// ===========================================================================

constexpr std::uint64_t kMagic = 0x4d56504f31303030ULL;     // "OPVM1000" (LE)
constexpr std::uint64_t kMagicTet = 0x5456504f31303030ULL;  // "OPVT1000" (LE)

struct Header {
  std::uint64_t magic;
  std::int64_t nnodes, ncells, nedges, nbedges;
  std::int32_t nodes_per_cell;
  std::int32_t periodic;
  double period_x, period_y;
  std::int64_t name_len;
};

struct TetHeader {
  std::uint64_t magic;
  std::int64_t nnodes, ncells, nfaces, nbfaces;
  std::int64_t name_len;
};

template <class T>
void write_vec(std::ofstream& os, const aligned_vector<T>& v) {
  const std::uint64_t n = v.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof n);
  os.write(reinterpret_cast<const char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
}

/// Checked binary reads: every short read, count mismatch or trailing
/// garbage raises a descriptive opv::Error instead of leaving the stream
/// (and the half-filled mesh) in an undefined state.
class BinReader {
 public:
  explicit BinReader(const std::string& path) : is_(path, std::ios::binary), path_(path) {
    OPV_REQUIRE(is_.good(), "cannot open '" << path << "' for reading");
  }

  void read(void* dst, std::size_t bytes, const char* what) {
    is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
    OPV_REQUIRE(static_cast<std::size_t>(is_.gcount()) == bytes,
                "truncated file '" << path_ << "': short read in " << what << " at byte offset "
                                   << offset_ << " (got " << is_.gcount() << " of " << bytes
                                   << " bytes)");
    offset_ += bytes;
  }

  /// Bytes consumed so far — validation errors name it so a corrupt file
  /// can be inspected at the exact failing record.
  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Read a length-prefixed array whose length must equal `expected`
  /// (derived from the already-validated header — a corrupt prefix cannot
  /// trigger an outsized allocation).
  template <class T>
  void read_vec(aligned_vector<T>& v, std::size_t expected, const char* what) {
    std::uint64_t n = 0;
    read(&n, sizeof n, what);
    OPV_REQUIRE(n == expected, "'" << path_ << "': section " << what << " holds " << n
                                   << " values, expected " << expected);
    v.resize(static_cast<std::size_t>(n));
    if (n > 0) read(v.data(), static_cast<std::size_t>(n) * sizeof(T), what);
  }

  void expect_eof() {
    is_.peek();
    OPV_REQUIRE(is_.eof(), "'" << path_ << "': trailing bytes after the last section (at byte offset "
                               << offset_ << ")");
  }

 private:
  std::ifstream is_;
  std::string path_;
  std::size_t offset_ = 0;
};

void check_count(std::int64_t n, const char* what, const std::string& path) {
  OPV_REQUIRE(n >= 0 && n <= kMaxCount,
              "'" << path << "': implausible " << what << " count " << n);
}

}  // namespace

void write_mesh(const UnstructuredMesh& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  OPV_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  Header h{};
  h.magic = kMagic;
  h.nnodes = m.nnodes;
  h.ncells = m.ncells;
  h.nedges = m.nedges;
  h.nbedges = m.nbedges;
  h.nodes_per_cell = m.nodes_per_cell;
  h.periodic = m.periodic ? 1 : 0;
  h.period_x = m.period_x;
  h.period_y = m.period_y;
  h.name_len = static_cast<std::int64_t>(m.name.size());
  os.write(reinterpret_cast<const char*>(&h), sizeof h);
  os.write(m.name.data(), static_cast<std::streamsize>(m.name.size()));
  write_vec(os, m.node_xy);
  write_vec(os, m.cell_nodes);
  write_vec(os, m.edge_nodes);
  write_vec(os, m.edge_cells);
  write_vec(os, m.bedge_nodes);
  write_vec(os, m.bedge_cell);
  write_vec(os, m.bedge_bound);
  OPV_REQUIRE(os.good(), "write failed for '" << path << "'");
}

UnstructuredMesh read_mesh(const std::string& path) {
  BinReader r(path);
  Header h{};
  r.read(&h, sizeof h, "header");
  OPV_REQUIRE(h.magic == kMagic, "'" << path << "' is not an OPVM mesh file");
  check_count(h.nnodes, "node", path);
  check_count(h.ncells, "cell", path);
  check_count(h.nedges, "edge", path);
  check_count(h.nbedges, "boundary-edge", path);
  OPV_REQUIRE(h.nodes_per_cell == 3 || h.nodes_per_cell == 4,
              "'" << path << "': nodes_per_cell must be 3 or 4, got " << h.nodes_per_cell);
  OPV_REQUIRE(h.periodic == 0 || h.periodic == 1,
              "'" << path << "': corrupt periodic flag " << h.periodic);
  OPV_REQUIRE(h.name_len >= 0 && h.name_len <= kMaxNameLen,
              "'" << path << "': implausible name length " << h.name_len);

  UnstructuredMesh m;
  m.nnodes = static_cast<idx_t>(h.nnodes);
  m.ncells = static_cast<idx_t>(h.ncells);
  m.nedges = static_cast<idx_t>(h.nedges);
  m.nbedges = static_cast<idx_t>(h.nbedges);
  m.nodes_per_cell = h.nodes_per_cell;
  m.periodic = h.periodic != 0;
  m.period_x = h.period_x;
  m.period_y = h.period_y;
  m.name.resize(static_cast<std::size_t>(h.name_len));
  if (h.name_len > 0) r.read(m.name.data(), static_cast<std::size_t>(h.name_len), "name");
  r.read_vec(m.node_xy, static_cast<std::size_t>(m.nnodes) * 2, "node_xy");
  r.read_vec(m.cell_nodes, static_cast<std::size_t>(m.ncells) * m.nodes_per_cell, "cell_nodes");
  r.read_vec(m.edge_nodes, static_cast<std::size_t>(m.nedges) * 2, "edge_nodes");
  r.read_vec(m.edge_cells, static_cast<std::size_t>(m.nedges) * 2, "edge_cells");
  r.read_vec(m.bedge_nodes, static_cast<std::size_t>(m.nbedges) * 2, "bedge_nodes");
  r.read_vec(m.bedge_cell, static_cast<std::size_t>(m.nbedges), "bedge_cell");
  r.read_vec(m.bedge_bound, static_cast<std::size_t>(m.nbedges), "bedge_bound");
  r.expect_eof();
  m.validate();
  return m;
}

void write_tet_mesh(const TetMesh& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  OPV_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  TetHeader h{};
  h.magic = kMagicTet;
  h.nnodes = m.nnodes;
  h.ncells = m.ncells;
  h.nfaces = m.nfaces;
  h.nbfaces = m.nbfaces;
  h.name_len = static_cast<std::int64_t>(m.name.size());
  os.write(reinterpret_cast<const char*>(&h), sizeof h);
  os.write(m.name.data(), static_cast<std::streamsize>(m.name.size()));
  write_vec(os, m.node_xyz);
  write_vec(os, m.cell_nodes);
  write_vec(os, m.face_nodes);
  write_vec(os, m.face_cells);
  write_vec(os, m.bface_nodes);
  write_vec(os, m.bface_cell);
  write_vec(os, m.bface_bound);
  OPV_REQUIRE(os.good(), "write failed for '" << path << "'");
}

TetMesh read_tet_mesh(const std::string& path) {
  BinReader r(path);
  TetHeader h{};
  r.read(&h, sizeof h, "header");
  OPV_REQUIRE(h.magic == kMagicTet, "'" << path << "' is not an OPVT mesh file");
  check_count(h.nnodes, "node", path);
  check_count(h.ncells, "cell", path);
  check_count(h.nfaces, "face", path);
  check_count(h.nbfaces, "boundary-face", path);
  OPV_REQUIRE(h.name_len >= 0 && h.name_len <= kMaxNameLen,
              "'" << path << "': implausible name length " << h.name_len);

  TetMesh m;
  m.nnodes = static_cast<idx_t>(h.nnodes);
  m.ncells = static_cast<idx_t>(h.ncells);
  m.nfaces = static_cast<idx_t>(h.nfaces);
  m.nbfaces = static_cast<idx_t>(h.nbfaces);
  m.name.resize(static_cast<std::size_t>(h.name_len));
  if (h.name_len > 0) r.read(m.name.data(), static_cast<std::size_t>(h.name_len), "name");
  r.read_vec(m.node_xyz, static_cast<std::size_t>(m.nnodes) * 3, "node_xyz");
  r.read_vec(m.cell_nodes, static_cast<std::size_t>(m.ncells) * 4, "cell_nodes");
  r.read_vec(m.face_nodes, static_cast<std::size_t>(m.nfaces) * 3, "face_nodes");
  r.read_vec(m.face_cells, static_cast<std::size_t>(m.nfaces) * 2, "face_cells");
  r.read_vec(m.bface_nodes, static_cast<std::size_t>(m.nbfaces) * 3, "bface_nodes");
  r.read_vec(m.bface_cell, static_cast<std::size_t>(m.nbfaces), "bface_cell");
  r.read_vec(m.bface_bound, static_cast<std::size_t>(m.nbfaces), "bface_bound");
  r.expect_eof();
  m.validate();
  return m;
}

// ===========================================================================
// Ensemble checkpoints (OPVK)
// ===========================================================================

namespace {

constexpr std::uint64_t kMagicChk = 0x4b56504f31303030ULL;  // "OPVK1000" (LE)

/// Caps on OPVK counts: one checkpoint section holds at most one dat's
/// bytes (kMaxCount rows x kMaxDim x 8B stays under 2^36; a single section
/// cap of 2^33 still admits a billion-value dat while making a corrupt
/// length fail fast), and instance/section counts are bounded far above
/// any real sweep.
constexpr std::uint64_t kMaxChkInstances = 1ULL << 20;
constexpr std::uint64_t kMaxChkSections = 1ULL << 16;
constexpr std::uint64_t kMaxChkSectionBytes = 1ULL << 33;

struct ChkHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t ninstances;
  std::int64_t target_steps;
};

template <class T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_str(std::ofstream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_str(BinReader& r, std::uint64_t max_len, const char* what) {
  std::uint32_t n = 0;
  r.read(&n, sizeof n, what);
  OPV_REQUIRE(n <= max_len, "'" << r.path() << "': implausible " << what << " length " << n
                                << " at byte offset " << r.offset());
  std::string s(n, '\0');
  if (n > 0) r.read(s.data(), n, what);
  return s;
}

}  // namespace

void write_checkpoint(const EnsembleCheckpoint& c, const std::string& path) {
  OPV_REQUIRE(c.instances.size() <= kMaxChkInstances,
              "write_checkpoint: implausible instance count " << c.instances.size());
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  OPV_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  ChkHeader h{};
  h.magic = kMagicChk;
  h.version = EnsembleCheckpoint::kVersion;
  h.ninstances = static_cast<std::uint32_t>(c.instances.size());
  h.target_steps = c.target_steps;
  write_pod(os, h);
  for (const auto& inst : c.instances) {
    write_pod(os, static_cast<std::int32_t>(inst.id));
    write_pod(os, inst.steps_done);
    write_str(os, inst.error);
    OPV_REQUIRE(inst.state.sections.size() <= kMaxChkSections,
                "write_checkpoint: instance " << inst.id << " has implausible section count "
                                              << inst.state.sections.size());
    write_pod(os, static_cast<std::uint32_t>(inst.state.sections.size()));
    for (const auto& sec : inst.state.sections) {
      OPV_REQUIRE(sec.bytes.size() <= kMaxChkSectionBytes,
                  "write_checkpoint: section '" << sec.name << "' is implausibly large ("
                                                << sec.bytes.size() << " bytes)");
      write_str(os, sec.name);
      write_pod(os, static_cast<std::uint64_t>(sec.bytes.size()));
      os.write(reinterpret_cast<const char*>(sec.bytes.data()),
               static_cast<std::streamsize>(sec.bytes.size()));
      write_pod(os, crc32(sec.bytes.data(), sec.bytes.size()));
    }
  }
  os.flush();
  OPV_REQUIRE(os.good(), "write failed for '" << path << "'");
}

EnsembleCheckpoint read_checkpoint(const std::string& path) {
  BinReader r(path);
  ChkHeader h{};
  r.read(&h, sizeof h, "header");
  OPV_REQUIRE(h.magic == kMagicChk,
              "'" << path << "' is not an OPVK checkpoint file (bad magic at byte offset 0)");
  OPV_REQUIRE(h.version == EnsembleCheckpoint::kVersion,
              "'" << path << "': unsupported OPVK version " << h.version << " (have "
                  << EnsembleCheckpoint::kVersion << ")");
  OPV_REQUIRE(h.ninstances <= kMaxChkInstances,
              "'" << path << "': implausible instance count " << h.ninstances
                  << " at byte offset " << r.offset());

  EnsembleCheckpoint c;
  c.version = h.version;
  c.target_steps = h.target_steps;
  c.instances.reserve(h.ninstances);
  for (std::uint32_t i = 0; i < h.ninstances; ++i) {
    EnsembleCheckpoint::InstanceState inst;
    std::int32_t id = 0;
    r.read(&id, sizeof id, "instance id");
    inst.id = id;
    r.read(&inst.steps_done, sizeof inst.steps_done, "instance steps");
    OPV_REQUIRE(inst.steps_done >= 0, "'" << path << "': negative step count for instance " << id
                                          << " at byte offset " << r.offset());
    inst.error = read_str(r, kMaxNameLen, "instance error");
    std::uint32_t nsections = 0;
    r.read(&nsections, sizeof nsections, "section count");
    OPV_REQUIRE(nsections <= kMaxChkSections, "'" << path << "': implausible section count "
                                                  << nsections << " at byte offset " << r.offset());
    inst.state.sections.reserve(nsections);
    for (std::uint32_t s = 0; s < nsections; ++s) {
      Checkpoint::Section sec;
      sec.name = read_str(r, kMaxNameLen, "section name");
      std::uint64_t len = 0;
      r.read(&len, sizeof len, "section length");
      OPV_REQUIRE(len <= kMaxChkSectionBytes, "'" << path << "': implausible section '" << sec.name
                                                  << "' length " << len << " at byte offset "
                                                  << r.offset());
      sec.bytes.resize(static_cast<std::size_t>(len));
      const std::size_t payload_at = r.offset();
      if (len > 0) r.read(sec.bytes.data(), static_cast<std::size_t>(len), "section payload");
      std::uint32_t crc = 0;
      r.read(&crc, sizeof crc, "section crc");
      const std::uint32_t have = crc32(sec.bytes.data(), sec.bytes.size());
      OPV_REQUIRE(have == crc, "'" << path << "': CRC mismatch in section '" << sec.name
                                   << "' (payload at byte offset " << payload_at << ": stored "
                                   << crc << ", computed " << have << ") — checkpoint is corrupt");
      inst.state.sections.push_back(std::move(sec));
    }
    c.instances.push_back(std::move(inst));
  }
  r.expect_eof();
  return c;
}

// ===========================================================================
// Gmsh MSH (ASCII v2.2 / v4.1)
// ===========================================================================

namespace {

/// Whitespace tokenizer over an istream that tracks the line number of the
/// token it last produced, so every parse error carries "label:line".
class Tok {
 public:
  Tok(std::istream& in, std::string label) : in_(in), label_(std::move(label)) {}

  [[noreturn]] void fail(const std::string& msg) const {
    OPV_REQUIRE(false, label_ << ":" << tok_line_ << ": " << msg);
    std::abort();  // unreachable; OPV_REQUIRE(false) always throws
  }

  bool next(std::string& tok) {
    tok.clear();
    int ch;
    while ((ch = in_.get()) != EOF) {
      if (ch == '\n') ++line_;
      if (!std::isspace(static_cast<unsigned char>(ch))) break;
    }
    if (ch == EOF) {
      tok_line_ = line_;
      return false;
    }
    tok_line_ = line_;
    tok.push_back(static_cast<char>(ch));
    while ((ch = in_.get()) != EOF && !std::isspace(static_cast<unsigned char>(ch)))
      tok.push_back(static_cast<char>(ch));
    if (ch == '\n') ++line_;
    return true;
  }

  std::string require(const char* what) {
    std::string t;
    if (!next(t)) fail(std::string("unexpected end of file, expected ") + what);
    return t;
  }

  void expect(const char* literal) {
    const std::string t = require(literal);
    if (t != literal) fail("expected " + std::string(literal) + ", got '" + t + "'");
  }

  long long integer(const char* what, long long lo, long long hi) {
    const std::string t = require(what);
    long long v = 0;
    const auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (ec != std::errc{} || p != t.data() + t.size())
      fail("expected an integer for " + std::string(what) + ", got '" + t + "'");
    if (v < lo || v > hi) {
      std::ostringstream os;
      os << what << " " << v << " out of range [" << lo << "," << hi << "]";
      fail(os.str());
    }
    return v;
  }

  double real(const char* what) {
    const std::string t = require(what);
    double v = 0;
    const auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (ec != std::errc{} || p != t.data() + t.size())
      fail("expected a number for " + std::string(what) + ", got '" + t + "'");
    return v;
  }

  /// A double-quoted string (possibly containing spaces, single line).
  std::string quoted(const char* what) {
    int ch;
    while ((ch = in_.get()) != EOF) {
      if (ch == '\n') ++line_;
      if (!std::isspace(static_cast<unsigned char>(ch))) break;
    }
    tok_line_ = line_;
    if (ch != '"') fail("expected a quoted string for " + std::string(what));
    std::string out;
    while ((ch = in_.get()) != EOF && ch != '"') {
      if (ch == '\n') fail("unterminated quoted string for " + std::string(what));
      out.push_back(static_cast<char>(ch));
    }
    if (ch == EOF) fail("unterminated quoted string for " + std::string(what));
    return out;
  }

 private:
  std::istream& in_;
  std::string label_;
  int line_ = 1;      ///< current scan position
  int tok_line_ = 1;  ///< line the last token started on
};

/// Nodes-per-element of the supported gmsh element types.
int npe_of(long long type) {
  switch (type) {
    case 1: return 2;   // 2-node line
    case 2: return 3;   // 3-node triangle
    case 3: return 4;   // 4-node quadrangle
    case 4: return 4;   // 4-node tetrahedron
    case 15: return 1;  // 1-node point (parsed, discarded)
    default: return 0;
  }
}

GmshMesh::Elems* elems_of(GmshMesh& g, long long type) {
  switch (type) {
    case 1: return &g.lines;
    case 2: return &g.tris;
    case 3: return &g.quads;
    case 4: return &g.tets;
    default: return nullptr;  // points and anything unsupported
  }
}

using TagMap = std::unordered_map<long long, idx_t>;
using EntityPhys = std::map<std::pair<int, long long>, idx_t>;

void parse_physical_names(Tok& t, GmshMesh& g) {
  const long long n = t.integer("physical-name count", 0, kMaxCount);
  for (long long i = 0; i < n; ++i) {
    GmshPhysical p;
    p.dim = static_cast<int>(t.integer("physical dimension", 0, 3));
    p.tag = static_cast<idx_t>(t.integer("physical tag", 1, kMaxCount));
    p.name = t.quoted("physical name");
    for (const auto& q : g.physicals)
      if (q.dim == p.dim && q.tag == p.tag) t.fail("duplicate physical group");
    g.physicals.push_back(std::move(p));
  }
  t.expect("$EndPhysicalNames");
}

/// v4.1 $Entities: record the first physical tag of each model entity so
/// element blocks (which reference entities, not physicals) can be labeled.
void parse_entities(Tok& t, EntityPhys& ent) {
  const long long counts[4] = {t.integer("point count", 0, kMaxCount),
                               t.integer("curve count", 0, kMaxCount),
                               t.integer("surface count", 0, kMaxCount),
                               t.integer("volume count", 0, kMaxCount)};
  for (int dim = 0; dim < 4; ++dim) {
    for (long long i = 0; i < counts[dim]; ++i) {
      const long long tag = t.integer("entity tag", -kMaxCount, kMaxCount);
      // Points carry one xyz triple; higher-dim entities a bounding box.
      const int ncoord = dim == 0 ? 3 : 6;
      for (int k = 0; k < ncoord; ++k) t.real("entity bounding box");
      const long long nphys = t.integer("physical-tag count", 0, kMaxCount);
      for (long long k = 0; k < nphys; ++k) {
        const long long phys = t.integer("physical tag", -kMaxCount, kMaxCount);
        if (k == 0) ent[{dim, tag}] = static_cast<idx_t>(phys);
      }
      if (dim > 0) {
        const long long nb = t.integer("bounding-entity count", 0, kMaxCount);
        for (long long k = 0; k < nb; ++k) t.integer("bounding entity tag", -kMaxCount, kMaxCount);
      }
    }
  }
  t.expect("$EndEntities");
}

void add_node_tag(Tok& t, TagMap& tags, long long tag, idx_t index) {
  const auto [it, inserted] = tags.emplace(tag, index);
  (void)it;
  if (!inserted) {
    std::ostringstream os;
    os << "duplicate node tag " << tag;
    t.fail(os.str());
  }
}

void parse_nodes_v2(Tok& t, GmshMesh& g, TagMap& tags) {
  const long long n = t.integer("node count", 0, kMaxCount);
  g.node_xyz.reserve(static_cast<std::size_t>(n) * 3);
  for (long long i = 0; i < n; ++i) {
    const long long tag = t.integer("node tag", -kMaxCount * 4, kMaxCount * 4);
    add_node_tag(t, tags, tag, static_cast<idx_t>(i));
    g.node_xyz.push_back(t.real("node x"));
    g.node_xyz.push_back(t.real("node y"));
    g.node_xyz.push_back(t.real("node z"));
  }
  g.nnodes = static_cast<idx_t>(n);
  t.expect("$EndNodes");
}

void parse_nodes_v4(Tok& t, GmshMesh& g, TagMap& tags) {
  const long long nblocks = t.integer("node entity-block count", 0, kMaxCount);
  const long long total = t.integer("node count", 0, kMaxCount);
  t.integer("min node tag", 0, kMaxCount * 4);
  t.integer("max node tag", 0, kMaxCount * 4);
  g.node_xyz.reserve(static_cast<std::size_t>(total) * 3);
  long long seen = 0;
  std::vector<long long> block_tags;
  for (long long b = 0; b < nblocks; ++b) {
    t.integer("entity dimension", 0, 3);
    t.integer("entity tag", -kMaxCount, kMaxCount);
    const long long parametric = t.integer("parametric flag", 0, 1);
    if (parametric != 0) t.fail("parametric nodes are not supported");
    const long long nb = t.integer("block node count", 0, kMaxCount);
    if (seen + nb > total) t.fail("node blocks exceed the declared node count");
    block_tags.clear();
    for (long long i = 0; i < nb; ++i) {
      const long long tag = t.integer("node tag", -kMaxCount * 4, kMaxCount * 4);
      add_node_tag(t, tags, tag, static_cast<idx_t>(seen + i));
      block_tags.push_back(tag);
    }
    for (long long i = 0; i < nb; ++i) {
      g.node_xyz.push_back(t.real("node x"));
      g.node_xyz.push_back(t.real("node y"));
      g.node_xyz.push_back(t.real("node z"));
    }
    seen += nb;
  }
  if (seen != total) {
    std::ostringstream os;
    os << "node blocks hold " << seen << " nodes, header declared " << total;
    t.fail(os.str());
  }
  g.nnodes = static_cast<idx_t>(total);
  t.expect("$EndNodes");
}

idx_t resolve_node(Tok& t, const TagMap& tags, long long tag) {
  const auto it = tags.find(tag);
  if (it == tags.end()) {
    std::ostringstream os;
    os << "element references undeclared node tag " << tag;
    t.fail(os.str());
  }
  return it->second;
}

void append_elem(Tok& t, GmshMesh& g, const TagMap& tags, long long type, idx_t phys) {
  const int npe = npe_of(type);
  GmshMesh::Elems* e = elems_of(g, type);
  for (int k = 0; k < npe; ++k) {
    const long long tag = t.integer("element node tag", -kMaxCount * 4, kMaxCount * 4);
    if (e) e->nodes.push_back(resolve_node(t, tags, tag));
  }
  if (e) {
    e->phys.push_back(phys);
    ++e->count;
  }
}

void parse_elements_v2(Tok& t, GmshMesh& g, const TagMap& tags) {
  const long long n = t.integer("element count", 0, kMaxCount);
  for (long long i = 0; i < n; ++i) {
    t.integer("element tag", -kMaxCount * 4, kMaxCount * 4);
    const long long type = t.integer("element type", 1, 140);
    if (npe_of(type) == 0) {
      std::ostringstream os;
      os << "unsupported element type " << type
         << " (supported: 1=line, 2=tri, 3=quad, 4=tet, 15=point)";
      t.fail(os.str());
    }
    const long long ntags = t.integer("element tag count", 0, 64);
    idx_t phys = 0;
    for (long long k = 0; k < ntags; ++k) {
      const long long tag = t.integer("element tag value", -kMaxCount, kMaxCount);
      if (k == 0) phys = static_cast<idx_t>(tag);
    }
    append_elem(t, g, tags, type, phys);
  }
  t.expect("$EndElements");
}

void parse_elements_v4(Tok& t, GmshMesh& g, const TagMap& tags, const EntityPhys& ent) {
  const long long nblocks = t.integer("element entity-block count", 0, kMaxCount);
  const long long total = t.integer("element count", 0, kMaxCount);
  t.integer("min element tag", 0, kMaxCount * 4);
  t.integer("max element tag", 0, kMaxCount * 4);
  long long seen = 0;
  for (long long b = 0; b < nblocks; ++b) {
    const int dim = static_cast<int>(t.integer("entity dimension", 0, 3));
    const long long etag = t.integer("entity tag", -kMaxCount, kMaxCount);
    const long long type = t.integer("element type", 1, 140);
    if (npe_of(type) == 0) {
      std::ostringstream os;
      os << "unsupported element type " << type
         << " (supported: 1=line, 2=tri, 3=quad, 4=tet, 15=point)";
      t.fail(os.str());
    }
    const long long nb = t.integer("block element count", 0, kMaxCount);
    if (seen + nb > total) t.fail("element blocks exceed the declared element count");
    const auto it = ent.find({dim, etag});
    const idx_t phys = it != ent.end() ? it->second : 0;
    for (long long i = 0; i < nb; ++i) {
      t.integer("element tag", -kMaxCount * 4, kMaxCount * 4);
      append_elem(t, g, tags, type, phys);
    }
    seen += nb;
  }
  if (seen != total) {
    std::ostringstream os;
    os << "element blocks hold " << seen << " elements, header declared " << total;
    t.fail(os.str());
  }
  t.expect("$EndElements");
}

void skip_section(Tok& t, const std::string& opener) {
  const std::string closer = "$End" + opener.substr(1);
  std::string tok;
  while (t.next(tok)) {
    if (tok == closer) return;
    if (tok.size() > 1 && tok[0] == '$')
      t.fail("section " + opener + " not closed before '" + tok + "' (expected " + closer + ")");
  }
  t.fail("unexpected end of file inside section " + opener + " (expected " + closer + ")");
}

}  // namespace

bool operator==(const GmshMesh& a, const GmshMesh& b) {
  return a.nnodes == b.nnodes && a.node_xyz == b.node_xyz && a.physicals == b.physicals &&
         a.lines == b.lines && a.tris == b.tris && a.quads == b.quads && a.tets == b.tets;
}

std::string GmshMesh::physical_name(int dim, idx_t tag) const {
  for (const auto& p : physicals)
    if (p.dim == dim && p.tag == tag) return p.name;
  return "";
}

void GmshMesh::validate() const {
  OPV_REQUIRE(nnodes >= 0, "negative node count");
  OPV_REQUIRE(node_xyz.size() == static_cast<std::size_t>(nnodes) * 3, "node_xyz size mismatch");
  const auto check = [this](const Elems& e, int npe, const char* what) {
    OPV_REQUIRE(e.count >= 0, what << " count negative");
    OPV_REQUIRE(e.nodes.size() == static_cast<std::size_t>(e.count) * npe,
                what << " node array size mismatch");
    OPV_REQUIRE(e.phys.size() == static_cast<std::size_t>(e.count),
                what << " physical-tag array size mismatch");
    for (std::size_t i = 0; i < e.nodes.size(); ++i)
      OPV_REQUIRE(e.nodes[i] >= 0 && e.nodes[i] < nnodes,
                  what << " element " << i / npe << " references node " << e.nodes[i]
                       << " out of range [0," << nnodes << ")");
  };
  check(lines, 2, "line");
  check(tris, 3, "triangle");
  check(quads, 4, "quadrangle");
  check(tets, 4, "tetrahedron");
}

GmshMesh read_msh(std::istream& in, const std::string& label) {
  Tok t(in, label);
  GmshMesh g;
  g.name = label;

  std::string tok;
  if (!t.next(tok)) t.fail("empty file");
  if (tok != "$MeshFormat") t.fail("expected $MeshFormat as the first section, got '" + tok + "'");
  const std::string ver = t.require("MSH version");
  int version = 0;
  if (ver == "2.2") version = 2;
  else if (ver == "4.1") version = 4;
  else t.fail("unsupported MSH version '" + ver + "' (supported: ASCII 2.2 and 4.1)");
  const long long ftype = t.integer("file-type", 0, 1);
  if (ftype != 0) t.fail("binary MSH files are not supported (re-export as ASCII)");
  t.integer("data-size", 1, 64);
  t.expect("$EndMeshFormat");

  TagMap tags;
  EntityPhys ent;
  bool saw_nodes = false, saw_elems = false;
  while (t.next(tok)) {
    if (tok == "$PhysicalNames") {
      parse_physical_names(t, g);
    } else if (tok == "$Entities" && version == 4) {
      parse_entities(t, ent);
    } else if (tok == "$Nodes") {
      if (saw_nodes) t.fail("duplicate $Nodes section");
      if (version == 2) parse_nodes_v2(t, g, tags);
      else parse_nodes_v4(t, g, tags);
      saw_nodes = true;
    } else if (tok == "$Elements") {
      if (saw_elems) t.fail("duplicate $Elements section");
      if (!saw_nodes) t.fail("$Elements before $Nodes");
      if (version == 2) parse_elements_v2(t, g, tags);
      else parse_elements_v4(t, g, tags, ent);
      saw_elems = true;
    } else if (tok.size() > 1 && tok[0] == '$' && tok.compare(0, 4, "$End") != 0) {
      skip_section(t, tok);  // $Comments, $Periodic, $NodeData, ...
    } else {
      t.fail("unexpected token '" + tok + "' (expected a $Section header)");
    }
  }
  if (!saw_nodes) t.fail("missing $Nodes section");
  if (!saw_elems) t.fail("missing $Elements section");
  g.validate();
  return g;
}

GmshMesh read_msh(const std::string& path) {
  std::ifstream is(path);
  OPV_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  GmshMesh g = read_msh(is, path);
  g.name = std::filesystem::path(path).stem().string();
  return g;
}

namespace {

void write_physical_names(std::FILE* f, const GmshMesh& g) {
  if (g.physicals.empty()) return;
  std::fprintf(f, "$PhysicalNames\n%zu\n", g.physicals.size());
  for (const auto& p : g.physicals)
    std::fprintf(f, "%d %d \"%s\"\n", p.dim, p.tag, p.name.c_str());
  std::fprintf(f, "$EndPhysicalNames\n");
}

struct TypedElems {
  int type;
  int dim;
  const GmshMesh::Elems* e;
};

std::vector<TypedElems> typed_elems(const GmshMesh& g) {
  return {{1, 1, &g.lines}, {2, 2, &g.tris}, {3, 2, &g.quads}, {4, 3, &g.tets}};
}

void write_msh_v2(std::FILE* f, const GmshMesh& g) {
  std::fprintf(f, "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n");
  write_physical_names(f, g);
  std::fprintf(f, "$Nodes\n%d\n", g.nnodes);
  for (idx_t n = 0; n < g.nnodes; ++n)
    std::fprintf(f, "%d %.17g %.17g %.17g\n", n + 1, g.node_xyz[3 * static_cast<std::size_t>(n)],
                 g.node_xyz[3 * static_cast<std::size_t>(n) + 1],
                 g.node_xyz[3 * static_cast<std::size_t>(n) + 2]);
  std::fprintf(f, "$EndNodes\n");

  idx_t total = g.lines.count + g.tris.count + g.quads.count + g.tets.count;
  std::fprintf(f, "$Elements\n%d\n", total);
  idx_t id = 1;
  for (const auto& [type, dim, e] : typed_elems(g)) {
    const int npe = npe_of(type);
    for (idx_t i = 0; i < e->count; ++i) {
      // Two tags, the gmsh v2 convention: physical id then elementary id.
      std::fprintf(f, "%d %d 2 %d %d", id++, type, e->phys[i], e->phys[i]);
      for (int k = 0; k < npe; ++k)
        std::fprintf(f, " %d", e->nodes[static_cast<std::size_t>(i) * npe + k] + 1);
      std::fprintf(f, "\n");
    }
  }
  std::fprintf(f, "$EndElements\n");
}

void write_msh_v4(std::FILE* f, const GmshMesh& g) {
  std::fprintf(f, "$MeshFormat\n4.1 0 8\n$EndMeshFormat\n");
  write_physical_names(f, g);

  // One model entity per (dim, physical tag) in first-appearance order;
  // element blocks reference them. Nodes hang off the first entity (a
  // dedicated point entity when there are no elements at all).
  std::map<std::pair<int, idx_t>, idx_t> entity_tag;  // (dim, phys) -> tag
  std::vector<std::pair<int, idx_t>> order;           // insertion order
  int ndim[4] = {0, 0, 0, 0};
  for (const auto& [type, dim, e] : typed_elems(g))
    for (idx_t i = 0; i < e->count; ++i) {
      const auto key = std::make_pair(dim, e->phys[i]);
      if (entity_tag.emplace(key, ndim[dim] + 1).second) {
        ++ndim[dim];
        order.push_back(key);
      }
    }
  const bool dummy_point = order.empty();
  std::fprintf(f, "$Entities\n%d %d %d %d\n", dummy_point ? 1 : 0, ndim[1], ndim[2], ndim[3]);
  if (dummy_point) std::fprintf(f, "1 0 0 0 0\n");
  for (int dim = 1; dim <= 3; ++dim)
    for (const auto& key : order) {
      if (key.first != dim) continue;
      std::fprintf(f, "%d 0 0 0 0 0 0", entity_tag.at(key));
      if (key.second != 0) std::fprintf(f, " 1 %d", key.second);
      else std::fprintf(f, " 0");
      std::fprintf(f, " 0\n");
    }
  std::fprintf(f, "$EndEntities\n");

  std::fprintf(f, "$Nodes\n");
  if (g.nnodes == 0) {
    std::fprintf(f, "0 0 1 0\n");
  } else {
    const auto& first = dummy_point ? std::make_pair(0, idx_t{0}) : order.front();
    const idx_t ftag = dummy_point ? 1 : entity_tag.at(first);
    std::fprintf(f, "1 %d 1 %d\n%d %d 0 %d\n", g.nnodes, g.nnodes, first.first, ftag, g.nnodes);
    for (idx_t n = 0; n < g.nnodes; ++n) std::fprintf(f, "%d\n", n + 1);
    for (idx_t n = 0; n < g.nnodes; ++n)
      std::fprintf(f, "%.17g %.17g %.17g\n", g.node_xyz[3 * static_cast<std::size_t>(n)],
                   g.node_xyz[3 * static_cast<std::size_t>(n) + 1],
                   g.node_xyz[3 * static_cast<std::size_t>(n) + 2]);
  }
  std::fprintf(f, "$EndNodes\n");

  // Element blocks: per type, grouped by physical tag in first-appearance
  // order (v4 has no per-element tags, so mixed-physical runs regroup).
  idx_t total = g.lines.count + g.tris.count + g.quads.count + g.tets.count;
  idx_t nblocks = 0;
  for (const auto& [type, dim, e] : typed_elems(g)) {
    std::vector<idx_t> seen;
    for (idx_t i = 0; i < e->count; ++i)
      if (std::find(seen.begin(), seen.end(), e->phys[i]) == seen.end()) {
        seen.push_back(e->phys[i]);
        ++nblocks;
      }
  }
  std::fprintf(f, "$Elements\n%d %d 1 %d\n", nblocks, total, total > 0 ? total : 1);
  idx_t id = 1;
  for (const auto& [type, dim, e] : typed_elems(g)) {
    const int npe = npe_of(type);
    std::vector<idx_t> seen;
    for (idx_t i = 0; i < e->count; ++i) {
      if (std::find(seen.begin(), seen.end(), e->phys[i]) != seen.end()) continue;
      const idx_t phys = e->phys[i];
      seen.push_back(phys);
      idx_t nb = 0;
      for (idx_t j = 0; j < e->count; ++j)
        if (e->phys[j] == phys) ++nb;
      std::fprintf(f, "%d %d %d %d\n", dim, entity_tag.at({dim, phys}), type, nb);
      for (idx_t j = 0; j < e->count; ++j) {
        if (e->phys[j] != phys) continue;
        std::fprintf(f, "%d", id++);
        for (int k = 0; k < npe; ++k)
          std::fprintf(f, " %d", e->nodes[static_cast<std::size_t>(j) * npe + k] + 1);
        std::fprintf(f, "\n");
      }
    }
  }
  std::fprintf(f, "$EndElements\n");
}

}  // namespace

void write_msh(const GmshMesh& g, const std::string& path, int version) {
  OPV_REQUIRE(version == 2 || version == 4, "write_msh: version must be 2 (v2.2) or 4 (v4.1)");
  g.validate();
  std::FILE* f = std::fopen(path.c_str(), "w");
  OPV_REQUIRE(f != nullptr, "cannot open '" << path << "' for writing");
  if (version == 2) write_msh_v2(f, g);
  else write_msh_v4(f, g);
  const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  OPV_REQUIRE(ok, "write failed for '" << path << "'");
}

// ===========================================================================
// Conversions
// ===========================================================================

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Bound id of a boundary element from its physical group.
idx_t bound_of(const GmshMesh& g, int dim, idx_t phys, const MshOptions& opt) {
  if (phys != 0) {
    const std::string name = lower(g.physical_name(dim, phys));
    const auto it = opt.bound_ids.find(name);
    if (it != opt.bound_ids.end()) return it->second;
  }
  return opt.default_bound;
}

/// Group boundary elements (bedge/bface ids) into named sets by physical
/// group, ordered by tag; untagged elements belong to no named set.
void collect_bsets(const GmshMesh& g, int dim, const aligned_vector<idx_t>& phys,
                   const aligned_vector<idx_t>& belem_of_elem, std::vector<BoundarySet>* bsets) {
  if (!bsets) return;
  std::map<idx_t, BoundarySet> by_tag;
  for (std::size_t i = 0; i < phys.size(); ++i) {
    if (phys[i] == 0) continue;
    auto& set = by_tag[phys[i]];
    if (set.name.empty()) {
      set.name = g.physical_name(dim, phys[i]);
      if (set.name.empty()) set.name = "physical_" + std::to_string(phys[i]);
    }
    set.elems.push_back(belem_of_elem[i]);
  }
  for (auto& [tag, set] : by_tag) bsets->push_back(std::move(set));
}

}  // namespace

UnstructuredMesh to_unstructured(const GmshMesh& g, const MshOptions& opt,
                                 std::vector<BoundarySet>* bsets) {
  g.validate();
  OPV_REQUIRE(g.tets.count == 0,
              "to_unstructured: mesh has " << g.tets.count << " tetrahedra — use to_tet");
  const bool tri = g.tris.count > 0;
  const bool quad = g.quads.count > 0;
  OPV_REQUIRE(tri || quad, "to_unstructured: no 2D cells (no triangles or quadrangles)");
  OPV_REQUIRE(!(tri && quad), "to_unstructured: mixed tri/quad meshes are not supported ("
                                  << g.tris.count << " tris, " << g.quads.count << " quads)");
  const GmshMesh::Elems& cells = tri ? g.tris : g.quads;
  const int npc = tri ? 3 : 4;

  UnstructuredMesh m;
  m.name = g.name;
  m.nodes_per_cell = npc;
  m.nnodes = g.nnodes;
  m.ncells = cells.count;
  m.node_xy.resize(static_cast<std::size_t>(m.nnodes) * 2);
  for (idx_t n = 0; n < m.nnodes; ++n) {
    m.node_xy[2 * static_cast<std::size_t>(n)] = g.node_xyz[3 * static_cast<std::size_t>(n)];
    m.node_xy[2 * static_cast<std::size_t>(n) + 1] =
        g.node_xyz[3 * static_cast<std::size_t>(n) + 1];
  }
  m.cell_nodes = cells.nodes;

  // Derive edges from the cell->node map in discovery order: an edge is
  // interior the moment its second cell appears, boundary if only one cell
  // ever contributes it. Deterministic in cell_nodes alone.
  struct Slot {
    idx_t cell = -1;
    idx_t n0 = -1, n1 = -1;
    int seen = 0;
    idx_t bedge = -1;
  };
  const auto key_of = [](idx_t a, idx_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };
  std::unordered_map<std::uint64_t, Slot> reg;
  reg.reserve(static_cast<std::size_t>(m.ncells) * npc + 16);
  for (idx_t c = 0; c < m.ncells; ++c) {
    const idx_t* cn = &m.cell_nodes[static_cast<std::size_t>(c) * npc];
    for (int k = 0; k < npc; ++k) {
      const idx_t a = cn[k], b = cn[(k + 1) % npc];
      OPV_REQUIRE(a != b, "cell " << c << " has a degenerate edge (repeated node " << a << ")");
      Slot& s = reg[key_of(a, b)];
      if (s.seen == 0) {
        s.cell = c;
        s.n0 = a;
        s.n1 = b;
        s.seen = 1;
      } else {
        OPV_REQUIRE(s.seen == 1, "non-manifold mesh: edge (" << a << "," << b
                                                             << ") shared by 3+ cells");
        s.seen = 2;
        m.edge_nodes.insert(m.edge_nodes.end(), {s.n0, s.n1});
        m.edge_cells.insert(m.edge_cells.end(), {s.cell, c});
        ++m.nedges;
      }
    }
  }
  for (idx_t c = 0; c < m.ncells; ++c) {
    const idx_t* cn = &m.cell_nodes[static_cast<std::size_t>(c) * npc];
    for (int k = 0; k < npc; ++k) {
      Slot& s = reg.at(key_of(cn[k], cn[(k + 1) % npc]));
      if (s.seen != 1 || s.bedge >= 0) continue;
      s.bedge = m.nbedges;
      m.bedge_nodes.insert(m.bedge_nodes.end(), {s.n0, s.n1});
      m.bedge_cell.push_back(s.cell);
      m.bedge_bound.push_back(opt.default_bound);
      ++m.nbedges;
    }
  }

  // Line elements label the derived boundary edges with their physical
  // group; a line matching an interior edge (or nothing) is a modeling
  // error worth failing loudly on.
  aligned_vector<idx_t> bedge_of_line(static_cast<std::size_t>(g.lines.count), -1);
  for (idx_t l = 0; l < g.lines.count; ++l) {
    const idx_t a = g.lines.nodes[2 * static_cast<std::size_t>(l)];
    const idx_t b = g.lines.nodes[2 * static_cast<std::size_t>(l) + 1];
    const auto it = reg.find(key_of(a, b));
    OPV_REQUIRE(it != reg.end() && it->second.seen == 1,
                "boundary line element (" << a << "," << b << ") "
                    << (it == reg.end() ? "matches no cell edge" : "matches an interior edge"));
    m.bedge_bound[it->second.bedge] = bound_of(g, 1, g.lines.phys[l], opt);
    bedge_of_line[l] = it->second.bedge;
  }
  collect_bsets(g, 1, g.lines.phys, bedge_of_line, bsets);

  orient_edges_fv(m);
  m.validate();
  return m;
}

TetMesh to_tet(const GmshMesh& g, const MshOptions& opt, std::vector<BoundarySet>* bsets) {
  g.validate();
  OPV_REQUIRE(g.tets.count > 0, "to_tet: no tetrahedra in the mesh");
  OPV_REQUIRE(g.quads.count == 0, "to_tet: quadrangle elements are not supported in 3D meshes");

  TetMesh m;
  m.name = g.name;
  m.nnodes = g.nnodes;
  m.ncells = g.tets.count;
  m.node_xyz = g.node_xyz;
  m.cell_nodes = g.tets.nodes;
  for (idx_t c = 0; c < m.ncells; ++c)
    OPV_REQUIRE(std::abs(m.cell_volume(c)) > 0.0,
                "tetrahedron " << c << " is degenerate (zero volume)");
  build_tet_faces(m);
  for (auto& b : m.bface_bound) b = opt.default_bound;

  // Index the derived boundary faces by sorted node triple, then label them
  // from the boundary tri elements' physical groups.
  const auto key_of = [](idx_t a, idx_t b, idx_t c) {
    if (a > b) std::swap(a, b);
    if (b > c) std::swap(b, c);
    if (a > b) std::swap(a, b);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : {std::uint64_t(a), std::uint64_t(b), std::uint64_t(c)}) {
      h ^= v + 1;
      h *= 0x100000001b3ULL;
    }
    return h;
  };
  std::unordered_map<std::uint64_t, idx_t> bface_by_tri;
  bface_by_tri.reserve(static_cast<std::size_t>(m.nbfaces) * 2 + 16);
  for (idx_t b = 0; b < m.nbfaces; ++b) {
    const idx_t* n = &m.bface_nodes[static_cast<std::size_t>(b) * 3];
    bface_by_tri.emplace(key_of(n[0], n[1], n[2]), b);
  }
  std::unordered_map<std::uint64_t, int> interior;
  interior.reserve(static_cast<std::size_t>(m.nfaces) * 2 + 16);
  for (idx_t f = 0; f < m.nfaces; ++f) {
    const idx_t* n = &m.face_nodes[static_cast<std::size_t>(f) * 3];
    interior.emplace(key_of(n[0], n[1], n[2]), 1);
  }
  aligned_vector<idx_t> bface_of_tri(static_cast<std::size_t>(g.tris.count), -1);
  for (idx_t e = 0; e < g.tris.count; ++e) {
    const idx_t* n = &g.tris.nodes[static_cast<std::size_t>(e) * 3];
    const auto it = bface_by_tri.find(key_of(n[0], n[1], n[2]));
    OPV_REQUIRE(it != bface_by_tri.end(),
                "boundary triangle element (" << n[0] << "," << n[1] << "," << n[2] << ") "
                    << (interior.count(key_of(n[0], n[1], n[2]))
                            ? "matches an interior face"
                            : "matches no cell face"));
    m.bface_bound[it->second] = bound_of(g, 2, g.tris.phys[e], opt);
    bface_of_tri[e] = it->second;
  }
  collect_bsets(g, 2, g.tris.phys, bface_of_tri, bsets);

  m.validate();
  return m;
}

namespace {

/// Physical groups for the export path: the domain group plus one boundary
/// group per bound id present, named for the FV convention.
void export_physicals(GmshMesh& g, int bdim, const aligned_vector<idx_t>& bounds, int cell_dim,
                      const char* cell_name) {
  bool has[3] = {false, false, false};
  for (idx_t b : bounds)
    if (b >= 1 && b <= 2) has[b] = true;
  for (idx_t id = 1; id <= 2; ++id)
    if (has[id])
      g.physicals.push_back({bdim, id, id == kBoundWall ? "wall" : "farfield"});
  g.physicals.push_back({cell_dim, 1, cell_name});
}

}  // namespace

GmshMesh from_unstructured(const UnstructuredMesh& m) {
  m.validate();
  OPV_REQUIRE(!m.periodic, "from_unstructured: periodic meshes have no MSH representation "
                           "(wrap-around edges would dangle)");
  GmshMesh g;
  g.name = m.name;
  g.nnodes = m.nnodes;
  g.node_xyz.resize(static_cast<std::size_t>(m.nnodes) * 3);
  for (idx_t n = 0; n < m.nnodes; ++n) {
    g.node_xyz[3 * static_cast<std::size_t>(n)] = m.node_xy[2 * static_cast<std::size_t>(n)];
    g.node_xyz[3 * static_cast<std::size_t>(n) + 1] =
        m.node_xy[2 * static_cast<std::size_t>(n) + 1];
    g.node_xyz[3 * static_cast<std::size_t>(n) + 2] = 0.0;
  }
  GmshMesh::Elems& cells = m.nodes_per_cell == 3 ? g.tris : g.quads;
  cells.count = m.ncells;
  cells.nodes = m.cell_nodes;
  cells.phys.assign(static_cast<std::size_t>(m.ncells), 1);
  g.lines.count = m.nbedges;
  g.lines.nodes = m.bedge_nodes;
  g.lines.phys = m.bedge_bound;
  export_physicals(g, 1, m.bedge_bound, 2, "domain");
  return g;
}

GmshMesh from_tet(const TetMesh& m) {
  m.validate();
  GmshMesh g;
  g.name = m.name;
  g.nnodes = m.nnodes;
  g.node_xyz = m.node_xyz;
  g.tets.count = m.ncells;
  g.tets.nodes = m.cell_nodes;
  g.tets.phys.assign(static_cast<std::size_t>(m.ncells), 1);
  g.tris.count = m.nbfaces;
  g.tris.nodes = m.bface_nodes;
  g.tris.phys = m.bface_bound;
  export_physicals(g, 2, m.bface_bound, 3, "domain");
  return g;
}

}  // namespace opv::mesh
