// Synthetic mesh generators.
//
// The paper benchmarks on two meshes we cannot redistribute: the OP2 Airfoil
// NACA grid (720k / 2.8M cells) and a real NE-Pacific coastal triangulation
// for Volna (2.4M cells). These generators produce topologically equivalent
// synthetic meshes (same set arities, same access patterns, same size class):
//   * make_airfoil_omesh: a body-fitted O-mesh around a Joukowski airfoil,
//     stored fully unstructured (quad cells, interior + boundary edges).
//   * make_tri_periodic: a periodic triangulated box used as the Volna
//     domain (all edges interior; every cell has exactly 3 edges).
//   * make_quad_box / make_tri_box: plain box meshes with boundaries, used
//     by unit and property tests (known Euler characteristic).
#pragma once

#include "mesh/mesh.hpp"
#include "mesh/tetmesh.hpp"

namespace opv::mesh {

/// Body-fitted O-mesh around a Joukowski airfoil: ni cells around the
/// profile (periodic), nj cell rings from the wall (bound=kBoundWall) to the
/// far field (bound=kBoundFarfield). ncells = ni*nj, nnodes = ni*(nj+1),
/// nedges = ni*nj + ni*(nj-1), nbedges = 2*ni. Requires ni >= 3, nj >= 2.
UnstructuredMesh make_airfoil_omesh(idx_t ni, idx_t nj);

/// Structured quad box mesh on [0,lx]x[0,ly] stored unstructured.
/// Bottom boundary is kBoundWall, all others kBoundFarfield.
UnstructuredMesh make_quad_box(idx_t ni, idx_t nj, double lx = 1.0, double ly = 1.0);

/// Triangulated box mesh (each square split into two triangles).
UnstructuredMesh make_tri_box(idx_t ni, idx_t nj, double lx = 1.0, double ly = 1.0);

/// Fully periodic triangulated box (torus): no boundary set, every edge
/// interior, every cell has exactly three edges. Requires ni, nj >= 3.
UnstructuredMesh make_tri_periodic(idx_t ni, idx_t nj, double lx = 1.0, double ly = 1.0);

/// Tetrahedral box mesh on [0,lx]x[0,ly]x[0,lz]: each of the ni*nj*nk
/// hexahedra is split into six tets sharing its main diagonal (the
/// Kuhn/Freudenthal triangulation — translation-invariant, so the induced
/// face triangulations match across neighboring hexes). ncells = 6*ni*nj*nk,
/// nnodes = (ni+1)(nj+1)(nk+1); faces derive via build_tet_faces. The bottom
/// boundary (z = 0) is kBoundWall, all other boundaries kBoundFarfield.
TetMesh make_tet_box(idx_t ni, idx_t nj, idx_t nk, double lx = 1.0, double ly = 1.0,
                     double lz = 1.0);

/// Jitter node coordinates by +-amplitude (absolute units), deterministic in
/// seed. Topology is unchanged; used to de-regularize synthetic meshes.
void perturb_nodes(UnstructuredMesh& m, double amplitude, std::uint64_t seed = 42);

/// Randomly permute interior-edge numbering (worst-case loop locality).
/// Returns the permutation p with new_edge[e] = old_edge[p[e]].
aligned_vector<idx_t> shuffle_edges(UnstructuredMesh& m, std::uint64_t seed = 42);

/// Renumber interior edges so consecutive edges touch nearby cells
/// (lexicographic by sorted adjacent-cell pair — the mesh-level exemplar of
/// the context pass's from-set ordering, core/reorder.hpp). Returns the
/// permutation applied (p[new] = old, as shuffle_edges).
aligned_vector<idx_t> sort_edges_by_cell(UnstructuredMesh& m);

/// Reverse Cuthill-McKee renumbering of cells (BFS over the cell-edge-cell
/// graph, neighbors visited in degree order — implemented on the shared
/// context-level pass, core/reorder.hpp). Updates cell_nodes, edge_cells
/// and bedge_cell in place; returns perm with new_id = perm[old_id].
aligned_vector<idx_t> renumber_cells_rcm(UnstructuredMesh& m);

/// Enforce the OP2 Airfoil finite-volume edge convention: with
/// (dx,dy) = x(n0)-x(n1), the normal (dy,-dx) points from the edge's first
/// cell toward its second cell, and out of the domain for boundary edges.
/// Swaps edge node pairs where needed (min-image safe). The res_calc /
/// bres_calc flux signs depend on this.
void orient_edges_fv(UnstructuredMesh& m);

}  // namespace opv::mesh
