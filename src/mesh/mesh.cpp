#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace opv::mesh {

std::uint64_t UnstructuredMesh::footprint_bytes() const {
  auto bytes = [](const auto& v) {
    return static_cast<std::uint64_t>(v.size()) * sizeof(v[0]);
  };
  return bytes(node_xy) + bytes(cell_nodes) + bytes(edge_nodes) + bytes(edge_cells) +
         bytes(bedge_nodes) + bytes(bedge_cell) + bytes(bedge_bound);
}

double UnstructuredMesh::wrap_dx(double dx) const {
  if (!periodic || period_x <= 0.0) return dx;
  if (dx > 0.5 * period_x) return dx - period_x;
  if (dx < -0.5 * period_x) return dx + period_x;
  return dx;
}

double UnstructuredMesh::wrap_dy(double dy) const {
  if (!periodic || period_y <= 0.0) return dy;
  if (dy > 0.5 * period_y) return dy - period_y;
  if (dy < -0.5 * period_y) return dy + period_y;
  return dy;
}

namespace {

void check_range(const aligned_vector<idx_t>& map, idx_t limit, const char* what) {
  for (std::size_t i = 0; i < map.size(); ++i) {
    OPV_REQUIRE(map[i] >= 0 && map[i] < limit,
                what << " entry " << i << " = " << map[i] << " out of range [0," << limit << ")");
  }
}

bool cell_has_node(const UnstructuredMesh& m, idx_t cell, idx_t node) {
  const int k = m.nodes_per_cell;
  for (int j = 0; j < k; ++j)
    if (m.cell_nodes[static_cast<std::size_t>(cell) * k + j] == node) return true;
  return false;
}

}  // namespace

void UnstructuredMesh::validate() const {
  OPV_REQUIRE(nodes_per_cell == 3 || nodes_per_cell == 4,
              "nodes_per_cell must be 3 or 4, got " << nodes_per_cell);
  OPV_REQUIRE(node_xy.size() == static_cast<std::size_t>(nnodes) * 2, "node_xy size mismatch");
  OPV_REQUIRE(cell_nodes.size() == static_cast<std::size_t>(ncells) * nodes_per_cell,
              "cell_nodes size mismatch");
  OPV_REQUIRE(edge_nodes.size() == static_cast<std::size_t>(nedges) * 2,
              "edge_nodes size mismatch");
  OPV_REQUIRE(edge_cells.size() == static_cast<std::size_t>(nedges) * 2,
              "edge_cells size mismatch");
  OPV_REQUIRE(bedge_nodes.size() == static_cast<std::size_t>(nbedges) * 2,
              "bedge_nodes size mismatch");
  OPV_REQUIRE(bedge_cell.size() == static_cast<std::size_t>(nbedges), "bedge_cell size mismatch");
  OPV_REQUIRE(bedge_bound.size() == static_cast<std::size_t>(nbedges),
              "bedge_bound size mismatch");

  check_range(cell_nodes, nnodes, "cell_nodes");
  check_range(edge_nodes, nnodes, "edge_nodes");
  check_range(edge_cells, ncells, "edge_cells");
  check_range(bedge_nodes, nnodes, "bedge_nodes");
  check_range(bedge_cell, ncells, "bedge_cell");

  for (idx_t e = 0; e < nedges; ++e) {
    const idx_t n0 = edge_nodes[2 * e], n1 = edge_nodes[2 * e + 1];
    const idx_t c0 = edge_cells[2 * e], c1 = edge_cells[2 * e + 1];
    OPV_REQUIRE(n0 != n1, "edge " << e << " has repeated node " << n0);
    OPV_REQUIRE(c0 != c1, "edge " << e << " has repeated cell " << c0);
    OPV_REQUIRE(cell_has_node(*this, c0, n0) && cell_has_node(*this, c0, n1),
                "edge " << e << " nodes not part of left cell " << c0);
    OPV_REQUIRE(cell_has_node(*this, c1, n0) && cell_has_node(*this, c1, n1),
                "edge " << e << " nodes not part of right cell " << c1);
  }
  for (idx_t e = 0; e < nbedges; ++e) {
    const idx_t n0 = bedge_nodes[2 * e], n1 = bedge_nodes[2 * e + 1];
    const idx_t c = bedge_cell[e];
    OPV_REQUIRE(n0 != n1, "bedge " << e << " has repeated node " << n0);
    OPV_REQUIRE(cell_has_node(*this, c, n0) && cell_has_node(*this, c, n1),
                "bedge " << e << " nodes not part of cell " << c);
    OPV_REQUIRE(bedge_bound[e] == kBoundFarfield || bedge_bound[e] == kBoundWall,
                "bedge " << e << " has unknown bound id " << bedge_bound[e]);
  }
}

MeshStats compute_stats(const UnstructuredMesh& m) {
  MeshStats s;
  aligned_vector<idx_t> deg(static_cast<std::size_t>(m.ncells), 0);
  for (idx_t e = 0; e < m.nedges; ++e) {
    ++deg[m.edge_cells[2 * e]];
    ++deg[m.edge_cells[2 * e + 1]];
    s.edge_bandwidth = std::max<std::int64_t>(
        s.edge_bandwidth, std::abs(static_cast<std::int64_t>(m.edge_cells[2 * e]) -
                                   static_cast<std::int64_t>(m.edge_cells[2 * e + 1])));
  }
  for (idx_t c = 0; c < m.ncells; ++c) {
    s.max_edges_per_cell = std::max<int>(s.max_edges_per_cell, deg[c]);
    if (deg[c] == 0) ++s.isolated_cells;
  }
  s.avg_edges_per_cell =
      m.ncells > 0 ? 2.0 * static_cast<double>(m.nedges) / static_cast<double>(m.ncells) : 0.0;
  return s;
}

CellEdges build_cell_edges(const UnstructuredMesh& m) {
  CellEdges ce;
  ce.offset.assign(static_cast<std::size_t>(m.ncells) + 1, 0);
  for (idx_t e = 0; e < m.nedges; ++e) {
    ++ce.offset[m.edge_cells[2 * e] + 1];
    ++ce.offset[m.edge_cells[2 * e + 1] + 1];
  }
  for (idx_t c = 0; c < m.ncells; ++c) ce.offset[c + 1] += ce.offset[c];
  ce.edges.assign(ce.offset[m.ncells], 0);
  aligned_vector<idx_t> cursor(ce.offset.begin(), ce.offset.end() - 1);
  for (idx_t e = 0; e < m.nedges; ++e) {
    ce.edges[cursor[m.edge_cells[2 * e]]++] = e;
    ce.edges[cursor[m.edge_cells[2 * e + 1]]++] = e;
  }
  return ce;
}

aligned_vector<idx_t> build_cell_edges_flat3(const UnstructuredMesh& m) {
  OPV_REQUIRE(m.nodes_per_cell == 3, "flat3 cell->edge map requires a triangle mesh");
  const CellEdges ce = build_cell_edges(m);
  aligned_vector<idx_t> flat(static_cast<std::size_t>(m.ncells) * 3);
  for (idx_t c = 0; c < m.ncells; ++c) {
    OPV_REQUIRE(ce.offset[c + 1] - ce.offset[c] == 3,
                "cell " << c << " has " << (ce.offset[c + 1] - ce.offset[c])
                        << " interior edges, expected 3 (mesh must be closed/periodic)");
    for (int k = 0; k < 3; ++k) flat[static_cast<std::size_t>(c) * 3 + k] = ce.edges[ce.offset[c] + k];
  }
  return flat;
}

}  // namespace opv::mesh
