#include "mesh/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/reorder.hpp"

namespace opv::mesh {

namespace {

/// Append one interior edge.
void push_edge(UnstructuredMesh& m, idx_t n0, idx_t n1, idx_t cl, idx_t cr) {
  m.edge_nodes.push_back(n0);
  m.edge_nodes.push_back(n1);
  m.edge_cells.push_back(cl);
  m.edge_cells.push_back(cr);
  ++m.nedges;
}

/// Append one boundary edge.
void push_bedge(UnstructuredMesh& m, idx_t n0, idx_t n1, idx_t c, idx_t bound) {
  m.bedge_nodes.push_back(n0);
  m.bedge_nodes.push_back(n1);
  m.bedge_cell.push_back(c);
  m.bedge_bound.push_back(bound);
  ++m.nbedges;
}

}  // namespace

UnstructuredMesh make_airfoil_omesh(idx_t ni, idx_t nj) {
  OPV_REQUIRE(ni >= 3 && nj >= 2, "O-mesh requires ni >= 3, nj >= 2 (got " << ni << "x" << nj
                                                                           << ")");
  UnstructuredMesh m;
  m.name = "airfoil-omesh-" + std::to_string(ni) + "x" + std::to_string(nj);
  m.nodes_per_cell = 4;
  m.nnodes = ni * (nj + 1);
  m.ncells = ni * nj;

  // Joukowski transform of concentric circles: zeta = s + rc*f*exp(i*theta),
  // z = zeta + 1/zeta. s offsets the circle so its image is a cambered
  // airfoil; f grows geometrically from 1 (surface) to kFar (far field).
  // Both singular points of the map (zeta = +-1, where dz/dzeta = 0) must
  // lie strictly INSIDE the surface circle, otherwise the trailing edge is
  // a cusp and the first cell ring degenerates — hence the 1.05 margin
  // (a blunt Joukowski-like profile with smooth body-fitted cells).
  constexpr double kSx = -0.08, kSy = 0.08;
  constexpr double kFar = 40.0;
  const double rc =
      1.05 * std::max(std::hypot(1.0 - kSx, kSy), std::hypot(-1.0 - kSx, kSy));

  m.node_xy.resize(static_cast<std::size_t>(m.nnodes) * 2);
  for (idx_t j = 0; j <= nj; ++j) {
    const double f = std::exp(std::log(kFar) * static_cast<double>(j) / static_cast<double>(nj));
    for (idx_t i = 0; i < ni; ++i) {
      const double th = 2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(ni);
      const double zx = kSx + rc * f * std::cos(th);
      const double zy = kSy + rc * f * std::sin(th);
      const double d = zx * zx + zy * zy;
      const std::size_t n = static_cast<std::size_t>(j) * ni + i;
      m.node_xy[2 * n] = zx + zx / d;
      m.node_xy[2 * n + 1] = zy - zy / d;
    }
  }

  auto node = [ni](idx_t i, idx_t j) { return j * ni + ((i % ni + ni) % ni); };
  auto cell = [ni](idx_t i, idx_t j) { return j * ni + ((i % ni + ni) % ni); };

  m.cell_nodes.resize(static_cast<std::size_t>(m.ncells) * 4);
  for (idx_t j = 0; j < nj; ++j) {
    for (idx_t i = 0; i < ni; ++i) {
      const std::size_t c = static_cast<std::size_t>(cell(i, j));
      m.cell_nodes[4 * c + 0] = node(i, j);
      m.cell_nodes[4 * c + 1] = node(i + 1, j);
      m.cell_nodes[4 * c + 2] = node(i + 1, j + 1);
      m.cell_nodes[4 * c + 3] = node(i, j + 1);
    }
  }

  m.edge_nodes.reserve(static_cast<std::size_t>(ni) * (2 * nj - 1) * 2);
  m.edge_cells.reserve(static_cast<std::size_t>(ni) * (2 * nj - 1) * 2);
  // Radial edges (between circumferential neighbors), all interior.
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i)
      push_edge(m, node(i, j), node(i, j + 1), cell(i - 1, j), cell(i, j));
  // Circumferential edges between ring j-1 and ring j.
  for (idx_t j = 1; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i)
      push_edge(m, node(i, j), node(i + 1, j), cell(i, j - 1), cell(i, j));
  // Wall (airfoil surface) and far-field boundary rings.
  for (idx_t i = 0; i < ni; ++i) push_bedge(m, node(i, 0), node(i + 1, 0), cell(i, 0), kBoundWall);
  for (idx_t i = 0; i < ni; ++i)
    push_bedge(m, node(i, nj), node(i + 1, nj), cell(i, nj - 1), kBoundFarfield);
  orient_edges_fv(m);
  return m;
}

UnstructuredMesh make_quad_box(idx_t ni, idx_t nj, double lx, double ly) {
  OPV_REQUIRE(ni >= 1 && nj >= 1, "box mesh requires ni, nj >= 1");
  UnstructuredMesh m;
  m.name = "quad-box-" + std::to_string(ni) + "x" + std::to_string(nj);
  m.nodes_per_cell = 4;
  m.nnodes = (ni + 1) * (nj + 1);
  m.ncells = ni * nj;

  auto node = [ni](idx_t i, idx_t j) { return j * (ni + 1) + i; };
  auto cell = [ni](idx_t i, idx_t j) { return j * ni + i; };

  m.node_xy.resize(static_cast<std::size_t>(m.nnodes) * 2);
  for (idx_t j = 0; j <= nj; ++j)
    for (idx_t i = 0; i <= ni; ++i) {
      m.node_xy[2 * static_cast<std::size_t>(node(i, j))] =
          lx * static_cast<double>(i) / static_cast<double>(ni);
      m.node_xy[2 * static_cast<std::size_t>(node(i, j)) + 1] =
          ly * static_cast<double>(j) / static_cast<double>(nj);
    }

  m.cell_nodes.resize(static_cast<std::size_t>(m.ncells) * 4);
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i) {
      const std::size_t c = static_cast<std::size_t>(cell(i, j));
      m.cell_nodes[4 * c + 0] = node(i, j);
      m.cell_nodes[4 * c + 1] = node(i + 1, j);
      m.cell_nodes[4 * c + 2] = node(i + 1, j + 1);
      m.cell_nodes[4 * c + 3] = node(i, j + 1);
    }

  // Vertical interior edges between horizontal neighbors.
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 1; i < ni; ++i)
      push_edge(m, node(i, j), node(i, j + 1), cell(i - 1, j), cell(i, j));
  // Horizontal interior edges between vertical neighbors.
  for (idx_t j = 1; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i)
      push_edge(m, node(i, j), node(i + 1, j), cell(i, j - 1), cell(i, j));
  // Boundary: bottom wall, others far field.
  for (idx_t i = 0; i < ni; ++i) push_bedge(m, node(i, 0), node(i + 1, 0), cell(i, 0), kBoundWall);
  for (idx_t i = 0; i < ni; ++i)
    push_bedge(m, node(i, nj), node(i + 1, nj), cell(i, nj - 1), kBoundFarfield);
  for (idx_t j = 0; j < nj; ++j) {
    push_bedge(m, node(0, j), node(0, j + 1), cell(0, j), kBoundFarfield);
    push_bedge(m, node(ni, j), node(ni, j + 1), cell(ni - 1, j), kBoundFarfield);
  }
  orient_edges_fv(m);
  return m;
}

UnstructuredMesh make_tri_box(idx_t ni, idx_t nj, double lx, double ly) {
  OPV_REQUIRE(ni >= 1 && nj >= 1, "tri box requires ni, nj >= 1");
  UnstructuredMesh m;
  m.name = "tri-box-" + std::to_string(ni) + "x" + std::to_string(nj);
  m.nodes_per_cell = 3;
  m.nnodes = (ni + 1) * (nj + 1);
  m.ncells = 2 * ni * nj;

  auto node = [ni](idx_t i, idx_t j) { return j * (ni + 1) + i; };
  // Square (i,j) -> lower triangle 2*sq, upper triangle 2*sq+1.
  auto lower = [ni](idx_t i, idx_t j) { return 2 * (j * ni + i); };
  auto upper = [ni](idx_t i, idx_t j) { return 2 * (j * ni + i) + 1; };

  m.node_xy.resize(static_cast<std::size_t>(m.nnodes) * 2);
  for (idx_t j = 0; j <= nj; ++j)
    for (idx_t i = 0; i <= ni; ++i) {
      m.node_xy[2 * static_cast<std::size_t>(node(i, j))] =
          lx * static_cast<double>(i) / static_cast<double>(ni);
      m.node_xy[2 * static_cast<std::size_t>(node(i, j)) + 1] =
          ly * static_cast<double>(j) / static_cast<double>(nj);
    }

  m.cell_nodes.resize(static_cast<std::size_t>(m.ncells) * 3);
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i) {
      const std::size_t cl = static_cast<std::size_t>(lower(i, j));
      m.cell_nodes[3 * cl + 0] = node(i, j);
      m.cell_nodes[3 * cl + 1] = node(i + 1, j);
      m.cell_nodes[3 * cl + 2] = node(i + 1, j + 1);
      const std::size_t cu = static_cast<std::size_t>(upper(i, j));
      m.cell_nodes[3 * cu + 0] = node(i, j);
      m.cell_nodes[3 * cu + 1] = node(i + 1, j + 1);
      m.cell_nodes[3 * cu + 2] = node(i, j + 1);
    }

  // Diagonal edges: always interior, between the two triangles of a square.
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i)
      push_edge(m, node(i, j), node(i + 1, j + 1), lower(i, j), upper(i, j));
  // Horizontal edges.
  for (idx_t j = 1; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i)
      push_edge(m, node(i, j), node(i + 1, j), upper(i, j - 1), lower(i, j));
  // Vertical edges.
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 1; i < ni; ++i)
      push_edge(m, node(i, j), node(i, j + 1), lower(i - 1, j), upper(i, j));
  // Boundary: bottom = wall (the "coast"), rest far field.
  for (idx_t i = 0; i < ni; ++i)
    push_bedge(m, node(i, 0), node(i + 1, 0), lower(i, 0), kBoundWall);
  for (idx_t i = 0; i < ni; ++i)
    push_bedge(m, node(i, nj), node(i + 1, nj), upper(i, nj - 1), kBoundFarfield);
  for (idx_t j = 0; j < nj; ++j) {
    push_bedge(m, node(0, j), node(0, j + 1), upper(0, j), kBoundFarfield);
    push_bedge(m, node(ni, j), node(ni, j + 1), lower(ni - 1, j), kBoundFarfield);
  }
  orient_edges_fv(m);
  return m;
}

UnstructuredMesh make_tri_periodic(idx_t ni, idx_t nj, double lx, double ly) {
  OPV_REQUIRE(ni >= 3 && nj >= 3, "periodic tri mesh requires ni, nj >= 3");
  UnstructuredMesh m;
  m.name = "tri-periodic-" + std::to_string(ni) + "x" + std::to_string(nj);
  m.nodes_per_cell = 3;
  m.periodic = true;
  m.period_x = lx;
  m.period_y = ly;
  m.nnodes = ni * nj;
  m.ncells = 2 * ni * nj;

  auto node = [ni, nj](idx_t i, idx_t j) {
    return ((j % nj + nj) % nj) * ni + ((i % ni + ni) % ni);
  };
  auto lower = [ni, nj](idx_t i, idx_t j) {
    return 2 * (((j % nj + nj) % nj) * ni + ((i % ni + ni) % ni));
  };
  auto upper = [&lower](idx_t i, idx_t j) { return lower(i, j) + 1; };

  m.node_xy.resize(static_cast<std::size_t>(m.nnodes) * 2);
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i) {
      m.node_xy[2 * static_cast<std::size_t>(node(i, j))] =
          lx * static_cast<double>(i) / static_cast<double>(ni);
      m.node_xy[2 * static_cast<std::size_t>(node(i, j)) + 1] =
          ly * static_cast<double>(j) / static_cast<double>(nj);
    }

  m.cell_nodes.resize(static_cast<std::size_t>(m.ncells) * 3);
  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i) {
      const std::size_t cl = static_cast<std::size_t>(lower(i, j));
      m.cell_nodes[3 * cl + 0] = node(i, j);
      m.cell_nodes[3 * cl + 1] = node(i + 1, j);
      m.cell_nodes[3 * cl + 2] = node(i + 1, j + 1);
      const std::size_t cu = static_cast<std::size_t>(upper(i, j));
      m.cell_nodes[3 * cu + 0] = node(i, j);
      m.cell_nodes[3 * cu + 1] = node(i + 1, j + 1);
      m.cell_nodes[3 * cu + 2] = node(i, j + 1);
    }

  for (idx_t j = 0; j < nj; ++j)
    for (idx_t i = 0; i < ni; ++i) {
      push_edge(m, node(i, j), node(i + 1, j + 1), lower(i, j), upper(i, j));     // diagonal
      push_edge(m, node(i, j), node(i + 1, j), upper(i, j - 1), lower(i, j));     // horizontal
      push_edge(m, node(i, j), node(i, j + 1), lower(i - 1, j), upper(i, j));     // vertical
    }
  orient_edges_fv(m);
  return m;
}

TetMesh make_tet_box(idx_t ni, idx_t nj, idx_t nk, double lx, double ly, double lz) {
  OPV_REQUIRE(ni >= 1 && nj >= 1 && nk >= 1, "tet box requires ni, nj, nk >= 1");
  TetMesh m;
  m.name = "tet-box-" + std::to_string(ni) + "x" + std::to_string(nj) + "x" + std::to_string(nk);
  m.nnodes = (ni + 1) * (nj + 1) * (nk + 1);
  m.ncells = 6 * ni * nj * nk;

  auto node = [ni, nj](idx_t i, idx_t j, idx_t k) {
    return (k * (nj + 1) + j) * (ni + 1) + i;
  };

  m.node_xyz.resize(static_cast<std::size_t>(m.nnodes) * 3);
  for (idx_t k = 0; k <= nk; ++k)
    for (idx_t j = 0; j <= nj; ++j)
      for (idx_t i = 0; i <= ni; ++i) {
        const std::size_t n = static_cast<std::size_t>(node(i, j, k));
        m.node_xyz[3 * n + 0] = lx * static_cast<double>(i) / static_cast<double>(ni);
        m.node_xyz[3 * n + 1] = ly * static_cast<double>(j) / static_cast<double>(nj);
        m.node_xyz[3 * n + 2] = lz * static_cast<double>(k) / static_cast<double>(nk);
      }

  // Kuhn split: one tet per permutation of the unit steps (x,y,z), all six
  // sharing the hex's main diagonal from (0,0,0) to (1,1,1).
  static constexpr int kPerm[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                      {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  m.cell_nodes.reserve(static_cast<std::size_t>(m.ncells) * 4);
  for (idx_t k = 0; k < nk; ++k)
    for (idx_t j = 0; j < nj; ++j)
      for (idx_t i = 0; i < ni; ++i)
        for (const auto& p : kPerm) {
          idx_t d[3] = {0, 0, 0};
          m.cell_nodes.push_back(node(i, j, k));
          d[p[0]] = 1;
          m.cell_nodes.push_back(node(i + d[0], j + d[1], k + d[2]));
          d[p[1]] = 1;
          m.cell_nodes.push_back(node(i + d[0], j + d[1], k + d[2]));
          m.cell_nodes.push_back(node(i + 1, j + 1, k + 1));
        }

  build_tet_faces(m);
  // Bottom boundary is the wall (the 2D generators' convention, extruded).
  for (idx_t b = 0; b < m.nbfaces; ++b) {
    bool bottom = true;
    for (int t = 0; t < 3; ++t) {
      const idx_t n = m.bface_nodes[static_cast<std::size_t>(b) * 3 + t];
      if (m.node_xyz[static_cast<std::size_t>(n) * 3 + 2] != 0.0) bottom = false;
    }
    if (bottom) m.bface_bound[b] = kBoundWall;
  }
  return m;
}

namespace {

/// Min-image centroid of a cell.
void cell_centroid(const UnstructuredMesh& m, idx_t c, double& cx, double& cy) {
  const int k = m.nodes_per_cell;
  const idx_t n0 = m.cell_nodes[static_cast<std::size_t>(c) * k];
  const double x0 = m.node_xy[2 * static_cast<std::size_t>(n0)];
  const double y0 = m.node_xy[2 * static_cast<std::size_t>(n0) + 1];
  double sx = 0.0, sy = 0.0;
  for (int j = 0; j < k; ++j) {
    const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * k + j];
    sx += m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n)] - x0);
    sy += m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n) + 1] - y0);
  }
  cx = x0 + sx / k;
  cy = y0 + sy / k;
}

}  // namespace

void orient_edges_fv(UnstructuredMesh& m) {
  auto normal_dot = [&m](idx_t n0, idx_t n1, double tx, double ty) {
    // (dx,dy) = x(n0)-x(n1); normal (dy,-dx), dotted with direction (tx,ty).
    const double dx = m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n0)] -
                                m.node_xy[2 * static_cast<std::size_t>(n1)]);
    const double dy = m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n0) + 1] -
                                m.node_xy[2 * static_cast<std::size_t>(n1) + 1]);
    return dy * tx - dx * ty;
  };
  for (idx_t e = 0; e < m.nedges; ++e) {
    double c0x, c0y, c1x, c1y;
    cell_centroid(m, m.edge_cells[2 * e], c0x, c0y);
    cell_centroid(m, m.edge_cells[2 * e + 1], c1x, c1y);
    const double tx = m.wrap_dx(c1x - c0x), ty = m.wrap_dy(c1y - c0y);
    if (normal_dot(m.edge_nodes[2 * e], m.edge_nodes[2 * e + 1], tx, ty) < 0.0)
      std::swap(m.edge_nodes[2 * e], m.edge_nodes[2 * e + 1]);
  }
  for (idx_t b = 0; b < m.nbedges; ++b) {
    double cx, cy;
    cell_centroid(m, m.bedge_cell[b], cx, cy);
    const idx_t n0 = m.bedge_nodes[2 * b], n1 = m.bedge_nodes[2 * b + 1];
    const double mx = m.node_xy[2 * static_cast<std::size_t>(n0)] +
                      0.5 * m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n1)] -
                                      m.node_xy[2 * static_cast<std::size_t>(n0)]);
    const double my = m.node_xy[2 * static_cast<std::size_t>(n0) + 1] +
                      0.5 * m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n1) + 1] -
                                      m.node_xy[2 * static_cast<std::size_t>(n0) + 1]);
    // Outward = away from the interior cell.
    const double tx = m.wrap_dx(mx - cx), ty = m.wrap_dy(my - cy);
    if (normal_dot(n0, n1, tx, ty) < 0.0)
      std::swap(m.bedge_nodes[2 * b], m.bedge_nodes[2 * b + 1]);
  }
}

void perturb_nodes(UnstructuredMesh& m, double amplitude, std::uint64_t seed) {
  Rng rng(seed);
  for (idx_t n = 0; n < m.nnodes; ++n) {
    m.node_xy[2 * static_cast<std::size_t>(n)] += rng.uniform(-amplitude, amplitude);
    m.node_xy[2 * static_cast<std::size_t>(n) + 1] += rng.uniform(-amplitude, amplitude);
  }
}

namespace {

/// Apply permutation p (new_pos -> old_pos) to an element-major array.
template <class T>
aligned_vector<T> permute_rows(const aligned_vector<T>& a, const aligned_vector<idx_t>& p,
                               int arity) {
  aligned_vector<T> out(a.size());
  for (std::size_t e = 0; e < p.size(); ++e)
    for (int k = 0; k < arity; ++k)
      out[e * arity + k] = a[static_cast<std::size_t>(p[e]) * arity + k];
  return out;
}

}  // namespace

aligned_vector<idx_t> shuffle_edges(UnstructuredMesh& m, std::uint64_t seed) {
  aligned_vector<idx_t> p(static_cast<std::size_t>(m.nedges));
  for (idx_t e = 0; e < m.nedges; ++e) p[e] = e;
  Rng rng(seed);
  for (idx_t e = m.nedges - 1; e > 0; --e)
    std::swap(p[e], p[rng.next_below(static_cast<std::uint64_t>(e) + 1)]);
  m.edge_nodes = permute_rows(m.edge_nodes, p, 2);
  m.edge_cells = permute_rows(m.edge_cells, p, 2);
  return p;
}

aligned_vector<idx_t> sort_edges_by_cell(UnstructuredMesh& m) {
  // The mesh-level exemplar of the shared pass's from-set ordering: edges
  // sorted lexicographically by their (already numbered) adjacent cells.
  const aligned_vector<idx_t> perm =
      reorder::sort_rows_perm(m.edge_cells.data(), m.nedges, 2);
  // Convert old->new into this API's applied-permutation convention
  // (p[new] = old, matching shuffle_edges).
  aligned_vector<idx_t> p(static_cast<std::size_t>(m.nedges));
  for (idx_t e = 0; e < m.nedges; ++e) p[perm[e]] = e;
  m.edge_nodes = permute_rows(m.edge_nodes, p, 2);
  m.edge_cells = permute_rows(m.edge_cells, p, 2);
  return p;
}

aligned_vector<idx_t> renumber_cells_rcm(UnstructuredMesh& m) {
  // Cell-cell adjacency through interior edges, derived by the shared
  // context-level pass from the edge->cell map (core/reorder.hpp); sets are
  // indexed {0: nodes, 1: cells, 2: edges, 3: bedges}.
  const std::vector<idx_t> sizes = {m.nnodes, m.ncells, m.nedges, m.nbedges};
  const std::vector<reorder::MapView> maps = {
      {2, 1, 2, m.edge_cells.data()},                // edges -> cells
      {3, 1, 1, m.bedge_cell.data()},                // bedges -> cells
      {1, 0, m.nodes_per_cell, m.cell_nodes.data()}  // cells -> nodes
  };
  aligned_vector<idx_t> offset, adj;
  reorder::seed_adjacency(sizes, maps, /*seed=*/1, offset, adj);
  aligned_vector<idx_t> perm = reorder::rcm_order(m.ncells, offset, adj);

  // Apply to cell-major data and to every map targeting cells.
  reorder::permute_rows(perm, m.cell_nodes.data(), m.nodes_per_cell);
  for (auto& c : m.edge_cells) c = perm[c];
  for (auto& c : m.bedge_cell) c = perm[c];
  return perm;
}

}  // namespace opv::mesh
