#include "mesh/tetmesh.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"

namespace opv::mesh {

namespace {

void check_range(const aligned_vector<idx_t>& map, idx_t limit, const char* what) {
  for (std::size_t i = 0; i < map.size(); ++i) {
    OPV_REQUIRE(map[i] >= 0 && map[i] < limit,
                what << " entry " << i << " = " << map[i] << " out of range [0," << limit << ")");
  }
}

bool cell_has_node(const TetMesh& m, idx_t cell, idx_t node) {
  for (int j = 0; j < 4; ++j)
    if (m.cell_nodes[static_cast<std::size_t>(cell) * 4 + j] == node) return true;
  return false;
}

/// Key for a triangle independent of vertex order.
struct TriKey {
  idx_t a, b, c;  // sorted ascending
  friend bool operator==(const TriKey&, const TriKey&) = default;
};
struct TriKeyHash {
  std::size_t operator()(const TriKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : {std::uint64_t(k.a), std::uint64_t(k.b), std::uint64_t(k.c)}) {
      h ^= v + 1;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

TriKey tri_key(idx_t a, idx_t b, idx_t c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return {a, b, c};
}

/// Orient triangle (a,b,c) so its right-hand normal points AWAY from the
/// reference point p (the centroid of the cell the normal must leave).
void orient_away(const TetMesh& m, idx_t& a, idx_t& b, idx_t& c, const double* p) {
  const double* xa = &m.node_xyz[static_cast<std::size_t>(a) * 3];
  const double* xb = &m.node_xyz[static_cast<std::size_t>(b) * 3];
  const double* xc = &m.node_xyz[static_cast<std::size_t>(c) * 3];
  const double ux = xb[0] - xa[0], uy = xb[1] - xa[1], uz = xb[2] - xa[2];
  const double vx = xc[0] - xa[0], vy = xc[1] - xa[1], vz = xc[2] - xa[2];
  const double nx = uy * vz - uz * vy;
  const double ny = uz * vx - ux * vz;
  const double nz = ux * vy - uy * vx;
  const double dx = p[0] - xa[0], dy = p[1] - xa[1], dz = p[2] - xa[2];
  if (nx * dx + ny * dy + nz * dz > 0.0) std::swap(b, c);
}

}  // namespace

std::uint64_t TetMesh::footprint_bytes() const {
  auto bytes = [](const auto& v) {
    return static_cast<std::uint64_t>(v.size()) * sizeof(v[0]);
  };
  return bytes(node_xyz) + bytes(cell_nodes) + bytes(face_nodes) + bytes(face_cells) +
         bytes(bface_nodes) + bytes(bface_cell) + bytes(bface_bound);
}

double TetMesh::cell_volume(idx_t c) const {
  const idx_t* n = &cell_nodes[static_cast<std::size_t>(c) * 4];
  const double* x0 = &node_xyz[static_cast<std::size_t>(n[0]) * 3];
  const double* x1 = &node_xyz[static_cast<std::size_t>(n[1]) * 3];
  const double* x2 = &node_xyz[static_cast<std::size_t>(n[2]) * 3];
  const double* x3 = &node_xyz[static_cast<std::size_t>(n[3]) * 3];
  const double a[3] = {x1[0] - x0[0], x1[1] - x0[1], x1[2] - x0[2]};
  const double b[3] = {x2[0] - x0[0], x2[1] - x0[1], x2[2] - x0[2]};
  const double d[3] = {x3[0] - x0[0], x3[1] - x0[1], x3[2] - x0[2]};
  const double det = a[0] * (b[1] * d[2] - b[2] * d[1]) - a[1] * (b[0] * d[2] - b[2] * d[0]) +
                     a[2] * (b[0] * d[1] - b[1] * d[0]);
  return det / 6.0;
}

void TetMesh::validate() const {
  OPV_REQUIRE(node_xyz.size() == static_cast<std::size_t>(nnodes) * 3, "node_xyz size mismatch");
  OPV_REQUIRE(cell_nodes.size() == static_cast<std::size_t>(ncells) * 4,
              "cell_nodes size mismatch");
  OPV_REQUIRE(face_nodes.size() == static_cast<std::size_t>(nfaces) * 3,
              "face_nodes size mismatch");
  OPV_REQUIRE(face_cells.size() == static_cast<std::size_t>(nfaces) * 2,
              "face_cells size mismatch");
  OPV_REQUIRE(bface_nodes.size() == static_cast<std::size_t>(nbfaces) * 3,
              "bface_nodes size mismatch");
  OPV_REQUIRE(bface_cell.size() == static_cast<std::size_t>(nbfaces), "bface_cell size mismatch");
  OPV_REQUIRE(bface_bound.size() == static_cast<std::size_t>(nbfaces),
              "bface_bound size mismatch");

  check_range(cell_nodes, nnodes, "cell_nodes");
  check_range(face_nodes, nnodes, "face_nodes");
  check_range(face_cells, ncells, "face_cells");
  check_range(bface_nodes, nnodes, "bface_nodes");
  check_range(bface_cell, ncells, "bface_cell");

  for (idx_t c = 0; c < ncells; ++c) {
    const idx_t* n = &cell_nodes[static_cast<std::size_t>(c) * 4];
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j)
        OPV_REQUIRE(n[i] != n[j], "cell " << c << " has repeated node " << n[i]);
    OPV_REQUIRE(std::abs(cell_volume(c)) > 0.0, "cell " << c << " is degenerate (zero volume)");
  }
  for (idx_t f = 0; f < nfaces; ++f) {
    const idx_t* n = &face_nodes[static_cast<std::size_t>(f) * 3];
    const idx_t c0 = face_cells[2 * f], c1 = face_cells[2 * f + 1];
    OPV_REQUIRE(n[0] != n[1] && n[1] != n[2] && n[0] != n[2],
                "face " << f << " has repeated nodes");
    OPV_REQUIRE(c0 != c1, "face " << f << " has repeated cell " << c0);
    for (int k = 0; k < 3; ++k) {
      OPV_REQUIRE(cell_has_node(*this, c0, n[k]) && cell_has_node(*this, c1, n[k]),
                  "face " << f << " node " << n[k] << " not part of both adjacent cells");
    }
  }
  for (idx_t b = 0; b < nbfaces; ++b) {
    const idx_t* n = &bface_nodes[static_cast<std::size_t>(b) * 3];
    const idx_t c = bface_cell[b];
    OPV_REQUIRE(n[0] != n[1] && n[1] != n[2] && n[0] != n[2],
                "bface " << b << " has repeated nodes");
    for (int k = 0; k < 3; ++k)
      OPV_REQUIRE(cell_has_node(*this, c, n[k]),
                  "bface " << b << " node " << n[k] << " not part of cell " << c);
    OPV_REQUIRE(bface_bound[b] == kBoundFarfield || bface_bound[b] == kBoundWall,
                "bface " << b << " has unknown bound id " << bface_bound[b]);
  }
}

void build_tet_faces(TetMesh& m) {
  // The four triangles of tet (n0,n1,n2,n3), each opposite one vertex.
  static constexpr int kTri[4][3] = {{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};

  struct Slot {
    idx_t cell = -1;  // first cell that contributed the triangle
    idx_t a, b, c;    // as contributed
    int seen = 0;
  };
  std::unordered_map<TriKey, Slot, TriKeyHash> tris;
  tris.reserve(static_cast<std::size_t>(m.ncells) * 2 + 16);

  m.face_nodes.clear();
  m.face_cells.clear();
  m.bface_nodes.clear();
  m.bface_cell.clear();
  m.bface_bound.clear();
  m.nfaces = 0;
  m.nbfaces = 0;

  const aligned_vector<double> cent = tet_cell_centroids(m);

  // Discovery order: scan cells, emit an interior face the moment its
  // second cell appears — deterministic in cell_nodes alone.
  for (idx_t c = 0; c < m.ncells; ++c) {
    const idx_t* n = &m.cell_nodes[static_cast<std::size_t>(c) * 4];
    for (const auto& t : kTri) {
      idx_t a = n[t[0]], b = n[t[1]], cc = n[t[2]];
      auto [it, inserted] = tris.try_emplace(tri_key(a, b, cc));
      Slot& s = it->second;
      if (inserted) {
        s.cell = c;
        s.a = a;
        s.b = b;
        s.c = cc;
        s.seen = 1;
      } else {
        OPV_REQUIRE(s.seen == 1, "non-manifold mesh: triangle (" << a << "," << b << "," << cc
                                                                 << ") shared by 3+ cells");
        s.seen = 2;
        idx_t fa = s.a, fb = s.b, fc = s.c;
        orient_away(m, fa, fb, fc, &cent[static_cast<std::size_t>(s.cell) * 3]);
        m.face_nodes.insert(m.face_nodes.end(), {fa, fb, fc});
        m.face_cells.insert(m.face_cells.end(), {s.cell, c});
        ++m.nfaces;
      }
    }
  }
  // Remaining singletons are boundary faces, ordered by owning cell then by
  // local face index (re-scan keeps the order independent of hashing).
  for (idx_t c = 0; c < m.ncells; ++c) {
    const idx_t* n = &m.cell_nodes[static_cast<std::size_t>(c) * 4];
    for (const auto& t : kTri) {
      idx_t a = n[t[0]], b = n[t[1]], cc = n[t[2]];
      const Slot& s = tris.at(tri_key(a, b, cc));
      if (s.seen != 1) continue;
      orient_away(m, a, b, cc, &cent[static_cast<std::size_t>(c) * 3]);
      m.bface_nodes.insert(m.bface_nodes.end(), {a, b, cc});
      m.bface_cell.push_back(c);
      m.bface_bound.push_back(kBoundFarfield);
      ++m.nbfaces;
    }
  }
}

aligned_vector<double> tet_cell_centroids(const TetMesh& m) {
  aligned_vector<double> cent(static_cast<std::size_t>(m.ncells) * 3);
  for (idx_t c = 0; c < m.ncells; ++c) {
    double s[3] = {0, 0, 0};
    for (int j = 0; j < 4; ++j) {
      const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * 4 + j];
      for (int k = 0; k < 3; ++k) s[k] += m.node_xyz[static_cast<std::size_t>(n) * 3 + k];
    }
    for (int k = 0; k < 3; ++k) cent[static_cast<std::size_t>(c) * 3 + k] = s[k] / 4.0;
  }
  return cent;
}

double tet_min_length(const TetMesh& m) {
  OPV_REQUIRE(m.ncells > 0, "tet_min_length: empty mesh");
  double vmin = std::abs(m.cell_volume(0));
  for (idx_t c = 1; c < m.ncells; ++c) vmin = std::min(vmin, std::abs(m.cell_volume(c)));
  OPV_REQUIRE(vmin > 0.0, "tet_min_length: degenerate cell (zero volume)");
  return std::cbrt(vmin);
}

}  // namespace opv::mesh
