// Unstructured 3D tetrahedral finite-volume mesh container.
//
// The 3D sibling of UnstructuredMesh (mesh.hpp): a node set with xyz
// coordinates, a tet cell set with a cell->node map, an interior-face set
// (triangles shared by two cells) and a boundary-face set with a
// boundary-condition id. Faces are derived from the cell->node map
// (build_tet_faces) and oriented so the face normal points from the first
// adjacent cell toward the second (outward for boundary faces) — the
// convention the tet3d flux kernels depend on, the 3D analog of
// orient_edges_fv.
#pragma once

#include <cstdint>
#include <string>

#include "common/aligned.hpp"
#include "mesh/mesh.hpp"

namespace opv::mesh {

/// A fully unstructured tetrahedral mesh. All maps are element-major (AoS):
/// cell_nodes[c*4 + k] is the k-th node of tet c.
struct TetMesh {
  std::string name;

  idx_t nnodes = 0;
  idx_t ncells = 0;
  idx_t nfaces = 0;   ///< interior triangular faces (two adjacent cells)
  idx_t nbfaces = 0;  ///< boundary faces (one adjacent cell)

  aligned_vector<double> node_xyz;    ///< nnodes*3 node coordinates
  aligned_vector<idx_t> cell_nodes;   ///< ncells*4
  aligned_vector<idx_t> face_nodes;   ///< nfaces*3, oriented cell0 -> cell1
  aligned_vector<idx_t> face_cells;   ///< nfaces*2 (left, right)
  aligned_vector<idx_t> bface_nodes;  ///< nbfaces*3, oriented outward
  aligned_vector<idx_t> bface_cell;   ///< nbfaces*1
  aligned_vector<idx_t> bface_bound;  ///< nbfaces*1 boundary-condition id

  /// Estimated resident size of all arrays in bytes.
  [[nodiscard]] std::uint64_t footprint_bytes() const;

  /// Throws opv::Error if any structural invariant is violated: index
  /// ranges, face nodes shared with both adjacent cells, distinct face
  /// nodes, known bound ids, non-degenerate (positive-volume) cells.
  void validate() const;

  /// Signed volume of cell c (positive for gmsh-ordered tets).
  [[nodiscard]] double cell_volume(idx_t c) const;
};

/// Derive the interior/boundary face sets from cell_nodes: each tet
/// contributes its four triangles, triangles shared by exactly two tets
/// become interior faces (adjacent cells in discovery order), triangles
/// seen once become boundary faces. Face node triples are oriented
/// cell0 -> cell1 / outward. Every bface_bound is set to kBoundFarfield —
/// callers relabel (from physical groups or geometry). Throws on
/// non-manifold input (a triangle shared by three or more tets).
void build_tet_faces(TetMesh& m);

/// Cell centroids, interleaved xyz (ncells*3).
aligned_vector<double> tet_cell_centroids(const TetMesh& m);

/// Characteristic mesh length: cbrt of the smallest cell volume (timestep
/// selection in the tet3d app). Throws on an empty or degenerate mesh.
double tet_min_length(const TetMesh& m);

}  // namespace opv::mesh
