#include "apps/volna/hazard.hpp"

#include <utility>

#include "core/guard.hpp"

namespace opv::volna {

std::vector<Scenario> hazard_sweep(int n, const Scenario& base) {
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Fan amplitude over [0.5, 1.5]x base and width over [0.8, 1.2]x base,
    // phase-shifted so no two scenarios coincide; fixed arithmetic keeps
    // the sweep reproducible.
    const double ta = n > 1 ? static_cast<double>(i) / (n - 1) : 0.5;
    const double tw = n > 1 ? static_cast<double>((i * 7) % n) / (n - 1) : 0.5;
    Scenario sc = base;
    sc.amp = base.amp * (0.5 + ta);
    sc.width = base.width * (0.8 + 0.4 * tw);
    out.push_back(sc);
  }
  return out;
}

Backend parse_backend(const std::string& name) {
  if (name == "seq") return Backend::Seq;
  if (name == "openmp") return Backend::OpenMP;
  if (name == "autovec") return Backend::AutoVec;
  if (name == "simt") return Backend::Simt;
  return Backend::Simd;
}

HazardInstance::HazardInstance(const mesh::UnstructuredMesh& m, const Scenario& sc,
                               const ExecConfig& cfg, bool chain)
    : sc_(sc), ctx_(cfg), cgeom_(cell_geometry(m)) {
  app_ = std::make_unique<Volna<float, LocalCtx>>(ctx_, m, sc.depth, sc.amp, sc.width, chain);
  vol0_ = total_volume(app_->fetch_state(), cgeom_);
}

double HazardInstance::volume() { return total_volume(app_->fetch_state(), cgeom_); }

bool HazardInstance::healthy() { return guard::check_finite(*app_->state_dat()); }

Checkpoint HazardInstance::checkpoint() {
  Checkpoint c;
  ctx_.snapshot(c);
  // The only evolving state outside the dats: Volna's step globals (the
  // broadcast dt and the reduction scratch it is read back from).
  const auto g = app_->step_globals();
  ByteWriter w;
  w.put<double>(g.dt);
  w.put<double>(static_cast<double>(g.dtmin));
  w.put<double>(static_cast<double>(g.dt_arg));
  c.add("globals/volna", w.take());
  return c;
}

void HazardInstance::restore(const Checkpoint& c) {
  ctx_.restore(c);
  const Checkpoint::Section* s = c.find("globals/volna");
  OPV_REQUIRE(s != nullptr, "HazardInstance::restore: checkpoint lacks globals/volna section");
  ByteReader r(s->bytes, "globals/volna");
  Volna<float, LocalCtx>::StepGlobals g;
  g.dt = r.get<double>();
  g.dtmin = static_cast<float>(r.get<double>());
  g.dt_arg = static_cast<float>(r.get<double>());
  app_->set_step_globals(g);
}

serve::InstanceFactory hazard_factory(const mesh::UnstructuredMesh& m,
                                      std::vector<Scenario> sweep, ExecConfig cfg, bool chain) {
  OPV_REQUIRE(!sweep.empty(), "hazard_factory: empty scenario sweep");
  // Copy the mesh into the closure: instances may be added after the
  // caller's mesh goes out of scope, and factories outlive add_instances.
  auto mesh = std::make_shared<mesh::UnstructuredMesh>(m);
  auto scenarios = std::make_shared<std::vector<Scenario>>(std::move(sweep));
  return [mesh, scenarios, cfg, chain](int id) -> std::unique_ptr<serve::Instance> {
    const Scenario& sc = (*scenarios)[static_cast<std::size_t>(id) % scenarios->size()];
    return std::make_unique<HazardInstance>(*mesh, sc, cfg, chain);
  };
}

}  // namespace opv::volna
