// Volna application driver: shallow-water tsunami propagation on a
// (periodic) triangular mesh, templated over execution context and
// precision (the paper runs Volna in single precision).
#pragma once

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "apps/volna/volna_kernels.hpp"
#include "core/chain.hpp"
#include "core/op2.hpp"
#include "mesh/mesh.hpp"

namespace opv::volna {

/// Register the Table III KernelInfo entries (idempotent).
void register_kernel_info();

/// Edge geometry {nx, ny, len, pad} with the normal oriented from the left
/// cell (edge_cells[2e]) to the right cell, minimum-image safe.
aligned_vector<double> edge_geometry(const mesh::UnstructuredMesh& m);

/// Cell geometry {area, 1/area}, minimum-image safe.
aligned_vector<double> cell_geometry(const mesh::UnstructuredMesh& m);

/// Synthetic tsunami initial condition: still water of depth `depth` with a
/// Gaussian free-surface hump of amplitude `amp` at the domain center.
/// Returns the state vector U = {h, hu, hv, zb} per cell.
aligned_vector<double> initial_state(const mesh::UnstructuredMesh& m, double depth, double amp,
                                     double width);

template <class Real>
aligned_vector<Real> cast_vec(const aligned_vector<double>& in) {
  aligned_vector<Real> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = static_cast<Real>(in[i]);
  return out;
}

/// The Volna application. Time loop per step:
///   sim_1 (save) -> compute_flux -> numerical_flux (dt) -> space_disc ->
///   RK_1 -> compute_flux -> space_disc -> RK_2
template <class Real, class Ctx>
class Volna {
 public:
  /// With chain=true the step executes through opv::LoopChain handles
  /// (cross-loop sparse tiling, core/chain.hpp); local contexts only —
  /// distributed contexts keep the loop-by-loop step.
  Volna(Ctx& ctx, const mesh::UnstructuredMesh& m, double depth = 1.0, double amp = 0.25,
        double width = 0.08, bool chain = false)
      : ctx_(ctx), ncells_(m.ncells), chain_(chain) {
    register_kernel_info();
    OPV_REQUIRE(m.nodes_per_cell == 3, "Volna requires a triangular mesh");
    centroids_ = volna_centroids(m);

    cells_ = ctx_.decl_set("cells", m.ncells);
    edges_ = ctx_.decl_set("edges", m.nedges);
    ctx_.set_partition_coords(cells_, centroids_.data());

    e2c_ = ctx_.decl_map("e2c", edges_, cells_, 2, m.edge_cells);
    c2e_ = ctx_.decl_map("c2e", cells_, edges_, 3, mesh::build_cell_edges_flat3(m));

    u_ = ctx_.template decl_dat<Real, 4>("values", cells_,
                                         cast_vec<Real>(initial_state(m, depth, amp, width)));
    uold_ = ctx_.template decl_dat<Real, 4>("uold", cells_);
    utmp_ = ctx_.template decl_dat<Real, 4>("utmp", cells_);
    res_ = ctx_.template decl_dat<Real, 4>("res", cells_);
    cdt_ = ctx_.template decl_dat<Real, 1>("cdt", cells_);
    egeom_ = ctx_.template decl_dat<Real, 4>("egeom", edges_, cast_vec<Real>(edge_geometry(m)));
    cgeom_ = ctx_.template decl_dat<Real, 2>("cgeom", cells_, cast_vec<Real>(cell_geometry(m)));
    flux_ = ctx_.template decl_dat<Real, 5>("flux", edges_);
    ctx_.finalize();
    build_loops();
  }

  // The step closure captures `this` (the dt reduction targets).
  Volna(const Volna&) = delete;
  Volna& operator=(const Volna&) = delete;

  /// Advance nsteps timesteps (adaptive dt from the CFL reduction). Each
  /// step runs the persistent loop handles built at construction (ROADMAP
  /// "driver migration to handles").
  void run(int nsteps) {
    for (int step = 0; step < nsteps; ++step) step_();
  }

  /// Fetch the state vector in global cell order.
  aligned_vector<Real> fetch_state() {
    aligned_vector<Real> out;
    ctx_.fetch(u_, out);
    return out;
  }

  [[nodiscard]] double last_dt() const { return dt_; }
  [[nodiscard]] idx_t ncells() const { return ncells_; }
  [[nodiscard]] const Params<Real>& params() const { return params_; }

  /// The evolving non-dat state of the time loop — what a checkpoint must
  /// carry beyond the context dats for a restored run to replay bitwise
  /// (dt_arg_ feeds RK_1/RK_2 as a READ global; dtmin_ is the MIN reduction
  /// target mid-step).
  struct StepGlobals {
    double dt = 0.0;
    Real dtmin = Real(0);
    Real dt_arg = Real(0);
  };
  [[nodiscard]] StepGlobals step_globals() const { return {dt_, dtmin_, dt_arg_}; }
  void set_step_globals(const StepGlobals& g) {
    dt_ = g.dt;
    dtmin_ = g.dtmin;
    dt_arg_ = g.dt_arg;
  }

  /// The state dat handle (health scans, e.g. guard::check_finite).
  [[nodiscard]] auto state_dat() { return u_; }

 private:
  static aligned_vector<double> volna_centroids(const mesh::UnstructuredMesh& m);

  Ctx& ctx_;
  idx_t ncells_;
  bool chain_ = false;
  Params<Real> params_;
  aligned_vector<double> centroids_;
  double dt_ = 0.0;
  Real dtmin_ = Real(0);  ///< numerical_flux's MIN reduction target
  Real dt_arg_ = Real(0); ///< RK_1/RK_2's READ global, set from dtmin_

  typename Ctx::SetHandle cells_{}, edges_{};
  typename Ctx::MapHandle e2c_{}, c2e_{};
  typename Ctx::template FixedDatHandle<Real, 4> u_{}, uold_{}, utmp_{}, res_{}, egeom_{};
  typename Ctx::template FixedDatHandle<Real, 1> cdt_{};
  typename Ctx::template FixedDatHandle<Real, 2> cgeom_{};
  typename Ctx::template FixedDatHandle<Real, 5> flux_{};

  /// One persistent handle per kernel call site (compute_flux and
  /// space_disc each appear twice in a step, so twice here). Every dat is
  /// declared with its compile-time arity (decl_dat<T, N>, FixedDat
  /// handles: u/uold/utmp/res/egeom:4, flux:5, cgeom:2, cdt:1), so each
  /// argument carries its arity from the handle's type and every
  /// gather/scatter unrolls at instantiation time (docs/API.md,
  /// "compile-time Dim").
  auto make_loops() {
    auto space_disc = [this] {
      return ctx_.make_loop(SpaceDisc<Real>{}, "space_disc", edges_,
                            ctx_.template arg<opv::READ>(flux_),
                            ctx_.template arg<opv::READ>(egeom_),
                            ctx_.template arg<opv::READ>(cgeom_, 0, e2c_),
                            ctx_.template arg<opv::READ>(cgeom_, 1, e2c_),
                            ctx_.template arg<opv::INC>(res_, 0, e2c_),
                            ctx_.template arg<opv::INC>(res_, 1, e2c_));
    };
    return std::make_tuple(
        ctx_.make_loop(Sim1<Real>{}, "sim_1", cells_, ctx_.template arg<opv::READ>(u_),
                       ctx_.template arg<opv::WRITE>(uold_)),
        ctx_.make_loop(ComputeFlux<Real>{params_}, "compute_flux", edges_,
                       ctx_.template arg<opv::READ>(u_, 0, e2c_),
                       ctx_.template arg<opv::READ>(u_, 1, e2c_),
                       ctx_.template arg<opv::READ>(egeom_),
                       ctx_.template arg<opv::WRITE>(flux_)),
        ctx_.make_loop(NumericalFlux<Real>{params_}, "numerical_flux", cells_,
                       ctx_.template arg<opv::READ>(flux_, 0, c2e_),
                       ctx_.template arg<opv::READ>(flux_, 1, c2e_),
                       ctx_.template arg<opv::READ>(flux_, 2, c2e_),
                       ctx_.template arg<opv::READ>(cgeom_),
                       ctx_.template arg<opv::WRITE>(cdt_),
                       ctx_.template arg_gbl<opv::MIN>(&dtmin_, 1)),
        space_disc(),
        ctx_.make_loop(RK1<Real>{}, "RK_1", cells_, ctx_.template arg<opv::READ>(u_),
                       ctx_.template arg<opv::RW>(res_),
                       ctx_.template arg<opv::WRITE>(utmp_),
                       ctx_.template arg_gbl<opv::READ>(&dt_arg_, 1)),
        ctx_.make_loop(ComputeFlux<Real>{params_}, "compute_flux", edges_,
                       ctx_.template arg<opv::READ>(utmp_, 0, e2c_),
                       ctx_.template arg<opv::READ>(utmp_, 1, e2c_),
                       ctx_.template arg<opv::READ>(egeom_),
                       ctx_.template arg<opv::WRITE>(flux_)),
        space_disc(),
        ctx_.make_loop(RK2<Real>{}, "RK_2", cells_, ctx_.template arg<opv::READ>(uold_),
                       ctx_.template arg<opv::READ>(utmp_),
                       ctx_.template arg<opv::RW>(res_),
                       ctx_.template arg<opv::WRITE>(u_),
                       ctx_.template arg_gbl<opv::READ>(&dt_arg_, 1)));
  }

  /// Pin the handles in a type-erased per-step closure (see the Airfoil
  /// driver for the pattern).
  ///
  /// Chain mode splits the step at its one irreducible host-code point —
  /// reading the CFL reduction back and rebroadcasting it as dt — and fuses
  /// each side (the dtmin_ reset moves to the chain boundary, legal because
  /// MIN-merging per-tile partials is exact and nothing reads dtmin_
  /// mid-chain):
  ///   dtmin_=+inf; [sim_1 compute_flux numerical_flux]
  ///   dt_=dt_arg_=dtmin_; [space_disc RK_1 compute_flux space_disc RK_2]
  void build_loops() {
    auto loops = std::make_shared<decltype(make_loops())>(make_loops());
    if constexpr (requires {
                    std::get<0>(*loops).inner();
                    ctx_.config();
                    ctx_.note_loops_ran();
                  }) {
      if (chain_) {
        ctx_.note_loops_ran();  // chains bypass CtxLoop::run's bookkeeping
        auto& [sim1, flux_u, numflux, space1, rk1, flux_ut, space2, rk2] = *loops;
        auto cfl = std::make_shared<LoopChain>("volna_cfl", sim1.inner(), flux_u.inner(),
                                               numflux.inner());
        auto rk = std::make_shared<LoopChain>("volna_rk", space1.inner(), rk1.inner(),
                                              flux_ut.inner(), space2.inner(), rk2.inner());
        step_ = [this, loops, cfl, rk] {
          dtmin_ = std::numeric_limits<Real>::max();
          cfl->run(ctx_.config());
          dt_ = static_cast<double>(dtmin_);
          dt_arg_ = dtmin_;
          rk->run(ctx_.config());
        };
        return;
      }
    }
    step_ = [this, loops] {
      auto& [sim1, flux_u, numflux, space1, rk1, flux_ut, space2, rk2] = *loops;
      sim1.run();
      flux_u.run();
      dtmin_ = std::numeric_limits<Real>::max();
      numflux.run();
      dt_ = static_cast<double>(dtmin_);
      dt_arg_ = dtmin_;
      space1.run();
      rk1.run();
      flux_ut.run();
      space2.run();
      rk2.run();
    };
  }

  std::function<void()> step_;  ///< one timestep over the handles
};

/// Total water volume sum(h*area): conserved exactly by the scheme (up to
/// floating-point roundoff) on a periodic mesh — the app's key invariant.
template <class Real>
double total_volume(const aligned_vector<Real>& state, const aligned_vector<double>& cell_geom) {
  double vol = 0.0;
  const std::size_t n = cell_geom.size() / 2;
  for (std::size_t c = 0; c < n; ++c)
    vol += static_cast<double>(state[c * 4]) * cell_geom[c * 2];
  return vol;
}

// Out-of-line so the header stays light; defined in volna.cpp.
template <class Real, class Ctx>
aligned_vector<double> Volna<Real, Ctx>::volna_centroids(const mesh::UnstructuredMesh& m) {
  // Same min-image centroid logic as the airfoil app; duplicated locally to
  // keep the two app libraries independent.
  const int k = m.nodes_per_cell;
  aligned_vector<double> cent(static_cast<std::size_t>(m.ncells) * 2);
  for (idx_t c = 0; c < m.ncells; ++c) {
    const idx_t n0 = m.cell_nodes[static_cast<std::size_t>(c) * k];
    const double x0 = m.node_xy[2 * static_cast<std::size_t>(n0)];
    const double y0 = m.node_xy[2 * static_cast<std::size_t>(n0) + 1];
    double sx = 0.0, sy = 0.0;
    for (int j = 0; j < k; ++j) {
      const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * k + j];
      sx += m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n)] - x0);
      sy += m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n) + 1] - y0);
    }
    cent[2 * static_cast<std::size_t>(c)] = x0 + sx / k;
    cent[2 * static_cast<std::size_t>(c) + 1] = y0 + sy / k;
  }
  return cent;
}

}  // namespace opv::volna
