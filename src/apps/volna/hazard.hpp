// Volna hazard-sweep building blocks: the ensemble-serving face of the
// Volna app (serve/ensemble.hpp). Probabilistic tsunami hazard assessment
// runs MANY scenarios — same bathymetry, different source parameters — and
// asks for the distribution of outcomes; here each scenario wraps one
// Volna driver as a serve::Instance so an opv::serve::Ensemble can
// multiplex scenario timesteps over one worker pool.
//
// The per-step logic (including numerical_flux's dt-reduction reset and
// the dt read-back/rebroadcast) lives in exactly one place — Volna's
// step closure (volna.hpp build_loops) — and HazardInstance::step() simply
// invokes it, so the ensemble driver and the solo example cannot drift.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/volna/volna.hpp"
#include "core/context.hpp"
#include "serve/ensemble.hpp"

namespace opv::volna {

/// One hazard scenario: the initial-condition parameters of a Volna run
/// (still-water depth, Gaussian hump amplitude and width).
struct Scenario {
  double depth = 1.0;
  double amp = 0.25;
  double width = 0.05;
};

/// A deterministic n-scenario parameter sweep around `base`: amplitudes
/// and widths fan out over fixed factor ranges (no RNG — hazard curves
/// must be reproducible run to run).
std::vector<Scenario> hazard_sweep(int n, const Scenario& base = {});

/// Parse a CLI backend name: "seq", "openmp", "autovec", "simt", or "simd"
/// (anything else falls back to Simd, matching the examples' historic
/// default). Shared by volna_tsunami, volna_hazard and the benches.
Backend parse_backend(const std::string& name);

/// One Volna scenario wrapped as an ensemble instance: owns its LocalCtx
/// (per-instance ExecConfig lives there) and the Volna driver with its
/// pinned loop handles. The referenced mesh is only read at construction.
///
/// Checkpointable: a checkpoint is the context snapshot (every dat in
/// declaration-order AoS bytes) plus Volna's step globals (dt / dtmin /
/// dt_arg), which is the complete evolving state — restore + replay is
/// bitwise-identical on Seq. healthy() scans the state vector for NaN/Inf.
class HazardInstance final : public serve::Checkpointable {
 public:
  HazardInstance(const mesh::UnstructuredMesh& m, const Scenario& sc, const ExecConfig& cfg,
                 bool chain = false);

  /// One timestep through Volna's own step closure.
  void step() override { app_->run(1); }

  [[nodiscard]] bool healthy() override;
  [[nodiscard]] Checkpoint checkpoint() override;
  void restore(const Checkpoint& c) override;

  /// Current state vector (global cell order).
  [[nodiscard]] aligned_vector<float> state() { return app_->fetch_state(); }
  /// Current total water volume (the conservation invariant).
  [[nodiscard]] double volume();
  [[nodiscard]] double initial_volume() const { return vol0_; }
  [[nodiscard]] double last_dt() const { return app_->last_dt(); }
  [[nodiscard]] idx_t ncells() const { return app_->ncells(); }
  [[nodiscard]] const Scenario& scenario() const { return sc_; }

 private:
  Scenario sc_;
  LocalCtx ctx_;  ///< declared before app_: the driver pins handles into it
  aligned_vector<double> cgeom_;
  std::unique_ptr<Volna<float, LocalCtx>> app_;
  double vol0_ = 0.0;
};

/// Instance factory over one shared mesh: instance id -> sweep[id % n].
/// The mesh and sweep are captured by value-shared state; `m` must stay
/// alive for the ensemble's add_instances() call only (each instance copies
/// what it needs at construction).
serve::InstanceFactory hazard_factory(const mesh::UnstructuredMesh& m,
                                      std::vector<Scenario> sweep, ExecConfig cfg,
                                      bool chain = false);

}  // namespace opv::volna
