// The six Volna kernels (paper Table III), width-generic like the Airfoil
// set. Volna is a cell-centered finite-volume shallow-water solver; our
// reproduction implements an HLL flux with desingularized velocities and a
// Heun (RK2) time integrator on a triangular mesh, preserving the paper's
// kernel structure:
//   sim_1           direct copy of the state (save for the RK step)
//   compute_flux    edge loop: gather both cells, HLL flux, direct write
//   numerical_flux  cell loop: gather edge wave speeds, dt MIN reduction
//   space_disc      edge loop: read flux, scatter increments to both cells
//   RK_1 / RK_2     direct Runge-Kutta stage updates
//
// State vector per cell: U = {h, hu, hv, zb}; zb (bathymetry) is carried to
// match the paper's data volumes but the scheme is flat-bottom (see
// DESIGN.md substitutions).
#pragma once

#include "simd/simd.hpp"

namespace opv::volna {

template <class Real>
struct Params {
  Real g = Real(9.81);
  Real cfl = Real(0.4);
  Real hmin = Real(1e-6);  ///< desingularization depth
};

/// sim_1: save the state (Table III: direct copy).
template <class Real>
struct Sim1 {
  template <class T>
  void operator()(const T* u, T* uold) const {
    for (int n = 0; n < 4; ++n) uold[n] = u[n];
  }
};

/// compute_flux: HLL flux across an edge in the rotated (normal,tangent)
/// frame. Gathers the two adjacent cell states, reads the edge geometry
/// {nx, ny, len, pad} directly, writes {f_h, f_hu, f_hv, smax, pad}.
template <class Real>
struct ComputeFlux {
  Params<Real> p;

  template <class T>
  void operator()(const T* ul, const T* ur, const T* geom, T* flux) const {
    OPV_SIMD_MATH_USING;
    const T nx = geom[0], ny = geom[1];

    const T hl = max(ul[0], T(Real(0.0)));
    const T hr = max(ur[0], T(Real(0.0)));
    // Desingularized velocities: u = h*hu / (h^2 + hmin^2).
    const T dl = T(Real(1.0)) / (hl * hl + T(p.hmin) * T(p.hmin));
    const T dr = T(Real(1.0)) / (hr * hr + T(p.hmin) * T(p.hmin));
    const T uxl = ul[1] * hl * dl, uyl = ul[2] * hl * dl;
    const T uxr = ur[1] * hr * dr, uyr = ur[2] * hr * dr;

    // Rotate into the edge-normal frame.
    const T unl = uxl * nx + uyl * ny, utl = -uxl * ny + uyl * nx;
    const T unr = uxr * nx + uyr * ny, utr = -uxr * ny + uyr * nx;

    const T cl = sqrt(T(p.g) * hl), cr = sqrt(T(p.g) * hr);
    const T sl = min(unl - cl, unr - cr);
    const T sr = max(unl + cl, unr + cr);

    // Physical fluxes in the rotated frame: F = (h*un, h*un^2 + g h^2/2,
    // h*un*ut).
    const T half_g = T(Real(0.5)) * T(p.g);
    const T fl0 = hl * unl, fr0 = hr * unr;
    const T fl1 = hl * unl * unl + half_g * hl * hl;
    const T fr1 = hr * unr * unr + half_g * hr * hr;
    const T fl2 = hl * unl * utl, fr2 = hr * unr * utr;

    // HLL middle state (guard the denominator).
    const T denom = max(sr - sl, T(p.hmin));
    const T inv = T(Real(1.0)) / denom;
    const T q0l = hl, q0r = hr;
    const T q1l = hl * unl, q1r = hr * unr;
    const T q2l = hl * utl, q2r = hr * utr;
    const T fm0 = (sr * fl0 - sl * fr0 + sl * sr * (q0r - q0l)) * inv;
    const T fm1 = (sr * fl1 - sl * fr1 + sl * sr * (q1r - q1l)) * inv;
    const T fm2 = (sr * fl2 - sl * fr2 + sl * sr * (q2r - q2l)) * inv;

    const T zero = T(Real(0.0));
    const auto left = (sl >= zero);
    const auto right = (sr <= zero);
    const T f0 = select(left, fl0, select(right, fr0, fm0));
    const T f1 = select(left, fl1, select(right, fr1, fm1));
    const T f2 = select(left, fl2, select(right, fr2, fm2));

    // Rotate momentum flux back to x/y.
    flux[0] = f0;
    flux[1] = f1 * nx - f2 * ny;
    flux[2] = f1 * ny + f2 * nx;
    flux[3] = max(abs(sl), abs(sr));  // max wave speed for the dt reduction
    flux[4] = zero;
  }
};

/// numerical_flux: per-cell stable timestep from the incident edges' wave
/// speeds; global MIN reduction (Table III: gather, reduction).
template <class Real>
struct NumericalFlux {
  Params<Real> p;

  template <class T>
  void operator()(const T* f1, const T* f2, const T* f3, const T* cgeom, T* cdt, T* dtmin) const {
    OPV_SIMD_MATH_USING;
    const T smax = max(f1[3], max(f2[3], f3[3]));
    // dt_c = cfl * sqrt(area) / max(smax, eps)
    const T dt = T(p.cfl) * sqrt(cgeom[0]) / max(smax, T(p.hmin));
    cdt[0] = dt;
    dtmin[0] = min(dtmin[0], dt);
  }
};

/// space_disc: accumulate edge fluxes into the two adjacent cells' residuals
/// (Table III: gather, scatter). Residual units: dU/dt.
template <class Real>
struct SpaceDisc {
  template <class T>
  void operator()(const T* flux, const T* geom, const T* cgl, const T* cgr, T* resl,
                  T* resr) const {
    const T len = geom[2];
    const T wl = len * cgl[1];  // cgeom[1] = 1/area
    const T wr = len * cgr[1];
    for (int n = 0; n < 3; ++n) {
      resl[n] -= flux[n] * wl;
      resr[n] += flux[n] * wr;
    }
  }
};

/// RK_1: first Heun stage, Utmp = U + dt*res; clears res for stage two.
template <class Real>
struct RK1 {
  template <class T>
  void operator()(const T* u, T* res, T* utmp, const T* dt) const {
    for (int n = 0; n < 3; ++n) {
      utmp[n] = u[n] + dt[0] * res[n];
      res[n] = T(Real(0.0));
    }
    utmp[3] = u[3];  // bathymetry rides along
    res[3] = T(Real(0.0));
  }
};

/// RK_2: second Heun stage, U = (U + Utmp + dt*res)/2; clears res.
template <class Real>
struct RK2 {
  template <class T>
  void operator()(const T* uold, const T* utmp, T* res, T* u, const T* dt) const {
    const T half = T(Real(0.5));
    for (int n = 0; n < 3; ++n) {
      u[n] = half * (uold[n] + utmp[n] + dt[0] * res[n]);
      res[n] = T(Real(0.0));
    }
    u[3] = uold[3];
    res[3] = T(Real(0.0));
  }
};

}  // namespace opv::volna
