#include "apps/volna/volna.hpp"

#include <cmath>
#include <mutex>

#include "core/kernel_info.hpp"

namespace opv::volna {

void register_kernel_info() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = KernelRegistry::instance();
    // Values-per-element counts as in the paper's Table III.
    reg.add({"RK_1", 8, 12, 0, 0, 12, "Direct"});
    reg.add({"RK_2", 12, 8, 0, 0, 16, "Direct"});
    reg.add({"sim_1", 4, 4, 0, 0, 0, "Direct copy"});
    reg.add({"compute_flux", 4, 6, 8, 0, 154, "Gather, direct write"});
    reg.add({"numerical_flux", 1, 4, 6, 0, 9, "Gather, reduction"});
    reg.add({"space_disc", 8, 0, 10, 8, 23, "Gather, scatter"});
  });
}

aligned_vector<double> edge_geometry(const mesh::UnstructuredMesh& m) {
  aligned_vector<double> geom(static_cast<std::size_t>(m.nedges) * 4, 0.0);
  const int k = m.nodes_per_cell;
  auto centroid = [&](idx_t c, double& cx, double& cy) {
    const idx_t n0 = m.cell_nodes[static_cast<std::size_t>(c) * k];
    const double x0 = m.node_xy[2 * static_cast<std::size_t>(n0)];
    const double y0 = m.node_xy[2 * static_cast<std::size_t>(n0) + 1];
    double sx = 0.0, sy = 0.0;
    for (int j = 0; j < k; ++j) {
      const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * k + j];
      sx += m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n)] - x0);
      sy += m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n) + 1] - y0);
    }
    cx = x0 + sx / k;
    cy = y0 + sy / k;
  };
  for (idx_t e = 0; e < m.nedges; ++e) {
    const idx_t n0 = m.edge_nodes[2 * e], n1 = m.edge_nodes[2 * e + 1];
    const double tx = m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n1)] -
                                m.node_xy[2 * static_cast<std::size_t>(n0)]);
    const double ty = m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n1) + 1] -
                                m.node_xy[2 * static_cast<std::size_t>(n0) + 1]);
    const double len = std::hypot(tx, ty);
    double nx = ty / len, ny = -tx / len;
    // Orient the normal from the left cell toward the right cell.
    double clx, cly, crx, cry;
    centroid(m.edge_cells[2 * e], clx, cly);
    centroid(m.edge_cells[2 * e + 1], crx, cry);
    const double dx = m.wrap_dx(crx - clx), dy = m.wrap_dy(cry - cly);
    if (nx * dx + ny * dy < 0.0) {
      nx = -nx;
      ny = -ny;
    }
    geom[4 * static_cast<std::size_t>(e)] = nx;
    geom[4 * static_cast<std::size_t>(e) + 1] = ny;
    geom[4 * static_cast<std::size_t>(e) + 2] = len;
  }
  return geom;
}

aligned_vector<double> cell_geometry(const mesh::UnstructuredMesh& m) {
  OPV_REQUIRE(m.nodes_per_cell == 3, "cell_geometry: triangle meshes only");
  aligned_vector<double> geom(static_cast<std::size_t>(m.ncells) * 2, 0.0);
  for (idx_t c = 0; c < m.ncells; ++c) {
    const idx_t a = m.cell_nodes[3 * static_cast<std::size_t>(c)];
    const idx_t b = m.cell_nodes[3 * static_cast<std::size_t>(c) + 1];
    const idx_t d = m.cell_nodes[3 * static_cast<std::size_t>(c) + 2];
    const double ax = m.node_xy[2 * static_cast<std::size_t>(a)];
    const double ay = m.node_xy[2 * static_cast<std::size_t>(a) + 1];
    const double bx = ax + m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(b)] - ax);
    const double by = ay + m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(b) + 1] - ay);
    const double dx = ax + m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(d)] - ax);
    const double dy = ay + m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(d) + 1] - ay);
    const double area = 0.5 * std::abs((bx - ax) * (dy - ay) - (dx - ax) * (by - ay));
    geom[2 * static_cast<std::size_t>(c)] = area;
    geom[2 * static_cast<std::size_t>(c) + 1] = 1.0 / area;
  }
  return geom;
}

aligned_vector<double> initial_state(const mesh::UnstructuredMesh& m, double depth, double amp,
                                     double width) {
  aligned_vector<double> u(static_cast<std::size_t>(m.ncells) * 4, 0.0);
  const double lx = m.periodic ? m.period_x : 1.0;
  const double ly = m.periodic ? m.period_y : 1.0;
  const double x0 = 0.5 * lx, y0 = 0.5 * ly;
  const double w2 = (width * lx) * (width * lx);
  const int k = m.nodes_per_cell;
  for (idx_t c = 0; c < m.ncells; ++c) {
    // Cell centroid (min-image).
    const idx_t n0 = m.cell_nodes[static_cast<std::size_t>(c) * k];
    const double bx = m.node_xy[2 * static_cast<std::size_t>(n0)];
    const double by = m.node_xy[2 * static_cast<std::size_t>(n0) + 1];
    double sx = 0.0, sy = 0.0;
    for (int j = 0; j < k; ++j) {
      const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * k + j];
      sx += m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n)] - bx);
      sy += m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n) + 1] - by);
    }
    const double cx = bx + sx / k, cy = by + sy / k;
    const double rx = m.wrap_dx(cx - x0), ry = m.wrap_dy(cy - y0);
    const double eta = amp * std::exp(-(rx * rx + ry * ry) / w2);
    u[4 * static_cast<std::size_t>(c)] = depth + eta;  // h
    // hu = hv = 0 (still water), zb = 0 (flat bottom).
  }
  return u;
}

}  // namespace opv::volna
