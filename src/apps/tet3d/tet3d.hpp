// Tet3D application driver: explicit cell-centered finite-volume
// advection-diffusion on a tetrahedral mesh, templated over execution
// context (LocalCtx or dist::DistCtx) and precision — the 3D sibling of
// apps/airfoil. Exercises the full ingest surface: 3- and 4-ary maps over
// cells/faces/nodes, geometry precomputation loops, an indirect-INC
// gradient/flux chain, and a global reduction.
//
//   step: save_u; grad_calc; bgrad_calc; flux_calc; bflux_calc; update_u
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "apps/tet3d/tet3d_kernels.hpp"
#include "core/chain.hpp"
#include "core/op2.hpp"
#include "mesh/tetmesh.hpp"

namespace opv::tet3d {

/// Register the KernelInfo entries for the Tet3D kernels (idempotent).
void register_kernel_info();

// Partitioning uses the full 3D tet centroids (mesh::tet_cell_centroids)
// with ndims == 3, so RCB bisects the true 3D bounding box — an xy
// projection would collapse every z-stratum of the mesh onto one plane and
// produce needlessly long rank boundaries.

/// Gaussian-bump initial condition centered on the node bounding box
/// (deterministic in the mesh geometry alone).
aligned_vector<double> initial_bump(const mesh::TetMesh& m);

/// min over cells of vol / sum-of-face-flux-coefficients — the explicit
/// Euler stability bound for the scheme's advective + diffusive fluxes
/// (computed host-side from the exact face geometry; thin Kuhn tets make
/// spacing-based estimates unsafe).
double stable_dt_bound(const mesh::TetMesh& m, const double vel[3], double kappa);

/// CFL-scaled stable timestep for the standard constants.
template <class Real>
Real stable_dt(const Consts<Real>& c, const mesh::TetMesh& m) {
  const double vel[3] = {double(c.vel[0]), double(c.vel[1]), double(c.vel[2])};
  return Real(double(c.cfl) * stable_dt_bound(m, vel, double(c.kappa)));
}

template <class Real>
aligned_vector<Real> to_real_vec(const aligned_vector<double>& in) {
  aligned_vector<Real> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = static_cast<Real>(in[i]);
  return out;
}

template <class Real, class Ctx>
class Tet3D {
 public:
  /// With chain=true the step executes through one opv::LoopChain over the
  /// six loop handles (local contexts only; distributed contexts keep the
  /// loop-by-loop step, as in Airfoil).
  Tet3D(Ctx& ctx, const mesh::TetMesh& m, bool chain = false)
      : ctx_(ctx), ncells_(m.ncells), chain_(chain) {
    register_kernel_info();
    consts_ = Consts<Real>::standard();
    dt_ = stable_dt(consts_, m);
    part_coords_ = mesh::tet_cell_centroids(m);

    nodes_ = ctx_.decl_set("nodes", m.nnodes);
    cells_ = ctx_.decl_set("cells", m.ncells);
    faces_ = ctx_.decl_set("faces", m.nfaces);
    bfaces_ = ctx_.decl_set("bfaces", m.nbfaces);
    ctx_.set_partition_coords(cells_, part_coords_.data(), 3);

    pcell_ = ctx_.decl_map("pcell", cells_, nodes_, 4, m.cell_nodes);
    pface_ = ctx_.decl_map("pface", faces_, nodes_, 3, m.face_nodes);
    pfcell_ = ctx_.decl_map("pfcell", faces_, cells_, 2, m.face_cells);
    pbface_ = ctx_.decl_map("pbface", bfaces_, nodes_, 3, m.bface_nodes);
    pbfcell_ = ctx_.decl_map("pbfcell", bfaces_, cells_, 1, m.bface_cell);

    x_ = ctx_.template decl_dat<Real, 3>("x", nodes_, to_real_vec<Real>(m.node_xyz));
    u_ = ctx_.template decl_dat<Real, 1>("u", cells_, to_real_vec<Real>(initial_bump(m)));
    uold_ = ctx_.template decl_dat<Real, 1>("uold", cells_);
    grad_ = ctx_.template decl_dat<Real, 3>("grad", cells_);
    res_ = ctx_.template decl_dat<Real, 1>("res", cells_);
    cgeom_ = ctx_.template decl_dat<Real, 4>("cgeom", cells_);
    fgeom_ = ctx_.template decl_dat<Real, 6>("fgeom", faces_);
    bfgeom_ = ctx_.template decl_dat<Real, 6>("bfgeom", bfaces_);
    bound_ = ctx_.template decl_dat<std::int32_t, 1>("bound", bfaces_, m.bface_bound);
    ctx_.finalize();
    init_geometry();
    build_loops();
  }

  // The step closure captures `this` (the rms reduction target).
  Tet3D(const Tet3D&) = delete;
  Tet3D& operator=(const Tet3D&) = delete;

  /// Run niter steps through the persistent handles; records
  /// sqrt(rms/ncells) every rms_every steps.
  void run(int niter, int rms_every = 100) {
    for (int iter = 1; iter <= niter; ++iter) {
      step_();
      last_rms_ = std::sqrt(static_cast<double>(rms_) / ncells_);
      if (rms_every > 0 && iter % rms_every == 0) rms_history_.push_back(last_rms_);
    }
  }

  [[nodiscard]] double last_rms() const { return last_rms_; }
  [[nodiscard]] const std::vector<double>& rms_history() const { return rms_history_; }

  /// Fetch state in global (declaration-order) cell numbering.
  aligned_vector<Real> fetch_u() {
    aligned_vector<Real> out;
    ctx_.fetch(u_, out);
    return out;
  }
  aligned_vector<Real> fetch_grad() {
    aligned_vector<Real> out;
    ctx_.fetch(grad_, out);
    return out;
  }

  [[nodiscard]] idx_t ncells() const { return ncells_; }
  [[nodiscard]] const Consts<Real>& consts() const { return consts_; }
  [[nodiscard]] Real dt() const { return dt_; }

  /// The evolving non-dat state of the time loop — what a checkpoint must
  /// carry beyond the context dats (rms_ is update_u's reduction target;
  /// last_rms_ derives from it). rms_history_ is advisory diagnostics and
  /// not part of the checkpoint contract.
  struct StepGlobals {
    double last_rms = 0.0;
    Real rms = Real(0);
  };
  [[nodiscard]] StepGlobals step_globals() const { return {last_rms_, rms_}; }
  void set_step_globals(const StepGlobals& g) {
    last_rms_ = g.last_rms;
    rms_ = g.rms;
  }

  /// The state dat handle (health scans, e.g. guard::check_finite).
  [[nodiscard]] auto state_dat() { return u_; }

 private:
  Ctx& ctx_;
  idx_t ncells_;
  bool chain_ = false;
  Consts<Real> consts_;
  Real dt_ = Real(0);
  aligned_vector<double> part_coords_;  ///< full 3D tet centroids (ndims == 3)
  std::vector<double> rms_history_;
  double last_rms_ = 0.0;
  Real rms_ = Real(0);  ///< update_u's reduction target, bound into its handle

  typename Ctx::SetHandle nodes_{}, cells_{}, faces_{}, bfaces_{};
  typename Ctx::MapHandle pcell_{}, pface_{}, pfcell_{}, pbface_{}, pbfcell_{};
  typename Ctx::template FixedDatHandle<Real, 3> x_{}, grad_{};
  typename Ctx::template FixedDatHandle<Real, 1> u_{}, uold_{}, res_{};
  typename Ctx::template FixedDatHandle<Real, 4> cgeom_{};
  typename Ctx::template FixedDatHandle<Real, 6> fgeom_{}, bfgeom_{};
  typename Ctx::template FixedDatHandle<std::int32_t, 1> bound_{};

  /// Geometry precomputation: one pass each over cells, faces and boundary
  /// faces at construction, gathering node positions through the 3-/4-ary
  /// maps. Run once; the handles are dropped afterwards. Arities come from
  /// the FixedDat handles (x/grad:3, cgeom:4, fgeom/bfgeom:6, scalars:1).
  void init_geometry() {
    auto cg = ctx_.make_loop(CellGeom<Real>{}, "t3d_cell_geom", cells_,
                             ctx_.template arg<opv::READ>(x_, 0, pcell_),
                             ctx_.template arg<opv::READ>(x_, 1, pcell_),
                             ctx_.template arg<opv::READ>(x_, 2, pcell_),
                             ctx_.template arg<opv::READ>(x_, 3, pcell_),
                             ctx_.template arg<opv::WRITE>(cgeom_));
    auto fg = ctx_.make_loop(FaceGeom<Real>{}, "t3d_face_geom", faces_,
                             ctx_.template arg<opv::READ>(x_, 0, pface_),
                             ctx_.template arg<opv::READ>(x_, 1, pface_),
                             ctx_.template arg<opv::READ>(x_, 2, pface_),
                             ctx_.template arg<opv::WRITE>(fgeom_));
    auto bg = ctx_.make_loop(FaceGeom<Real>{}, "t3d_bface_geom", bfaces_,
                             ctx_.template arg<opv::READ>(x_, 0, pbface_),
                             ctx_.template arg<opv::READ>(x_, 1, pbface_),
                             ctx_.template arg<opv::READ>(x_, 2, pbface_),
                             ctx_.template arg<opv::WRITE>(bfgeom_));
    cg.run();
    fg.run();
    bg.run();
  }

  auto make_loops() {
    return std::make_tuple(
        ctx_.make_loop(SaveU<Real>{}, "t3d_save_u", cells_, ctx_.template arg<opv::READ>(u_),
                       ctx_.template arg<opv::WRITE>(uold_)),
        ctx_.make_loop(GradCalc<Real>{}, "t3d_grad_calc", faces_,
                       ctx_.template arg<opv::READ>(u_, 0, pfcell_),
                       ctx_.template arg<opv::READ>(u_, 1, pfcell_),
                       ctx_.template arg<opv::READ>(cgeom_, 0, pfcell_),
                       ctx_.template arg<opv::READ>(cgeom_, 1, pfcell_),
                       ctx_.template arg<opv::READ>(fgeom_),
                       ctx_.template arg<opv::INC>(grad_, 0, pfcell_),
                       ctx_.template arg<opv::INC>(grad_, 1, pfcell_)),
        ctx_.make_loop(BGradCalc<Real>{consts_}, "t3d_bgrad_calc", bfaces_,
                       ctx_.template arg<opv::READ>(u_, 0, pbfcell_),
                       ctx_.template arg<opv::READ>(cgeom_, 0, pbfcell_),
                       ctx_.template arg<opv::READ>(bfgeom_),
                       ctx_.template arg<opv::READ>(bound_),
                       ctx_.template arg<opv::INC>(grad_, 0, pbfcell_)),
        ctx_.make_loop(FluxCalc<Real>{consts_}, "t3d_flux_calc", faces_,
                       ctx_.template arg<opv::READ>(u_, 0, pfcell_),
                       ctx_.template arg<opv::READ>(u_, 1, pfcell_),
                       ctx_.template arg<opv::READ>(grad_, 0, pfcell_),
                       ctx_.template arg<opv::READ>(grad_, 1, pfcell_),
                       ctx_.template arg<opv::READ>(cgeom_, 0, pfcell_),
                       ctx_.template arg<opv::READ>(cgeom_, 1, pfcell_),
                       ctx_.template arg<opv::READ>(fgeom_),
                       ctx_.template arg<opv::INC>(res_, 0, pfcell_),
                       ctx_.template arg<opv::INC>(res_, 1, pfcell_)),
        ctx_.make_loop(BFluxCalc<Real>{consts_}, "t3d_bflux_calc", bfaces_,
                       ctx_.template arg<opv::READ>(u_, 0, pbfcell_),
                       ctx_.template arg<opv::READ>(grad_, 0, pbfcell_),
                       ctx_.template arg<opv::READ>(cgeom_, 0, pbfcell_),
                       ctx_.template arg<opv::READ>(bfgeom_),
                       ctx_.template arg<opv::READ>(bound_),
                       ctx_.template arg<opv::INC>(res_, 0, pbfcell_)),
        ctx_.make_loop(UpdateU<Real>{dt_}, "t3d_update_u", cells_,
                       ctx_.template arg<opv::READ>(uold_),
                       ctx_.template arg<opv::READ>(cgeom_),
                       ctx_.template arg<opv::WRITE>(u_),
                       ctx_.template arg<opv::RW>(res_),
                       ctx_.template arg<opv::RW>(grad_),
                       ctx_.template arg_gbl<opv::INC>(&rms_, 1)));
  }

  /// Chain mode fuses the whole step into one LoopChain; the rms_ reset
  /// moves to the chain boundary (legal: the INC reduction only adds into
  /// the target, nothing reads rms_ mid-chain).
  void build_loops() {
    auto loops = std::make_shared<decltype(make_loops())>(make_loops());
    if constexpr (requires {
                    std::get<0>(*loops).inner();
                    ctx_.config();
                    ctx_.note_loops_ran();
                  }) {
      if (chain_) {
        ctx_.note_loops_ran();
        auto& [save, grad, bgrad, flux, bflux, upd] = *loops;
        auto step = std::make_shared<LoopChain>("tet3d_step", save.inner(), grad.inner(),
                                                bgrad.inner(), flux.inner(), bflux.inner(),
                                                upd.inner());
        step_ = [this, loops, step] {
          rms_ = Real(0);
          step->run(ctx_.config());
        };
        return;
      }
    }
    step_ = [this, loops] {
      auto& [save, grad, bgrad, flux, bflux, upd] = *loops;
      save.run();
      grad.run();
      bgrad.run();
      flux.run();
      bflux.run();
      rms_ = Real(0);
      upd.run();
    };
  }

  std::function<void()> step_;  ///< one timestep over the handles
};

}  // namespace opv::tet3d
