// Tet3D application driver: explicit cell-centered finite-volume
// advection-diffusion on a tetrahedral mesh, templated over execution
// context (LocalCtx or dist::DistCtx) and precision — the 3D sibling of
// apps/airfoil. Exercises the full ingest surface: 3- and 4-ary maps over
// cells/faces/nodes, geometry precomputation loops, an indirect-INC
// gradient/flux chain, and a global reduction.
//
//   step: save_u; grad_calc; bgrad_calc; flux_calc; bflux_calc; update_u
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "apps/tet3d/tet3d_kernels.hpp"
#include "core/chain.hpp"
#include "core/op2.hpp"
#include "mesh/tetmesh.hpp"

namespace opv::tet3d {

/// Register the KernelInfo entries for the Tet3D kernels (idempotent).
void register_kernel_info();

/// xy-projection of the tet centroids — the partitioner's coordinates
/// (partition_rcb bisects in 2D; a box mesh projects cleanly).
aligned_vector<double> cell_centroids_xy(const mesh::TetMesh& m);

/// Gaussian-bump initial condition centered on the node bounding box
/// (deterministic in the mesh geometry alone).
aligned_vector<double> initial_bump(const mesh::TetMesh& m);

/// min over cells of vol / sum-of-face-flux-coefficients — the explicit
/// Euler stability bound for the scheme's advective + diffusive fluxes
/// (computed host-side from the exact face geometry; thin Kuhn tets make
/// spacing-based estimates unsafe).
double stable_dt_bound(const mesh::TetMesh& m, const double vel[3], double kappa);

/// CFL-scaled stable timestep for the standard constants.
template <class Real>
Real stable_dt(const Consts<Real>& c, const mesh::TetMesh& m) {
  const double vel[3] = {double(c.vel[0]), double(c.vel[1]), double(c.vel[2])};
  return Real(double(c.cfl) * stable_dt_bound(m, vel, double(c.kappa)));
}

template <class Real>
aligned_vector<Real> to_real_vec(const aligned_vector<double>& in) {
  aligned_vector<Real> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = static_cast<Real>(in[i]);
  return out;
}

template <class Real, class Ctx>
class Tet3D {
 public:
  /// With chain=true the step executes through one opv::LoopChain over the
  /// six loop handles (local contexts only; distributed contexts keep the
  /// loop-by-loop step, as in Airfoil).
  Tet3D(Ctx& ctx, const mesh::TetMesh& m, bool chain = false)
      : ctx_(ctx), ncells_(m.ncells), chain_(chain) {
    register_kernel_info();
    consts_ = Consts<Real>::standard();
    dt_ = stable_dt(consts_, m);
    part_xy_ = cell_centroids_xy(m);

    nodes_ = ctx_.decl_set("nodes", m.nnodes);
    cells_ = ctx_.decl_set("cells", m.ncells);
    faces_ = ctx_.decl_set("faces", m.nfaces);
    bfaces_ = ctx_.decl_set("bfaces", m.nbfaces);
    ctx_.set_partition_coords(cells_, part_xy_.data());

    pcell_ = ctx_.decl_map("pcell", cells_, nodes_, 4, m.cell_nodes);
    pface_ = ctx_.decl_map("pface", faces_, nodes_, 3, m.face_nodes);
    pfcell_ = ctx_.decl_map("pfcell", faces_, cells_, 2, m.face_cells);
    pbface_ = ctx_.decl_map("pbface", bfaces_, nodes_, 3, m.bface_nodes);
    pbfcell_ = ctx_.decl_map("pbfcell", bfaces_, cells_, 1, m.bface_cell);

    x_ = ctx_.template decl_dat<Real>("x", nodes_, 3, to_real_vec<Real>(m.node_xyz));
    u_ = ctx_.template decl_dat<Real>("u", cells_, 1, to_real_vec<Real>(initial_bump(m)));
    uold_ = ctx_.template decl_dat<Real>("uold", cells_, 1);
    grad_ = ctx_.template decl_dat<Real>("grad", cells_, 3);
    res_ = ctx_.template decl_dat<Real>("res", cells_, 1);
    cgeom_ = ctx_.template decl_dat<Real>("cgeom", cells_, 4);
    fgeom_ = ctx_.template decl_dat<Real>("fgeom", faces_, 6);
    bfgeom_ = ctx_.template decl_dat<Real>("bfgeom", bfaces_, 6);
    bound_ = ctx_.template decl_dat<std::int32_t>("bound", bfaces_, 1, m.bface_bound);
    ctx_.finalize();
    init_geometry();
    build_loops();
  }

  // The step closure captures `this` (the rms reduction target).
  Tet3D(const Tet3D&) = delete;
  Tet3D& operator=(const Tet3D&) = delete;

  /// Run niter steps through the persistent handles; records
  /// sqrt(rms/ncells) every rms_every steps.
  void run(int niter, int rms_every = 100) {
    for (int iter = 1; iter <= niter; ++iter) {
      step_();
      last_rms_ = std::sqrt(static_cast<double>(rms_) / ncells_);
      if (rms_every > 0 && iter % rms_every == 0) rms_history_.push_back(last_rms_);
    }
  }

  [[nodiscard]] double last_rms() const { return last_rms_; }
  [[nodiscard]] const std::vector<double>& rms_history() const { return rms_history_; }

  /// Fetch state in global (declaration-order) cell numbering.
  aligned_vector<Real> fetch_u() {
    aligned_vector<Real> out;
    ctx_.fetch(u_, out);
    return out;
  }
  aligned_vector<Real> fetch_grad() {
    aligned_vector<Real> out;
    ctx_.fetch(grad_, out);
    return out;
  }

  [[nodiscard]] idx_t ncells() const { return ncells_; }
  [[nodiscard]] const Consts<Real>& consts() const { return consts_; }
  [[nodiscard]] Real dt() const { return dt_; }

 private:
  Ctx& ctx_;
  idx_t ncells_;
  bool chain_ = false;
  Consts<Real> consts_;
  Real dt_ = Real(0);
  aligned_vector<double> part_xy_;
  std::vector<double> rms_history_;
  double last_rms_ = 0.0;
  Real rms_ = Real(0);  ///< update_u's reduction target, bound into its handle

  typename Ctx::SetHandle nodes_{}, cells_{}, faces_{}, bfaces_{};
  typename Ctx::MapHandle pcell_{}, pface_{}, pfcell_{}, pbface_{}, pbfcell_{};
  typename Ctx::template DatHandle<Real> x_{}, u_{}, uold_{}, grad_{}, res_{}, cgeom_{}, fgeom_{},
      bfgeom_{};
  typename Ctx::template DatHandle<std::int32_t> bound_{};

  /// Geometry precomputation: one pass each over cells, faces and boundary
  /// faces at construction, gathering node positions through the 3-/4-ary
  /// maps. Run once; the handles are dropped afterwards.
  void init_geometry() {
    auto cg = ctx_.make_loop(CellGeom<Real>{}, "t3d_cell_geom", cells_,
                             ctx_.template arg<opv::READ, 3>(x_, 0, pcell_),
                             ctx_.template arg<opv::READ, 3>(x_, 1, pcell_),
                             ctx_.template arg<opv::READ, 3>(x_, 2, pcell_),
                             ctx_.template arg<opv::READ, 3>(x_, 3, pcell_),
                             ctx_.template arg<opv::WRITE, 4>(cgeom_));
    auto fg = ctx_.make_loop(FaceGeom<Real>{}, "t3d_face_geom", faces_,
                             ctx_.template arg<opv::READ, 3>(x_, 0, pface_),
                             ctx_.template arg<opv::READ, 3>(x_, 1, pface_),
                             ctx_.template arg<opv::READ, 3>(x_, 2, pface_),
                             ctx_.template arg<opv::WRITE, 6>(fgeom_));
    auto bg = ctx_.make_loop(FaceGeom<Real>{}, "t3d_bface_geom", bfaces_,
                             ctx_.template arg<opv::READ, 3>(x_, 0, pbface_),
                             ctx_.template arg<opv::READ, 3>(x_, 1, pbface_),
                             ctx_.template arg<opv::READ, 3>(x_, 2, pbface_),
                             ctx_.template arg<opv::WRITE, 6>(bfgeom_));
    cg.run();
    fg.run();
    bg.run();
  }

  auto make_loops() {
    return std::make_tuple(
        ctx_.make_loop(SaveU<Real>{}, "t3d_save_u", cells_, ctx_.template arg<opv::READ, 1>(u_),
                       ctx_.template arg<opv::WRITE, 1>(uold_)),
        ctx_.make_loop(GradCalc<Real>{}, "t3d_grad_calc", faces_,
                       ctx_.template arg<opv::READ, 1>(u_, 0, pfcell_),
                       ctx_.template arg<opv::READ, 1>(u_, 1, pfcell_),
                       ctx_.template arg<opv::READ, 4>(cgeom_, 0, pfcell_),
                       ctx_.template arg<opv::READ, 4>(cgeom_, 1, pfcell_),
                       ctx_.template arg<opv::READ, 6>(fgeom_),
                       ctx_.template arg<opv::INC, 3>(grad_, 0, pfcell_),
                       ctx_.template arg<opv::INC, 3>(grad_, 1, pfcell_)),
        ctx_.make_loop(BGradCalc<Real>{consts_}, "t3d_bgrad_calc", bfaces_,
                       ctx_.template arg<opv::READ, 1>(u_, 0, pbfcell_),
                       ctx_.template arg<opv::READ, 4>(cgeom_, 0, pbfcell_),
                       ctx_.template arg<opv::READ, 6>(bfgeom_),
                       ctx_.template arg<opv::READ, 1>(bound_),
                       ctx_.template arg<opv::INC, 3>(grad_, 0, pbfcell_)),
        ctx_.make_loop(FluxCalc<Real>{consts_}, "t3d_flux_calc", faces_,
                       ctx_.template arg<opv::READ, 1>(u_, 0, pfcell_),
                       ctx_.template arg<opv::READ, 1>(u_, 1, pfcell_),
                       ctx_.template arg<opv::READ, 3>(grad_, 0, pfcell_),
                       ctx_.template arg<opv::READ, 3>(grad_, 1, pfcell_),
                       ctx_.template arg<opv::READ, 4>(cgeom_, 0, pfcell_),
                       ctx_.template arg<opv::READ, 4>(cgeom_, 1, pfcell_),
                       ctx_.template arg<opv::READ, 6>(fgeom_),
                       ctx_.template arg<opv::INC, 1>(res_, 0, pfcell_),
                       ctx_.template arg<opv::INC, 1>(res_, 1, pfcell_)),
        ctx_.make_loop(BFluxCalc<Real>{consts_}, "t3d_bflux_calc", bfaces_,
                       ctx_.template arg<opv::READ, 1>(u_, 0, pbfcell_),
                       ctx_.template arg<opv::READ, 3>(grad_, 0, pbfcell_),
                       ctx_.template arg<opv::READ, 4>(cgeom_, 0, pbfcell_),
                       ctx_.template arg<opv::READ, 6>(bfgeom_),
                       ctx_.template arg<opv::READ, 1>(bound_),
                       ctx_.template arg<opv::INC, 1>(res_, 0, pbfcell_)),
        ctx_.make_loop(UpdateU<Real>{dt_}, "t3d_update_u", cells_,
                       ctx_.template arg<opv::READ, 1>(uold_),
                       ctx_.template arg<opv::READ, 4>(cgeom_),
                       ctx_.template arg<opv::WRITE, 1>(u_),
                       ctx_.template arg<opv::RW, 1>(res_),
                       ctx_.template arg<opv::RW, 3>(grad_),
                       ctx_.template arg_gbl<opv::INC>(&rms_, 1)));
  }

  /// Chain mode fuses the whole step into one LoopChain; the rms_ reset
  /// moves to the chain boundary (legal: the INC reduction only adds into
  /// the target, nothing reads rms_ mid-chain).
  void build_loops() {
    auto loops = std::make_shared<decltype(make_loops())>(make_loops());
    if constexpr (requires {
                    std::get<0>(*loops).inner();
                    ctx_.config();
                    ctx_.note_loops_ran();
                  }) {
      if (chain_) {
        ctx_.note_loops_ran();
        auto& [save, grad, bgrad, flux, bflux, upd] = *loops;
        auto step = std::make_shared<LoopChain>("tet3d_step", save.inner(), grad.inner(),
                                                bgrad.inner(), flux.inner(), bflux.inner(),
                                                upd.inner());
        step_ = [this, loops, step] {
          rms_ = Real(0);
          step->run(ctx_.config());
        };
        return;
      }
    }
    step_ = [this, loops] {
      auto& [save, grad, bgrad, flux, bflux, upd] = *loops;
      save.run();
      grad.run();
      bgrad.run();
      flux.run();
      bflux.run();
      rms_ = Real(0);
      upd.run();
    };
  }

  std::function<void()> step_;  ///< one timestep over the handles
};

}  // namespace opv::tet3d
