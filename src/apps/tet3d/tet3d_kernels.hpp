// Kernels of the 3D tetrahedral finite-volume mini-app: cell-centered
// advection-diffusion of a scalar with a Green-Gauss gradient
// reconstruction, second-order upwind advective fluxes and central
// diffusive fluxes. Width-generic functors in the airfoil/volna style:
// instantiated with T = Real they are the scalar kernels, with
// T = simd::Vec<Real,W> the vectorized ones; branches use select().
//
// The app exists to exercise the ingest path end-to-end on a 3D topology
// (cells/faces/nodes with 3- and 4-ary maps) — the numerics are a standard
// explicit FV scheme, not a paper artifact.
#pragma once

#include <cmath>

#include "simd/simd.hpp"

namespace opv::tet3d {

/// Scheme constants: advection velocity, diffusivity, far-field value.
template <class Real>
struct Consts {
  Real vel[3];  ///< uniform advection velocity
  Real kappa;   ///< diffusivity
  Real uinf;    ///< far-field scalar value
  Real cfl;

  static Consts standard() {
    Consts c;
    c.vel[0] = Real(1.0);
    c.vel[1] = Real(0.5);
    c.vel[2] = Real(0.25);
    c.kappa = Real(0.05);
    c.uinf = Real(0.0);
    c.cfl = Real(0.4);
    return c;
  }
};

/// cell_geom: volume + centroid from the four gathered node positions.
/// cg = [vol, cx, cy, cz].
template <class Real>
struct CellGeom {
  template <class T>
  void operator()(const T* x1, const T* x2, const T* x3, const T* x4, T* cg) const {
    OPV_SIMD_MATH_USING;
    const T a0 = x2[0] - x1[0], a1 = x2[1] - x1[1], a2 = x2[2] - x1[2];
    const T b0 = x3[0] - x1[0], b1 = x3[1] - x1[1], b2 = x3[2] - x1[2];
    const T d0 = x4[0] - x1[0], d1 = x4[1] - x1[1], d2 = x4[2] - x1[2];
    const T det =
        a0 * (b1 * d2 - b2 * d1) - a1 * (b0 * d2 - b2 * d0) + a2 * (b0 * d1 - b1 * d0);
    cg[0] = abs(det) * T(Real(1.0 / 6.0));
    cg[1] = (x1[0] + x2[0] + x3[0] + x4[0]) * T(Real(0.25));
    cg[2] = (x1[1] + x2[1] + x3[1] + x4[1]) * T(Real(0.25));
    cg[3] = (x1[2] + x2[2] + x3[2] + x4[2]) * T(Real(0.25));
  }
};

/// face_geom: area-weighted normal (pointing from the face's first cell to
/// its second — the face node order guarantees the winding) and centroid
/// from the three gathered node positions. fg = [Sx, Sy, Sz, fx, fy, fz].
template <class Real>
struct FaceGeom {
  template <class T>
  void operator()(const T* x1, const T* x2, const T* x3, T* fg) const {
    const T u0 = x2[0] - x1[0], u1 = x2[1] - x1[1], u2 = x2[2] - x1[2];
    const T v0 = x3[0] - x1[0], v1 = x3[1] - x1[1], v2 = x3[2] - x1[2];
    fg[0] = (u1 * v2 - u2 * v1) * T(Real(0.5));
    fg[1] = (u2 * v0 - u0 * v2) * T(Real(0.5));
    fg[2] = (u0 * v1 - u1 * v0) * T(Real(0.5));
    const T third = T(Real(1.0 / 3.0));
    fg[3] = (x1[0] + x2[0] + x3[0]) * third;
    fg[4] = (x1[1] + x2[1] + x3[1]) * third;
    fg[5] = (x1[2] + x2[2] + x3[2]) * third;
  }
};

/// grad_calc: Green-Gauss gradient accumulation over interior faces.
/// The face value is the arithmetic mean of the two cell values; each cell
/// receives uf * S / vol with the sign of its outward normal.
template <class Real>
struct GradCalc {
  template <class T>
  void operator()(const T* u1, const T* u2, const T* cg1, const T* cg2, const T* fg, T* g1,
                  T* g2) const {
    const T uf = (u1[0] + u2[0]) * T(Real(0.5));
    const T w1 = uf / cg1[0];
    const T w2 = uf / cg2[0];
    for (int k = 0; k < 3; ++k) {
      g1[k] += w1 * fg[k];
      g2[k] -= w2 * fg[k];
    }
  }
};

/// bgrad_calc: boundary closure of the Green-Gauss loop. Walls use the
/// cell value (zero normal gradient), the far field the free-stream value —
/// written as a select() on the lane-converted bound id.
template <class Real>
struct BGradCalc {
  Consts<Real> c;
  static constexpr std::int32_t kWall = 2;  // mesh::kBoundWall

  template <class T, class TI>
  void operator()(const T* u1, const T* cg1, const T* fg, const TI* bound, T* g1) const {
    OPV_SIMD_MATH_USING;
    const auto is_wall = (to_real<T>(bound[0]) == T(Real(kWall)));
    const T ub = select(is_wall, u1[0], T(c.uinf));
    const T w = ub / cg1[0];
    for (int k = 0; k < 3; ++k) g1[k] += w * fg[k];
  }
};

/// flux_calc: interior face flux. Advective part is second-order upwind
/// (cell value extrapolated to the face centroid with the reconstructed
/// gradient, upwind side picked by the sign of vel.S); diffusive part is
/// central with the over-relaxed |S|^2/(S.d) coefficient.
template <class Real>
struct FluxCalc {
  Consts<Real> c;

  template <class T>
  void operator()(const T* u1, const T* u2, const T* g1, const T* g2, const T* cg1, const T* cg2,
                  const T* fg, T* r1, T* r2) const {
    OPV_SIMD_MATH_USING;
    const T vn = T(c.vel[0]) * fg[0] + T(c.vel[1]) * fg[1] + T(c.vel[2]) * fg[2];
    const T uL = u1[0] + g1[0] * (fg[3] - cg1[1]) + g1[1] * (fg[4] - cg1[2]) +
                 g1[2] * (fg[5] - cg1[3]);
    const T uR = u2[0] + g2[0] * (fg[3] - cg2[1]) + g2[1] * (fg[4] - cg2[2]) +
                 g2[2] * (fg[5] - cg2[3]);
    const T adv = vn * select(vn > T(Real(0.0)), uL, uR);

    const T d0 = cg2[1] - cg1[1], d1 = cg2[2] - cg1[2], d2 = cg2[3] - cg1[3];
    const T s2 = fg[0] * fg[0] + fg[1] * fg[1] + fg[2] * fg[2];
    const T sd = fg[0] * d0 + fg[1] * d1 + fg[2] * d2;
    const T dif = T(c.kappa) * (u2[0] - u1[0]) * s2 / sd;

    const T f = adv - dif;
    r1[0] += f;
    r2[0] -= f;
  }
};

/// bflux_calc: boundary face flux. Walls are impermeable and adiabatic
/// (zero flux); the far field sees upwind advection against uinf plus the
/// diffusive exchange with the free stream.
template <class Real>
struct BFluxCalc {
  Consts<Real> c;
  static constexpr std::int32_t kWall = 2;  // mesh::kBoundWall

  template <class T, class TI>
  void operator()(const T* u1, const T* g1, const T* cg1, const T* fg, const TI* bound,
                  T* r1) const {
    OPV_SIMD_MATH_USING;
    const T vn = T(c.vel[0]) * fg[0] + T(c.vel[1]) * fg[1] + T(c.vel[2]) * fg[2];
    const T uL = u1[0] + g1[0] * (fg[3] - cg1[1]) + g1[1] * (fg[4] - cg1[2]) +
                 g1[2] * (fg[5] - cg1[3]);
    const T adv = vn * select(vn > T(Real(0.0)), uL, T(c.uinf));

    const T d0 = fg[3] - cg1[1], d1 = fg[4] - cg1[2], d2 = fg[5] - cg1[3];
    const T s2 = fg[0] * fg[0] + fg[1] * fg[1] + fg[2] * fg[2];
    const T sd = fg[0] * d0 + fg[1] * d1 + fg[2] * d2;
    const T dif = T(c.kappa) * (T(c.uinf) - u1[0]) * s2 / sd;

    const auto is_wall = (to_real<T>(bound[0]) == T(Real(kWall)));
    r1[0] += select(is_wall, T(Real(0.0)), adv - dif);
  }
};

/// save_u: direct copy of the scalar state.
template <class Real>
struct SaveU {
  template <class T>
  void operator()(const T* u, T* uold) const {
    uold[0] = u[0];
  }
};

/// update_u: explicit Euler update, residual and gradient reset, global
/// RMS reduction. dt is fixed at construction from the CFL bound.
template <class Real>
struct UpdateU {
  Real dt;

  template <class T>
  void operator()(const T* uold, const T* cg, T* u, T* res, T* grad, T* rms) const {
    const T del = (T(dt) / cg[0]) * res[0];
    u[0] = uold[0] - del;
    res[0] = T(Real(0.0));
    for (int k = 0; k < 3; ++k) grad[k] = T(Real(0.0));
    rms[0] += del * del;
  }
};

}  // namespace opv::tet3d
