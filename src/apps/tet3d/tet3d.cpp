#include "apps/tet3d/tet3d.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

#include "common/error.hpp"
#include "core/kernel_info.hpp"

namespace opv::tet3d {

void register_kernel_info() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = KernelRegistry::instance();
    // Values-per-element counts in the Table II convention: useful payload
    // only, mapping tables excluded, indirect values counted once.
    reg.add({"t3d_cell_geom", 0, 4, 12, 0, 23, "Gather, direct write"});
    reg.add({"t3d_face_geom", 0, 6, 9, 0, 24, "Gather, direct write"});
    reg.add({"t3d_bface_geom", 0, 6, 9, 0, 24, "Boundary"});
    reg.add({"t3d_save_u", 1, 1, 0, 0, 1, "Direct copy"});
    reg.add({"t3d_grad_calc", 6, 0, 16, 6, 17, "Gather, colored scatter"});
    reg.add({"t3d_bgrad_calc", 7, 0, 11, 3, 9, "Boundary"});
    reg.add({"t3d_flux_calc", 6, 0, 24, 2, 46, "Gather, colored scatter"});
    reg.add({"t3d_bflux_calc", 7, 0, 15, 1, 31, "Boundary"});
    reg.add({"t3d_update_u", 6, 6, 0, 0, 9, "Direct, reduction"});
  });
}

double stable_dt_bound(const mesh::TetMesh& m, const double vel[3], double kappa) {
  const aligned_vector<double> cent = mesh::tet_cell_centroids(m);
  std::vector<double> coef(static_cast<std::size_t>(m.ncells), 0.0);

  // Flux coefficient of one face with area normal S and cell-to-face (or
  // cell-to-cell) vector d: |vel.S| advective + kappa*|S|^2/(S.d) diffusive
  // (the same over-relaxed coefficient the flux kernels use).
  const auto face_coef = [&](const idx_t* n, const double* d) {
    const double* a = &m.node_xyz[static_cast<std::size_t>(n[0]) * 3];
    const double* b = &m.node_xyz[static_cast<std::size_t>(n[1]) * 3];
    const double* c = &m.node_xyz[static_cast<std::size_t>(n[2]) * 3];
    const double u0 = b[0] - a[0], u1 = b[1] - a[1], u2 = b[2] - a[2];
    const double v0 = c[0] - a[0], v1 = c[1] - a[1], v2 = c[2] - a[2];
    const double S[3] = {0.5 * (u1 * v2 - u2 * v1), 0.5 * (u2 * v0 - u0 * v2),
                         0.5 * (u0 * v1 - u1 * v0)};
    const double vn = vel[0] * S[0] + vel[1] * S[1] + vel[2] * S[2];
    const double s2 = S[0] * S[0] + S[1] * S[1] + S[2] * S[2];
    const double sd = std::abs(S[0] * d[0] + S[1] * d[1] + S[2] * d[2]);
    return std::abs(vn) + (sd > 0.0 ? kappa * s2 / sd : 0.0);
  };

  for (idx_t f = 0; f < m.nfaces; ++f) {
    const idx_t c0 = m.face_cells[2 * static_cast<std::size_t>(f)];
    const idx_t c1 = m.face_cells[2 * static_cast<std::size_t>(f) + 1];
    const double d[3] = {cent[3 * static_cast<std::size_t>(c1)] - cent[3 * static_cast<std::size_t>(c0)],
                         cent[3 * static_cast<std::size_t>(c1) + 1] - cent[3 * static_cast<std::size_t>(c0) + 1],
                         cent[3 * static_cast<std::size_t>(c1) + 2] - cent[3 * static_cast<std::size_t>(c0) + 2]};
    const double co = face_coef(&m.face_nodes[static_cast<std::size_t>(f) * 3], d);
    coef[static_cast<std::size_t>(c0)] += co;
    coef[static_cast<std::size_t>(c1)] += co;
  }
  for (idx_t b = 0; b < m.nbfaces; ++b) {
    const idx_t* n = &m.bface_nodes[static_cast<std::size_t>(b) * 3];
    const idx_t c = m.bface_cell[b];
    double xf[3] = {0, 0, 0};
    for (int k = 0; k < 3; ++k)
      for (int j = 0; j < 3; ++j)
        xf[j] += m.node_xyz[static_cast<std::size_t>(n[k]) * 3 + j] / 3.0;
    const double d[3] = {xf[0] - cent[3 * static_cast<std::size_t>(c)],
                         xf[1] - cent[3 * static_cast<std::size_t>(c) + 1],
                         xf[2] - cent[3 * static_cast<std::size_t>(c) + 2]};
    coef[static_cast<std::size_t>(c)] += face_coef(n, d);
  }

  double dt = std::numeric_limits<double>::infinity();
  for (idx_t c = 0; c < m.ncells; ++c)
    if (coef[static_cast<std::size_t>(c)] > 0.0)
      dt = std::min(dt, std::abs(m.cell_volume(c)) / coef[static_cast<std::size_t>(c)]);
  OPV_REQUIRE(std::isfinite(dt), "stable_dt_bound: no faces in the mesh");
  return dt;
}

aligned_vector<double> initial_bump(const mesh::TetMesh& m) {
  double lo[3] = {0, 0, 0}, hi[3] = {0, 0, 0};
  for (int k = 0; k < 3; ++k) {
    lo[k] = hi[k] = m.nnodes > 0 ? m.node_xyz[k] : 0.0;
    for (idx_t n = 1; n < m.nnodes; ++n) {
      lo[k] = std::min(lo[k], m.node_xyz[static_cast<std::size_t>(n) * 3 + k]);
      hi[k] = std::max(hi[k], m.node_xyz[static_cast<std::size_t>(n) * 3 + k]);
    }
  }
  const double cx = 0.5 * (lo[0] + hi[0]);
  const double cy = 0.5 * (lo[1] + hi[1]);
  const double cz = 0.5 * (lo[2] + hi[2]);
  const double dx = hi[0] - lo[0], dy = hi[1] - lo[1], dz = hi[2] - lo[2];
  const double diag2 = dx * dx + dy * dy + dz * dz;
  const double sigma2 = diag2 > 0.0 ? 0.0225 * diag2 : 1.0;  // sigma = 0.15*diag

  const aligned_vector<double> c3 = mesh::tet_cell_centroids(m);
  aligned_vector<double> u(static_cast<std::size_t>(m.ncells));
  for (idx_t c = 0; c < m.ncells; ++c) {
    const double rx = c3[3 * static_cast<std::size_t>(c)] - cx;
    const double ry = c3[3 * static_cast<std::size_t>(c) + 1] - cy;
    const double rz = c3[3 * static_cast<std::size_t>(c) + 2] - cz;
    u[static_cast<std::size_t>(c)] = std::exp(-(rx * rx + ry * ry + rz * rz) / (2.0 * sigma2));
  }
  return u;
}

}  // namespace opv::tet3d
