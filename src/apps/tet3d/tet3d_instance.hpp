// Tet3D wrapped as an ensemble instance — the 3D sibling of
// apps/volna/hazard.hpp's HazardInstance, used by the resilience tests and
// benches to prove checkpoint/restore works for a second app with a
// different dat roster (int32 bound dat, 3-/4-/6-wide FixedDats, a global
// reduction) rather than being tuned to Volna's layout.
//
// Checkpointable contract: checkpoint() = LocalCtx::snapshot (every dat in
// declaration-order AoS bytes) + the step globals (the rms reduction target
// and its derived last value); restore + replay is bitwise-identical on Seq.
// step() runs with rms_every=0 so replayed steps cannot duplicate
// rms_history entries.
#pragma once

#include <memory>

#include "apps/tet3d/tet3d.hpp"
#include "core/context.hpp"
#include "core/guard.hpp"
#include "serve/ensemble.hpp"

namespace opv::tet3d {

class Tet3DInstance final : public serve::Checkpointable {
 public:
  Tet3DInstance(const mesh::TetMesh& m, const ExecConfig& cfg, bool chain = false) : ctx_(cfg) {
    app_ = std::make_unique<Tet3D<double, LocalCtx>>(ctx_, m, chain);
  }

  void step() override { app_->run(1, /*rms_every=*/0); }

  [[nodiscard]] bool healthy() override { return guard::check_finite(*app_->state_dat()); }

  [[nodiscard]] Checkpoint checkpoint() override {
    Checkpoint c;
    ctx_.snapshot(c);
    const auto g = app_->step_globals();
    ByteWriter w;
    w.put<double>(g.last_rms);
    w.put<double>(g.rms);
    c.add("globals/tet3d", w.take());
    return c;
  }

  void restore(const Checkpoint& c) override {
    ctx_.restore(c);
    const Checkpoint::Section* s = c.find("globals/tet3d");
    OPV_REQUIRE(s != nullptr, "Tet3DInstance::restore: checkpoint lacks globals/tet3d section");
    ByteReader r(s->bytes, "globals/tet3d");
    Tet3D<double, LocalCtx>::StepGlobals g;
    g.last_rms = r.get<double>();
    g.rms = r.get<double>();
    app_->set_step_globals(g);
  }

  [[nodiscard]] double last_rms() const { return app_->last_rms(); }
  [[nodiscard]] aligned_vector<double> state() { return app_->fetch_u(); }
  [[nodiscard]] Tet3D<double, LocalCtx>& app() { return *app_; }

 private:
  LocalCtx ctx_;  ///< declared before app_: the driver pins handles into it
  std::unique_ptr<Tet3D<double, LocalCtx>> app_;
};

/// Instance factory over one shared tet mesh (every instance runs the same
/// scenario — Tet3D's initial condition is deterministic in the mesh).
inline serve::InstanceFactory tet3d_instance_factory(const mesh::TetMesh& m, ExecConfig cfg,
                                                     bool chain = false) {
  auto mesh = std::make_shared<mesh::TetMesh>(m);
  return [mesh, cfg, chain](int) -> std::unique_ptr<serve::Instance> {
    return std::make_unique<Tet3DInstance>(*mesh, cfg, chain);
  };
}

}  // namespace opv::tet3d
