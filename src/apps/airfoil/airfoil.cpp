#include "apps/airfoil/airfoil.hpp"

#include <mutex>

#include "core/kernel_info.hpp"

namespace opv::airfoil {

void register_kernel_info() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = KernelRegistry::instance();
    // Values-per-element counts as in the paper's Table II (useful payload
    // only, mapping tables excluded, indirect values counted once).
    reg.add({"save_soln", 4, 4, 0, 0, 4, "Direct copy"});
    reg.add({"adt_calc", 4, 1, 8, 0, 64, "Gather, direct write"});
    reg.add({"res_calc", 0, 0, 22, 8, 73, "Gather, colored scatter"});
    reg.add({"bres_calc", 1, 0, 13, 4, 73, "Boundary"});
    reg.add({"update", 9, 8, 0, 0, 17, "Direct, reduction"});
  });
}

aligned_vector<double> cell_centroids(const mesh::UnstructuredMesh& m) {
  const int k = m.nodes_per_cell;
  aligned_vector<double> cent(static_cast<std::size_t>(m.ncells) * 2);
  for (idx_t c = 0; c < m.ncells; ++c) {
    double sx = 0.0, sy = 0.0;
    // Periodic meshes: average offsets relative to the first node so the
    // centroid is not smeared across the wrap seam.
    const idx_t n0 = m.cell_nodes[static_cast<std::size_t>(c) * k];
    const double x0 = m.node_xy[2 * static_cast<std::size_t>(n0)];
    const double y0 = m.node_xy[2 * static_cast<std::size_t>(n0) + 1];
    for (int j = 0; j < k; ++j) {
      const idx_t n = m.cell_nodes[static_cast<std::size_t>(c) * k + j];
      sx += m.wrap_dx(m.node_xy[2 * static_cast<std::size_t>(n)] - x0);
      sy += m.wrap_dy(m.node_xy[2 * static_cast<std::size_t>(n) + 1] - y0);
    }
    cent[2 * static_cast<std::size_t>(c)] = x0 + sx / k;
    cent[2 * static_cast<std::size_t>(c) + 1] = y0 + sy / k;
  }
  return cent;
}

}  // namespace opv::airfoil
