// Airfoil application driver, templated over execution context (LocalCtx or
// dist::DistCtx) and precision. This is the code a user writes against the
// opvec API — equivalent to OP2's airfoil.cpp main program.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "apps/airfoil/airfoil_kernels.hpp"
#include "core/chain.hpp"
#include "core/op2.hpp"
#include "mesh/mesh.hpp"

namespace opv::airfoil {

/// Register the Table II KernelInfo entries (idempotent).
void register_kernel_info();

/// Convert mesh double-precision node coordinates to the app precision.
template <class Real>
aligned_vector<Real> to_real_vec(const aligned_vector<double>& in) {
  aligned_vector<Real> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = static_cast<Real>(in[i]);
  return out;
}

/// Cell centroids (used as the partitioner's coordinates).
aligned_vector<double> cell_centroids(const mesh::UnstructuredMesh& m);

/// The Airfoil application: declares the mesh sets/maps/dats through the
/// context and runs the OP2 reference time loop
///   iter { save_soln; 2x { adt_calc; res_calc; bres_calc; update } }.
template <class Real, class Ctx>
class Airfoil {
 public:
  /// With chain=true the step executes through opv::LoopChain handles
  /// (cross-loop sparse tiling, core/chain.hpp) instead of loop-by-loop —
  /// supported on local contexts; distributed contexts ignore the flag and
  /// keep the loop-by-loop step.
  Airfoil(Ctx& ctx, const mesh::UnstructuredMesh& m, bool chain = false)
      : ctx_(ctx), ncells_(m.ncells), chain_(chain) {
    register_kernel_info();
    consts_ = Consts<Real>::standard();
    centroids_ = cell_centroids(m);

    nodes_ = ctx_.decl_set("nodes", m.nnodes);
    cells_ = ctx_.decl_set("cells", m.ncells);
    edges_ = ctx_.decl_set("edges", m.nedges);
    bedges_ = ctx_.decl_set("bedges", m.nbedges);
    ctx_.set_partition_coords(cells_, centroids_.data());

    pedge_ = ctx_.decl_map("pedge", edges_, nodes_, 2, m.edge_nodes);
    pecell_ = ctx_.decl_map("pecell", edges_, cells_, 2, m.edge_cells);
    pcell_ = ctx_.decl_map("pcell", cells_, nodes_, 4, m.cell_nodes);
    pbedge_ = ctx_.decl_map("pbedge", bedges_, nodes_, 2, m.bedge_nodes);
    pbecell_ = ctx_.decl_map("pbecell", bedges_, cells_, 1, m.bedge_cell);

    x_ = ctx_.template decl_dat<Real, 2>("x", nodes_, to_real_vec<Real>(m.node_xy));
    aligned_vector<Real> q0(static_cast<std::size_t>(m.ncells) * 4);
    for (idx_t c = 0; c < m.ncells; ++c)
      for (int n = 0; n < 4; ++n) q0[static_cast<std::size_t>(c) * 4 + n] = consts_.qinf[n];
    q_ = ctx_.template decl_dat<Real, 4>("q", cells_, q0);
    qold_ = ctx_.template decl_dat<Real, 4>("qold", cells_);
    adt_ = ctx_.template decl_dat<Real, 1>("adt", cells_);
    res_ = ctx_.template decl_dat<Real, 4>("res", cells_);
    bound_ = ctx_.template decl_dat<std::int32_t, 1>("bound", bedges_, m.bedge_bound);
    ctx_.finalize();
    build_loops();
  }

  // The step closure captures `this` (the rms reduction target).
  Airfoil(const Airfoil&) = delete;
  Airfoil& operator=(const Airfoil&) = delete;

  /// Run niter outer iterations; records sqrt(rms/ncells) every rms_every.
  /// Each iteration runs the persistent loop handles built at construction
  /// — no per-call argument prep, plan lookup or (distributed) halo-plan
  /// derivation (ROADMAP "driver migration to handles").
  void run(int niter, int rms_every = 100) {
    for (int iter = 1; iter <= niter; ++iter) {
      step_();
      last_rms_ = std::sqrt(static_cast<double>(rms_) / ncells_);
      if (rms_every > 0 && iter % rms_every == 0) rms_history_.push_back(last_rms_);
    }
  }

  /// Residual after the most recent iteration: sqrt(rms/ncells).
  [[nodiscard]] double last_rms() const { return last_rms_; }

  /// Residual history (one entry per rms_every iterations).
  [[nodiscard]] const std::vector<double>& rms_history() const { return rms_history_; }

  /// Fetch the state vector in global cell order (for verification).
  aligned_vector<Real> fetch_q() {
    aligned_vector<Real> out;
    ctx_.fetch(q_, out);
    return out;
  }
  aligned_vector<Real> fetch_res() {
    aligned_vector<Real> out;
    ctx_.fetch(res_, out);
    return out;
  }

  [[nodiscard]] idx_t ncells() const { return ncells_; }
  [[nodiscard]] const Consts<Real>& consts() const { return consts_; }

 private:
  Ctx& ctx_;
  idx_t ncells_;
  bool chain_ = false;
  Consts<Real> consts_;
  aligned_vector<double> centroids_;
  std::vector<double> rms_history_;
  double last_rms_ = 0.0;
  Real rms_ = Real(0);  ///< update's reduction target, bound into its handle

  typename Ctx::SetHandle nodes_{}, cells_{}, edges_{}, bedges_{};
  typename Ctx::MapHandle pedge_{}, pecell_{}, pcell_{}, pbedge_{}, pbecell_{};
  typename Ctx::template FixedDatHandle<Real, 2> x_{};
  typename Ctx::template FixedDatHandle<Real, 4> q_{}, qold_{}, res_{};
  typename Ctx::template FixedDatHandle<Real, 1> adt_{};
  typename Ctx::template FixedDatHandle<std::int32_t, 1> bound_{};

  /// One persistent handle per kernel call site. Every dat is declared with
  /// its compile-time arity (decl_dat<T, N>, FixedDat handles), so each
  /// ctx.arg<mode>(...) carries the arity from the handle's type and the
  /// engine's gather/scatter paths fully unroll per argument at
  /// instantiation time (docs/API.md, "compile-time Dim") — with nothing to
  /// spell, and nothing to get wrong, at the loop sites.
  auto make_loops() {
    return std::make_tuple(
        ctx_.make_loop(SaveSoln<Real>{}, "save_soln", cells_,
                       ctx_.template arg<opv::READ>(q_),
                       ctx_.template arg<opv::WRITE>(qold_)),
        ctx_.make_loop(AdtCalc<Real>{consts_}, "adt_calc", cells_,
                       ctx_.template arg<opv::READ>(x_, 0, pcell_),
                       ctx_.template arg<opv::READ>(x_, 1, pcell_),
                       ctx_.template arg<opv::READ>(x_, 2, pcell_),
                       ctx_.template arg<opv::READ>(x_, 3, pcell_),
                       ctx_.template arg<opv::READ>(q_),
                       ctx_.template arg<opv::WRITE>(adt_)),
        ctx_.make_loop(ResCalc<Real>{consts_}, "res_calc", edges_,
                       ctx_.template arg<opv::READ>(x_, 0, pedge_),
                       ctx_.template arg<opv::READ>(x_, 1, pedge_),
                       ctx_.template arg<opv::READ>(q_, 0, pecell_),
                       ctx_.template arg<opv::READ>(q_, 1, pecell_),
                       ctx_.template arg<opv::READ>(adt_, 0, pecell_),
                       ctx_.template arg<opv::READ>(adt_, 1, pecell_),
                       ctx_.template arg<opv::INC>(res_, 0, pecell_),
                       ctx_.template arg<opv::INC>(res_, 1, pecell_)),
        ctx_.make_loop(BresCalc<Real>{consts_}, "bres_calc", bedges_,
                       ctx_.template arg<opv::READ>(x_, 0, pbedge_),
                       ctx_.template arg<opv::READ>(x_, 1, pbedge_),
                       ctx_.template arg<opv::READ>(q_, 0, pbecell_),
                       ctx_.template arg<opv::READ>(adt_, 0, pbecell_),
                       ctx_.template arg<opv::INC>(res_, 0, pbecell_),
                       ctx_.template arg<opv::READ>(bound_)),
        ctx_.make_loop(Update<Real>{}, "update", cells_,
                       ctx_.template arg<opv::READ>(qold_),
                       ctx_.template arg<opv::WRITE>(q_),
                       ctx_.template arg<opv::RW>(res_),
                       ctx_.template arg<opv::READ>(adt_),
                       ctx_.template arg_gbl<opv::INC>(&rms_, 1)));
  }

  /// Pin the handles in a type-erased per-iteration step so the driver
  /// never has to spell the handle types (they depend on the context).
  ///
  /// Chain mode fuses each RK sub-iteration into one LoopChain (the rms_
  /// reset moves to the chain boundary — legal because the INC reduction
  /// only adds into the target, and nothing else reads rms_ mid-chain):
  ///   k=0: rms_=0; [save_soln adt_calc res_calc bres_calc update]
  ///   k=1: rms_=0; [          adt_calc res_calc bres_calc update]
  void build_loops() {
    auto loops = std::make_shared<decltype(make_loops())>(make_loops());
    if constexpr (requires {
                    std::get<0>(*loops).inner();
                    ctx_.config();
                    ctx_.note_loops_ran();
                  }) {
      if (chain_) {
        // Chains drive the engine handles directly, bypassing CtxLoop::run's
        // bookkeeping — close the renumbering window explicitly.
        ctx_.note_loops_ran();
        auto& [save, adt, res, bres, upd] = *loops;
        auto first = std::make_shared<LoopChain>("airfoil_step0", save.inner(), adt.inner(),
                                                 res.inner(), bres.inner(), upd.inner());
        auto second = std::make_shared<LoopChain>("airfoil_step1", adt.inner(), res.inner(),
                                                  bres.inner(), upd.inner());
        step_ = [this, loops, first, second] {
          rms_ = Real(0);
          first->run(ctx_.config());
          rms_ = Real(0);
          second->run(ctx_.config());
        };
        return;
      }
    }
    step_ = [this, loops] {
      auto& [save, adt, res, bres, upd] = *loops;
      save.run();
      for (int k = 0; k < 2; ++k) {
        adt.run();
        res.run();
        bres.run();
        rms_ = Real(0);
        upd.run();
      }
    };
  }

  std::function<void()> step_;  ///< one outer iteration over the handles
};

}  // namespace opv::airfoil
