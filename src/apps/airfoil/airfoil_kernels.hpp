// The five Airfoil kernels (paper Table II), written once as width-generic
// functors: instantiated with T = Real they are the scalar kernels OP2
// generates for MPI/OpenMP; with T = simd::Vec<Real,W> they are the
// vectorized kernels of Fig. 3b. Branches use select() — the restriction
// the paper describes for the intrinsics backend.
//
// The numerics follow the OP2 Airfoil reference: a 2D inviscid
// finite-volume scheme with Lax-Friedrichs-style artificial dissipation,
// local timestepping (adt), far-field and slip-wall boundaries.
#pragma once

#include <cmath>

#include "simd/simd.hpp"

namespace opv::airfoil {

/// Flow constants (OP2 airfoil.cpp). qinf is the free-stream state.
template <class Real>
struct Consts {
  Real gam, gm1, cfl, eps, mach, alpha;
  Real qinf[4];

  static Consts standard() {
    Consts c;
    c.gam = Real(1.4);
    c.gm1 = Real(0.4);
    c.cfl = Real(0.9);
    c.eps = Real(0.05);
    c.mach = Real(0.4);
    c.alpha = Real(3.0 * std::atan(1.0) / 45.0);
    const Real p = Real(1.0), r = Real(1.0);
    const Real u = Real(std::sqrt(double(c.gam) * double(p) / double(r)) * double(c.mach));
    const Real e = p / (r * c.gm1) + Real(0.5) * u * u;
    c.qinf[0] = r;
    c.qinf[1] = r * u;
    c.qinf[2] = Real(0.0);
    c.qinf[3] = r * e;
    return c;
  }
};

/// save_soln: direct copy of the state vector (Table II: 4R/4W, 4 FLOP).
template <class Real>
struct SaveSoln {
  template <class T>
  void operator()(const T* q, T* qold) const {
    for (int n = 0; n < 4; ++n) qold[n] = q[n];
  }
};

/// adt_calc: local timestep from cell geometry and acoustic speed
/// (Table II: gather 8, direct 4R/1W, 64 FLOP incl. sqrt).
template <class Real>
struct AdtCalc {
  Consts<Real> c;

  template <class T>
  void operator()(const T* x1, const T* x2, const T* x3, const T* x4, const T* q, T* adt) const {
    OPV_SIMD_MATH_USING;
    const T ri = T(Real(1.0)) / q[0];
    const T u = ri * q[1];
    const T v = ri * q[2];
    const T cs = sqrt(T(c.gam) * T(c.gm1) * (ri * q[3] - T(Real(0.5)) * (u * u + v * v)));

    T dx = x2[0] - x1[0];
    T dy = x2[1] - x1[1];
    T a = abs(u * dy - v * dx) + cs * sqrt(dx * dx + dy * dy);

    dx = x3[0] - x2[0];
    dy = x3[1] - x2[1];
    a = a + abs(u * dy - v * dx) + cs * sqrt(dx * dx + dy * dy);

    dx = x4[0] - x3[0];
    dy = x4[1] - x3[1];
    a = a + abs(u * dy - v * dx) + cs * sqrt(dx * dx + dy * dy);

    dx = x1[0] - x4[0];
    dy = x1[1] - x4[1];
    a = a + abs(u * dy - v * dx) + cs * sqrt(dx * dx + dy * dy);

    adt[0] = a / T(c.cfl);
  }
};

/// res_calc: edge flux with artificial dissipation, incrementing both
/// adjacent cells (Table II: gather 22, colored scatter 8, 73 FLOP).
template <class Real>
struct ResCalc {
  Consts<Real> c;

  template <class T>
  void operator()(const T* x1, const T* x2, const T* q1, const T* q2, const T* adt1,
                  const T* adt2, T* res1, T* res2) const {
    OPV_SIMD_MATH_USING;
    const T dx = x1[0] - x2[0];
    const T dy = x1[1] - x2[1];

    T ri = T(Real(1.0)) / q1[0];
    const T p1 = T(c.gm1) * (q1[3] - T(Real(0.5)) * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
    const T vol1 = ri * (q1[1] * dy - q1[2] * dx);

    ri = T(Real(1.0)) / q2[0];
    const T p2 = T(c.gm1) * (q2[3] - T(Real(0.5)) * ri * (q2[1] * q2[1] + q2[2] * q2[2]));
    const T vol2 = ri * (q2[1] * dy - q2[2] * dx);

    const T mu = T(Real(0.5)) * (adt1[0] + adt2[0]) * T(c.eps);

    T f = T(Real(0.5)) * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0]);
    res1[0] += f;
    res2[0] -= f;
    f = T(Real(0.5)) * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (q1[1] - q2[1]);
    res1[1] += f;
    res2[1] -= f;
    f = T(Real(0.5)) * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (q1[2] - q2[2]);
    res1[2] += f;
    res2[2] -= f;
    f = T(Real(0.5)) * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3]);
    res1[3] += f;
    res2[3] -= f;
  }
};

/// bres_calc: boundary flux. The wall applies only the pressure term; the
/// far field exchanges a flux with the free stream. The branch is written
/// as select()s on the (lane-converted) boundary id — the transformation
/// the paper requires of conditional code in vectorized kernels.
template <class Real>
struct BresCalc {
  Consts<Real> c;
  static constexpr std::int32_t kWall = 2;  // mesh::kBoundWall

  template <class T, class TI>
  void operator()(const T* x1, const T* x2, const T* q1, const T* adt1, T* res1,
                  const TI* bound) const {
    OPV_SIMD_MATH_USING;
    const T dx = x1[0] - x2[0];
    const T dy = x1[1] - x2[1];

    const T ri1 = T(Real(1.0)) / q1[0];
    const T p1 = T(c.gm1) * (q1[3] - T(Real(0.5)) * ri1 * (q1[1] * q1[1] + q1[2] * q1[2]));

    // Far-field branch: flux against the free stream.
    const T vol1 = ri1 * (q1[1] * dy - q1[2] * dx);
    const T ri2 = T(Real(1.0)) / T(c.qinf[0]);
    const T p2 =
        T(c.gm1) * (T(c.qinf[3]) - T(Real(0.5)) * ri2 *
                                       (T(c.qinf[1]) * T(c.qinf[1]) + T(c.qinf[2]) * T(c.qinf[2])));
    const T vol2 = ri2 * (T(c.qinf[1]) * dy - T(c.qinf[2]) * dx);
    const T mu = adt1[0] * T(c.eps);

    const T f0 = T(Real(0.5)) * (vol1 * q1[0] + vol2 * T(c.qinf[0])) + mu * (q1[0] - T(c.qinf[0]));
    const T f1 = T(Real(0.5)) * (vol1 * q1[1] + p1 * dy + vol2 * T(c.qinf[1]) + p2 * dy) +
                 mu * (q1[1] - T(c.qinf[1]));
    const T f2 = T(Real(0.5)) * (vol1 * q1[2] - p1 * dx + vol2 * T(c.qinf[2]) - p2 * dx) +
                 mu * (q1[2] - T(c.qinf[2]));
    const T f3 = T(Real(0.5)) * (vol1 * (q1[3] + p1) + vol2 * (T(c.qinf[3]) + p2)) +
                 mu * (q1[3] - T(c.qinf[3]));

    // Wall branch: pressure force only.
    const T w = to_real<T>(bound[0]);
    const auto is_wall = (w == T(Real(kWall)));
    res1[0] += select(is_wall, T(Real(0.0)), f0);
    res1[1] += select(is_wall, p1 * dy, f1);
    res1[2] += select(is_wall, -(p1 * dx), f2);
    res1[3] += select(is_wall, T(Real(0.0)), f3);
  }
};

/// update: explicit time update, residual RMS reduction
/// (Table II: direct 9R/8W + global INC, 17 FLOP).
template <class Real>
struct Update {
  template <class T>
  void operator()(const T* qold, T* q, T* res, const T* adt, T* rms) const {
    OPV_SIMD_MATH_USING;
    const T adti = T(Real(1.0)) / adt[0];
    for (int n = 0; n < 4; ++n) {
      const T del = adti * res[n];
      q[n] = qold[n] - del;
      res[n] = T(Real(0.0));
      rms[0] += del * del;
    }
  }
};

}  // namespace opv::airfoil
