// LocalCtx: the single-process execution context.
//
// Application drivers are written once against the Context concept
// (decl_set / decl_map / decl_dat / arg / loop / fetch — the op_decl_* API),
// and instantiated with either LocalCtx (this file) or dist::DistCtx (the
// rank simulator). This mirrors how a single OP2 application source runs on
// every backend.
#pragma once

#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/op2.hpp"
#include "core/snapshot.hpp"

namespace opv {

class LocalCtx;

/// Context-bound persistent loop handle: an opv::Loop whose run() executes
/// under the owning LocalCtx's CURRENT configuration — the local analog of
/// dist::Loop::run(), so drivers templated over the context concept can
/// hold `auto loop = ctx.make_loop(...)` and call loop.run() each timestep
/// on either context.
template <class Kernel, class... Args>
class CtxLoop {
 public:
  CtxLoop(LocalCtx& ctx, Kernel kernel, const char* name, const Set& set, Args... args)
      : ctx_(&ctx), loop_(std::move(kernel), name, set, args...) {}

  /// Execute under the context's current configuration.
  void run();

  /// The underlying engine handle (plan/tuner introspection).
  [[nodiscard]] Loop<Kernel, Args...>& inner() { return loop_; }

 private:
  LocalCtx* ctx_;
  Loop<Kernel, Args...> loop_;
};

class LocalCtx {
 public:
  using SetHandle = Set*;
  using MapHandle = Map*;
  template <class T>
  using DatHandle = Dat<T>*;
  template <class T, int N>
  using FixedDatHandle = FixedDat<T, N>*;

  explicit LocalCtx(ExecConfig cfg = {}) : cfg_(cfg) {}

  ExecConfig& config() { return cfg_; }
  const ExecConfig& config() const { return cfg_; }

  SetHandle decl_set(const std::string& name, idx_t size) {
    require_not_renumbered("decl_set");
    sets_.push_back(std::make_unique<Set>(name, size));
    return sets_.back().get();
  }

  /// Partition hint; locally it only records the primary set — the default
  /// seed for the opt-in renumbering pass (set_renumber). The optional
  /// coordinate dimensionality matches DistCtx's signature (ignored here).
  void set_partition_coords(SetHandle s, const double*, int = 2) { primary_ = s; }

  /// Request a memory layout for one dataset — the context-concept spelling
  /// shared with DistCtx::set_layout, so drivers templated over the context
  /// pick layouts the same way on both. Locally it forwards to the dat.
  template <detail::DatLike D>
  void set_layout(D* d, Layout l) {
    d->set_layout(l);
  }

  MapHandle decl_map(const std::string& name, SetHandle from, SetHandle to, int dim,
                     aligned_vector<idx_t> data) {
    require_not_renumbered("decl_map");
    maps_.push_back(std::make_unique<Map>(name, *from, *to, dim, std::move(data)));
    return maps_.back().get();
  }

  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim,
                        const aligned_vector<T>& init) {
    require_not_renumbered("decl_dat");
    dats_.push_back(std::make_unique<Dat<T>>(name, *set, dim, init));
    return finish_decl_dat<Dat<T>>();
  }
  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim) {
    require_not_renumbered("decl_dat");
    dats_.push_back(std::make_unique<Dat<T>>(name, *set, dim));
    return finish_decl_dat<Dat<T>>();
  }

  /// Statically-dimensioned declaration: `decl_dat<double, 4>(...)` yields a
  /// FixedDat handle, so every `ctx.arg<A>(d, ...)` built from it carries a
  /// compile-time arity (fully-unrolled gathers with literal strides) with
  /// no per-argument Dim spelling at the loop sites.
  template <class T, int N>
  FixedDatHandle<T, N> decl_dat(const std::string& name, SetHandle set,
                                const aligned_vector<T>& init) {
    require_not_renumbered("decl_dat");
    dats_.push_back(std::make_unique<FixedDat<T, N>>(name, *set, init));
    return finish_decl_dat<FixedDat<T, N>>();
  }
  template <class T, int N>
  FixedDatHandle<T, N> decl_dat(const std::string& name, SetHandle set) {
    require_not_renumbered("decl_dat");
    dats_.push_back(std::make_unique<FixedDat<T, N>>(name, *set));
    return finish_decl_dat<FixedDat<T, N>>();
  }

  /// Opt into the context-level renumbering pass (core/reorder.hpp):
  /// finalize() then renumbers around the primary set declared through
  /// set_partition_coords. Must be set before finalize().
  void set_renumber(bool on) {
    OPV_REQUIRE(!finalized_, "LocalCtx::set_renumber: context already finalized");
    renumber_on_finalize_ = on;
  }

  /// Context-level layout default (core/layout.hpp): applied at finalize (or
  /// the first loop execution) to every multi-component dat that did not get
  /// an explicit set_layout. Pair with default_layout(backend) to follow the
  /// per-backend heuristic: `ctx.set_default_layout(default_layout(be))`.
  void set_default_layout(Layout l) {
    OPV_REQUIRE(!layouts_applied_,
                "LocalCtx::set_default_layout: layouts already materialized "
                "(finalize / first loop execution)");
    default_layout_ = l;
    have_default_layout_ = true;
  }

  /// Locally finalize() applies the opt-in renumbering pass and then
  /// materializes the per-dat layout policy (renumber permutes AoS rows, so
  /// it must run first); the distributed context additionally partitions.
  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    if (renumber_on_finalize_) {
      OPV_REQUIRE(primary_ != nullptr,
                  "LocalCtx::finalize: set_renumber(true) requires a primary set "
                  "(call set_partition_coords)");
      renumber(primary_);
    }
    materialize_layouts();
  }

  /// Apply the context-level renumbering pass around `seed` (paper sections
  /// 6.2/6.4; core/reorder.hpp): every declared Map is row-permuted and
  /// target-relabeled, every Dat row-permuted, in place. Legal once, after
  /// all declarations and BEFORE any loop executes — a loop handle pins its
  /// coloring plan against the map contents it first ran with, so
  /// renumbering underneath it would leave a stale (racy) schedule. Loops
  /// run through this context's API are tracked and rejected here; fetch()
  /// keeps returning values in the original declaration order.
  void renumber(SetHandle seed) {
    OPV_REQUIRE(!renumbered_, "LocalCtx::renumber: context already renumbered");
    OPV_REQUIRE(!loops_ran_,
                "LocalCtx::renumber: a loop already executed on this context; renumber "
                "before the first loop (its pinned coloring plan would go stale)");
    OPV_REQUIRE(!layouts_applied_,
                "LocalCtx::renumber: layouts already materialized; renumber permutes AoS "
                "rows, so it must precede finalize / the first loop execution");
    renumbered_ = true;

    std::map<const Set*, int> index;
    std::vector<idx_t> sizes;
    for (const auto& s : sets_) {
      index[s.get()] = static_cast<int>(sizes.size());
      sizes.push_back(s->size());
    }
    std::vector<reorder::MapView> views;
    views.reserve(maps_.size());
    for (const auto& m : maps_)
      views.push_back({index.at(&m->from()), index.at(&m->to()), m->dim(), m->mutable_data()});

    const reorder::Permutations p = reorder::compute(sizes, views, index.at(seed));
    reorder::apply_to_maps(p, views, sizes);
    for (const auto& d : dats_) {
      const int s = index.at(&d->set());
      if (!p.identity(s)) reorder::permute_rows_bytes(p.of(s), d->raw(), d->elem_bytes());
    }
    for (const auto& s : sets_) {
      const int i = index.at(s.get());
      if (!p.identity(i)) perms_.emplace(s.get(), p.of(i));
    }
  }

  /// The permutation (old declaration id -> new id) the renumbering pass
  /// applied to a set, or nullptr if the set kept its numbering.
  [[nodiscard]] const aligned_vector<idx_t>* permutation(SetHandle s) const {
    const auto it = perms_.find(s);
    return it == perms_.end() ? nullptr : &it->second;
  }

  /// Every non-identity permutation applied, keyed by set name (test and
  /// tooling introspection — e.g. replaying the pass as a manual relayout).
  [[nodiscard]] std::map<std::string, aligned_vector<idx_t>> applied_permutations() const {
    std::map<std::string, aligned_vector<idx_t>> out;
    for (const auto& [set, perm] : perms_) out.emplace(set->name(), perm);
    return out;
  }

  // Typed argument builders: the access mode (and optionally the arity Dim)
  // travel as template parameters, via explicit template argument or
  // deduced from the tag. `ctx.arg<opv::READ, 4>(d, ...)` builds a
  // compile-time-Dim descriptor (checked against the dat's declared dim);
  // omitting Dim keeps the runtime-dim compatibility descriptor.
  template <AccessMode A, int Dim = kDynDim, detail::DatLike D>
  auto arg(D* d, int idx, MapHandle m) {
    return opv::arg<A, Dim>(*d, idx, *m);
  }
  template <AccessMode A, int Dim = kDynDim, detail::DatLike D>
  auto arg(D* d) {
    return opv::arg<A, Dim>(*d);
  }
  template <AccessMode A, class T>
  auto arg_gbl(T* p, int dim) {
    return opv::arg_gbl<A>(p, dim);
  }
  template <detail::DatLike D, AccessMode A>
  auto arg(D* d, int idx, MapHandle m, AccessTag<A> t) {
    return opv::arg(*d, idx, *m, t);
  }
  template <detail::DatLike D, AccessMode A>
  auto arg(D* d, AccessTag<A> t) {
    return opv::arg(*d, t);
  }
  template <class T, AccessMode A>
  auto arg_gbl(T* p, int dim, AccessTag<A> t) {
    return opv::arg_gbl(p, dim, t);
  }

  template <class Kernel, class... Args>
  void loop(Kernel k, const char* name, SetHandle set, Args... args) {
    note_loops_ran();
    par_loop(std::move(k), name, *set, cfg_, args...);
  }

  /// Record that loops are about to execute outside the context's own
  /// loop()/CtxLoop::run() paths — e.g. a LoopChain driving CtxLoop inner()
  /// handles directly. Closes the renumbering window exactly like a tracked
  /// loop execution would (the chain pins tile plans against map contents),
  /// and materializes the layout policy so access paths never see a dat
  /// whose requested layout was silently left unapplied.
  void note_loops_ran() {
    if (!loops_ran_) materialize_layouts();
    loops_ran_ = true;
  }

  /// Build a persistent loop handle bound to this context (the Context-
  /// concept spelling shared with DistCtx::make_loop): conflict analysis at
  /// construction, plan and stats slot pinned on first run, and run()
  /// follows the context's current configuration.
  template <class Kernel, class... Args>
  CtxLoop<Kernel, Args...> make_loop(Kernel k, const char* name, SetHandle set, Args... args) {
    return CtxLoop<Kernel, Args...>(*this, std::move(k), name, *set, args...);
  }

  /// Copy a dataset's owned values into an array in the ORIGINAL declaration
  /// order and AoS component order (renumbering AND relayout, when applied,
  /// are inverted here — the caller never observes the internal numbering or
  /// the physical layout).
  template <class T>
  void fetch(DatHandle<T> d, aligned_vector<T>& out) const {
    const auto it = perms_.find(&d->set());
    const aligned_vector<idx_t>* perm = it == perms_.end() ? nullptr : &it->second;
    if (perm == nullptr && d->layout() == Layout::AoS) {
      out.assign(d->data(), d->data() + static_cast<std::size_t>(d->set().size()) * d->dim());
      return;
    }
    const int dim = d->dim();
    out.resize(static_cast<std::size_t>(d->set().size()) * dim);
    for (idx_t e = 0; e < d->set().size(); ++e) {
      const idx_t src = perm ? (*perm)[static_cast<std::size_t>(e)] : e;
      for (int c = 0; c < dim; ++c)
        out[static_cast<std::size_t>(e) * dim + c] = d->at(src, c);
    }
  }

  /// Append one "dat/NNN/<name>" section per declared dat to `out`, each
  /// holding the dat's values in the ORIGINAL declaration order and AoS
  /// component order (the canonical form fetch() returns: renumbering and
  /// physical layout are inverted through the same permutation/offset
  /// machinery). Snapshots are therefore portable across contexts that made
  /// different renumber/layout choices for the same declarations, and
  /// restore() is exact — byte-identical values round-trip bitwise.
  void snapshot(Checkpoint& out) const {
    int i = 0;
    for (const auto& d : dats_) {
      const idx_t rows = d->set().size();
      const int dim = d->dim();
      const std::size_t vb = d->elem_bytes() / static_cast<std::size_t>(dim);
      ByteWriter w;
      w.put<std::int64_t>(rows);
      w.put<std::int32_t>(dim);
      w.put<std::uint32_t>(static_cast<std::uint32_t>(vb));
      const auto* perm = permutation_of(d->set());
      const auto* base = static_cast<const unsigned char*>(d->raw());
      if (perm == nullptr && d->layout() == Layout::AoS) {
        w.put_bytes(base, static_cast<std::size_t>(rows) * d->elem_bytes());
      } else {
        for (idx_t e = 0; e < rows; ++e) {
          const idx_t src = perm ? (*perm)[static_cast<std::size_t>(e)] : e;
          for (int c = 0; c < dim; ++c)
            w.put_bytes(base + layout_offset(d->layout(), src, c, dim, d->plane()) * vb, vb);
        }
      }
      out.add(dat_section_name(i++, d->name()), w.take());
    }
  }

  /// Write a snapshot's values back into the declared dats, through the
  /// context's CURRENT permutation and physical layout. The snapshot must
  /// come from an identically-declared context (same dats in order, same
  /// shapes) — any mismatch throws opv::Error instead of silently writing
  /// misaligned bytes. Maps, plans, and loop handles are untouched: derived
  /// schedule state keys on mesh topology, which a checkpoint never changes.
  void restore(const Checkpoint& in) {
    OPV_REQUIRE(in.sections.size() >= dats_.size(),
                "LocalCtx::restore: checkpoint has " << in.sections.size() << " sections but "
                                                     << dats_.size() << " dats are declared");
    int i = 0;
    for (const auto& d : dats_) {
      const std::string name = dat_section_name(i, d->name());
      const Checkpoint::Section* s = in.find(name);
      OPV_REQUIRE(s != nullptr, "LocalCtx::restore: checkpoint is missing section '" << name << "'");
      const idx_t rows = d->set().size();
      const int dim = d->dim();
      const std::size_t vb = d->elem_bytes() / static_cast<std::size_t>(dim);
      ByteReader r(s->bytes, name);
      const auto srows = r.get<std::int64_t>();
      const auto sdim = r.get<std::int32_t>();
      const auto svb = r.get<std::uint32_t>();
      OPV_REQUIRE(srows == rows && sdim == dim && svb == vb,
                  "LocalCtx::restore: section '"
                      << name << "' shape mismatch (checkpoint " << srows << "x" << sdim << "x"
                      << svb << " vs declared " << rows << "x" << dim << "x" << vb << ")");
      const auto* perm = permutation_of(d->set());
      auto* base = static_cast<unsigned char*>(d->raw());
      if (perm == nullptr && d->layout() == Layout::AoS) {
        r.get_bytes(base, static_cast<std::size_t>(rows) * d->elem_bytes());
      } else {
        for (idx_t e = 0; e < rows; ++e) {
          const idx_t dst = perm ? (*perm)[static_cast<std::size_t>(e)] : e;
          for (int c = 0; c < dim; ++c)
            r.get_bytes(base + layout_offset(d->layout(), dst, c, dim, d->plane()) * vb, vb);
        }
      }
      ++i;
    }
  }

 private:
  template <class Kernel, class... Args>
  friend class CtxLoop;  // marks loops_ran_ on run()

  /// Stable checkpoint section name: declaration index + dat name.
  static std::string dat_section_name(int index, const std::string& name) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "dat/%03d/", index);
    return buf + name;
  }

  [[nodiscard]] const aligned_vector<idx_t>* permutation_of(const Set& s) const {
    const auto it = perms_.find(&s);
    return it == perms_.end() ? nullptr : &it->second;
  }

  void require_not_renumbered(const char* what) const {
    OPV_REQUIRE(!renumbered_, "LocalCtx::" << what
                                           << ": declarations are closed once the context is "
                                              "renumbered (declare everything first)");
  }

  /// Return the just-declared dat as its concrete type; a dat declared after
  /// layout materialization stays AoS with its layout frozen immediately, so
  /// a late set_layout fails loudly instead of silently never applying.
  template <class D>
  D* finish_decl_dat() {
    D* d = static_cast<D*>(dats_.back().get());
    if (layouts_applied_) d->freeze_layout();
    return d;
  }

  /// One-shot layout materialization: resolve the context default onto
  /// non-explicit multi-component dats, then physically convert and freeze
  /// every dat. Runs at finalize() or, for drivers that never finalize, at
  /// the first tracked loop execution.
  void materialize_layouts() {
    if (layouts_applied_) return;
    layouts_applied_ = true;
    for (const auto& d : dats_) {
      if (have_default_layout_ && !d->layout_explicit() && d->dim() > 1)
        d->set_layout(default_layout_);
      d->apply_layout();
    }
  }

  ExecConfig cfg_;
  std::deque<std::unique_ptr<Set>> sets_;
  std::deque<std::unique_ptr<Map>> maps_;
  std::deque<std::unique_ptr<DatBase>> dats_;
  SetHandle primary_ = nullptr;
  bool renumber_on_finalize_ = false;
  bool finalized_ = false;
  bool renumbered_ = false;
  bool loops_ran_ = false;  ///< a loop executed: renumbering is no longer legal
  Layout default_layout_ = Layout::AoS;
  bool have_default_layout_ = false;
  bool layouts_applied_ = false;  ///< layout policy materialized and frozen
  std::map<const Set*, aligned_vector<idx_t>> perms_;  ///< old -> new, per set
};

template <class Kernel, class... Args>
void CtxLoop<Kernel, Args...>::run() {
  ctx_->note_loops_ran();
  loop_.run(ctx_->config());
}

}  // namespace opv
