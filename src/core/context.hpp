// LocalCtx: the single-process execution context.
//
// Application drivers are written once against the Context concept
// (decl_set / decl_map / decl_dat / arg / loop / fetch — the op_decl_* API),
// and instantiated with either LocalCtx (this file) or dist::DistCtx (the
// rank simulator). This mirrors how a single OP2 application source runs on
// every backend.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "core/op2.hpp"

namespace opv {

class LocalCtx;

/// Context-bound persistent loop handle: an opv::Loop whose run() executes
/// under the owning LocalCtx's CURRENT configuration — the local analog of
/// dist::Loop::run(), so drivers templated over the context concept can
/// hold `auto loop = ctx.make_loop(...)` and call loop.run() each timestep
/// on either context.
template <class Kernel, class... Args>
class CtxLoop {
 public:
  CtxLoop(LocalCtx& ctx, Kernel kernel, const char* name, const Set& set, Args... args)
      : ctx_(&ctx), loop_(std::move(kernel), name, set, args...) {}

  /// Execute under the context's current configuration.
  void run();

  /// The underlying engine handle (plan/tuner introspection).
  [[nodiscard]] Loop<Kernel, Args...>& inner() { return loop_; }

 private:
  LocalCtx* ctx_;
  Loop<Kernel, Args...> loop_;
};

class LocalCtx {
 public:
  using SetHandle = Set*;
  using MapHandle = Map*;
  template <class T>
  using DatHandle = Dat<T>*;

  explicit LocalCtx(ExecConfig cfg = {}) : cfg_(cfg) {}

  ExecConfig& config() { return cfg_; }
  const ExecConfig& config() const { return cfg_; }

  SetHandle decl_set(const std::string& name, idx_t size) {
    sets_.push_back(std::make_unique<Set>(name, size));
    return sets_.back().get();
  }

  /// Partition hint; meaningful only for the distributed context.
  void set_partition_coords(SetHandle, const double*) {}

  MapHandle decl_map(const std::string& name, SetHandle from, SetHandle to, int dim,
                     aligned_vector<idx_t> data) {
    maps_.push_back(std::make_unique<Map>(name, *from, *to, dim, std::move(data)));
    return maps_.back().get();
  }

  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim,
                        const aligned_vector<T>& init) {
    dats_.push_back(std::make_unique<Dat<T>>(name, *set, dim, init));
    return static_cast<Dat<T>*>(dats_.back().get());
  }
  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim) {
    dats_.push_back(std::make_unique<Dat<T>>(name, *set, dim));
    return static_cast<Dat<T>*>(dats_.back().get());
  }

  /// No-op locally; the distributed context partitions here.
  void finalize() {}

  // Typed argument builders: the access mode (and optionally the arity Dim)
  // travel as template parameters, via explicit template argument or
  // deduced from the tag. `ctx.arg<opv::READ, 4>(d, ...)` builds a
  // compile-time-Dim descriptor (checked against the dat's declared dim);
  // omitting Dim keeps the runtime-dim compatibility descriptor.
  template <AccessMode A, int Dim = kDynDim, class T>
  auto arg(DatHandle<T> d, int idx, MapHandle m) {
    return opv::arg<A, Dim>(*d, idx, *m);
  }
  template <AccessMode A, int Dim = kDynDim, class T>
  auto arg(DatHandle<T> d) {
    return opv::arg<A, Dim>(*d);
  }
  template <AccessMode A, class T>
  auto arg_gbl(T* p, int dim) {
    return opv::arg_gbl<A>(p, dim);
  }
  template <class T, AccessMode A>
  auto arg(DatHandle<T> d, int idx, MapHandle m, AccessTag<A> t) {
    return opv::arg(*d, idx, *m, t);
  }
  template <class T, AccessMode A>
  auto arg(DatHandle<T> d, AccessTag<A> t) {
    return opv::arg(*d, t);
  }
  template <class T, AccessMode A>
  auto arg_gbl(T* p, int dim, AccessTag<A> t) {
    return opv::arg_gbl(p, dim, t);
  }

  template <class Kernel, class... Args>
  void loop(Kernel k, const char* name, SetHandle set, Args... args) {
    par_loop(std::move(k), name, *set, cfg_, args...);
  }

  /// Build a persistent loop handle bound to this context (the Context-
  /// concept spelling shared with DistCtx::make_loop): conflict analysis at
  /// construction, plan and stats slot pinned on first run, and run()
  /// follows the context's current configuration.
  template <class Kernel, class... Args>
  CtxLoop<Kernel, Args...> make_loop(Kernel k, const char* name, SetHandle set, Args... args) {
    return CtxLoop<Kernel, Args...>(*this, std::move(k), name, *set, args...);
  }

  /// Copy a dataset's owned values into a global-order array.
  template <class T>
  void fetch(DatHandle<T> d, aligned_vector<T>& out) const {
    out.assign(d->data(), d->data() + static_cast<std::size_t>(d->set().size()) * d->dim());
  }

 private:
  ExecConfig cfg_;
  std::deque<std::unique_ptr<Set>> sets_;
  std::deque<std::unique_ptr<Map>> maps_;
  std::deque<std::unique_ptr<DatBase>> dats_;
};

template <class Kernel, class... Args>
void CtxLoop<Kernel, Args...>::run() {
  loop_.run(ctx_->config());
}

}  // namespace opv
