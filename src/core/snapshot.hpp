// Checkpoint containers for the resilience layer (ISSUE/ROADMAP: "instance
// checkpoint/restore so a long sweep survives restarts").
//
// A Checkpoint is an ordered list of named byte sections. Producers append
// sections; consumers look them up by name and decode with the bounds-checked
// ByteReader. Two producers exist today:
//
//   * LocalCtx::snapshot() (core/context.hpp) appends one "dat/NNN/<name>"
//     section per declared dat, holding its declaration-order AoS bytes —
//     the same canonical form fetch() returns, so a snapshot taken from a
//     renumbered SoA context restores bit-exactly into an untouched AoS one.
//   * serve::Checkpointable implementations append app-level globals
//     (timestep state, reduction accumulators) as extra sections.
//
// The in-memory types here are deliberately dumb data: serialization to the
// OPVK container (magic/version/CRC32 per section) lives in mesh/io, and the
// scheduler-facing retry machinery in serve/resilience.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace opv {

/// Append-only little packing buffer for checkpoint section payloads.
class ByteWriter {
 public:
  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "ByteWriter::put: need a trivially copyable type");
    const auto n = buf_.size();
    buf_.resize(n + sizeof(T));
    std::memcpy(buf_.data() + n, &v, sizeof(T));
  }
  void put_bytes(const void* p, std::size_t n) {
    const auto at = buf_.size();
    buf_.resize(at + n);
    if (n > 0) std::memcpy(buf_.data() + at, p, n);
  }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  /// Raw access for in-place writes after reservation (put_bytes(nullptr-free)).
  [[nodiscard]] unsigned char* data() { return buf_.data(); }
  std::vector<unsigned char> take() { return std::move(buf_); }

 private:
  std::vector<unsigned char> buf_;
};

/// Bounds-checked unpacking cursor over a section payload. Overruns throw
/// opv::Error naming the section and the byte offset — corrupt checkpoints
/// fail loudly, never read out of bounds.
class ByteReader {
 public:
  ByteReader(const std::vector<unsigned char>& bytes, std::string what)
      : p_(bytes.data()), n_(bytes.size()), what_(std::move(what)) {}

  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>, "ByteReader::get: need a trivially copyable type");
    require(sizeof(T));
    T v;
    std::memcpy(&v, p_ + at_, sizeof(T));
    at_ += sizeof(T);
    return v;
  }
  void get_bytes(void* dst, std::size_t n) {
    require(n);
    if (n > 0) std::memcpy(dst, p_ + at_, n);
    at_ += n;
  }
  /// Borrow `n` bytes without copying (valid while the section lives).
  const unsigned char* view(std::size_t n) {
    require(n);
    const unsigned char* v = p_ + at_;
    at_ += n;
    return v;
  }
  [[nodiscard]] std::size_t offset() const { return at_; }
  [[nodiscard]] std::size_t remaining() const { return n_ - at_; }

 private:
  void require(std::size_t n) const {
    OPV_REQUIRE(n <= n_ - at_, "checkpoint section '" << what_ << "': truncated payload (need " << n
                                                      << " bytes at offset " << at_ << ", have "
                                                      << (n_ - at_) << ")");
  }
  const unsigned char* p_;
  std::size_t n_;
  std::size_t at_ = 0;
  std::string what_;
};

/// One instance's full recoverable state: ordered named byte sections.
struct Checkpoint {
  struct Section {
    std::string name;
    std::vector<unsigned char> bytes;
  };
  std::vector<Section> sections;

  void add(std::string name, std::vector<unsigned char> bytes) {
    sections.push_back({std::move(name), std::move(bytes)});
  }
  [[nodiscard]] const Section* find(std::string_view name) const {
    for (const auto& s : sections)
      if (s.name == name) return &s;
    return nullptr;
  }
  [[nodiscard]] Section* find(std::string_view name) {
    for (auto& s : sections)
      if (s.name == name) return &s;
    return nullptr;
  }
  /// Payload bytes across all sections (names and framing excluded).
  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& s : sections) n += s.bytes.size();
    return n;
  }
};

/// A whole ensemble's recoverable state: per-instance checkpoints plus the
/// scheduling progress needed to resume an interrupted sweep (steps done so
/// far; retired instances keep their error instead of state). Serialized to
/// the OPVK container by mesh/io write_checkpoint/read_checkpoint.
struct EnsembleCheckpoint {
  static constexpr std::uint32_t kVersion = 1;

  struct InstanceState {
    int id = -1;
    std::int64_t steps_done = 0;  ///< cumulative steps at checkpoint time
    std::string error;            ///< non-empty: instance was retired
    Checkpoint state;             ///< empty for retired instances
  };

  std::uint32_t version = kVersion;
  std::int64_t target_steps = 0;  ///< the sweep's goal (run_to target; 0 = unknown)
  std::vector<InstanceState> instances;
};

// Dat sections (appended by LocalCtx::snapshot) carry a fixed header before
// the row payload: [i64 rows][i32 dim][u32 value_bytes][rows*dim*value_bytes].
inline constexpr std::size_t kDatSectionHeaderBytes = 16;

/// Overwrite value `index` (row-major over rows*dim values) of the dat
/// section whose name ends in "/<dat>" with a quiet NaN of the section's
/// value width — the deterministic state-corruption hook FaultyInstance and
/// the fault-injection tests use. Returns false when no such section exists;
/// throws opv::Error for a non-floating value width or out-of-range index.
inline bool poison_dat_section(Checkpoint& c, std::string_view dat, std::size_t index) {
  const std::string suffix = "/" + std::string(dat);
  for (auto& s : c.sections) {
    if (s.name.size() < suffix.size() ||
        s.name.compare(s.name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    ByteReader r(s.bytes, s.name);
    const auto rows = r.get<std::int64_t>();
    const auto dim = r.get<std::int32_t>();
    const auto vb = r.get<std::uint32_t>();
    const std::size_t nvalues = static_cast<std::size_t>(rows) * static_cast<std::size_t>(dim);
    OPV_REQUIRE(index < nvalues, "poison_dat_section('" << s.name << "'): value index " << index
                                                        << " out of range (have " << nvalues << ")");
    unsigned char* at = s.bytes.data() + kDatSectionHeaderBytes + index * vb;
    if (vb == sizeof(float)) {
      const float nan = std::numeric_limits<float>::quiet_NaN();
      std::memcpy(at, &nan, sizeof(nan));
    } else if (vb == sizeof(double)) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      std::memcpy(at, &nan, sizeof(nan));
    } else {
      OPV_REQUIRE(false, "poison_dat_section('" << s.name << "'): value width " << vb
                                                << " is not a floating type");
    }
    return true;
  }
  return false;
}

}  // namespace opv
