// op_map: connectivity from one set to another with fixed arity.
//
// Arity model (see core/arg.hpp): a typed argument descriptor addresses
// exactly ONE of the map's slots (map_idx), so the DAT arity travels as the
// descriptor's compile-time Dim while the MAP arity stays a runtime stride
// (it only scales the index gather, never a per-component loop). A
// descriptor's map_idx is validated against dim() when the descriptor is
// constructed — the map-side half of the Dim/dat construction-time check.
#pragma once

#include <string>
#include <utility>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "core/set.hpp"

namespace opv {

/// Mapping from each element of `from` to `dim` elements of `to`,
/// stored element-major: data[e*dim + k].
class Map {
 public:
  Map() = default;
  Map(std::string name, const Set& from, const Set& to, int dim, aligned_vector<idx_t> data)
      : name_(std::move(name)), from_(&from), to_(&to), dim_(dim), data_(std::move(data)) {
    OPV_REQUIRE(dim_ >= 1, "map '" << name_ << "': arity must be >= 1");
    OPV_REQUIRE(data_.size() == static_cast<std::size_t>(from.total_size()) * dim_,
                "map '" << name_ << "': data size " << data_.size() << " != from.total_size*dim ("
                        << from.total_size() << "*" << dim_ << ")");
    for (std::size_t i = 0; i < data_.size(); ++i) {
      OPV_REQUIRE(data_[i] >= 0 && data_[i] < to.total_size(),
                  "map '" << name_ << "' entry " << i << " = " << data_[i]
                          << " outside target set '" << to.name() << "' (total "
                          << to.total_size() << ")");
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Set& from() const { return *from_; }
  [[nodiscard]] const Set& to() const { return *to_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] const idx_t* data() const { return data_.data(); }

  /// Mutable entry access for the context-level renumbering pass
  /// (core/reorder.hpp), which row-permutes and relabels map data in place.
  /// The caller owns the invariants the constructor checked (every entry
  /// stays inside the target set) — renumbering preserves them because it
  /// only applies bijections on [0, size).
  [[nodiscard]] idx_t* mutable_data() { return data_.data(); }

  /// k-th target of element e.
  [[nodiscard]] idx_t operator()(idx_t e, int k) const {
    return data_[static_cast<std::size_t>(e) * dim_ + k];
  }

 private:
  std::string name_;
  const Set* from_ = nullptr;
  const Set* to_ = nullptr;
  int dim_ = 0;
  aligned_vector<idx_t> data_;
};

}  // namespace opv
