// Loop footprint introspection: the pinned per-argument access summary an
// opv::Loop derives from its argument types at construction.
//
// A LoopFootprint is the runtime residue of the compile-time arg_traits
// classification: one ArgFootprint per argument, carrying the bound dataset
// (or global target), the map identity for indirect accesses, and the access
// mode. It is the single source the engine derives its conflict list from
// (Loop's plan key), and the input the cross-loop sparse-tiling inspector
// (core/chain.hpp) consumes to build the chain's dependence graph — the
// public replacement for re-scanning argument tuples in planning code.
#pragma once

#include <vector>

#include "core/access.hpp"
#include "core/dat.hpp"
#include "core/map.hpp"
#include "core/plan.hpp"
#include "core/set.hpp"

namespace opv {

/// One argument's pinned access summary.
struct ArgFootprint {
  const DatBase* dat = nullptr;  ///< bound dataset; nullptr for globals
  const Map* map = nullptr;      ///< non-null iff indirect
  int map_idx = -1;              ///< which of the map's targets (indirect)
  AccessMode access = AccessMode::READ;
  bool indirect = false;
  bool is_gbl = false;
  const void* gbl = nullptr;     ///< global target identity (is_gbl only)
  bool gbl_reduction = false;    ///< global INC/MIN/MAX
};

/// A loop's full footprint: iteration set plus one entry per argument, in
/// argument order.
struct LoopFootprint {
  const Set* iter_set = nullptr;
  std::vector<ArgFootprint> args;

  /// The (map, idx) pairs the loop indirectly modifies through — exactly
  /// the conflict list the coloring plan is keyed on, in argument order.
  [[nodiscard]] std::vector<IncRef> conflicts() const {
    std::vector<IncRef> out;
    for (const ArgFootprint& a : args)
      if (a.indirect && access_conflicting(a.access)) out.push_back({a.map, a.map_idx});
    return out;
  }

  /// Every distinct set the loop touches (iteration set, dat home sets).
  [[nodiscard]] std::vector<const Set*> sets_touched() const {
    std::vector<const Set*> out;
    auto push = [&](const Set* s) {
      if (!s) return;
      for (const Set* x : out)
        if (x == s) return;
      out.push_back(s);
    };
    push(iter_set);
    for (const ArgFootprint& a : args)
      if (a.dat) push(&a.dat->set());
    return out;
  }

  /// An indirect read-modify-write argument: the one dependence shape the
  /// sparse-tiling inspector refuses to fuse across (core/chain.hpp falls
  /// back to plain run() for such loops).
  [[nodiscard]] bool has_indirect_rw() const {
    for (const ArgFootprint& a : args)
      if (a.indirect && a.access == AccessMode::RW) return true;
    return false;
  }

  /// True if the loop READS the global at `p` (broadcast argument).
  [[nodiscard]] bool reads_gbl(const void* p) const {
    for (const ArgFootprint& a : args)
      if (a.is_gbl && a.access == AccessMode::READ && a.gbl == p) return true;
    return false;
  }

  /// Global targets this loop reduces into (INC/MIN/MAX).
  [[nodiscard]] std::vector<const void*> gbl_reductions() const {
    std::vector<const void*> out;
    for (const ArgFootprint& a : args)
      if (a.gbl_reduction) out.push_back(a.gbl);
    return out;
  }
};

}  // namespace opv
