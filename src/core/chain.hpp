// opv::LoopChain: cross-loop sparse tiling (loop fusion) over persistent
// Loop handles — the locality optimization one level above PR 5's mesh
// renumbering. Every timestep of the mini-apps runs a fixed chain of loops
// and each loop streams the whole mesh through cache before the next starts;
// fusing the chain into cache-sized tiles executed across ALL loops keeps a
// tile's data resident for the whole chain (Luporini et al. arXiv:1708.03183,
// Sulyok et al. arXiv:1802.03749 — the sparse-tiling inspector/executor
// model; see docs/ARCHITECTURE.md "Cross-loop sparse tiling").
//
// Inspector (plan, built once per tile size and pinned):
//   1. Dependence segmentation. The chain's cross-loop dependence graph is
//      derived from each member's pinned LoopFootprint. Loops the planner
//      cannot tile safely (indirect RW arguments), and points where a loop
//      READS a global an earlier in-segment loop reduces into, split the
//      chain into segments; segments of >= 2 loops fuse, the rest fall back
//      to plain run() (effective_fused() reports the split).
//   2. Tile assignment. Tiles seed as contiguous ranges of the FIRST
//      loop's iteration set (ExecConfig::chain_tile_elems; kAuto = cache
//      budget + online tuning). Each subsequent loop's elements join the
//      highest tile that last touched any datum they access (the "last
//      toucher" label propagated through the maps), clamped to be monotone
//      non-decreasing in element order. Monotonicity makes every (tile,
//      loop) subset a contiguous ascending range, so serial tile execution
//      replays each loop's exact sequential element order — chained Seq
//      execution is bitwise-identical to unchained, indirect increments
//      included.
//
// Executor (chain.run(cfg)): for each segment, either plain run() per loop
// (unfused) or tile waves: for tile t, run every member loop's subset
// back-to-back. Race-free subsets execute through Loop::run_range
// (contiguous, vectorizable); conflicted subsets on parallel backends go
// through a pinned Loop::Slice whose subset coloring plan is built once —
// there the per-tile color order reassociates increment sums exactly like
// run()'s coloring does (the documented reassociation carve-out).
#pragma once

#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/footprint.hpp"
#include "core/par_loop.hpp"
#include "perf/tuner.hpp"

namespace opv {

namespace chain_detail {

/// One member loop, type-erased for the planner: its footprint and the
/// element count run() would cover.
struct LoopSpec {
  const LoopFootprint* fp = nullptr;
  idx_t n = 0;
};

/// One maximal fusible (or deliberately unfused) run of chain members.
struct Segment {
  int begin = 0, end = 0;  ///< member index range [begin, end)
  bool fused = false;
  int ntiles = 0;
  /// Per member loop (index l - begin), ntiles+1 ascending offsets: tile t
  /// of that loop is the contiguous element range [off[t], off[t+1]).
  std::vector<std::vector<idx_t>> offsets;
};

/// The pinned chain plan: segmentation plus per-segment tile offsets.
struct ChainPlan {
  idx_t tile_elems = 0;
  std::vector<Segment> segments;
  int ntiles = 0;       ///< total tiles across fused segments
  int fused_loops = 0;  ///< members executing through tiled subsets
};

/// Dependence segmentation only (step 1 of the inspector).
std::vector<Segment> segment_chain(const std::vector<LoopSpec>& specs);

/// The full inspector: segmentation + monotone contiguous tile assignment.
ChainPlan plan_chain(const std::vector<LoopSpec>& specs, idx_t tile_elems);

/// kAuto seed-tile candidates: the chain's distinct-dat bytes per seed
/// element against a cache budget (per-core L2 by preference — the LLC is
/// shared), bracketed for the online tuner (multiples of 16, ascending,
/// deduplicated).
std::vector<int> tile_candidates(const std::vector<LoopSpec>& specs);

}  // namespace chain_detail

/// A handle over an ordered list of existing persistent Loop handles,
/// executing them as one fused sparse-tiled chain:
///
///   LoopChain chain("airfoil_step", save.inner(), adt.inner(), ...);
///   for (int it = 0; it < n; ++it) chain.run(cfg);
///
/// The chain only REFERENCES its members (they must outlive it) and owns
/// its tiling — the same Loop can belong to several chains and still be
/// run() standalone. Members must form a host-code-free sequence: any host
/// work between two loops (resetting a reduction target, reading one back)
/// belongs before or after the chain, or at a chain boundary.
class LoopChain {
 public:
  explicit LoopChain(std::string name) : name_(std::move(name)) {}

  template <class... Loops>
  explicit LoopChain(std::string name, Loops&... loops) : name_(std::move(name)) {
    (add(loops), ...);
  }

  LoopChain(LoopChain&&) = default;
  LoopChain& operator=(LoopChain&&) = default;

  /// Append a member loop (chain order = execution order).
  template <class Kernel, class... Args>
  void add(Loop<Kernel, Args...>& loop) {
    nodes_.push_back(std::make_unique<NodeImpl<Loop<Kernel, Args...>>>(&loop));
    plan_.reset();  // membership changed: re-plan on next run
  }

  /// Execute the whole chain under cfg. The first run (per tile size)
  /// builds and pins the plan; steady-state runs do zero planning.
  void run(const ExecConfig& cfg);
  void run() { run(default_config()); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] std::vector<std::string> members() const;

  /// Members executing through tiled subsets under the pinned plan (the
  /// rest fall back to plain run()); 0 before the first run.
  [[nodiscard]] int effective_fused() const { return plan_ ? plan_->fused_loops : 0; }
  /// Total tiles across fused segments under the pinned plan.
  [[nodiscard]] int ntiles() const { return plan_ ? plan_->ntiles : 0; }
  /// The pinned seed-tile size (0 before the first run).
  [[nodiscard]] idx_t tile_elems() const { return plan_ ? plan_->tile_elems : 0; }
  /// How many times the inspector ran (plan pinning: stays at 1 across
  /// steady-state runs with an explicit tile size).
  [[nodiscard]] int plans_built() const { return plans_built_; }
  /// Wall seconds spent in the inspector (tile assignment) so far.
  [[nodiscard]] double plan_build_seconds() const { return plan_secs_; }
  /// The pinned plan (nullptr before the first run) — test introspection.
  [[nodiscard]] const chain_detail::ChainPlan* plan() const { return plan_.get(); }
  /// kAuto result: the settled seed-tile size (0 while tuning / explicit).
  [[nodiscard]] int tuned_tile_elems() const {
    return tuner_ && tuner_->settled() ? tuner_->best() : 0;
  }

 private:
  /// Type-erased member: the virtual surface the untemplated executor in
  /// chain.cpp drives. Each chain owns its member slices (pinned per (tile,
  /// loop)); the underlying Loop is only referenced.
  struct Node {
    virtual ~Node() = default;
    [[nodiscard]] virtual const LoopFootprint& footprint() const = 0;
    [[nodiscard]] virtual const std::string& loop_name() const = 0;
    [[nodiscard]] virtual idx_t iter_count() const = 0;  ///< run()'s element count
    virtual void run_full(const ExecConfig& cfg) = 0;    ///< plain Loop::run
    /// Pin this member's tile ranges (clears previously pinned slices).
    virtual void set_tile_ranges(std::vector<std::pair<idx_t, idx_t>> ranges) = 0;
    /// Execute tile t's subset (range fast path or pinned Slice).
    virtual void run_tile(const ExecConfig& cfg, int t) = 0;
    /// Unflushed plan-acquisition seconds of the underlying loop.
    [[nodiscard]] virtual double take_fresh_plan_seconds() = 0;
  };

  template <class L>
  struct NodeImpl final : Node {
    explicit NodeImpl(L* l) : loop(l) {}
    L* loop;
    std::vector<std::pair<idx_t, idx_t>> ranges;
    std::vector<typename L::Slice> slices;  ///< built lazily per tile

    [[nodiscard]] const LoopFootprint& footprint() const override { return loop->footprint(); }
    [[nodiscard]] const std::string& loop_name() const override { return loop->name(); }
    [[nodiscard]] idx_t iter_count() const override {
      return L::has_inc ? loop->set().exec_size() : loop->set().size();
    }
    void run_full(const ExecConfig& cfg) override { loop->run(cfg); }
    void set_tile_ranges(std::vector<std::pair<idx_t, idx_t>> r) override {
      ranges = std::move(r);
      slices.clear();
    }
    void run_tile(const ExecConfig& cfg, int t) override {
      const auto [lo, hi] = ranges[static_cast<std::size_t>(t)];
      if (hi <= lo) return;
      // Contiguous-range fast path: always on Seq (serial ascending order,
      // the bitwise-identity backbone), and on the parallel backends for
      // race-free loops. Conflicted subsets on parallel backends need the
      // Slice's subset coloring.
      const bool range_ok =
          cfg.backend == Backend::Seq || (!L::has_inc && cfg.backend != Backend::Simt);
      if (range_ok) {
        loop->run_range(cfg, lo, hi);
        return;
      }
      if (slices.empty()) slices.resize(ranges.size());
      typename L::Slice& s = slices[static_cast<std::size_t>(t)];
      if (s.empty()) {
        aligned_vector<idx_t> elems(static_cast<std::size_t>(hi - lo));
        std::iota(elems.begin(), elems.end(), lo);
        s = loop->make_slice(std::move(elems));
      }
      loop->run_slice(cfg, s);
    }
    [[nodiscard]] double take_fresh_plan_seconds() override {
      return loop->fresh_plan_seconds();
    }
  };

  /// Resolve the seed-tile size for the next run (explicit or tuner) and
  /// (re)build the pinned plan if it changed.
  idx_t resolve_tile_elems(const ExecConfig& cfg);
  void materialize(idx_t tile_elems);

  std::string name_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<chain_detail::ChainPlan> plan_;
  std::unique_ptr<perf::OnlineTuner> tuner_;
  int plans_built_ = 0;
  double plan_secs_ = 0.0;
  double plan_secs_reported_ = 0.0;         ///< share already flushed to stats
  ChainRecord* stats_ = nullptr;            ///< bound on first recording run
  std::vector<LoopRecord*> member_slots_;   ///< bound alongside stats_
};

}  // namespace opv
