// Static per-kernel cost metadata: the data the paper reports in Tables II
// and III (useful values moved and floating-point work per element), used by
// the performance accounting to convert loop runtimes into GB/s / GFLOP/s.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace opv {

/// Per-set-element transfer/compute counts. "Values" are counts of payload
/// numbers (the paper's convention: mapping tables and indexing arithmetic
/// are not counted; indirect values are counted once, i.e. perfect
/// intra-loop caching is assumed).
struct KernelInfo {
  std::string name;
  double direct_read = 0;    ///< values read from direct datasets
  double direct_write = 0;   ///< values written to direct datasets
  double indirect_read = 0;  ///< values read through mappings
  double indirect_write = 0; ///< values written/incremented through mappings
  double flops = 0;          ///< floating-point ops (transcendentals count 1)
  std::string description;

  [[nodiscard]] double values_moved() const {
    return direct_read + direct_write + indirect_read + indirect_write;
  }
  /// Useful bytes per element for a given precision.
  [[nodiscard]] double bytes_per_elem(std::size_t value_bytes) const {
    return values_moved() * static_cast<double>(value_bytes);
  }
  /// FLOP per byte at a given precision (the paper's Table II/III column).
  [[nodiscard]] double flop_per_byte(std::size_t value_bytes) const {
    const double b = bytes_per_elem(value_bytes);
    return b > 0 ? flops / b : 0.0;
  }
};

/// Process-wide registry mapping loop names to their KernelInfo.
class KernelRegistry {
 public:
  static KernelRegistry& instance();

  void add(const KernelInfo& info);
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const KernelInfo& get(const std::string& name) const;

 private:
  std::map<std::string, KernelInfo> infos_;
};

}  // namespace opv
