// Access descriptors for op_par_loop arguments (paper Figure 2a).
#pragma once

namespace opv {

/// How a parallel-loop argument is accessed by the elementary kernel.
/// READ/WRITE/RW/INC apply to datasets; INC/MIN/MAX also to globals.
enum class Access {
  READ,   ///< read-only
  WRITE,  ///< kernel fully overwrites the element's values
  RW,     ///< read-modify-write
  INC,    ///< kernel adds contributions (commutative/associative)
  MIN,    ///< global reduction: minimum
  MAX,    ///< global reduction: maximum
};

/// Human-readable access name ("OP_INC" style, for diagnostics).
constexpr const char* access_name(Access a) {
  switch (a) {
    case Access::READ: return "READ";
    case Access::WRITE: return "WRITE";
    case Access::RW: return "RW";
    case Access::INC: return "INC";
    case Access::MIN: return "MIN";
    case Access::MAX: return "MAX";
  }
  return "?";
}

}  // namespace opv
