// Access descriptors for op_par_loop arguments (paper Figure 2a).
//
// Access modes are COMPILE-TIME facts. OP2's code generator specializes each
// parallel loop by substituting literal constants for access modes and
// arities (paper section 5); this engine gets the same effect by carrying
// the mode as a non-type template parameter of the argument descriptor, so
// every gather/scatter branch in the engine is an `if constexpr`.
//
// Two spellings build the same typed descriptor:
//
//   opv::arg<opv::READ>(dat, idx, map)        explicit template argument
//   opv::arg(dat, idx, map, Access::READ)     tag argument (OP2-style shape)
//
// `Access::READ` is not an enum value but a constexpr tag object of type
// `AccessTag<AccessMode::READ>`, so the second spelling is exactly as
// compile-time as the first — the historical op_arg_dat call shape keeps
// compiling, but the mode now travels in the type system.
#pragma once

namespace opv {

/// How a parallel-loop argument is accessed by the elementary kernel.
/// READ/WRITE/RW/INC apply to datasets; READ/INC/MIN/MAX to globals.
enum class AccessMode {
  READ,   ///< read-only
  WRITE,  ///< kernel fully overwrites the element's values
  RW,     ///< read-modify-write
  INC,    ///< kernel adds contributions (commutative/associative)
  MIN,    ///< global reduction: minimum
  MAX,    ///< global reduction: maximum
};

/// Namespace-level constants for the explicit-template spelling
/// (`arg<opv::READ>(...)`).
inline constexpr AccessMode READ = AccessMode::READ;
inline constexpr AccessMode WRITE = AccessMode::WRITE;
inline constexpr AccessMode RW = AccessMode::RW;
inline constexpr AccessMode INC = AccessMode::INC;
inline constexpr AccessMode MIN = AccessMode::MIN;
inline constexpr AccessMode MAX = AccessMode::MAX;

/// Typed access tag: carries the mode in the type so overload deduction can
/// lift it into a template parameter. Implicitly converts to AccessMode for
/// runtime contexts (diagnostics, halo bookkeeping).
template <AccessMode M>
struct AccessTag {
  static constexpr AccessMode mode = M;
  constexpr operator AccessMode() const { return M; }  // NOLINT(google-explicit-constructor)
};

/// Namespace-like holder so the OP2-era `Access::READ` spelling (and the
/// common `using A = Access; A::READ` alias) resolves to typed tags.
struct Access {
  static constexpr AccessTag<AccessMode::READ> READ{};
  static constexpr AccessTag<AccessMode::WRITE> WRITE{};
  static constexpr AccessTag<AccessMode::RW> RW{};
  static constexpr AccessTag<AccessMode::INC> INC{};
  static constexpr AccessTag<AccessMode::MIN> MIN{};
  static constexpr AccessTag<AccessMode::MAX> MAX{};
};

/// Valid modes for dataset arguments (MIN/MAX reductions are global-only).
constexpr bool dat_access_ok(AccessMode a) {
  return a == AccessMode::READ || a == AccessMode::WRITE || a == AccessMode::RW ||
         a == AccessMode::INC;
}

/// Valid modes for global arguments (no element-wise WRITE/RW on globals).
constexpr bool gbl_access_ok(AccessMode a) {
  return a == AccessMode::READ || a == AccessMode::INC || a == AccessMode::MIN ||
         a == AccessMode::MAX;
}

/// True if the mode observes existing values (drives halo freshness).
constexpr bool access_reads(AccessMode a) {
  return a == AccessMode::READ || a == AccessMode::RW;
}

/// True if the mode, applied INDIRECTLY, is a data-driven race the plan
/// must color away (and the distributed layer must halo-execute for).
constexpr bool access_conflicting(AccessMode a) {
  return a == AccessMode::INC || a == AccessMode::RW || a == AccessMode::WRITE;
}

/// True if the mode modifies values (drives halo dirtiness).
constexpr bool access_writes(AccessMode a) { return a != AccessMode::READ; }

/// Human-readable access name ("OP_INC" style, for diagnostics).
constexpr const char* access_name(AccessMode a) {
  switch (a) {
    case AccessMode::READ: return "READ";
    case AccessMode::WRITE: return "WRITE";
    case AccessMode::RW: return "RW";
    case AccessMode::INC: return "INC";
    case AccessMode::MIN: return "MIN";
    case AccessMode::MAX: return "MAX";
  }
  return "?";
}

}  // namespace opv
