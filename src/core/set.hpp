// op_set: a named collection of mesh elements (nodes, edges, cells...).
//
// Three sizes support the distributed-rank execution model (OP2's MPI
// design, reproduced by opv::dist):
//   size()       owned elements (every loop executes at least these),
//   exec_size()  owned + imported "execute halo" elements — loops with
//                indirect increments redundantly execute these so that
//                increments into owned data are complete locally,
//   total_size() exec + imported "non-exec halo" — elements whose data may
//                be read through mappings but never executed.
// In single-process use all three are equal.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace opv {

using idx_t = std::int32_t;

class Set {
 public:
  Set() = default;
  Set(std::string name, idx_t size) : Set(std::move(name), size, size, size) {}
  Set(std::string name, idx_t size, idx_t exec_size, idx_t total_size)
      : name_(std::move(name)), size_(size), exec_size_(exec_size), total_size_(total_size) {
    OPV_REQUIRE(size >= 0 && exec_size >= size && total_size >= exec_size,
                "set '" << name_ << "': invalid sizes " << size << "/" << exec_size << "/"
                        << total_size);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] idx_t size() const { return size_; }
  [[nodiscard]] idx_t exec_size() const { return exec_size_; }
  [[nodiscard]] idx_t total_size() const { return total_size_; }

 private:
  std::string name_;
  idx_t size_ = 0;
  idx_t exec_size_ = 0;
  idx_t total_size_ = 0;
};

}  // namespace opv
