// Execution plans: the run-time pre-processing OP2 performs for loops with
// data-driven races (paper section 3 and 4).
//
// A plan decomposes the iteration set into contiguous mini-partitions
// ("blocks") and colors them so that blocks of one color share no
// indirectly-incremented target element and can run on different threads
// without synchronization. Three element-level schemes are built on top:
//
//   TwoLevel     elements inside a block are colored (work-item / vector
//                lane level); execution order inside a block is unchanged,
//                increments are serialized per lane (SIMD) or done color-by-
//                color (SIMT, Figure 3a).
//   FullPermute  a single global element coloring; the loop executes all
//                elements of color 0, then color 1, ... — every vector of
//                lanes is race-free so hardware scatter is legal, but there
//                is no data reuse between elements of one color.
//   BlockPermute elements are permuted inside each block so same-color
//                elements are adjacent; blocks still fit in cache, lanes
//                are independent within a color run (paper section 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "core/config.hpp"
#include "core/map.hpp"
#include "core/set.hpp"

namespace opv {

/// One indirect-increment conflict source: the loop increments some dataset
/// through map index `idx` of `map`.
struct IncRef {
  const Map* map = nullptr;
  int idx = 0;

  friend bool operator<(const IncRef& a, const IncRef& b) {
    return a.map != b.map ? a.map < b.map : a.idx < b.idx;
  }
  friend bool operator==(const IncRef& a, const IncRef& b) = default;
};

/// A computed execution plan for (set, conflicts, block size, strategy).
struct Plan {
  idx_t nelems = 0;  ///< elements covered (the set's exec size)
  int block_size = 0;
  ColoringStrategy strategy = ColoringStrategy::TwoLevel;

  // ---- block decomposition: block b = [b*block_size, min((b+1)*bs, n)) ----
  idx_t nblocks = 0;
  std::vector<int> block_color;                 ///< per block
  int nblock_colors = 0;
  std::vector<std::vector<idx_t>> color_blocks; ///< blocks of each color

  // ---- TwoLevel / BlockPermute: per-element color within its block -------
  aligned_vector<std::int32_t> elem_color;      ///< size nelems
  std::vector<int> block_nelem_colors;          ///< per block
  int max_elem_colors = 0;

  // ---- FullPermute: execute permute[color_offsets[c]..color_offsets[c+1]) -
  aligned_vector<idx_t> permute;
  std::vector<idx_t> color_offsets;             ///< nglobal_colors+1
  int nglobal_colors = 0;

  // ---- BlockPermute: per-block permutation grouped by element color ------
  // Elements of block b, color c: block_permute[bcol_off[bcol_base[b]+c] ..
  //                                             bcol_off[bcol_base[b]+c+1])
  aligned_vector<idx_t> block_permute;
  std::vector<idx_t> bcol_off;
  std::vector<idx_t> bcol_base;                 ///< nblocks+1

  [[nodiscard]] idx_t block_begin(idx_t b) const { return b * block_size; }
  [[nodiscard]] idx_t block_end(idx_t b) const {
    const idx_t e = (b + 1) * block_size;
    return e < nelems ? e : nelems;
  }
};

// ===== Simt shared-scratch staging (ExecConfig::simt_staging) ===============

/// Runtime residue of one typed loop argument, collected by the engine for
/// stage-plan construction: where the dat lives, how it is addressed and
/// whether the slot writes. Globals and direct slots participate only as
/// exclusion information (a dat also accessed directly is never staged).
struct StageSlotInfo {
  std::byte* base = nullptr;        ///< dat storage (nullptr for globals)
  std::size_t value_bytes = 0;      ///< sizeof(scalar)
  int dim = 0;
  Layout layout = Layout::AoS;      ///< physical layout of the dat
  idx_t plane = 0;                  ///< SoA/AoSoA plane stride
  const idx_t* map = nullptr;       ///< indirect slots only
  int map_dim = 0;
  int map_idx = 0;
  bool indirect = false;
  bool writes = false;              ///< access mode != READ
};

/// The per-block staging schedule for the Simt backend (the paper's
/// shared-memory staging, Fig. 3a): per staged DAT (arg slots sharing a dat
/// share one region, so aliased increments stay correct) a CSR of the
/// sorted-unique target rows each block touches, plus one flat local-index
/// array per staged arg slot. The executor patches the slot's bound state to
/// (scratch, local map, AoS) and runs the unmodified bundle machinery;
/// preload fills scratch from the dat (layout-aware), writeback copies it
/// back for writing regions — legal because block colors separate blocks
/// that share written targets.
struct SimtStagePlan {
  struct Region {
    std::byte* base = nullptr;
    std::size_t value_bytes = 0;
    int dim = 0;
    Layout layout = Layout::AoS;
    idx_t plane = 0;
    bool writeback = false;
    idx_t max_rows = 0;               ///< widest block's row count
    std::vector<idx_t> row_off;       ///< nblocks+1 CSR offsets into rows
    aligned_vector<idx_t> rows;       ///< global target ids, sorted per block
  };
  std::vector<Region> regions;
  std::vector<int> slot_region;                   ///< per arg slot; -1 = unstaged
  std::vector<aligned_vector<idx_t>> slot_lmap;   ///< per slot: element -> local row
  bool viable = false;                            ///< at least one slot stages
};

/// Build the staging schedule for `plan` from the loop's argument slots.
/// Not viable (viable == false) when nothing stages: no indirect slots, or
/// every indirect dat is also accessed directly (staging a copy would break
/// the direct/indirect aliasing the unstaged path preserves).
SimtStagePlan build_simt_stage_plan(const std::vector<StageSlotInfo>& slots, const Plan& plan);

/// Build a plan from scratch (exposed for tests; normal use goes through
/// PlanCache). `conflicts` lists every (map, idx) the loop increments
/// through; an empty list yields a trivially parallel plan (one color).
///
/// `subset`, when non-null, points at `nelems` element ids: the plan then
/// schedules exactly those elements (conflict slots are looked up through
/// the subset ids, and the produced `permute`/`block_permute` arrays contain
/// subset ids, so the permuted executors run them unchanged). Blocks and
/// `elem_color` stay in subset-position space — subset plans are only valid
/// for the permuted strategies (FullPermute/BlockPermute), which is what
/// opv::Loop's slice execution uses (phased interior/boundary runs).
///
/// `nthreads` bounds the team size of the internal per-block coloring
/// parallelism (0 = the OpenMP default). Callers holding a per-rank thread
/// budget (dist rank loops) pass theirs so plan builds do not oversubscribe.
std::shared_ptr<const Plan> build_plan(idx_t nelems, const std::vector<IncRef>& conflicts,
                                       int block_size, ColoringStrategy strategy,
                                       const idx_t* subset = nullptr, int nthreads = 0);

/// Process-wide plan cache keyed purely by CONTENT: the iteration set's
/// shape plus a fingerprint of each conflict map's data, block size and
/// strategy — no Set/Map addresses. Content keys are both safer and more
/// shareable than pointer keys: a map rewritten in place by the renumbering
/// pass changes its fingerprint (a stale coloring under different
/// connectivity would silently race), while two contexts built from the
/// same mesh — e.g. ensemble instances sharing a mesh (serve/ensemble.hpp)
/// — produce identical keys and share one plan build. Conflict order is
/// canonicalized by content, so permuted/duplicated conflict lists hit the
/// same entry. Plans are immutable and shared; construction happens once
/// per key (single-flight).
class PlanCache {
 public:
  /// Cumulative lookup counters since the last reset_counters(): a hit is a
  /// get() that found an existing entry (including one still being built by
  /// another thread), a miss is a get() that had to build. Surfaced through
  /// perf::loop_stats_table's ensemble rows — the measurable form of the
  /// cross-instance plan-sharing claim.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  static PlanCache& instance();

  std::shared_ptr<const Plan> get(const Set& set, const std::vector<IncRef>& conflicts,
                                  int block_size, ColoringStrategy strategy, int nthreads = 0);

  void clear();
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] Counters counters() const;
  void reset_counters();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  PlanCache();
};

}  // namespace opv
