// Per-dat memory layout policy (the AoS / SoA / AoSoA axis).
//
// The paper's vectorized paths (sections 6.1-6.4) pay a strided-access tax
// on every multi-component dat because storage is locked to AoS: a W-wide
// gather of component c touches W cache lines dim elements apart. Sulyok et
// al. (arXiv:1802.03749) show AoS<->SoA selection is a first-order win for
// exactly these loops, and Sun et al. (arXiv:1903.08243) reach the same
// conclusion for CPU SIMD via AoSoA at the vector width. This header is the
// single source of truth for the three addressing schemes; the physical
// relayout happens at context finalize (reorder::convert_layout_bytes),
// mirroring how renumbering is applied, and fetch() stays declaration-order
// AoS-transparent.
//
//   AoS    value(e, c) = data[e*dim + c]           (the historical layout)
//   SoA    value(e, c) = data[c*plane + e]          plane = padded_rows(n)
//   AoSoA  value(e, c) = data[(e/B)*B*dim + c*B + e%B]   B = kAoSoALanes
//
// `plane` is the padded row count (rounded up to kAoSoALanes) so SoA planes
// stay 64-byte aligned for the widest lane count and AoSoA always owns whole
// lane-blocks; the padding rows are zero-initialized and never addressed by
// valid element ids.
#pragma once

#include <cstddef>

#include "core/set.hpp"

namespace opv {

/// Physical memory layout of a dat's element-major storage.
enum class Layout {
  AoS,    ///< array-of-structures: element rows (the default)
  SoA,    ///< structure-of-arrays: one contiguous plane per component
  AoSoA,  ///< tiled hybrid: blocks of kAoSoALanes elements, SoA inside
};

constexpr const char* layout_name(Layout l) {
  switch (l) {
    case Layout::AoS: return "AoS";
    case Layout::SoA: return "SoA";
    case Layout::AoSoA: return "AoSoA";
  }
  return "?";
}

/// AoSoA lane-block size: a multiple of every supported vector width
/// (4/8/16), so a W-chunk aligned to W never straddles two blocks unless it
/// crosses a block boundary the addressing handles anyway.
inline constexpr idx_t kAoSoALanes = 16;
inline constexpr int kAoSoAShift = 4;  ///< log2(kAoSoALanes)

/// Rows of padded storage backing n elements under SoA/AoSoA.
constexpr idx_t padded_rows(idx_t n) {
  return (n + kAoSoALanes - 1) & ~(kAoSoALanes - 1);
}

/// Flat index of (element e, component c) under a layout. `plane` is the
/// padded row count (padded_rows of the dat's total size); AoS ignores it.
constexpr std::size_t layout_offset(Layout l, idx_t e, int c, int dim, idx_t plane) {
  switch (l) {
    case Layout::AoS: return static_cast<std::size_t>(e) * dim + c;
    case Layout::SoA:
      return static_cast<std::size_t>(c) * plane + static_cast<std::size_t>(e);
    case Layout::AoSoA:
      return static_cast<std::size_t>(e >> kAoSoAShift) * (kAoSoALanes * dim) +
             static_cast<std::size_t>(c) * kAoSoALanes +
             static_cast<std::size_t>(e & (kAoSoALanes - 1));
  }
  return 0;
}

}  // namespace opv
