// Context-level mesh renumbering (paper sections 6.2/6.4).
//
// The paper attributes much of res_calc's behavior to the caching efficiency
// of its indirect gathers ("superfluous data movement"); bench/
// ablation_locality quantifies it: a shuffled edge ordering inflates
// res_calc severalfold, while RCM cell renumbering plus edge sorting
// restores most of the gap. This pass turns that observation into a runtime
// guarantee: given the universe of declared sets and maps, it computes one
// permutation per set —
//
//   * the SEED set (the one the application partitions on) is renumbered by
//     reverse Cuthill-McKee over its connectivity graph, derived from the
//     declared maps (two seed elements are adjacent when some row of a map
//     targeting the seed set contains both — e.g. the two cells of an edge);
//   * every FROM-set of a map targeting a renumbered set is then sorted
//     lexicographically by its renumbered targets (e.g. edges ordered by the
//     cells they touch), in rounds until no set changes;
//   * remaining sets (targets only, e.g. nodes) keep their numbering.
//
// Contexts apply the result in place — every Map row-permuted and
// target-relabeled, every Dat row-permuted — and keep the permutations so
// fetch() can hand values back in the original declaration order. The
// contract is relayout transparency: a context with renumbering enabled is
// bitwise-identical to the caller permuting its arrays by hand before
// declaration and un-permuting fetched results (tests/test_reorder.cpp).
// Note that a renumbered run is NOT bitwise-identical to an un-renumbered
// one: reordering an indirect-increment loop reassociates the per-target
// floating-point sums (docs/API.md, "Context-level renumbering").
#pragma once

#include <vector>

#include "common/aligned.hpp"
#include "core/layout.hpp"
#include "core/set.hpp"

namespace opv::reorder {

/// Context-neutral mutable view of one declared map: connectivity from set
/// `from` to set `to` with fixed arity, element-major rows in `data`.
struct MapView {
  int from = -1;
  int to = -1;
  int dim = 0;
  idx_t* data = nullptr;  ///< set_sizes[from] * dim entries
};

/// Per-set permutations computed by compute(): perm[s][old_id] = new_id.
/// An empty vector means the set keeps its declaration numbering.
struct Permutations {
  std::vector<aligned_vector<idx_t>> perm;

  [[nodiscard]] int nsets() const { return static_cast<int>(perm.size()); }
  [[nodiscard]] bool identity(int s) const { return perm[static_cast<std::size_t>(s)].empty(); }
  [[nodiscard]] const aligned_vector<idx_t>& of(int s) const {
    return perm[static_cast<std::size_t>(s)];
  }
};

/// True iff p maps [0,n) onto [0,n) bijectively (n == p.size()).
[[nodiscard]] bool is_permutation(const aligned_vector<idx_t>& p, idx_t n);

/// Inverse of a permutation (old->new becomes new->old).
[[nodiscard]] aligned_vector<idx_t> invert(const aligned_vector<idx_t>& p);

/// CSR adjacency of the seed set derived from the declared maps: two seed
/// elements are adjacent when some row of a map with to == seed contains
/// both (deduplicated, symmetric). When no map targets the seed set with
/// arity >= 2, elements sharing a target of a map FROM the seed set are
/// connected instead (the inverted-map fallback).
void seed_adjacency(const std::vector<idx_t>& set_sizes, const std::vector<MapView>& maps,
                    int seed, aligned_vector<idx_t>& offset, aligned_vector<idx_t>& adj);

/// Reverse Cuthill-McKee order of a CSR graph: BFS visiting unvisited
/// neighbors in ascending degree (ties by id), over every component, then
/// reversed. Returns perm with perm[old] = new.
[[nodiscard]] aligned_vector<idx_t> rcm_order(idx_t n, const aligned_vector<idx_t>& offset,
                                              const aligned_vector<idx_t>& adj);

/// Stable sort permutation (old->new) of a from-set by its row targets:
/// each element's key is its row sorted ascending (after applying `relabel`
/// to every target when non-null), compared lexicographically; ties keep
/// declaration order. This is the generalization of the bench's
/// sort-edges-by-cell.
[[nodiscard]] aligned_vector<idx_t> sort_rows_perm(const idx_t* rows, idx_t n, int dim,
                                                   const aligned_vector<idx_t>* relabel = nullptr);

/// The full context-level pass: RCM on the seed set, then rounds of
/// lexicographic from-set sorting until no set changes. Pure — applies
/// nothing; every returned non-identity permutation is a bijection.
[[nodiscard]] Permutations compute(const std::vector<idx_t>& set_sizes,
                                   const std::vector<MapView>& maps, int seed);

/// Apply the permutations to every map in place: rows move with
/// perm[from], targets relabel through perm[to].
void apply_to_maps(const Permutations& p, std::vector<MapView>& maps,
                   const std::vector<idx_t>& set_sizes);

/// Row-permute element-major data in place: new[perm[e]] = old[e] for rows
/// of elem_bytes bytes (the type-erased form used for Dat storage).
void permute_rows_bytes(const aligned_vector<idx_t>& perm, void* data, std::size_t elem_bytes);

/// Typed in-place row permutation: new[perm[e]*arity + c] = old[e*arity + c].
template <class T>
void permute_rows(const aligned_vector<idx_t>& perm, T* data, int arity) {
  permute_rows_bytes(perm, data, sizeof(T) * static_cast<std::size_t>(arity));
}

/// Type-erased layout conversion (the relayout counterpart of
/// permute_rows_bytes): copy n element rows of dim components, value_bytes
/// each, from `src` under src_layout into `dst` under dst_layout. `plane` is
/// the padded row count of the non-AoS side (core/layout.hpp); src and dst
/// must not alias. Contexts call this at finalize, after renumbering.
void convert_layout_bytes(const void* src, Layout src_layout, void* dst, Layout dst_layout,
                          idx_t n, idx_t plane, int dim, std::size_t value_bytes);

}  // namespace opv::reorder
