// Umbrella header for the opvec core: the complete OP2-style public API.
//
//   opv::Set / opv::Map / opv::Dat<T>        mesh abstraction
//   opv::arg<A> / opv::arg_gbl<A>            typed argument descriptors
//   opv::Access / opv::AccessMode            compile-time access tags
//   opv::Loop                                reusable parallel-loop handle
//   opv::par_loop                            one-shot loop execution
//   opv::ExecConfig / opv::Backend           backend selection
//   opv::Plan / opv::PlanCache               coloring plans (advanced use)
//   opv::reorder                             context-level renumbering pass
//
// The distributed-rank context lives in dist/context.hpp (opv::dist).
#pragma once

#include "core/access.hpp"
#include "core/arg.hpp"
#include "core/config.hpp"
#include "core/dat.hpp"
#include "core/kernel_info.hpp"
#include "core/loop_stats.hpp"
#include "core/map.hpp"
#include "core/par_loop.hpp"
#include "core/plan.hpp"
#include "core/reorder.hpp"
#include "core/set.hpp"
