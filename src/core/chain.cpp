// LoopChain inspector and executor (see chain.hpp for the model).
#include "core/chain.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/error.hpp"
#include "common/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace opv {
namespace chain_detail {

std::vector<Segment> segment_chain(const std::vector<LoopSpec>& specs) {
  std::vector<Segment> segs;
  const int n = static_cast<int>(specs.size());
  int i = 0;
  while (i < n) {
    // Indirect RW: the one access shape whose element-level dependences the
    // tile planner cannot bound through the maps — isolate and run plain.
    if (specs[i].fp->has_indirect_rw()) {
      segs.push_back({i, i + 1, false, 0, {}});
      ++i;
      continue;
    }
    // Grow the maximal fusible run [i, j): stop at an indirect-RW loop, or
    // before a loop that READS a global an earlier loop in THIS run reduces
    // into (the reduced value is only complete once the reducer's every
    // tile ran, so the reader cannot interleave tile-wise with it).
    std::vector<const void*> reduced;
    int j = i;
    while (j < n && !specs[j].fp->has_indirect_rw()) {
      bool raw = false;
      for (const void* g : reduced)
        if (specs[j].fp->reads_gbl(g)) {
          raw = true;
          break;
        }
      if (raw) break;
      for (const void* g : specs[j].fp->gbl_reductions()) reduced.push_back(g);
      ++j;
    }
    segs.push_back({i, j, j - i >= 2, 0, {}});
    i = j;
  }
  return segs;
}

namespace {

/// One dat-bound argument of the loop being assigned, with its label array
/// resolved once (the per-element loop only does array indexing).
struct LabeledAccess {
  std::vector<int>* lam;          ///< λ of the accessed dat
  const idx_t* map = nullptr;     ///< nullptr = direct (target is i)
  int stride = 0, slot = 0;       ///< map row stride / addressed slot
  [[nodiscard]] idx_t target(idx_t i) const {
    return map ? map[static_cast<std::size_t>(i) * stride + slot] : i;
  }
};

}  // namespace

ChainPlan plan_chain(const std::vector<LoopSpec>& specs, idx_t tile_elems) {
  OPV_REQUIRE(tile_elems >= 1, "chain plan: tile_elems must be >= 1, got " << tile_elems);
  ChainPlan plan;
  plan.tile_elems = tile_elems;
  plan.segments = segment_chain(specs);
  for (Segment& seg : plan.segments) {
    if (!seg.fused) continue;
    plan.fused_loops += seg.end - seg.begin;
    const idx_t n0 = specs[static_cast<std::size_t>(seg.begin)].n;
    seg.ntiles = static_cast<int>(std::max<idx_t>(1, (n0 + tile_elems - 1) / tile_elems));
    plan.ntiles += seg.ntiles;

    // λ[d][e]: highest tile that touched (read OR write — reads matter for
    // WAR ordering) element e of dat d so far in this segment. Segments are
    // full barriers, so labels reset per segment. unordered_map mapped
    // values are address-stable, so LabeledAccess may cache pointers.
    std::unordered_map<const DatBase*, std::vector<int>> lambda;
    auto labels = [&](const DatBase* d) -> std::vector<int>& {
      auto it = lambda.find(d);
      if (it == lambda.end())
        it = lambda.emplace(d, std::vector<int>(static_cast<std::size_t>(d->set().total_size()),
                                                -1))
                 .first;
      return it->second;
    };

    seg.offsets.assign(static_cast<std::size_t>(seg.end - seg.begin), {});
    std::vector<int> tile_of;
    for (int l = seg.begin; l < seg.end; ++l) {
      const LoopFootprint& fp = *specs[static_cast<std::size_t>(l)].fp;
      const idx_t n = specs[static_cast<std::size_t>(l)].n;

      std::vector<LabeledAccess> accs;
      for (const ArgFootprint& a : fp.args) {
        if (!a.dat) continue;
        LabeledAccess acc{&labels(a.dat)};
        if (a.indirect) {
          acc.map = a.map->data();
          acc.stride = a.map->dim();
          acc.slot = a.map_idx;
        }
        accs.push_back(acc);
      }

      tile_of.assign(static_cast<std::size_t>(n), 0);
      int prev = 0;
      for (idx_t i = 0; i < n; ++i) {
        int t;
        if (l == seg.begin) {
          // Seed loop: contiguous tile_elems-sized ranges.
          t = static_cast<int>(std::min<idx_t>(i / tile_elems, seg.ntiles - 1));
        } else {
          // Join the highest tile that last touched any accessed datum;
          // unconstrained elements spread position-proportionally so they
          // do not all pile into tile 0.
          t = -1;
          for (const LabeledAccess& a : accs) t = std::max(t, (*a.lam)[a.target(i)]);
          if (t < 0)
            t = static_cast<int>(static_cast<std::int64_t>(i) * seg.ntiles /
                                 std::max<idx_t>(n, 1));
        }
        // Monotone clamp: tiles non-decreasing in element order makes every
        // (tile, loop) subset a contiguous ascending range — the property
        // the bitwise-identical Seq executor and run_range rest on.
        t = std::max(t, prev);
        prev = t;
        tile_of[static_cast<std::size_t>(i)] = t;
        for (const LabeledAccess& a : accs) {
          int& lam = (*a.lam)[a.target(i)];
          lam = std::max(lam, t);
        }
      }

      // Monotone tile_of → offsets: off[t] = first element with tile >= t.
      std::vector<idx_t>& off = seg.offsets[static_cast<std::size_t>(l - seg.begin)];
      off.assign(static_cast<std::size_t>(seg.ntiles) + 1, n);
      off[0] = 0;
      int cur = 0;
      for (idx_t i = 0; i < n; ++i)
        while (cur < tile_of[static_cast<std::size_t>(i)])
          off[static_cast<std::size_t>(++cur)] = i;
    }
  }
  return plan;
}

std::vector<int> tile_candidates(const std::vector<LoopSpec>& specs) {
  // Bytes the chain's distinct dats hold per seed element: the footprint a
  // tile of t elements drags through cache is roughly t * bytes_per_elem.
  double total_bytes = 0.0;
  std::vector<const DatBase*> seen;
  for (const LoopSpec& s : specs)
    for (const ArgFootprint& a : s.fp->args) {
      if (!a.dat || std::find(seen.begin(), seen.end(), a.dat) != seen.end()) continue;
      seen.push_back(a.dat);
      total_bytes += static_cast<double>(a.dat->elem_bytes()) *
                     static_cast<double>(a.dat->set().total_size());
    }
  const idx_t n0 = specs.empty() ? 0 : specs.front().n;
  const double bytes_per_elem = total_bytes / std::max<double>(1.0, static_cast<double>(n0));

  // Cache budget: the per-core L2 by preference — the LLC is shared (other
  // cores, other tenants on cloud parts), so its nominal size wildly
  // overstates what a tile can keep resident, while L2-sized tiles win even
  // when the LLC share is unknown. The tuner's x4 bracket around t0 still
  // reaches LLC-scale tiles when they happen to be better.
  long cache = -1;
#if defined(_SC_LEVEL2_CACHE_SIZE)
  cache = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  if (cache <= 0) cache = sysconf(_SC_LEVEL3_CACHE_SIZE) / 8;
#endif
  if (cache <= 0) cache = 2L << 20;
  const double budget = static_cast<double>(cache);

  std::int64_t t0 = static_cast<std::int64_t>(budget / std::max(bytes_per_elem, 1.0));
  t0 = std::clamp<std::int64_t>(t0, 64, 1 << 24);

  // Bracket t0 for the online tuner (candidates must be positive multiples
  // of 16, ascending, distinct).
  std::vector<int> out;
  for (std::int64_t c : {t0 / 4, t0 / 2, t0, t0 * 2, t0 * 4}) {
    c = std::clamp<std::int64_t>(c / 16 * 16, 16, 1 << 26);
    const int ci = static_cast<int>(c);
    if (std::find(out.begin(), out.end(), ci) == out.end()) out.push_back(ci);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace chain_detail

std::vector<std::string> LoopChain::members() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& nd : nodes_) out.push_back(nd->loop_name());
  return out;
}

idx_t LoopChain::resolve_tile_elems(const ExecConfig& cfg) {
  if (cfg.chain_tile_elems != ExecConfig::kAuto) {
    OPV_REQUIRE(cfg.chain_tile_elems >= 1, "chain '" << name_ << "': chain_tile_elems must be "
                                                     << ">= 1 (or kAuto), got "
                                                     << cfg.chain_tile_elems);
    return cfg.chain_tile_elems;
  }
  if (!tuner_) {
    std::vector<chain_detail::LoopSpec> specs;
    specs.reserve(nodes_.size());
    for (const auto& nd : nodes_) specs.push_back({&nd->footprint(), nd->iter_count()});
    tuner_ = std::make_unique<perf::OnlineTuner>(chain_detail::tile_candidates(specs));
  }
  return tuner_->propose();
}

void LoopChain::materialize(idx_t tile_elems) {
  std::vector<chain_detail::LoopSpec> specs;
  specs.reserve(nodes_.size());
  for (const auto& nd : nodes_) specs.push_back({&nd->footprint(), nd->iter_count()});

  WallTimer timer;
  auto plan = std::make_unique<chain_detail::ChainPlan>(
      chain_detail::plan_chain(specs, tile_elems));
  for (const chain_detail::Segment& seg : plan->segments) {
    if (!seg.fused) continue;
    for (int l = seg.begin; l < seg.end; ++l) {
      const std::vector<idx_t>& off = seg.offsets[static_cast<std::size_t>(l - seg.begin)];
      std::vector<std::pair<idx_t, idx_t>> ranges(static_cast<std::size_t>(seg.ntiles));
      for (int t = 0; t < seg.ntiles; ++t)
        ranges[static_cast<std::size_t>(t)] = {off[static_cast<std::size_t>(t)],
                                               off[static_cast<std::size_t>(t) + 1]};
      nodes_[static_cast<std::size_t>(l)]->set_tile_ranges(std::move(ranges));
    }
  }
  plan_secs_ += timer.seconds();
  plan_ = std::move(plan);
  ++plans_built_;
}

void LoopChain::run(const ExecConfig& cfg) {
  if (nodes_.empty()) return;
  const idx_t tile = resolve_tile_elems(cfg);
  if (!plan_ || plan_->tile_elems != tile) materialize(tile);

  WallTimer total;
  std::vector<double> secs(nodes_.size(), 0.0);
  for (const chain_detail::Segment& seg : plan_->segments) {
    if (!seg.fused) {
      // Plain per-loop execution (self-records its own stats).
      for (int l = seg.begin; l < seg.end; ++l) nodes_[static_cast<std::size_t>(l)]->run_full(cfg);
      continue;
    }
    // Tile waves: all member loops back-to-back per tile, so the tile's
    // data stays cache-resident across the whole segment.
    for (int t = 0; t < seg.ntiles; ++t)
      for (int l = seg.begin; l < seg.end; ++l) {
        WallTimer wt;
        nodes_[static_cast<std::size_t>(l)]->run_tile(cfg, t);
        secs[static_cast<std::size_t>(l)] += wt.seconds();
      }
  }
  const double elapsed = total.seconds();
  if (tuner_ && !tuner_->settled()) tuner_->observe(static_cast<int>(tile), elapsed);

  if (!cfg.collect_stats) return;
  StatsRegistry& reg = StatsRegistry::instance();
  if (stats_ == nullptr) {
    stats_ = &reg.chain_slot(name_);
    reg.set_chain_members(*stats_, members());
    member_slots_.clear();
    for (const auto& nd : nodes_) member_slots_.push_back(&reg.slot(nd->loop_name()));
  }
  // Member rows for FUSED loops only — unfused members self-recorded in
  // run_full. Slice/plan acquisition time flows to the member's own plan
  // column; the chain row's plan column is the inspector alone.
  for (const chain_detail::Segment& seg : plan_->segments) {
    if (!seg.fused) continue;
    for (int l = seg.begin; l < seg.end; ++l) {
      const auto li = static_cast<std::size_t>(l);
      reg.record(*member_slots_[li], secs[li], nodes_[li]->iter_count());
      const double fresh = nodes_[li]->take_fresh_plan_seconds();
      if (fresh > 0.0) reg.record_plan(*member_slots_[li], fresh);
    }
  }
  const double fresh_plan = plan_secs_ - plan_secs_reported_;
  if (fresh_plan > 0.0) {
    reg.record_chain_plan(*stats_, fresh_plan);
    plan_secs_reported_ = plan_secs_;
  }
  reg.record_chain(*stats_, elapsed, plan_->ntiles, plan_->fused_loops, size());
}

}  // namespace opv
