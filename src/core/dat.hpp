// op_dat: data attached to every element of a set, with fixed arity (dim).
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <typeinfo>
#include <utility>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "core/layout.hpp"
#include "core/reorder.hpp"
#include "core/set.hpp"

namespace opv {

/// Largest per-element arity the engine supports (scratch buffers in the
/// vector paths are sized to it; compile-time Dim descriptors are bounded
/// by it at the type level).
inline constexpr int kMaxDim = 8;

/// Type-erased base so plan/halo machinery can handle datasets generically.
class DatBase {
 public:
  DatBase(std::string name, const Set& set, int dim)
      : name_(std::move(name)), set_(&set), dim_(dim) {
    OPV_REQUIRE(dim_ >= 1 && dim_ <= kMaxDim,
                "dat '" << name_ << "': dim must be in [1," << kMaxDim << "]");
  }
  virtual ~DatBase() = default;
  DatBase(const DatBase&) = delete;
  DatBase& operator=(const DatBase&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Set& set() const { return *set_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] virtual std::size_t elem_bytes() const = 0;
  [[nodiscard]] virtual void* raw() = 0;
  [[nodiscard]] virtual const void* raw() const = 0;

  // ---- layout policy (core/layout.hpp) ------------------------------------
  // set_layout() records the REQUESTED layout; the physical relayout happens
  // at context finalize (apply_layout), after renumbering — exactly like the
  // renumbering pass itself, declarations first, transform once. After the
  // layout is frozen (finalize, or the first loop execution the context
  // tracks) any further set_layout throws: the engine's bound access paths
  // and pinned plans read the physical layout, so changing it underneath a
  // running loop would corrupt every subsequent gather.

  /// The physical layout of the storage (AoS until apply_layout runs).
  [[nodiscard]] Layout layout() const { return layout_; }
  /// Padded row count backing SoA/AoSoA addressing (0 while AoS).
  [[nodiscard]] idx_t plane() const { return plane_; }
  /// The layout apply_layout() will install at finalize.
  [[nodiscard]] Layout requested_layout() const { return requested_; }
  /// True once the layout was explicitly chosen (a context default never
  /// overrides an explicit per-dat request).
  [[nodiscard]] bool layout_explicit() const { return layout_explicit_; }

  /// Request a layout for this dat. Legal until the owning context freezes
  /// layouts (finalize / first loop execution).
  void set_layout(Layout l) {
    OPV_REQUIRE(!layout_frozen_, "dat '" << name_
                                         << "': layout is frozen (set_layout must happen "
                                            "before finalize / the first loop execution)");
    requested_ = l;
    layout_explicit_ = true;
  }

  /// Physically convert the storage to the requested layout and freeze it.
  /// Contexts call this at finalize, AFTER renumbering (the renumber pass
  /// permutes AoS rows).
  void apply_layout() {
    OPV_REQUIRE(!layout_frozen_, "dat '" << name_ << "': layout already applied");
    layout_frozen_ = true;
    if (requested_ == Layout::AoS) return;
    relayout_storage(requested_);
    layout_ = requested_;
    plane_ = padded_rows(set_->total_size());
  }

  /// Freeze without converting (contexts freeze every dat at finalize so a
  /// late set_layout fails loudly instead of silently never applying).
  void freeze_layout() { layout_frozen_ = true; }
  [[nodiscard]] bool layout_frozen() const { return layout_frozen_; }

 protected:
  /// Typed storage conversion AoS -> l, implemented by Dat<T>.
  virtual void relayout_storage(Layout l) = 0;

 private:
  std::string name_;
  const Set* set_ = nullptr;
  int dim_ = 0;
  Layout layout_ = Layout::AoS;     ///< physical layout of the storage
  Layout requested_ = Layout::AoS;  ///< layout apply_layout() installs
  idx_t plane_ = 0;                 ///< padded rows (non-AoS only)
  bool layout_explicit_ = false;
  bool layout_frozen_ = false;
};

/// Typed dataset: total_size()*dim values of T in 64-byte-aligned storage.
template <class T>
class Dat : public DatBase {
 public:
  using value_type = T;

  Dat(std::string name, const Set& set, int dim)
      : DatBase(std::move(name), set, dim),
        data_(static_cast<std::size_t>(set.total_size()) * dim, T{}) {}

  Dat(std::string name, const Set& set, int dim, aligned_vector<T> init)
      : DatBase(std::move(name), set, dim), data_(std::move(init)) {
    OPV_REQUIRE(data_.size() == static_cast<std::size_t>(set.total_size()) * dim,
                "dat '" << this->name() << "': init size mismatch");
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const { return {data_.data(), data_.size()}; }

  /// Value c of element e (layout-aware: correct under any physical layout).
  [[nodiscard]] T& at(idx_t e, int c = 0) {
    return data_[layout_offset(layout(), e, c, dim(), plane())];
  }
  [[nodiscard]] const T& at(idx_t e, int c = 0) const {
    return data_[layout_offset(layout(), e, c, dim(), plane())];
  }

  [[nodiscard]] std::size_t elem_bytes() const override { return sizeof(T) * dim(); }
  [[nodiscard]] void* raw() override { return data_.data(); }
  [[nodiscard]] const void* raw() const override { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

 protected:
  /// AoS -> l conversion into padded storage via the type-erased reorder
  /// machinery (padding rows stay zero, so vector code may harmlessly load
  /// them).
  void relayout_storage(Layout l) override {
    const idx_t n = set().total_size();
    const idx_t pl = padded_rows(n);
    aligned_vector<T> out(static_cast<std::size_t>(pl) * dim(), T{});
    reorder::convert_layout_bytes(data_.data(), Layout::AoS, out.data(), l, n, pl, dim(),
                                  sizeof(T));
    data_ = std::move(out);
  }

 private:
  aligned_vector<T> data_;
};

/// Dataset whose arity is part of the TYPE. `arg<A>(fixed)` deduces the
/// descriptor's compile-time Dim from it, and `arg<A, D>(fixed)` with
/// D != N is rejected at compile time — the static counterpart of the
/// runtime dim check plain Dat arguments get at descriptor construction.
template <class T, int N>
class FixedDat final : public Dat<T> {
  static_assert(N >= 1 && N <= kMaxDim, "FixedDat: dim must be in [1,kMaxDim]");

 public:
  static constexpr int static_dim = N;

  FixedDat(std::string name, const Set& set) : Dat<T>(std::move(name), set, N) {}
  FixedDat(std::string name, const Set& set, aligned_vector<T> init)
      : Dat<T>(std::move(name), set, N, std::move(init)) {}
};

/// Compile-time arity of a dataset TYPE: N for FixedDat<T, N>, 0 (unknown
/// until runtime) for plain Dat<T>.
template <class D>
inline constexpr int dat_static_dim_v = 0;
template <class T, int N>
inline constexpr int dat_static_dim_v<FixedDat<T, N>> = N;

}  // namespace opv
