#include "core/reorder.hpp"

#include <algorithm>
#include <cstring>
#include <queue>
#include <utility>

#include "common/error.hpp"

namespace opv::reorder {

bool is_permutation(const aligned_vector<idx_t>& p, idx_t n) {
  if (p.size() != static_cast<std::size_t>(n)) return false;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (idx_t v : p) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = 1;
  }
  return true;
}

aligned_vector<idx_t> invert(const aligned_vector<idx_t>& p) {
  aligned_vector<idx_t> inv(p.size());
  for (std::size_t e = 0; e < p.size(); ++e)
    inv[static_cast<std::size_t>(p[e])] = static_cast<idx_t>(e);
  return inv;
}

namespace {

/// Deduplicated symmetric CSR from an undirected edge list.
void build_csr(idx_t n, std::vector<std::pair<idx_t, idx_t>>& edges,
               aligned_vector<idx_t>& offset, aligned_vector<idx_t>& adj) {
  // Symmetrize, then sort+unique.
  const std::size_t half = edges.size();
  edges.reserve(half * 2);
  for (std::size_t i = 0; i < half; ++i) edges.emplace_back(edges[i].second, edges[i].first);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  offset.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : edges) ++offset[static_cast<std::size_t>(a) + 1];
  for (idx_t v = 0; v < n; ++v)
    offset[static_cast<std::size_t>(v) + 1] += offset[static_cast<std::size_t>(v)];
  adj.resize(edges.size());
  std::size_t k = 0;
  for (const auto& [a, b] : edges) adj[k++] = b;  // edges sorted by (a, b)
  (void)k;
}

}  // namespace

void seed_adjacency(const std::vector<idx_t>& set_sizes, const std::vector<MapView>& maps,
                    int seed, aligned_vector<idx_t>& offset, aligned_vector<idx_t>& adj) {
  const idx_t n = set_sizes[static_cast<std::size_t>(seed)];
  std::vector<std::pair<idx_t, idx_t>> edges;

  bool have_incoming = false;
  for (const MapView& m : maps) {
    if (m.to != seed || m.dim < 2) continue;
    have_incoming = true;
    const idx_t rows = set_sizes[static_cast<std::size_t>(m.from)];
    for (idx_t e = 0; e < rows; ++e) {
      const idx_t* row = m.data + static_cast<std::size_t>(e) * m.dim;
      for (int i = 0; i < m.dim; ++i)
        for (int j = i + 1; j < m.dim; ++j)
          if (row[i] != row[j]) edges.emplace_back(row[i], row[j]);
    }
  }

  if (!have_incoming) {
    // Inverted-map fallback: seed elements sharing a target are adjacent.
    for (const MapView& m : maps) {
      if (m.from != seed) continue;
      const idx_t ntgt = set_sizes[static_cast<std::size_t>(m.to)];
      // target -> referencing seed elements (CSR).
      aligned_vector<idx_t> toff(static_cast<std::size_t>(ntgt) + 1, 0);
      const std::size_t nent = static_cast<std::size_t>(n) * m.dim;
      for (std::size_t i = 0; i < nent; ++i) ++toff[static_cast<std::size_t>(m.data[i]) + 1];
      for (idx_t t = 0; t < ntgt; ++t)
        toff[static_cast<std::size_t>(t) + 1] += toff[static_cast<std::size_t>(t)];
      aligned_vector<idx_t> telems(nent);
      aligned_vector<idx_t> cursor(toff.begin(), toff.end() - 1);
      for (idx_t e = 0; e < n; ++e)
        for (int k = 0; k < m.dim; ++k)
          telems[static_cast<std::size_t>(
              cursor[static_cast<std::size_t>(m.data[static_cast<std::size_t>(e) * m.dim + k])]++)] = e;
      for (idx_t t = 0; t < ntgt; ++t)
        for (idx_t i = toff[static_cast<std::size_t>(t)]; i < toff[static_cast<std::size_t>(t) + 1];
             ++i)
          for (idx_t j = i + 1; j < toff[static_cast<std::size_t>(t) + 1]; ++j)
            if (telems[static_cast<std::size_t>(i)] != telems[static_cast<std::size_t>(j)])
              edges.emplace_back(telems[static_cast<std::size_t>(i)],
                                 telems[static_cast<std::size_t>(j)]);
    }
  }

  build_csr(n, edges, offset, adj);
}

aligned_vector<idx_t> rcm_order(idx_t n, const aligned_vector<idx_t>& offset,
                                const aligned_vector<idx_t>& adj) {
  auto degree = [&offset](idx_t v) {
    return offset[static_cast<std::size_t>(v) + 1] - offset[static_cast<std::size_t>(v)];
  };
  aligned_vector<idx_t> order;  // order[k] = old id visited k-th
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  aligned_vector<idx_t> nbrs;

  for (idx_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    std::queue<idx_t> q;
    q.push(seed);
    visited[static_cast<std::size_t>(seed)] = 1;
    while (!q.empty()) {
      const idx_t v = q.front();
      q.pop();
      order.push_back(v);
      nbrs.clear();
      for (idx_t k = offset[static_cast<std::size_t>(v)];
           k < offset[static_cast<std::size_t>(v) + 1]; ++k) {
        const idx_t u = adj[static_cast<std::size_t>(k)];
        if (!visited[static_cast<std::size_t>(u)]) nbrs.push_back(u);
      }
      std::sort(nbrs.begin(), nbrs.end(), [&degree](idx_t a, idx_t b) {
        const idx_t da = degree(a), db = degree(b);
        return da != db ? da < db : a < b;
      });
      for (idx_t u : nbrs) {
        visited[static_cast<std::size_t>(u)] = 1;
        q.push(u);
      }
    }
  }

  aligned_vector<idx_t> perm(static_cast<std::size_t>(n));
  for (idx_t k = 0; k < n; ++k)
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = n - 1 - k;
  return perm;
}

namespace {

/// Stable index sort by a flattened fixed-width key matrix.
aligned_vector<idx_t> lex_sort(idx_t n, int keydim, const aligned_vector<idx_t>& keys) {
  aligned_vector<idx_t> by_old(static_cast<std::size_t>(n));
  for (idx_t e = 0; e < n; ++e) by_old[static_cast<std::size_t>(e)] = e;
  std::sort(by_old.begin(), by_old.end(), [&](idx_t a, idx_t b) {
    const idx_t* ka = keys.data() + static_cast<std::size_t>(a) * keydim;
    const idx_t* kb = keys.data() + static_cast<std::size_t>(b) * keydim;
    for (int c = 0; c < keydim; ++c)
      if (ka[c] != kb[c]) return ka[c] < kb[c];
    return a < b;  // stability: ties keep declaration order
  });
  aligned_vector<idx_t> perm(static_cast<std::size_t>(n));
  for (idx_t k = 0; k < n; ++k) perm[static_cast<std::size_t>(by_old[static_cast<std::size_t>(k)])] = k;
  return perm;
}

}  // namespace

aligned_vector<idx_t> sort_rows_perm(const idx_t* rows, idx_t n, int dim,
                                     const aligned_vector<idx_t>* relabel) {
  aligned_vector<idx_t> keys(static_cast<std::size_t>(n) * dim);
  for (idx_t e = 0; e < n; ++e) {
    idx_t* key = keys.data() + static_cast<std::size_t>(e) * dim;
    for (int k = 0; k < dim; ++k) {
      const idx_t t = rows[static_cast<std::size_t>(e) * dim + k];
      key[k] = relabel ? (*relabel)[static_cast<std::size_t>(t)] : t;
    }
    std::sort(key, key + dim);  // orientation-insensitive key
  }
  return lex_sort(n, dim, keys);
}

Permutations compute(const std::vector<idx_t>& set_sizes, const std::vector<MapView>& maps,
                     int seed) {
  const int nsets = static_cast<int>(set_sizes.size());
  OPV_REQUIRE(seed >= 0 && seed < nsets, "reorder: seed set " << seed << " out of range");
  Permutations p;
  p.perm.resize(static_cast<std::size_t>(nsets));

  // 1. RCM over the seed set's derived connectivity graph.
  aligned_vector<idx_t> offset, adj;
  seed_adjacency(set_sizes, maps, seed, offset, adj);
  p.perm[static_cast<std::size_t>(seed)] =
      rcm_order(set_sizes[static_cast<std::size_t>(seed)], offset, adj);

  // 2. Rounds of lexicographic from-set sorting: a set is renumbered as soon
  //    as at least one of its maps targets an already-renumbered set; the
  //    sort key concatenates the sorted renumbered rows of every such map
  //    (declaration order), so e.g. edges order by the cells they touch.
  std::vector<char> renumbered(static_cast<std::size_t>(nsets), 0);
  renumbered[static_cast<std::size_t>(seed)] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < nsets; ++s) {
      if (renumbered[static_cast<std::size_t>(s)]) continue;
      std::vector<const MapView*> qual;
      for (const MapView& m : maps)
        if (m.from == s && renumbered[static_cast<std::size_t>(m.to)]) qual.push_back(&m);
      if (qual.empty()) continue;

      const idx_t n = set_sizes[static_cast<std::size_t>(s)];
      int keydim = 0;
      for (const MapView* m : qual) keydim += m->dim;
      aligned_vector<idx_t> keys(static_cast<std::size_t>(n) * keydim);
      for (idx_t e = 0; e < n; ++e) {
        idx_t* key = keys.data() + static_cast<std::size_t>(e) * keydim;
        int at = 0;
        for (const MapView* m : qual) {
          const aligned_vector<idx_t>& tp = p.perm[static_cast<std::size_t>(m->to)];
          for (int k = 0; k < m->dim; ++k) {
            const idx_t t = m->data[static_cast<std::size_t>(e) * m->dim + k];
            key[at + k] = tp.empty() ? t : tp[static_cast<std::size_t>(t)];
          }
          std::sort(key + at, key + at + m->dim);
          at += m->dim;
        }
      }
      p.perm[static_cast<std::size_t>(s)] = lex_sort(n, keydim, keys);
      renumbered[static_cast<std::size_t>(s)] = 1;
      changed = true;
    }
  }

  for (int s = 0; s < nsets; ++s)
    OPV_REQUIRE(p.identity(s) || is_permutation(p.of(s), set_sizes[static_cast<std::size_t>(s)]),
                "reorder: computed permutation for set " << s << " is not a bijection");
  return p;
}

void apply_to_maps(const Permutations& p, std::vector<MapView>& maps,
                   const std::vector<idx_t>& set_sizes) {
  for (MapView& m : maps) {
    const std::size_t rows = static_cast<std::size_t>(set_sizes[static_cast<std::size_t>(m.from)]);
    if (!p.identity(m.to)) {
      const aligned_vector<idx_t>& tp = p.of(m.to);
      for (std::size_t i = 0; i < rows * m.dim; ++i)
        m.data[i] = tp[static_cast<std::size_t>(m.data[i])];
    }
    if (!p.identity(m.from)) permute_rows(p.of(m.from), m.data, m.dim);
  }
}

void permute_rows_bytes(const aligned_vector<idx_t>& perm, void* data, std::size_t elem_bytes) {
  const std::size_t n = perm.size();
  if (n == 0 || elem_bytes == 0) return;
  auto* bytes = static_cast<unsigned char*>(data);
  std::vector<unsigned char> tmp(n * elem_bytes);
  for (std::size_t e = 0; e < n; ++e)
    std::memcpy(tmp.data() + static_cast<std::size_t>(perm[e]) * elem_bytes,
                bytes + e * elem_bytes, elem_bytes);
  std::memcpy(bytes, tmp.data(), n * elem_bytes);
}

void convert_layout_bytes(const void* src, Layout src_layout, void* dst, Layout dst_layout,
                          idx_t n, idx_t plane, int dim, std::size_t value_bytes) {
  const auto* sb = static_cast<const unsigned char*>(src);
  auto* db = static_cast<unsigned char*>(dst);
  for (idx_t e = 0; e < n; ++e)
    for (int c = 0; c < dim; ++c)
      std::memcpy(db + layout_offset(dst_layout, e, c, dim, plane) * value_bytes,
                  sb + layout_offset(src_layout, e, c, dim, plane) * value_bytes, value_bytes);
}

}  // namespace opv::reorder
