// opv::guard: vectorizable health scans over simulation state.
//
// check_finite(dat) is the detection half of the serve/ HealthPolicy loop: a
// NaN or Inf anywhere in a field means the instance has blown up and should
// be rolled back to its last checkpoint instead of marching garbage forward.
// The scan classifies by exponent bits in the integer domain
// ((bits & expo_mask) == expo_mask <=> NaN or +-Inf), which autovectorizes
// cleanly at -O3 — no per-lane branches, no FP compares that would
// themselves trip FP exception state — and ORs verdicts across a chunk so
// the hot loop is reduction-only, with an early exit between chunks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "core/dat.hpp"

namespace opv::guard {

namespace detail {

inline constexpr std::size_t kChunk = 4096;  ///< early-exit granularity

template <class T, class Bits, Bits ExpoMask>
bool all_finite_impl(const T* p, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = i + kChunk < n ? i + kChunk : n;
    Bits bad = 0;
    for (std::size_t k = i; k < end; ++k) {
      Bits bits;
      std::memcpy(&bits, p + k, sizeof(T));
      bad |= static_cast<Bits>((bits & ExpoMask) == ExpoMask);
    }
    if (bad != 0) return false;
    i = end;
  }
  return true;
}

}  // namespace detail

/// True iff no value in [p, p+n) is NaN or +-Inf.
inline bool all_finite(const float* p, std::size_t n) {
  return detail::all_finite_impl<float, std::uint32_t, 0x7F800000u>(p, n);
}
inline bool all_finite(const double* p, std::size_t n) {
  return detail::all_finite_impl<double, std::uint64_t, 0x7FF0000000000000ull>(p, n);
}

/// Index of the first NaN/Inf value, or -1 when all finite — the slow
/// (scalar) diagnostic companion of all_finite for error messages.
template <class T>
std::ptrdiff_t first_nonfinite(const T* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (!all_finite(p + i, 1)) return static_cast<std::ptrdiff_t>(i);
  return -1;
}

/// Scan a whole dat's physical storage (owned rows, halo copies and layout
/// padding alike — padding is zero-initialized, hence finite). Non-floating
/// dats are trivially healthy.
template <class T>
bool check_finite(const Dat<T>& d) {
  if constexpr (std::is_floating_point_v<T>)
    return all_finite(d.data(), d.size());
  else
    return true;
}

}  // namespace opv::guard
