// Per-loop timing registry: accumulates wall time and element counts for
// every named op_par_loop so benches can report the paper's per-kernel
// time / bandwidth / GFLOP-s breakdowns (Tables V-VIII).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace opv {

struct LoopRecord {
  double seconds = 0.0;
  std::int64_t calls = 0;
  std::int64_t elements = 0;  ///< total elements processed across calls

  // Per-rank imbalance accounting (distributed loops; nranks == 0 until a
  // dist::Loop records rank times). Each field accumulates its per-call
  // statistic, so rank_max_seconds / rank_mean_seconds is the aggregate
  // max/mean imbalance ratio over the whole run (paper section 6).
  int nranks = 0;
  double rank_max_seconds = 0.0;   ///< sum over calls of the slowest rank
  double rank_min_seconds = 0.0;   ///< sum over calls of the fastest rank
  double rank_mean_seconds = 0.0;  ///< sum over calls of the rank mean

  // Halo-exchange accounting (distributed loops; paper section 6.5): wall
  // time spent moving halo bytes for this loop (begin+wait of the
  // non-blocking pair, or the blocking exchange) and the number of scalar
  // values moved. Both accumulate across calls; `seconds` above is compute
  // only, so exchange_seconds / (seconds + exchange_seconds) is the loop's
  // communication fraction.
  double exchange_seconds = 0.0;
  std::int64_t exchanged_values = 0;

  // Plan-construction accounting (the run-time pre-processing cost the
  // ROADMAP names): wall time this loop spent acquiring coloring plans
  // (cache lookups plus the builds they trigger, including per-slice subset
  // plans). Amortizes toward zero over a long run — the `plan` column in
  // perf::loop_stats_table makes the remaining share visible.
  double plan_seconds = 0.0;
};

class StatsRegistry {
 public:
  static StatsRegistry& instance();

  /// Stable accumulator slot for a loop name. The reference stays valid for
  /// the process lifetime (clear() zeroes records, it does not erase them),
  /// so Loop handles resolve their slot once at construction and record with
  /// no per-call name lookup.
  [[nodiscard]] LoopRecord& slot(const std::string& loop);

  /// Accumulate into a slot obtained from slot() (thread-safe).
  void record(LoopRecord& slot, double seconds, std::int64_t elements);

  /// Accumulate one distributed call's per-rank wall times into a slot:
  /// max/min/mean are summed across calls so max/mean exposes the aggregate
  /// partition imbalance (perf::rank_imbalance).
  void record_ranks(LoopRecord& slot, const double* seconds, int nranks);

  /// Accumulate one distributed call's halo-exchange wall time and moved
  /// scalar-value count into a slot (perf::loop_stats_table's exchange
  /// column).
  void record_exchange(LoopRecord& slot, double seconds, std::int64_t values);

  /// Accumulate plan-acquisition wall time into a slot (perf::
  /// loop_stats_table's plan column).
  void record_plan(LoopRecord& slot, double seconds);

  /// Accumulate by name (one-shot callers; does the lookup every time).
  void record(const std::string& loop, double seconds, std::int64_t elements);

  [[nodiscard]] LoopRecord get(const std::string& loop) const;

  /// All records with at least one call, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, LoopRecord>> all() const;

  /// Zero every record. Slot references remain valid.
  void clear();

 private:
  struct Impl;
  Impl* impl_;
  StatsRegistry();
};

}  // namespace opv
