// Per-loop timing registry: accumulates wall time and element counts for
// every named op_par_loop so benches can report the paper's per-kernel
// time / bandwidth / GFLOP-s breakdowns (Tables V-VIII).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace opv {

struct LoopRecord {
  double seconds = 0.0;
  std::int64_t calls = 0;
  std::int64_t elements = 0;  ///< total elements processed across calls

  // Per-rank imbalance accounting (distributed loops; nranks == 0 until a
  // dist::Loop records rank times). Each field accumulates its per-call
  // statistic, so rank_max_seconds / rank_mean_seconds is the aggregate
  // max/mean imbalance ratio over the whole run (paper section 6).
  int nranks = 0;
  double rank_max_seconds = 0.0;   ///< sum over calls of the slowest rank
  double rank_min_seconds = 0.0;   ///< sum over calls of the fastest rank
  double rank_mean_seconds = 0.0;  ///< sum over calls of the rank mean

  // Halo-exchange accounting (distributed loops; paper section 6.5): wall
  // time spent moving halo bytes for this loop (begin+wait of the
  // non-blocking pair, or the blocking exchange) and the number of scalar
  // values moved. Both accumulate across calls; `seconds` above is compute
  // only, so exchange_seconds / (seconds + exchange_seconds) is the loop's
  // communication fraction.
  double exchange_seconds = 0.0;
  std::int64_t exchanged_values = 0;

  // Plan-construction accounting (the run-time pre-processing cost the
  // ROADMAP names): wall time this loop spent acquiring coloring plans
  // (cache lookups plus the builds they trigger, including per-slice subset
  // plans). Amortizes toward zero over a long run — the `plan` column in
  // perf::loop_stats_table makes the remaining share visible.
  double plan_seconds = 0.0;

  // Memory-layout tag (core/layout.hpp): the layouts of the dats the loop's
  // arguments bound at its last run, e.g. "SoA" when uniform or "AoS+SoA"
  // when mixed; empty until a loop stamps it. Surfaces as the `layout`
  // column in perf::loop_stats_table so ablation runs show which physical
  // layout each kernel actually executed against.
  std::string layout;
};

/// Aggregate accounting for one LoopChain (core/chain.hpp): total chained
/// wall time plus the chain-level plan (inspector) cost and tiling shape.
/// Member loops still record their own LoopRecord rows; perf::
/// loop_stats_table groups them under the chain row via `members`.
struct ChainRecord {
  double seconds = 0.0;       ///< total chained execution wall time
  std::int64_t calls = 0;     ///< chain.run() invocations
  int tiles = 0;              ///< tiles under the pinned plan (last run)
  int fused_loops = 0;        ///< members executing tiled (last run)
  int member_loops = 0;       ///< chain size (last run)
  double plan_seconds = 0.0;  ///< inspector (tile assignment) wall time
  std::vector<std::string> members;  ///< member loop names, chain order
};

/// Aggregate accounting for one serve::Ensemble run (serve/ensemble.hpp):
/// scheduler wall time, work throughput and the shared-resource statistics
/// (pool occupancy, cross-instance plan-cache traffic) that motivate
/// running N instances in one process at all.
struct EnsembleRecord {
  double seconds = 0.0;            ///< total run() wall time
  std::int64_t runs = 0;           ///< Ensemble::run() invocations
  std::int64_t steps = 0;          ///< instance timesteps executed
  std::int64_t completed = 0;      ///< instances that finished all steps
  std::int64_t failed = 0;         ///< instances retired by an exception
  int instances = 0;               ///< ensemble size (last run)
  int workers = 0;                 ///< pool size (last run)
  double busy_seconds = 0.0;       ///< summed per-worker stepping time
  std::int64_t plan_hits = 0;      ///< PlanCache hits during run()
  std::int64_t plan_misses = 0;    ///< PlanCache builds during run()

  // Resilience accounting (serve/resilience.hpp): checkpoint-restore-retry
  // activity under a HealthPolicy. All zero for an ensemble running without
  // a policy, so the stats table shows its resilience row only when the
  // recovery machinery actually engaged.
  std::int64_t retries = 0;            ///< recovery attempts (restore + re-run)
  std::int64_t restores = 0;           ///< successful checkpoint restores
  std::int64_t degraded = 0;           ///< degrade() hook invocations
  std::int64_t checkpoints = 0;        ///< checkpoints taken during run()
  double checkpoint_seconds = 0.0;     ///< wall time spent snapshotting
  double backoff_seconds = 0.0;        ///< wall time slept backing off
  [[nodiscard]] bool any_resilience() const {
    return retries + restores + degraded + checkpoints != 0;
  }
};

class StatsRegistry {
 public:
  static StatsRegistry& instance();

  /// Stable accumulator slot for a loop name. The reference stays valid for
  /// the process lifetime (clear() zeroes records, it does not erase them),
  /// so Loop handles resolve their slot once at construction and record with
  /// no per-call name lookup.
  ///
  /// Under an active StatsScope (below) the name is prefixed with
  /// "<scope>/" before lookup — the per-instance isolation mechanism:
  /// ensemble instances run their loops under distinct scopes, so N
  /// instances of one app record into N distinct rows instead of blurring
  /// into one.
  [[nodiscard]] LoopRecord& slot(const std::string& loop);

  /// Accumulate into a slot obtained from slot() (thread-safe).
  void record(LoopRecord& slot, double seconds, std::int64_t elements);

  /// Accumulate one distributed call's per-rank wall times into a slot:
  /// max/min/mean are summed across calls so max/mean exposes the aggregate
  /// partition imbalance (perf::rank_imbalance).
  void record_ranks(LoopRecord& slot, const double* seconds, int nranks);

  /// Accumulate one distributed call's halo-exchange wall time and moved
  /// scalar-value count into a slot (perf::loop_stats_table's exchange
  /// column).
  void record_exchange(LoopRecord& slot, double seconds, std::int64_t values);

  /// Accumulate plan-acquisition wall time into a slot (perf::
  /// loop_stats_table's plan column).
  void record_plan(LoopRecord& slot, double seconds);

  /// Accumulate by name (one-shot callers; does the lookup every time).
  void record(const std::string& loop, double seconds, std::int64_t elements);

  [[nodiscard]] LoopRecord get(const std::string& loop) const;

  /// All records with at least one call, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, LoopRecord>> all() const;

  /// Stable accumulator slot for a chain name (same lifetime contract as
  /// slot(): clear() zeroes, never erases).
  [[nodiscard]] ChainRecord& chain_slot(const std::string& chain);

  /// Accumulate one chain.run()'s wall time and record the tiling shape of
  /// the plan it executed under (thread-safe).
  void record_chain(ChainRecord& slot, double seconds, int tiles, int fused_loops,
                    int member_loops);

  /// Accumulate chain-level inspector wall time into a chain slot.
  void record_chain_plan(ChainRecord& slot, double seconds);

  /// Pin the chain's member loop names (chain order) on its slot, so the
  /// stats table can group member rows under the chain row.
  void set_chain_members(ChainRecord& slot, std::vector<std::string> members);

  [[nodiscard]] ChainRecord get_chain(const std::string& chain) const;

  /// All chain records with at least one call, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, ChainRecord>> all_chains() const;

  /// Stable accumulator slot for an ensemble name (same lifetime contract
  /// as slot(): clear() zeroes, never erases).
  [[nodiscard]] EnsembleRecord& ensemble_slot(const std::string& ensemble);

  /// Accumulate one Ensemble::run()'s aggregate statistics (thread-safe).
  void record_ensemble(EnsembleRecord& slot, const EnsembleRecord& delta);

  [[nodiscard]] EnsembleRecord get_ensemble(const std::string& ensemble) const;

  /// All ensemble records with at least one run, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, EnsembleRecord>> all_ensembles() const;

  /// Zero every record (loop, chain and ensemble). Slot references remain
  /// valid.
  void clear();

 private:
  struct Impl;
  Impl* impl_;
  StatsRegistry();
};

/// RAII stats scope: while alive on a thread, every slot()/chain_slot()
/// lookup on that thread resolves "<scope>/<name>" instead of "<name>".
/// Scopes nest by replacement (the inner scope's string wins until it
/// exits). The ensemble scheduler opens one around each instance's steps;
/// a Loop whose FIRST recording run happens inside the scope binds its
/// pinned stats slot to the scoped row, isolating per-instance stats even
/// though instances share one process-wide registry.
class StatsScope {
 public:
  explicit StatsScope(std::string scope);
  ~StatsScope();
  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

  /// The scope active on the calling thread ("" when none).
  [[nodiscard]] static const std::string& current();

 private:
  std::string prev_;
};

}  // namespace opv
