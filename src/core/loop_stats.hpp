// Per-loop timing registry: accumulates wall time and element counts for
// every named op_par_loop so benches can report the paper's per-kernel
// time / bandwidth / GFLOP-s breakdowns (Tables V-VIII).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace opv {

struct LoopRecord {
  double seconds = 0.0;
  std::int64_t calls = 0;
  std::int64_t elements = 0;  ///< total elements processed across calls
};

class StatsRegistry {
 public:
  static StatsRegistry& instance();

  /// Stable accumulator slot for a loop name. The reference stays valid for
  /// the process lifetime (clear() zeroes records, it does not erase them),
  /// so Loop handles resolve their slot once at construction and record with
  /// no per-call name lookup.
  [[nodiscard]] LoopRecord& slot(const std::string& loop);

  /// Accumulate into a slot obtained from slot() (thread-safe).
  void record(LoopRecord& slot, double seconds, std::int64_t elements);

  /// Accumulate by name (one-shot callers; does the lookup every time).
  void record(const std::string& loop, double seconds, std::int64_t elements);

  [[nodiscard]] LoopRecord get(const std::string& loop) const;

  /// All records with at least one call, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, LoopRecord>> all() const;

  /// Zero every record. Slot references remain valid.
  void clear();

 private:
  struct Impl;
  Impl* impl_;
  StatsRegistry();
};

}  // namespace opv
