// Per-loop timing registry: accumulates wall time and element counts for
// every named op_par_loop so benches can report the paper's per-kernel
// time / bandwidth / GFLOP-s breakdowns (Tables V-VIII).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace opv {

struct LoopRecord {
  double seconds = 0.0;
  std::int64_t calls = 0;
  std::int64_t elements = 0;  ///< total elements processed across calls
};

class StatsRegistry {
 public:
  static StatsRegistry& instance();

  void record(const std::string& loop, double seconds, std::int64_t elements);
  [[nodiscard]] LoopRecord get(const std::string& loop) const;
  [[nodiscard]] std::vector<std::pair<std::string, LoopRecord>> all() const;
  void clear();

 private:
  struct Impl;
  Impl* impl_;
  StatsRegistry();
};

}  // namespace opv
