#include "core/plan.hpp"

#include <omp.h>

#include <algorithm>
#include <bit>
#include <exception>
#include <future>
#include <map>
#include <mutex>
#include <tuple>

#include "common/error.hpp"

namespace opv {

namespace {

/// Flattens the target elements of all conflict maps into one slot space
/// (distinct target sets get disjoint offset ranges).
class SlotSpace {
 public:
  explicit SlotSpace(const std::vector<IncRef>& conflicts) {
    for (const IncRef& c : conflicts) {
      const Set* to = &c.map->to();
      if (std::find(sets_.begin(), sets_.end(), to) == sets_.end()) {
        sets_.push_back(to);
        offsets_.push_back(total_);
        total_ += to->total_size();
      }
    }
  }

  [[nodiscard]] idx_t total() const { return total_; }

  /// Global slot of conflict c's target for element e.
  [[nodiscard]] idx_t slot(const IncRef& c, idx_t e) const {
    const Set* to = &c.map->to();
    for (std::size_t i = 0; i < sets_.size(); ++i)
      if (sets_[i] == to) return offsets_[i] + (*c.map)(e, c.idx);
    return -1;  // unreachable: every conflict's set was registered
  }

 private:
  std::vector<const Set*> sets_;
  std::vector<idx_t> offsets_;
  idx_t total_ = 0;
};

/// Greedy multi-round coloring of `items` (each item owns a list of target
/// slots). Within a round, 32 colors are packed into a bitmask per slot;
/// items that cannot be colored roll over to the next round (OP2's scheme).
/// `slots_of(item, out)` appends the item's slots to out.
template <class SlotsOf>
int greedy_color(idx_t nitems, idx_t nslots, SlotsOf&& slots_of, std::vector<int>& color) {
  color.assign(static_cast<std::size_t>(nitems), -1);
  if (nitems == 0) return 0;
  std::vector<std::uint32_t> work(static_cast<std::size_t>(nslots), 0);
  std::vector<idx_t> slots;
  int base = 0;
  idx_t remaining = nitems;
  int ncolors = 0;
  while (remaining > 0) {
    std::fill(work.begin(), work.end(), 0u);
    for (idx_t it = 0; it < nitems; ++it) {
      if (color[it] >= 0) continue;
      slots.clear();
      slots_of(it, slots);
      std::uint32_t mask = 0;
      for (idx_t s : slots) mask |= work[s];
      const std::uint32_t avail = ~mask;
      if (avail == 0) continue;  // next round
      const int bit = std::countr_zero(avail);
      color[it] = base + bit;
      ncolors = std::max(ncolors, color[it] + 1);
      const std::uint32_t flag = 1u << bit;
      for (idx_t s : slots) work[s] |= flag;
      --remaining;
    }
    base += 32;
    OPV_REQUIRE(base < (1 << 20), "coloring failed to converge (degenerate conflicts?)");
  }
  return ncolors;
}

/// Per-block element coloring with an epoch-tagged work array (avoids
/// clearing the whole slot space for every block).
struct BlockColorer {
  std::vector<std::uint32_t> work;
  std::vector<idx_t> epoch;
  idx_t cur_epoch = 0;

  explicit BlockColorer(idx_t nslots)
      : work(static_cast<std::size_t>(nslots), 0), epoch(static_cast<std::size_t>(nslots), -1) {}

  /// Colors elements [begin,end); writes into elem_color; returns #colors.
  /// `subset` maps positions to element ids (nullptr = identity).
  int color_block(idx_t begin, idx_t end, const std::vector<IncRef>& conflicts,
                  const SlotSpace& space, aligned_vector<std::int32_t>& elem_color,
                  const idx_t* subset) {
    int ncolors = 0;
    int base = 0;
    idx_t remaining = end - begin;
    for (idx_t e = begin; e < end; ++e) elem_color[e] = -1;
    while (remaining > 0) {
      ++cur_epoch;
      for (idx_t e = begin; e < end; ++e) {
        if (elem_color[e] >= 0) continue;
        std::uint32_t mask = 0;
        for (const IncRef& c : conflicts) {
          const idx_t s = space.slot(c, subset ? subset[e] : e);
          if (epoch[s] == cur_epoch) mask |= work[s];
        }
        const std::uint32_t avail = ~mask;
        if (avail == 0) continue;
        const int bit = std::countr_zero(avail);
        elem_color[e] = base + bit;
        ncolors = std::max(ncolors, elem_color[e] + 1);
        for (const IncRef& c : conflicts) {
          const idx_t s = space.slot(c, subset ? subset[e] : e);
          if (epoch[s] != cur_epoch) {
            epoch[s] = cur_epoch;
            work[s] = 0;
          }
          work[s] |= 1u << bit;
        }
        --remaining;
      }
      base += 32;
      OPV_REQUIRE(base < (1 << 20), "element coloring failed to converge");
    }
    return ncolors;
  }
};

}  // namespace

std::shared_ptr<const Plan> build_plan(idx_t nelems, const std::vector<IncRef>& conflicts,
                                       int block_size, ColoringStrategy strategy,
                                       const idx_t* subset, int nthreads) {
  OPV_REQUIRE(block_size >= 16 && block_size % 16 == 0,
              "block size must be a positive multiple of 16, got " << block_size);
  auto plan = std::make_shared<Plan>();
  Plan& p = *plan;
  p.nelems = nelems;
  p.block_size = block_size;
  p.strategy = strategy;
  p.nblocks = (nelems + block_size - 1) / block_size;

  const SlotSpace space(conflicts);
  // Position -> element id (identity without a subset). Coloring runs in
  // position space; conflict slots are resolved through the actual ids.
  const auto elem_of = [subset](idx_t e) { return subset ? subset[e] : e; };

  // ---- block coloring (TwoLevel & BlockPermute; trivial without conflicts)
  if (conflicts.empty() || strategy == ColoringStrategy::FullPermute) {
    p.block_color.assign(static_cast<std::size_t>(p.nblocks), 0);
    p.nblock_colors = p.nblocks > 0 ? 1 : 0;
  } else {
    auto block_slots = [&](idx_t b, std::vector<idx_t>& out) {
      for (idx_t e = p.block_begin(b); e < p.block_end(b); ++e)
        for (const IncRef& c : conflicts) out.push_back(space.slot(c, elem_of(e)));
    };
    p.nblock_colors = greedy_color(p.nblocks, space.total(), block_slots, p.block_color);
  }
  p.color_blocks.assign(static_cast<std::size_t>(std::max(p.nblock_colors, 1)), {});
  for (idx_t b = 0; b < p.nblocks; ++b) p.color_blocks[p.block_color[b]].push_back(b);

  // ---- element colors within blocks (TwoLevel & BlockPermute) -------------
  if (strategy != ColoringStrategy::FullPermute) {
    p.elem_color.assign(static_cast<std::size_t>(nelems), 0);
    p.block_nelem_colors.assign(static_cast<std::size_t>(p.nblocks), nelems > 0 ? 1 : 0);
    if (!conflicts.empty()) {
      // Blocks are independent (each writes its own elem_color range and
      // block_nelem_colors slot), so the per-block coloring — the dominant
      // plan-construction cost — runs across threads, each worker with its
      // own epoch-tagged BlockColorer. Results are identical to the serial
      // sweep; exceptions (degenerate-conflict convergence failures) are
      // rethrown on the calling thread.
      int max_colors = 0;
      std::exception_ptr error;
      const int nt = nthreads > 0 ? nthreads : omp_get_max_threads();
#pragma omp parallel num_threads(nt)
      {
        BlockColorer bc(space.total());
        int local_max = 0;
#pragma omp for schedule(static)
        for (idx_t b = 0; b < p.nblocks; ++b) {
          try {
            const int nc = bc.color_block(p.block_begin(b), p.block_end(b), conflicts, space,
                                          p.elem_color, subset);
            p.block_nelem_colors[b] = nc;
            local_max = std::max(local_max, nc);
          } catch (...) {
#pragma omp critical(opv_plan_error)
            if (!error) error = std::current_exception();
          }
        }
#pragma omp critical(opv_plan_max)
        max_colors = std::max(max_colors, local_max);
      }
      if (error) std::rethrow_exception(error);
      p.max_elem_colors = max_colors;
    } else {
      p.max_elem_colors = nelems > 0 ? 1 : 0;
    }
  }

  // ---- FullPermute: one global coloring, permutation sorted by color ------
  if (strategy == ColoringStrategy::FullPermute) {
    std::vector<int> gcolor;
    if (conflicts.empty()) {
      gcolor.assign(static_cast<std::size_t>(nelems), 0);
      p.nglobal_colors = nelems > 0 ? 1 : 0;
    } else {
      auto elem_slots = [&](idx_t e, std::vector<idx_t>& out) {
        for (const IncRef& c : conflicts) out.push_back(space.slot(c, elem_of(e)));
      };
      p.nglobal_colors = greedy_color(nelems, space.total(), elem_slots, gcolor);
    }
    // Stable counting sort by color.
    p.color_offsets.assign(static_cast<std::size_t>(p.nglobal_colors) + 1, 0);
    for (idx_t e = 0; e < nelems; ++e) ++p.color_offsets[gcolor[e] + 1];
    for (int c = 0; c < p.nglobal_colors; ++c) p.color_offsets[c + 1] += p.color_offsets[c];
    p.permute.assign(static_cast<std::size_t>(nelems), 0);
    std::vector<idx_t> cursor(p.color_offsets.begin(), p.color_offsets.end() - 1);
    for (idx_t e = 0; e < nelems; ++e) p.permute[cursor[gcolor[e]]++] = e;
  }

  // ---- BlockPermute: per-block stable sort by element color ---------------
  if (strategy == ColoringStrategy::BlockPermute) {
    p.block_permute.assign(static_cast<std::size_t>(nelems), 0);
    p.bcol_base.assign(static_cast<std::size_t>(p.nblocks) + 1, 0);
    for (idx_t b = 0; b < p.nblocks; ++b)
      p.bcol_base[b + 1] = p.bcol_base[b] + p.block_nelem_colors[b] + 1;
    p.bcol_off.assign(static_cast<std::size_t>(p.bcol_base[p.nblocks]), 0);
    for (idx_t b = 0; b < p.nblocks; ++b) {
      const idx_t begin = p.block_begin(b), end = p.block_end(b);
      const int nc = p.block_nelem_colors[b];
      idx_t* off = p.bcol_off.data() + p.bcol_base[b];
      for (int c = 0; c <= nc; ++c) off[c] = 0;
      for (idx_t e = begin; e < end; ++e) ++off[p.elem_color[e] + 1];
      off[0] = begin;
      for (int c = 0; c < nc; ++c) off[c + 1] += off[c];
      std::vector<idx_t> cursor(off, off + nc);
      for (idx_t e = begin; e < end; ++e) p.block_permute[cursor[p.elem_color[e]]++] = e;
    }
  }

  // ---- subset translation: permutations carry element ids, not positions --
  if (subset) {
    for (idx_t& e : p.permute) e = subset[e];
    for (idx_t& e : p.block_permute) e = subset[e];
  }

  return plan;
}

// ---- PlanCache ---------------------------------------------------------------

namespace {

/// FNV-1a fingerprint of one conflict map's contents (arity, endpoint set
/// sizes, full connectivity data). Hashing is linear in the map data but
/// runs only on plan ACQUISITION — once per (loop, strategy, block size),
/// orders of magnitude rarer and cheaper than the coloring it guards.
std::uint64_t map_fingerprint(const Map& m) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(m.dim()));
  mix(static_cast<std::uint64_t>(m.from().total_size()));
  mix(static_cast<std::uint64_t>(m.to().total_size()));
  const std::size_t n = static_cast<std::size_t>(m.from().total_size()) * m.dim();
  const idx_t* data = m.data();
  for (std::size_t i = 0; i < n; ++i) mix(static_cast<std::uint64_t>(data[i]));
  return h;
}

}  // namespace

struct PlanCache::Impl {
  // Content key: set shape + per-conflict (map fingerprint, idx) pairs in
  // canonical (content-sorted) order + block size + strategy. No pointers:
  // two sets/maps with identical content are the same key by construction,
  // which is what lets ensemble instances built from one shared mesh reuse
  // a single plan build, and what turns a map rewritten in place (the
  // renumbering pass) into a clean miss rather than a stale hit.
  using ConflictSig = std::vector<std::pair<std::uint64_t, int>>;
  using Key = std::tuple<idx_t, idx_t, idx_t, ConflictSig, int, ColoringStrategy>;
  // Single-flight: the cache stores a shared_future per key, inserted
  // BEFORE the build runs, so concurrent callers for the same key block on
  // one build instead of each constructing (and racing to insert) their
  // own plan. A failed build erases its entry so later callers can retry.
  std::map<Key, std::shared_future<std::shared_ptr<const Plan>>> cache;
  Counters counters;
  mutable std::mutex mu;
};

PlanCache::PlanCache() : impl_(std::make_shared<Impl>()) {}

PlanCache& PlanCache::instance() {
  static PlanCache pc;
  return pc;
}

std::shared_ptr<const Plan> PlanCache::get(const Set& set, const std::vector<IncRef>& conflicts,
                                           int block_size, ColoringStrategy strategy,
                                           int nthreads) {
  std::vector<IncRef> sorted = conflicts;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // Canonicalize by CONTENT, not address: fingerprint each conflict map
  // once, then order conflicts by (fingerprint, idx). Any permutation or
  // duplication of the caller's conflict list lands on the same key, and
  // the order is stable across contexts holding distinct-but-identical
  // maps (a plan is valid for the conflict SET regardless of list order).
  Impl::ConflictSig sig;
  sig.reserve(sorted.size());
  {
    std::uint64_t prev_fp = 0;
    const Map* prev_map = nullptr;
    for (const IncRef& c : sorted) {  // pointer-sorted: equal maps adjacent
      if (c.map != prev_map) {
        prev_fp = map_fingerprint(*c.map);
        prev_map = c.map;
      }
      sig.emplace_back(prev_fp, c.idx);
    }
  }
  std::vector<std::size_t> order(sorted.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sig[a] < sig[b]; });
  std::vector<IncRef> canonical;
  canonical.reserve(sorted.size());
  Impl::ConflictSig canonical_sig;
  canonical_sig.reserve(sorted.size());
  for (const std::size_t i : order) {
    canonical.push_back(sorted[i]);
    canonical_sig.push_back(sig[i]);
  }
  const idx_t nelems = conflicts.empty() ? set.size() : set.exec_size();
  Impl::Key key{nelems, set.size(), set.total_size(), canonical_sig, block_size, strategy};

  std::promise<std::shared_ptr<const Plan>> promise;
  std::shared_future<std::shared_ptr<const Plan>> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->cache.find(key);
    if (it != impl_->cache.end()) {
      future = it->second;
      ++impl_->counters.hits;
    } else {
      future = promise.get_future().share();
      impl_->cache.emplace(key, future);
      ++impl_->counters.misses;
      builder = true;
    }
  }
  if (!builder) return future.get();

  try {
    // Build from the canonical order so the plan a key maps to does not
    // depend on which caller's conflict order got there first.
    auto plan = build_plan(nelems, canonical, block_size, strategy, nullptr, nthreads);
    promise.set_value(plan);
    return plan;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->cache.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->cache.clear();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->cache.size();
}

PlanCache::Counters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->counters;
}

void PlanCache::reset_counters() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->counters = Counters{};
}

SimtStagePlan build_simt_stage_plan(const std::vector<StageSlotInfo>& slots, const Plan& plan) {
  SimtStagePlan sp;
  const int nslots = static_cast<int>(slots.size());
  sp.slot_region.assign(nslots, -1);
  sp.slot_lmap.resize(nslots);

  // A dat also bound directly keeps its direct/indirect aliasing only if
  // every access goes through the one global copy — exclude it.
  std::vector<const std::byte*> direct_bases;
  for (const auto& s : slots)
    if (!s.indirect && s.base != nullptr) direct_bases.push_back(s.base);

  // Group stageable indirect slots by dat storage: aliased slots (e.g. two
  // INC args through different map indices of one dat) share one region, so
  // preload/writeback happens once per dat per block.
  for (int i = 0; i < nslots; ++i) {
    const auto& s = slots[i];
    if (!s.indirect || s.base == nullptr) continue;
    if (std::find(direct_bases.begin(), direct_bases.end(), s.base) != direct_bases.end())
      continue;
    int r = -1;
    for (std::size_t j = 0; j < sp.regions.size(); ++j)
      if (sp.regions[j].base == s.base) r = static_cast<int>(j);
    if (r < 0) {
      r = static_cast<int>(sp.regions.size());
      SimtStagePlan::Region rg;
      rg.base = s.base;
      rg.value_bytes = s.value_bytes;
      rg.dim = s.dim;
      rg.layout = s.layout;
      rg.plane = s.plane;
      sp.regions.push_back(std::move(rg));
    }
    sp.regions[static_cast<std::size_t>(r)].writeback |= s.writes;
    sp.slot_region[i] = r;
  }
  if (sp.regions.empty()) return sp;

  // Per-block sorted-unique target rows per region (CSR over blocks), then
  // each staged slot's flat element -> block-local-row index array.
  for (std::size_t r = 0; r < sp.regions.size(); ++r) {
    auto& rg = sp.regions[r];
    rg.row_off.assign(static_cast<std::size_t>(plan.nblocks) + 1, 0);
    std::vector<idx_t> block_rows;
    for (idx_t b = 0; b < plan.nblocks; ++b) {
      block_rows.clear();
      for (int i = 0; i < nslots; ++i) {
        if (sp.slot_region[i] != static_cast<int>(r)) continue;
        const auto& s = slots[i];
        for (idx_t e = plan.block_begin(b); e < plan.block_end(b); ++e)
          block_rows.push_back(s.map[static_cast<std::size_t>(e) * s.map_dim + s.map_idx]);
      }
      std::sort(block_rows.begin(), block_rows.end());
      block_rows.erase(std::unique(block_rows.begin(), block_rows.end()), block_rows.end());
      rg.rows.insert(rg.rows.end(), block_rows.begin(), block_rows.end());
      rg.row_off[static_cast<std::size_t>(b) + 1] = static_cast<idx_t>(rg.rows.size());
      rg.max_rows = std::max(rg.max_rows, static_cast<idx_t>(block_rows.size()));
    }
  }
  for (int i = 0; i < nslots; ++i) {
    if (sp.slot_region[i] < 0) continue;
    const auto& rg = sp.regions[static_cast<std::size_t>(sp.slot_region[i])];
    const auto& s = slots[i];
    auto& lmap = sp.slot_lmap[i];
    lmap.resize(static_cast<std::size_t>(plan.nelems));
    for (idx_t b = 0; b < plan.nblocks; ++b) {
      const idx_t* lo = rg.rows.data() + rg.row_off[static_cast<std::size_t>(b)];
      const idx_t* hi = rg.rows.data() + rg.row_off[static_cast<std::size_t>(b) + 1];
      for (idx_t e = plan.block_begin(b); e < plan.block_end(b); ++e) {
        const idx_t tgt = s.map[static_cast<std::size_t>(e) * s.map_dim + s.map_idx];
        lmap[static_cast<std::size_t>(e)] = static_cast<idx_t>(std::lower_bound(lo, hi, tgt) - lo);
      }
    }
  }
  sp.viable = true;
  return sp;
}

}  // namespace opv
