#include <map>
#include <mutex>

#include "common/error.hpp"
#include "core/config.hpp"
#include "core/kernel_info.hpp"
#include "core/loop_stats.hpp"

namespace opv {

ExecConfig& default_config() {
  static ExecConfig cfg;
  return cfg;
}

// ---- KernelRegistry ---------------------------------------------------------

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry r;
  return r;
}

void KernelRegistry::add(const KernelInfo& info) { infos_[info.name] = info; }

bool KernelRegistry::has(const std::string& name) const { return infos_.count(name) != 0; }

const KernelInfo& KernelRegistry::get(const std::string& name) const {
  const auto it = infos_.find(name);
  OPV_REQUIRE(it != infos_.end(), "no KernelInfo registered for loop '" << name << "'");
  return it->second;
}

// ---- StatsRegistry ----------------------------------------------------------

struct StatsRegistry::Impl {
  std::map<std::string, LoopRecord> records;
  std::map<std::string, ChainRecord> chains;
  std::map<std::string, EnsembleRecord> ensembles;
  mutable std::mutex mu;
};

namespace {

/// The calling thread's stats scope (StatsScope). thread_local so ensemble
/// workers stepping different instances concurrently each resolve their own
/// instance's prefix.
std::string& tls_scope() {
  thread_local std::string scope;
  return scope;
}

/// "<scope>/<name>", or plain "<name>" outside any scope.
std::string scoped(const std::string& name) {
  const std::string& s = tls_scope();
  return s.empty() ? name : s + "/" + name;
}

}  // namespace

StatsScope::StatsScope(std::string scope) : prev_(std::move(tls_scope())) {
  tls_scope() = std::move(scope);
}

StatsScope::~StatsScope() { tls_scope() = std::move(prev_); }

const std::string& StatsScope::current() { return tls_scope(); }

StatsRegistry::StatsRegistry() : impl_(new Impl) {}

StatsRegistry& StatsRegistry::instance() {
  static StatsRegistry r;
  return r;
}

LoopRecord& StatsRegistry::slot(const std::string& loop) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->records[scoped(loop)];  // std::map nodes are address-stable
}

void StatsRegistry::record(LoopRecord& slot, double seconds, std::int64_t elements) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.seconds += seconds;
  slot.calls += 1;
  slot.elements += elements;
}

void StatsRegistry::record_ranks(LoopRecord& slot, const double* seconds, int nranks) {
  if (nranks <= 0) return;
  double mx = seconds[0], mn = seconds[0], sum = 0.0;
  for (int r = 0; r < nranks; ++r) {
    mx = seconds[r] > mx ? seconds[r] : mx;
    mn = seconds[r] < mn ? seconds[r] : mn;
    sum += seconds[r];
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.nranks = nranks;
  slot.rank_max_seconds += mx;
  slot.rank_min_seconds += mn;
  slot.rank_mean_seconds += sum / nranks;
}

void StatsRegistry::record_exchange(LoopRecord& slot, double seconds, std::int64_t values) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.exchange_seconds += seconds;
  slot.exchanged_values += values;
}

void StatsRegistry::record_plan(LoopRecord& slot, double seconds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.plan_seconds += seconds;
}

void StatsRegistry::record(const std::string& loop, double seconds, std::int64_t elements) {
  record(slot(loop), seconds, elements);
}

LoopRecord StatsRegistry::get(const std::string& loop) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->records.find(loop);
  return it == impl_->records.end() ? LoopRecord{} : it->second;
}

std::vector<std::pair<std::string, LoopRecord>> StatsRegistry::all() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::pair<std::string, LoopRecord>> out;
  for (const auto& [name, rec] : impl_->records)
    if (rec.calls > 0) out.emplace_back(name, rec);
  return out;
}

ChainRecord& StatsRegistry::chain_slot(const std::string& chain) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->chains[scoped(chain)];  // std::map nodes are address-stable
}

void StatsRegistry::record_chain(ChainRecord& slot, double seconds, int tiles, int fused_loops,
                                 int member_loops) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.seconds += seconds;
  slot.calls += 1;
  slot.tiles = tiles;
  slot.fused_loops = fused_loops;
  slot.member_loops = member_loops;
}

void StatsRegistry::record_chain_plan(ChainRecord& slot, double seconds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.plan_seconds += seconds;
}

void StatsRegistry::set_chain_members(ChainRecord& slot, std::vector<std::string> members) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.members = std::move(members);
}

ChainRecord StatsRegistry::get_chain(const std::string& chain) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->chains.find(chain);
  return it == impl_->chains.end() ? ChainRecord{} : it->second;
}

std::vector<std::pair<std::string, ChainRecord>> StatsRegistry::all_chains() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::pair<std::string, ChainRecord>> out;
  for (const auto& [name, rec] : impl_->chains)
    if (rec.calls > 0) out.emplace_back(name, rec);
  return out;
}

EnsembleRecord& StatsRegistry::ensemble_slot(const std::string& ensemble) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->ensembles[ensemble];  // std::map nodes are address-stable
}

void StatsRegistry::record_ensemble(EnsembleRecord& slot, const EnsembleRecord& delta) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  slot.seconds += delta.seconds;
  slot.runs += delta.runs;
  slot.steps += delta.steps;
  slot.completed += delta.completed;
  slot.failed += delta.failed;
  slot.instances = delta.instances;
  slot.workers = delta.workers;
  slot.busy_seconds += delta.busy_seconds;
  slot.plan_hits += delta.plan_hits;
  slot.plan_misses += delta.plan_misses;
  slot.retries += delta.retries;
  slot.restores += delta.restores;
  slot.degraded += delta.degraded;
  slot.checkpoints += delta.checkpoints;
  slot.checkpoint_seconds += delta.checkpoint_seconds;
  slot.backoff_seconds += delta.backoff_seconds;
}

EnsembleRecord StatsRegistry::get_ensemble(const std::string& ensemble) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->ensembles.find(ensemble);
  return it == impl_->ensembles.end() ? EnsembleRecord{} : it->second;
}

std::vector<std::pair<std::string, EnsembleRecord>> StatsRegistry::all_ensembles() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::pair<std::string, EnsembleRecord>> out;
  for (const auto& [name, rec] : impl_->ensembles)
    if (rec.runs > 0) out.emplace_back(name, rec);
  return out;
}

void StatsRegistry::clear() {
  // Zero instead of erase: Loop handles hold stable slot references.
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, rec] : impl_->records) rec = LoopRecord{};
  for (auto& [name, rec] : impl_->chains) rec = ChainRecord{};
  for (auto& [name, rec] : impl_->ensembles) rec = EnsembleRecord{};
}

}  // namespace opv
