// Execution configuration: which backend runs a parallel loop and how.
#pragma once

#include <string>

namespace opv {

/// Parallelization backend for op_par_loop (paper sections 4-5).
enum class Backend {
  Seq,     ///< reference serial execution
  OpenMP,  ///< threads over colored blocks, scalar kernels (baseline)
  AutoVec, ///< OpenMP + #pragma omp simd on lane-independent inner loops
  Simd,    ///< explicit vector intrinsics: gather / vector kernel / scatter
  Simt,    ///< OpenCL-model emulation: work-groups from a dynamic queue,
           ///< lock-step W-wide bundles, colored masked increments
};

/// Race-handling scheme for loops with indirect increments (paper section 4).
enum class ColoringStrategy {
  TwoLevel,     ///< blocks colored vs races; increments serialized per lane
  FullPermute,  ///< one global coloring; execute color-by-color; hw scatter
  BlockPermute, ///< per-block color permutation; cache-friendly; hw scatter
};

constexpr const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Seq: return "Seq";
    case Backend::OpenMP: return "OpenMP";
    case Backend::AutoVec: return "AutoVec";
    case Backend::Simd: return "Simd";
    case Backend::Simt: return "Simt";
  }
  return "?";
}

constexpr const char* coloring_name(ColoringStrategy c) {
  switch (c) {
    case ColoringStrategy::TwoLevel: return "TwoLevel";
    case ColoringStrategy::FullPermute: return "FullPermute";
    case ColoringStrategy::BlockPermute: return "BlockPermute";
  }
  return "?";
}

/// Per-loop (or per-application) execution configuration.
struct ExecConfig {
  Backend backend = Backend::OpenMP;
  ColoringStrategy coloring = ColoringStrategy::TwoLevel;
  int simd_width = 0;   ///< lanes; 0 = widest compiled for the data type
  int block_size = 512; ///< mini-partition size (elements); multiple of 16
  int nthreads = 0;     ///< 0 = OpenMP default
  bool collect_stats = true;

  [[nodiscard]] std::string to_string() const {
    std::string s = backend_name(backend);
    s += "/";
    s += coloring_name(coloring);
    s += " W=" + std::to_string(simd_width) + " B=" + std::to_string(block_size) +
         " T=" + std::to_string(nthreads);
    return s;
  }
};

/// Process-wide default configuration used by the two-argument par_loop.
ExecConfig& default_config();

}  // namespace opv
