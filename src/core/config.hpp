// Execution configuration: which backend runs a parallel loop and how.
#pragma once

#include <string>

#include "core/layout.hpp"

namespace opv {

/// Parallelization backend for op_par_loop (paper sections 4-5).
enum class Backend {
  Seq,     ///< reference serial execution
  OpenMP,  ///< threads over colored blocks, scalar kernels (baseline)
  AutoVec, ///< OpenMP + #pragma omp simd on lane-independent inner loops
  Simd,    ///< explicit vector intrinsics: gather / vector kernel / scatter
  Simt,    ///< OpenCL-model emulation: work-groups from a dynamic queue,
           ///< lock-step W-wide bundles, colored masked increments
};

/// Race-handling scheme for loops with indirect increments (paper section 4).
enum class ColoringStrategy {
  TwoLevel,     ///< blocks colored vs races; increments serialized per lane
  FullPermute,  ///< one global coloring; execute color-by-color; hw scatter
  BlockPermute, ///< per-block color permutation; cache-friendly; hw scatter
};

constexpr const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Seq: return "Seq";
    case Backend::OpenMP: return "OpenMP";
    case Backend::AutoVec: return "AutoVec";
    case Backend::Simd: return "Simd";
    case Backend::Simt: return "Simt";
  }
  return "?";
}

constexpr const char* coloring_name(ColoringStrategy c) {
  switch (c) {
    case ColoringStrategy::TwoLevel: return "TwoLevel";
    case ColoringStrategy::FullPermute: return "FullPermute";
    case ColoringStrategy::BlockPermute: return "BlockPermute";
  }
  return "?";
}

/// Layout heuristic per backend (the context-level default a driver opts
/// into with set_default_layout(default_layout(backend))): the scalar
/// backends keep AoS (one element's components share a cache line — the
/// best case for scalar sweeps), the explicit-vector backends want SoA
/// (component gathers become dense per-plane, direct accesses become
/// unit-stride plane loads), and the Simt model mirrors the GPU guidance
/// of Sulyok et al. (arXiv:1802.03749): SoA for coalesced-style access.
constexpr Layout default_layout(Backend b) {
  switch (b) {
    case Backend::Seq:
    case Backend::OpenMP: return Layout::AoS;
    case Backend::AutoVec:
    case Backend::Simd:
    case Backend::Simt: return Layout::SoA;
  }
  return Layout::AoS;
}

/// Per-loop (or per-application) execution configuration.
struct ExecConfig {
  /// block_size value requesting online autotuning: each Loop handle sweeps
  /// the perf::OnlineTuner candidates over its first runs (every run is a
  /// real execution, just with a varied block size) and then pins the
  /// fastest for the rest of its lifetime.
  static constexpr int kAuto = 0;
  /// The hand-tuned fallback used when no plan (and hence no block size)
  /// is ever needed, or before the tuner has produced a proposal.
  static constexpr int kDefaultBlockSize = 512;

  Backend backend = Backend::OpenMP;
  ColoringStrategy coloring = ColoringStrategy::TwoLevel;
  int simd_width = 0;   ///< lanes; 0 = widest compiled for the data type
  int block_size = kDefaultBlockSize;  ///< mini-partition size (elements),
                                       ///< multiple of 16; kAuto = autotune
  int nthreads = 0;     ///< 0 = OpenMP default
  bool collect_stats = true;

  /// Seed-tile size for cross-loop sparse tiling (core/chain.hpp): how many
  /// elements of a chain's first iteration set seed each tile. kAuto sizes
  /// the tile to a cache budget from the chain's per-element footprint and
  /// lets the chain's perf::OnlineTuner refine it over the first runs;
  /// an explicit value (>= 1) pins the tiling at the first plan.
  int chain_tile_elems = kAuto;

  /// Simt backend: stage gathered indirect dats into a block-shared scratch
  /// buffer before the kernel body runs and flush after (the paper's
  /// shared-memory staging on the GPU-like path, Fig. 3a's "shared memory"
  /// arrays). Opt-in: staging reassociates indirect-increment sums at block
  /// granularity, so staged Simt matches unstaged only to field-norm
  /// tolerance (Seq stays bitwise regardless).
  bool simt_staging = false;

  [[nodiscard]] std::string to_string() const {
    std::string s = backend_name(backend);
    s += "/";
    s += coloring_name(coloring);
    s += " W=" + std::to_string(simd_width) +
         " B=" + (block_size == kAuto ? std::string("auto") : std::to_string(block_size)) +
         " T=" + std::to_string(nthreads);
    return s;
  }
};

/// Process-wide default configuration used by the two-argument par_loop.
ExecConfig& default_config();

}  // namespace opv
