// op_par_loop: the execution engine.
//
// OP2 uses source-to-source code generation to produce one specialized stub
// per parallel loop (paper Fig. 2b for MPI, Fig. 3a for OpenCL, Fig. 3b for
// AVX). This engine obtains the same specializations by template
// instantiation: every argument descriptor carries its access mode, its
// arity (Dim) and directness as template parameters (core/arg.hpp), so each
// gather/scatter below is an `if constexpr` and each per-component loop an
// index-sequence expansion — per instantiation the compiler sees exactly
// the branch-free straight-line code OP2's generator would have emitted.
// Runtime-dim descriptors (the compatibility spelling) keep looped
// gathers/scatters; bench/ablation_static_dim.cpp measures the gap.
// The user kernel is a functor templated over its value type: instantiating
// with T = double produces the scalar loops; with T = simd::Vec<double,W>
// exactly the gather / vector-kernel / colored-scatter structure of Fig. 3b,
// including the scalar pre/post sweeps. Backends:
//
//   Seq      reference scalar execution
//   OpenMP   threads over colored blocks, scalar kernel (the baseline)
//   AutoVec  scalar kernel on lane-independent (permuted) inner loops
//            annotated with #pragma omp simd - the compiler may or may not
//            vectorize them (the paper's auto-vectorization experiments)
//   Simd     explicit vector classes: gathers, vector kernel, serialized or
//            hardware scatters depending on the coloring strategy
//   Simt     OpenCL-on-CPU model: work-groups pulled from a dynamic queue,
//            W-wide lock-step bundles, per-color masked increments (Fig. 3a)
//
// Two entry points:
//
//   opv::Loop handle — constructed once, run many times. Conflict analysis
//   happens at construction, the coloring Plan and the stats slot are pinned
//   on first use, so steady-state iteration does zero per-call setup.
//
//   opv::par_loop(kernel, name, set, cfg, args...) — the OP2-shaped free
//   function, now a thin wrapper over a one-shot Loop.
#pragma once

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "core/arg.hpp"
#include "core/config.hpp"
#include "core/footprint.hpp"
#include "core/loop_stats.hpp"
#include "core/plan.hpp"
#include "perf/tuner.hpp"
#include "simd/simd.hpp"

namespace opv {

namespace detail {

inline int resolve_threads(int requested) {
  return requested > 0 ? requested : omp_get_max_threads();
}

/// Per-component expansion. A compile-time Dim expands as an
/// index-sequence fold — every f(c) is a distinct statement with a literal
/// component index, so gathers/scatters fully unroll at instantiation time
/// (the engine's analog of OP2's generator "substituting literal constants",
/// paper section 5). Runtime-dim descriptors (Dim == kDynDim) keep a plain
/// loop over the bound arity — the measured-slower compatibility path
/// (bench/ablation_static_dim.cpp).
template <int Dim, class F>
inline void for_each_dim(int rdim, F&& f) {
  if constexpr (Dim != kDynDim) {
    [&]<int... Cs>(std::integer_sequence<int, Cs...>) {
      (f(Cs), ...);
    }(std::make_integer_sequence<int, Dim>{});
  } else {
    for (int c = 0; c < rdim; ++c) f(c);
  }
}

// ===== bound scalar arguments ==============================================

template <class S, AccessMode A, int Dim, bool Ind>
struct BoundDat {
  S* data = nullptr;
  const idx_t* map = nullptr;
  int map_dim = 0;
  int map_idx = 0;
  int dim = 0;  ///< == Dim when Dim != kDynDim (addressing then constant-folds)
  Layout layout = Layout::AoS;  ///< physical layout of the bound dat
  idx_t plane = 0;              ///< padded rows (SoA plane stride)
  idx_t stgt = 0;               ///< staged element target (non-AoS scalar path)
  S scratch[kMaxDim] = {};      ///< staged element row (non-AoS scalar path)
};

template <class S, AccessMode A>
struct BoundGbl {
  S* target = nullptr;
  int dim = 0;
  S scratch[kMaxDim] = {};
};

template <class S, AccessMode A, int Dim, bool Ind>
inline BoundDat<S, A, Dim, Ind> bind(const Arg<S, A, Dim, Ind>& a) {
  if constexpr (Ind) {
    return {a.dat->data(), a.map->data(), a.map->dim(), a.map_idx, a.dat->dim(),
            a.dat->layout(), a.dat->plane()};
  } else {
    return {a.dat->data(), nullptr, 0, 0, a.dat->dim(), a.dat->layout(), a.dat->plane()};
  }
}
template <class S, AccessMode A>
inline BoundGbl<S, A> bind(const ArgGbl<S, A>& a) {
  return {a.ptr, a.dim, {}};
}

template <class S, AccessMode A, int Dim, bool Ind>
inline void thread_init(BoundDat<S, A, Dim, Ind>&) {}
template <class S, AccessMode A>
inline void thread_init(BoundGbl<S, A>& g) {
  if constexpr (A == AccessMode::READ) return;
  for (int c = 0; c < g.dim; ++c) {
    if constexpr (A == AccessMode::INC) g.scratch[c] = S(0);
    else if constexpr (A == AccessMode::MIN) g.scratch[c] = std::numeric_limits<S>::max();
    else g.scratch[c] = std::numeric_limits<S>::lowest();
  }
}

template <class S, AccessMode A, int Dim, bool Ind>
inline void thread_merge(BoundDat<S, A, Dim, Ind>&) {}
template <class S, AccessMode A>
inline void thread_merge(BoundGbl<S, A>& g) {
  if constexpr (A == AccessMode::READ) return;
  for (int c = 0; c < g.dim; ++c) {
    if constexpr (A == AccessMode::INC) g.target[c] += g.scratch[c];
    else if constexpr (A == AccessMode::MIN)
      g.target[c] = g.target[c] < g.scratch[c] ? g.target[c] : g.scratch[c];
    else g.target[c] = g.target[c] > g.scratch[c] ? g.target[c] : g.scratch[c];
  }
}

template <class Tuple, std::size_t... Is>
inline void thread_init_all(Tuple& t, std::index_sequence<Is...>) {
  (thread_init(std::get<Is>(t)), ...);
}
template <class Tuple, std::size_t... Is>
inline void thread_merge_all(Tuple& t, std::index_sequence<Is...>) {
  (thread_merge(std::get<Is>(t)), ...);
}

/// Pointer handed to the scalar kernel for element e. With a compile-time
/// Dim the element stride is a literal, so the multiply strength-reduces.
/// Under a non-AoS layout the element's components are not contiguous, so
/// the row is STAGED into the per-arg scratch (current values pre-loaded for
/// every mode, so an INC/RW kernel sees the same load-add-store order the
/// AoS path has — Seq stays bitwise-identical across layouts) and kflush()
/// writes it back after the kernel body.
template <class S, AccessMode A, int Dim, bool Ind>
inline S* kptr(BoundDat<S, A, Dim, Ind>& b, idx_t e) {
  const int dim = Dim != kDynDim ? Dim : b.dim;
  idx_t tgt;
  if constexpr (Ind) {
    tgt = b.map[static_cast<std::size_t>(e) * b.map_dim + b.map_idx];
  } else {
    tgt = e;
  }
  if (b.layout == Layout::AoS) [[likely]]
    return b.data + static_cast<std::size_t>(tgt) * dim;
  b.stgt = tgt;
  for_each_dim<Dim>(dim, [&](int c) {
    b.scratch[c] = b.data[layout_offset(b.layout, tgt, c, dim, b.plane)];
  });
  return b.scratch;
}
template <class S, AccessMode A>
inline S* kptr(BoundGbl<S, A>& g, idx_t) {
  if constexpr (A == AccessMode::READ) return g.target;
  else return g.scratch;
}

/// Post-kernel writeback of the staged scratch row (non-AoS layouts only;
/// a no-op for AoS, where the kernel wrote through the returned pointer).
template <class S, AccessMode A, int Dim, bool Ind>
inline void kflush(BoundDat<S, A, Dim, Ind>& b) {
  if constexpr (A == AccessMode::READ) return;
  if (b.layout == Layout::AoS) [[likely]]
    return;
  const int dim = Dim != kDynDim ? Dim : b.dim;
  for_each_dim<Dim>(dim, [&](int c) {
    b.data[layout_offset(b.layout, b.stgt, c, dim, b.plane)] = b.scratch[c];
  });
}
template <class S, AccessMode A>
inline void kflush(BoundGbl<S, A>&) {}

template <class Tuple, std::size_t... Is>
inline void kflush_all(Tuple& t, std::index_sequence<Is...>) {
  (kflush(std::get<Is>(t)), ...);
}

// ---- scalar loop bodies ----------------------------------------------------

// The Seq/OpenMP backends are the paper's NON-vectorized baselines. Modern
// GCC auto-vectorizes simple kernels at -O3 -march=native, which would
// silently turn the baseline into a vector backend — so the plain scalar
// loop bodies explicitly opt out. The AutoVec backend uses the *_simd_hint
// variants below, which leave the vectorizer on (that is the experiment).
#if defined(__GNUC__) && !defined(__clang__)
#define OPV_SCALAR_BASELINE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define OPV_SCALAR_BASELINE
#endif

template <class Kernel, class Tuple, std::size_t... Is>
OPV_SCALAR_BASELINE inline void run_range(Kernel& k, Tuple& t, idx_t begin, idx_t end,
                                          std::index_sequence<Is...> seq) {
  for (idx_t e = begin; e < end; ++e) {
    k(kptr(std::get<Is>(t), e)...);
    kflush_all(t, seq);
  }
}

template <class Kernel, class Tuple, std::size_t... Is>
inline void run_range_simd_hint(Kernel& k, Tuple& t, idx_t begin, idx_t end,
                                std::index_sequence<Is...> seq) {
  // The paper's auto-vectorization experiment: assert independence and let
  // the compiler try. Gathers through kptr typically defeat it on CPUs.
#pragma omp simd
  for (idx_t e = begin; e < end; ++e) {
    k(kptr(std::get<Is>(t), e)...);
    kflush_all(t, seq);
  }
}

template <class Kernel, class Tuple, std::size_t... Is>
OPV_SCALAR_BASELINE inline void run_perm(Kernel& k, Tuple& t, const idx_t* perm, idx_t begin,
                                         idx_t end, std::index_sequence<Is...> seq) {
  for (idx_t j = begin; j < end; ++j) {
    const idx_t e = perm[j];
    k(kptr(std::get<Is>(t), e)...);
    kflush_all(t, seq);
  }
}

template <class Kernel, class Tuple, std::size_t... Is>
inline void run_perm_simd_hint(Kernel& k, Tuple& t, const idx_t* perm, idx_t begin, idx_t end,
                               std::index_sequence<Is...> seq) {
#pragma omp simd
  for (idx_t j = begin; j < end; ++j) {
    const idx_t e = perm[j];
    k(kptr(std::get<Is>(t), e)...);
    kflush_all(t, seq);
  }
}

// ===== vector-path argument state ==========================================

template <class S, int W, AccessMode A, int Dim, bool Ind>
struct VDat {
  using V = simd::Vec<S, W>;
  using IV = simd::Vec<std::int32_t, W>;
  S* data = nullptr;
  const idx_t* map = nullptr;
  int map_dim = 0;
  int map_idx = 0;
  int dim = 0;  ///< == Dim when Dim != kDynDim
  Layout layout = Layout::AoS;
  idx_t plane = 0;  ///< SoA component-plane stride (padded rows)
  V buf[kMaxDim];
  IV sidx;  ///< layout-scaled target index, kept for scatters

  /// Base pointer of component c's "plane": the address sidx (from lidx)
  /// is relative to. AoS interleaves components (+c), SoA keeps one dense
  /// plane per component, AoSoA interleaves 16-lane panels per component.
  S* comp(int c) const {
    switch (layout) {
      case Layout::AoS: return data + c;
      case Layout::SoA: return data + static_cast<std::size_t>(plane) * c;
      case Layout::AoSoA: return data + static_cast<std::size_t>(kAoSoALanes) * c;
    }
    return data + c;
  }
  /// Layout-scaled element index: comp(c)[lidx(e)] addresses element e's
  /// component c for every layout. AoS scales by dim, SoA is unit-stride,
  /// AoSoA adds a per-16-block skip over the other components' panels.
  /// The lane strides are compile-time literals for static-Dim descriptors.
  IV lidx(IV tgt) const {
    const int d = Dim != kDynDim ? Dim : dim;
    switch (layout) {
      case Layout::AoS: return tgt * IV(d);
      case Layout::SoA: return tgt;
      case Layout::AoSoA:
        return tgt + (tgt >> kAoSoAShift) * IV(static_cast<std::int32_t>(kAoSoALanes) * (d - 1));
    }
    return tgt * IV(d);
  }
};

template <class S, int W, AccessMode A>
struct VGbl {
  using V = simd::Vec<S, W>;
  S* target = nullptr;
  int dim = 0;
  V buf[kMaxDim];
};

template <int W, class S, AccessMode A, int Dim, bool Ind>
inline VDat<S, W, A, Dim, Ind> vbind(const Arg<S, A, Dim, Ind>& a) {
  VDat<S, W, A, Dim, Ind> v;
  v.data = a.dat->data();
  if constexpr (Ind) {
    v.map = a.map->data();
    v.map_dim = a.map->dim();
    v.map_idx = a.map_idx;
  }
  v.dim = a.dat->dim();
  v.layout = a.dat->layout();
  v.plane = a.dat->plane();
  return v;
}
template <int W, class S, AccessMode A>
inline VGbl<S, W, A> vbind(const ArgGbl<S, A>& a) {
  VGbl<S, W, A> v;
  v.target = a.ptr;
  v.dim = a.dim;
  return v;
}

template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void vthread_init(VDat<S, W, A, Dim, Ind>&) {}
template <class S, int W, AccessMode A>
inline void vthread_init(VGbl<S, W, A>& g) {
  using V = simd::Vec<S, W>;
  for (int c = 0; c < g.dim; ++c) {
    if constexpr (A == AccessMode::READ) g.buf[c] = V(g.target[c]);
    else if constexpr (A == AccessMode::INC) g.buf[c] = V(S(0));
    else if constexpr (A == AccessMode::MIN) g.buf[c] = V(std::numeric_limits<S>::max());
    else g.buf[c] = V(std::numeric_limits<S>::lowest());
  }
}

template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void vthread_merge(VDat<S, W, A, Dim, Ind>&) {}
template <class S, int W, AccessMode A>
inline void vthread_merge(VGbl<S, W, A>& g) {
  if constexpr (A == AccessMode::READ) return;
  for (int c = 0; c < g.dim; ++c) {
    if constexpr (A == AccessMode::INC) {
      g.target[c] += simd::hsum(g.buf[c]);
    } else if constexpr (A == AccessMode::MIN) {
      const S m = simd::hmin(g.buf[c]);
      g.target[c] = g.target[c] < m ? g.target[c] : m;
    } else {
      const S m = simd::hmax(g.buf[c]);
      g.target[c] = g.target[c] > m ? g.target[c] : m;
    }
  }
}

template <class Tuple, std::size_t... Is>
inline void vthread_init_all(Tuple& t, std::index_sequence<Is...>) {
  (vthread_init(std::get<Is>(t)), ...);
}
template <class Tuple, std::size_t... Is>
inline void vthread_merge_all(Tuple& t, std::index_sequence<Is...>) {
  (vthread_merge(std::get<Is>(t)), ...);
}

/// Pointer handed to the vector kernel instantiation.
template <class S, int W, AccessMode A, int Dim, bool Ind>
inline simd::Vec<S, W>* vkptr(VDat<S, W, A, Dim, Ind>& a) {
  return a.buf;
}
template <class S, int W, AccessMode A>
inline simd::Vec<S, W>* vkptr(VGbl<S, W, A>& a) {
  return a.buf;
}

// ---- gather phase (Fig. 3b "gather data to registers") ---------------------
// Every access-mode decision below is `if constexpr`, and every
// per-component loop goes through for_each_dim<Dim>: descriptors with a
// compile-time Dim get fully unrolled straight-line gathers/scatters with
// literal strides; runtime-dim descriptors keep a looped compatibility path.

/// Load a contiguous chunk of W elements starting at n.
template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void vload(VDat<S, W, A, Dim, Ind>& a, idx_t n) {
  using V = simd::Vec<S, W>;
  using IV = simd::Vec<std::int32_t, W>;
  if constexpr (Ind) {
    const IV tgt = IV::strided(a.map + static_cast<std::size_t>(n) * a.map_dim + a.map_idx,
                               a.map_dim);
    a.sidx = a.lidx(tgt);
    if constexpr (A == AccessMode::READ || A == AccessMode::RW) {
      for_each_dim<Dim>(a.dim, [&](int c) { a.buf[c] = V::gather(a.comp(c), a.sidx); });
    } else {  // INC (indirect WRITE is also accumulated then scattered)
      for_each_dim<Dim>(a.dim, [&](int c) { a.buf[c] = V(S(0)); });
    }
  } else {
    if constexpr (A == AccessMode::INC) {
      for_each_dim<Dim>(a.dim, [&](int c) { a.buf[c] = V(S(0)); });
    } else if constexpr (A != AccessMode::WRITE) {
      // d is a literal for static Dim, so the dim==1 test folds away.
      const int d = Dim != kDynDim ? Dim : a.dim;
      if (d == 1) {
        a.buf[0] = V::loadu(a.data + n);
      } else if (a.layout == Layout::SoA) {
        // The SoA payoff: what AoS serves with W strided touches per
        // component is one unit-stride plane load here.
        for_each_dim<Dim>(d, [&](int c) {
          a.buf[c] = V::loadu(a.data + static_cast<std::size_t>(a.plane) * c + n);
        });
      } else if (a.layout == Layout::AoSoA) {
        if ((n & (kAoSoALanes - 1)) + W <= kAoSoALanes) {
          // Chunk lies inside one 16-lane panel: unit-stride per component.
          for_each_dim<Dim>(d, [&](int c) {
            a.buf[c] = V::loadu(a.data + layout_offset(Layout::AoSoA, n, c, d, a.plane));
          });
        } else {
          const IV li = a.lidx(IV::iota(static_cast<std::int32_t>(n)));
          for_each_dim<Dim>(d, [&](int c) { a.buf[c] = V::gather(a.comp(c), li); });
        }
      } else {
        for_each_dim<Dim>(d, [&](int c) {
          a.buf[c] = V::strided(a.data + static_cast<std::size_t>(n) * d + c, d);
        });
      }
    }
  }
}
template <class S, int W, AccessMode A>
inline void vload(VGbl<S, W, A>&, idx_t) {}

/// Load a chunk of W permuted elements whose ids are in eidx.
template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void vload_perm(VDat<S, W, A, Dim, Ind>& a, simd::Vec<std::int32_t, W> eidx) {
  using V = simd::Vec<S, W>;
  using IV = simd::Vec<std::int32_t, W>;
  if constexpr (Ind) {
    const IV tgt = IV::gather(a.map + a.map_idx, eidx * IV(a.map_dim));
    a.sidx = a.lidx(tgt);
    if constexpr (A == AccessMode::READ || A == AccessMode::RW) {
      for_each_dim<Dim>(a.dim, [&](int c) { a.buf[c] = V::gather(a.comp(c), a.sidx); });
    } else {
      for_each_dim<Dim>(a.dim, [&](int c) { a.buf[c] = V(S(0)); });
    }
  } else {
    a.sidx = a.lidx(eidx);
    if constexpr (A == AccessMode::INC) {
      for_each_dim<Dim>(a.dim, [&](int c) { a.buf[c] = V(S(0)); });
    } else if constexpr (A != AccessMode::WRITE) {
      // Formerly-direct data must now be gathered (paper section 4: the
      // cost the permute colorings add).
      for_each_dim<Dim>(a.dim, [&](int c) { a.buf[c] = V::gather(a.comp(c), a.sidx); });
    }
  }
}
template <class S, int W, AccessMode A>
inline void vload_perm(VGbl<S, W, A>&, simd::Vec<std::int32_t, W>) {}

// ---- scatter phase ----------------------------------------------------------

/// Flush a contiguous chunk. `hw_scatter` selects the hardware scatter
/// (legal only when lane targets are independent, i.e. permute colorings).
template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void vflush(VDat<S, W, A, Dim, Ind>& a, idx_t n, bool hw_scatter) {
  using V = simd::Vec<S, W>;
  using IV = simd::Vec<std::int32_t, W>;
  if constexpr (Ind) {
    if constexpr (A == AccessMode::INC) {
      for_each_dim<Dim>(a.dim, [&](int c) {
        if (hw_scatter) simd::scatter_add_hw(a.comp(c), a.sidx, a.buf[c]);
        else simd::scatter_add_serial(a.comp(c), a.sidx, a.buf[c]);
      });
    } else if constexpr (A == AccessMode::WRITE || A == AccessMode::RW) {
      for_each_dim<Dim>(a.dim,
                        [&](int c) { simd::scatter_serial(a.comp(c), a.sidx, a.buf[c]); });
    }
  } else {
    // d is a literal for static Dim, so the dim==1 tests fold away
    // (unused when a direct READ argument needs no flush at all).
    [[maybe_unused]] const int d = Dim != kDynDim ? Dim : a.dim;
    if constexpr (A == AccessMode::WRITE || A == AccessMode::RW) {
      if (d == 1) {
        simd::storeu(a.data + n, a.buf[0]);
      } else if (a.layout == Layout::SoA) {
        for_each_dim<Dim>(d, [&](int c) {
          simd::storeu(a.data + static_cast<std::size_t>(a.plane) * c + n, a.buf[c]);
        });
      } else if (a.layout == Layout::AoSoA) {
        if ((n & (kAoSoALanes - 1)) + W <= kAoSoALanes) {
          for_each_dim<Dim>(d, [&](int c) {
            simd::storeu(a.data + layout_offset(Layout::AoSoA, n, c, d, a.plane), a.buf[c]);
          });
        } else {
          const IV li = a.lidx(IV::iota(static_cast<std::int32_t>(n)));
          for_each_dim<Dim>(d, [&](int c) { simd::scatter_serial(a.comp(c), li, a.buf[c]); });
        }
      } else {
        for_each_dim<Dim>(d, [&](int c) {
          simd::store_strided(a.data + static_cast<std::size_t>(n) * d + c, d, a.buf[c]);
        });
      }
    } else if constexpr (A == AccessMode::INC) {
      if (d == 1) {
        const V cur = V::loadu(a.data + n);
        simd::storeu(a.data + n, cur + a.buf[0]);
      } else if (a.layout == Layout::SoA) {
        for_each_dim<Dim>(d, [&](int c) {
          S* p = a.data + static_cast<std::size_t>(a.plane) * c + n;
          simd::storeu(p, V::loadu(p) + a.buf[c]);
        });
      } else if (a.layout == Layout::AoSoA) {
        if ((n & (kAoSoALanes - 1)) + W <= kAoSoALanes) {
          for_each_dim<Dim>(d, [&](int c) {
            S* p = a.data + layout_offset(Layout::AoSoA, n, c, d, a.plane);
            simd::storeu(p, V::loadu(p) + a.buf[c]);
          });
        } else {
          const IV li = a.lidx(IV::iota(static_cast<std::int32_t>(n)));
          for_each_dim<Dim>(d,
                            [&](int c) { simd::scatter_add_serial(a.comp(c), li, a.buf[c]); });
        }
      } else {
        for_each_dim<Dim>(d, [&](int c) {
          S* p = a.data + static_cast<std::size_t>(n) * d + c;
          const V cur = V::strided(p, d);
          simd::store_strided(p, d, cur + a.buf[c]);
        });
      }
    }
  }
}
template <class S, int W, AccessMode A>
inline void vflush(VGbl<S, W, A>&, idx_t, bool) {}

/// Flush a permuted chunk. Element ids are distinct, so direct writes may
/// scatter; indirect increments use the hardware scatter iff requested.
template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void vflush_perm(VDat<S, W, A, Dim, Ind>& a, bool hw_scatter) {
  if constexpr (Ind) {
    if constexpr (A == AccessMode::INC) {
      for_each_dim<Dim>(a.dim, [&](int c) {
        if (hw_scatter) simd::scatter_add_hw(a.comp(c), a.sidx, a.buf[c]);
        else simd::scatter_add_serial(a.comp(c), a.sidx, a.buf[c]);
      });
    } else if constexpr (A == AccessMode::WRITE || A == AccessMode::RW) {
      for_each_dim<Dim>(a.dim,
                        [&](int c) { simd::scatter_serial(a.comp(c), a.sidx, a.buf[c]); });
    }
  } else {
    if constexpr (A == AccessMode::WRITE || A == AccessMode::RW) {
      for_each_dim<Dim>(a.dim,
                        [&](int c) { simd::scatter_serial(a.comp(c), a.sidx, a.buf[c]); });
    } else if constexpr (A == AccessMode::INC) {
      for_each_dim<Dim>(a.dim,
                        [&](int c) { simd::scatter_add_serial(a.comp(c), a.sidx, a.buf[c]); });
    }
  }
}
template <class S, int W, AccessMode A>
inline void vflush_perm(VGbl<S, W, A>&, bool) {}

/// SIMT colored increment (Fig. 3a): indirect increments are applied
/// color-by-color with a lane mask, serializing conflicting work-items
/// exactly like the generated OpenCL kernel does.
template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void vflush_simt(VDat<S, W, A, Dim, Ind>& a, idx_t n, const std::int32_t* elem_color,
                        int ncolors) {
  using V = simd::Vec<S, W>;
  using IV = simd::Vec<std::int32_t, W>;
  if constexpr (Ind && A == AccessMode::INC) {
    const IV cv = IV::loadu(elem_color + n);
    for (int col = 0; col < ncolors; ++col) {
      const auto imask = (cv == IV(col));
      const auto vmask = simd::MaskConvert<V>::from(imask);
      if (!simd::any(imask)) continue;
      for_each_dim<Dim>(a.dim, [&](int c) {
        simd::scatter_add_serial_masked(a.comp(c), a.sidx, a.buf[c], vmask);
      });
    }
  } else {
    vflush(a, n, /*hw_scatter=*/false);
  }
}
template <class S, int W, AccessMode A>
inline void vflush_simt(VGbl<S, W, A>&, idx_t, const std::int32_t*, int) {}

template <class Tuple, std::size_t... Is>
inline void vload_all(Tuple& t, idx_t n, std::index_sequence<Is...>) {
  (vload(std::get<Is>(t), n), ...);
}
template <class Tuple, class IV, std::size_t... Is>
inline void vload_perm_all(Tuple& t, IV eidx, std::index_sequence<Is...>) {
  (vload_perm(std::get<Is>(t), eidx), ...);
}
template <class Tuple, std::size_t... Is>
inline void vflush_all(Tuple& t, idx_t n, bool hw, std::index_sequence<Is...>) {
  (vflush(std::get<Is>(t), n, hw), ...);
}
template <class Tuple, std::size_t... Is>
inline void vflush_perm_all(Tuple& t, bool hw, std::index_sequence<Is...>) {
  (vflush_perm(std::get<Is>(t), hw), ...);
}
template <class Tuple, std::size_t... Is>
inline void vflush_simt_all(Tuple& t, idx_t n, const std::int32_t* ec, int ncolors,
                            std::index_sequence<Is...>) {
  (vflush_simt(std::get<Is>(t), n, ec, ncolors), ...);
}

template <class Kernel, class Tuple, std::size_t... Is>
inline void vcall(Kernel& k, Tuple& t, std::index_sequence<Is...>) {
  k(vkptr(std::get<Is>(t))...);
}

// ===== footprint collection ===================================================

/// One ArgFootprint per argument descriptor: the runtime residue of the
/// compile-time arg_traits classification (access mode and directness come
/// off the TYPE; only the bound dat/map/global identities are runtime data).
/// The loop's conflict list — formerly an ad-hoc per-arg scan — is derived
/// from these (LoopFootprint::conflicts).
template <class S, AccessMode A, int Dim, bool Ind>
inline ArgFootprint footprint_of(const Arg<S, A, Dim, Ind>& a) {
  ArgFootprint f;
  f.dat = a.dat;
  if constexpr (Ind) {
    f.map = a.map;
    f.map_idx = a.map_idx;
  }
  f.access = A;
  f.indirect = Ind;
  return f;
}
template <class S, AccessMode A>
inline ArgFootprint footprint_of(const ArgGbl<S, A>& a) {
  ArgFootprint f;
  f.access = A;
  f.is_gbl = true;
  f.gbl = a.ptr;
  f.gbl_reduction = A != AccessMode::READ;
  return f;
}

/// True if the kernel has a vector instantiation for these arguments (i.e.
/// a templated operator() that accepts Vec pointers). Type-erased kernels
/// (e.g. std::function wrappers) are scalar-only; requesting a vector
/// backend for them is a runtime error instead of a compile error.
template <class Kernel, class... Args>
inline constexpr bool vector_callable =
    std::is_invocable_v<Kernel&, simd::Vec<typename arg_traits<Args>::scalar, 4>*...>;

/// Scalar type of the first floating-point dataset argument (the loop's
/// computational precision); double if there is none.
template <class... Args>
struct first_real {
  using type = double;
};
template <class S, AccessMode A, int Dim, bool Ind, class... Rest>
struct first_real<Arg<S, A, Dim, Ind>, Rest...> {
  using type = std::conditional_t<std::is_floating_point_v<S>, S,
                                  typename first_real<Rest...>::type>;
};
template <class S, AccessMode A, class... Rest>
struct first_real<ArgGbl<S, A>, Rest...> {
  using type = typename first_real<Rest...>::type;
};

}  // namespace detail

// ===== the engine =============================================================

namespace detail {

/// Scalar executors --------------------------------------------------------

template <class Kernel, class Tuple>
void exec_seq(Kernel& k, Tuple t, idx_t n) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<Tuple>>{};
  thread_init_all(t, seq);
  run_range(k, t, 0, n, seq);
  thread_merge_all(t, seq);
}

/// Direct (race-free) scalar execution over [begin, end) — the full
/// iteration space from run(), or one contiguous sparse-tiling range from
/// LoopChain's executor.
template <class Kernel, class Tuple>
void exec_omp_direct(Kernel& k, const Tuple& proto, idx_t begin, idx_t end, int nthreads,
                     bool simd_hint) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<Tuple>>{};
  const idx_t n = end - begin;
#pragma omp parallel num_threads(nthreads)
  {
    Tuple t = proto;
    thread_init_all(t, seq);
    const int tid = omp_get_thread_num();
    const int nth = omp_get_num_threads();
    const idx_t chunk = (n + nth - 1) / nth;
    const idx_t lo = begin + std::min<idx_t>(n, tid * chunk);
    const idx_t hi = std::min<idx_t>(end, lo + chunk);
    if (simd_hint) run_range_simd_hint(k, t, lo, hi, seq);
    else run_range(k, t, lo, hi, seq);
#pragma omp critical(opv_reduction)
    thread_merge_all(t, seq);
  }
}

template <class Kernel, class Tuple>
void exec_omp_colored(Kernel& k, const Tuple& proto, const Plan& plan, int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<Tuple>>{};
#pragma omp parallel num_threads(nthreads)
  {
    Tuple t = proto;
    thread_init_all(t, seq);
    for (int col = 0; col < plan.nblock_colors; ++col) {
      const auto& blocks = plan.color_blocks[col];
      const idx_t nb = static_cast<idx_t>(blocks.size());
#pragma omp for schedule(static)
      for (idx_t bi = 0; bi < nb; ++bi) {
        const idx_t b = blocks[bi];
        run_range(k, t, plan.block_begin(b), plan.block_end(b), seq);
      }  // implicit barrier between colors
    }
#pragma omp critical(opv_reduction)
    thread_merge_all(t, seq);
  }
}

/// Scalar execution over a FullPermute schedule. With `simd_hint` this is
/// the paper's auto-vectorization experiment (iterate independent
/// same-color elements and ask the compiler to vectorize); without it, the
/// plain scalar permuted path used for subset (slice) execution.
template <class Kernel, class Tuple>
void exec_perm_fullperm(Kernel& k, const Tuple& proto, const Plan& plan, int nthreads,
                        bool simd_hint) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<Tuple>>{};
#pragma omp parallel num_threads(nthreads)
  {
    Tuple t = proto;
    thread_init_all(t, seq);
    const int tid = omp_get_thread_num();
    const int nth = omp_get_num_threads();
    for (int col = 0; col < plan.nglobal_colors; ++col) {
      const idx_t lo = plan.color_offsets[col], hi = plan.color_offsets[col + 1];
      const idx_t span = hi - lo;
      const idx_t chunk = (span + nth - 1) / nth;
      const idx_t b = std::min<idx_t>(hi, lo + tid * chunk);
      const idx_t e = std::min<idx_t>(hi, b + chunk);
      if (simd_hint) run_perm_simd_hint(k, t, plan.permute.data(), b, e, seq);
      else run_perm(k, t, plan.permute.data(), b, e, seq);
#pragma omp barrier
    }
#pragma omp critical(opv_reduction)
    thread_merge_all(t, seq);
  }
}

/// Scalar execution over a BlockPermute schedule (see exec_perm_fullperm
/// for the simd_hint semantics).
template <class Kernel, class Tuple>
void exec_perm_blockperm(Kernel& k, const Tuple& proto, const Plan& plan, int nthreads,
                         bool simd_hint) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<Tuple>>{};
#pragma omp parallel num_threads(nthreads)
  {
    Tuple t = proto;
    thread_init_all(t, seq);
    for (int col = 0; col < plan.nblock_colors; ++col) {
      const auto& blocks = plan.color_blocks[col];
      const idx_t nb = static_cast<idx_t>(blocks.size());
#pragma omp for schedule(static)
      for (idx_t bi = 0; bi < nb; ++bi) {
        const idx_t b = blocks[bi];
        const idx_t* off = plan.bcol_off.data() + plan.bcol_base[b];
        for (int c = 0; c < plan.block_nelem_colors[b]; ++c) {
          if (simd_hint)
            run_perm_simd_hint(k, t, plan.block_permute.data(), off[c], off[c + 1], seq);
          else
            run_perm(k, t, plan.block_permute.data(), off[c], off[c + 1], seq);
        }
      }
    }
#pragma omp critical(opv_reduction)
    thread_merge_all(t, seq);
  }
}

/// Race-free permuted scalar execution (subset of a loop with no indirect
/// conflicts): threads sweep chunks of the element-id list directly.
template <class Kernel, class Tuple>
void exec_perm_direct(Kernel& k, const Tuple& proto, const idx_t* perm, idx_t n, int nthreads,
                      bool simd_hint) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<Tuple>>{};
#pragma omp parallel num_threads(nthreads)
  {
    Tuple t = proto;
    thread_init_all(t, seq);
    const int tid = omp_get_thread_num();
    const int nth = omp_get_num_threads();
    const idx_t chunk = (n + nth - 1) / nth;
    const idx_t lo = std::min<idx_t>(n, tid * chunk);
    const idx_t hi = std::min<idx_t>(n, lo + chunk);
    if (simd_hint) run_perm_simd_hint(k, t, perm, lo, hi, seq);
    else run_perm(k, t, perm, lo, hi, seq);
#pragma omp critical(opv_reduction)
    thread_merge_all(t, seq);
  }
}

/// Vector executors ---------------------------------------------------------

/// Direct (race-free) loops over [begin, end): each thread sweeps a
/// W-aligned chunk with the vector kernel and finishes the remainder with
/// the scalar kernel (the pre/main/post structure of paper section 4.2).
/// The full space from run() has begin == 0; LoopChain's executor passes
/// one contiguous sparse-tiling range.
template <int W, class Kernel, class STuple, class VTuple>
void exec_simd_direct(Kernel& k, const STuple& sproto, const VTuple& vproto, idx_t begin,
                      idx_t end, int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<STuple>>{};
  const idx_t n = end - begin;
#pragma omp parallel num_threads(nthreads)
  {
    STuple st = sproto;
    VTuple vt = vproto;
    thread_init_all(st, seq);
    vthread_init_all(vt, seq);
    const int tid = omp_get_thread_num();
    const int nth = omp_get_num_threads();
    const idx_t nvec = n / W;
    const idx_t per = (nvec + nth - 1) / nth;
    const idx_t lo = begin + std::min<idx_t>(nvec, tid * per) * W;
    const idx_t hi = begin + std::min<idx_t>(nvec, (tid * per) + per) * W;
    for (idx_t i = lo; i < hi; i += W) {
      vload_all(vt, i, seq);
      vcall(k, vt, seq);
      vflush_all(vt, i, /*hw=*/false, seq);
    }
    if (tid == nth - 1) run_range(k, st, begin + nvec * W, end, seq);  // post-sweep
#pragma omp critical(opv_reduction)
    {
      vthread_merge_all(vt, seq);
      thread_merge_all(st, seq);
    }
  }
}

/// Race-free permuted vector execution (subset of a loop with no indirect
/// conflicts): W-wide chunks of the element-id list are gathered, computed
/// and scattered per lane (element ids are distinct, so direct writes are
/// safe); the ragged tail runs scalar.
template <int W, class Kernel, class STuple, class VTuple>
void exec_simd_perm_direct(Kernel& k, const STuple& sproto, const VTuple& vproto,
                           const idx_t* perm, idx_t n, int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<STuple>>{};
  using IV = simd::Vec<std::int32_t, W>;
#pragma omp parallel num_threads(nthreads)
  {
    STuple st = sproto;
    VTuple vt = vproto;
    thread_init_all(st, seq);
    vthread_init_all(vt, seq);
    const int tid = omp_get_thread_num();
    const int nth = omp_get_num_threads();
    const idx_t nvec = n / W;
    const idx_t per = (nvec + nth - 1) / nth;
    const idx_t lo = std::min<idx_t>(nvec, tid * per) * W;
    const idx_t hi = std::min<idx_t>(nvec, (tid * per) + per) * W;
    for (idx_t j = lo; j < hi; j += W) {
      const IV eidx = IV::loadu(perm + j);
      vload_perm_all(vt, eidx, seq);
      vcall(k, vt, seq);
      vflush_perm_all(vt, /*hw=*/false, seq);
    }
    if (tid == nth - 1) run_perm(k, st, perm, nvec * W, n, seq);  // post-sweep
#pragma omp critical(opv_reduction)
    {
      vthread_merge_all(vt, seq);
      thread_merge_all(st, seq);
    }
  }
}

/// TwoLevel coloring: blocks by color across threads; inside a block, the
/// main vector sweep scatters increments serially per lane (always legal),
/// the ragged tail runs scalar.
template <int W, class Kernel, class STuple, class VTuple>
void exec_simd_colored(Kernel& k, const STuple& sproto, const VTuple& vproto, const Plan& plan,
                       int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<STuple>>{};
#pragma omp parallel num_threads(nthreads)
  {
    STuple st = sproto;
    VTuple vt = vproto;
    thread_init_all(st, seq);
    vthread_init_all(vt, seq);
    for (int col = 0; col < plan.nblock_colors; ++col) {
      const auto& blocks = plan.color_blocks[col];
      const idx_t nb = static_cast<idx_t>(blocks.size());
#pragma omp for schedule(static)
      for (idx_t bi = 0; bi < nb; ++bi) {
        const idx_t b = blocks[bi];
        const idx_t bb = plan.block_begin(b), be = plan.block_end(b);
        idx_t i = bb;
        for (; i + W <= be; i += W) {
          vload_all(vt, i, seq);
          vcall(k, vt, seq);
          vflush_all(vt, i, /*hw=*/false, seq);
        }
        run_range(k, st, i, be, seq);
      }
    }
#pragma omp critical(opv_reduction)
    {
      vthread_merge_all(vt, seq);
      thread_merge_all(st, seq);
    }
  }
}

/// FullPermute: execute color-by-color over the global permutation; all
/// lanes of a vector are independent, so the hardware scatter is legal.
template <int W, class Kernel, class STuple, class VTuple>
void exec_simd_fullperm(Kernel& k, const STuple& sproto, const VTuple& vproto, const Plan& plan,
                        int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<STuple>>{};
  using IV = simd::Vec<std::int32_t, W>;
#pragma omp parallel num_threads(nthreads)
  {
    STuple st = sproto;
    VTuple vt = vproto;
    thread_init_all(st, seq);
    vthread_init_all(vt, seq);
    const int tid = omp_get_thread_num();
    const int nth = omp_get_num_threads();
    for (int col = 0; col < plan.nglobal_colors; ++col) {
      const idx_t lo = plan.color_offsets[col], hi = plan.color_offsets[col + 1];
      const idx_t nvec = (hi - lo) / W;
      const idx_t per = (nvec + nth - 1) / nth;
      const idx_t b = lo + std::min<idx_t>(nvec, tid * per) * W;
      const idx_t e = lo + std::min<idx_t>(nvec, tid * per + per) * W;
      for (idx_t j = b; j < e; j += W) {
        const IV eidx = IV::loadu(plan.permute.data() + j);
        vload_perm_all(vt, eidx, seq);
        vcall(k, vt, seq);
        vflush_perm_all(vt, /*hw=*/true, seq);
      }
      if (tid == nth - 1) run_perm(k, st, plan.permute.data(), lo + nvec * W, hi, seq);
#pragma omp barrier
    }
#pragma omp critical(opv_reduction)
    {
      vthread_merge_all(vt, seq);
      thread_merge_all(st, seq);
    }
  }
}

/// BlockPermute: blocks by color across threads; inside a block, iterate
/// its element-color runs with vector chunks + hardware scatter.
template <int W, class Kernel, class STuple, class VTuple>
void exec_simd_blockperm(Kernel& k, const STuple& sproto, const VTuple& vproto, const Plan& plan,
                         int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<STuple>>{};
  using IV = simd::Vec<std::int32_t, W>;
#pragma omp parallel num_threads(nthreads)
  {
    STuple st = sproto;
    VTuple vt = vproto;
    thread_init_all(st, seq);
    vthread_init_all(vt, seq);
    for (int col = 0; col < plan.nblock_colors; ++col) {
      const auto& blocks = plan.color_blocks[col];
      const idx_t nb = static_cast<idx_t>(blocks.size());
#pragma omp for schedule(static)
      for (idx_t bi = 0; bi < nb; ++bi) {
        const idx_t b = blocks[bi];
        const idx_t* off = plan.bcol_off.data() + plan.bcol_base[b];
        for (int c = 0; c < plan.block_nelem_colors[b]; ++c) {
          idx_t j = off[c];
          for (; j + W <= off[c + 1]; j += W) {
            const IV eidx = IV::loadu(plan.block_permute.data() + j);
            vload_perm_all(vt, eidx, seq);
            vcall(k, vt, seq);
            vflush_perm_all(vt, /*hw=*/true, seq);
          }
          run_perm(k, st, plan.block_permute.data(), j, off[c + 1], seq);
        }
      }
    }
#pragma omp critical(opv_reduction)
    {
      vthread_merge_all(vt, seq);
      thread_merge_all(st, seq);
    }
  }
}

/// SIMT (OpenCL model): work-groups = blocks pulled from a per-color atomic
/// queue (dynamic scheduling overhead); work-items execute in W-wide
/// lock-step bundles; indirect increments are applied per element color with
/// lane masks (Fig. 3a); the ragged tail runs as scalar work-items.
template <int W, class Kernel, class STuple, class VTuple>
void exec_simt(Kernel& k, const STuple& sproto, const VTuple& vproto, const Plan& plan,
               int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<STuple>>{};
  std::vector<std::atomic<idx_t>> counters(std::max(plan.nblock_colors, 1));
  for (auto& c : counters) c.store(0, std::memory_order_relaxed);
#pragma omp parallel num_threads(nthreads)
  {
    STuple st = sproto;
    VTuple vt = vproto;
    thread_init_all(st, seq);
    vthread_init_all(vt, seq);
    for (int col = 0; col < plan.nblock_colors; ++col) {
      const auto& blocks = plan.color_blocks[col];
      const idx_t nb = static_cast<idx_t>(blocks.size());
      std::atomic<idx_t>& ctr = counters[col];
      for (;;) {
        const idx_t bi = ctr.fetch_add(1, std::memory_order_relaxed);
        if (bi >= nb) break;
        const idx_t b = blocks[bi];
        const idx_t bb = plan.block_begin(b), be = plan.block_end(b);
        const int ncolors = plan.block_nelem_colors.empty() ? 1 : plan.block_nelem_colors[b];
        idx_t i = bb;
        for (; i + W <= be; i += W) {
          vload_all(vt, i, seq);
          vcall(k, vt, seq);
          vflush_simt_all(vt, i, plan.elem_color.data(), ncolors, seq);
        }
        run_range(k, st, i, be, seq);
      }
#pragma omp barrier
    }
#pragma omp critical(opv_reduction)
    {
      vthread_merge_all(vt, seq);
      thread_merge_all(st, seq);
    }
  }
}

// ---- Simt shared-scratch staging (ExecConfig::simt_staging) ----------------

/// Collect the runtime stage-slot residue of one typed argument (input to
/// build_simt_stage_plan).
template <class S, AccessMode A, int Dim, bool Ind>
inline StageSlotInfo stage_slot_of(const Arg<S, A, Dim, Ind>& a) {
  StageSlotInfo si;
  si.base = reinterpret_cast<std::byte*>(a.dat->data());
  si.value_bytes = sizeof(S);
  si.dim = a.dat->dim();
  si.layout = a.dat->layout();
  si.plane = a.dat->plane();
  si.indirect = Ind;
  si.writes = A != AccessMode::READ;
  if constexpr (Ind) {
    si.map = a.map->data();
    si.map_dim = a.map->dim();
    si.map_idx = a.map_idx;
  }
  return si;
}
template <class S, AccessMode A>
inline StageSlotInfo stage_slot_of(const ArgGbl<S, A>&) {
  return {};
}

/// Redirect a staged slot's bound state at the block-shared scratch: AoS
/// rows indexed by the slot's flat local map (map_dim 1). The unmodified
/// gather/scatter machinery then runs against scratch.
template <class S, AccessMode A, int Dim, bool Ind>
inline void stage_patch(BoundDat<S, A, Dim, Ind>& b, const SimtStagePlan& sp, int slot,
                        std::byte* const* scratch) {
  if constexpr (Ind) {
    const int r = sp.slot_region[static_cast<std::size_t>(slot)];
    if (r < 0) return;
    b.data = reinterpret_cast<S*>(scratch[r]);
    b.map = sp.slot_lmap[static_cast<std::size_t>(slot)].data();
    b.map_dim = 1;
    b.map_idx = 0;
    b.layout = Layout::AoS;
    b.plane = 0;
  }
}
template <class S, int W, AccessMode A, int Dim, bool Ind>
inline void stage_patch(VDat<S, W, A, Dim, Ind>& a, const SimtStagePlan& sp, int slot,
                        std::byte* const* scratch) {
  if constexpr (Ind) {
    const int r = sp.slot_region[static_cast<std::size_t>(slot)];
    if (r < 0) return;
    a.data = reinterpret_cast<S*>(scratch[r]);
    a.map = sp.slot_lmap[static_cast<std::size_t>(slot)].data();
    a.map_dim = 1;
    a.map_idx = 0;
    a.layout = Layout::AoS;
    a.plane = 0;
  }
}
template <class S, AccessMode A>
inline void stage_patch(BoundGbl<S, A>&, const SimtStagePlan&, int, std::byte* const*) {}
template <class S, int W, AccessMode A>
inline void stage_patch(VGbl<S, W, A>&, const SimtStagePlan&, int, std::byte* const*) {}

template <class Tuple, std::size_t... Is>
inline void stage_patch_all(Tuple& t, const SimtStagePlan& sp, std::byte* const* scratch,
                            std::index_sequence<Is...>) {
  (stage_patch(std::get<Is>(t), sp, static_cast<int>(Is), scratch), ...);
}

/// Fill scratch with block b's rows of the region's dat (layout-aware).
inline void stage_preload(const SimtStagePlan::Region& rg, idx_t b, std::byte* scratch) {
  const std::size_t vb = rg.value_bytes;
  for (idx_t i = rg.row_off[static_cast<std::size_t>(b)];
       i < rg.row_off[static_cast<std::size_t>(b) + 1]; ++i) {
    const idx_t g = rg.rows[static_cast<std::size_t>(i)];
    const idx_t l = i - rg.row_off[static_cast<std::size_t>(b)];
    for (int c = 0; c < rg.dim; ++c)
      std::memcpy(scratch + (static_cast<std::size_t>(l) * rg.dim + c) * vb,
                  rg.base + layout_offset(rg.layout, g, c, rg.dim, rg.plane) * vb, vb);
  }
}

/// Copy scratch back to the region's dat after the block finished. Legal
/// because block colors separate blocks sharing written targets, so no other
/// concurrently-running block touches these rows.
inline void stage_writeback(const SimtStagePlan::Region& rg, idx_t b, const std::byte* scratch) {
  const std::size_t vb = rg.value_bytes;
  for (idx_t i = rg.row_off[static_cast<std::size_t>(b)];
       i < rg.row_off[static_cast<std::size_t>(b) + 1]; ++i) {
    const idx_t g = rg.rows[static_cast<std::size_t>(i)];
    const idx_t l = i - rg.row_off[static_cast<std::size_t>(b)];
    for (int c = 0; c < rg.dim; ++c)
      std::memcpy(rg.base + layout_offset(rg.layout, g, c, rg.dim, rg.plane) * vb,
                  scratch + (static_cast<std::size_t>(l) * rg.dim + c) * vb, vb);
  }
}

/// exec_simt with per-block shared-scratch staging (Fig. 3a's shared-memory
/// arrays): gathered indirect dats are preloaded into a block-local copy,
/// the unmodified bundle machinery runs against it through patched slots,
/// and writing regions are flushed back when the block completes.
template <int W, class Kernel, class STuple, class VTuple>
void exec_simt_staged(Kernel& k, const STuple& sproto, const VTuple& vproto, const Plan& plan,
                      const SimtStagePlan& stage, int nthreads) {
  constexpr auto seq = std::make_index_sequence<std::tuple_size_v<STuple>>{};
  std::vector<std::atomic<idx_t>> counters(std::max(plan.nblock_colors, 1));
  for (auto& c : counters) c.store(0, std::memory_order_relaxed);
#pragma omp parallel num_threads(nthreads)
  {
    STuple st = sproto;
    VTuple vt = vproto;
    // One scratch buffer per region, sized for the widest block and reused
    // across blocks; the slot patch therefore happens once per thread.
    std::vector<aligned_vector<std::byte>> scratch(stage.regions.size());
    std::vector<std::byte*> sptr(stage.regions.size());
    for (std::size_t r = 0; r < stage.regions.size(); ++r) {
      const auto& rg = stage.regions[r];
      scratch[r].resize(static_cast<std::size_t>(rg.max_rows) * rg.dim * rg.value_bytes);
      sptr[r] = scratch[r].data();
    }
    stage_patch_all(st, stage, sptr.data(), seq);
    stage_patch_all(vt, stage, sptr.data(), seq);
    thread_init_all(st, seq);
    vthread_init_all(vt, seq);
    for (int col = 0; col < plan.nblock_colors; ++col) {
      const auto& blocks = plan.color_blocks[col];
      const idx_t nb = static_cast<idx_t>(blocks.size());
      std::atomic<idx_t>& ctr = counters[col];
      for (;;) {
        const idx_t bi = ctr.fetch_add(1, std::memory_order_relaxed);
        if (bi >= nb) break;
        const idx_t b = blocks[bi];
        for (std::size_t r = 0; r < stage.regions.size(); ++r)
          stage_preload(stage.regions[r], b, sptr[r]);
        const idx_t bb = plan.block_begin(b), be = plan.block_end(b);
        const int ncolors = plan.block_nelem_colors.empty() ? 1 : plan.block_nelem_colors[b];
        idx_t i = bb;
        for (; i + W <= be; i += W) {
          vload_all(vt, i, seq);
          vcall(k, vt, seq);
          vflush_simt_all(vt, i, plan.elem_color.data(), ncolors, seq);
        }
        run_range(k, st, i, be, seq);
        for (std::size_t r = 0; r < stage.regions.size(); ++r)
          if (stage.regions[r].writeback) stage_writeback(stage.regions[r], b, sptr[r]);
      }
#pragma omp barrier
    }
#pragma omp critical(opv_reduction)
    {
      vthread_merge_all(vt, seq);
      thread_merge_all(st, seq);
    }
  }
}

}  // namespace detail

// ===== the reusable Loop handle ==============================================

/// A parallel loop bound to its kernel, iteration set and typed arguments.
///
///   Loop loop(ResCalc<double>{consts}, "res_calc", edges, args...);
///   for (int it = 0; it < 1000; ++it) loop.run(cfg);
///
/// Construction performs the conflict analysis (which args indirectly modify
/// data — a compile-time fact lifted from the argument types, plus the
/// runtime map identities the plan key needs) and binds the loop's stats
/// slot. The coloring Plan is fetched from the PlanCache on first use and
/// pinned per strategy, so steady-state run() calls do zero setup: no
/// conflict scan, no cache lookup, no registry lookup.
template <class Kernel, class... Args>
class Loop {
 public:
  static constexpr bool has_inc = has_conflicts_v<Args...>;
  static constexpr bool has_gbl_reduction = has_gbl_reduction_v<Args...>;
  /// True when every dataset argument carries a compile-time Dim — the
  /// fully-specialized state where no gather/scatter loops over a runtime
  /// arity (assert it on hot loops to guard against a spelling regressing
  /// to the runtime-dim compatibility path).
  static constexpr bool all_static_dim = all_static_dim_v<Args...>;

  Loop(Kernel kernel, std::string name, const Set& set, Args... args)
      : kernel_(std::move(kernel)), name_(std::move(name)), set_(&set), args_(args...) {
    footprint_.iter_set = set_;
    footprint_.args.reserve(sizeof...(Args));
    (footprint_.args.push_back(detail::footprint_of(args)), ...);
    conflicts_ = footprint_.conflicts();
  }

  /// Execute the loop under the given configuration.
  void run(const ExecConfig& cfg) {
    // Loops with indirect increments redundantly execute the import halo so
    // owned data receives all contributions (OP2's owner-compute scheme).
    const idx_t n = has_inc ? set_->exec_size() : set_->size();
    if constexpr (has_inc && has_gbl_reduction) {
      OPV_REQUIRE(set_->exec_size() == set_->size(),
                  "loop '" << name_
                           << "': global reductions combined with indirect increments are not "
                              "supported under halo execution");
    }
    if (n == 0) return;

    const int bs = resolve_block_size(cfg);
    WallTimer timer;
    switch (cfg.backend) {
      case Backend::Seq: {
        auto t = std::apply([](const auto&... a) { return std::make_tuple(detail::bind(a)...); },
                            args_);
        detail::exec_seq(kernel_, t, n);
        break;
      }
      case Backend::OpenMP:
      case Backend::AutoVec: {
        const bool hint = cfg.backend == Backend::AutoVec;
        auto proto = std::apply(
            [](const auto&... a) { return std::make_tuple(detail::bind(a)...); }, args_);
        const int nth = detail::resolve_threads(cfg.nthreads);
        const auto strat = strategy_for(cfg);
        if (!strat) {
          detail::exec_omp_direct(kernel_, proto, 0, n, nth, hint);
        } else if (!hint) {
          detail::exec_omp_colored(kernel_, proto, plan_for(*strat, bs, nth), nth);
        } else {
          const Plan& plan = plan_for(*strat, bs, nth);
          if (*strat == ColoringStrategy::FullPermute)
            detail::exec_perm_fullperm(kernel_, proto, plan, nth, /*simd_hint=*/true);
          else
            detail::exec_perm_blockperm(kernel_, proto, plan, nth, /*simd_hint=*/true);
        }
        break;
      }
      case Backend::Simd:
      case Backend::Simt: {
        if constexpr (detail::vector_callable<Kernel, Args...>) {
          run_vectorized(cfg, bs, n);
        } else {
          OPV_REQUIRE(false, "loop '" << name_
                                      << "': kernel has no vector instantiation (scalar-only "
                                         "callable); use Seq/OpenMP/AutoVec");
        }
        break;
      }
    }
    const double secs = timer.seconds();
    if (tuner_ && cfg.block_size == ExecConfig::kAuto && !tuner_->settled())
      tuner_->observe(bs, secs);
    if (cfg.collect_stats) {
      // Slot bound on first recording run: loops that never collect stats
      // (one-shot wrappers with collect_stats=false, per-rank loops inside
      // DistCtx) never touch the registry at all. Layouts are frozen before
      // any loop executes, so the layout tag is stamped once at bind.
      if (!stats_) {
        stats_ = &StatsRegistry::instance().slot(name_);
        stats_->layout = layout_tag();
      }
      StatsRegistry::instance().record(*stats_, secs, n);
      const double plan_fresh = fresh_plan_seconds();
      if (plan_fresh > 0.0) StatsRegistry::instance().record_plan(*stats_, plan_fresh);
    }
  }

  /// Execute under the process-wide default configuration.
  void run() { run(default_config()); }

  /// A pinned element-index view of this loop's iteration space, executable
  /// with the loop's kernel instantiations and a colored schedule derived
  /// from the same conflict analysis (paper section 6.5's interior/boundary
  /// phases: the distributed layer runs one Slice per phase). The schedule
  /// (a subset coloring plan for loops with conflicts) is built lazily on
  /// the first run_slice and pinned for the Slice's lifetime.
  class Slice {
   public:
    Slice() = default;
    [[nodiscard]] idx_t size() const { return static_cast<idx_t>(elems_.size()); }
    [[nodiscard]] bool empty() const { return elems_.empty(); }
    [[nodiscard]] const aligned_vector<idx_t>& elems() const { return elems_; }
    /// The pinned subset plan (nullptr until a conflicted run builds it).
    [[nodiscard]] const Plan* plan() const { return plan_.get(); }

   private:
    friend class Loop;
    aligned_vector<idx_t> elems_;
    std::shared_ptr<const Plan> plan_;
    int block_size_ = -1;
    ColoringStrategy strat_ = ColoringStrategy::TwoLevel;
  };

  /// Pin a subset of this loop's iteration space for phased execution.
  /// Element ids must lie inside the range run() would execute — except
  /// that loops combining indirect increments with a global reduction are
  /// capped at the owned range: halo elements would contribute to the
  /// reduction on every executing rank (the slice analog of run()'s
  /// exec_size==size guard, enforced per element instead of per loop).
  [[nodiscard]] Slice make_slice(aligned_vector<idx_t> elems) const {
    const idx_t limit =
        has_inc && !has_gbl_reduction ? set_->exec_size() : set_->size();
    for (idx_t e : elems)
      OPV_REQUIRE(e >= 0 && e < limit, "loop '" << name_ << "': slice element " << e
                                                << " outside the executed range [0," << limit
                                                << ")");
    Slice s;
    s.elems_ = std::move(elems);
    return s;
  }

  /// Execute only the slice's elements. Race-handling mirrors run(): loops
  /// with indirect conflicts go through a subset coloring plan (BlockPermute
  /// by default, FullPermute if cfg asks for it — TwoLevel has no contiguous
  /// blocks to offer a subset, and the Simt queue model likewise executes
  /// its slice through the BlockPermute schedule). Global reductions
  /// init/merge per call, so running a loop as interior + boundary slices
  /// accumulates exactly like one full run. Stats are the caller's business
  /// (a phased caller owns the aggregate timing), so nothing is recorded.
  void run_slice(const ExecConfig& cfg, Slice& s) {
    const idx_t n = s.size();
    if (n == 0) return;
    const idx_t* perm = s.elems_.data();
    constexpr auto iseq = std::index_sequence_for<Args...>{};
    const int nth = detail::resolve_threads(cfg.nthreads);
    switch (cfg.backend) {
      case Backend::Seq: {
        auto t = std::apply([](const auto&... a) { return std::make_tuple(detail::bind(a)...); },
                            args_);
        detail::thread_init_all(t, iseq);
        detail::run_perm(kernel_, t, perm, 0, n, iseq);
        detail::thread_merge_all(t, iseq);
        break;
      }
      case Backend::OpenMP:
      case Backend::AutoVec: {
        const bool hint = cfg.backend == Backend::AutoVec;
        auto proto = std::apply(
            [](const auto&... a) { return std::make_tuple(detail::bind(a)...); }, args_);
        if constexpr (!has_inc) {
          detail::exec_perm_direct(kernel_, proto, perm, n, nth, hint);
        } else {
          const Plan& plan = slice_plan(s, cfg);
          if (plan.strategy == ColoringStrategy::FullPermute)
            detail::exec_perm_fullperm(kernel_, proto, plan, nth, hint);
          else
            detail::exec_perm_blockperm(kernel_, proto, plan, nth, hint);
        }
        break;
      }
      case Backend::Simd:
      case Backend::Simt: {
        if constexpr (detail::vector_callable<Kernel, Args...>) {
          run_slice_vectorized(cfg, s, n, nth);
        } else {
          OPV_REQUIRE(false, "loop '" << name_
                                      << "': kernel has no vector instantiation (scalar-only "
                                         "callable); use Seq/OpenMP/AutoVec");
        }
        break;
      }
    }
  }

  /// Execute only the contiguous element range [lo, hi) of the iteration
  /// space, in place of run(). Seq preserves the exact ascending element
  /// order (so a cover of ranges executed in order is bitwise-identical to
  /// one run(), increments included); the parallel backends take the same
  /// race-free direct path run() would — loops with indirect conflicts must
  /// go through a Slice there (the LoopChain executor routes them so).
  void run_range(const ExecConfig& cfg, idx_t lo, idx_t hi) {
    if (hi <= lo) return;
    const idx_t limit = has_inc ? set_->exec_size() : set_->size();
    OPV_REQUIRE(lo >= 0 && hi <= limit, "loop '" << name_ << "': range [" << lo << "," << hi
                                                 << ") outside the executed range [0," << limit
                                                 << ")");
    constexpr auto iseq = std::index_sequence_for<Args...>{};
    switch (cfg.backend) {
      case Backend::Seq: {
        auto t = std::apply([](const auto&... a) { return std::make_tuple(detail::bind(a)...); },
                            args_);
        detail::thread_init_all(t, iseq);
        detail::run_range(kernel_, t, lo, hi, iseq);
        detail::thread_merge_all(t, iseq);
        break;
      }
      case Backend::OpenMP:
      case Backend::AutoVec: {
        OPV_REQUIRE(!has_inc, "loop '" << name_
                                       << "': run_range on a parallel backend requires a "
                                          "race-free loop; use run_slice (subset coloring)");
        auto proto = std::apply(
            [](const auto&... a) { return std::make_tuple(detail::bind(a)...); }, args_);
        detail::exec_omp_direct(kernel_, proto, lo, hi, detail::resolve_threads(cfg.nthreads),
                                cfg.backend == Backend::AutoVec);
        break;
      }
      case Backend::Simd: {
        OPV_REQUIRE(!has_inc, "loop '" << name_
                                       << "': run_range on a parallel backend requires a "
                                          "race-free loop; use run_slice (subset coloring)");
        if constexpr (detail::vector_callable<Kernel, Args...>) {
          run_range_vectorized(cfg, lo, hi);
        } else {
          OPV_REQUIRE(false, "loop '" << name_
                                      << "': kernel has no vector instantiation (scalar-only "
                                         "callable); use Seq/OpenMP/AutoVec");
        }
        break;
      }
      case Backend::Simt:
        // The Simt queue model schedules through a plan; contiguous ranges
        // execute via run_slice's BlockPermute subset schedule instead.
        OPV_REQUIRE(false, "loop '" << name_ << "': run_range is not available on Simt");
        break;
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Set& set() const { return *set_; }
  [[nodiscard]] const std::vector<IncRef>& conflicts() const { return conflicts_; }

  /// The physical layouts of the dats this loop's arguments bind, in first-
  /// appearance order ("AoS", "SoA+AoS", ...) — the stats-table layout tag.
  [[nodiscard]] std::string layout_tag() const {
    std::string tag;
    bool seen[3] = {false, false, false};
    for (const auto& a : footprint_.args) {
      if (a.is_gbl || a.dat == nullptr) continue;
      const Layout l = a.dat->layout();
      if (seen[static_cast<int>(l)]) continue;
      seen[static_cast<int>(l)] = true;
      if (!tag.empty()) tag += "+";
      tag += layout_name(l);
    }
    return tag;
  }

  /// The pinned per-argument access summary (sets touched, map + access
  /// mode per argument) derived from the argument types at construction —
  /// the loop's public dependence interface (LoopChain's inspector input).
  [[nodiscard]] const LoopFootprint& footprint() const { return footprint_; }

  /// The pinned plan this loop would use under `cfg` (nullptr if the
  /// configuration needs no plan). Exposed so callers/tests can verify plan
  /// reuse across run() calls.
  [[nodiscard]] const Plan* plan(const ExecConfig& cfg) {
    const auto strat = strategy_for(cfg);
    if (!strat) return nullptr;
    return &plan_for(*strat, resolve_block_size(cfg), detail::resolve_threads(cfg.nthreads));
  }

  /// kAuto result: the settled block size (0 while still tuning, or when
  /// this loop always ran with an explicit block size / no plan).
  [[nodiscard]] int tuned_block_size() const {
    return tuner_ && tuner_->settled() ? tuner_->best() : 0;
  }

  /// Cumulative wall seconds this handle spent acquiring coloring plans
  /// (cache lookups + builds, including subset plans for slices). The
  /// distributed layer aggregates this across its rank loops into the
  /// stats `plan` column.
  [[nodiscard]] double plan_build_seconds() const { return plan_build_secs_; }

  /// Plan-acquisition seconds accumulated since the last flush to the stats
  /// registry, marking them reported. run() flushes through this under
  /// collect_stats; an external stats-owning runner (LoopChain, which drives
  /// slices that record nothing themselves) does the same so a loop's plan
  /// share is accounted exactly once whichever path executes it.
  [[nodiscard]] double fresh_plan_seconds() {
    const double d = plan_build_secs_ - plan_secs_reported_;
    plan_secs_reported_ = plan_build_secs_;
    return d;
  }

 private:
  /// Block size for the next run: explicit from cfg, or — under
  /// ExecConfig::kAuto — the online tuner's current candidate. Loops that
  /// never need a plan skip tuning entirely (block size is meaningless).
  int resolve_block_size(const ExecConfig& cfg) {
    if (cfg.block_size != ExecConfig::kAuto) return cfg.block_size;
    if (!strategy_for(cfg)) return ExecConfig::kDefaultBlockSize;
    if (!tuner_) tuner_ = std::make_unique<perf::OnlineTuner>();
    return tuner_->propose();
  }

  /// The single source of truth for backend -> coloring-strategy selection
  /// (used by run(), run_vectorized() and plan()). nullopt = no plan needed.
  [[nodiscard]] static std::optional<ColoringStrategy> strategy_for(const ExecConfig& cfg) {
    // Simt always schedules work-groups through a TwoLevel plan, conflicts
    // or not (the dynamic block queue lives in the plan).
    if (cfg.backend == Backend::Simt) return ColoringStrategy::TwoLevel;
    if (!has_inc || cfg.backend == Backend::Seq) return std::nullopt;
    // Scalar OpenMP races are handled at block granularity only.
    if (cfg.backend == Backend::OpenMP) return ColoringStrategy::TwoLevel;
    // AutoVec requires lane independence: TwoLevel cannot provide it, so
    // fall back to BlockPermute (the paper's scheme for enabling compiler
    // vectorization of gather-scatter loops).
    if (cfg.backend == Backend::AutoVec && cfg.coloring == ColoringStrategy::TwoLevel)
      return ColoringStrategy::BlockPermute;
    return cfg.coloring;
  }
  /// Memoized plan lookup: one pinned shared_ptr per coloring strategy.
  /// Acquisition wall time (the cache lookup plus any build it triggers)
  /// accumulates into plan_build_secs_ — the ROADMAP's plan-construction
  /// cost, reported through the stats `plan` column. `nthreads` is this
  /// loop's thread budget, bounding the build's internal parallelism (a
  /// dist rank loop with nthreads=1 must not spawn a full-machine team).
  const Plan& plan_for(ColoringStrategy strat, int block_size, int nthreads) {
    PlanSlot& s = plans_[static_cast<int>(strat)];
    if (!s.plan || s.block_size != block_size) {
      WallTimer t;
      s.plan = PlanCache::instance().get(*set_, conflicts_, block_size, strat, nthreads);
      plan_build_secs_ += t.seconds();
      s.block_size = block_size;
    }
    return *s.plan;
  }

  /// Memoized Simt staging schedule, pinned per coloring plan (a block-size
  /// change yields a new plan and hence a rebuild). Counted as plan time.
  const SimtStagePlan& stage_plan_for(const Plan& plan) {
    if (stage_plan_built_for_ != &plan) {
      WallTimer t;
      std::vector<StageSlotInfo> slots;
      slots.reserve(sizeof...(Args));
      std::apply([&](const auto&... a) { (slots.push_back(detail::stage_slot_of(a)), ...); },
                 args_);
      stage_ = build_simt_stage_plan(slots, plan);
      plan_build_secs_ += t.seconds();
      stage_plan_built_for_ = &plan;
    }
    return stage_;
  }

  /// Subset plan for a Slice, built once and pinned (slices are per-handle
  /// state, so they bypass the process-wide PlanCache). Subsets have no
  /// contiguous blocks, so TwoLevel/Simt requests resolve to BlockPermute —
  /// the same block-color / element-color structure, iterated through a
  /// permutation. kAuto block sizes fall back to the default: the online
  /// tuner measures full runs, and varying a pinned phase schedule per call
  /// would make overlapped and blocking executions diverge.
  const Plan& slice_plan(Slice& s, const ExecConfig& cfg) {
    const ColoringStrategy strat = cfg.backend != Backend::Simt &&
                                           cfg.coloring == ColoringStrategy::FullPermute
                                       ? ColoringStrategy::FullPermute
                                       : ColoringStrategy::BlockPermute;
    const int bs =
        cfg.block_size != ExecConfig::kAuto ? cfg.block_size : ExecConfig::kDefaultBlockSize;
    if (!s.plan_ || s.block_size_ != bs || s.strat_ != strat) {
      WallTimer t;
      std::vector<IncRef> sorted = conflicts_;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      s.plan_ = build_plan(s.size(), sorted, bs, strat, s.elems_.data(),
                           detail::resolve_threads(cfg.nthreads));
      plan_build_secs_ += t.seconds();
      s.block_size_ = bs;
      s.strat_ = strat;
    }
    return *s.plan_;
  }

  /// Vector-width dispatch for contiguous-range execution (race-free loops
  /// only; the callers guard).
  void run_range_vectorized(const ExecConfig& cfg, idx_t lo, idx_t hi) {
    using Real = typename detail::first_real<Args...>::type;
    const int nth = detail::resolve_threads(cfg.nthreads);
    auto dispatch = [&]<int W>() {
      auto sproto = std::apply(
          [](const auto&... a) { return std::make_tuple(detail::bind(a)...); }, args_);
      auto vproto = std::apply(
          [](const auto&... a) { return std::make_tuple(detail::vbind<W>(a)...); }, args_);
      detail::exec_simd_direct<W>(kernel_, sproto, vproto, lo, hi, nth);
    };
    const int w = cfg.simd_width > 0 ? cfg.simd_width : simd::max_lanes<Real>;
    switch (w) {
      case 4: dispatch.template operator()<4>(); break;
      case 8: dispatch.template operator()<8>(); break;
      case 16: dispatch.template operator()<16>(); break;
      default:
        OPV_REQUIRE(false, "unsupported simd width " << w << " (use 4, 8 or 16)");
    }
  }

  /// Vector-width dispatch for slice execution (mirrors run_vectorized).
  void run_slice_vectorized(const ExecConfig& cfg, Slice& s, idx_t n, int nth) {
    using Real = typename detail::first_real<Args...>::type;
    auto dispatch = [&]<int W>() {
      auto sproto = std::apply(
          [](const auto&... a) { return std::make_tuple(detail::bind(a)...); }, args_);
      auto vproto = std::apply(
          [](const auto&... a) { return std::make_tuple(detail::vbind<W>(a)...); }, args_);
      if constexpr (!has_inc) {
        detail::exec_simd_perm_direct<W>(kernel_, sproto, vproto, s.elems_.data(), n, nth);
      } else {
        const Plan& plan = slice_plan(s, cfg);
        if (plan.strategy == ColoringStrategy::FullPermute)
          detail::exec_simd_fullperm<W>(kernel_, sproto, vproto, plan, nth);
        else
          detail::exec_simd_blockperm<W>(kernel_, sproto, vproto, plan, nth);
      }
    };
    const int w = cfg.simd_width > 0 ? cfg.simd_width : simd::max_lanes<Real>;
    switch (w) {
      case 4: dispatch.template operator()<4>(); break;
      case 8: dispatch.template operator()<8>(); break;
      case 16: dispatch.template operator()<16>(); break;
      default:
        OPV_REQUIRE(false, "unsupported simd width " << w << " (use 4, 8 or 16)");
    }
  }

  /// Vector-width dispatch: instantiate the engine for the requested W.
  void run_vectorized(const ExecConfig& cfg, int block_size, idx_t n) {
    using Real = typename detail::first_real<Args...>::type;
    const int nth = detail::resolve_threads(cfg.nthreads);
    auto dispatch = [&]<int W>() {
      auto sproto = std::apply(
          [](const auto&... a) { return std::make_tuple(detail::bind(a)...); }, args_);
      auto vproto = std::apply(
          [](const auto&... a) { return std::make_tuple(detail::vbind<W>(a)...); }, args_);
      const auto strat = strategy_for(cfg);
      if (cfg.backend == Backend::Simt) {
        const Plan& plan = plan_for(*strat, block_size, nth);
        if (cfg.simt_staging) {
          const SimtStagePlan& sp = stage_plan_for(plan);
          if (sp.viable) {
            detail::exec_simt_staged<W>(kernel_, sproto, vproto, plan, sp, nth);
            return;
          }
        }
        detail::exec_simt<W>(kernel_, sproto, vproto, plan, nth);
        return;
      }
      if (!strat) {
        detail::exec_simd_direct<W>(kernel_, sproto, vproto, 0, n, nth);
        return;
      }
      const Plan& plan = plan_for(*strat, block_size, nth);
      switch (*strat) {
        case ColoringStrategy::TwoLevel:
          detail::exec_simd_colored<W>(kernel_, sproto, vproto, plan, nth);
          break;
        case ColoringStrategy::FullPermute:
          detail::exec_simd_fullperm<W>(kernel_, sproto, vproto, plan, nth);
          break;
        case ColoringStrategy::BlockPermute:
          detail::exec_simd_blockperm<W>(kernel_, sproto, vproto, plan, nth);
          break;
      }
    };
    const int w = cfg.simd_width > 0 ? cfg.simd_width : simd::max_lanes<Real>;
    switch (w) {
      case 4: dispatch.template operator()<4>(); break;
      case 8: dispatch.template operator()<8>(); break;
      case 16: dispatch.template operator()<16>(); break;
      default:
        OPV_REQUIRE(false, "unsupported simd width " << w << " (use 4, 8 or 16)");
    }
  }

  struct PlanSlot {
    int block_size = -1;
    std::shared_ptr<const Plan> plan;
  };

  Kernel kernel_;
  std::string name_;
  const Set* set_;
  std::tuple<Args...> args_;
  LoopFootprint footprint_;
  std::vector<IncRef> conflicts_;
  LoopRecord* stats_ = nullptr;
  PlanSlot plans_[3];
  SimtStagePlan stage_;                          ///< Simt staging schedule
  const Plan* stage_plan_built_for_ = nullptr;   ///< plan stage_ was built for
  double plan_build_secs_ = 0.0;     ///< cumulative plan acquisition time
  double plan_secs_reported_ = 0.0;  ///< share already flushed to stats_
  /// Allocated on the first kAuto run. The tuned block size is pinned per
  /// Loop INSTANCE, never shared through any global registry: re-templating
  /// a loop (e.g. migrating its args from runtime-dim to compile-time-Dim
  /// descriptors changes the Loop type and the generated code) yields a
  /// fresh handle that re-tunes from scratch rather than inheriting a pin
  /// measured on different code (test: RetypedHandleReTunes).
  std::unique_ptr<perf::OnlineTuner> tuner_;
};

template <class Kernel, class... Args>
Loop(Kernel, std::string, const Set&, Args...) -> Loop<Kernel, Args...>;

// ===== the OP2-shaped free function ==========================================

/// Execute `kernel` for every element of `set`, with the given typed
/// argument descriptors, under the given execution configuration.
///
/// Mirrors op_par_loop(kernel, "name", set, op_arg_dat(...), ...). This is a
/// compatibility wrapper over a one-shot Loop; steady-state iteration should
/// construct the Loop once and call run() repeatedly.
template <class Kernel, class... Args>
void par_loop(Kernel kernel, const char* name, const Set& set, const ExecConfig& cfg,
              Args... args) {
  Loop<Kernel, Args...> loop(std::move(kernel), name, set, args...);
  loop.run(cfg);
}

/// par_loop using the process-wide default configuration.
template <class Kernel, class... Args>
void par_loop(Kernel kernel, const char* name, const Set& set, Args... args) {
  par_loop(std::move(kernel), name, set, default_config(), args...);
}

}  // namespace opv
