// op_arg: argument descriptors for op_par_loop (paper Figure 2a).
//
//   arg(dat, idx, map, access)  — dataset accessed through map index idx
//   arg(dat, access)            — dataset on the iteration set itself
//   arg_gbl(ptr, dim, access)   — global scalar/array (constants, reductions)
#pragma once

#include "core/access.hpp"
#include "core/dat.hpp"
#include "core/map.hpp"

namespace opv {

/// Dataset argument. map == nullptr means direct access (OP_ID).
template <class S>
struct ArgDat {
  Dat<S>* dat = nullptr;
  const Map* map = nullptr;  ///< nullptr = direct
  int map_idx = -1;          ///< which of the map's dim targets
  Access acc = Access::READ;
};

/// Global argument: READ broadcast or INC/MIN/MAX reduction into ptr[0..dim).
template <class S>
struct ArgGbl {
  S* ptr = nullptr;
  int dim = 1;
  Access acc = Access::READ;
};

/// Indirect dataset argument through map index `idx`.
template <class S>
inline ArgDat<S> arg(Dat<S>& dat, int idx, const Map& map, Access acc) {
  OPV_REQUIRE(idx >= 0 && idx < map.dim(),
              "arg: map index " << idx << " out of range for map '" << map.name() << "' (dim "
                                << map.dim() << ")");
  OPV_REQUIRE(&map.to() == &dat.set(), "arg: map '" << map.name() << "' targets set '"
                                                    << map.to().name() << "' but dat '"
                                                    << dat.name() << "' lives on '"
                                                    << dat.set().name() << "'");
  OPV_REQUIRE(acc != Access::MIN && acc != Access::MAX,
              "arg: MIN/MAX reductions are only valid for globals");
  return {&dat, &map, idx, acc};
}

/// Direct dataset argument (defined on the iteration set).
template <class S>
inline ArgDat<S> arg(Dat<S>& dat, Access acc) {
  OPV_REQUIRE(acc != Access::MIN && acc != Access::MAX,
              "arg: MIN/MAX reductions are only valid for globals");
  return {&dat, nullptr, -1, acc};
}

/// Global argument.
template <class S>
inline ArgGbl<S> arg_gbl(S* ptr, int dim, Access acc) {
  OPV_REQUIRE(dim >= 1 && dim <= 8, "arg_gbl: dim must be in [1,8]");
  OPV_REQUIRE(acc == Access::READ || acc == Access::INC || acc == Access::MIN ||
                  acc == Access::MAX,
              "arg_gbl: access must be READ/INC/MIN/MAX");
  return {ptr, dim, acc};
}

}  // namespace opv
