// op_arg: typed argument descriptors for op_par_loop (paper Figure 2a).
//
// The access mode, the per-element arity (Dim) and directness are template
// parameters, so the engine's gather/scatter paths specialize per argument
// at compile time — the template analog of OP2's generated per-loop stubs,
// which substitute literal constants for modes AND arities (paper section 5):
//
//   arg<opv::READ, 4>(dat, idx, map)  dataset of arity 4 through map index idx
//   arg<opv::INC, 4>(dat)             arity-4 dataset on the iteration set
//   arg<opv::READ>(dat, idx, map)     arity carried at RUNTIME (kDynDim) —
//                                     the compatibility spelling; gathers
//                                     loop instead of unrolling
//   arg_gbl<opv::MIN>(ptr, dim)       global scalar/array (constant, reduction)
//
// A FixedDat<T, N> argument deduces Dim = N with no explicit spelling, and
// an explicit Dim that contradicts the FixedDat's N fails to COMPILE. For
// plain Dat arguments the explicit Dim is checked against dat.dim() when
// the descriptor is constructed (opv::Error).
//
// The OP2-era call shapes keep working via typed tags (see access.hpp):
//
//   arg(dat, idx, map, Access::READ) / arg(dat, Access::INC)
//   arg_gbl(ptr, dim, Access::MIN)
//
// Invalid combinations (MIN/MAX on a dataset, WRITE/RW on a global, Dim
// outside [1,kMaxDim], Dim mismatching a FixedDat) are rejected at COMPILE
// TIME via constraints — `requires { arg<opv::MIN>(d); }` is false — while
// data-dependent errors (map index range, set mismatch, Dim vs a runtime
// dat dim) remain runtime opv::Error throws.
#pragma once

#include <type_traits>

#include "core/access.hpp"
#include "core/dat.hpp"
#include "core/map.hpp"

namespace opv {

/// Sentinel Dim: the descriptor's arity is a runtime value (read off the
/// bound dat), not a compile-time constant. Gather/scatter code for such
/// arguments loops over the arity instead of unrolling.
inline constexpr int kDynDim = 0;

/// Valid compile-time Dim for a dataset descriptor.
constexpr bool arg_dim_ok(int dim) {
  return dim == kDynDim || (dim >= 1 && dim <= kMaxDim);
}

namespace detail {

/// Anything deriving from Dat<T> (Dat itself or FixedDat) is bindable.
template <class D>
concept DatLike = std::is_base_of_v<Dat<typename D::value_type>, D>;

/// Explicit Dim must agree with a statically-dimensioned dat type; a plain
/// Dat (static dim 0) accepts any valid Dim.
template <int Dim, class D>
inline constexpr bool dim_matches_dat_v =
    Dim == kDynDim || dat_static_dim_v<D> == 0 || dat_static_dim_v<D> == Dim;

/// The Dim the built descriptor carries: an explicit Dim wins, else the dat
/// type's static dim (FixedDat), else dynamic.
template <int Dim, class D>
inline constexpr int resolved_dim_v = Dim != kDynDim ? Dim : dat_static_dim_v<D>;

/// Construction-time check that a compile-time descriptor Dim matches the
/// (runtime-dimensioned) dat it binds — shared by both arg() overloads.
template <int RDim, class D>
inline void check_rdim(const D& dat) {
  if constexpr (RDim != kDynDim)
    OPV_REQUIRE(dat.dim() == RDim, "arg: descriptor Dim " << RDim << " != dat '" << dat.name()
                                                          << "' dim " << dat.dim());
}

}  // namespace detail

/// Dataset argument. Indirect == false means direct access (OP_ID).
/// Dim == kDynDim means the arity is a runtime property of the bound dat;
/// otherwise Dim IS the arity and the engine unrolls per-component code at
/// instantiation time.
template <class S, AccessMode A, int Dim, bool Indirect>
struct Arg {
  static_assert(arg_dim_ok(Dim),
                "Arg: Dim must be kDynDim or in [1,kMaxDim] (the engine's "
                "per-argument buffers are sized to kMaxDim)");
  using scalar_type = S;
  static constexpr AccessMode access = A;
  static constexpr int dim = Dim;
  static constexpr bool indirect = Indirect;
  static constexpr bool is_gbl = false;

  Dat<S>* dat = nullptr;
  const Map* map = nullptr;  ///< non-null iff Indirect
  int map_idx = -1;          ///< which of the map's dim targets
};

/// Global argument: READ broadcast or INC/MIN/MAX reduction into ptr[0..dim).
template <class S, AccessMode A>
struct ArgGbl {
  using scalar_type = S;
  static constexpr AccessMode access = A;
  static constexpr bool indirect = false;
  static constexpr bool is_gbl = true;

  S* ptr = nullptr;
  int dim = 1;  ///< globals keep a runtime arity (arg_traits reports kDynDim)
};

// ===== typed builders (explicit template argument spelling) =================

/// Indirect dataset argument through map index `idx`. Pass Dim explicitly
/// (`arg<opv::READ, 4>(...)`) or bind a FixedDat to get a compile-time
/// arity; omit it on a plain Dat for the runtime-dim compatibility path.
template <AccessMode A, int Dim = kDynDim, detail::DatLike D>
  requires(dat_access_ok(A) && arg_dim_ok(Dim) && detail::dim_matches_dat_v<Dim, D>)
inline Arg<typename D::value_type, A, detail::resolved_dim_v<Dim, D>, true> arg(
    D& dat, int idx, const Map& map) {
  OPV_REQUIRE(idx >= 0 && idx < map.dim(),
              "arg: map index " << idx << " out of range for map '" << map.name() << "' (dim "
                                << map.dim() << ")");
  OPV_REQUIRE(&map.to() == &dat.set(), "arg: map '" << map.name() << "' targets set '"
                                                    << map.to().name() << "' but dat '"
                                                    << dat.name() << "' lives on '"
                                                    << dat.set().name() << "'");
  detail::check_rdim<detail::resolved_dim_v<Dim, D>>(dat);
  return {&dat, &map, idx};
}

/// Direct dataset argument (defined on the iteration set).
template <AccessMode A, int Dim = kDynDim, detail::DatLike D>
  requires(dat_access_ok(A) && arg_dim_ok(Dim) && detail::dim_matches_dat_v<Dim, D>)
inline Arg<typename D::value_type, A, detail::resolved_dim_v<Dim, D>, false> arg(D& dat) {
  detail::check_rdim<detail::resolved_dim_v<Dim, D>>(dat);
  return {&dat, nullptr, -1};
}

/// Global argument.
template <AccessMode A, class S>
  requires(gbl_access_ok(A))
inline ArgGbl<S, A> arg_gbl(S* ptr, int dim) {
  OPV_REQUIRE(dim >= 1 && dim <= kMaxDim,
              "arg_gbl: dim must be in [1," << kMaxDim << "]");
  return {ptr, dim};
}

// ===== tag builders (the historical op_arg call shape) ======================
// Runtime-dim unless the dat is a FixedDat (whose static arity is deduced).

template <detail::DatLike D, AccessMode A>
  requires(dat_access_ok(A))
inline auto arg(D& dat, int idx, const Map& map, AccessTag<A>) {
  return arg<A>(dat, idx, map);
}

template <detail::DatLike D, AccessMode A>
  requires(dat_access_ok(A))
inline auto arg(D& dat, AccessTag<A>) {
  return arg<A>(dat);
}

template <class S, AccessMode A>
  requires(gbl_access_ok(A))
inline ArgGbl<S, A> arg_gbl(S* ptr, int dim, AccessTag<A>) {
  return arg_gbl<A>(ptr, dim);
}

// ===== compile-time argument traits ========================================

/// Classification the engine (and plan construction) derives from an
/// argument's TYPE alone — the compile-time replacement for the old
/// runtime collect(..., bool&) conflict scan.
template <class A>
struct arg_traits;

template <class S, AccessMode A, int Dim, bool Ind>
struct arg_traits<Arg<S, A, Dim, Ind>> {
  using scalar = S;
  static constexpr AccessMode access = A;
  static constexpr int dim = Dim;  ///< kDynDim = runtime arity
  static constexpr bool is_gbl = false;
  static constexpr bool is_indirect = Ind;
  /// Indirect modification: a data-driven race the plan must color away.
  static constexpr bool conflicting = Ind && access_conflicting(A);
  static constexpr bool gbl_reduction = false;
};

template <class S, AccessMode A>
struct arg_traits<ArgGbl<S, A>> {
  using scalar = S;
  static constexpr AccessMode access = A;
  static constexpr int dim = kDynDim;
  static constexpr bool is_gbl = true;
  static constexpr bool is_indirect = false;
  static constexpr bool conflicting = false;
  static constexpr bool gbl_reduction = A != AccessMode::READ;
};

/// True if any argument indirectly modifies a dataset (loop needs a plan).
template <class... Args>
inline constexpr bool has_conflicts_v = (arg_traits<Args>::conflicting || ...);

/// True if any argument is a global reduction.
template <class... Args>
inline constexpr bool has_gbl_reduction_v = (arg_traits<Args>::gbl_reduction || ...);

/// True if every dataset argument carries its arity at compile time (the
/// fully-specialized state OP2's generator always reaches; the ablation
/// bench measures the gap to runtime-dim descriptors).
template <class... Args>
inline constexpr bool all_static_dim_v =
    ((arg_traits<Args>::is_gbl || arg_traits<Args>::dim != kDynDim) && ...);

}  // namespace opv
