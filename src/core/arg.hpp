// op_arg: typed argument descriptors for op_par_loop (paper Figure 2a).
//
// The access mode and directness are template parameters, so the engine's
// gather/scatter paths specialize per argument at compile time — the
// template analog of OP2's generated per-loop stubs:
//
//   arg<opv::READ>(dat, idx, map)   dataset accessed through map index idx
//   arg<opv::INC>(dat)              dataset on the iteration set itself
//   arg_gbl<opv::MIN>(ptr, dim)     global scalar/array (constant, reduction)
//
// The OP2-era call shapes keep working via typed tags (see access.hpp):
//
//   arg(dat, idx, map, Access::READ) / arg(dat, Access::INC)
//   arg_gbl(ptr, dim, Access::MIN)
//
// Invalid combinations (MIN/MAX on a dataset, WRITE/RW on a global) are
// rejected at COMPILE TIME via constraints — `requires { arg<opv::MIN>(d); }`
// is false — while data-dependent errors (map index range, set mismatch)
// remain runtime opv::Error throws.
#pragma once

#include "core/access.hpp"
#include "core/dat.hpp"
#include "core/map.hpp"

namespace opv {

/// Dataset argument. Indirect == false means direct access (OP_ID).
template <class S, AccessMode A, bool Indirect>
struct Arg {
  using scalar_type = S;
  static constexpr AccessMode access = A;
  static constexpr bool indirect = Indirect;
  static constexpr bool is_gbl = false;

  Dat<S>* dat = nullptr;
  const Map* map = nullptr;  ///< non-null iff Indirect
  int map_idx = -1;          ///< which of the map's dim targets
};

/// Global argument: READ broadcast or INC/MIN/MAX reduction into ptr[0..dim).
template <class S, AccessMode A>
struct ArgGbl {
  using scalar_type = S;
  static constexpr AccessMode access = A;
  static constexpr bool indirect = false;
  static constexpr bool is_gbl = true;

  S* ptr = nullptr;
  int dim = 1;
};

// ===== typed builders (explicit template argument spelling) =================

/// Indirect dataset argument through map index `idx`.
template <AccessMode A, class S>
  requires(dat_access_ok(A))
inline Arg<S, A, true> arg(Dat<S>& dat, int idx, const Map& map) {
  OPV_REQUIRE(idx >= 0 && idx < map.dim(),
              "arg: map index " << idx << " out of range for map '" << map.name() << "' (dim "
                                << map.dim() << ")");
  OPV_REQUIRE(&map.to() == &dat.set(), "arg: map '" << map.name() << "' targets set '"
                                                    << map.to().name() << "' but dat '"
                                                    << dat.name() << "' lives on '"
                                                    << dat.set().name() << "'");
  return {&dat, &map, idx};
}

/// Direct dataset argument (defined on the iteration set).
template <AccessMode A, class S>
  requires(dat_access_ok(A))
inline Arg<S, A, false> arg(Dat<S>& dat) {
  return {&dat, nullptr, -1};
}

/// Global argument.
template <AccessMode A, class S>
  requires(gbl_access_ok(A))
inline ArgGbl<S, A> arg_gbl(S* ptr, int dim) {
  OPV_REQUIRE(dim >= 1 && dim <= 8, "arg_gbl: dim must be in [1,8]");
  return {ptr, dim};
}

// ===== tag builders (the historical op_arg call shape) ======================

template <class S, AccessMode A>
  requires(dat_access_ok(A))
inline Arg<S, A, true> arg(Dat<S>& dat, int idx, const Map& map, AccessTag<A>) {
  return arg<A>(dat, idx, map);
}

template <class S, AccessMode A>
  requires(dat_access_ok(A))
inline Arg<S, A, false> arg(Dat<S>& dat, AccessTag<A>) {
  return arg<A>(dat);
}

template <class S, AccessMode A>
  requires(gbl_access_ok(A))
inline ArgGbl<S, A> arg_gbl(S* ptr, int dim, AccessTag<A>) {
  return arg_gbl<A>(ptr, dim);
}

// ===== compile-time argument traits ========================================

/// Classification the engine (and plan construction) derives from an
/// argument's TYPE alone — the compile-time replacement for the old
/// runtime collect(..., bool&) conflict scan.
template <class A>
struct arg_traits;

template <class S, AccessMode A, bool Ind>
struct arg_traits<Arg<S, A, Ind>> {
  using scalar = S;
  static constexpr AccessMode access = A;
  static constexpr bool is_gbl = false;
  static constexpr bool is_indirect = Ind;
  /// Indirect modification: a data-driven race the plan must color away.
  static constexpr bool conflicting = Ind && access_conflicting(A);
  static constexpr bool gbl_reduction = false;
};

template <class S, AccessMode A>
struct arg_traits<ArgGbl<S, A>> {
  using scalar = S;
  static constexpr AccessMode access = A;
  static constexpr bool is_gbl = true;
  static constexpr bool is_indirect = false;
  static constexpr bool conflicting = false;
  static constexpr bool gbl_reduction = A != AccessMode::READ;
};

/// True if any argument indirectly modifies a dataset (loop needs a plan).
template <class... Args>
inline constexpr bool has_conflicts_v = (arg_traits<Args>::conflicting || ...);

/// True if any argument is a global reduction.
template <class... Args>
inline constexpr bool has_gbl_reduction_v = (arg_traits<Args>::gbl_reduction || ...);

}  // namespace opv
