// Resilience policies of the ensemble scheduler: how it reacts to trouble
// between acquire() and release(). The recoverable-instance contract itself
// (serve::Checkpointable) lives next to Instance in serve/ensemble.hpp; this
// header is the standalone policy vocabulary both sides share.
//
// The failure model: a long hazard sweep loses instances to (a) numerical
// blow-up (NaN/Inf in the state, detected by opv::guard::check_finite inside
// the instance's healthy() probe), (b) stuck or pathologically slow steps
// (step deadline), and (c) exceptions from anywhere in the step path (a
// faulty halo transport, allocation failure, user code). Without a policy
// all three retire the instance (PR 7 fault isolation). With a policy and a
// Checkpointable instance, the scheduler instead restores the last good
// checkpoint, optionally degrades the instance (e.g. halve dt), sleeps an
// exponential backoff, and re-runs the lost steps — ahead of fresh work, via
// the WorkQueue's urgent lane — retiring only after max_attempts recoveries
// fail.
#pragma once

namespace opv::serve {

/// Retry shape: how many recoveries, and how long to stand off between them
/// (exponential: base * factor^(attempt-1), capped) so a persistently
/// failing instance does not monopolize a worker.
struct RetryPolicy {
  int max_attempts = 0;               ///< recoveries before retiring (0 = resilience off)
  double backoff_base_seconds = 0.0;  ///< first-retry sleep (0 = no sleep)
  double backoff_factor = 2.0;        ///< growth per attempt
  double backoff_max_seconds = 0.25;  ///< cap on one sleep

  [[nodiscard]] double backoff_for(int attempt) const {
    if (backoff_base_seconds <= 0.0 || attempt < 1) return 0.0;
    double s = backoff_base_seconds;
    for (int i = 1; i < attempt; ++i) {
      s *= backoff_factor;
      if (s >= backoff_max_seconds) break;
    }
    return s < backoff_max_seconds ? s : backoff_max_seconds;
  }
};

/// Per-instance health regime. Checkpoints are taken at a step cadence
/// (plus one baseline at the start of each run window), health is probed at
/// its own cadence, and every step can be watched against a wall-clock
/// deadline. Detection (check_every / step_deadline_seconds) works for any
/// instance; recovery additionally needs the instance to be Checkpointable
/// — a detected failure on a plain Instance retires it.
struct HealthPolicy {
  int checkpoint_every = 0;            ///< steps between checkpoints (0 = baseline only)
  int check_every = 0;                 ///< steps between healthy() probes (0 = never)
  double step_deadline_seconds = 0.0;  ///< per-step watchdog (0 = off)
  int degrade_after = 0;               ///< call degrade() from this attempt on (0 = never)
  RetryPolicy retry;

  /// Recovery engaged at all?
  [[nodiscard]] bool active() const { return retry.max_attempts > 0; }
};

}  // namespace opv::serve
