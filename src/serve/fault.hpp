// FaultyInstance: deterministic fault injection at the Instance seam — the
// tool the resilience tests and bench/ablation_resilience use to prove the
// recovery path, and the template for chaos-testing real deployments.
//
// Faults fire on the Nth step() INVOCATION, counted monotonically across
// restores: after the scheduler rolls the instance back, the replayed steps
// keep advancing the invocation counter, so a one-shot fault does not
// re-fire during replay and the recovered run finishes bitwise-identical
// (Seq) to a fault-free run. A `period` turns one-shot into persistent —
// the way to test max_attempts retirement.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "core/snapshot.hpp"
#include "serve/ensemble.hpp"

namespace opv::serve {

enum class InstanceFaultKind {
  Throw,    ///< step() throws opv::Error (transport/user-code failure model)
  Corrupt,  ///< step() completes, then a NaN is planted in the state
  Stall,    ///< step() sleeps past the watchdog deadline, then completes
};

struct InstanceFaultPlan {
  InstanceFaultKind kind = InstanceFaultKind::Corrupt;
  std::int64_t at_step = 1;     ///< fire on this step() invocation (1-based)
  std::int64_t period = 0;      ///< re-fire every `period` invocations after (0 = once)
  std::string dat = "";         ///< Corrupt: dat name to poison ("" = first dat section)
  std::size_t value_index = 0;  ///< Corrupt: flat value index within that dat
  double stall_seconds = 0.05;  ///< Stall: sleep length
};

/// Wraps a Checkpointable and injects the planned fault; everything else
/// delegates. Corruption is implemented generically through the checkpoint
/// machinery itself (snapshot -> plant NaN -> restore), so any app with a
/// floating state dat can be poisoned without a bespoke hook.
class FaultyInstance final : public Checkpointable {
 public:
  FaultyInstance(std::unique_ptr<Checkpointable> inner, InstanceFaultPlan plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {
    OPV_REQUIRE(inner_ != nullptr, "FaultyInstance: null inner instance");
    OPV_REQUIRE(plan_.at_step >= 1, "FaultyInstance: at_step is 1-based");
  }

  void step() override {
    const bool fire = fires(++calls_);
    if (fire && plan_.kind == InstanceFaultKind::Throw) {
      ++fired_;
      throw opv::Error("FaultyInstance: injected failure at step invocation " +
                       std::to_string(calls_));
    }
    if (fire && plan_.kind == InstanceFaultKind::Stall) {
      ++fired_;
      std::this_thread::sleep_for(std::chrono::duration<double>(plan_.stall_seconds));
    }
    inner_->step();
    if (fire && plan_.kind == InstanceFaultKind::Corrupt) {
      ++fired_;
      poison();
    }
  }

  [[nodiscard]] bool healthy() override { return inner_->healthy(); }
  [[nodiscard]] Checkpoint checkpoint() override { return inner_->checkpoint(); }
  void restore(const Checkpoint& c) override { inner_->restore(c); }
  void degrade(int attempt) override { inner_->degrade(attempt); }

  [[nodiscard]] std::int64_t step_calls() const { return calls_; }
  [[nodiscard]] std::int64_t faults_fired() const { return fired_; }
  [[nodiscard]] Checkpointable& inner() { return *inner_; }

 private:
  [[nodiscard]] bool fires(std::int64_t call) const {
    if (call == plan_.at_step) return true;
    return plan_.period > 0 && call > plan_.at_step && (call - plan_.at_step) % plan_.period == 0;
  }

  void poison() {
    Checkpoint c = inner_->checkpoint();
    bool hit;
    if (plan_.dat.empty()) {
      hit = !c.sections.empty() &&
            poison_dat_section(c, c.sections.front().name.substr(c.sections.front().name.rfind('/') + 1),
                               plan_.value_index);
    } else {
      hit = poison_dat_section(c, plan_.dat, plan_.value_index);
    }
    OPV_REQUIRE(hit, "FaultyInstance: no dat section matching '" << plan_.dat << "' to poison");
    inner_->restore(c);
  }

  std::unique_ptr<Checkpointable> inner_;
  InstanceFaultPlan plan_;
  std::int64_t calls_ = 0;
  std::int64_t fired_ = 0;
};

/// Decorate a factory of Checkpointable instances with a fault plan applied
/// to instance `fault_id` only (-1 = every instance). The inner factory's
/// product must be Checkpointable — corruption and recovery both need the
/// checkpoint machinery.
inline InstanceFactory with_fault(InstanceFactory inner, InstanceFaultPlan plan, int fault_id = -1) {
  return [inner = std::move(inner), plan = std::move(plan), fault_id](int id) -> std::unique_ptr<Instance> {
    std::unique_ptr<Instance> built = inner(id);
    if (fault_id >= 0 && id != fault_id) return built;
    auto* cp = dynamic_cast<Checkpointable*>(built.get());
    OPV_REQUIRE(cp != nullptr, "with_fault: inner factory's instance " << id << " is not Checkpointable");
    built.release();
    return std::make_unique<FaultyInstance>(std::unique_ptr<Checkpointable>(cp), plan);
  };
}

}  // namespace opv::serve
