#include "serve/ensemble.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>
#include <utility>

#include "common/cpu.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"

namespace opv::serve {

namespace {

int resolve_workers(int requested) { return requested > 0 ? requested : hardware_threads(); }

}  // namespace

Ensemble::Ensemble(EnsembleOptions opts)
    : opts_(std::move(opts)), pool_(resolve_workers(opts_.workers)) {
  OPV_REQUIRE(opts_.batch_steps >= 1, "Ensemble: batch_steps must be >= 1");
}

Ensemble::~Ensemble() = default;

std::string Ensemble::scope_of(int id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/i%03d", id);
  return opts_.name + buf;
}

int Ensemble::add_instance(const InstanceFactory& factory) {
  const int id = size();
  // Construct under the instance's scope: a factory that runs loops during
  // setup (initial-condition kernels) binds their stats slots to the scoped
  // rows, exactly as the stepping loops will.
  std::optional<StatsScope> scope;
  if (opts_.scope_stats) scope.emplace(scope_of(id));
  Slot s;
  s.inst = factory(id);
  OPV_REQUIRE(s.inst != nullptr, "Ensemble '" << opts_.name << "': factory returned null for instance " << id);
  slots_.push_back(std::move(s));
  return id;
}

void Ensemble::add_instances(int n, const InstanceFactory& factory) {
  for (int i = 0; i < n; ++i) add_instance(factory);
}

Instance& Ensemble::instance(int id) {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  return *slots_[static_cast<std::size_t>(id)].inst;
}

const Instance& Ensemble::instance(int id) const {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  return *slots_[static_cast<std::size_t>(id)].inst;
}

const std::string& Ensemble::error_of(int id) const {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  return slots_[static_cast<std::size_t>(id)].error;
}

EnsembleReport Ensemble::run(std::int64_t steps) {
  OPV_REQUIRE(steps >= 0, "Ensemble '" << opts_.name << "': negative step count");

  EnsembleReport rep;
  rep.workers = pool_.size();
  rep.instances.resize(static_cast<std::size_t>(size()));
  for (int id = 0; id < size(); ++id) {
    InstanceReport& ir = rep.instances[static_cast<std::size_t>(id)];
    ir.id = id;
    ir.scope = scope_of(id);
    ir.error = slots_[static_cast<std::size_t>(id)].error;
  }

  // Seed the queue with every live instance. Ids are owned exclusively
  // between acquire() and release(), so per-instance step order is the
  // program order regardless of which workers execute the batches.
  WorkQueue queue;
  for (int id = 0; id < size(); ++id) {
    Slot& s = slots_[static_cast<std::size_t>(id)];
    s.remaining = s.error.empty() ? steps : 0;
    if (s.remaining > 0) queue.push(id);
  }

  const auto plan_before = PlanCache::instance().counters();
  std::vector<double> busy(static_cast<std::size_t>(pool_.size()), 0.0);
  WallTimer wall;

  pool_.run([&](int worker) {
    while (const std::optional<int> got = queue.acquire()) {
      const int id = *got;
      Slot& s = slots_[static_cast<std::size_t>(id)];
      InstanceReport& ir = rep.instances[static_cast<std::size_t>(id)];
      bool requeue = false;
      WallTimer t;
      try {
        std::optional<StatsScope> scope;
        if (opts_.scope_stats) scope.emplace(ir.scope);
        const std::int64_t batch = std::min<std::int64_t>(opts_.batch_steps, s.remaining);
        for (std::int64_t k = 0; k < batch; ++k) {
          s.inst->step();
          ++ir.steps_done;  // counted per step: exact on a mid-batch throw
        }
        s.remaining -= batch;
        requeue = s.remaining > 0;
      } catch (const std::exception& e) {
        s.error = e.what();
        s.remaining = 0;
      } catch (...) {
        s.error = "non-standard exception";
        s.remaining = 0;
      }
      const double dt = t.seconds();
      ir.seconds += dt;  // exclusive ownership: only this worker writes ir
      busy[static_cast<std::size_t>(worker)] += dt;
      queue.release(id, requeue);
    }
  });

  rep.seconds = wall.seconds();
  const auto plan_after = PlanCache::instance().counters();
  rep.plan_hits = static_cast<std::int64_t>(plan_after.hits - plan_before.hits);
  rep.plan_misses = static_cast<std::int64_t>(plan_after.misses - plan_before.misses);
  for (double b : busy) rep.busy_seconds += b;
  for (int id = 0; id < size(); ++id) {
    Slot& s = slots_[static_cast<std::size_t>(id)];
    InstanceReport& ir = rep.instances[static_cast<std::size_t>(id)];
    ir.error = s.error;
    rep.steps += ir.steps_done;
    if (!s.error.empty())
      ++rep.failed;
    else if (ir.steps_done == steps)
      ++rep.completed;
  }

  if (opts_.collect_stats) {
    if (!stats_) stats_ = &StatsRegistry::instance().ensemble_slot(opts_.name);
    EnsembleRecord delta;
    delta.seconds = rep.seconds;
    delta.runs = 1;
    delta.steps = rep.steps;
    delta.completed = rep.completed;
    delta.failed = rep.failed;
    delta.instances = size();
    delta.workers = rep.workers;
    delta.busy_seconds = rep.busy_seconds;
    delta.plan_hits = rep.plan_hits;
    delta.plan_misses = rep.plan_misses;
    StatsRegistry::instance().record_ensemble(*stats_, delta);
  }
  return rep;
}

}  // namespace opv::serve
