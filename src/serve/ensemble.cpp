#include "serve/ensemble.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "common/cpu.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"

namespace opv::serve {

namespace {

int resolve_workers(int requested) { return requested > 0 ? requested : hardware_threads(); }

/// RAII application of the per-instance stats scope around a batch. The
/// worker loop used to hold an optional<StatsScope> inside its try block;
/// this named guard makes the invariant explicit and unconditional: however
/// the batch exits — fall-through, exception from step(), exception from a
/// checkpoint — the scope prefix is popped before the worker touches the
/// next instance, so a throwing step can never leak its scope onto a
/// sibling's rows.
class ScopedInstanceStats {
 public:
  ScopedInstanceStats(bool on, const std::string& scope) {
    if (on) scope_.emplace(scope);
  }

 private:
  std::optional<StatsScope> scope_;
};

}  // namespace

Ensemble::Ensemble(EnsembleOptions opts)
    : opts_(std::move(opts)), pool_(resolve_workers(opts_.workers)) {
  OPV_REQUIRE(opts_.batch_steps >= 1, "Ensemble: batch_steps must be >= 1");
  OPV_REQUIRE(opts_.health.retry.max_attempts >= 0, "Ensemble: negative max_attempts");
}

Ensemble::~Ensemble() = default;

std::string Ensemble::scope_of(int id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/i%03d", id);
  return opts_.name + buf;
}

int Ensemble::add_instance(const InstanceFactory& factory) {
  const int id = size();
  // Construct under the instance's scope: a factory that runs loops during
  // setup (initial-condition kernels) binds their stats slots to the scoped
  // rows, exactly as the stepping loops will.
  ScopedInstanceStats scope(opts_.scope_stats, scope_of(id));
  Slot s;
  s.inst = factory(id);
  OPV_REQUIRE(s.inst != nullptr, "Ensemble '" << opts_.name << "': factory returned null for instance " << id);
  s.chk_inst = dynamic_cast<Checkpointable*>(s.inst.get());
  s.policy = opts_.health;
  slots_.push_back(std::move(s));
  return id;
}

void Ensemble::add_instances(int n, const InstanceFactory& factory) {
  OPV_REQUIRE(n >= 0, "Ensemble '" << opts_.name << "': negative instance count");
  // Build every instance BEFORE adopting any: a factory that throws midway
  // must leave the ensemble exactly as it was (no partially-added tail that
  // later runs would step with surprise ids).
  std::vector<Slot> built;
  built.reserve(static_cast<std::size_t>(n));
  const int base = size();
  for (int i = 0; i < n; ++i) {
    const int id = base + i;
    ScopedInstanceStats scope(opts_.scope_stats, scope_of(id));
    Slot s;
    s.inst = factory(id);
    OPV_REQUIRE(s.inst != nullptr,
                "Ensemble '" << opts_.name << "': factory returned null for instance " << id);
    s.chk_inst = dynamic_cast<Checkpointable*>(s.inst.get());
    s.policy = opts_.health;
    built.push_back(std::move(s));
  }
  for (auto& s : built) slots_.push_back(std::move(s));
}

Instance& Ensemble::instance(int id) {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  return *slots_[static_cast<std::size_t>(id)].inst;
}

const Instance& Ensemble::instance(int id) const {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  return *slots_[static_cast<std::size_t>(id)].inst;
}

const std::string& Ensemble::error_of(int id) const {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  return slots_[static_cast<std::size_t>(id)].error;
}

std::int64_t Ensemble::steps_done(int id) const {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  return slots_[static_cast<std::size_t>(id)].done_total;
}

void Ensemble::set_health_policy(int id, HealthPolicy policy) {
  OPV_REQUIRE(id >= 0 && id < size(), "Ensemble '" << opts_.name << "': no instance " << id);
  OPV_REQUIRE(policy.retry.max_attempts >= 0, "Ensemble: negative max_attempts");
  slots_[static_cast<std::size_t>(id)].policy = std::move(policy);
}

EnsembleReport Ensemble::run(std::int64_t steps) {
  OPV_REQUIRE(steps >= 0, "Ensemble '" << opts_.name << "': negative step count");
  for (auto& s : slots_) s.remaining = s.error.empty() ? steps : 0;
  return execute();
}

EnsembleReport Ensemble::run_to(std::int64_t target) {
  OPV_REQUIRE(target >= 0, "Ensemble '" << opts_.name << "': negative step target");
  for (auto& s : slots_)
    s.remaining = s.error.empty() ? std::max<std::int64_t>(0, target - s.done_total) : 0;
  return execute();
}

EnsembleCheckpoint Ensemble::save(std::int64_t target_steps) {
  EnsembleCheckpoint out;
  out.target_steps = target_steps;
  out.instances.reserve(slots_.size());
  for (int id = 0; id < size(); ++id) {
    Slot& s = slots_[static_cast<std::size_t>(id)];
    EnsembleCheckpoint::InstanceState st;
    st.id = id;
    st.steps_done = s.done_total;
    st.error = s.error;
    if (s.error.empty()) {
      OPV_REQUIRE(s.chk_inst != nullptr, "Ensemble '" << opts_.name << "': instance " << id
                                                      << " is not Checkpointable; cannot save");
      st.state = s.chk_inst->checkpoint();
    }
    out.instances.push_back(std::move(st));
  }
  return out;
}

void Ensemble::restore(const EnsembleCheckpoint& chk) {
  for (const auto& st : chk.instances) {
    OPV_REQUIRE(st.id >= 0 && st.id < size(),
                "Ensemble '" << opts_.name << "': checkpoint names instance " << st.id
                             << " but only " << size() << " are declared");
    Slot& s = slots_[static_cast<std::size_t>(st.id)];
    s.error = st.error;
    s.done_total = st.steps_done;
    s.has_chk = false;  // baseline re-taken at the next run window
    if (st.error.empty()) {
      OPV_REQUIRE(s.chk_inst != nullptr, "Ensemble '" << opts_.name << "': instance " << st.id
                                                      << " is not Checkpointable; cannot restore");
      s.chk_inst->restore(st.state);
    }
  }
}

void Ensemble::take_checkpoint(Slot& s, InstanceReport& ir) {
  s.last_chk = s.chk_inst->checkpoint();
  s.has_chk = true;
  s.chk_step = s.done_total;
  s.chk_window = run_windows_;
  ++ir.checkpoints;
}

EnsembleReport Ensemble::execute() {
  ++run_windows_;
  EnsembleReport rep;
  rep.workers = pool_.size();
  rep.instances.resize(static_cast<std::size_t>(size()));
  for (int id = 0; id < size(); ++id) {
    InstanceReport& ir = rep.instances[static_cast<std::size_t>(id)];
    ir.id = id;
    ir.scope = scope_of(id);
    ir.error = slots_[static_cast<std::size_t>(id)].error;
  }

  // Seed the queue with every live instance. Ids are owned exclusively
  // between acquire() and release(), so per-instance step order is the
  // program order regardless of which workers execute the batches.
  WorkQueue queue;
  for (int id = 0; id < size(); ++id)
    if (slots_[static_cast<std::size_t>(id)].remaining > 0) queue.push(id);

  const auto plan_before = PlanCache::instance().counters();
  struct WorkerTally {
    double busy = 0.0, chk = 0.0, backoff = 0.0;
  };
  std::vector<WorkerTally> tally(static_cast<std::size_t>(pool_.size()));
  WallTimer wall;

  pool_.run([&](int worker) {
    WorkerTally& wt = tally[static_cast<std::size_t>(worker)];
    while (const std::optional<int> got = queue.acquire()) {
      const int id = *got;
      Slot& s = slots_[static_cast<std::size_t>(id)];
      InstanceReport& ir = rep.instances[static_cast<std::size_t>(id)];
      const HealthPolicy& hp = s.policy;
      const bool recoverable = hp.active() && s.chk_inst != nullptr;

      // Stand off AFTER releasing ownership would let another worker grab
      // the id with no backoff at all; sleeping here (ownership held, the
      // id re-entered via the urgent lane) is what actually rate-limits a
      // crash-looping instance.
      if (s.pending_backoff > 0.0) {
        WallTimer bt;
        std::this_thread::sleep_for(std::chrono::duration<double>(s.pending_backoff));
        wt.backoff += bt.seconds();
        s.pending_backoff = 0.0;
      }

      std::string failure;
      bool requeue = false, front = false;
      WallTimer t;
      {
        ScopedInstanceStats scope(opts_.scope_stats, ir.scope);
        try {
          // Baseline checkpoint: one per run window, so a failure before the
          // first cadence checkpoint still has a restore point, and rewinds
          // never cross into a previous window's report.
          if (recoverable && (!s.has_chk || s.chk_window != run_windows_)) {
            WallTimer ct;
            take_checkpoint(s, ir);
            wt.chk += ct.seconds();
          }
          const std::int64_t batch = std::min<std::int64_t>(opts_.batch_steps, s.remaining);
          for (std::int64_t k = 0; k < batch && failure.empty(); ++k) {
            WallTimer st;
            s.inst->step();
            ++s.done_total;
            --s.remaining;
            ++ir.steps_done;  // counted per step: exact on a mid-batch throw
            if (hp.step_deadline_seconds > 0.0 && st.seconds() > hp.step_deadline_seconds) {
              failure = "step deadline exceeded (" + std::to_string(st.seconds()) + "s > " +
                        std::to_string(hp.step_deadline_seconds) + "s watchdog)";
            } else if (hp.check_every > 0 && s.done_total % hp.check_every == 0 &&
                       !s.inst->healthy()) {
              failure = "health check failed: instance state is no longer finite";
            }
          }
          if (failure.empty() && recoverable && hp.checkpoint_every > 0 &&
              s.done_total - s.chk_step >= hp.checkpoint_every) {
            WallTimer ct;
            take_checkpoint(s, ir);
            wt.chk += ct.seconds();
          }
        } catch (const std::exception& e) {
          failure = e.what();
        } catch (...) {
          failure = "non-standard exception";
        }
      }

      if (!failure.empty()) {
        if (recoverable && s.has_chk && s.attempts < hp.retry.max_attempts) {
          ++s.attempts;
          ++ir.attempts;
          bool restored = false;
          try {
            s.chk_inst->restore(s.last_chk);
            restored = true;
          } catch (const std::exception& e) {
            failure += "; restore failed: ";
            failure += e.what();
          }
          if (restored) {
            ++ir.restores;
            // Rewind the books to the restore point: the replayed steps are
            // owed again, and the report counts net progress.
            const std::int64_t replay = s.done_total - s.chk_step;
            s.remaining += replay;
            s.done_total = s.chk_step;
            ir.steps_done -= replay;
            if (hp.degrade_after > 0 && s.attempts >= hp.degrade_after) {
              s.chk_inst->degrade(s.attempts);
              ++ir.degraded;
            }
            s.pending_backoff = hp.retry.backoff_for(s.attempts);
            requeue = s.remaining > 0;
            front = true;  // retried work re-enters ahead of fresh work
          } else {
            s.error = failure;
            s.remaining = 0;
          }
        } else {
          if (recoverable && s.attempts >= hp.retry.max_attempts)
            failure += " (retired after " + std::to_string(s.attempts) + " recovery attempts)";
          s.error = failure;
          s.remaining = 0;
        }
      } else {
        requeue = s.remaining > 0;
      }
      const double dt = t.seconds();
      ir.seconds += dt;  // exclusive ownership: only this worker writes ir
      wt.busy += dt;
      queue.release(id, requeue, front);
    }
  });

  rep.seconds = wall.seconds();
  const auto plan_after = PlanCache::instance().counters();
  rep.plan_hits = static_cast<std::int64_t>(plan_after.hits - plan_before.hits);
  rep.plan_misses = static_cast<std::int64_t>(plan_after.misses - plan_before.misses);
  for (const WorkerTally& wt : tally) {
    rep.busy_seconds += wt.busy;
    rep.checkpoint_seconds += wt.chk;
    rep.backoff_seconds += wt.backoff;
  }
  for (int id = 0; id < size(); ++id) {
    Slot& s = slots_[static_cast<std::size_t>(id)];
    InstanceReport& ir = rep.instances[static_cast<std::size_t>(id)];
    ir.error = s.error;
    rep.steps += ir.steps_done;
    rep.retries += ir.attempts;
    rep.restores += ir.restores;
    rep.degraded += ir.degraded;
    rep.checkpoints += ir.checkpoints;
    if (!s.error.empty())
      ++rep.failed;
    else if (s.remaining == 0)
      ++rep.completed;
  }

  if (opts_.collect_stats) {
    if (!stats_) stats_ = &StatsRegistry::instance().ensemble_slot(opts_.name);
    EnsembleRecord delta;
    delta.seconds = rep.seconds;
    delta.runs = 1;
    delta.steps = rep.steps;
    delta.completed = rep.completed;
    delta.failed = rep.failed;
    delta.instances = size();
    delta.workers = rep.workers;
    delta.busy_seconds = rep.busy_seconds;
    delta.plan_hits = rep.plan_hits;
    delta.plan_misses = rep.plan_misses;
    delta.retries = rep.retries;
    delta.restores = rep.restores;
    delta.degraded = rep.degraded;
    delta.checkpoints = rep.checkpoints;
    delta.checkpoint_seconds = rep.checkpoint_seconds;
    delta.backoff_seconds = rep.backoff_seconds;
    StatsRegistry::instance().record_ensemble(*stats_, delta);
  }
  return rep;
}

}  // namespace opv::serve
