// opv::serve::Ensemble: a batch scheduler that owns N simulation instances
// and multiplexes their timesteps across one shared worker pool.
//
// The ROADMAP's ensemble-serving item: Volna's production use case is
// probabilistic hazard assessment — hundreds of scenario instances of one
// (often small) mesh, where no single instance can fill the machine but
// the ensemble can. Each instance is a user-built simulation (typically a
// LocalCtx plus pinned Loop/LoopChain handles, constructed by the caller's
// InstanceFactory) exposing exactly one operation: step(). The scheduler
// interleaves instances over a WorkQueue (common/worker_pool.hpp) so
// small-mesh steps batch together, while two invariants hold:
//
//   * Per-instance step ordering. An instance id is owned exclusively
//     between acquire() and release(); its steps execute strictly in
//     order (possibly on different workers across batches — the queue
//     mutex sequences the handoff), so results on the Seq backend are
//     bitwise-identical to running the instance alone.
//   * Fault isolation. An exception thrown by one instance's step()
//     retires that instance (error captured in the report) and never
//     propagates to siblings or the pool.
//
// What makes N-in-one-process better than N processes is the shared
// runtime state: instances built from the same mesh produce identical
// content keys in the PlanCache, so N instances pay for ONE coloring-plan
// build (the cache is single-flight — concurrent first-steps block on one
// build instead of racing). Per-instance stats stay separable through
// StatsScope: each instance's steps run under scope "<ensemble>/i<NNN>",
// so its loops bind scoped registry rows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/loop_stats.hpp"
#include "core/snapshot.hpp"
#include "serve/resilience.hpp"

namespace opv::serve {

/// One simulation instance: anything that can advance by one timestep.
/// Implementations own their full simulation state (context, mesh data,
/// pinned loop handles). step() is called with exclusive ownership — never
/// concurrently for one instance — but different instances step
/// concurrently, so anything shared BETWEEN instances must be immutable or
/// thread-safe (a shared input mesh read at construction is fine).
class Instance {
 public:
  virtual ~Instance() = default;

  /// Advance the simulation by one timestep. Throwing retires this
  /// instance from the ensemble (captured in the report) — unless a
  /// HealthPolicy with recovery is active and the instance is
  /// Checkpointable, in which case the scheduler rolls it back and
  /// retries. Siblings continue either way.
  virtual void step() = 0;

  /// Health probe, called at HealthPolicy::check_every cadence with the
  /// same exclusive ownership as step(). Return false when the state has
  /// gone bad (the canonical implementation scans a state dat with
  /// opv::guard::check_finite); the scheduler treats it like a failed step.
  [[nodiscard]] virtual bool healthy() { return true; }
};

/// An Instance whose full state can be captured and re-installed — the
/// recoverable half of the resilience layer. The contract that makes
/// recovery (and kill-and-resume) bitwise-faithful on Seq:
/// restore(checkpoint()) followed by k steps must reproduce exactly the
/// state k steps from the checkpoint would have produced. That means the
/// checkpoint covers ALL evolving state — context dats via
/// LocalCtx::snapshot() plus app globals like the adaptive dt — while
/// derived schedule state (coloring plans, pinned loop handles) may be
/// reused or rebuilt freely (the content-keyed PlanCache makes rebuilds
/// hit the same plans).
class Checkpointable : public Instance {
 public:
  /// Capture the instance's full recoverable state.
  [[nodiscard]] virtual Checkpoint checkpoint() = 0;

  /// Re-install previously captured state. Throws opv::Error when the
  /// checkpoint does not match this instance's declarations.
  virtual void restore(const Checkpoint& c) = 0;

  /// Permanently reduce fidelity to survive (e.g. halve dt). Called by the
  /// scheduler right after a restore once HealthPolicy::degrade_after
  /// attempts have failed; `attempt` is the 1-based recovery attempt.
  /// NOTE: a degraded instance no longer reproduces the fault-free run
  /// bitwise — the default policy never degrades for exactly that reason.
  virtual void degrade(int attempt) { (void)attempt; }
};

/// Builds instance `id` (0-based). Called once per instance at
/// add_instances() time, on the caller's thread, under the instance's
/// stats scope (so loops that record during construction already land in
/// scoped rows).
using InstanceFactory = std::function<std::unique_ptr<Instance>(int id)>;

struct EnsembleOptions {
  std::string name = "ensemble";  ///< stats-registry key + scope prefix
  int workers = 0;                ///< pool size; 0 = hardware_threads()
  int batch_steps = 1;            ///< steps per queue grab (interleave grain)
  bool collect_stats = true;      ///< record an EnsembleRecord per run()
  bool scope_stats = true;        ///< per-instance StatsScope around steps
  HealthPolicy health;            ///< resilience regime (default: off)
};

/// Per-instance outcome of one Ensemble::run().
struct InstanceReport {
  int id = -1;
  std::string scope;            ///< "<ensemble>/i<NNN>"
  std::int64_t steps_done = 0;  ///< net steps executed in this run
  double seconds = 0.0;         ///< wall time spent stepping this instance
  std::string error;            ///< non-empty once the instance failed
  // Resilience accounting (zero without a HealthPolicy):
  std::int64_t attempts = 0;     ///< recovery attempts consumed in this run
  std::int64_t restores = 0;     ///< checkpoint restores in this run
  std::int64_t degraded = 0;     ///< degrade() invocations in this run
  std::int64_t checkpoints = 0;  ///< checkpoints taken in this run
  [[nodiscard]] bool failed() const { return !error.empty(); }
};

/// Aggregate outcome of one Ensemble::run().
struct EnsembleReport {
  double seconds = 0.0;          ///< run() wall time
  int workers = 0;               ///< pool size
  std::int64_t steps = 0;        ///< instance timesteps executed
  std::int64_t completed = 0;    ///< instances that finished all steps
  std::int64_t failed = 0;       ///< instances retired by an exception
  double busy_seconds = 0.0;     ///< summed per-worker stepping time
  std::int64_t plan_hits = 0;    ///< PlanCache hits during the run
  std::int64_t plan_misses = 0;  ///< PlanCache builds during the run
  // Resilience accounting (zero without a HealthPolicy):
  std::int64_t retries = 0;         ///< recovery attempts across instances
  std::int64_t restores = 0;        ///< checkpoint restores
  std::int64_t degraded = 0;        ///< degrade() invocations
  std::int64_t checkpoints = 0;     ///< checkpoints taken
  double checkpoint_seconds = 0.0;  ///< wall time spent snapshotting
  double backoff_seconds = 0.0;     ///< wall time slept backing off
  std::vector<InstanceReport> instances;

  /// Completed instances per wall second — the bench headline.
  [[nodiscard]] double instances_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
  /// Fraction of the pool's wall capacity spent stepping (1.0 = every
  /// worker busy for the whole run; low values mean the queue starved).
  [[nodiscard]] double occupancy() const {
    return seconds > 0.0 && workers > 0 ? busy_seconds / (seconds * workers) : 0.0;
  }
  /// Plan-cache hit fraction across the run (0 when no plan traffic).
  [[nodiscard]] double plan_hit_rate() const {
    const auto total = plan_hits + plan_misses;
    return total > 0 ? static_cast<double>(plan_hits) / static_cast<double>(total) : 0.0;
  }
};

/// The scheduler. Owns its instances and one WorkerPool; run(steps)
/// advances every live instance by `steps` timesteps, multiplexed over the
/// pool, and reports throughput + shared-resource statistics. run() may be
/// called repeatedly (e.g. stepping an ensemble in windows with host-side
/// output between); failed instances stay retired.
class Ensemble {
 public:
  explicit Ensemble(EnsembleOptions opts = {});
  ~Ensemble();
  Ensemble(const Ensemble&) = delete;
  Ensemble& operator=(const Ensemble&) = delete;

  /// Build and adopt one instance; returns its id.
  int add_instance(const InstanceFactory& factory);

  /// Build and adopt `n` instances (factory sees ids size()..size()+n-1).
  void add_instances(int n, const InstanceFactory& factory);

  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] int workers() const { return pool_.size(); }
  [[nodiscard]] const std::string& name() const { return opts_.name; }

  /// The instance's stats scope, "<ensemble>/i<NNN>" — the prefix its loop
  /// rows carry in StatsRegistry when scope_stats is on.
  [[nodiscard]] std::string scope_of(int id) const;

  /// Access an adopted instance (e.g. to fetch results after run()).
  [[nodiscard]] Instance& instance(int id);
  [[nodiscard]] const Instance& instance(int id) const;

  /// The error that retired instance `id` ("" while healthy).
  [[nodiscard]] const std::string& error_of(int id) const;

  /// Cumulative steps instance `id` has executed across run()/run_to()
  /// calls (and any restored progress) — the resume bookkeeping.
  [[nodiscard]] std::int64_t steps_done(int id) const;

  /// Override the ensemble-wide HealthPolicy for one instance. Takes
  /// effect at the next run.
  void set_health_policy(int id, HealthPolicy policy);

  /// Advance every live instance by `steps` timesteps over the shared
  /// pool. Blocks until all instances complete or fail.
  EnsembleReport run(std::int64_t steps);

  /// Advance every live instance TO cumulative step `target` (instances
  /// already past it run zero steps) — the resume spelling: after
  /// restore(), run_to(total) finishes an interrupted sweep regardless of
  /// how far each instance had gotten.
  EnsembleReport run_to(std::int64_t target);

  /// Capture the whole ensemble (per-instance checkpoints + progress) for
  /// serialization to an OPVK file (mesh/io write_checkpoint). Requires
  /// every live instance to be Checkpointable; retired instances are
  /// recorded with their error and no state. `target_steps` is stored so a
  /// resuming driver knows the sweep's goal (0 = unknown).
  [[nodiscard]] EnsembleCheckpoint save(std::int64_t target_steps = 0);

  /// Re-install saved state into the matching instances of THIS ensemble
  /// (same ids; typically rebuilt by the same factories). Restored
  /// instances continue from their checkpointed progress on the next
  /// run_to(); retired instances stay retired.
  void restore(const EnsembleCheckpoint& chk);

 private:
  struct Slot {
    std::unique_ptr<Instance> inst;
    Checkpointable* chk_inst = nullptr;  ///< non-null iff inst is Checkpointable
    HealthPolicy policy;
    std::int64_t remaining = 0;   ///< steps left in the current run
    std::int64_t done_total = 0;  ///< cumulative steps across runs/restores
    std::string error;            ///< retired-by-exception marker

    // Recovery state (only touched while the id is owned):
    Checkpoint last_chk;           ///< most recent good checkpoint
    bool has_chk = false;
    std::int64_t chk_step = 0;     ///< done_total at last checkpoint
    std::uint64_t chk_window = 0;  ///< run window last_chk was refreshed in
    int attempts = 0;              ///< recovery attempts consumed (lifetime)
    double pending_backoff = 0.0;  ///< sleep owed before the next batch
  };

  /// Shared engine of run()/run_to(): drains every slot's `remaining`.
  EnsembleReport execute();
  void take_checkpoint(Slot& s, InstanceReport& ir);

  EnsembleOptions opts_;
  WorkerPool pool_;
  std::vector<Slot> slots_;
  std::uint64_t run_windows_ = 0;    ///< run()/run_to() invocations
  EnsembleRecord* stats_ = nullptr;  ///< bound on first recording run
};

}  // namespace opv::serve
